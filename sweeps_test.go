package repro

// Parallel-sweep determinism: the whole point of the sweep engine is that
// fanning trials across a worker pool changes wall-clock time and nothing
// else. These tests pin that property end-to-end on the real fault matrix
// (full platform simulation under fault injection), not just on the
// engine's toy runners.

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

func chaosMatrixCfg() RubisConfig {
	// Short runs: 13 matrix points at 6 simulated seconds keep the test
	// within a few wall-clock seconds per sweep.
	return RubisConfig{Seed: 1, Duration: 6 * time.Second, Warmup: 2 * time.Second}
}

// TestFaultMatrixParallelDeterminism runs the full fault matrix
// sequentially and with an 8-worker pool and requires byte-identical
// canonical JSON — trial order, seeds, and every simulated metric.
func TestFaultMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) (*FaultMatrixResult, []byte) {
		res, err := RunFaultMatrix(chaosMatrixCfg(), SweepOptions{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := res.Sweep.DeterministicJSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, blob
	}

	seq, seqJSON := run(1)
	par, parJSON := run(8)
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("parallel sweep diverged from sequential:\nworkers=1:\n%s\nworkers=8:\n%s", seqJSON, parJSON)
	}
	if len(par.Rows) != len(FaultMatrixPoints(chaosMatrixCfg())) {
		t.Fatalf("matrix produced %d rows, want %d", len(par.Rows), len(FaultMatrixPoints(chaosMatrixCfg())))
	}

	// The matrix must actually exercise the fault machinery, or the
	// byte-compare proves nothing interesting.
	lossy, ok := par.Row("loss 30%", "reliable")
	if !ok {
		t.Fatal("matrix lost its loss 30%/reliable point")
	}
	if lossy.Retransmits == 0 {
		t.Error("loss scenario drove no retransmits; determinism check is near-vacuous")
	}

	// On a real multicore the pool should show a genuine speedup. The 3x
	// acceptance bar is checked on the reprobench CLI; here we only guard
	// against the pool serializing by accident, and skip the timing check
	// entirely on small machines where it would be noise.
	if runtime.NumCPU() >= 4 && par.Sweep.Elapsed > 0 {
		speedup := float64(seq.Sweep.Elapsed) / float64(par.Sweep.Elapsed)
		t.Logf("sequential %v, 8 workers %v (%.1fx)", seq.Sweep.Elapsed, par.Sweep.Elapsed, speedup)
		if speedup < 1.5 {
			t.Errorf("8-worker sweep only %.2fx faster than sequential on a %d-CPU machine",
				speedup, runtime.NumCPU())
		}
	}
}

// TestFaultMatrixFlightReplay pins the sweep ablation to the flight
// recorder: the "ixp crash" scenario on the reliable plane — the ablation
// point exercising the most machinery (crash drops, lease expiry,
// degradation, rejoin) — must record and replay with zero divergence. A
// parallel sweep being byte-identical to a sequential one (above) and each
// point replaying event-for-event are two independent determinism
// guarantees; this covers the second.
func TestFaultMatrixFlightReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := chaosMatrixCfg()
	var sc *FaultPlan
	for _, s := range FaultScenarios(cfg.Duration) {
		if s.Name == "ixp crash" {
			sc = s.Plan
		}
	}
	if sc == nil {
		t.Fatal("fault matrix lost its ixp crash scenario")
	}
	cfg.Faults = sc
	cfg.Robust = true

	var buf bytes.Buffer
	run, err := RecordRubis(cfg, true, &buf)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	if run.Robustness.CrashDrops == 0 {
		t.Error("crash window dropped nothing; replay check is near-vacuous")
	}
	rep, err := ReplayRubis(buf.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	if rep.Divergence != nil {
		t.Errorf("ablation point does not replay deterministically: %v", rep.Divergence)
	}
	if rep.Events == 0 {
		t.Error("ablation run recorded no flight events")
	}
}

// TestFaultMatrixRepsAndCache exercises the two remaining engine features
// against the real simulation: repetitions run on derived seed substreams
// (rep 0 preserving the base seed), and a warm cache reproduces the cold
// run byte for byte without executing any trials.
func TestFaultMatrixRepsAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := chaosMatrixCfg()
	cfg.Duration = 4 * time.Second
	cfg.Warmup = time.Second
	opt := SweepOptions{Workers: 4, Reps: 2, Seed: 1, CacheDir: t.TempDir()}

	cold, err := RunFaultMatrix(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Sweep.CacheHits != 0 {
		t.Fatalf("cold run hit the cache %d times", cold.Sweep.CacheHits)
	}
	if cold.Sweep.Trials[0].Seed != 1 {
		t.Errorf("repetition 0 seed = %d, want the base seed 1", cold.Sweep.Trials[0].Seed)
	}
	if cold.Sweep.Trials[1].Seed == 1 {
		t.Error("repetition 1 reused the base seed; substream derivation is broken")
	}
	if cold.Rows[0].Throughput == cold.Rows[1].Throughput {
		t.Error("both repetitions produced identical throughput; seeds likely not applied")
	}

	warm, err := RunFaultMatrix(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(warm.Sweep.Trials); warm.Sweep.CacheHits != want {
		t.Errorf("warm run hit the cache %d times, want %d", warm.Sweep.CacheHits, want)
	}
	coldJSON, _ := cold.Sweep.DeterministicJSON()
	warmJSON, _ := warm.Sweep.DeterministicJSON()
	if string(coldJSON) != string(warmJSON) {
		t.Error("cache replay diverged from the cold run")
	}
}
