package repro

import (
	"fmt"
	"strings"
)

// Paper reference values, transcribed from the evaluation section. The
// harness prints them beside the measured numbers so paper-vs-measured is
// visible in every run (absolute matching is not expected — the substrate
// is a simulator, the shape is what must hold; see EXPERIMENTS.md).

// PaperTable1 holds the average response times (ms) of Table 1:
// base and coord-ixp-dom0.
var PaperTable1 = map[string][2]float64{
	"Register":                 {1447, 1015},
	"Browse":                   {922, 461},
	"BrowseCategories":         {1896, 1242},
	"SearchItemsInCategory":    {1085, 788},
	"BrowseRegions":            {1491, 1490},
	"BrowseCategoriesInRegion": {1068, 927},
	"SearchItemsInRegion":      {590, 530},
	"ViewItem":                 {2147, 1944},
	"BuyNow":                   {551, 292},
	"PutBidAuth":               {1089, 867},
	"PutBid":                   {1528, 538},
	"StoreBid":                 {3366, 1421},
	"PutComment":               {4186, 721},
	"Sell":                     {720, 490},
	"SellItemForm":             {351, 188},
	"AboutMe":                  {1154, 546},
}

// PaperTable2 holds Table 2 (base, coord).
var PaperTable2 = struct {
	Throughput [2]float64
	Sessions   [2]float64
	AvgSession [2]float64
	Efficiency [2]float64
}{
	Throughput: [2]float64{68, 95},
	Sessions:   [2]float64{6, 11},
	AvgSession: [2]float64{103, 73},
	Efficiency: [2]float64{51.28, 58.20},
}

// PaperTable3 holds Table 3 (baseline fps, coordinated fps, % change).
var PaperTable3 = struct {
	Dom1 [3]float64
	Dom2 [3]float64
}{
	Dom1: [3]float64{24.0, 26.6, +9.77},
	Dom2: [3]float64{80.0, 75.0, -6.25},
}

// PaperFig6 holds the Figure 6 targets: frame-rate requirements per domain
// and the reported post-coordination rates.
var PaperFig6 = struct {
	Dom1Target, Dom2Target float64
	Dom1Coord, Dom2Coord   float64
}{Dom1Target: 20, Dom2Target: 25, Dom1Coord: 22, Dom2Coord: 25.7}

// FormatFig2 renders Figure 2: min–max response-time variation per request
// type without coordination.
func FormatFig2(base *RubisRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: RUBiS min-max response-time variation (no coordination)\n")
	fmt.Fprintf(&b, "%-26s %6s %9s %9s %9s %9s %9s %9s\n",
		"request type", "n", "min(ms)", "avg(ms)", "p95(ms)", "p99(ms)", "max(ms)", "stddev")
	for _, t := range base.PerType {
		if t.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-26s %6d %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
			t.Name, t.Count, t.MinMs, t.AvgMs, t.P95Ms, t.P99Ms, t.MaxMs, t.StdDevMs)
	}
	return b.String()
}

// FormatFig4 renders Figure 4: min–max response times, base vs coordinated,
// with the stddev reduction the paper highlights.
func FormatFig4(base, coord *RubisRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: RUBiS min-max response times, base vs coord-ixp-dom0\n")
	fmt.Fprintf(&b, "%-26s | %8s %8s %8s | %8s %8s %8s | %s\n",
		"request type", "b.min", "b.max", "b.sd", "c.min", "c.max", "c.sd", "sd change")
	for i, t := range base.PerType {
		c := coord.PerType[i]
		if t.Count == 0 || c.Count == 0 {
			continue
		}
		change := "-"
		if t.StdDevMs > 0 {
			change = fmt.Sprintf("%+.0f%%", (c.StdDevMs-t.StdDevMs)/t.StdDevMs*100)
		}
		fmt.Fprintf(&b, "%-26s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f | %s\n",
			t.Name, t.MinMs, t.MaxMs, t.StdDevMs, c.MinMs, c.MaxMs, c.StdDevMs, change)
	}
	return b.String()
}

// FormatTable1 renders Table 1 with the paper's columns alongside.
func FormatTable1(base, coord *RubisRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: RUBiS average request response times (ms)\n")
	fmt.Fprintf(&b, "%-26s | %10s %10s | %10s %10s | %8s (paper %s)\n",
		"request type", "base", "coord", "paper.base", "paper.coord", "change", "change")
	for i, t := range base.PerType {
		c := coord.PerType[i]
		ref := PaperTable1[t.Name]
		change, paperChange := "-", "-"
		if t.AvgMs > 0 {
			change = fmt.Sprintf("%+.0f%%", (c.AvgMs-t.AvgMs)/t.AvgMs*100)
		}
		if ref[0] > 0 {
			paperChange = fmt.Sprintf("%+.0f%%", (ref[1]-ref[0])/ref[0]*100)
		}
		fmt.Fprintf(&b, "%-26s | %10.0f %10.0f | %10.0f %10.0f | %8s (paper %s)\n",
			t.Name, t.AvgMs, c.AvgMs, ref[0], ref[1], change, paperChange)
	}
	return b.String()
}

// FormatTable2 renders Table 2 with the paper's values alongside.
func FormatTable2(base, coord *RubisRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: RUBiS throughput results\n")
	fmt.Fprintf(&b, "%-22s | %10s %10s | %10s %10s\n", "metric", "base", "coord", "paper.base", "paper.coord")
	row := func(name string, bv, cv float64, ref [2]float64) {
		fmt.Fprintf(&b, "%-22s | %10.2f %10.2f | %10.2f %10.2f\n", name, bv, cv, ref[0], ref[1])
	}
	row("throughput (req/s)", base.Throughput, coord.Throughput, PaperTable2.Throughput)
	row("sessions completed", float64(base.SessionsCompleted), float64(coord.SessionsCompleted), PaperTable2.Sessions)
	row("avg session time (s)", base.AvgSessionSec, coord.AvgSessionSec, PaperTable2.AvgSession)
	row("platform efficiency", base.Efficiency, coord.Efficiency, PaperTable2.Efficiency)
	return b.String()
}

// FormatFig5 renders Figure 5: per-VM CPU utilization.
func FormatFig5(base, coord *RubisRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: RUBiS CPU utilization (percent of one CPU)\n")
	fmt.Fprintf(&b, "%-12s | %10s %10s\n", "domain", "no-coord", "coord")
	fmt.Fprintf(&b, "%-12s | %10.1f %10.1f\n", "Web-Server", base.WebUtil, coord.WebUtil)
	fmt.Fprintf(&b, "%-12s | %10.1f %10.1f\n", "App-Server", base.AppUtil, coord.AppUtil)
	fmt.Fprintf(&b, "%-12s | %10.1f %10.1f\n", "DB-Server", base.DBUtil, coord.DBUtil)
	fmt.Fprintf(&b, "%-12s | %10.1f %10.1f\n", "total", base.TotalUtil, coord.TotalUtil)
	return b.String()
}

// FormatFig6 renders Figure 6.
func FormatFig6(rows []MplayerQoSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: MPlayer video-stream quality of service (frames/s)\n")
	fmt.Fprintf(&b, "(paper: with coordination Dom1=%.0f, Dom2=%.1f; targets %g and %g)\n",
		PaperFig6.Dom1Coord, PaperFig6.Dom2Coord, PaperFig6.Dom1Target, PaperFig6.Dom2Target)
	fmt.Fprintf(&b, "%-10s %10s %10s %8s | %10s %10s\n", "weights", "w(dom1)", "w(dom2)", "threads", "dom1 fps", "dom2 fps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %8d | %10.1f %10.1f\n",
			r.Label, r.Dom1Weight, r.Dom2Weight, r.Dom2IXPThreads, r.Dom1FPS, r.Dom2FPS)
	}
	return b.String()
}

// FormatFig7 renders Figure 7's summary plus compact series views.
func FormatFig7(base, coord *TriggerRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: tuning credit adjustments using IXP buffer monitoring\n")
	fmt.Fprintf(&b, "baseline fps: %.1f; coordinated fps: %.1f (paper: 24.0 -> 26.6); triggers fired: %d\n",
		base.Dom1FPS, coord.Dom1FPS, coord.Triggers)
	spark := func(pts []SeriesPoint, width int) string {
		levels := []byte(" .:-=+*#%@")
		max := 0.0
		for _, p := range pts {
			if p.Value > max {
				max = p.Value
			}
		}
		if max <= 0 || len(pts) == 0 {
			return ""
		}
		out := make([]byte, width)
		for i := range out {
			p := pts[i*len(pts)/width]
			li := int(p.Value / max * float64(len(levels)-1))
			if li >= len(levels) {
				li = len(levels) - 1
			}
			out[i] = levels[li]
		}
		return string(out)
	}
	fmt.Fprintf(&b, "coord cpu-util  |%s|\n", spark(coord.CPUUtil, 60))
	fmt.Fprintf(&b, "coord ixp-buffer|%s|\n", spark(coord.BufferIn, 60))
	fmt.Fprintf(&b, "base  cpu-util  |%s|\n", spark(base.CPUUtil, 60))
	fmt.Fprintf(&b, "base  ixp-buffer|%s|\n", spark(base.BufferIn, 60))
	return b.String()
}

// FormatTable3 renders Table 3 with the paper's values alongside.
func FormatTable3(r *InterferenceRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: MPlayer trigger interference\n")
	fmt.Fprintf(&b, "%-10s | %10s %10s %9s | %10s %10s %9s\n",
		"domain", "base fps", "coord fps", "change", "paper.base", "paper.coord", "paper")
	fmt.Fprintf(&b, "%-10s | %10.1f %10.1f %+8.2f%% | %10.1f %10.1f %+8.2f%%\n",
		"Domain-1", r.Dom1BaseFPS, r.Dom1CoordFPS, r.Dom1ChangePct,
		PaperTable3.Dom1[0], PaperTable3.Dom1[1], PaperTable3.Dom1[2])
	fmt.Fprintf(&b, "%-10s | %10.1f %10.1f %+8.2f%% | %10.1f %10.1f %+8.2f%%\n",
		"Domain-2", r.Dom2BaseFPS, r.Dom2CoordFPS, r.Dom2ChangePct,
		PaperTable3.Dom2[0], PaperTable3.Dom2[1], PaperTable3.Dom2[2])
	return b.String()
}

// FormatPowerCap renders the power-cap extension's outcome.
func FormatPowerCap(r *PowerCapRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: coordinated platform power capping\n")
	fmt.Fprintf(&b, "cap=%.0fW uncapped=%.1fW steady=%.1fW over-cap periods=%d throttle actions=%d\n",
		r.CapWatts, r.UncappedWatts, r.SteadyWatts, r.OverCapPeriods, r.ThrottleActions)
	fmt.Fprintf(&b, "final guest CPU caps: %v\n", r.FinalGuestCaps)
	return b.String()
}

// FormatScalability renders the coordination scalability sweep.
func FormatScalability(points []ScalabilityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: coordination-mechanism scalability (star vs distributed)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s\n", p)
	}
	return b.String()
}
