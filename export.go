package repro

import (
	"encoding/json"
	"fmt"
)

// Results bundles every experiment's outcome for machine-readable export.
// Fields are nil when the corresponding experiment was not run.
type Results struct {
	RubisBase    *RubisRun          `json:"rubis_base,omitempty"`
	RubisCoord   *RubisRun          `json:"rubis_coord,omitempty"`
	MplayerQoS   []MplayerQoSRow    `json:"mplayer_qos,omitempty"`
	TriggerBase  *TriggerRun        `json:"trigger_base,omitempty"`
	TriggerCoord *TriggerRun        `json:"trigger_coord,omitempty"`
	Interference *InterferenceRun   `json:"interference,omitempty"`
	PowerCap     *PowerCapRun       `json:"power_cap,omitempty"`
	Scalability  []ScalabilityPoint `json:"scalability,omitempty"`
}

// ExportJSON renders the bundle as indented JSON.
func (r *Results) ExportJSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("repro: export: %w", err)
	}
	return out, nil
}
