package repro

import (
	"fmt"
	"sort"
)

// This file is the invariant-oracle library of the chaos search plane:
// the properties every run must uphold no matter what the fault plan did,
// extracted from the assertions the chaos tests previously inlined. Each
// oracle judges one ChaosRun and returns a verdict; CheckInvariants runs
// the whole catalog in a fixed order. See docs/chaos-search.md.

// ChaosRun bundles everything the oracles may inspect about one
// experiment: the config it ran under, the run itself, an optional
// uncoordinated baseline under the same conditions, and an optional
// flight-log replay.
type ChaosRun struct {
	// Config is the run's configuration (oracles read the overload
	// envelope and robustness knobs from it).
	Config RubisConfig
	// Coordinated reports which plane Run used.
	Coordinated bool
	// Run is the run under judgment.
	Run *RubisRun
	// Baseline, when non-nil, is the local-only (uncoordinated) run the
	// comparative oracles measure Run against.
	Baseline *RubisRun
	// Replay, when non-nil, is a record->replay divergence check of Run.
	Replay *FlightReplay
	// PowerCap, when non-nil, is a power-cap run judged by the cap oracle
	// (the budgeter reads the same metered watts the energy ledgers
	// integrate, so its series is the authoritative platform power).
	PowerCap *PowerCapRun
}

// OracleVerdict is one oracle's judgment.
type OracleVerdict struct {
	Oracle  string `json:"oracle"`
	Ok      bool   `json:"ok"`
	Skipped bool   `json:"skipped,omitempty"` // preconditions not met; Ok is true
	Detail  string `json:"detail,omitempty"`
}

// Oracle names, in catalog order.
const (
	OracleOverloadLedger = "overload-ledger"
	OracleAtMostOnce     = "at-most-once"
	OracleGoodputFloor   = "goodput-floor"
	OracleBoundedMean    = "bounded-mean"
	OracleBoundedP95     = "bounded-p95"
	OracleLeaseMonotonic = "lease-monotonic"
	OracleCorruption     = "corruption-contained"
	OracleWeightsClamped = "weights-clamped"
	OracleEnergyConserve = "energy-conserve"
	OraclePowerCap       = "power-cap"
	OracleReplay         = "replay-divergence"
)

// ChaosOracles returns the catalog's oracle names in evaluation order.
func ChaosOracles() []string {
	return []string{
		OracleOverloadLedger, OracleAtMostOnce, OracleGoodputFloor,
		OracleBoundedMean, OracleBoundedP95, OracleLeaseMonotonic,
		OracleCorruption, OracleWeightsClamped, OracleEnergyConserve,
		OraclePowerCap, OracleReplay,
	}
}

// CheckInvariants judges the run against every oracle in the catalog and
// returns the verdicts in catalog order. Oracles whose preconditions the
// run does not meet (no overload plane armed, no baseline supplied, no
// replay performed) are marked Skipped rather than silently passing, so
// callers can detect vacuous checks.
func CheckInvariants(cr ChaosRun) []OracleVerdict {
	return []OracleVerdict{
		checkOverloadLedger(cr),
		checkAtMostOnce(cr),
		checkGoodputFloor(cr),
		checkBoundedMean(cr),
		checkBoundedP95(cr),
		checkLeaseMonotonic(cr),
		checkCorruptionContained(cr),
		checkWeightsClamped(cr),
		checkEnergyConserve(cr),
		checkPowerCap(cr),
		checkReplay(cr),
	}
}

// FailedOracles filters a verdict list down to the violations.
func FailedOracles(vs []OracleVerdict) []OracleVerdict {
	var out []OracleVerdict
	for _, v := range vs {
		if !v.Ok && !v.Skipped {
			out = append(out, v)
		}
	}
	return out
}

func pass(name string) OracleVerdict {
	return OracleVerdict{Oracle: name, Ok: true}
}

func skip(name, why string) OracleVerdict {
	return OracleVerdict{Oracle: name, Ok: true, Skipped: true, Detail: why}
}

func fail(name, format string, args ...any) OracleVerdict {
	return OracleVerdict{Oracle: name, Detail: fmt.Sprintf(format, args...)}
}

// checkOverloadLedger verifies per-tier admission-counter conservation:
// at run end each tier's Offered - Served - Shed - Expired is its
// in-flight population, which must be non-negative and (with a bounded
// queue) within the queue cap, as must the largest backlog it observed.
// No request is ever created or destroyed by the admission plane.
func checkOverloadLedger(cr ChaosRun) OracleVerdict {
	if cr.Config.Overload == nil || cr.Run == nil {
		return skip(OracleOverloadLedger, "overload plane not armed")
	}
	cap := cr.Config.Overload.QueueCap
	if cap == 0 {
		cap = 512 // the plane's calibrated default
	}
	for _, tier := range cr.Run.Overload.Tiers {
		inFlight := int64(tier.Offered) - int64(tier.Served) - int64(tier.Shed) - int64(tier.Expired)
		if inFlight < 0 {
			return fail(OracleOverloadLedger,
				"tier %s served+shed+expired exceeds offered: %d - %d - %d - %d = %d",
				tier.Tier, tier.Offered, tier.Served, tier.Shed, tier.Expired, inFlight)
		}
		if cap > 0 && inFlight > int64(cap) {
			return fail(OracleOverloadLedger,
				"tier %s ends with %d in flight, cap %d", tier.Tier, inFlight, cap)
		}
		if cap > 0 && tier.MaxWaiting > cap {
			return fail(OracleOverloadLedger,
				"tier %s backlog peaked at %d, cap %d", tier.Tier, tier.MaxWaiting, cap)
		}
	}
	return pass(OracleOverloadLedger)
}

// checkAtMostOnce verifies the Tune delivery contract: the x86 actuator
// never applies more Tunes than were sent toward it — the IXP agent's
// demand Tunes, the x86 agent's own overload boosts, and the controller's
// translated boosts. Duplication in flight must be deduplicated, never
// double-applied.
func checkAtMostOnce(cr ChaosRun) OracleVerdict {
	if cr.Run == nil || !cr.Coordinated {
		return skip(OracleAtMostOnce, "uncoordinated run sends no Tunes")
	}
	sent := cr.Run.TunesSent + cr.Run.TunesSelfSent + cr.Run.Overload.BoostTunes
	if cr.Run.TunesApplied > sent {
		return fail(OracleAtMostOnce,
			"applied %d Tunes but only %d sent (%d ixp + %d self + %d boost)",
			cr.Run.TunesApplied, sent, cr.Run.TunesSent, cr.Run.TunesSelfSent,
			cr.Run.Overload.BoostTunes)
	}
	return pass(OracleAtMostOnce)
}

// goodputFloorFraction is the coordination-never-hurts floor: under any
// fault plan a coordinated run must keep at least this fraction of the
// local-only baseline's goodput.
const goodputFloorFraction = 0.95

// checkGoodputFloor verifies that coordination degrades gracefully: a
// coordinated run under faults keeps >= 95% of the throughput of the
// local-only plane under the same conditions. A fault plan that makes
// coordination worse than no coordination is a real robustness bug.
func checkGoodputFloor(cr ChaosRun) OracleVerdict {
	if cr.Run == nil || cr.Baseline == nil || !cr.Coordinated {
		return skip(OracleGoodputFloor, "no local baseline to compare against")
	}
	if cr.Baseline.Throughput <= 0 {
		return skip(OracleGoodputFloor, "baseline served nothing")
	}
	floor := goodputFloorFraction * cr.Baseline.Throughput
	if cr.Run.Throughput < floor {
		return fail(OracleGoodputFloor,
			"coordinated %.2f req/s under local floor %.2f (%.0f%% of %.2f)",
			cr.Run.Throughput, floor, goodputFloorFraction*100, cr.Baseline.Throughput)
	}
	return pass(OracleGoodputFloor)
}

// checkBoundedMean verifies coordinated mean latency stays within 5% of
// the local baseline's. Only judged off the overload regime: past
// saturation, shedding reshapes the served population and means are no
// longer comparable.
func checkBoundedMean(cr ChaosRun) OracleVerdict {
	if cr.Run == nil || cr.Baseline == nil || !cr.Coordinated {
		return skip(OracleBoundedMean, "no local baseline to compare against")
	}
	if cr.Config.Overload != nil || cr.Config.LoadFactor > 1 {
		return skip(OracleBoundedMean, "overload regime; shedding reshapes the served mix")
	}
	base := cr.Baseline.MeanOverTypes()
	if base <= 0 {
		return skip(OracleBoundedMean, "baseline served nothing")
	}
	got := cr.Run.MeanOverTypes()
	if got > 1.05*base {
		return fail(OracleBoundedMean,
			"coordinated mean %.2fms exceeds 1.05x local mean %.2fms", got, base)
	}
	return pass(OracleBoundedMean)
}

// checkBoundedP95 verifies the overload plane's tail-latency promise
// under coordination: the coordinated run's p95 of *served* responses
// must stay within 25% (plus a small absolute allowance) of the
// local-shedding baseline's under the same conditions — coordination may
// reshape which requests are served, but must not blow up the tail the
// bounded queues and deadlines otherwise guarantee.
func checkBoundedP95(cr ChaosRun) OracleVerdict {
	ov := cr.Config.Overload
	if ov == nil || cr.Run == nil || cr.Baseline == nil || !cr.Coordinated {
		return skip(OracleBoundedP95, "overload plane or baseline not armed")
	}
	if ov.QueueDeadline <= 0 {
		return skip(OracleBoundedP95, "no queueing deadline to bound waiting")
	}
	got, base := cr.Run.Overload.ServedP95Ms, cr.Baseline.Overload.ServedP95Ms
	if got <= 0 || base <= 0 {
		return skip(OracleBoundedP95, "no served-latency sample")
	}
	bound := 1.25*base + float64(ov.QueueDeadline.Milliseconds())
	if got > bound {
		return fail(OracleBoundedP95,
			"coordinated served p95 %.1fms exceeds bound %.1fms (1.25x local %.1fms + %v deadline)",
			got, bound, base, ov.QueueDeadline)
	}
	return pass(OracleBoundedP95)
}

// checkLeaseMonotonic verifies lease/epoch monotonicity on the liveness
// plane: an island can only rejoin after its lease actually expired, so
// rejoins never outnumber expiries.
func checkLeaseMonotonic(cr ChaosRun) OracleVerdict {
	if cr.Run == nil || !cr.Config.Robust && cr.Config.Failover == nil {
		return skip(OracleLeaseMonotonic, "reliable plane not armed")
	}
	rb := cr.Run.Robustness
	if rb.Rejoins > rb.LeaseExpiries {
		return fail(OracleLeaseMonotonic,
			"%d rejoins but only %d lease expiries", rb.Rejoins, rb.LeaseExpiries)
	}
	return pass(OracleLeaseMonotonic)
}

// checkCorruptionContained verifies corrupted coordination messages can
// only degrade, never misactuate: every corrupted frame that arrived was
// caught by a checksum and dropped — the ledger reconciles exactly. An
// arrival without a matching drop is a frame that actuated corrupt
// state; a drop without an arrival is double counting. Frames still in
// flight at run end were injected but never arrived, so arrivals (not
// injections) are the reconciliation basis, bounded above by injections.
func checkCorruptionContained(cr ChaosRun) OracleVerdict {
	if cr.Run == nil {
		return skip(OracleCorruption, "no run")
	}
	rb := cr.Run.Robustness
	if rb.CorruptDrops != rb.CorruptArrived {
		return fail(OracleCorruption,
			"%d corrupted frames arrived but %d dropped on checksum — %+d escaped or double-counted",
			rb.CorruptArrived, rb.CorruptDrops, int64(rb.CorruptArrived)-int64(rb.CorruptDrops))
	}
	if rb.CorruptArrived > rb.Corrupted {
		return fail(OracleCorruption,
			"%d corrupted frames arrived but only %d were injected",
			rb.CorruptArrived, rb.Corrupted)
	}
	return pass(OracleCorruption)
}

// Weight clamp bounds of the x86 actuator (core.X86Actuator defaults).
const (
	minActuatorWeight = 64
	maxActuatorWeight = 4096
)

// checkWeightsClamped verifies no fault sequence can drive a domain's
// credit weight outside the actuator's clamp range.
func checkWeightsClamped(cr ChaosRun) OracleVerdict {
	if cr.Run == nil || len(cr.Run.FinalWeights) == 0 {
		return skip(OracleWeightsClamped, "no final weights reported")
	}
	names := make([]string, 0, len(cr.Run.FinalWeights))
	for name := range cr.Run.FinalWeights {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if w := cr.Run.FinalWeights[name]; w < minActuatorWeight || w > maxActuatorWeight {
			return fail(OracleWeightsClamped,
				"domain %s ends at weight %d outside [%d, %d]",
				name, w, minActuatorWeight, maxActuatorWeight)
		}
	}
	return pass(OracleWeightsClamped)
}

// energyConserveEps absorbs the float64 rounding of converting exact
// integer-nanojoule ledgers to joules; the underlying meter charges the
// identical increment to the island and platform ledgers, so any larger
// discrepancy is a real conservation bug.
const energyConserveEps = 1e-6

// checkEnergyConserve verifies the energy ledgers conserve: the island
// joules must sum to the platform joules. The meter charges both ledgers
// from the same integration, so no fault plan — crashes, partitions,
// governor churn — may create or destroy energy.
func checkEnergyConserve(cr ChaosRun) OracleVerdict {
	if cr.Config.Energy == nil || cr.Run == nil {
		return skip(OracleEnergyConserve, "energy subsystem not armed")
	}
	e := cr.Run.Energy
	sum := e.X86Joules + e.IXPJoules
	if diff := sum - e.PlatformJoules; diff > energyConserveEps || diff < -energyConserveEps {
		return fail(OracleEnergyConserve,
			"island joules %.9f + %.9f = %.9f != platform %.9f (diff %.3g)",
			e.X86Joules, e.IXPJoules, sum, e.PlatformJoules, diff)
	}
	return pass(OracleEnergyConserve)
}

// powerCapMaxStreak bounds consecutive over-cap control periods after
// convergence: one period for the excursion to show in the metered window
// plus one for the throttle Tune to land — "never above the cap for longer
// than one control period" once detection and actuation latency are
// accounted. The initial convergence ramp (before the budgeter first
// brings the platform under its cap) is excluded: a cold start against a
// saturating workload lawfully spends several periods throttling down.
const powerCapMaxStreak = 2

// checkPowerCap verifies the cap promise on a power-cap run: after first
// convergence, platform power never stays above CapWatts for more than
// powerCapMaxStreak consecutive control periods.
func checkPowerCap(cr ChaosRun) OracleVerdict {
	pc := cr.PowerCap
	if pc == nil {
		return skip(OraclePowerCap, "no power-cap run supplied")
	}
	converged, streak := false, 0
	for _, pt := range pc.Series {
		if pt.Value <= pc.CapWatts {
			converged = true
			streak = 0
			continue
		}
		if !converged {
			continue
		}
		streak++
		if streak > powerCapMaxStreak {
			return fail(OraclePowerCap,
				"platform stayed over the %.0fW cap for %d consecutive periods (> %d) around t=%.1fs",
				pc.CapWatts, streak, powerCapMaxStreak, pt.Seconds)
		}
	}
	if !converged {
		return fail(OraclePowerCap, "platform never came under the %.0fW cap", pc.CapWatts)
	}
	return pass(OraclePowerCap)
}

// checkReplay verifies record->replay zero-divergence: replaying the
// run's flight log reproduces the identical coordination event stream.
func checkReplay(cr ChaosRun) OracleVerdict {
	if cr.Replay == nil {
		return skip(OracleReplay, "run was not recorded")
	}
	if d := cr.Replay.Divergence; d != nil {
		return fail(OracleReplay, "replay diverged: %s", d)
	}
	return pass(OracleReplay)
}
