package repro

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sweep"
)

// SweepOptions shapes a parallel experiment sweep run through the
// internal/sweep engine: worker-pool size, repetitions (aggregated as
// mean ± 95% CI), result caching, and progress reporting. Results are
// byte-identical for any Workers value; see docs/sweeping.md.
type SweepOptions struct {
	// Workers is the trial pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Reps repeats every point with FNV-derived seed substreams
	// (repetition 0 keeps the base seed); <= 0 means 1.
	Reps int
	// Seed is the sweep's base seed (default 1).
	Seed int64
	// CacheDir, when non-empty, enables the content-hash result cache
	// rooted there (conventionally ".sweepcache").
	CacheDir string
	// Progress, when non-nil, receives a snapshot after every trial.
	Progress func(p sweep.Progress)
}

// options compiles the public options into engine options, opening the
// cache if requested. version is the experiment family's cache version.
func (o SweepOptions) options(version string) (sweep.Options, error) {
	opts := sweep.Options{
		Workers:      o.Workers,
		Reps:         o.Reps,
		Seed:         o.Seed,
		CacheVersion: version,
		Progress:     o.Progress,
	}
	if o.CacheDir != "" {
		cache, err := sweep.OpenCache(o.CacheDir)
		if err != nil {
			return sweep.Options{}, err
		}
		opts.Cache = cache
	}
	return opts, nil
}

// faultMatrixVersion invalidates cached fault-matrix trials when the
// experiment's meaning changes. Bump on any model or metric change.
// v2: overload scenarios (bounded queues + coordinated shedding under
// partition/crash) and shed counters joined the matrix.
const faultMatrixVersion = "fault-matrix-v2"

// FaultsRow is one trial of the fault-injection matrix: a RUBiS run under
// one fault scenario on one coordination plane.
type FaultsRow struct {
	Scenario string `json:"scenario"`
	// Plane is "none" (uncoordinated baseline), "fragile"
	// (fire-and-forget coordination), or "reliable" (ack/retry plane).
	Plane string `json:"plane"`

	Throughput float64 `json:"throughput"`
	MeanMs     float64 `json:"mean_ms"`

	Retransmits     uint64 `json:"retransmits"`
	Expired         uint64 `json:"expired"`
	Degradations    uint64 `json:"degradations"`
	BaselineReverts uint64 `json:"baseline_reverts"`

	// Load is the offered-load multiplier (0 means the calibrated 1×
	// population with no overload control armed).
	Load float64 `json:"load,omitempty"`
	// Shed counts requests rejected by the overload plane (tier queues,
	// deadline expiries, and the NIC admission gate combined).
	Shed uint64 `json:"shed,omitempty"`
}

// faultPointCfg is a fault-matrix point's cache-keyed configuration.
type faultPointCfg struct {
	Scenario   string     `json:"scenario"`
	Plane      string     `json:"plane"`
	DurationNs int64      `json:"duration_ns"`
	WarmupNs   int64      `json:"warmup_ns"`
	Plan       *FaultPlan `json:"plan,omitempty"`
	Load       float64    `json:"load,omitempty"`
}

// FaultScenarios returns the canonical fault-injection scenario matrix for
// a run of the given duration: the same matrix drives `reprobench -exp
// ablation-faults`, the chaos tests, the parallel-determinism test, and
// the pinned bench sweep.
func FaultScenarios(dur time.Duration) []struct {
	Name string
	Plan *FaultPlan
	Load float64
} {
	return []struct {
		Name string
		Plan *FaultPlan
		Load float64
	}{
		{"clean", nil, 0},
		{"loss 30%", &FaultPlan{LossRate: 0.3}, 0},
		{"bursts", &FaultPlan{LossRate: 0.05, BurstRate: 0.02, BurstLen: 16}, 0},
		{"chaos mix", &FaultPlan{
			LossRate: 0.15, DupRate: 0.1, ReorderRate: 0.1,
			SpikeRate: 0.05, JitterMax: 100 * time.Microsecond,
		}, 0},
		{"partition", &FaultPlan{Partitions: []Partition{
			{Start: dur / 4, Duration: dur / 4},
		}}, 0},
		{"ixp crash", &FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: dur / 4, Duration: dur / 8},
		}}, 0},
		// Overload scenarios drive 2.5× the calibrated session population
		// into bounded tier queues while the same faults hit the
		// coordination plane — the regime where shedding must keep working
		// even as the shed loop's control messages are lost.
		{"overload+partition", &FaultPlan{Partitions: []Partition{
			{Start: dur / 4, Duration: dur / 4},
		}}, 2.5},
		{"overload+crash", &FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: dur / 4, Duration: dur / 8},
		}}, 2.5},
	}
}

// FaultMatrixPoints expands the scenario matrix into sweep points: the
// uncoordinated baseline first, then every scenario on both the fragile
// and the reliable coordination plane, in stable order.
func FaultMatrixPoints(cfg RubisConfig) []sweep.Point {
	points := []sweep.Point{{
		Name: "baseline",
		Config: faultPointCfg{
			Scenario:   "baseline",
			Plane:      "none",
			DurationNs: int64(cfg.Duration),
			WarmupNs:   int64(cfg.Warmup),
		},
	}}
	for _, sc := range FaultScenarios(cfg.Duration) {
		for _, plane := range []string{"fragile", "reliable"} {
			points = append(points, sweep.Point{
				Name: sc.Name + "/" + plane,
				Config: faultPointCfg{
					Scenario:   sc.Name,
					Plane:      plane,
					DurationNs: int64(cfg.Duration),
					WarmupNs:   int64(cfg.Warmup),
					Plan:       sc.Plan,
					Load:       sc.Load,
				},
			})
		}
	}
	return points
}

// FaultMatrixResult is one parallel run of the fault matrix.
type FaultMatrixResult struct {
	// Sweep is the raw engine result (stable trial order, deterministic
	// JSON, wall-clock throughput).
	Sweep *sweep.RunResult
	// Rows holds the decoded trials in the same stable order.
	Rows []FaultsRow
}

// RunFaultMatrix fans the fault-injection matrix (baseline + scenarios ×
// planes, × repetitions) across the sweep worker pool. cfg supplies the
// run shape (Duration, Warmup); its Seed, Faults, and Robust fields are
// overridden per trial.
func RunFaultMatrix(cfg RubisConfig, opt SweepOptions) (*FaultMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(faultMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := FaultMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(faultPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: fault-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		trialCfg.Faults = pc.Plan
		trialCfg.Robust = pc.Plane == "reliable"
		if pc.Load > 0 {
			trialCfg.LoadFactor = pc.Load
			trialCfg.RequestTimeout = overloadStressTimeout
			ov := overloadStressKnobs()
			ov.Coordinated = pc.Plane != "none"
			ov.Breaker = pc.Plane == "reliable"
			trialCfg.Overload = &ov
		}
		r := RunRubis(trialCfg, pc.Plane != "none")
		rb := r.Robustness
		ov := r.Overload
		return FaultsRow{
			Scenario:        pc.Scenario,
			Plane:           pc.Plane,
			Throughput:      r.Throughput,
			MeanMs:          r.MeanOverTypes(),
			Retransmits:     rb.Retransmits,
			Expired:         rb.Expired,
			Degradations:    rb.Degradations,
			BaselineReverts: rb.BaselineReverts,
			Load:            pc.Load,
			Shed:            ov.QueueShed + ov.Expired + ov.IXPShed,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &FaultMatrixResult{Sweep: res, Rows: make([]FaultsRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a scenario/plane pair, for
// callers that address the matrix by name rather than index.
func (r *FaultMatrixResult) Row(scenario, plane string) (FaultsRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Plane == plane {
			return row, true
		}
	}
	return FaultsRow{}, false
}

// overloadMatrixVersion invalidates cached overload-matrix trials when
// the experiment's meaning changes.
const overloadMatrixVersion = "overload-matrix-v1"

// overloadStressTimeout is the client patience used by the overload
// ablation and the overload fault scenarios: long enough that the
// calibrated 1x population rarely abandons, short enough that queueing
// delay past saturation turns into abandoned (wasted) work.
const overloadStressTimeout = 2 * time.Second

// overloadStressKnobs is the tight admission envelope those experiments
// arm: queues shallow enough to bind past saturation and a queueing
// deadline well under the client timeout, so expiry sheds work the
// client would have abandoned anyway.
func overloadStressKnobs() OverloadControl {
	return OverloadControl{
		QueueCap:      64,
		QueueDeadline: 300 * time.Millisecond,
		Threshold:     150 * time.Millisecond,
	}
}

// OverloadLoads is the offered-load axis of the overload ablation: the
// session-population multipliers swept for every control level.
var OverloadLoads = []float64{1, 2, 3, 4}

// OverloadControls is the control axis of the overload ablation, weakest
// first: no overload control (unbounded queues), bounded tier queues with
// local shedding only, and the full coordinated plane that also sheds at
// the NIC before PCIe.
var OverloadControls = []string{"none", "bounded", "coordinated"}

// OverloadRow is one trial of the overload ablation: a RUBiS run at one
// offered-load multiplier under one overload-control level.
type OverloadRow struct {
	Control string  `json:"control"`
	Load    float64 `json:"load"`

	// Goodput is served (non-shed) requests per second; ServedP95Ms the
	// p95 latency over served responses only.
	Goodput     float64 `json:"goodput"`
	ServedP95Ms float64 `json:"served_p95_ms"`

	QueueShed uint64 `json:"queue_shed"`
	Expired   uint64 `json:"expired"`
	IXPShed   uint64 `json:"ixp_shed"`
	Abandoned uint64 `json:"abandoned"`
	Triggers  uint64 `json:"triggers"`
	ShedTunes uint64 `json:"shed_tunes"`
}

// overloadPointCfg is an overload-matrix point's cache-keyed configuration.
type overloadPointCfg struct {
	Control    string  `json:"control"`
	Load       float64 `json:"load"`
	DurationNs int64   `json:"duration_ns"`
	WarmupNs   int64   `json:"warmup_ns"`
}

// OverloadMatrixPoints expands the overload ablation into sweep points in
// stable order: every control level at every offered-load multiplier.
func OverloadMatrixPoints(cfg RubisConfig) []sweep.Point {
	var points []sweep.Point
	for _, control := range OverloadControls {
		for _, load := range OverloadLoads {
			points = append(points, sweep.Point{
				Name: fmt.Sprintf("%s/%gx", control, load),
				Config: overloadPointCfg{
					Control:    control,
					Load:       load,
					DurationNs: int64(cfg.Duration),
					WarmupNs:   int64(cfg.Warmup),
				},
			})
		}
	}
	return points
}

// OverloadMatrixResult is one parallel run of the overload ablation.
type OverloadMatrixResult struct {
	Sweep *sweep.RunResult
	Rows  []OverloadRow
}

// RunOverloadMatrix fans the overload ablation (controls × loads ×
// repetitions) across the sweep worker pool. The paper's weight-tuning
// scheme is left off for every trial so the matrix isolates the overload
// plane; coordinated trials still actuate weight boosts through the
// controller's Trigger translation.
func RunOverloadMatrix(cfg RubisConfig, opt SweepOptions) (*OverloadMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(overloadMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := OverloadMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(overloadPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: overload-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		trialCfg.LoadFactor = pc.Load
		// Sessions abandon pages unanswered in 2s — identical client
		// behaviour for every control level, so the matrix isolates how
		// much server work each level wastes on abandoned pages. At 4x
		// load the uncontrolled baseline serves nothing in time at all
		// (goodput 0, p95 printed as 0 for lack of samples).
		trialCfg.RequestTimeout = overloadStressTimeout
		// The default knobs (cap 512, deadline 4s) are sized never to bind
		// at the calibrated population; the ablation stresses a deliberately
		// tight envelope so the control levels separate.
		stress := overloadStressKnobs()
		switch pc.Control {
		case "none":
			trialCfg.Overload = nil
		case "bounded":
			ov := stress
			trialCfg.Overload = &ov
		case "coordinated":
			ov := stress
			ov.Coordinated = true
			trialCfg.Overload = &ov
		default:
			return nil, fmt.Errorf("repro: unknown overload control %q", pc.Control)
		}
		r := RunRubis(trialCfg, false)
		ov := r.Overload
		return OverloadRow{
			Control:     pc.Control,
			Load:        pc.Load,
			Goodput:     r.Throughput,
			ServedP95Ms: ov.ServedP95Ms,
			QueueShed:   ov.QueueShed,
			Expired:     ov.Expired,
			IXPShed:     ov.IXPShed,
			Abandoned:   ov.Abandoned,
			Triggers:    ov.TriggersSent,
			ShedTunes:   ov.ShedTunes,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &OverloadMatrixResult{Sweep: res, Rows: make([]OverloadRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a control/load pair. Loads are
// grid values (1x, 2x, ...) so a coarse tolerance identifies them.
func (r *OverloadMatrixResult) Row(control string, load float64) (OverloadRow, bool) {
	for _, row := range r.Rows {
		if row.Control == control && math.Abs(row.Load-load) < 1e-9 {
			return row, true
		}
	}
	return OverloadRow{}, false
}

// energyMatrixVersion invalidates cached energy-matrix trials when the
// experiment's meaning changes.
const energyMatrixVersion = "energy-matrix-v1"

// EnergyLoads is the offered-load axis of the energy ablation: half the
// calibrated population (latency slack on both islands), the calibrated
// 1× point (the x86 island saturated, slack visible only to a
// latency-aware governor), and 1.5× (past saturation, where no governor
// can meet the SLO and every plane converges on the top points).
var EnergyLoads = []float64{0.5, 1, 1.5}

// EnergyGovernors is the policy axis of the energy ablation, weakest
// first: no governor (both islands pinned at their top operating points),
// per-island latency-blind ondemand governors (the uncoordinated
// ablation), and the QoS-constrained coordinated governor.
var EnergyGovernors = []string{"off", "ondemand", "coordinated"}

// EnergyRow is one trial of the energy ablation: a RUBiS run at one
// offered-load multiplier under one governor policy.
type EnergyRow struct {
	Governor string  `json:"governor"`
	Load     float64 `json:"load"`

	PlatformJoules   float64 `json:"platform_joules"`
	X86Joules        float64 `json:"x86_joules"`
	IXPJoules        float64 `json:"ixp_joules"`
	JoulesPerRequest float64 `json:"joules_per_request"`

	Throughput  float64 `json:"throughput"`
	ServedP95Ms float64 `json:"served_p95_ms"`

	// QoSViolations counts control windows whose p95 exceeded the SLO
	// (out of QoSWindows observed); Transitions counts operating-point
	// changes committed across both islands.
	QoSViolations int `json:"qos_violations"`
	QoSWindows    int `json:"qos_windows"`
	Transitions   int `json:"transitions"`
}

// energyPointCfg is an energy-matrix point's cache-keyed configuration.
type energyPointCfg struct {
	Governor   string  `json:"governor"`
	Load       float64 `json:"load"`
	DurationNs int64   `json:"duration_ns"`
	WarmupNs   int64   `json:"warmup_ns"`
}

// EnergyMatrixPoints expands the energy ablation into sweep points in
// stable order: every governor policy at every offered-load multiplier.
func EnergyMatrixPoints(cfg RubisConfig) []sweep.Point {
	var points []sweep.Point
	for _, gov := range EnergyGovernors {
		for _, load := range EnergyLoads {
			points = append(points, sweep.Point{
				Name: fmt.Sprintf("%s/%gx", gov, load),
				Config: energyPointCfg{
					Governor:   gov,
					Load:       load,
					DurationNs: int64(cfg.Duration),
					WarmupNs:   int64(cfg.Warmup),
				},
			})
		}
	}
	return points
}

// EnergyMatrixResult is one parallel run of the energy ablation.
type EnergyMatrixResult struct {
	Sweep *sweep.RunResult
	Rows  []EnergyRow
}

// RunEnergyMatrix fans the energy ablation (governors × loads ×
// repetitions) across the sweep worker pool. The paper's weight-tuning
// scheme stays on for every trial so the matrix isolates the energy
// governor; every other knob is the calibrated default.
func RunEnergyMatrix(cfg RubisConfig, opt SweepOptions) (*EnergyMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(energyMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := EnergyMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(energyPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: energy-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		trialCfg.LoadFactor = pc.Load
		trialCfg.Energy = &EnergyControl{Governor: pc.Governor}
		r := RunRubis(trialCfg, true)
		e := r.Energy
		return EnergyRow{
			Governor:         pc.Governor,
			Load:             pc.Load,
			PlatformJoules:   e.PlatformJoules,
			X86Joules:        e.X86Joules,
			IXPJoules:        e.IXPJoules,
			JoulesPerRequest: e.JoulesPerRequest,
			Throughput:       r.Throughput,
			ServedP95Ms:      r.Overload.ServedP95Ms,
			QoSViolations:    e.QoSViolations,
			QoSWindows:       e.QoSWindows,
			Transitions:      e.Transitions,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &EnergyMatrixResult{Sweep: res, Rows: make([]EnergyRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a governor/load pair.
func (r *EnergyMatrixResult) Row(governor string, load float64) (EnergyRow, bool) {
	for _, row := range r.Rows {
		if row.Governor == governor && math.Abs(row.Load-load) < 1e-9 {
			return row, true
		}
	}
	return EnergyRow{}, false
}

// Pinned bench-sweep configuration: the regression guard reruns exactly
// this sweep and compares against the committed BENCH_sweep.json. The
// simulated metrics are a pure function of these values, so any drift
// means the models changed; the wall-clock trial throughput seeds the
// perf trajectory.
const (
	BenchSweepName = "rubis-matrix"
	benchSweepSeed = 1
	benchSweepReps = 2
	benchSweepDur  = 20 * time.Second
)

// RunBenchSweep executes the pinned benchmark suite — the fault matrix,
// the trace-driven scenario matrix, and the energy matrix, merged into one
// report — and returns it. The cache is deliberately not used: the guard
// measures real trial throughput.
func RunBenchSweep(workers int, progress func(p sweep.Progress)) (*sweep.BenchReport, error) {
	cfg := RubisConfig{Seed: benchSweepSeed, Duration: benchSweepDur}
	opt := SweepOptions{Workers: workers, Reps: benchSweepReps, Seed: benchSweepSeed, Progress: progress}
	faults, err := RunFaultMatrix(cfg, opt)
	if err != nil {
		return nil, err
	}
	scenarios, err := RunScenarioMatrix(cfg, opt)
	if err != nil {
		return nil, err
	}
	energy, err := RunEnergyMatrix(cfg, opt)
	if err != nil {
		return nil, err
	}
	return sweep.MergeBenchReports(BenchSweepName,
		sweep.NewBenchReport(BenchSweepName, faults.Sweep),
		sweep.NewBenchReport(BenchSweepName, scenarios.Sweep),
		sweep.NewBenchReport(BenchSweepName, energy.Sweep),
	), nil
}

// failoverMatrixVersion invalidates cached failover-matrix trials when the
// experiment's meaning changes.
const failoverMatrixVersion = "failover-matrix-v1"

// FailoverRow is one trial of the controller-availability matrix: a RUBiS
// run with a solo or replicated controller under one controller fault
// scenario.
type FailoverRow struct {
	Scenario string `json:"scenario"`
	// Plane is "solo" (one controller, checkpointing but nothing to fail
	// over to) or "replicated" (three replicas, deterministic election).
	Plane string `json:"plane"`

	Throughput float64 `json:"throughput"`
	MeanMs     float64 `json:"mean_ms"`

	Checkpoints    uint64 `json:"checkpoints"`
	Promotions     uint64 `json:"promotions"`
	StaleDropped   uint64 `json:"stale_dropped"`
	NoPrimaryDrops uint64 `json:"no_primary_drops"`

	// Load is the offered-load multiplier (0 means the calibrated 1×
	// population with no overload control armed).
	Load float64 `json:"load,omitempty"`
	Shed uint64  `json:"shed,omitempty"`
}

// failoverPointCfg is a failover-matrix point's cache-keyed configuration.
type failoverPointCfg struct {
	Scenario   string     `json:"scenario"`
	Plane      string     `json:"plane"`
	Replicas   int        `json:"replicas"`
	DurationNs int64      `json:"duration_ns"`
	WarmupNs   int64      `json:"warmup_ns"`
	Plan       *FaultPlan `json:"plan,omitempty"`
	Load       float64    `json:"load,omitempty"`
}

// FailoverScenarios returns the canonical controller fault-window matrix
// for a run of the given duration: the same matrix drives `reprobench -exp
// ablation-failover` and the failover chaos tests. Replica 0 is the
// initial primary in every scenario.
func FailoverScenarios(dur time.Duration) []struct {
	Name string
	Plan *FaultPlan
	Load float64
} {
	return []struct {
		Name string
		Plan *FaultPlan
		Load float64
	}{
		{"clean", nil, 0},
		{"primary crash", &FaultPlan{ControllerCrashes: []ReplicaWindow{
			{Replica: 0, Start: dur / 4, Duration: dur / 4},
		}}, 0},
		{"primary partition", &FaultPlan{ControllerPartitions: []ReplicaWindow{
			{Replica: 0, Start: dur / 4, Duration: dur / 4},
		}}, 0},
		// The overload scenario kills the primary while 2x the calibrated
		// population keeps the shed loop busy — the promoted standby must
		// pick up both routing and overload translation.
		{"overload+crash", &FaultPlan{ControllerCrashes: []ReplicaWindow{
			{Replica: 0, Start: dur / 4, Duration: dur / 4},
		}}, 2.0},
	}
}

// FailoverMatrixPoints expands the scenario matrix into sweep points:
// every scenario on the solo (1 replica) and replicated (3 replicas)
// controller plane, in stable order.
func FailoverMatrixPoints(cfg RubisConfig) []sweep.Point {
	var points []sweep.Point
	for _, sc := range FailoverScenarios(cfg.Duration) {
		for _, plane := range []struct {
			Name     string
			Replicas int
		}{{"solo", 1}, {"replicated", 3}} {
			points = append(points, sweep.Point{
				Name: sc.Name + "/" + plane.Name,
				Config: failoverPointCfg{
					Scenario:   sc.Name,
					Plane:      plane.Name,
					Replicas:   plane.Replicas,
					DurationNs: int64(cfg.Duration),
					WarmupNs:   int64(cfg.Warmup),
					Plan:       sc.Plan,
					Load:       sc.Load,
				},
			})
		}
	}
	return points
}

// FailoverMatrixResult is one parallel run of the failover matrix.
type FailoverMatrixResult struct {
	Sweep *sweep.RunResult
	Rows  []FailoverRow
}

// RunFailoverMatrix fans the controller-availability matrix (scenarios ×
// controller planes, × repetitions) across the sweep worker pool. cfg
// supplies the run shape (Duration, Warmup); its Seed, Faults, Robust, and
// Failover fields are overridden per trial.
func RunFailoverMatrix(cfg RubisConfig, opt SweepOptions) (*FailoverMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(failoverMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := FailoverMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(failoverPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: failover-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		trialCfg.Faults = pc.Plan
		trialCfg.Robust = true
		trialCfg.Failover = &FailoverControl{Replicas: pc.Replicas}
		if pc.Load > 0 {
			trialCfg.LoadFactor = pc.Load
			trialCfg.RequestTimeout = overloadStressTimeout
			ov := overloadStressKnobs()
			ov.Coordinated = true
			ov.Breaker = true
			trialCfg.Overload = &ov
		}
		r := RunRubis(trialCfg, true)
		fo := r.Failover
		ov := r.Overload
		return FailoverRow{
			Scenario:       pc.Scenario,
			Plane:          pc.Plane,
			Throughput:     r.Throughput,
			MeanMs:         r.MeanOverTypes(),
			Checkpoints:    fo.Checkpoints,
			Promotions:     fo.Promotions,
			StaleDropped:   fo.StaleDropped,
			NoPrimaryDrops: fo.NoPrimaryDrops,
			Load:           pc.Load,
			Shed:           ov.QueueShed + ov.Expired + ov.IXPShed,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &FailoverMatrixResult{Sweep: res, Rows: make([]FailoverRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a scenario/plane pair.
func (r *FailoverMatrixResult) Row(scenario, plane string) (FailoverRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Plane == plane {
			return row, true
		}
	}
	return FailoverRow{}, false
}
