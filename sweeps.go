package repro

import (
	"fmt"
	"time"

	"repro/internal/sweep"
)

// SweepOptions shapes a parallel experiment sweep run through the
// internal/sweep engine: worker-pool size, repetitions (aggregated as
// mean ± 95% CI), result caching, and progress reporting. Results are
// byte-identical for any Workers value; see docs/sweeping.md.
type SweepOptions struct {
	// Workers is the trial pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Reps repeats every point with FNV-derived seed substreams
	// (repetition 0 keeps the base seed); <= 0 means 1.
	Reps int
	// Seed is the sweep's base seed (default 1).
	Seed int64
	// CacheDir, when non-empty, enables the content-hash result cache
	// rooted there (conventionally ".sweepcache").
	CacheDir string
	// Progress, when non-nil, receives a snapshot after every trial.
	Progress func(p sweep.Progress)
}

// options compiles the public options into engine options, opening the
// cache if requested. version is the experiment family's cache version.
func (o SweepOptions) options(version string) (sweep.Options, error) {
	opts := sweep.Options{
		Workers:      o.Workers,
		Reps:         o.Reps,
		Seed:         o.Seed,
		CacheVersion: version,
		Progress:     o.Progress,
	}
	if o.CacheDir != "" {
		cache, err := sweep.OpenCache(o.CacheDir)
		if err != nil {
			return sweep.Options{}, err
		}
		opts.Cache = cache
	}
	return opts, nil
}

// faultMatrixVersion invalidates cached fault-matrix trials when the
// experiment's meaning changes. Bump on any model or metric change.
const faultMatrixVersion = "fault-matrix-v1"

// FaultsRow is one trial of the fault-injection matrix: a RUBiS run under
// one fault scenario on one coordination plane.
type FaultsRow struct {
	Scenario string `json:"scenario"`
	// Plane is "none" (uncoordinated baseline), "fragile"
	// (fire-and-forget coordination), or "reliable" (ack/retry plane).
	Plane string `json:"plane"`

	Throughput float64 `json:"throughput"`
	MeanMs     float64 `json:"mean_ms"`

	Retransmits     uint64 `json:"retransmits"`
	Expired         uint64 `json:"expired"`
	Degradations    uint64 `json:"degradations"`
	BaselineReverts uint64 `json:"baseline_reverts"`
}

// faultPointCfg is a fault-matrix point's cache-keyed configuration.
type faultPointCfg struct {
	Scenario   string     `json:"scenario"`
	Plane      string     `json:"plane"`
	DurationNs int64      `json:"duration_ns"`
	WarmupNs   int64      `json:"warmup_ns"`
	Plan       *FaultPlan `json:"plan,omitempty"`
}

// FaultScenarios returns the canonical fault-injection scenario matrix for
// a run of the given duration: the same matrix drives `reprobench -exp
// ablation-faults`, the chaos tests, the parallel-determinism test, and
// the pinned bench sweep.
func FaultScenarios(dur time.Duration) []struct {
	Name string
	Plan *FaultPlan
} {
	return []struct {
		Name string
		Plan *FaultPlan
	}{
		{"clean", nil},
		{"loss 30%", &FaultPlan{LossRate: 0.3}},
		{"bursts", &FaultPlan{LossRate: 0.05, BurstRate: 0.02, BurstLen: 16}},
		{"chaos mix", &FaultPlan{
			LossRate: 0.15, DupRate: 0.1, ReorderRate: 0.1,
			SpikeRate: 0.05, JitterMax: 100 * time.Microsecond,
		}},
		{"partition", &FaultPlan{Partitions: []Partition{
			{Start: dur / 4, Duration: dur / 4},
		}}},
		{"ixp crash", &FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: dur / 4, Duration: dur / 8},
		}}},
	}
}

// FaultMatrixPoints expands the scenario matrix into sweep points: the
// uncoordinated baseline first, then every scenario on both the fragile
// and the reliable coordination plane, in stable order.
func FaultMatrixPoints(cfg RubisConfig) []sweep.Point {
	points := []sweep.Point{{
		Name: "baseline",
		Config: faultPointCfg{
			Scenario:   "baseline",
			Plane:      "none",
			DurationNs: int64(cfg.Duration),
			WarmupNs:   int64(cfg.Warmup),
		},
	}}
	for _, sc := range FaultScenarios(cfg.Duration) {
		for _, plane := range []string{"fragile", "reliable"} {
			points = append(points, sweep.Point{
				Name: sc.Name + "/" + plane,
				Config: faultPointCfg{
					Scenario:   sc.Name,
					Plane:      plane,
					DurationNs: int64(cfg.Duration),
					WarmupNs:   int64(cfg.Warmup),
					Plan:       sc.Plan,
				},
			})
		}
	}
	return points
}

// FaultMatrixResult is one parallel run of the fault matrix.
type FaultMatrixResult struct {
	// Sweep is the raw engine result (stable trial order, deterministic
	// JSON, wall-clock throughput).
	Sweep *sweep.RunResult
	// Rows holds the decoded trials in the same stable order.
	Rows []FaultsRow
}

// RunFaultMatrix fans the fault-injection matrix (baseline + scenarios ×
// planes, × repetitions) across the sweep worker pool. cfg supplies the
// run shape (Duration, Warmup); its Seed, Faults, and Robust fields are
// overridden per trial.
func RunFaultMatrix(cfg RubisConfig, opt SweepOptions) (*FaultMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(faultMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := FaultMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(faultPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: fault-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		trialCfg.Faults = pc.Plan
		trialCfg.Robust = pc.Plane == "reliable"
		r := RunRubis(trialCfg, pc.Plane != "none")
		rb := r.Robustness
		return FaultsRow{
			Scenario:        pc.Scenario,
			Plane:           pc.Plane,
			Throughput:      r.Throughput,
			MeanMs:          r.MeanOverTypes(),
			Retransmits:     rb.Retransmits,
			Expired:         rb.Expired,
			Degradations:    rb.Degradations,
			BaselineReverts: rb.BaselineReverts,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &FaultMatrixResult{Sweep: res, Rows: make([]FaultsRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a scenario/plane pair, for
// callers that address the matrix by name rather than index.
func (r *FaultMatrixResult) Row(scenario, plane string) (FaultsRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Plane == plane {
			return row, true
		}
	}
	return FaultsRow{}, false
}

// Pinned bench-sweep configuration: the regression guard reruns exactly
// this sweep and compares against the committed BENCH_sweep.json. The
// simulated metrics are a pure function of these values, so any drift
// means the models changed; the wall-clock trial throughput seeds the
// perf trajectory.
const (
	BenchSweepName = "rubis-fault-matrix"
	benchSweepSeed = 1
	benchSweepReps = 2
	benchSweepDur  = 20 * time.Second
)

// RunBenchSweep executes the pinned benchmark sweep and returns its
// report. The cache is deliberately not used: the guard measures real
// trial throughput.
func RunBenchSweep(workers int, progress func(p sweep.Progress)) (*sweep.BenchReport, error) {
	res, err := RunFaultMatrix(
		RubisConfig{Seed: benchSweepSeed, Duration: benchSweepDur},
		SweepOptions{Workers: workers, Reps: benchSweepReps, Seed: benchSweepSeed, Progress: progress},
	)
	if err != nil {
		return nil, err
	}
	return sweep.NewBenchReport(BenchSweepName, res.Sweep), nil
}
