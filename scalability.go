package repro

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ScalabilityConfig parameterizes the coordination-mechanism scalability
// study — the paper's ongoing work (§5): how do the Tune/Trigger mechanisms
// behave as platforms grow to many islands, and when does distributing
// coordination beat the prototype's central controller?
type ScalabilityConfig struct {
	Seed          int64
	Islands       []int         // island counts to sweep (default 2..64 doubling)
	RatePerIsland float64       // coordination messages/s per island (default 200)
	Duration      time.Duration // simulated time per point (default 10s)
	HopLatency    time.Duration // per-hop transport latency (default 150us, the PCIe mailbox)
	HubCost       time.Duration // controller's per-message routing cost (default 50us)

	// Workers is the parallel trial pool size; <= 0 uses GOMAXPROCS. Every
	// (topology, islands) point is an independent simulation, so results
	// are identical for any worker count.
	Workers int
	// Reps repeats each point with FNV-derived seed substreams (repetition
	// 0 keeps Seed, so Reps <= 1 reproduces historical single-run results
	// exactly). With Reps > 1 each point reports the mean across
	// repetitions plus 95% confidence intervals.
	Reps int
}

func (c *ScalabilityConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Islands) == 0 {
		c.Islands = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.RatePerIsland <= 0 {
		c.RatePerIsland = 200
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.HopLatency == 0 {
		c.HopLatency = 150 * time.Microsecond
	}
	if c.HubCost == 0 {
		c.HubCost = 50 * time.Microsecond
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
}

// ScalabilityPoint is one (topology, island count) measurement. With
// repetitions, the float metrics are means across repetitions and the CI
// fields carry 95% confidence half-widths (zero for a single repetition).
type ScalabilityPoint struct {
	Topology      string // "star" (central controller) or "direct" (distributed)
	Islands       int
	OfferedPerSec float64
	RoutedPerSec  float64
	MeanLatencyUs float64
	P99LatencyUs  float64
	MaxLatencyUs  float64

	Reps       int     `json:",omitempty"`
	MeanCI95Us float64 `json:",omitempty"` // 95% CI half-width on MeanLatencyUs
	P99CI95Us  float64 `json:",omitempty"` // 95% CI half-width on P99LatencyUs
}

// RunCoordScalability sweeps island counts for both topologies. In the
// star topology every Tune crosses two transport hops and a serializing
// central controller; in the direct (distributed) topology islands address
// each other over a single hop. The crossover — where the hub's queueing
// dominates the extra complexity of distribution — motivates the paper's
// call for distributed coordination on large many-cores.
//
// Points (and repetitions) fan out across the sweep worker pool; results
// are deterministic and identical for any Workers value.
func RunCoordScalability(cfg ScalabilityConfig) []ScalabilityPoint {
	cfg.applyDefaults()

	type pointCfg struct {
		Topology      string  `json:"topology"`
		Islands       int     `json:"islands"`
		RatePerIsland float64 `json:"rate_per_island"`
		DurationNs    int64   `json:"duration_ns"`
		HopNs         int64   `json:"hop_ns"`
		HubNs         int64   `json:"hub_ns"`
	}
	var points []sweep.Point
	for _, n := range cfg.Islands {
		for _, topo := range []string{"star", "direct"} {
			points = append(points, sweep.Point{
				Name: fmt.Sprintf("%s/%d", topo, n),
				Config: pointCfg{
					Topology:      topo,
					Islands:       n,
					RatePerIsland: cfg.RatePerIsland,
					DurationNs:    int64(cfg.Duration),
					HopNs:         int64(cfg.HopLatency),
					HubNs:         int64(cfg.HubCost),
				},
			})
		}
	}

	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc := t.Point.Config.(pointCfg)
		trialCfg := cfg
		trialCfg.Seed = t.Seed
		return runScalabilityPoint(trialCfg, pc.Islands, pc.Topology), nil
	}, sweep.Options{Workers: cfg.Workers, Reps: cfg.Reps, Seed: cfg.Seed})
	if err != nil {
		// Points are generated above with unique names and marshalable
		// configs, and the runner never errors, so this is unreachable
		// short of an engine bug.
		panic(fmt.Sprintf("repro: scalability sweep failed: %v", err))
	}

	out := make([]ScalabilityPoint, 0, len(points))
	for pi := range points {
		reps := make([]ScalabilityPoint, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := res.Decode(pi*cfg.Reps+rep, &reps[rep]); err != nil {
				panic(fmt.Sprintf("repro: scalability sweep result: %v", err))
			}
		}
		out = append(out, aggregateScalability(reps))
	}
	return out
}

// aggregateScalability folds one point's repetitions into a single point:
// means across repetitions, with 95% confidence intervals on the latency
// metrics. A single repetition passes through unchanged.
func aggregateScalability(reps []ScalabilityPoint) ScalabilityPoint {
	if len(reps) == 1 {
		return reps[0]
	}
	agg := ScalabilityPoint{Topology: reps[0].Topology, Islands: reps[0].Islands, Reps: len(reps)}
	var offered, routed, meanLat, p99, maxLat stats.Summary
	for _, r := range reps {
		offered.Add(r.OfferedPerSec)
		routed.Add(r.RoutedPerSec)
		meanLat.Add(r.MeanLatencyUs)
		p99.Add(r.P99LatencyUs)
		maxLat.Add(r.MaxLatencyUs)
	}
	agg.OfferedPerSec = offered.Mean()
	agg.RoutedPerSec = routed.Mean()
	agg.MeanLatencyUs = meanLat.Mean()
	agg.P99LatencyUs = p99.Mean()
	agg.MaxLatencyUs = maxLat.Mean()
	agg.MeanCI95Us = meanLat.CI95()
	agg.P99CI95Us = p99.CI95()
	return agg
}

func runScalabilityPoint(cfg ScalabilityConfig, islands int, topo string) ScalabilityPoint {
	s := sim.New(cfg.Seed)
	hop := toSim(cfg.HopLatency)
	hubCost := toSim(cfg.HubCost)
	duration := toSim(cfg.Duration)

	var lat stats.Sample
	var sent, routed uint64

	// deliver records end-to-end latency at the destination island.
	deliver := func(sentAt sim.Time) {
		routed++
		lat.Add((s.Now() - sentAt).Microseconds())
	}

	// In the star topology, a central hub serializes routing: each message
	// occupies it for hubCost before the second hop begins.
	var hubBusy sim.Time
	routeViaHub := func(sentAt sim.Time) {
		start := s.Now()
		if hubBusy > start {
			start = hubBusy
		}
		hubBusy = start + hubCost
		s.At(hubBusy, func() {
			s.After(hop, func() { deliver(sentAt) })
		})
	}

	// Each island emits Poisson coordination traffic to random peers.
	rng := s.Rand().Fork()
	interval := sim.Time(float64(sim.Second) / cfg.RatePerIsland)
	for i := 0; i < islands; i++ {
		var emit func()
		emit = func() {
			if s.Now() >= duration {
				return
			}
			sent++
			at := s.Now()
			switch topo {
			case "star":
				s.After(hop, func() { routeViaHub(at) })
			default: // direct
				s.After(hop, func() { deliver(at) })
			}
			s.After(rng.ExpTime(interval), emit)
		}
		s.After(rng.ExpTime(interval), emit)
	}
	s.RunUntil(duration + 10*sim.Second) // drain in-flight messages

	secs := duration.Seconds()
	return ScalabilityPoint{
		Topology:      topo,
		Islands:       islands,
		OfferedPerSec: float64(sent) / secs,
		RoutedPerSec:  float64(routed) / secs,
		MeanLatencyUs: mean(&lat),
		P99LatencyUs:  lat.Percentile(99),
		MaxLatencyUs:  lat.Percentile(100),
	}
}

func mean(sample *stats.Sample) float64 {
	vs := sample.Values()
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// String renders the point for harness output.
func (p ScalabilityPoint) String() string {
	s := fmt.Sprintf("%-6s islands=%-3d offered=%8.0f/s routed=%8.0f/s mean=%7.1fus p99=%8.1fus max=%8.1fus",
		p.Topology, p.Islands, p.OfferedPerSec, p.RoutedPerSec, p.MeanLatencyUs, p.P99LatencyUs, p.MaxLatencyUs)
	if p.Reps > 1 {
		s += fmt.Sprintf(" (n=%d mean±%.1f p99±%.1f)", p.Reps, p.MeanCI95Us, p.P99CI95Us)
	}
	return s
}
