package repro

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ScalabilityConfig parameterizes the coordination-mechanism scalability
// study — the paper's ongoing work (§5): how do the Tune/Trigger mechanisms
// behave as platforms grow to many islands, and when does distributing
// coordination beat the prototype's central controller?
type ScalabilityConfig struct {
	Seed          int64
	Islands       []int         // island counts to sweep (default 2..64 doubling)
	RatePerIsland float64       // coordination messages/s per island (default 200)
	Duration      time.Duration // simulated time per point (default 10s)
	HopLatency    time.Duration // per-hop transport latency (default 150us, the PCIe mailbox)
	HubCost       time.Duration // controller's per-message routing cost (default 50us)
}

func (c *ScalabilityConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Islands) == 0 {
		c.Islands = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.RatePerIsland <= 0 {
		c.RatePerIsland = 200
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.HopLatency == 0 {
		c.HopLatency = 150 * time.Microsecond
	}
	if c.HubCost == 0 {
		c.HubCost = 50 * time.Microsecond
	}
}

// ScalabilityPoint is one (topology, island count) measurement.
type ScalabilityPoint struct {
	Topology      string // "star" (central controller) or "direct" (distributed)
	Islands       int
	OfferedPerSec float64
	RoutedPerSec  float64
	MeanLatencyUs float64
	P99LatencyUs  float64
	MaxLatencyUs  float64
}

// RunCoordScalability sweeps island counts for both topologies. In the
// star topology every Tune crosses two transport hops and a serializing
// central controller; in the direct (distributed) topology islands address
// each other over a single hop. The crossover — where the hub's queueing
// dominates the extra complexity of distribution — motivates the paper's
// call for distributed coordination on large many-cores.
func RunCoordScalability(cfg ScalabilityConfig) []ScalabilityPoint {
	cfg.applyDefaults()
	var out []ScalabilityPoint
	for _, n := range cfg.Islands {
		for _, topo := range []string{"star", "direct"} {
			out = append(out, runScalabilityPoint(cfg, n, topo))
		}
	}
	return out
}

func runScalabilityPoint(cfg ScalabilityConfig, islands int, topo string) ScalabilityPoint {
	s := sim.New(cfg.Seed)
	hop := toSim(cfg.HopLatency)
	hubCost := toSim(cfg.HubCost)
	duration := toSim(cfg.Duration)

	var lat stats.Sample
	var sent, routed uint64

	// deliver records end-to-end latency at the destination island.
	deliver := func(sentAt sim.Time) {
		routed++
		lat.Add((s.Now() - sentAt).Microseconds())
	}

	// In the star topology, a central hub serializes routing: each message
	// occupies it for hubCost before the second hop begins.
	var hubBusy sim.Time
	routeViaHub := func(sentAt sim.Time) {
		start := s.Now()
		if hubBusy > start {
			start = hubBusy
		}
		hubBusy = start + hubCost
		s.At(hubBusy, func() {
			s.After(hop, func() { deliver(sentAt) })
		})
	}

	// Each island emits Poisson coordination traffic to random peers.
	rng := s.Rand().Fork()
	interval := sim.Time(float64(sim.Second) / cfg.RatePerIsland)
	for i := 0; i < islands; i++ {
		var emit func()
		emit = func() {
			if s.Now() >= duration {
				return
			}
			sent++
			at := s.Now()
			switch topo {
			case "star":
				s.After(hop, func() { routeViaHub(at) })
			default: // direct
				s.After(hop, func() { deliver(at) })
			}
			s.After(rng.ExpTime(interval), emit)
		}
		s.After(rng.ExpTime(interval), emit)
	}
	s.RunUntil(duration + 10*sim.Second) // drain in-flight messages

	secs := duration.Seconds()
	return ScalabilityPoint{
		Topology:      topo,
		Islands:       islands,
		OfferedPerSec: float64(sent) / secs,
		RoutedPerSec:  float64(routed) / secs,
		MeanLatencyUs: mean(&lat),
		P99LatencyUs:  lat.Percentile(99),
		MaxLatencyUs:  lat.Percentile(100),
	}
}

func mean(sample *stats.Sample) float64 {
	vs := sample.Values()
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// String renders the point for harness output.
func (p ScalabilityPoint) String() string {
	return fmt.Sprintf("%-6s islands=%-3d offered=%8.0f/s routed=%8.0f/s mean=%7.1fus p99=%8.1fus max=%8.1fus",
		p.Topology, p.Islands, p.OfferedPerSec, p.RoutedPerSec, p.MeanLatencyUs, p.P99LatencyUs, p.MaxLatencyUs)
}
