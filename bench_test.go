package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations from DESIGN.md. Each iteration runs the full simulated
// experiment (shortened relative to reprobench's defaults so `go test
// -bench` completes in minutes); reported custom metrics carry the
// headline numbers so regressions in the *results*, not just the
// simulator's speed, are visible in benchmark output.

import (
	"testing"
	"time"
)

const (
	benchRubisDur = 40 * time.Second
	benchMediaDur = 30 * time.Second
	benchTrigDur  = 60 * time.Second
)

// BenchmarkFig2RubisBaselineVariation regenerates Figure 2: per-type
// min-max response-time variation without coordination.
func BenchmarkFig2RubisBaselineVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur}, false)
		b.ReportMetric(r.MaxOverTypes(), "max-ms")
		b.ReportMetric(r.MeanOverTypes(), "mean-ms")
	}
}

// BenchmarkFig4RubisMinMaxCoord regenerates Figure 4: min-max response
// times with and without coordination.
func BenchmarkFig4RubisMinMaxCoord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, coord := CompareRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur})
		b.ReportMetric(base.MaxOverTypes(), "base-max-ms")
		b.ReportMetric(coord.MaxOverTypes(), "coord-max-ms")
	}
}

// BenchmarkTable1RubisAvgResponse regenerates Table 1: average response
// times per request type.
func BenchmarkTable1RubisAvgResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, coord := CompareRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur})
		b.ReportMetric(base.MeanOverTypes(), "base-mean-ms")
		b.ReportMetric(coord.MeanOverTypes(), "coord-mean-ms")
	}
}

// BenchmarkTable2RubisThroughput regenerates Table 2: throughput, sessions,
// and platform efficiency.
func BenchmarkTable2RubisThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, coord := CompareRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur})
		b.ReportMetric(base.Throughput, "base-req/s")
		b.ReportMetric(coord.Throughput, "coord-req/s")
		b.ReportMetric(coord.Efficiency, "coord-eff")
	}
}

// BenchmarkFig5RubisCPUUtilization regenerates Figure 5: per-tier CPU
// utilization.
func BenchmarkFig5RubisCPUUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, coord := CompareRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur})
		b.ReportMetric(base.TotalUtil, "base-util%")
		b.ReportMetric(coord.TotalUtil, "coord-util%")
	}
}

// BenchmarkFig6MplayerQoS regenerates Figure 6: stream QoS across the
// three weight configurations.
func BenchmarkFig6MplayerQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunMplayerQoS(int64(i+1), benchMediaDur)
		b.ReportMetric(rows[0].Dom2FPS, "base-dom2-fps")
		b.ReportMetric(rows[1].Dom2FPS, "coord-dom2-fps")
	}
}

// BenchmarkFig7BufferTrigger regenerates Figure 7: the buffer-watermark
// trigger scheme under a bursty UDP stream.
func BenchmarkFig7BufferTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, coord := RunMplayerTrigger(int64(i+1), benchTrigDur)
		b.ReportMetric(base.Dom1FPS, "base-fps")
		b.ReportMetric(coord.Dom1FPS, "coord-fps")
		b.ReportMetric(float64(coord.Triggers), "triggers")
	}
}

// BenchmarkTable3TriggerInterference regenerates Table 3: the trigger
// scheme's cost to a VM that uses no IXP resources.
func BenchmarkTable3TriggerInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunMplayerInterference(int64(i+1), benchTrigDur)
		b.ReportMetric(r.Dom1ChangePct, "dom1-change%")
		b.ReportMetric(r.Dom2ChangePct, "dom2-change%")
	}
}

// BenchmarkAblationPCIeLatency sweeps the coordination-channel latency the
// paper blames for occasional mis-coordination.
func BenchmarkAblationPCIeLatency(b *testing.B) {
	for _, lat := range []time.Duration{5 * time.Microsecond, 150 * time.Microsecond, 5 * time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur, CoordLatency: lat}, true)
				b.ReportMetric(r.MeanOverTypes(), "mean-ms")
			}
		})
	}
}

// BenchmarkAblationMechanisms compares the coordination policy variants.
func BenchmarkAblationMechanisms(b *testing.B) {
	for _, s := range []CoordScheme{SchemeOutstanding, SchemeLoadTrack, SchemeClass} {
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunRubis(RubisConfig{Seed: int64(i + 1), Duration: benchRubisDur, Scheme: s}, true)
				b.ReportMetric(r.MeanOverTypes(), "mean-ms")
				b.ReportMetric(r.Throughput, "req/s")
			}
		})
	}
}

// BenchmarkAblationTriggerThreshold sweeps the Figure 7 watermark.
func BenchmarkAblationTriggerThreshold(b *testing.B) {
	// The threshold knob lives in the internal config; the public facade
	// fixes the paper's 128 KB. Exercise sensitivity through run length
	// here and leave the full sweep to `reprobench -exp ablation-threshold`.
	for i := 0; i < b.N; i++ {
		_, coord := RunMplayerTrigger(int64(i+1), benchTrigDur)
		b.ReportMetric(float64(coord.Triggers), "triggers")
	}
}

// BenchmarkCoordScalability measures the coordination plane itself: star
// (central controller) vs direct (distributed) topologies.
func BenchmarkCoordScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := RunCoordScalability(ScalabilityConfig{
			Seed:     int64(i + 1),
			Islands:  []int{8, 64},
			Duration: 2 * time.Second,
		})
		for _, p := range pts {
			if p.Islands == 64 && p.Topology == "star" {
				b.ReportMetric(p.P99LatencyUs, "star64-p99-us")
			}
		}
	}
}

// BenchmarkPowerCap measures the power-cap extension's convergence.
func BenchmarkPowerCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunPowerCap(PowerCapConfig{Seed: int64(i + 1), Duration: 30 * time.Second})
		b.ReportMetric(r.SteadyWatts, "steady-W")
	}
}
