// Package repro is the public API of a full reproduction of "A Case for
// Coordinated Resource Management in Heterogeneous Multicore Platforms"
// (Tembey, Gavrilovska, Schwan — WIOSCA/ISCA 2010).
//
// The paper's prototype — an x86 host virtualized by Xen, coupled over PCIe
// to an IXP2850 network processor, with a coordination layer (Tune and
// Trigger mechanisms) between the two islands' resource managers — is
// reproduced as a deterministic discrete-event simulation. This package
// exposes the experiment runners that regenerate every table and figure of
// the paper's evaluation, plus the ablations and extensions described in
// DESIGN.md.
//
// The building blocks live in internal packages:
//
//   - internal/sim: the discrete-event kernel
//   - internal/xen: the credit-scheduler x86 island
//   - internal/ixp: the IXP2850 network-processor island
//   - internal/pcie, internal/netsim: interconnect and host network path
//   - internal/core: the coordination mechanisms and policies (the paper's
//     contribution)
//   - internal/platform: the assembled two-island testbed
//   - internal/rubis, internal/mplayer: the two benchmark workloads
//   - internal/power: the platform power-cap extension
//
// All runners are pure functions of their configuration: the same seed
// always yields the same numbers.
package repro

import (
	"time"

	"repro/internal/rubis"
	"repro/internal/sim"
)

// CoordScheme names a RUBiS coordination policy variant.
type CoordScheme string

// Available RUBiS coordination schemes.
const (
	// SchemeOutstanding tracks each tier's outstanding profiled demand from
	// both traffic directions (the default coord-ixp-dom0 scheme).
	SchemeOutstanding CoordScheme = "outstanding"
	// SchemeLoadTrack tracks offered load only (ablation).
	SchemeLoadTrack CoordScheme = "loadtrack"
	// SchemeClass is the paper's literal fixed-delta read/write rule
	// (ablation).
	SchemeClass CoordScheme = "class"
)

func (s CoordScheme) internal() rubis.Scheme {
	switch s {
	case SchemeClass:
		return rubis.SchemeClass
	case SchemeLoadTrack:
		return rubis.SchemeLoadTrack
	default:
		return rubis.SchemeOutstanding
	}
}

// toSim converts a time.Duration into the simulator's time unit.
func toSim(d time.Duration) sim.Time { return sim.FromDuration(d) }
