package repro

// Energy subsystem integration tests: parallel-sweep determinism of the
// energy ablation, flight record/replay of a governed run, and the two
// energy oracles (ledger conservation, power-cap streak bound) judged
// against real runs and against doctored bundles that must fail.

import (
	"bytes"
	"testing"
	"time"
)

func energyMatrixCfg() RubisConfig {
	// Short runs: 9 matrix points at 6 simulated seconds keep the test
	// within a few wall-clock seconds per sweep.
	return RubisConfig{Seed: 1, Duration: 6 * time.Second, Warmup: 2 * time.Second}
}

// TestEnergyMatrixParallelDeterminism runs the energy ablation
// sequentially and with an 8-worker pool and requires byte-identical
// canonical JSON — trial order, seeds, joules ledgers, QoS counters.
func TestEnergyMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) (*EnergyMatrixResult, []byte) {
		res, err := RunEnergyMatrix(energyMatrixCfg(), SweepOptions{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := res.Sweep.DeterministicJSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, blob
	}

	_, seqJSON := run(1)
	par, parJSON := run(8)
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("parallel sweep diverged from sequential:\nworkers=1:\n%s\nworkers=8:\n%s", seqJSON, parJSON)
	}
	if len(par.Rows) != len(EnergyMatrixPoints(energyMatrixCfg())) {
		t.Fatalf("matrix produced %d rows, want %d", len(par.Rows), len(EnergyMatrixPoints(energyMatrixCfg())))
	}

	// The matrix must actually exercise the DVFS machinery, or the
	// byte-compare proves nothing interesting.
	off, ok := par.Row("off", 1)
	if !ok {
		t.Fatal("matrix lost its off/1x point")
	}
	if off.Transitions != 0 {
		t.Errorf("governor off committed %d transitions, want 0", off.Transitions)
	}
	if off.PlatformJoules <= 0 {
		t.Error("metering-only run accrued no joules")
	}
	coord, ok := par.Row("coordinated", 0.5)
	if !ok {
		t.Fatal("matrix lost its coordinated/0.5x point")
	}
	if coord.Transitions == 0 {
		t.Error("coordinated governor at light load committed no transitions; determinism check is near-vacuous")
	}
}

// TestEnergyFlightReplay pins an energy-governed run to the flight
// recorder: governor decisions, DVFS transitions, and pool gatings must
// record and replay with zero divergence — and the run itself must satisfy
// the oracle catalog, including energy conservation.
func TestEnergyFlightReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := RubisConfig{
		Seed: 1, Duration: 6 * time.Second, Warmup: 2 * time.Second,
		LoadFactor: 0.5, // light load so the governor actually downshifts
		Energy:     &EnergyControl{Governor: EnergyGovCoordinated},
	}

	var buf bytes.Buffer
	run, err := RecordRubis(cfg, true, &buf)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	if run.Energy.Transitions == 0 {
		t.Error("governed run committed no transitions; replay check is near-vacuous")
	}
	requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: run})

	rep, err := ReplayRubis(buf.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	if rep.Divergence != nil {
		t.Errorf("energy-governed run does not replay deterministically: %v", rep.Divergence)
	}
	if rep.Events == 0 {
		t.Error("energy-governed run recorded no flight events")
	}
}

// TestEnergyConserveOracle: the conservation oracle passes a real run and
// fails a doctored one — island ledgers that do not sum to the platform
// ledger are a violation, not a rounding artifact.
func TestEnergyConserveOracle(t *testing.T) {
	cfg := RubisConfig{
		Seed: 1, Duration: 4 * time.Second, Warmup: 1 * time.Second,
		Energy: &EnergyControl{Governor: EnergyGovOndemand},
	}
	run := RunRubis(cfg, true)
	if run.Energy.PlatformJoules <= 0 {
		t.Fatal("energy run accrued no joules")
	}
	requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: run})

	leaky := *run
	leaky.Energy.X86Joules += 1 // destroy a joule
	if fails := FailedOracles(CheckInvariants(ChaosRun{Config: cfg, Coordinated: true, Run: &leaky})); len(fails) == 0 {
		t.Error("conservation oracle passed a doctored ledger")
	}
}

// TestPowerCapOracle: the cap-streak oracle passes a real budgeted run and
// fails both a sustained post-convergence excursion and a run that never
// converges.
func TestPowerCapOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r := RunPowerCap(PowerCapConfig{Seed: 1, Duration: 20 * time.Second})
	if len(r.Series) == 0 {
		t.Fatal("power-cap run recorded no series")
	}
	if r.PlatformJoules <= 0 {
		t.Fatal("power-cap run accrued no joules")
	}
	requireInvariants(t, ChaosRun{PowerCap: r})

	// A sustained excursion after convergence must fail.
	excursion := *r
	excursion.Series = append([]SeriesPoint(nil), r.Series...)
	for i := len(excursion.Series) - powerCapMaxStreak - 1; i < len(excursion.Series); i++ {
		excursion.Series[i].Value = excursion.CapWatts + 25
	}
	if fails := FailedOracles(CheckInvariants(ChaosRun{PowerCap: &excursion})); len(fails) == 0 {
		t.Error("cap oracle passed a sustained post-convergence excursion")
	}

	// A run that never gets under its cap must fail too.
	hot := *r
	hot.Series = append([]SeriesPoint(nil), r.Series...)
	for i := range hot.Series {
		hot.Series[i].Value = hot.CapWatts + 25
	}
	if fails := FailedOracles(CheckInvariants(ChaosRun{PowerCap: &hot})); len(fails) == 0 {
		t.Error("cap oracle passed a run that never converged")
	}
}
