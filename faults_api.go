package repro

import (
	"time"

	"repro/internal/pcie"
	"repro/internal/platform"
)

// FaultPlan is the public face of the deterministic fault-injection
// harness: a seeded, declarative description of everything the
// coordination channel can suffer during a run. The same plan and seeds
// always reproduce the same fault schedule. Rates are independent
// per-message probabilities in [0, 1); zero values disable a process.
type FaultPlan struct {
	// Seed drives the stochastic fault processes (default 1), separate
	// from the workload seed so fault schedules can be pinned
	// independently.
	Seed int64

	LossRate float64 // iid drop probability
	DupRate  float64 // iid duplication probability (one extra copy)

	// ReorderRate holds a message back for ReorderDelay so later messages
	// overtake it (default 500us).
	ReorderRate  float64
	ReorderDelay time.Duration

	// SpikeRate adds SpikeLatency to a message's one-way latency (default
	// spike 2ms).
	SpikeRate    float64
	SpikeLatency time.Duration

	// JitterMax adds a uniform extra delay in [0, JitterMax) to every
	// message.
	JitterMax time.Duration

	// BurstRate starts a correlated loss burst dropping BurstLen
	// consecutive messages (default length 8).
	BurstRate float64
	BurstLen  int

	// CorruptRate corrupts a message's payload in flight with seeded bit
	// flips; the receiving layer detects the damage via the frame checksum
	// and drops the frame (counted as CorruptDrops), never acts on it.
	CorruptRate float64 `json:",omitempty"`

	// Partitions are timed total-loss windows on the coordination link.
	Partitions []Partition

	// Corruptions are timed payload-corruption windows; inside a window
	// the window's rate applies when it exceeds CorruptRate.
	Corruptions []CorruptWindow `json:",omitempty"`

	// Crashes are island crash/restart windows: the named island's agent
	// goes silent (its lease expires) and drops all input for the window.
	Crashes []CrashWindow

	// ControllerCrashes are controller replica crash/restart windows: the
	// replica loses its volatile state and restarts from the durable
	// checkpoint store when the window closes. Scheduling any controller
	// window arms the replica group even without RubisConfig.Failover.
	ControllerCrashes []ReplicaWindow

	// ControllerPartitions isolate a controller replica from the agents,
	// its peers, and the checkpoint store for the window, then heal it.
	ControllerPartitions []ReplicaWindow
}

// Partition is a timed total-loss window. An empty Channels list cuts
// every coordination channel; otherwise only the named channels
// ("mailbox:to-host", "mailbox:to-device").
type Partition struct {
	Start    time.Duration
	Duration time.Duration
	Channels []string
}

// CorruptWindow corrupts messages offered during the window with
// probability Rate (in (0, 1]). An empty Channels list covers every
// coordination channel.
type CorruptWindow struct {
	Start    time.Duration
	Duration time.Duration
	Rate     float64
	Channels []string `json:",omitempty"`
}

// CrashWindow crashes an island ("ixp" or "x86") for the window.
type CrashWindow struct {
	Island   string
	Start    time.Duration
	Duration time.Duration
}

// ReplicaWindow crashes or partitions a controller replica (0-based ID,
// replica 0 is the initial primary) for the window.
type ReplicaWindow struct {
	Replica  int
	Start    time.Duration
	Duration time.Duration
}

// internal converts the plan to the pcie layer's representation.
func (p *FaultPlan) internal() *pcie.FaultPlan {
	if p == nil {
		return nil
	}
	fp := &pcie.FaultPlan{
		Seed:         p.Seed,
		LossRate:     p.LossRate,
		DupRate:      p.DupRate,
		ReorderRate:  p.ReorderRate,
		ReorderDelay: toSim(p.ReorderDelay),
		SpikeRate:    p.SpikeRate,
		SpikeLatency: toSim(p.SpikeLatency),
		JitterMax:    toSim(p.JitterMax),
		BurstRate:    p.BurstRate,
		BurstLen:     p.BurstLen,
		CorruptRate:  p.CorruptRate,
	}
	for _, w := range p.Partitions {
		fp.Partitions = append(fp.Partitions, pcie.Partition{
			Start:    toSim(w.Start),
			Duration: toSim(w.Duration),
			Channels: append([]string(nil), w.Channels...),
		})
	}
	for _, w := range p.Corruptions {
		fp.Corruptions = append(fp.Corruptions, pcie.CorruptWindow{
			Start:    toSim(w.Start),
			Duration: toSim(w.Duration),
			Rate:     w.Rate,
			Channels: append([]string(nil), w.Channels...),
		})
	}
	for _, c := range p.Crashes {
		fp.Crashes = append(fp.Crashes, pcie.CrashWindow{
			Island:   c.Island,
			Start:    toSim(c.Start),
			Duration: toSim(c.Duration),
		})
	}
	for _, w := range p.ControllerCrashes {
		fp.ControllerCrashes = append(fp.ControllerCrashes, pcie.ReplicaWindow{
			Replica:  w.Replica,
			Start:    toSim(w.Start),
			Duration: toSim(w.Duration),
		})
	}
	for _, w := range p.ControllerPartitions {
		fp.ControllerPartitions = append(fp.ControllerPartitions, pcie.ReplicaWindow{
			Replica:  w.Replica,
			Start:    toSim(w.Start),
			Duration: toSim(w.Duration),
		})
	}
	return fp
}

// Validate reports the first configuration error in the plan.
func (p FaultPlan) Validate() error {
	return p.internal().Validate()
}

// fromInternalPlan converts a pcie-layer plan back to the public
// representation (the inverse of FaultPlan.internal). The chaos search
// engine uses it to emit generated plans as scenario JSON.
func fromInternalPlan(fp pcie.FaultPlan) *FaultPlan {
	p := &FaultPlan{
		Seed:         fp.Seed,
		LossRate:     fp.LossRate,
		DupRate:      fp.DupRate,
		ReorderRate:  fp.ReorderRate,
		ReorderDelay: time.Duration(fp.ReorderDelay),
		SpikeRate:    fp.SpikeRate,
		SpikeLatency: time.Duration(fp.SpikeLatency),
		JitterMax:    time.Duration(fp.JitterMax),
		BurstRate:    fp.BurstRate,
		BurstLen:     fp.BurstLen,
		CorruptRate:  fp.CorruptRate,
	}
	for _, w := range fp.Partitions {
		p.Partitions = append(p.Partitions, Partition{
			Start:    time.Duration(w.Start),
			Duration: time.Duration(w.Duration),
			Channels: append([]string(nil), w.Channels...),
		})
	}
	for _, w := range fp.Corruptions {
		p.Corruptions = append(p.Corruptions, CorruptWindow{
			Start:    time.Duration(w.Start),
			Duration: time.Duration(w.Duration),
			Rate:     w.Rate,
			Channels: append([]string(nil), w.Channels...),
		})
	}
	for _, c := range fp.Crashes {
		p.Crashes = append(p.Crashes, CrashWindow{
			Island:   c.Island,
			Start:    time.Duration(c.Start),
			Duration: time.Duration(c.Duration),
		})
	}
	for _, w := range fp.ControllerCrashes {
		p.ControllerCrashes = append(p.ControllerCrashes, ReplicaWindow{
			Replica:  w.Replica,
			Start:    time.Duration(w.Start),
			Duration: time.Duration(w.Duration),
		})
	}
	for _, w := range fp.ControllerPartitions {
		p.ControllerPartitions = append(p.ControllerPartitions, ReplicaWindow{
			Replica:  w.Replica,
			Start:    time.Duration(w.Start),
			Duration: time.Duration(w.Duration),
		})
	}
	return p
}

// RobustnessReport surfaces the coordination plane's reliability counters
// for one run: what the fault harness injected and how each defensive
// layer responded.
type RobustnessReport struct {
	// Reliability layer (both mailbox endpoints summed; zero unless the
	// run used RubisConfig.Robust).
	DataSent     uint64
	Retransmits  uint64
	Expired      uint64 // at-most-once Tunes abandoned at their deadline
	GaveUp       uint64 // messages abandoned after max retries
	AcksSent     uint64
	AcksReceived uint64
	DupDrops     uint64
	StaleDrops   uint64
	GapSkips     uint64
	LinkDowns    uint64
	LinkUps      uint64

	// Bounded-buffer drops (hard caps on retransmit/reorder state).
	QueueFullDrops uint64 // sends refused at the outstanding-queue cap
	ReorderDrops   uint64 // arrivals refused at the reorder-buffer cap

	// Fault harness (what the plan actually injected).
	FaultDrops uint64 // mailbox messages consumed by loss/burst/partition
	Duplicated uint64
	Reordered  uint64
	Spiked     uint64
	Corrupted  uint64 // payloads bit-flipped in flight by the plan

	// CorruptArrived counts corrupted frames the mailbox delivered (a
	// frame still in flight at run end was injected but never arrived);
	// CorruptDrops counts frames every verifying layer discarded on
	// checksum mismatch. The two reconcile exactly: every corrupted frame
	// that arrives is detected and dropped, never actuated.
	CorruptArrived uint64
	CorruptDrops   uint64

	// Liveness plane.
	Heartbeats     uint64
	LeaseExpiries  uint64
	Rejoins        uint64
	FlapSuppressed uint64 // rejoins absorbed by the watchdog's hysteresis

	// Routing drops by reason.
	UnknownTarget uint64
	UnknownEntity uint64
	Quarantined   uint64

	// Graceful degradation.
	Degradations       uint64
	Recoveries         uint64
	SuppressedDegraded uint64
	SuppressedCrashed  uint64
	CrashDrops         uint64
	BaselineReverts    uint64
}

// robustnessReport folds the platform's layered counters into the public
// report, summing the two mailbox endpoints.
func robustnessReport(r platform.Robustness) RobustnessReport {
	return RobustnessReport{
		DataSent:     r.Uplink.DataSent + r.Downlink.DataSent,
		Retransmits:  r.Uplink.Retransmits + r.Downlink.Retransmits,
		Expired:      r.Uplink.Expired + r.Downlink.Expired,
		GaveUp:       r.Uplink.GaveUp + r.Downlink.GaveUp,
		AcksSent:     r.Uplink.AcksSent + r.Downlink.AcksSent,
		AcksReceived: r.Uplink.AcksReceived + r.Downlink.AcksReceived,
		DupDrops:     r.Uplink.DupDrops + r.Downlink.DupDrops,
		StaleDrops:   r.Uplink.StaleDrops + r.Downlink.StaleDrops,
		GapSkips:     r.Uplink.GapSkips + r.Downlink.GapSkips,
		LinkDowns:    r.Uplink.Downs + r.Downlink.Downs,
		LinkUps:      r.Uplink.Ups + r.Downlink.Ups,

		QueueFullDrops: r.Uplink.QueueFullDrops + r.Downlink.QueueFullDrops,
		ReorderDrops:   r.Uplink.ReorderDrops + r.Downlink.ReorderDrops,

		FaultDrops:     r.MailboxDropped,
		Duplicated:     r.Faults.Duplicated,
		Reordered:      r.Faults.Reordered,
		Spiked:         r.Faults.Spiked,
		Corrupted:      r.Faults.Corrupted,
		CorruptArrived: r.CorruptArrived,
		CorruptDrops:   r.CorruptDrops,

		Heartbeats:     r.Heartbeats,
		LeaseExpiries:  r.LeaseExpiries,
		Rejoins:        r.Rejoins,
		FlapSuppressed: r.FlapSuppressed,

		UnknownTarget: r.UnknownTarget,
		UnknownEntity: r.UnknownEntity,
		Quarantined:   r.Quarantined,

		Degradations:       r.Degradations,
		Recoveries:         r.Recoveries,
		SuppressedDegraded: r.SuppressedDegraded,
		SuppressedCrashed:  r.SuppressedCrashed,
		CrashDrops:         r.CrashDrops,
		BaselineReverts:    r.BaselineRevert,
	}
}
