package repro

// Golden regression test: locks the headline results of short deterministic
// runs. Any change to the models or their calibration shows up here as an
// explicit diff. Refresh with:
//
//	GOLDEN_UPDATE=1 go test -run TestGolden .
//
// The comparison is exact — the simulation is a pure function of its seed.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

type golden struct {
	RubisBaseThroughput  float64 `json:"rubis_base_throughput"`
	RubisCoordThroughput float64 `json:"rubis_coord_throughput"`
	RubisBaseMeanMs      float64 `json:"rubis_base_mean_ms"`
	RubisCoordMeanMs     float64 `json:"rubis_coord_mean_ms"`
	RubisTunesSent       uint64  `json:"rubis_tunes_sent"`
	QoSBaseDom2FPS       float64 `json:"qos_base_dom2_fps"`
	QoSCoordDom2FPS      float64 `json:"qos_coord_dom2_fps"`
	TriggerBaseFPS       float64 `json:"trigger_base_fps"`
	TriggerCoordFPS      float64 `json:"trigger_coord_fps"`
	Triggers             uint64  `json:"triggers"`
}

func measureGolden() golden {
	cfg := RubisConfig{Seed: 1, Duration: 40 * time.Second, Warmup: 10 * time.Second}
	base, coord := CompareRubis(cfg)
	qos := RunMplayerQoS(1, 30*time.Second)
	tb, tc := RunMplayerTrigger(1, 60*time.Second)
	return golden{
		RubisBaseThroughput:  base.Throughput,
		RubisCoordThroughput: coord.Throughput,
		RubisBaseMeanMs:      base.MeanOverTypes(),
		RubisCoordMeanMs:     coord.MeanOverTypes(),
		RubisTunesSent:       coord.TunesSent,
		QoSBaseDom2FPS:       qos[0].Dom2FPS,
		QoSCoordDom2FPS:      qos[1].Dom2FPS,
		TriggerBaseFPS:       tb.Dom1FPS,
		TriggerCoordFPS:      tc.Dom1FPS,
		Triggers:             tc.Triggers,
	}
}

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("long golden run")
	}
	path := filepath.Join("testdata", "golden.json")
	got := measureGolden()

	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file refreshed: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run GOLDEN_UPDATE=1 go test -run TestGolden .): %v", err)
	}
	var want golden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("results drifted from golden file.\ngot:\n%s\nwant:\n%s", gotJSON, data)
	}
}

func TestExportJSON(t *testing.T) {
	r := &Results{
		Scalability: RunCoordScalability(ScalabilityConfig{Islands: []int{2}, Duration: time.Second}),
	}
	out, err := r.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(back.Scalability) != len(r.Scalability) {
		t.Fatal("scalability points lost in round trip")
	}
	if back.RubisBase != nil {
		t.Fatal("omitted field materialized")
	}
}
