// Quickstart: assemble the two-island prototype, register a guest VM with
// the global controller, and exercise the paper's two coordination
// mechanisms — a Tune (fine-grained weight adjustment) and a Trigger
// (immediate boost) — sent from the IXP island to the x86 island over the
// PCIe mailbox.
package main

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// Build the testbed: a dual-core Xen host plus an IXP2850 over PCIe,
	// with the coordination plane registered between them. Coordination
	// events are recorded in a structured trace.
	p := platform.New(platform.Config{Seed: 42, Trace: trace.CatCoord})

	// Deploy a guest VM. AddGuest registers it with the global controller
	// and provisions its flow queue on the IXP, so both islands can name it.
	vm := p.AddGuest("my-vm", 256)
	fmt.Printf("deployed %s: weight=%d, IXP threads=%d\n",
		vm.Name(), vm.Weight(), p.IXP.FlowThreads(vm.ID()))

	// Keep the VM busy so scheduling effects are visible.
	var churn func()
	churn = func() { vm.SubmitFunc(5*sim.Millisecond, "work", churn) }
	churn()

	// Tune: the IXP island asks the x86 island to raise the VM's credit
	// weight by 128. The message crosses the PCIe mailbox (150us one way),
	// is routed by the controller in Dom0, and lands in the XenCtrl
	// interface.
	p.IXPAgent.SendTune(platform.X86Island, vm.ID(), +128)
	p.Sim.RunUntil(1 * sim.Millisecond)
	fmt.Printf("after Tune(+128): weight=%d\n", vm.Weight())

	// Tunes work in the other direction too: the x86 island can ask the
	// IXP to assign more dequeue threads to the VM's flow queue.
	p.X86Agent.SendTune(platform.IXPIsland, vm.ID(), +2)
	p.Sim.RunUntil(2 * sim.Millisecond)
	fmt.Printf("after reverse Tune(+2 threads): IXP threads=%d\n", p.IXP.FlowThreads(vm.ID()))

	// Trigger: an immediate, interrupt-like request — the VM is boosted to
	// the front of the runqueue as soon as the message arrives.
	p.IXPAgent.SendTrigger(platform.X86Island, vm.ID())
	p.Sim.RunUntil(3 * sim.Millisecond)
	fmt.Printf("after Trigger: vcpu priority=%v, running=%v\n",
		vm.VCPUs()[0].Priority(), vm.VCPUs()[0].Running())

	// Let the platform run for a simulated second and read the meters.
	p.Sim.RunUntil(1 * sim.Second)
	fmt.Printf("after 1s simulated: VM used %.0f%% CPU, coordination stats: %+v\n",
		p.TotalGuestUtilization(0), p.IXPAgent.Stats())

	// The coordination plane left a structured trace of everything above.
	fmt.Println("\ncoordination trace:")
	fmt.Print(p.Tracer.Dump(trace.CatCoord))
}
