// MPlayer example: the paper's streaming-media workload. Two guest VMs
// decode RTSP/UDP video streams relayed through the IXP; the stream-
// property policy translates each stream's bit- and frame-rate into CPU
// weight, and the buffer-watermark policy fires Triggers when a VM's
// packet queue in IXP DRAM crosses 128 KB.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	fmt.Println("== stream QoS (Figure 6): weights from the stream-property policy ==")
	for _, row := range repro.RunMplayerQoS(7, 40*time.Second) {
		fmt.Printf("weights %-8s (ixp threads %d): Dom1 %.1f fps (target 20), Dom2 %.1f fps (target 25)\n",
			row.Label, row.Dom2IXPThreads, row.Dom1FPS, row.Dom2FPS)
	}

	fmt.Println("\n== buffer-watermark trigger (Figure 7): bursty UDP with no flow control ==")
	base, coord := repro.RunMplayerTrigger(7, 90*time.Second)
	fmt.Printf("baseline:    %.1f fps\n", base.Dom1FPS)
	fmt.Printf("coordinated: %.1f fps after %d triggers\n", coord.Dom1FPS, coord.Triggers)

	peak := 0.0
	for _, p := range coord.BufferIn {
		if p.Value > peak {
			peak = p.Value
		}
	}
	fmt.Printf("IXP buffer peaked at %.0f KB (trigger threshold: 128 KB)\n", peak/1024)
}
