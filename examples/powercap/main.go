// Power-cap example: the paper's second motivating use case, built from
// the same Tune mechanism as the CPU schemes. A platform budgeter samples
// per-island power models and throttles guest VMs (via CPU-cap Tunes to the
// x86 island's power agent) until the platform-level budget holds.
package main

import (
	"fmt"

	"repro"
)

func main() {
	run := repro.RunPowerCap(repro.PowerCapConfig{Seed: 7, CapWatts: 120})

	fmt.Printf("uncapped platform draw: %.1f W\n", run.UncappedWatts)
	fmt.Printf("budget: %.0f W -> steady state %.1f W after %d throttle actions\n",
		run.CapWatts, run.SteadyWatts, run.ThrottleActions)
	fmt.Printf("final guest CPU caps: %v\n", run.FinalGuestCaps)

	fmt.Println("\nplatform power over time:")
	step := len(run.Series) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(run.Series); i += step {
		p := run.Series[i]
		bar := int(p.Value / 4)
		fmt.Printf("%5.1fs %6.1fW |", p.Seconds, p.Value)
		for j := 0; j < bar; j++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
