// RUBiS example: the paper's headline workload. An eBay-like three-tier
// auction site (web, application, database VMs on a dual-core Xen host,
// fronted by the IXP) serves a read-write client mix, first without and
// then with the coord-ixp-dom0 scheme — the IXP's request classifier
// driving per-request weight Tunes for the tier VMs.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	cfg := repro.RubisConfig{
		Seed:     7,
		Duration: 70 * time.Second, // shortened for an example; reprobench runs 130s
	}

	fmt.Println("running baseline (independent resource managers)...")
	base := repro.RunRubis(cfg, false)
	fmt.Println("running coordinated (coord-ixp-dom0)...")
	coord := repro.RunRubis(cfg, true)

	fmt.Printf("\n%-26s | %10s | %10s\n", "request type", "base avg", "coord avg")
	for i, t := range base.PerType {
		if t.Count == 0 {
			continue
		}
		fmt.Printf("%-26s | %8.0fms | %8.0fms\n", t.Name, t.AvgMs, coord.PerType[i].AvgMs)
	}
	fmt.Printf("\nthroughput: %.1f -> %.1f req/s\n", base.Throughput, coord.Throughput)
	fmt.Printf("platform efficiency: %.2f -> %.2f\n", base.Efficiency, coord.Efficiency)
	fmt.Printf("coordination traffic: %d tunes; final weights %v\n", coord.TunesSent, coord.FinalWeights)
	fmt.Println("\n(the DB tier's weight tracks write bursts; see EXPERIMENTS.md for the full analysis)")
}
