// Distributed coordination example: the paper's future work (§5). Instead
// of routing every Tune through the central controller in Dom0, islands
// join a mesh with direct transports and a replicated entity directory —
// one hop instead of two, and no serializing hub.
//
// Four islands — an x86 host, two accelerator fabrics, and a storage
// engine — coordinate resource adjustments for a pipeline application that
// spans all of them.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// logActuator prints what each island would do with an incoming message.
type logActuator struct {
	island string
	s      *sim.Simulator
}

func (a *logActuator) ApplyTune(entity, delta int) error {
	fmt.Printf("%10v  %-8s apply tune: entity %d delta %+d\n", a.s.Now(), a.island, entity, delta)
	return nil
}

func (a *logActuator) ApplyTrigger(entity int) error {
	fmt.Printf("%10v  %-8s apply TRIGGER: entity %d\n", a.s.Now(), a.island, entity)
	return nil
}

func main() {
	s := sim.New(42)

	// 20us direct links — an on-package interconnect between islands.
	mesh := core.NewMesh(func(from, to string) core.Transport {
		return core.NewSimTransport(s, 20*sim.Microsecond)
	})

	islands := []string{"x86", "gpu", "nic", "storage"}
	agents := map[string]*core.Agent{}
	for _, name := range islands {
		a, err := mesh.AddIsland(name, &logActuator{island: name, s: s})
		if err != nil {
			panic(err)
		}
		agents[name] = a
	}

	// A pipeline application spans all four islands as entity 1.
	if err := mesh.RegisterEntity(core.Entity{ID: 1, Name: "pipeline", Home: "x86"}); err != nil {
		panic(err)
	}

	// The NIC island sees an ingress surge: it tunes the GPU's batch
	// resources up and triggers the x86 stage immediately — no controller
	// in the path, one 20us hop each.
	s.At(1*sim.Millisecond, func() {
		agents["nic"].SendTune("gpu", 1, +4)
		agents["nic"].SendTrigger("x86", 1)
	})
	// The storage island backs off the x86 stage when its queue clears.
	s.At(2*sim.Millisecond, func() {
		agents["storage"].SendTune("x86", 1, -2)
	})

	s.Run()
	fmt.Printf("\nmesh: %d routed, %d unroutable, islands %v\n",
		mesh.Routed(), mesh.Unroutable(), mesh.Islands())
}
