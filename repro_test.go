package repro

// Integration tests of the public facade: each asserts the paper's SHAPE —
// who wins and roughly how — on shortened runs. EXPERIMENTS.md records the
// full-length numbers.

import (
	"testing"
	"time"
)

func testRubisCfg(seed int64) RubisConfig {
	return RubisConfig{Seed: seed, Duration: 70 * time.Second}
}

func TestRubisShapeCoordinationWins(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	base, coord := CompareRubis(testRubisCfg(1))

	// Table 2 shape: coordination raises throughput and efficiency.
	if coord.Throughput <= base.Throughput {
		t.Errorf("throughput: base %.1f >= coord %.1f", base.Throughput, coord.Throughput)
	}
	if coord.Efficiency < base.Efficiency*0.98 {
		t.Errorf("efficiency regressed: %.2f -> %.2f", base.Efficiency, coord.Efficiency)
	}
	// Table 1 shape: the write-class types the paper highlights improve.
	byName := func(r *RubisRun, name string) RequestStats {
		for _, s := range r.PerType {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("no type %s", name)
		return RequestStats{}
	}
	// Individual low-count types are noisy at this shortened duration, so
	// require the majority of the headline write types to improve; the
	// count-weighted overall mean is asserted below.
	improved := 0
	for _, name := range []string{"PutBid", "StoreBid", "PutComment"} {
		b, c := byName(base, name), byName(coord, name)
		if b.Count == 0 || c.Count == 0 {
			continue
		}
		if c.AvgMs < b.AvgMs {
			improved++
		}
	}
	if improved < 2 {
		t.Errorf("only %d of 3 headline write types improved", improved)
	}
	// Overall mean improves.
	if coord.MeanOverTypes() >= base.MeanOverTypes() {
		t.Errorf("overall mean: base %.0f -> coord %.0f", base.MeanOverTypes(), coord.MeanOverTypes())
	}
	// Figure 5 shape: utilization stays in a sane band and does not collapse.
	if coord.TotalUtil < base.TotalUtil*0.9 {
		t.Errorf("coordination collapsed utilization: %.0f -> %.0f", base.TotalUtil, coord.TotalUtil)
	}
	// Coordination plane actually ran.
	if coord.TunesSent == 0 || coord.TunesApplied == 0 {
		t.Errorf("coordination inactive: %d sent, %d applied", coord.TunesSent, coord.TunesApplied)
	}
	if base.TunesSent != 0 {
		t.Errorf("baseline sent %d tunes", base.TunesSent)
	}
}

func TestRubisBrowsingMixAlwaysImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	// The paper's pure-browsing control run: no read/write transitions, so
	// coordination "always performs better ... for all request types" in
	// the aggregate.
	cfg := testRubisCfg(2)
	cfg.Mix = "browsing"
	base, coord := CompareRubis(cfg)
	if coord.MeanOverTypes() >= base.MeanOverTypes() {
		t.Errorf("browsing mix: coord mean %.0fms >= base %.0fms",
			coord.MeanOverTypes(), base.MeanOverTypes())
	}
}

func TestRubisDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := RubisConfig{Seed: 3, Duration: 25 * time.Second, Warmup: 5 * time.Second}
	a := RunRubis(cfg, true)
	b := RunRubis(cfg, true)
	if a.Throughput != b.Throughput || a.TunesSent != b.TunesSent {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)",
			a.Throughput, a.TunesSent, b.Throughput, b.TunesSent)
	}
}

func TestRubisSchemesAllRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	for _, s := range []CoordScheme{SchemeOutstanding, SchemeLoadTrack, SchemeClass} {
		cfg := RubisConfig{Seed: 4, Duration: 25 * time.Second, Warmup: 5 * time.Second, Scheme: s}
		r := RunRubis(cfg, true)
		if r.TunesSent == 0 {
			t.Errorf("scheme %s sent no tunes", s)
		}
	}
}

func TestMplayerQoSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	rows := RunMplayerQoS(1, 40*time.Second)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Figure 6 shape: Dom2 misses 25 fps at default weights and meets it
	// once the stream-property policy raises weights to 384-512.
	if rows[0].Dom2FPS >= PaperFig6.Dom2Target-1 {
		t.Errorf("base Dom2 = %.1f fps, should clearly miss %g", rows[0].Dom2FPS, PaperFig6.Dom2Target)
	}
	if rows[1].Dom2FPS < PaperFig6.Dom2Target-1 {
		t.Errorf("coordinated Dom2 = %.1f fps, should meet ~%g", rows[1].Dom2FPS, PaperFig6.Dom2Target)
	}
	if rows[1].Dom1Weight != 384 || rows[1].Dom2Weight != 512 {
		t.Errorf("policy weights = %d-%d, want the paper's 384-512", rows[1].Dom1Weight, rows[1].Dom2Weight)
	}
}

func TestMplayerTriggerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	base, coord := RunMplayerTrigger(1, 90*time.Second)
	if coord.Dom1FPS <= base.Dom1FPS {
		t.Errorf("figure 7: coord %.1f fps <= base %.1f", coord.Dom1FPS, base.Dom1FPS)
	}
	if coord.Triggers == 0 {
		t.Error("no triggers fired")
	}
	if len(coord.CPUUtil) == 0 || len(coord.BufferIn) == 0 {
		t.Error("figure 7 series missing")
	}
}

func TestMplayerInterferenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r := RunMplayerInterference(1, 90*time.Second)
	if r.Dom1ChangePct <= 0 {
		t.Errorf("table 3: Dom1 change %+.2f%%, want positive", r.Dom1ChangePct)
	}
	if r.Dom2ChangePct >= 0 || r.Dom2ChangePct < -30 {
		t.Errorf("table 3: Dom2 change %+.2f%%, want a modest negative", r.Dom2ChangePct)
	}
}

func TestPowerCapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r := RunPowerCap(PowerCapConfig{Seed: 1, CapWatts: 120, Duration: 40 * time.Second})
	if r.UncappedWatts <= r.CapWatts {
		t.Fatalf("workload does not exceed the cap: %.1fW vs %.0fW", r.UncappedWatts, r.CapWatts)
	}
	if r.SteadyWatts > r.CapWatts*1.05 {
		t.Errorf("steady power %.1fW exceeds cap %.0fW", r.SteadyWatts, r.CapWatts)
	}
	if r.ThrottleActions == 0 {
		t.Error("no throttle actions")
	}
}

func TestScalabilityShape(t *testing.T) {
	pts := RunCoordScalability(ScalabilityConfig{
		Islands:  []int{4, 128},
		Duration: 2 * time.Second,
	})
	get := func(topo string, n int) ScalabilityPoint {
		for _, p := range pts {
			if p.Topology == topo && p.Islands == n {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", topo, n)
		return ScalabilityPoint{}
	}
	// Star pays two hops + hub; direct pays one hop, independent of scale.
	small := get("star", 4)
	if small.MeanLatencyUs < 300 {
		t.Errorf("star mean latency = %.1fus, want >= 2 hops", small.MeanLatencyUs)
	}
	d := get("direct", 128)
	if d.MeanLatencyUs < 149 || d.MeanLatencyUs > 151 {
		t.Errorf("direct latency = %.1fus, want ~150", d.MeanLatencyUs)
	}
	// The hub saturates at high island counts; distribution does not.
	big := get("star", 128)
	if big.P99LatencyUs < 10*small.P99LatencyUs {
		t.Errorf("hub did not saturate: p99 %.1fus at 128 islands vs %.1fus at 4", big.P99LatencyUs, small.P99LatencyUs)
	}
	for _, p := range pts {
		if p.RoutedPerSec == 0 {
			t.Errorf("%s/%d routed nothing", p.Topology, p.Islands)
		}
	}
}

func TestCoordSchemeMapping(t *testing.T) {
	if SchemeOutstanding.internal().String() != "outstanding" ||
		SchemeLoadTrack.internal().String() != "loadtrack" ||
		SchemeClass.internal().String() != "class" ||
		CoordScheme("?").internal().String() != "outstanding" {
		t.Fatal("scheme mapping wrong")
	}
}

func TestReportFormatters(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := RubisConfig{Seed: 5, Duration: 25 * time.Second, Warmup: 5 * time.Second}
	base, coord := CompareRubis(cfg)
	for name, out := range map[string]string{
		"fig2":   FormatFig2(base),
		"fig4":   FormatFig4(base, coord),
		"table1": FormatTable1(base, coord),
		"table2": FormatTable2(base, coord),
		"fig5":   FormatFig5(base, coord),
	} {
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
	rows := RunMplayerQoS(5, 15*time.Second)
	if out := FormatFig6(rows); len(out) < 100 {
		t.Errorf("fig6 output short:\n%s", out)
	}
	tb, tc := RunMplayerTrigger(5, 30*time.Second)
	if out := FormatFig7(tb, tc); len(out) < 100 {
		t.Errorf("fig7 output short:\n%s", out)
	}
	ir := RunMplayerInterference(5, 30*time.Second)
	if out := FormatTable3(ir); len(out) < 100 {
		t.Errorf("table3 output short:\n%s", out)
	}
	pc := RunPowerCap(PowerCapConfig{Seed: 5, Duration: 20 * time.Second})
	if out := FormatPowerCap(pc); len(out) < 50 {
		t.Errorf("powercap output short:\n%s", out)
	}
	sp := RunCoordScalability(ScalabilityConfig{Islands: []int{2}, Duration: time.Second})
	if out := FormatScalability(sp); len(out) < 50 {
		t.Errorf("scalability output short:\n%s", out)
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	if len(PaperTable1) != 16 {
		t.Fatalf("PaperTable1 has %d entries, want 16", len(PaperTable1))
	}
	for name, v := range PaperTable1 {
		if v[0] <= 0 || v[1] <= 0 {
			t.Errorf("PaperTable1[%s] = %v", name, v)
		}
		// Coordination improved every type in the paper except none; allow
		// equality for BrowseRegions (1491 -> 1490).
		if v[1] > v[0] {
			t.Errorf("PaperTable1[%s]: coord %v worse than base %v (transcription?)", name, v[1], v[0])
		}
	}
}

func TestRubisCoordinationTolerantToMessageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	// Fault injection: 20% of coordination messages vanish on the mailbox.
	// The outstanding-load translation's decay heals the drift, so the
	// coordinated case must still beat the baseline.
	cfg := testRubisCfg(6)
	cfg.CoordLossRate = 0.2
	base, coord := CompareRubis(cfg)
	if coord.MeanOverTypes() >= base.MeanOverTypes() {
		t.Errorf("lossy coordination regressed: base %.0fms, coord %.0fms",
			base.MeanOverTypes(), coord.MeanOverTypes())
	}
	if coord.TunesApplied >= coord.TunesSent {
		t.Errorf("loss injection inactive: %d sent, %d applied", coord.TunesSent, coord.TunesApplied)
	}
}
