package repro

// Failover chaos tests: controller replication must make the coordination
// plane survive its own controller dying. A mid-run primary crash costs at
// most a bounded election window, not the rest of the run; the whole
// failover — checkpoints, election, anti-entropy — replays byte-identically
// from the flight log; and the failover matrix is deterministic across
// sweep worker counts.

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/sweep"
)

// failoverChaosPlan is the canonical mid-run primary death: the initial
// primary (replica 0) crashes at 15s and stays down for 10s.
func failoverChaosPlan() *FaultPlan {
	return &FaultPlan{ControllerCrashes: []ReplicaWindow{
		{Replica: 0, Start: 15 * time.Second, Duration: 10 * time.Second},
	}}
}

// failoverRampPlan kills the primary at the end of warmup and keeps it
// down for most of the run. Under overload this is the worst-case window:
// the coordinated shed loop earns its goodput during the post-warmup
// session ramp, exactly when a solo controller would be dead.
func failoverRampPlan() *FaultPlan {
	return &FaultPlan{ControllerCrashes: []ReplicaWindow{
		{Replica: 0, Start: 10 * time.Second, Duration: 25 * time.Second},
	}}
}

// TestChaosControllerCrash kills the primary controller mid-run. The
// availability contract: with replication, goodput stays within 5% of the
// crash-free coordinated run at 1x load; at 2x load (where the coordinated
// shed loop is actively earning its keep) the replicated group beats the
// solo controller suffering the same crash — the degraded baseline that
// loses coordination for the whole window.
//
// The 1x points run the paper's weight-tuning scheme; the 2x points turn
// it off and drive the coordinated overload plane instead, mirroring the
// overload ablation's isolation (the shed loop is the coordination that
// pays at saturation, and its outage cost is what replication buys back).
func TestChaosControllerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	type foPointCfg struct {
		Name     string  `json:"name"`
		Replicas int     `json:"replicas"`
		Crash    bool    `json:"crash"`
		Load     float64 `json:"load,omitempty"`
	}
	points := []sweep.Point{
		{Name: "clean/replicated", Config: foPointCfg{Name: "clean", Replicas: 3}},
		{Name: "crash/replicated", Config: foPointCfg{Name: "crash", Replicas: 3, Crash: true}},
		{Name: "crash2x/replicated", Config: foPointCfg{Name: "crash2x", Replicas: 3, Crash: true, Load: 2}},
		{Name: "crash2x/solo", Config: foPointCfg{Name: "crash2x-solo", Replicas: 1, Crash: true, Load: 2}},
	}
	res, err := sweep.Run(points, func(tr sweep.Trial) (any, error) {
		pc := tr.Point.Config.(foPointCfg)
		cfg := chaosRubisCfg(tr.Seed)
		cfg.Failover = &FailoverControl{Replicas: pc.Replicas}
		if pc.Load == 0 {
			// 1x: weight-tuning coordination, mid-run 10s primary death.
			if pc.Crash {
				cfg.Faults = failoverChaosPlan()
			}
			return RunRubis(cfg, true), nil
		}
		// 2x: coordinated NIC shedding under saturation, with the primary
		// dead from the end of warmup through the session ramp.
		if pc.Crash {
			cfg.Faults = failoverRampPlan()
		}
		cfg.LoadFactor = pc.Load
		cfg.RequestTimeout = 2 * time.Second
		cfg.Overload = &OverloadControl{
			QueueCap: 64, QueueDeadline: 300 * time.Millisecond,
			Threshold: 150 * time.Millisecond, Coordinated: true,
		}
		return RunRubis(cfg, false), nil
	}, sweep.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	var clean, crash, crash2x, solo2x RubisRun
	for i, dst := range []*RubisRun{&clean, &crash, &crash2x, &solo2x} {
		if err := res.Decode(i, dst); err != nil {
			t.Fatal(err)
		}
	}

	// 1x contract: a primary death costs a bounded election window, so the
	// run stays within the oracle catalog's goodput floor (and bounded
	// mean) of the crash-free coordinated run.
	crashCfg := chaosRubisCfg(1)
	crashCfg.Failover = &FailoverControl{Replicas: 3}
	crashCfg.Faults = failoverChaosPlan()
	requireInvariants(t, ChaosRun{Config: crashCfg, Coordinated: true, Run: &crash, Baseline: &clean})

	// The failover really happened: replica 0 died, the lowest-id live
	// standby (1) was promoted, state came from checkpoints, and the new
	// primary reconciled against the agents before routing.
	fo := crash.Failover
	if fo.Crashes != 1 || fo.Restarts != 1 {
		t.Errorf("crashes=%d restarts=%d, want 1/1", fo.Crashes, fo.Restarts)
	}
	if fo.Promotions < 1 || fo.Primary != 1 {
		t.Errorf("promotions=%d final primary=%d, want a promotion to replica 1", fo.Promotions, fo.Primary)
	}
	if fo.Checkpoints == 0 || fo.CheckpointBytes == 0 {
		t.Errorf("checkpoints=%d bytes=%d: the standby promoted from nothing", fo.Checkpoints, fo.CheckpointBytes)
	}
	if fo.Reconciliations < 2 {
		t.Errorf("reconciliations=%d, want both islands reconciled at promotion", fo.Reconciliations)
	}
	if clean.Failover.Promotions != 0 || clean.Failover.NoPrimaryDrops != 0 {
		t.Errorf("clean run promoted (%d) or dropped (%d); fault plan leaked",
			clean.Failover.Promotions, clean.Failover.NoPrimaryDrops)
	}

	// 2x contract: the replicated group strictly beats the solo controller
	// under the same crash — losing the shed loop for a ~1s election
	// window must cost less than losing it for the whole overload ramp.
	if crash2x.Throughput <= solo2x.Throughput {
		t.Errorf("replicated goodput at 2x %.1f r/s not above solo-controller %.1f r/s",
			crash2x.Throughput, solo2x.Throughput)
	}
	// Non-vacuity: the replicated run kept shedding at the NIC through the
	// crash window while the solo controller's outage silenced the loop,
	// and the solo outage dwarfs the replicated group's election window.
	if crash2x.Overload.IXPShed == 0 {
		t.Error("replicated 2x run never shed at the NIC; the loop was not exercised")
	}
	if solo2x.Overload.IXPShed >= crash2x.Overload.IXPShed {
		t.Errorf("solo NIC shed %d >= replicated %d; the solo outage never silenced the shed loop",
			solo2x.Overload.IXPShed, crash2x.Overload.IXPShed)
	}
	if solo2x.Failover.NoPrimaryDrops <= crash2x.Failover.NoPrimaryDrops {
		t.Errorf("solo outage dropped %d coordination messages vs replicated %d; solo run never really lost its controller",
			solo2x.Failover.NoPrimaryDrops, crash2x.Failover.NoPrimaryDrops)
	}
}

// TestChaosFailoverReplay records a full failover run — checkpoints,
// primary crash, election, anti-entropy rejoin — and replays the flight
// log: every coordination event, the failover category included, must
// reproduce byte-identically from the same config and seed.
func TestChaosFailoverReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := chaosRubisCfg(1)
	cfg.Failover = &FailoverControl{Replicas: 3}
	cfg.Faults = failoverChaosPlan()

	var flightLog bytes.Buffer
	coord, err := RecordRubis(cfg, true, &flightLog)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	rep, err := ReplayRubis(flightLog.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	// Zero-divergence is the replay oracle; lease monotonicity and weight
	// clamping ride along.
	requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: coord, Replay: rep})
	if coord.Failover.Promotions < 1 {
		t.Error("recorded run had no promotion; replay check is vacuous")
	}
	if coord.Failover.Checkpoints == 0 {
		t.Error("recorded run wrote no checkpoints; replay check is vacuous")
	}
}

// TestFailoverMatrixParallelDeterminism runs the failover matrix
// sequentially and with an 8-worker pool and requires byte-identical
// canonical JSON.
func TestFailoverMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) (*FailoverMatrixResult, []byte) {
		res, err := RunFailoverMatrix(chaosMatrixCfg(), SweepOptions{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := res.Sweep.DeterministicJSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, blob
	}

	seq, seqJSON := run(1)
	par, parJSON := run(8)
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("parallel failover sweep diverged from sequential:\nworkers=1:\n%s\nworkers=8:\n%s", seqJSON, parJSON)
	}
	if len(par.Rows) != len(FailoverMatrixPoints(chaosMatrixCfg())) {
		t.Fatalf("matrix produced %d rows, want %d", len(par.Rows), len(FailoverMatrixPoints(chaosMatrixCfg())))
	}

	// Elections must actually fire inside the matrix, or the byte-compare
	// proves nothing about failover determinism.
	crashRow, ok := par.Row("primary crash", "replicated")
	if !ok {
		t.Fatal("matrix lost its primary crash/replicated point")
	}
	if crashRow.Promotions == 0 {
		t.Error("primary crash scenario drove no promotions; determinism check is near-vacuous")
	}
	if crashRow.Checkpoints == 0 {
		t.Error("no checkpoints in the crash scenario; determinism check is near-vacuous")
	}

	if runtime.NumCPU() >= 4 && par.Sweep.Elapsed > 0 && seq.Sweep.Elapsed > par.Sweep.Elapsed {
		t.Logf("sequential %v, 8 workers %v (%.1fx)",
			seq.Sweep.Elapsed, par.Sweep.Elapsed, float64(seq.Sweep.Elapsed)/float64(par.Sweep.Elapsed))
	}
}
