package repro

// Flight-recorder facade tests: recording must be invisible to the
// simulation, a clean replay must report zero divergence, and any mutation
// of the replay context (seed, event stream) must surface as a
// first-divergence with a valid sim-time and category.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/flight"
)

// flightRubisCfg is a short saturated run with the full coordinated
// overload-control plane armed, so every flight category has a chance to
// fire within a few simulated seconds.
func flightRubisCfg(seed int64) RubisConfig {
	return RubisConfig{
		Seed:           seed,
		Duration:       6 * time.Second,
		Warmup:         2 * time.Second,
		Sessions:       30,
		LoadFactor:     3,
		RequestTimeout: 2 * time.Second,
		Overload:       &OverloadControl{Coordinated: true},
	}
}

func TestFlightRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := flightRubisCfg(7)
	plain := RunRubis(cfg, true)
	var buf bytes.Buffer
	recorded, err := RecordRubis(cfg, true, &buf)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	// An armed recorder is purely observational: every simulated metric of
	// the recorded run matches the unrecorded one exactly.
	if !reflect.DeepEqual(plain, recorded) {
		t.Error("recording changed the run's simulated metrics")
	}

	l, err := flight.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("recorded log does not decode: %v", err)
	}
	if len(l.Events) == 0 {
		t.Fatal("recorded log holds no events — taps not wired?")
	}
	counts := make(map[flight.Category]int)
	for _, ev := range l.Events {
		counts[ev.Cat]++
	}
	for _, cat := range []flight.Category{flight.CatSend, flight.CatApply, flight.CatWeight, flight.CatAdmit} {
		if counts[cat] == 0 {
			t.Errorf("no %v events in a saturated coordinated run", cat)
		}
	}

	rep, err := ReplayRubis(buf.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	if rep.Divergence != nil {
		t.Fatalf("clean replay diverged: %v", rep.Divergence)
	}
	if rep.Events != len(l.Events) {
		t.Errorf("replay saw %d events, log holds %d", rep.Events, len(l.Events))
	}
	if !reflect.DeepEqual(plain, rep.Run) {
		t.Error("verifying replay changed the run's simulated metrics")
	}
}

// reencode rebuilds a log's bytes after a mutation.
func reencode(t *testing.T, l *flight.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := flight.Encode(&buf, l.Seed, l.Meta, l.Events, 0); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	return buf.Bytes()
}

func TestFlightReplayDetectsMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	var buf bytes.Buffer
	if _, err := RecordRubis(flightRubisCfg(7), true, &buf); err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	l, err := flight.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	t.Run("mutated seed", func(t *testing.T) {
		m, err := flight.Decode(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		m.Meta = bytes.Replace(m.Meta, []byte(`"Seed":7`), []byte(`"Seed":8`), 1)
		if bytes.Equal(m.Meta, l.Meta) {
			t.Fatal("meta mutation did not apply")
		}
		rep, err := ReplayRubis(reencode(t, m))
		if err != nil {
			t.Fatalf("ReplayRubis: %v", err)
		}
		d := rep.Divergence
		if d == nil {
			t.Fatal("replay with a different seed reported zero divergence")
		}
		if d.SimTimeSec < 0 || d.Category == "" || d.Detail == "" {
			t.Errorf("divergence missing sim-time/category: %+v", d)
		}
	})

	t.Run("dropped event", func(t *testing.T) {
		// Equivalent to the live run emitting one extra event: the log is
		// missing it, so the replay diverges exactly where it was dropped.
		m, err := flight.Decode(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		// Drop an event that differs from its successor, so the verifier
		// cannot legitimately match past the gap.
		drop := len(m.Events) / 2
		for drop < len(m.Events)-1 && m.Events[drop] == m.Events[drop+1] {
			drop++
		}
		want := m.Events[drop]
		m.Events = append(m.Events[:drop:drop], m.Events[drop+1:]...)
		rep, err := ReplayRubis(reencode(t, m))
		if err != nil {
			t.Fatalf("ReplayRubis: %v", err)
		}
		d := rep.Divergence
		if d == nil {
			t.Fatal("replay against a log missing one event reported zero divergence")
		}
		if d.Index != drop {
			t.Errorf("divergence at event %d, want %d", d.Index, drop)
		}
		if d.Category != want.Cat.String() {
			t.Errorf("divergence category %q, want %q", d.Category, want.Cat)
		}
	})
}

func TestFlightLogFile(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	path := filepath.Join(t.TempDir(), "run.flight")
	cfg := flightRubisCfg(7)
	cfg.FlightLog = path
	run := RunRubis(cfg, true)
	if run == nil || run.Throughput <= 0 {
		t.Fatal("FlightLog run produced no measurements")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading flight log: %v", err)
	}
	rep, err := ReplayRubis(data)
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	if rep.Divergence != nil {
		t.Fatalf("file-logged run does not replay cleanly: %v", rep.Divergence)
	}
	// The header meta must not itself request file recording on replay.
	if rep.Meta.Config.FlightLog != "" {
		t.Error("FlightLog path leaked into the replay meta")
	}
}
