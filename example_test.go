package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleRunCoordScalability compares the central-controller (star) and
// distributed (direct) coordination topologies at a small scale. The
// simulation is deterministic, so the output is stable.
func ExampleRunCoordScalability() {
	points := repro.RunCoordScalability(repro.ScalabilityConfig{
		Islands:    []int{2},
		Duration:   time.Second,
		HopLatency: 100 * time.Microsecond,
		HubCost:    10 * time.Microsecond,
	})
	for _, p := range points {
		fmt.Printf("%s islands=%d mean=%.0fus\n", p.Topology, p.Islands, p.MeanLatencyUs)
	}
	// Output:
	// star islands=2 mean=210us
	// direct islands=2 mean=100us
}

// ExampleRunScenario runs a declarative trace-driven scenario: a
// flash-crowd workload generated from the spec's seed, replayed open
// loop into the platform. Runs are deterministic in (spec, seed), so
// the derived facts below are stable.
func ExampleRunScenario() {
	spec := []byte(`{
		"name": "spike",
		"seed": 1,
		"duration": 8000000000,
		"warmup": 2000000000,
		"workload": {"kind": "flash-crowd", "rate": 20}
	}`)
	sc, err := repro.ParseScenario(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	run, err := repro.RunScenario(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: served=%v\n", sc.Name, run.Throughput > 0)
	// Output:
	// spike: served=true
}

// ExampleCoordScheme shows the available RUBiS coordination policy
// variants.
func ExampleCoordScheme() {
	for _, s := range []repro.CoordScheme{
		repro.SchemeOutstanding, repro.SchemeLoadTrack, repro.SchemeClass,
	} {
		fmt.Println(s)
	}
	// Output:
	// outstanding
	// loadtrack
	// class
}
