package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleRunCoordScalability compares the central-controller (star) and
// distributed (direct) coordination topologies at a small scale. The
// simulation is deterministic, so the output is stable.
func ExampleRunCoordScalability() {
	points := repro.RunCoordScalability(repro.ScalabilityConfig{
		Islands:    []int{2},
		Duration:   time.Second,
		HopLatency: 100 * time.Microsecond,
		HubCost:    10 * time.Microsecond,
	})
	for _, p := range points {
		fmt.Printf("%s islands=%d mean=%.0fus\n", p.Topology, p.Islands, p.MeanLatencyUs)
	}
	// Output:
	// star islands=2 mean=210us
	// direct islands=2 mean=100us
}

// ExampleCoordScheme shows the available RUBiS coordination policy
// variants.
func ExampleCoordScheme() {
	for _, s := range []repro.CoordScheme{
		repro.SchemeOutstanding, repro.SchemeLoadTrack, repro.SchemeClass,
	} {
		fmt.Println(s)
	}
	// Output:
	// outstanding
	// loadtrack
	// class
}
