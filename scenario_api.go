package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/overload"
	"repro/internal/rubis"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Workload selects what drives a RUBiS run. The zero value (and Kind
// "sessions") keeps the calibrated closed-loop client; Kind "trace"
// replays a recorded .wtrace file; any generator kind (see
// WorkloadKinds) synthesizes a deterministic trace from the knobs below
// and replays it open loop. Traces are a pure function of the spec and
// seed, so trace-driven runs record/replay and sweep byte-identically
// like every other experiment.
type Workload struct {
	// Kind is "", "sessions", "trace", or a generator family:
	// "flash-crowd", "diurnal", "heavy-tail", "ml-serving", "kv-tier".
	Kind string `json:"kind,omitempty"`

	// Closed-loop knobs (Kind "" or "sessions"); zero keeps the
	// RubisConfig Sessions/Mix values.
	Sessions int    `json:"sessions,omitempty"`
	Mix      string `json:"mix,omitempty"`

	// Path is the .wtrace file to replay (Kind "trace").
	Path string `json:"path,omitempty"`

	// Generator knobs. Rate is the mean arrival rate in requests/second;
	// Seed pins the trace independently of the run seed (0 = the run
	// seed). The remaining knobs default per family exactly as
	// documented in docs/scenarios.md; zero takes the default.
	Rate float64 `json:"rate,omitempty"`
	Seed int64   `json:"seed,omitempty"`

	SpikeStart  time.Duration `json:"spike_start,omitempty"`
	SpikeLen    time.Duration `json:"spike_len,omitempty"`
	SpikeFactor float64       `json:"spike_factor,omitempty"`

	Period     time.Duration `json:"period,omitempty"`
	NightFloor float64       `json:"night_floor,omitempty"`

	Alpha      float64       `json:"alpha,omitempty"`
	SessionMin float64       `json:"session_min,omitempty"`
	Think      time.Duration `json:"think,omitempty"`

	HeavyFraction float64       `json:"heavy_fraction,omitempty"`
	Batch         int           `json:"batch,omitempty"`
	UpdatePeriod  time.Duration `json:"update_period,omitempty"`

	ReadFraction float64 `json:"read_fraction,omitempty"`
	ScanFraction float64 `json:"scan_fraction,omitempty"`

	// ClassMap overrides how trace request classes resolve to RUBiS
	// request types (defaults: scenario.DefaultClassMap, then direct
	// RUBiS type names).
	ClassMap map[string]string `json:"class_map,omitempty"`
}

// WorkloadKinds returns every accepted Workload.Kind in catalog order.
func WorkloadKinds() []string {
	kinds := []string{"sessions", "trace"}
	for _, k := range scenario.Kinds() {
		kinds = append(kinds, string(k))
	}
	return kinds
}

// closedLoop reports whether the workload keeps the closed-loop client.
func (w *Workload) closedLoop() bool {
	return w == nil || w.Kind == "" || w.Kind == "sessions"
}

// genSpec compiles the generator knobs for a run of the given shape.
func (w *Workload) genSpec(seed int64, duration time.Duration) scenario.GenSpec {
	if duration <= 0 {
		duration = 70 * time.Second // the experiment's calibrated default
	}
	if w.Seed != 0 {
		seed = w.Seed
	}
	return scenario.GenSpec{
		Kind:          scenario.Kind(w.Kind),
		Duration:      toSim(duration),
		Rate:          w.Rate,
		Seed:          seed,
		SpikeStart:    toSim(w.SpikeStart),
		SpikeLen:      toSim(w.SpikeLen),
		SpikeFactor:   w.SpikeFactor,
		Period:        toSim(w.Period),
		NightFloor:    w.NightFloor,
		Alpha:         w.Alpha,
		SessionMin:    w.SessionMin,
		Think:         toSim(w.Think),
		HeavyFraction: w.HeavyFraction,
		Batch:         w.Batch,
		UpdatePeriod:  toSim(w.UpdatePeriod),
		ReadFraction:  w.ReadFraction,
		ScanFraction:  w.ScanFraction,
	}
}

// Validate reports the first configuration error in the workload spec.
// Trace files and class resolution are checked at compile time (they
// need the run shape); see Scenario.Validate / RubisConfig.Workload.
func (w *Workload) Validate() error {
	if w == nil {
		return nil
	}
	if w.closedLoop() {
		if w.Sessions < 0 {
			return fmt.Errorf("repro: workload has negative session count %d", w.Sessions)
		}
		if w.Mix != "" && w.Mix != "bid" && w.Mix != "browsing" {
			return fmt.Errorf("repro: unknown workload mix %q (want \"bid\" or \"browsing\")", w.Mix)
		}
		if w.Path != "" {
			return fmt.Errorf("repro: workload kind %q does not take a trace path", w.Kind)
		}
		return nil
	}
	if w.Kind == "trace" {
		if w.Path == "" {
			return fmt.Errorf("repro: workload kind \"trace\" requires a path")
		}
		return nil
	}
	spec := w.genSpec(1, time.Second)
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("repro: workload: %w", err)
	}
	return nil
}

// trace materializes the workload's trace: read from disk for Kind
// "trace", generated otherwise. Pure function of the spec, the run seed,
// and the run duration.
func (w *Workload) trace(seed int64, duration time.Duration) (*scenario.Trace, error) {
	if w.Kind == "trace" {
		return scenario.ReadFile(w.Path)
	}
	return scenario.Generate(w.genSpec(seed, duration))
}

// driver compiles the workload into the trace-driven client's input for
// a run of the given shape, or nil for closed-loop workloads. LoadFactor
// compresses arrival times (the open-loop analogue of scaling the
// session population).
func (w *Workload) driver(cfg RubisConfig) (*rubis.TraceDriver, error) {
	if w.closedLoop() {
		return nil, nil
	}
	tr, err := w.trace(cfg.Seed, cfg.Duration)
	if err != nil {
		return nil, err
	}
	reqs, err := rubis.ResolveTrace(tr, w.ClassMap)
	if err != nil {
		return nil, err
	}
	rubis.ScaleTraceTimes(reqs, cfg.LoadFactor)
	d := &rubis.TraceDriver{Reqs: reqs}
	if cfg.RequestTimeout > 0 {
		d.Timeout = toSim(cfg.RequestTimeout)
	}
	return d, nil
}

// Scenario is the declarative description of one complete experiment: a
// workload (closed-loop, generated, or recorded trace), the coordination
// plane to run it on, and the fault, overload, and failover machinery to
// arm. A scenario is plain data — it marshals to JSON (see ParseScenario
// and `reproscn`), validates with diagnosable errors, and compiles to a
// RubisConfig; runs are deterministic in (spec, seed).
type Scenario struct {
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed,omitempty"`

	Duration time.Duration `json:"duration,omitempty"`
	Warmup   time.Duration `json:"warmup,omitempty"`

	// Coordinated selects the coordinated plane for RunScenario; the
	// scenario matrix runs both planes regardless of this field.
	Coordinated  bool          `json:"coordinated,omitempty"`
	Scheme       CoordScheme   `json:"scheme,omitempty"`
	CoordLatency time.Duration `json:"coord_latency,omitempty"`

	LoadFactor     float64       `json:"load_factor,omitempty"`
	RequestTimeout time.Duration `json:"request_timeout,omitempty"`

	Robust   bool             `json:"robust,omitempty"`
	Workload *Workload        `json:"workload,omitempty"`
	Faults   *FaultPlan       `json:"faults,omitempty"`
	Overload *OverloadControl `json:"overload,omitempty"`
	Failover *FailoverControl `json:"failover,omitempty"`
	Energy   *EnergyControl   `json:"energy,omitempty"`
}

// Validate reports the first configuration error in the scenario:
// unknown workload kinds, negative rates or loads, malformed fault
// plans, overlapping fault windows, and unparsable shed policies are all
// diagnosable errors here rather than panics at run time.
func (s Scenario) Validate() error {
	if s.Duration < 0 {
		return fmt.Errorf("repro: scenario %q has negative duration %v", s.Name, s.Duration)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("repro: scenario %q has negative warmup %v", s.Name, s.Warmup)
	}
	if s.Duration > 0 && s.Warmup >= s.Duration {
		return fmt.Errorf("repro: scenario %q warmup %v leaves no measurement window in %v", s.Name, s.Warmup, s.Duration)
	}
	if s.LoadFactor < 0 {
		return fmt.Errorf("repro: scenario %q has negative load factor %g", s.Name, s.LoadFactor)
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
		if err := validateFaultWindows(s.Faults); err != nil {
			return fmt.Errorf("repro: scenario %q: %w", s.Name, err)
		}
	}
	if s.Overload != nil {
		if _, err := overload.ParsePolicy(s.Overload.Policy); err != nil {
			return fmt.Errorf("repro: scenario %q: %w", s.Name, err)
		}
	}
	if s.Failover != nil && s.Failover.Replicas < 0 {
		return fmt.Errorf("repro: scenario %q has negative replica count %d", s.Name, s.Failover.Replicas)
	}
	if s.Energy != nil {
		if _, err := s.Energy.internal(); err != nil {
			return fmt.Errorf("repro: scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// validateFaultWindows rejects overlapping windows that the pcie layer
// would silently compose: two crash windows on one island, two replica
// windows on one replica, or two partition/corruption windows sharing a
// channel. The overlap rules live on the pcie plan (shared with the chaos
// search generator) so the DSL and the generator can never disagree.
func validateFaultWindows(p *FaultPlan) error {
	return p.internal().ValidateDisjoint()
}

// Compile validates the scenario and lowers it to a runnable RubisConfig,
// pre-flighting the workload trace (file reads, class resolution) so
// every failure surfaces here as an error rather than later as a panic.
func (s Scenario) Compile() (RubisConfig, error) {
	if err := s.Validate(); err != nil {
		return RubisConfig{}, err
	}
	cfg := RubisConfig{
		Seed:           s.Seed,
		Duration:       s.Duration,
		Warmup:         s.Warmup,
		Scheme:         s.Scheme,
		CoordLatency:   s.CoordLatency,
		LoadFactor:     s.LoadFactor,
		RequestTimeout: s.RequestTimeout,
		Robust:         s.Robust,
		Workload:       s.Workload,
		Faults:         s.Faults,
		Overload:       s.Overload,
		Failover:       s.Failover,
		Energy:         s.Energy,
	}
	if s.Workload != nil {
		if _, err := s.Workload.driver(cfg); err != nil {
			return RubisConfig{}, err
		}
		if s.Workload.closedLoop() {
			cfg.Sessions = s.Workload.Sessions
			cfg.Mix = s.Workload.Mix
		}
	}
	return cfg, nil
}

// RunScenario compiles and runs one scenario on the plane its
// Coordinated field selects. The run is a pure function of the scenario.
func RunScenario(s Scenario) (*RubisRun, error) {
	cfg, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return RunRubis(cfg, s.Coordinated), nil
}

// ParseScenario decodes a JSON scenario spec strictly: unknown fields
// are errors (a typoed knob must not silently become a default), and the
// decoded spec must validate.
func ParseScenario(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("repro: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// scenarioMatrixVersion invalidates cached scenario-matrix trials when
// the experiment's meaning changes.
const scenarioMatrixVersion = "scenario-matrix-v2"

// ScenarioCatalog returns the canonical trace-driven scenario matrix for
// a run of the given duration: one scenario per generator family, each
// composed with the fault, overload, or energy machinery its workload
// shape stresses. The same catalog drives `reprobench -exp ablation-scenarios`,
// the parallel-determinism test, and the pinned bench sweep.
func ScenarioCatalog(dur time.Duration) []Scenario {
	warm := dur / 4
	stress := overloadStressKnobs()
	return []Scenario{
		{
			// The canonical overload trigger: an 8x arrival spike into
			// bounded tier queues.
			Name: "flash-crowd+overload", Duration: dur, Warmup: warm,
			Workload:       &Workload{Kind: "flash-crowd", Rate: 40},
			RequestTimeout: overloadStressTimeout,
			Overload:       &stress,
		},
		{
			// A clean day/night curve: the baseline the others compare to.
			Name: "diurnal", Duration: dur, Warmup: warm,
			Workload: &Workload{Kind: "diurnal", Rate: 30},
		},
		{
			// Pareto session lengths with the coordination link partitioned
			// mid-run; the reliable plane must ride it out.
			Name: "heavy-tail+partition", Duration: dur, Warmup: warm,
			Workload: &Workload{Kind: "heavy-tail", Rate: 25},
			Faults:   &FaultPlan{Partitions: []Partition{{Start: dur / 4, Duration: dur / 4}}},
			Robust:   true,
		},
		{
			// Batched inference arrivals against the overload plane.
			Name: "ml-serving+overload", Duration: dur, Warmup: warm,
			Workload:       &Workload{Kind: "ml-serving", Rate: 50},
			RequestTimeout: overloadStressTimeout,
			Overload:       &stress,
		},
		{
			// The day/night curve again, with the coordinated energy governor
			// converting night-time QoS slack into DVFS downshifts.
			Name: "diurnal+energy", Duration: dur, Warmup: warm,
			Workload: &Workload{Kind: "diurnal", Rate: 30},
			Energy:   &EnergyControl{Governor: EnergyGovCoordinated},
		},
		{
			// A high-rate key-value stream while the IXP crashes and rejoins.
			Name: "kv-tier+crash", Duration: dur, Warmup: warm,
			Workload: &Workload{Kind: "kv-tier", Rate: 60},
			Faults:   &FaultPlan{Crashes: []CrashWindow{{Island: "ixp", Start: dur / 4, Duration: dur / 8}}},
			Robust:   true,
		},
	}
}

// ScenarioRow is one trial of the scenario matrix: one catalog scenario
// run on one coordination plane.
type ScenarioRow struct {
	Scenario string `json:"scenario"`
	// Plane is "base" (uncoordinated) or "coord" (coordinated; overload
	// scenarios also close the cross-island shed loop).
	Plane    string `json:"plane"`
	Workload string `json:"workload"`

	Throughput float64 `json:"throughput"`
	MeanMs     float64 `json:"mean_ms"`
	Sessions   int     `json:"sessions"`

	Shed        uint64 `json:"shed,omitempty"`
	Abandoned   uint64 `json:"abandoned,omitempty"`
	Retransmits uint64 `json:"retransmits,omitempty"`

	// Joules is the platform energy over the measurement interval; zero
	// unless the scenario arms the energy subsystem.
	Joules float64 `json:"joules,omitempty"`
}

// scenarioPointCfg is a scenario-matrix point's cache-keyed
// configuration: the full scenario spec plus the plane.
type scenarioPointCfg struct {
	Name  string   `json:"name"`
	Plane string   `json:"plane"`
	Spec  Scenario `json:"spec"`
}

// ScenarioMatrixPoints expands the scenario catalog into sweep points:
// every scenario on the base and the coordinated plane, in stable order.
// cfg supplies the run shape (Duration; per-scenario warmup is derived).
func ScenarioMatrixPoints(cfg RubisConfig) []sweep.Point {
	var points []sweep.Point
	for _, sc := range ScenarioCatalog(cfg.Duration) {
		for _, plane := range []string{"base", "coord"} {
			points = append(points, sweep.Point{
				Name:   sc.Name + "/" + plane,
				Config: scenarioPointCfg{Name: sc.Name, Plane: plane, Spec: sc},
			})
		}
	}
	return points
}

// ScenarioMatrixResult is one parallel run of the scenario matrix.
type ScenarioMatrixResult struct {
	Sweep *sweep.RunResult
	Rows  []ScenarioRow
}

// RunScenarioMatrix fans the scenario catalog (scenarios × planes ×
// repetitions) across the sweep worker pool. cfg supplies the run shape
// (Duration) and the base seed; each trial re-derives its trace from the
// trial seed, so the matrix is byte-identical for any Workers value.
func RunScenarioMatrix(cfg RubisConfig, opt SweepOptions) (*ScenarioMatrixResult, error) {
	if opt.Seed == 0 {
		opt.Seed = cfg.Seed
	}
	opts, err := opt.options(scenarioMatrixVersion)
	if err != nil {
		return nil, err
	}
	points := ScenarioMatrixPoints(cfg)
	res, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		pc, ok := t.Point.Config.(scenarioPointCfg)
		if !ok {
			return nil, fmt.Errorf("repro: scenario-matrix point %q has config %T", t.Point.Name, t.Point.Config)
		}
		spec := pc.Spec
		spec.Seed = t.Seed
		spec.Coordinated = pc.Plane == "coord"
		if spec.Overload != nil {
			ov := *spec.Overload
			ov.Coordinated = spec.Coordinated
			spec.Overload = &ov
		}
		r, err := RunScenario(spec)
		if err != nil {
			return nil, err
		}
		ov := r.Overload
		return ScenarioRow{
			Scenario:    pc.Name,
			Plane:       pc.Plane,
			Workload:    spec.Workload.Kind,
			Throughput:  r.Throughput,
			MeanMs:      r.MeanOverTypes(),
			Sessions:    r.SessionsCompleted,
			Shed:        ov.QueueShed + ov.Expired + ov.IXPShed,
			Abandoned:   ov.Abandoned,
			Retransmits: r.Robustness.Retransmits,
			Joules:      r.Energy.PlatformJoules,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	out := &ScenarioMatrixResult{Sweep: res, Rows: make([]ScenarioRow, len(res.Trials))}
	for i := range res.Trials {
		if err := res.Decode(i, &out.Rows[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the first-repetition row for a scenario/plane pair.
func (r *ScenarioMatrixResult) Row(scenario, plane string) (ScenarioRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Plane == plane {
			return row, true
		}
	}
	return ScenarioRow{}, false
}
