package repro

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/flight"
	"repro/internal/ixp"
	"repro/internal/overload"
	"repro/internal/platform"
	"repro/internal/rubis"
)

// RubisConfig shapes a RUBiS experiment run (Figures 2, 4, 5 and Tables 1,
// 2 of the paper). Zero values take the calibrated defaults.
type RubisConfig struct {
	Seed     int64
	Duration time.Duration // total run (default 130s)
	Warmup   time.Duration // measurement starts here (default 10s)

	Scheme       CoordScheme   // coordination policy variant (coordinated runs)
	CoordLatency time.Duration // one-way coordination-channel latency (default 150us)

	Sessions int    // concurrent client sessions (default 80)
	Mix      string // "bid" (default, read-write) or "browsing" (read-only)

	// Workload, when non-nil, selects what drives the run: the
	// closed-loop client (kind "sessions"), a recorded .wtrace replay
	// (kind "trace"), or a deterministic trace generator. Because the
	// spec travels inside the config, trace-driven runs record/replay
	// through the flight recorder like every other experiment. See
	// docs/scenarios.md.
	Workload *Workload `json:",omitempty"`

	// IntrModeration, when positive, enables the IXP's host-interrupt
	// moderation at that period (packets batch until the interrupt fires).
	IntrModeration time.Duration

	// CoordLossRate injects coordination-message loss on the PCIe mailbox
	// (fault injection; 0 = lossless). Legacy shorthand for a Faults plan
	// with only LossRate set; ignored when Faults is non-nil.
	CoordLossRate float64

	// Faults arms the full deterministic fault-injection harness on the
	// coordination mailbox (loss, bursts, duplication, reordering, latency
	// spikes, partitions, island crash windows).
	Faults *FaultPlan

	// Robust enables the reliable coordination plane: ack/retry endpoints
	// on both mailbox directions, island heartbeats with the controller's
	// lease watchdog, and graceful degradation of the IXP policies when
	// the uplink dies (actuator weights revert to baselines after a
	// hold-down).
	Robust bool

	// Heartbeat overrides the heartbeat/watchdog period used when Robust
	// is set (default 250ms).
	Heartbeat time.Duration

	// Failover, when non-nil, replicates the global controller: state is
	// checkpointed on a sim-time cadence, standbys follow a live actuation
	// tap, and a deterministic election promotes the lowest-id live standby
	// within a bounded number of heartbeat intervals of primary death.
	// Setting it implies Robust. Crash/partition the replicas with
	// FaultPlan.ControllerCrashes / ControllerPartitions.
	Failover *FailoverControl

	// LoadFactor scales the client session population (1.0 = calibrated
	// default). Values above ~2 drive the deployment past saturation —
	// the regime the overload-control plane is for.
	LoadFactor float64

	// RequestTimeout, when positive, makes client sessions abandon pages
	// unanswered by then and move on; the server keeps working on the
	// abandoned request. This is the wasted work that collapses goodput
	// under uncontrolled overload (0 = sessions wait forever, the
	// calibrated-baseline behaviour).
	RequestTimeout time.Duration

	// Overload, when non-nil, arms the overload-control plane: bounded
	// per-tier admission queues with queueing deadlines and shed policies,
	// and (when Coordinated) the cross-island loop that sheds traffic at
	// the NIC before it crosses PCIe. See docs/overload.md.
	Overload *OverloadControl

	// Energy, when non-nil, arms the energy subsystem: per-island DVFS
	// state machines, the integrating energy model, and the selected
	// governor. See docs/energy.md.
	Energy *EnergyControl `json:",omitempty"`

	// FlightLog, when set, records the run's coordination-event flight log
	// to this file (see docs/flightrecorder.md); replay it with ReplayRubis
	// or `reproflight replay`. For streaming to an arbitrary writer use
	// RecordRubis instead.
	FlightLog string `json:",omitempty"`
}

// DefaultQoSTargetP95 is the coordinated energy governor's default
// end-to-end p95 latency SLO, calibrated against the testbed's ~1.4s p95
// at the 1x calibrated load.
const DefaultQoSTargetP95 = 2 * time.Second

// Energy governor modes accepted by EnergyControl.Governor.
const (
	EnergyGovOff         = "off"
	EnergyGovOndemand    = "ondemand"
	EnergyGovCoordinated = "coordinated"
)

// EnergyControl is the public face of the energy subsystem. Zero values
// take the defaults noted on each field.
type EnergyControl struct {
	// Governor selects the policy: "off" (default; islands pinned at
	// their top operating points, metering only), "ondemand" (per-island
	// latency-blind utilization governors — the uncoordinated ablation),
	// or "coordinated" (the QoS-constrained cross-island governor).
	Governor string
	// QoSTargetP95 is the coordinated governor's end-to-end p95 latency
	// SLO (default 2s, calibrated against the testbed's ~1.4s p95 at the
	// 1x calibrated load).
	QoSTargetP95 time.Duration
	// Period is the governor control window (default 500ms).
	Period time.Duration
	// X86Points overrides the x86 DVFS table as frequency/voltage pairs,
	// lowest frequency first. A table topping out below the hardware
	// maximum caps the island's speed for the whole run.
	X86Points []DVFSPoint `json:",omitempty"`
	// IXPMaxPools caps the IXP's microengine pools at this count for the
	// whole run (0 = all pools available).
	IXPMaxPools int `json:",omitempty"`
}

// DVFSPoint is one public x86 operating point: a core frequency and its
// supply voltage relative to nominal (1.0 at the hardware maximum).
type DVFSPoint struct {
	MHz     int
	Voltage float64
}

// StateResidency is the time one island spent in one operating point.
type StateResidency struct {
	Island  string
	State   string
	Seconds float64
}

// EnergyReport summarises the energy subsystem for one run. All fields
// are zero (and Governor empty) unless RubisConfig.Energy was set. Joules
// cover the measurement interval; residency covers the whole run.
type EnergyReport struct {
	Governor string

	PlatformJoules   float64
	X86Joules        float64
	IXPJoules        float64
	JoulesPerRequest float64

	QoSTargetP95Ms float64
	QoSWindows     int
	QoSViolations  int

	GovernorActions int
	Transitions     int

	Residency []StateResidency
}

// FailoverControl is the public face of controller replication. Zero
// values take the defaults noted on each field.
type FailoverControl struct {
	// Replicas is the total controller count including the primary
	// (default 1: checkpointing without standbys).
	Replicas int
	// CheckpointInterval is the snapshot cadence (default 1s).
	CheckpointInterval time.Duration
	// Heartbeat is the replica beacon / election tick (default 250ms).
	Heartbeat time.Duration
	// ElectionBeats is how many silent beacon intervals a standby waits
	// before promoting itself (default 3): promotion is bounded by
	// (ElectionBeats+1) heartbeat intervals after primary death.
	ElectionBeats int
}

// FailoverReport surfaces the controller group's availability counters for
// one run (all zero unless RubisConfig.Failover or controller fault
// windows armed the group).
type FailoverReport struct {
	Checkpoints     uint64 // snapshots written by primaries
	CheckpointBytes uint64 // total encoded checkpoint bytes
	Promotions      uint64 // standby -> primary elections
	Demotions       uint64 // superseded primaries demoted on partition heal
	Crashes         uint64 // replica crash windows entered
	Restarts        uint64 // replicas restarted from the durable store
	Partitions      uint64 // replica isolation windows entered
	Heals           uint64 // replica isolation windows closed

	Reconciliations uint64 // anti-entropy island epoch comparisons
	EpochAdoptions  uint64 // islands whose agent outran the recovered view
	StaleDropped    uint64 // in-flight decisions dropped as stale at promotion
	EndpointResyncs uint64 // endpoint cursors that moved past the checkpoint
	EndpointFlushes uint64 // outstanding at-most-once sends flushed at promotion

	NoPrimaryDrops uint64 // coordination messages dropped with no live primary

	Term    uint64 // final election term
	Primary int    // final primary replica ID (-1 if none at run end)
}

// OverloadControl is the public face of the overload-control plane.
// Zero values take calibrated defaults.
type OverloadControl struct {
	// QueueCap bounds each tier's admission queue (default 512; negative
	// means unbounded).
	QueueCap int
	// QueueDeadline expires requests queued longer than this (default 4s;
	// negative disables).
	QueueDeadline time.Duration
	// Policy selects the shed policy: "priority" (default; browse sheds
	// before bid/write), "tail", or "head".
	Policy string
	// Threshold is the smoothed queue delay at which a tier declares
	// overload (default 250ms).
	Threshold time.Duration

	// Coordinated closes the cross-island loop: tier overload raises a
	// Trigger, translated by the controller into a weight boost plus an
	// upstream shed-rate adjustment driving the IXP's early-admission
	// gate.
	Coordinated bool
	// ShedStep and BoostDelta size the translated adjustments (defaults
	// 2 shedder units and +128 weight).
	ShedStep   int
	BoostDelta int
	// TriggerRefill/TriggerBurst damp overload Triggers through a token
	// bucket (defaults 500ms, burst 3).
	TriggerRefill time.Duration
	TriggerBurst  int
	// Breaker arms circuit breakers on the reliable mailbox endpoints
	// (implies the reliable plane).
	Breaker bool
}

// OverloadSummary reports what the overload-control plane did during a
// run. All counters are zero when RubisConfig.Overload was nil.
type OverloadSummary struct {
	QueueShed  uint64 // admission rejections across the three tiers
	Expired    uint64 // queueing-deadline expiries across the tiers
	MaxWaiting int    // largest tier backlog observed

	// Tiers holds the raw per-tier admission counters in web, app, db
	// order; at any instant Offered - Served - Shed - Expired is the
	// tier's in-flight (queued or being served) population.
	Tiers [3]TierAdmission

	IXPShed       uint64 // requests shed at the NIC before crossing PCIe
	ShedResponses uint64 // shed responses the client observed post-warmup
	Abandoned     uint64 // pages abandoned at the client's RequestTimeout

	OverloadEpisodes uint64 // tier detector trips
	TriggersSent     uint64 // overload Triggers emitted by the x86 agent
	ShedTunes        uint64 // upstream shed adjustments issued
	BoostTunes       uint64 // translated weight boosts issued

	BreakerRejected uint64 // sends refused while a mailbox breaker was open
	BreakerOpens    uint64 // breaker open transitions (both endpoints)

	ServedP95Ms float64 // p95 latency of served (non-shed) responses
}

// TierAdmission is one tier's admission-queue counters.
type TierAdmission struct {
	Tier       string // "web", "app", or "db"
	Offered    uint64
	Served     uint64
	Shed       uint64
	Expired    uint64
	MaxWaiting int
}

// RequestStats is one row of Table 1 / Figure 2 / Figure 4.
type RequestStats struct {
	Name     string
	Count    int
	MinMs    float64
	AvgMs    float64
	MaxMs    float64
	StdDevMs float64
	P95Ms    float64
	P99Ms    float64
}

// RubisRun is the outcome of one RUBiS run.
type RubisRun struct {
	Coordinated bool
	Scheme      CoordScheme

	PerType []RequestStats // Table 1 order

	// Table 2 metrics.
	Throughput        float64 // requests/second
	SessionsCompleted int
	AvgSessionSec     float64
	Efficiency        float64 // throughput / (total util / 100)

	// Figure 5 metrics (percent of one CPU).
	WebUtil, AppUtil, DBUtil, Dom0Util, TotalUtil float64

	// Coordination-plane counters (coordinated runs only). TunesSent
	// counts the IXP agent's demand-driven Tunes; TunesSelfSent the x86
	// agent's own overload boosts (routed through the controller back to
	// itself).
	TunesSent     uint64
	TunesSelfSent uint64
	TunesApplied  uint64
	FinalWeights  map[string]int

	// Robustness counters (meaningful when faults are injected or the
	// reliable plane is enabled).
	Robustness RobustnessReport

	// Failover summarises the controller replica group (zero unless
	// RubisConfig.Failover or controller fault windows armed it).
	Failover FailoverReport

	// Overload summarises the overload-control plane (zero unless
	// RubisConfig.Overload was set).
	Overload OverloadSummary

	// Energy summarises the energy subsystem (zero unless
	// RubisConfig.Energy was set).
	Energy EnergyReport
}

// internalRubisConfig translates the public config.
func (c RubisConfig) internal(coordinated bool) rubis.ExperimentConfig {
	ec := rubis.ExperimentConfig{
		Coordinated: coordinated,
		Scheme:      c.Scheme.internal(),
	}
	ec.Platform.Seed = c.Seed
	if c.CoordLatency > 0 {
		ec.Platform.CoordLatency = toSim(c.CoordLatency)
	}
	if c.IntrModeration > 0 {
		ec.Platform.HostNet.IntrPeriod = toSim(c.IntrModeration)
	}
	ec.Platform.CoordLossRate = c.CoordLossRate
	ec.Platform.CoordFaults = c.Faults.internal()
	if c.Robust || c.Failover != nil {
		ec.Platform.Reliable = true
		hb := 250 * time.Millisecond
		if c.Heartbeat > 0 {
			hb = c.Heartbeat
		}
		ec.Platform.HeartbeatInterval = toSim(hb)
	}
	if c.Failover != nil {
		ec.Platform.Failover = &core.FailoverConfig{
			Replicas:           c.Failover.Replicas,
			CheckpointInterval: toSim(c.Failover.CheckpointInterval),
			HeartbeatInterval:  toSim(c.Failover.Heartbeat),
			ElectionBeats:      c.Failover.ElectionBeats,
		}
	}
	if c.Duration > 0 {
		ec.Duration = toSim(c.Duration)
	}
	if c.Warmup > 0 {
		ec.Warmup = toSim(c.Warmup)
	}
	if c.Workload != nil {
		if c.Workload.closedLoop() {
			if c.Workload.Sessions > 0 {
				c.Sessions = c.Workload.Sessions
			}
			if c.Workload.Mix != "" {
				c.Mix = c.Workload.Mix
			}
		} else {
			// Scenario.Compile pre-flights the same pure derivation, so a
			// failure here is API misuse (bad direct config), like
			// ParsePolicy below.
			d, err := c.Workload.driver(c)
			if err != nil {
				panic("repro: " + err.Error())
			}
			ec.Trace = d
		}
	}
	client := rubis.DefaultExperimentClient()
	if c.Sessions > 0 {
		client.Sessions = c.Sessions
	}
	if c.Mix == "browsing" {
		client.Mix = rubis.BrowsingMix()
		client.Phases = false
	}
	if c.LoadFactor > 0 {
		client.Sessions = int(float64(client.Sessions)*c.LoadFactor + 0.5)
	}
	if c.RequestTimeout > 0 {
		client.Timeout = toSim(c.RequestTimeout)
	}
	ec.Client = client
	if c.Overload != nil {
		ov := c.Overload
		policy, err := overload.ParsePolicy(ov.Policy)
		if err != nil {
			panic("repro: " + err.Error())
		}
		ec.Overload = &rubis.OverloadSetup{
			QueueCap:      ov.QueueCap,
			QueueDeadline: toSim(ov.QueueDeadline),
			Policy:        policy,
			Threshold:     toSim(ov.Threshold),
			Coordinated:   ov.Coordinated,
			ShedStep:      ov.ShedStep,
			BoostDelta:    ov.BoostDelta,
			TriggerRefill: toSim(ov.TriggerRefill),
			TriggerBurst:  ov.TriggerBurst,
			Breaker:       ov.Breaker,
		}
		if ov.QueueDeadline < 0 {
			ec.Overload.QueueDeadline = -1
		}
		if ov.Threshold < 0 {
			ec.Overload.Threshold = -1
		}
	}
	if c.Energy != nil {
		pcfg, err := c.Energy.internal()
		if err != nil {
			panic("repro: " + err.Error())
		}
		ec.Platform.Energy = pcfg
	}
	return ec
}

// internal translates the public energy control into the platform config.
// Scenario.Compile pre-flights the same derivation, so errors escaping
// here (via the panic above) indicate direct-config API misuse.
func (e *EnergyControl) internal() (*platform.EnergyConfig, error) {
	pcfg := &platform.EnergyConfig{}
	switch e.Governor {
	case "", energy.ModeOff, energy.ModeOndemand, energy.ModeCoordinated:
		pcfg.Governor = e.Governor
	default:
		return nil, fmt.Errorf("energy: unknown governor %q (want off, ondemand, or coordinated)", e.Governor)
	}
	if e.QoSTargetP95 < 0 {
		return nil, fmt.Errorf("energy: negative QoS target %v", e.QoSTargetP95)
	}
	if e.Period < 0 {
		return nil, fmt.Errorf("energy: negative period %v", e.Period)
	}
	if e.QoSTargetP95 > 0 {
		pcfg.QoSTargetP95 = toSim(e.QoSTargetP95)
	}
	if e.Period > 0 {
		pcfg.Period = toSim(e.Period)
	}
	if len(e.X86Points) > 0 {
		pts := make([]energy.OperatingPoint, 0, len(e.X86Points))
		for _, dp := range e.X86Points {
			if dp.MHz <= 0 || dp.MHz > energy.DefaultX86MaxMHz {
				return nil, fmt.Errorf("energy: x86 point %d MHz outside (0, %d]", dp.MHz, energy.DefaultX86MaxMHz)
			}
			if dp.Voltage <= 0 || dp.Voltage > 1 {
				return nil, fmt.Errorf("energy: x86 point %d MHz voltage %v outside (0, 1]", dp.MHz, dp.Voltage)
			}
			pts = append(pts, energy.X86Point(dp.MHz, energy.DefaultX86MaxMHz, dp.Voltage))
		}
		if err := energy.ValidateTable("x86", pts); err != nil {
			return nil, err
		}
		pcfg.X86Table = pts
	}
	if e.IXPMaxPools != 0 {
		if e.IXPMaxPools < 1 || e.IXPMaxPools > ixp.NumMEPools {
			return nil, fmt.Errorf("energy: IXP pool cap %d outside [1, %d]", e.IXPMaxPools, ixp.NumMEPools)
		}
		var pts []energy.OperatingPoint
		for n := 1; n <= e.IXPMaxPools; n++ {
			pts = append(pts, energy.IXPPoint(n))
		}
		pcfg.IXPTable = pts
	}
	return pcfg, nil
}

// energySummary flattens the internal energy report for the public API.
func energySummary(er rubis.EnergyReport) EnergyReport {
	rep := EnergyReport{
		Governor:         er.Governor,
		PlatformJoules:   er.PlatformJoules,
		X86Joules:        er.X86Joules,
		IXPJoules:        er.IXPJoules,
		JoulesPerRequest: er.JoulesPerRequest,
		QoSTargetP95Ms:   er.QoSTargetP95Ms,
		QoSWindows:       er.QoSWindows,
		QoSViolations:    er.QoSViolations,
		GovernorActions:  er.GovernorActions,
		Transitions:      er.Transitions,
	}
	for _, r := range er.Residency {
		rep.Residency = append(rep.Residency, StateResidency{
			Island:  r.Island,
			State:   r.State,
			Seconds: r.Time.Seconds(),
		})
	}
	return rep
}

// RunRubis executes one RUBiS run, with or without coordination.
func RunRubis(cfg RubisConfig, coordinated bool) *RubisRun {
	if cfg.FlightLog != "" {
		return recordToFile(cfg, coordinated, cfg.FlightLog)
	}
	return runRubis(cfg, coordinated, nil)
}

// runRubis is the shared core of RunRubis, RecordRubis, and ReplayRubis:
// rec, when non-nil, taps every coordination-plane event (it may be a
// recording flight.Recorder or a replaying flight.NewVerifier).
func runRubis(cfg RubisConfig, coordinated bool, rec *flight.Recorder) *RubisRun {
	ec := cfg.internal(coordinated)
	ec.Platform.Flight = rec
	res := rubis.RunExperiment(ec)
	run := &RubisRun{
		Coordinated:       coordinated,
		Scheme:            cfg.Scheme,
		Throughput:        res.Throughput,
		SessionsCompleted: res.Metrics.SessionsCompleted(),
		AvgSessionSec:     res.Metrics.AvgSessionTime(),
		Efficiency:        res.Efficiency,
		WebUtil:           res.WebUtil,
		AppUtil:           res.AppUtil,
		DBUtil:            res.DBUtil,
		Dom0Util:          res.Dom0Util,
		TotalUtil:         res.TotalUtil,
		TunesSent:         res.TunesSent,
		TunesSelfSent:     res.TunesSelfSent,
		TunesApplied:      res.TunesApplied,
		FinalWeights:      res.FinalWeights,
		Robustness:        robustnessReport(res.Robust),
		Failover:          failoverReport(res.Robust.Failover),
		Overload:          overloadSummary(res),
	}
	if res.Energy.Enabled {
		run.Energy = energySummary(res.Energy)
	}
	for _, rt := range rubis.AllRequestTypes() {
		s := res.Metrics.TypeSummary(rt)
		sample := res.Metrics.TypeSample(rt)
		run.PerType = append(run.PerType, RequestStats{
			Name:     rt.String(),
			Count:    s.Count(),
			MinMs:    s.Min(),
			AvgMs:    s.Mean(),
			MaxMs:    s.Max(),
			StdDevMs: s.StdDev(),
			P95Ms:    sample.Percentile(95),
			P99Ms:    sample.Percentile(99),
		})
	}
	return run
}

// failoverReport flattens the controller group's counters for the public
// API.
func failoverReport(s core.FailoverStats) FailoverReport {
	return FailoverReport{
		Checkpoints:     s.Checkpoints,
		CheckpointBytes: s.CheckpointBytes,
		Promotions:      s.Promotions,
		Demotions:       s.Demotions,
		Crashes:         s.Crashes,
		Restarts:        s.Restarts,
		Partitions:      s.Partitions,
		Heals:           s.Heals,
		Reconciliations: s.Reconciliations,
		EpochAdoptions:  s.EpochAdoptions,
		StaleDropped:    s.StaleDropped,
		EndpointResyncs: s.EndpointResyncs,
		EndpointFlushes: s.EndpointFlushes,
		NoPrimaryDrops:  s.NoPrimaryDrops,
		Term:            s.Term,
		Primary:         s.Primary,
	}
}

// overloadSummary flattens the internal overload report for the public API.
func overloadSummary(res *rubis.Result) OverloadSummary {
	ov := res.Overload
	s := OverloadSummary{
		IXPShed:          ov.IXPShed,
		ShedResponses:    ov.ShedResponses,
		Abandoned:        ov.Abandoned,
		OverloadEpisodes: ov.OverloadEpisodes,
		TriggersSent:     ov.TriggersSent,
		ShedTunes:        ov.ShedTunes,
		BoostTunes:       ov.BoostTunes,
		BreakerRejected:  res.Robust.BreakerRejected,
		BreakerOpens:     res.Robust.UplinkBreaker.Opens + res.Robust.DownlinkBreaker.Opens,
		ServedP95Ms:      ov.ServedP95Ms,
	}
	tierNames := [3]string{"web", "app", "db"}
	for i, st := range ov.Tiers {
		s.Tiers[i] = TierAdmission{
			Tier:       tierNames[i],
			Offered:    st.Offered,
			Served:     st.Served,
			Shed:       st.Shed,
			Expired:    st.Expired,
			MaxWaiting: st.MaxWaiting,
		}
		s.QueueShed += st.Shed
		s.Expired += st.Expired
		if st.MaxWaiting > s.MaxWaiting {
			s.MaxWaiting = st.MaxWaiting
		}
	}
	return s
}

// CompareRubis runs the baseline and the coordinated case on identical
// workloads, the comparison every RUBiS table and figure is built from.
func CompareRubis(cfg RubisConfig) (base, coord *RubisRun) {
	return RunRubis(cfg, false), RunRubis(cfg, true)
}

// MeanOverTypes returns the count-weighted mean response time across all
// request types, in milliseconds.
func (r *RubisRun) MeanOverTypes() float64 {
	var sum float64
	var n int
	for _, t := range r.PerType {
		sum += t.AvgMs * float64(t.Count)
		n += t.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxOverTypes returns the largest per-type maximum response time (ms).
func (r *RubisRun) MaxOverTypes() float64 {
	max := 0.0
	for _, t := range r.PerType {
		if t.MaxMs > max {
			max = t.MaxMs
		}
	}
	return max
}
