package repro

import (
	"time"

	"repro/internal/rubis"
)

// RubisConfig shapes a RUBiS experiment run (Figures 2, 4, 5 and Tables 1,
// 2 of the paper). Zero values take the calibrated defaults.
type RubisConfig struct {
	Seed     int64
	Duration time.Duration // total run (default 130s)
	Warmup   time.Duration // measurement starts here (default 10s)

	Scheme       CoordScheme   // coordination policy variant (coordinated runs)
	CoordLatency time.Duration // one-way coordination-channel latency (default 150us)

	Sessions int    // concurrent client sessions (default 80)
	Mix      string // "bid" (default, read-write) or "browsing" (read-only)

	// IntrModeration, when positive, enables the IXP's host-interrupt
	// moderation at that period (packets batch until the interrupt fires).
	IntrModeration time.Duration

	// CoordLossRate injects coordination-message loss on the PCIe mailbox
	// (fault injection; 0 = lossless). Legacy shorthand for a Faults plan
	// with only LossRate set; ignored when Faults is non-nil.
	CoordLossRate float64

	// Faults arms the full deterministic fault-injection harness on the
	// coordination mailbox (loss, bursts, duplication, reordering, latency
	// spikes, partitions, island crash windows).
	Faults *FaultPlan

	// Robust enables the reliable coordination plane: ack/retry endpoints
	// on both mailbox directions, island heartbeats with the controller's
	// lease watchdog, and graceful degradation of the IXP policies when
	// the uplink dies (actuator weights revert to baselines after a
	// hold-down).
	Robust bool

	// Heartbeat overrides the heartbeat/watchdog period used when Robust
	// is set (default 250ms).
	Heartbeat time.Duration
}

// RequestStats is one row of Table 1 / Figure 2 / Figure 4.
type RequestStats struct {
	Name     string
	Count    int
	MinMs    float64
	AvgMs    float64
	MaxMs    float64
	StdDevMs float64
	P95Ms    float64
	P99Ms    float64
}

// RubisRun is the outcome of one RUBiS run.
type RubisRun struct {
	Coordinated bool
	Scheme      CoordScheme

	PerType []RequestStats // Table 1 order

	// Table 2 metrics.
	Throughput        float64 // requests/second
	SessionsCompleted int
	AvgSessionSec     float64
	Efficiency        float64 // throughput / (total util / 100)

	// Figure 5 metrics (percent of one CPU).
	WebUtil, AppUtil, DBUtil, Dom0Util, TotalUtil float64

	// Coordination-plane counters (coordinated runs only).
	TunesSent    uint64
	TunesApplied uint64
	FinalWeights map[string]int

	// Robustness counters (meaningful when faults are injected or the
	// reliable plane is enabled).
	Robustness RobustnessReport
}

// internalRubisConfig translates the public config.
func (c RubisConfig) internal(coordinated bool) rubis.ExperimentConfig {
	ec := rubis.ExperimentConfig{
		Coordinated: coordinated,
		Scheme:      c.Scheme.internal(),
	}
	ec.Platform.Seed = c.Seed
	if c.CoordLatency > 0 {
		ec.Platform.CoordLatency = toSim(c.CoordLatency)
	}
	if c.IntrModeration > 0 {
		ec.Platform.HostNet.IntrPeriod = toSim(c.IntrModeration)
	}
	ec.Platform.CoordLossRate = c.CoordLossRate
	ec.Platform.CoordFaults = c.Faults.internal()
	if c.Robust {
		ec.Platform.Reliable = true
		hb := 250 * time.Millisecond
		if c.Heartbeat > 0 {
			hb = c.Heartbeat
		}
		ec.Platform.HeartbeatInterval = toSim(hb)
	}
	if c.Duration > 0 {
		ec.Duration = toSim(c.Duration)
	}
	if c.Warmup > 0 {
		ec.Warmup = toSim(c.Warmup)
	}
	client := rubis.DefaultExperimentClient()
	if c.Sessions > 0 {
		client.Sessions = c.Sessions
	}
	if c.Mix == "browsing" {
		client.Mix = rubis.BrowsingMix()
		client.Phases = false
	}
	ec.Client = client
	return ec
}

// RunRubis executes one RUBiS run, with or without coordination.
func RunRubis(cfg RubisConfig, coordinated bool) *RubisRun {
	res := rubis.RunExperiment(cfg.internal(coordinated))
	run := &RubisRun{
		Coordinated:       coordinated,
		Scheme:            cfg.Scheme,
		Throughput:        res.Throughput,
		SessionsCompleted: res.Metrics.SessionsCompleted(),
		AvgSessionSec:     res.Metrics.AvgSessionTime(),
		Efficiency:        res.Efficiency,
		WebUtil:           res.WebUtil,
		AppUtil:           res.AppUtil,
		DBUtil:            res.DBUtil,
		Dom0Util:          res.Dom0Util,
		TotalUtil:         res.TotalUtil,
		TunesSent:         res.TunesSent,
		TunesApplied:      res.TunesApplied,
		FinalWeights:      res.FinalWeights,
		Robustness:        robustnessReport(res.Robust),
	}
	for _, rt := range rubis.AllRequestTypes() {
		s := res.Metrics.TypeSummary(rt)
		sample := res.Metrics.TypeSample(rt)
		run.PerType = append(run.PerType, RequestStats{
			Name:     rt.String(),
			Count:    s.Count(),
			MinMs:    s.Min(),
			AvgMs:    s.Mean(),
			MaxMs:    s.Max(),
			StdDevMs: s.StdDev(),
			P95Ms:    sample.Percentile(95),
			P99Ms:    sample.Percentile(99),
		})
	}
	return run
}

// CompareRubis runs the baseline and the coordinated case on identical
// workloads, the comparison every RUBiS table and figure is built from.
func CompareRubis(cfg RubisConfig) (base, coord *RubisRun) {
	return RunRubis(cfg, false), RunRubis(cfg, true)
}

// MeanOverTypes returns the count-weighted mean response time across all
// request types, in milliseconds.
func (r *RubisRun) MeanOverTypes() float64 {
	var sum float64
	var n int
	for _, t := range r.PerType {
		sum += t.AvgMs * float64(t.Count)
		n += t.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxOverTypes returns the largest per-type maximum response time (ms).
func (r *RubisRun) MaxOverTypes() float64 {
	max := 0.0
	for _, t := range r.PerType {
		if t.MaxMs > max {
			max = t.MaxMs
		}
	}
	return max
}
