package repro

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/xen"
)

// PowerCapConfig parameterizes the coordinated platform power-cap
// experiment (the paper's second motivating use case, built from the same
// Tune mechanism).
type PowerCapConfig struct {
	Seed     int64
	CapWatts float64       // platform budget (default 120)
	Duration time.Duration // default 60s
	Guests   int           // CPU-saturating guest VMs (default 2)
}

func (c *PowerCapConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CapWatts <= 0 {
		c.CapWatts = 120
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Guests == 0 {
		c.Guests = 2
	}
}

// PowerCapRun reports how the budgeter held the platform to its cap.
type PowerCapRun struct {
	CapWatts        float64
	UncappedWatts   float64 // steady power with no budgeter (same workload)
	SteadyWatts     float64 // mean power over the final quarter of the run
	OverCapPeriods  int
	ThrottleActions int
	FinalGuestCaps  map[string]int // xm-style CPU caps after convergence
	Series          []SeriesPoint  // total platform power over time

	// Energy ledgers for the capped run, integrated by the energy meter —
	// the same integration cap enforcement samples its watts from.
	PlatformJoules float64
	X86Joules      float64
	IXPJoules      float64
}

// joulesOrZero converts an island ledger lookup to joules, treating a
// missing island as an empty ledger.
func joulesOrZero(nj int64, err error) float64 {
	if err != nil {
		return 0
	}
	return energy.Joules(nj)
}

// RunPowerCap saturates a two-island platform and lets the power budgeter
// enforce a platform-level cap purely through coordination Tunes.
func RunPowerCap(cfg PowerCapConfig) *PowerCapRun {
	cfg.applyDefaults()

	build := func(withBudgeter bool) (*platform.Platform, *power.Budgeter) {
		// The energy subsystem's meter (governor off: metering only) is the
		// single source of modeled watts — cap enforcement and the joules
		// ledgers read the same integration, no separate sampling path.
		p := platform.New(platform.Config{
			Seed:   cfg.Seed,
			Energy: &platform.EnergyConfig{Governor: "off"},
		})
		var guests []*xen.Domain
		for i := 0; i < cfg.Guests; i++ {
			guests = append(guests, p.AddGuest("hog", 256))
		}
		for _, g := range guests {
			g := g
			var next func()
			next = func() { g.SubmitFunc(5*sim.Millisecond, "hog", next) }
			next()
		}
		if !withBudgeter {
			return p, nil
		}
		// The x86 power agent translates Tunes into CPU-cap adjustments.
		act := power.NewCapActuator(p.Ctl)
		agent := core.NewAgent("x86-power", nil, p.Controller.Route, act)
		if err := p.Controller.RegisterIsland(core.IslandHandle{Name: "x86-power", Local: agent.Deliver}); err != nil {
			panic(fmt.Sprintf("repro: registering x86 power island: %v", err))
		}
		var targets []power.Target
		for _, g := range guests {
			targets = append(targets, power.Target{Island: "x86-power", Entity: g.ID(), Step: 10})
		}
		meter := p.EnergyMeter
		b := power.NewBudgeter(p.Sim, power.BudgeterConfig{CapWatts: cfg.CapWatts},
			p.X86Agent, p.HV,
			[]power.Model{
				power.NewMeterModel("x86", func() float64 { return meter.Watts(platform.X86Island) }),
				power.NewMeterModel("ixp", func() float64 { return meter.Watts(platform.IXPIsland) }),
			},
			targets)
		b.Start()
		return p, b
	}

	// Reference run without the budgeter for the uncapped draw.
	ref, _ := build(false)
	ref.Sim.RunUntil(toSim(cfg.Duration))
	ref.EnergyMeter.Flush()
	uncapped := ref.EnergyMeter.PlatformWatts()

	p, b := build(true)
	p.Sim.RunUntil(toSim(cfg.Duration))

	p.EnergyMeter.Flush()
	run := &PowerCapRun{
		CapWatts:        cfg.CapWatts,
		UncappedWatts:   uncapped,
		PlatformJoules:  energy.Joules(p.EnergyMeter.PlatformNJ()),
		X86Joules:       joulesOrZero(p.EnergyMeter.IslandNJ(platform.X86Island)),
		IXPJoules:       joulesOrZero(p.EnergyMeter.IslandNJ(platform.IXPIsland)),
		OverCapPeriods:  b.OverCapPeriods(),
		ThrottleActions: b.Actions(),
		FinalGuestCaps:  map[string]int{},
		Series:          seriesPoints(b.Series().Total),
	}
	tailStart := toSim(cfg.Duration).Scale(0.75)
	var sum float64
	var n int
	for _, pt := range b.Series().Total.Points() {
		if pt.T >= tailStart {
			sum += pt.V
			n++
		}
	}
	if n > 0 {
		run.SteadyWatts = sum / float64(n)
	}
	for i, g := range p.Guests() {
		run.FinalGuestCaps[g.Name()+"-"+strconv.Itoa(i)] = g.Cap()
	}
	return run
}
