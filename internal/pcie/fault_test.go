package pcie

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestFaultPlanEmpty(t *testing.T) {
	if !(FaultPlan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	// Crash windows alone inject no channel faults.
	if !(FaultPlan{Crashes: []CrashWindow{{Island: "ixp", Start: 0, Duration: sim.Second}}}).Empty() {
		t.Fatal("crash-only plan not Empty")
	}
	for _, p := range []FaultPlan{
		{LossRate: 0.1}, {DupRate: 0.1}, {ReorderRate: 0.1}, {SpikeRate: 0.1},
		{JitterMax: sim.Microsecond}, {BurstRate: 0.1},
		{Partitions: []Partition{{Start: 0, Duration: sim.Second}}},
	} {
		if p.Empty() {
			t.Errorf("plan %+v reported Empty", p)
		}
	}
}

func TestChannelFaultsNilPassthrough(t *testing.T) {
	var c *ChannelFaults
	v := c.Apply(0)
	if v.Drop || v.Copies != 1 || v.Delay != 0 {
		t.Fatalf("nil Apply = %+v, want clean pass", v)
	}
	if c.Stats() != (FaultStats{}) {
		t.Fatal("nil Stats not zero")
	}
}

func TestChannelFaultsLossRate(t *testing.T) {
	ch := NewInjector(FaultPlan{Seed: 3, LossRate: 0.3}).Channel("x")
	const n = 5000
	drops := 0
	for i := 0; i < n; i++ {
		if ch.Apply(0).Drop {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("loss fraction %.3f, want ~0.3", frac)
	}
	st := ch.Stats()
	if st.Offered != n || st.Dropped != uint64(drops) || st.LossDrops != uint64(drops) {
		t.Fatalf("stats %+v", st)
	}
}

func TestChannelFaultsBurst(t *testing.T) {
	ch := NewInjector(FaultPlan{Seed: 5, BurstRate: 0.01, BurstLen: 6}).Channel("x")
	// Bursts drop runs of exactly BurstLen consecutive messages.
	run, runs := 0, []int{}
	for i := 0; i < 20000; i++ {
		if ch.Apply(0).Drop {
			run++
			continue
		}
		if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no bursts at 1% burst rate")
	}
	for _, r := range runs {
		// Runs are multiples of 6 (back-to-back bursts can concatenate).
		if r%6 != 0 {
			t.Fatalf("burst run of %d messages, want multiple of 6", r)
		}
	}
	if st := ch.Stats(); st.BurstDrops == 0 || st.BurstDrops != st.Dropped {
		t.Fatalf("stats %+v", st)
	}
}

func TestChannelFaultsPartitionWindow(t *testing.T) {
	plan := FaultPlan{Partitions: []Partition{{Start: 10 * sim.Millisecond, Duration: 5 * sim.Millisecond}}}
	ch := NewInjector(plan).Channel("x")
	if v := ch.Apply(9 * sim.Millisecond); v.Drop {
		t.Fatal("dropped before the partition")
	}
	for _, at := range []sim.Time{10 * sim.Millisecond, 12 * sim.Millisecond, 14*sim.Millisecond + 999*sim.Microsecond} {
		if v := ch.Apply(at); !v.Drop || v.Why != FaultPartition {
			t.Fatalf("at %v: %+v, want partition drop", at, v)
		}
	}
	if v := ch.Apply(15 * sim.Millisecond); v.Drop {
		t.Fatal("dropped after the partition healed")
	}
	if st := ch.Stats(); st.PartitionDrops != 3 {
		t.Fatalf("PartitionDrops = %d, want 3", st.PartitionDrops)
	}
}

func TestPartitionChannelScoping(t *testing.T) {
	plan := FaultPlan{Partitions: []Partition{{
		Start: 0, Duration: sim.Second, Channels: []string{"cut"},
	}}}
	inj := NewInjector(plan)
	if v := inj.Channel("cut").Apply(0); !v.Drop {
		t.Fatal("named channel not partitioned")
	}
	if v := inj.Channel("spared").Apply(0); v.Drop {
		t.Fatal("unnamed channel partitioned")
	}
}

func TestChannelFaultsDupReorderSpikeJitter(t *testing.T) {
	plan := FaultPlan{
		Seed: 9, DupRate: 0.5, ReorderRate: 0.5, ReorderDelay: 300 * sim.Microsecond,
		SpikeRate: 0.5, SpikeLatency: 4 * sim.Millisecond, JitterMax: 10 * sim.Microsecond,
	}
	ch := NewInjector(plan).Channel("x")
	var dups, reorders, spikes, jittered int
	for i := 0; i < 2000; i++ {
		v := ch.Apply(0)
		if v.Drop {
			t.Fatal("drop from a plan with no loss processes")
		}
		if v.Copies == 2 {
			dups++
		}
		d := v.Delay
		if d >= 4*sim.Millisecond {
			spikes++
			d -= 4 * sim.Millisecond
		}
		if d >= 300*sim.Microsecond {
			reorders++
			d -= 300 * sim.Microsecond
		}
		if d > 0 {
			jittered++
		}
		if d >= 10*sim.Microsecond {
			t.Fatalf("residual delay %v exceeds JitterMax", d)
		}
	}
	for name, n := range map[string]int{"dups": dups, "reorders": reorders, "spikes": spikes, "jitter": jittered} {
		if n == 0 {
			t.Errorf("no %s in 2000 draws at 50%% rates", name)
		}
	}
	st := ch.Stats()
	if st.Duplicated != uint64(dups) || st.Spiked != uint64(spikes) {
		t.Fatalf("stats %+v vs observed dups=%d spikes=%d", st, dups, spikes)
	}
}

// Same plan, same channel name => identical verdict sequence, regardless of
// the order channels were created in. This is the property that makes whole
// chaos runs reproducible.
func TestInjectorDeterminismAcrossCreationOrder(t *testing.T) {
	plan := FaultPlan{
		Seed: 42, LossRate: 0.1, DupRate: 0.05, ReorderRate: 0.05,
		SpikeRate: 0.02, JitterMax: 20 * sim.Microsecond, BurstRate: 0.01,
	}
	a := NewInjector(plan)
	b := NewInjector(plan)
	// Create in opposite orders; substreams must not care.
	a.Channel("alpha")
	chA := a.Channel("beta")
	chB := b.Channel("beta")
	b.Channel("alpha")
	var seqA, seqB []Verdict
	for i := 0; i < 500; i++ {
		seqA = append(seqA, chA.Apply(0))
		seqB = append(seqB, chB.Apply(0))
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatal("verdict sequences diverge across creation order")
	}
	// Distinct channels draw independent substreams.
	chA2 := a.Channel("alpha")
	var seqA2 []Verdict
	for i := 0; i < 500; i++ {
		seqA2 = append(seqA2, chA2.Apply(0))
	}
	if reflect.DeepEqual(seqA, seqA2) {
		t.Fatal("distinct channels produced identical substreams")
	}
}

func TestInjectorChannelIdentityAndNames(t *testing.T) {
	inj := NewInjector(FaultPlan{LossRate: 0.5})
	if inj.Channel("x") != inj.Channel("x") {
		t.Fatal("same name returned distinct processes")
	}
	inj.Channel("b")
	inj.Channel("a")
	got := inj.Channels()
	want := []string{"a", "b", "x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Channels() = %v, want %v", got, want)
	}
	if inj.Channel("x").Name() != "x" {
		t.Fatal("channel name mismatch")
	}
}

func TestInjectorTotalStats(t *testing.T) {
	inj := NewInjector(FaultPlan{Seed: 1, LossRate: 0.5})
	for i := 0; i < 100; i++ {
		inj.Channel("a").Apply(0)
		inj.Channel("b").Apply(0)
	}
	total := inj.TotalStats()
	if total.Offered != 200 {
		t.Fatalf("Offered = %d, want 200", total.Offered)
	}
	if total.Dropped != inj.Channel("a").Stats().Dropped+inj.Channel("b").Stats().Dropped {
		t.Fatal("TotalStats does not sum channels")
	}
}

func TestInjectorCrashWindows(t *testing.T) {
	plan := FaultPlan{Crashes: []CrashWindow{
		{Island: "ixp", Start: 2 * sim.Second, Duration: sim.Second},
		{Island: "ixp", Start: 8 * sim.Second, Duration: sim.Second},
		{Island: "x86", Start: 4 * sim.Second, Duration: sim.Second},
	}}
	inj := NewInjector(plan)
	if !inj.IslandDown("ixp", 2500*sim.Millisecond) {
		t.Fatal("ixp not down inside its window")
	}
	if inj.IslandDown("ixp", 3*sim.Second) {
		t.Fatal("window end is exclusive")
	}
	if inj.IslandDown("x86", 2500*sim.Millisecond) {
		t.Fatal("x86 down inside ixp's window")
	}
	if got := len(inj.CrashesFor("ixp")); got != 2 {
		t.Fatalf("CrashesFor(ixp) = %d windows, want 2", got)
	}
	if got := len(inj.CrashesFor("arm")); got != 0 {
		t.Fatalf("CrashesFor(arm) = %d windows, want 0", got)
	}
}

func TestFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{FaultLoss, FaultBurst, FaultPartition, FaultDup, FaultReorder, FaultSpike}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if FaultKind(99).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func TestMailboxDuplicationAndDelay(t *testing.T) {
	s := sim.New(1)
	mb := NewMailbox(s, 100*sim.Microsecond)
	mb.SetFaults(NewInjector(FaultPlan{Seed: 2, DupRate: 0.5}))
	received := 0
	mb.OnDeviceReceive(func(Message) { received++ })
	const n = 500
	for i := 0; i < n; i++ {
		mb.SendToDevice(i)
	}
	s.Run()
	if received <= n {
		t.Fatalf("received %d, want > %d with 50%% duplication", received, n)
	}
	if int(mb.DeviceReceived()) != received {
		t.Fatalf("DeviceReceived %d != handler count %d", mb.DeviceReceived(), received)
	}
}
