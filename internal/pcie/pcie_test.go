package pcie

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestChannelLatencyOnly(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, "test", Config{Latency: 10 * sim.Microsecond})
	var arrived sim.Time
	c.Send(1500, func() { arrived = s.Now() })
	s.Run()
	if arrived != 10*sim.Microsecond {
		t.Fatalf("arrived at %v, want 10us (infinite bandwidth)", arrived)
	}
}

func TestChannelBandwidthSerialization(t *testing.T) {
	s := sim.New(1)
	// 1e6 B/s: a 1000-byte message occupies the wire for 1ms.
	c := NewChannel(s, "test", Config{Latency: 0, Bandwidth: 1e6})
	var first, second sim.Time
	c.Send(1000, func() { first = s.Now() })
	c.Send(1000, func() { second = s.Now() })
	s.Run()
	if first != 1*sim.Millisecond {
		t.Fatalf("first arrived at %v, want 1ms", first)
	}
	if second != 2*sim.Millisecond {
		t.Fatalf("second arrived at %v, want 2ms (serialized)", second)
	}
}

func TestChannelWireFreesOverTime(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, "test", Config{Latency: 0, Bandwidth: 1e6})
	c.Send(1000, nil)
	if got := c.Backlog(); got != 1*sim.Millisecond {
		t.Fatalf("backlog = %v, want 1ms", got)
	}
	var arrived sim.Time
	s.At(5*sim.Millisecond, func() {
		if got := c.Backlog(); got != 0 {
			t.Errorf("backlog after idle = %v, want 0", got)
		}
		c.Send(1000, func() { arrived = s.Now() })
	})
	s.Run()
	if arrived != 6*sim.Millisecond {
		t.Fatalf("arrived at %v, want 6ms", arrived)
	}
}

func TestChannelFIFOOrder(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, "test", Config{Latency: 5 * sim.Microsecond, Bandwidth: 1e9})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Send(100+i, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestChannelCounters(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, "ctr", Config{Latency: sim.Microsecond, Bandwidth: 1e9})
	c.Send(100, nil)
	c.Send(200, nil)
	s.Run()
	if c.Sent() != 2 || c.Bytes() != 300 {
		t.Fatalf("Sent/Bytes = %d/%d", c.Sent(), c.Bytes())
	}
	if c.MaxDelay() < sim.Microsecond {
		t.Fatalf("MaxDelay = %v", c.MaxDelay())
	}
	if c.Name() != "ctr" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Config().Latency != sim.Microsecond {
		t.Fatal("Config not returned")
	}
}

func TestChannelValidation(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { NewChannel(s, "x", Config{Latency: -1}) },
		func() { NewChannel(s, "x", Config{Bandwidth: -1}) },
		func() { NewChannel(s, "x", Config{}).Send(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid channel use did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestChannelDeliveryNeverBeforeLatencyQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New(1)
		cfg := Config{Latency: 7 * sim.Microsecond, Bandwidth: 1e8}
		c := NewChannel(s, "q", cfg)
		ok := true
		for _, sz := range sizes {
			sent := s.Now()
			c.Send(int(sz), func() {
				if s.Now()-sent < cfg.Latency {
					ok = false
				}
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Latency <= 0 || cfg.Bandwidth <= 0 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestMailboxRoundTrip(t *testing.T) {
	s := sim.New(1)
	mb := NewMailbox(s, 150*sim.Microsecond)
	var hostGot, deviceGot Message
	var hostAt sim.Time
	mb.OnHostReceive(func(m Message) { hostGot, hostAt = m, s.Now() })
	mb.OnDeviceReceive(func(m Message) { deviceGot = m })
	mb.SendToHost("tune")
	mb.SendToDevice(42)
	s.Run()
	if hostGot != "tune" || deviceGot != 42 {
		t.Fatalf("messages = %v, %v", hostGot, deviceGot)
	}
	if hostAt != 150*sim.Microsecond {
		t.Fatalf("host delivery at %v, want 150us", hostAt)
	}
	if mb.HostReceived() != 1 || mb.DeviceReceived() != 1 {
		t.Fatalf("counters = %d/%d", mb.HostReceived(), mb.DeviceReceived())
	}
	if mb.Latency() != 150*sim.Microsecond {
		t.Fatalf("Latency = %v", mb.Latency())
	}
}

func TestMailboxNoHandlerIsSafe(t *testing.T) {
	s := sim.New(1)
	mb := NewMailbox(s, sim.Microsecond)
	mb.SendToHost("dropped")
	s.Run()
	if mb.HostReceived() != 1 {
		t.Fatal("message not counted")
	}
}

func TestMailboxSetLatency(t *testing.T) {
	s := sim.New(1)
	mb := NewMailbox(s, 100*sim.Microsecond)
	mb.SetLatency(1 * sim.Microsecond)
	var at sim.Time
	mb.OnDeviceReceive(func(Message) { at = s.Now() })
	mb.SendToDevice("x")
	s.Run()
	if at != 1*sim.Microsecond {
		t.Fatalf("delivery at %v after SetLatency", at)
	}
}

func TestMailboxValidation(t *testing.T) {
	s := sim.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative mailbox latency did not panic")
			}
		}()
		NewMailbox(s, -1)
	}()
	mb := NewMailbox(s, 0)
	defer func() {
		if recover() == nil {
			t.Error("negative SetLatency did not panic")
		}
	}()
	mb.SetLatency(-1)
}

func TestMailboxLossInjection(t *testing.T) {
	s := sim.New(1)
	mb := NewMailbox(s, sim.Microsecond)
	mb.SetFaults(NewInjector(FaultPlan{Seed: 7, LossRate: 0.5}))
	received := 0
	mb.OnHostReceive(func(Message) { received++ })
	const n = 2000
	for i := 0; i < n; i++ {
		mb.SendToHost(i)
	}
	s.Run()
	if mb.Dropped() == 0 {
		t.Fatal("no drops at 50% loss")
	}
	if received+int(mb.Dropped()) != n {
		t.Fatalf("received %d + dropped %d != %d", received, mb.Dropped(), n)
	}
	frac := float64(mb.Dropped()) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction = %.2f, want ~0.5", frac)
	}
	// Disarm: everything flows again.
	mb.SetFaults(nil)
	before := received
	mb.SendToHost("x")
	s.Run()
	if received != before+1 {
		t.Fatal("message lost after disarming faults")
	}
}

func TestMailboxLossValidation(t *testing.T) {
	for _, plan := range []FaultPlan{
		{LossRate: -0.1},
		{LossRate: 1.0},
		{DupRate: 2},
		{BurstRate: 0.1, BurstLen: -1},
		{JitterMax: -sim.Microsecond},
		{Partitions: []Partition{{Start: 0, Duration: 0}}},
		{Crashes: []CrashWindow{{Island: "", Start: 0, Duration: sim.Second}}},
	} {
		plan := plan
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid fault plan %+v accepted", plan)
				}
			}()
			NewInjector(plan)
		}()
		if plan.Validate() == nil {
			t.Errorf("Validate accepted %+v", plan)
		}
	}
}
