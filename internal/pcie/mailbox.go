package pcie

import (
	"fmt"

	"repro/internal/sim"
)

// Message is an opaque coordination payload carried by a Mailbox.
type Message interface{}

// Handler consumes messages on the receiving side of a Mailbox.
type Handler func(Message)

// Corruptible is implemented by payloads that can model in-flight bit
// flips: CorruptPayload returns a damaged copy of the message under the
// injector's mask. Payloads that do not implement it pass through
// corruption verdicts untouched (the fault is still counted).
type Corruptible interface {
	CorruptPayload(mask uint64) any
}

// Injector channel names for the two mailbox directions.
const (
	MailboxToHost   = "mailbox:to-host"
	MailboxToDevice = "mailbox:to-device"
)

// Mailbox is the bidirectional coordination channel set up in the device's
// PCI configuration space (paper §2.3). It is deliberately simple: small
// fixed-cost messages, a configurable one-way latency, and FIFO delivery in
// each direction. The per-message latency dominates behaviour, so no
// bandwidth term is modeled.
//
// Fault injection is armed with SetFaults: each direction becomes an
// injector channel (MailboxToHost / MailboxToDevice) whose FaultPlan can
// drop, duplicate, delay, and reorder messages deterministically.
type Mailbox struct {
	sim     *sim.Simulator
	latency sim.Time

	toHost   Handler
	toDevice Handler

	hostFaults   *ChannelFaults // device->host direction
	deviceFaults *ChannelFaults // host->device direction

	hostRx    uint64
	deviceRx  uint64
	dropped   uint64
	corruptRx uint64
}

// NewMailbox returns a mailbox with the given one-way message latency.
func NewMailbox(s *sim.Simulator, latency sim.Time) *Mailbox {
	if latency < 0 {
		panic(fmt.Sprintf("pcie: negative mailbox latency %v", latency))
	}
	return &Mailbox{sim: s, latency: latency}
}

// Latency returns the one-way message latency.
func (m *Mailbox) Latency() sim.Time { return m.latency }

// SetLatency changes the one-way latency (used by the latency-sweep
// ablation). In-flight messages keep the latency they were sent with.
func (m *Mailbox) SetLatency(l sim.Time) {
	if l < 0 {
		panic(fmt.Sprintf("pcie: negative mailbox latency %v", l))
	}
	m.latency = l
}

// OnHostReceive registers the host-side (x86/Dom0) message handler.
func (m *Mailbox) OnHostReceive(h Handler) { m.toHost = h }

// OnDeviceReceive registers the device-side (IXP XScale) message handler.
func (m *Mailbox) OnDeviceReceive(h Handler) { m.toDevice = h }

// SetFaults arms fault injection on both mailbox directions from the
// injector's plan (nil disarms). Decisions are deterministic: same plan,
// same message sequence, same faults.
func (m *Mailbox) SetFaults(inj *Injector) {
	if inj == nil {
		m.hostFaults, m.deviceFaults = nil, nil
		return
	}
	m.hostFaults = inj.Channel(MailboxToHost)
	m.deviceFaults = inj.Channel(MailboxToDevice)
}

// Dropped returns messages lost to fault injection (both directions).
func (m *Mailbox) Dropped() uint64 { return m.dropped }

// CorruptArrived returns corrupted frames actually delivered to a
// handler (both directions); frames corrupted in flight when the run
// ends are excluded.
func (m *Mailbox) CorruptArrived() uint64 { return m.corruptRx }

// send runs one direction's fault process and schedules the deliveries.
func (m *Mailbox) send(msg Message, faults *ChannelFaults, deliver func(Message)) {
	v := faults.Apply(m.sim.Now())
	if v.Drop {
		m.dropped++
		return
	}
	if v.Corrupt {
		if c, ok := msg.(Corruptible); ok {
			msg = c.CorruptPayload(v.CorruptMask)
		}
		// Count corrupted frames at arrival, not injection: a frame still
		// in flight when the run ends was injected but can never be
		// dropped downstream, so the detect-and-drop ledger reconciles
		// against arrivals.
		inner := deliver
		deliver = func(msg Message) { m.corruptRx++; inner(msg) }
	}
	for i := 0; i < v.Copies; i++ {
		m.sim.After(m.latency+v.Delay, func() { deliver(msg) })
	}
}

// SendToHost delivers msg to the host handler after the one-way latency.
func (m *Mailbox) SendToHost(msg Message) {
	m.send(msg, m.hostFaults, func(msg Message) {
		m.hostRx++
		if m.toHost != nil {
			m.toHost(msg)
		}
	})
}

// SendToDevice delivers msg to the device handler after the one-way latency.
func (m *Mailbox) SendToDevice(msg Message) {
	m.send(msg, m.deviceFaults, func(msg Message) {
		m.deviceRx++
		if m.toDevice != nil {
			m.toDevice(msg)
		}
	})
}

// HostReceived returns the number of messages delivered to the host side.
func (m *Mailbox) HostReceived() uint64 { return m.hostRx }

// DeviceReceived returns the number of messages delivered to the device side.
func (m *Mailbox) DeviceReceived() uint64 { return m.deviceRx }
