package pcie

import (
	"fmt"

	"repro/internal/sim"
)

// lossModel drops messages with a fixed probability — fault injection for
// the coordination channel. Real PCI config-space mailboxes lose messages
// when the producer overruns the consumer; coordination policies must
// tolerate it (the load-tracking translation's decay is what heals the
// resulting drift).
type lossModel struct {
	rate float64
	rng  *sim.Rand
}

func (l *lossModel) drop() bool {
	return l != nil && l.rng.Bool(l.rate)
}

// Message is an opaque coordination payload carried by a Mailbox.
type Message interface{}

// Handler consumes messages on the receiving side of a Mailbox.
type Handler func(Message)

// Mailbox is the bidirectional coordination channel set up in the device's
// PCI configuration space (paper §2.3). It is deliberately simple: small
// fixed-cost messages, a configurable one-way latency, and FIFO delivery in
// each direction. The per-message latency dominates behaviour, so no
// bandwidth term is modeled.
type Mailbox struct {
	sim     *sim.Simulator
	latency sim.Time

	toHost   Handler
	toDevice Handler

	loss *lossModel

	hostRx   uint64
	deviceRx uint64
	dropped  uint64
}

// NewMailbox returns a mailbox with the given one-way message latency.
func NewMailbox(s *sim.Simulator, latency sim.Time) *Mailbox {
	if latency < 0 {
		panic(fmt.Sprintf("pcie: negative mailbox latency %v", latency))
	}
	return &Mailbox{sim: s, latency: latency}
}

// Latency returns the one-way message latency.
func (m *Mailbox) Latency() sim.Time { return m.latency }

// SetLatency changes the one-way latency (used by the latency-sweep
// ablation). In-flight messages keep the latency they were sent with.
func (m *Mailbox) SetLatency(l sim.Time) {
	if l < 0 {
		panic(fmt.Sprintf("pcie: negative mailbox latency %v", l))
	}
	m.latency = l
}

// OnHostReceive registers the host-side (x86/Dom0) message handler.
func (m *Mailbox) OnHostReceive(h Handler) { m.toHost = h }

// OnDeviceReceive registers the device-side (IXP XScale) message handler.
func (m *Mailbox) OnDeviceReceive(h Handler) { m.toDevice = h }

// SetLossRate enables fault injection: each message is independently
// dropped with probability rate (0 disables). Drops are deterministic
// given the rng stream.
func (m *Mailbox) SetLossRate(rate float64, rng *sim.Rand) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("pcie: loss rate %v out of [0, 1)", rate))
	}
	if rate == 0 {
		m.loss = nil
		return
	}
	if rng == nil {
		panic("pcie: loss rate needs an rng")
	}
	m.loss = &lossModel{rate: rate, rng: rng}
}

// Dropped returns messages lost to fault injection.
func (m *Mailbox) Dropped() uint64 { return m.dropped }

// SendToHost delivers msg to the host handler after the one-way latency.
func (m *Mailbox) SendToHost(msg Message) {
	if m.loss.drop() {
		m.dropped++
		return
	}
	m.sim.After(m.latency, func() {
		m.hostRx++
		if m.toHost != nil {
			m.toHost(msg)
		}
	})
}

// SendToDevice delivers msg to the device handler after the one-way latency.
func (m *Mailbox) SendToDevice(msg Message) {
	if m.loss.drop() {
		m.dropped++
		return
	}
	m.sim.After(m.latency, func() {
		m.deviceRx++
		if m.toDevice != nil {
			m.toDevice(msg)
		}
	})
}

// HostReceived returns the number of messages delivered to the host side.
func (m *Mailbox) HostReceived() uint64 { return m.hostRx }

// DeviceReceived returns the number of messages delivered to the device side.
func (m *Mailbox) DeviceReceived() uint64 { return m.deviceRx }
