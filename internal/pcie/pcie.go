// Package pcie models the interconnect joining the paper's two scheduling
// islands: the host x86 platform and the Netronome i8000 (IXP2850) card.
//
// Two facilities ride on it in the prototype and are modeled here:
//
//   - bulk packet transfer via DMA between the IXP DRAM rings and the host
//     message queues (Channel with bandwidth serialization), and
//   - the low-rate coordination channel carved out of the device's PCI
//     configuration space (Mailbox), whose one-way latency the paper calls
//     out as the cause of occasional mis-coordination.
//
// Latency and bandwidth are explicit parameters so the benchmark harness
// can sweep them (the "hardware considerations" discussion in the paper:
// QPI/HTX-class interconnects would shrink these numbers).
package pcie

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes one direction of a PCIe link.
type Config struct {
	Latency   sim.Time // one-way propagation + doorbell service latency
	Bandwidth float64  // bytes per second of payload throughput; 0 = infinite
}

// DefaultConfig returns parameters representative of the prototype's PCIe
// attachment: ~10us DMA engine latency and ~6 Gbit/s effective throughput
// (PCIe x4 gen1 era hardware).
func DefaultConfig() Config {
	return Config{Latency: 10 * sim.Microsecond, Bandwidth: 750e6}
}

// Channel is an ordered, bandwidth-serialized simplex message channel. Each
// message occupies the wire for size/bandwidth seconds; messages arrive in
// FIFO order after the wire time plus the propagation latency.
type Channel struct {
	sim      *sim.Simulator
	cfg      Config
	name     string
	busytill sim.Time

	sent     uint64
	bytes    uint64
	maxDelay sim.Time
}

// NewChannel returns a channel driven by s. Name is used in diagnostics.
func NewChannel(s *sim.Simulator, name string, cfg Config) *Channel {
	if cfg.Latency < 0 {
		panic(fmt.Sprintf("pcie: negative latency %v", cfg.Latency))
	}
	if cfg.Bandwidth < 0 {
		panic(fmt.Sprintf("pcie: negative bandwidth %v", cfg.Bandwidth))
	}
	return &Channel{sim: s, cfg: cfg, name: name}
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Config returns the channel's configuration.
func (c *Channel) Config() Config { return c.cfg }

// Send transfers size bytes and invokes deliver when the last byte arrives
// at the far side. It returns the delivery time.
func (c *Channel) Send(size int, deliver func()) sim.Time {
	if size < 0 {
		panic(fmt.Sprintf("pcie: negative message size %d", size))
	}
	now := c.sim.Now()
	start := now
	if c.busytill > start {
		start = c.busytill
	}
	var wire sim.Time
	if c.cfg.Bandwidth > 0 {
		wire = sim.Time(float64(size) / c.cfg.Bandwidth * float64(sim.Second))
	}
	c.busytill = start + wire
	arrive := c.busytill + c.cfg.Latency
	c.sent++
	c.bytes += uint64(size)
	if d := arrive - now; d > c.maxDelay {
		c.maxDelay = d
	}
	if deliver != nil {
		c.sim.At(arrive, deliver)
	}
	return arrive
}

// Sent returns the number of messages transferred.
func (c *Channel) Sent() uint64 { return c.sent }

// Bytes returns the total payload bytes transferred.
func (c *Channel) Bytes() uint64 { return c.bytes }

// MaxDelay returns the largest observed send-to-delivery delay (queueing
// included).
func (c *Channel) MaxDelay() sim.Time { return c.maxDelay }

// Backlog returns how long a message sent now would wait for the wire.
func (c *Channel) Backlog() sim.Time {
	if b := c.busytill - c.sim.Now(); b > 0 {
		return b
	}
	return 0
}
