package pcie

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
)

// FaultKind discriminates the independent fault processes a FaultPlan can
// arm on a channel. It is used for counters and trace output.
type FaultKind int

// Fault kinds.
const (
	FaultLoss      FaultKind = iota // independent per-message drop
	FaultBurst                      // correlated drop run (consumer overrun)
	FaultPartition                  // timed total-loss window on the link
	FaultDup                        // message delivered twice
	FaultReorder                    // message held back so successors overtake
	FaultSpike                      // latency spike on one message
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLoss:
		return "loss"
	case FaultBurst:
		return "burst"
	case FaultPartition:
		return "partition"
	case FaultDup:
		return "dup"
	case FaultReorder:
		return "reorder"
	case FaultSpike:
		return "spike"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Partition is a timed total-loss window on coordination channels: every
// message offered during [Start, Start+Duration) is dropped. An empty
// Channels list partitions every channel of the injector; otherwise only
// the named channels are cut.
type Partition struct {
	Start    sim.Time
	Duration sim.Time
	Channels []string
}

func (p Partition) contains(now sim.Time) bool {
	return now >= p.Start && now < p.Start+p.Duration
}

// CrashWindow marks an island as crashed for [Start, Start+Duration): its
// agent neither sends, receives, nor heartbeats, and it restarts (and must
// rejoin) when the window closes. The injector only records the schedule;
// the platform harness wires it to the island's agent.
type CrashWindow struct {
	Island   string
	Start    sim.Time
	Duration sim.Time
}

func (w CrashWindow) contains(now sim.Time) bool {
	return now >= w.Start && now < w.Start+w.Duration
}

// ReplicaWindow marks a controller replica as faulted for
// [Start, Start+Duration). In a crash window the replica loses its volatile
// state and restarts from the durable checkpoint store when the window
// closes; in a partition window it is isolated from the agents, its peers,
// and the store, then heals. The injector only records the schedule; the
// platform harness wires it to the controller group.
type ReplicaWindow struct {
	Replica  int
	Start    sim.Time
	Duration sim.Time
}

// FaultPlan is a declarative, seeded description of every fault the
// coordination channel can suffer. The same plan and seed always produce
// the same per-message decisions, independent of how many channels exist or
// the order they are created in: each channel derives its own random
// substream from the plan seed and the channel's name.
//
// Rates are independent per-message probabilities in [0, 1). Zero values
// disable the corresponding process.
type FaultPlan struct {
	// Seed drives the stochastic fault processes (default 1). It is
	// deliberately separate from the simulation seed so fault schedules can
	// be varied and pinned independently of the workload.
	Seed int64

	LossRate float64 // iid drop probability
	DupRate  float64 // iid duplication probability (one extra copy)

	// ReorderRate holds a message back for ReorderDelay so that later
	// messages overtake it (default delay 500us).
	ReorderRate  float64
	ReorderDelay sim.Time

	// SpikeRate adds SpikeLatency to a message's one-way latency
	// (default spike 2ms).
	SpikeRate    float64
	SpikeLatency sim.Time

	// JitterMax adds a uniform extra delay in [0, JitterMax) to every
	// message (0 = no jitter).
	JitterMax sim.Time

	// BurstRate is the per-message probability of starting a loss burst in
	// which this and the next BurstLen-1 messages are dropped (default
	// length 8) — the mailbox's consumer-overrun failure mode.
	BurstRate float64
	BurstLen  int

	// Partitions are timed total-loss windows.
	Partitions []Partition

	// Crashes are island crash/restart windows.
	Crashes []CrashWindow

	// ControllerCrashes are controller replica crash/restart windows.
	ControllerCrashes []ReplicaWindow

	// ControllerPartitions are controller replica isolation windows.
	ControllerPartitions []ReplicaWindow
}

// Empty reports whether the plan injects no channel faults at all
// (crash windows are island-level, not channel-level).
func (p FaultPlan) Empty() bool {
	return p.LossRate == 0 && p.DupRate == 0 && p.ReorderRate == 0 &&
		p.SpikeRate == 0 && p.JitterMax == 0 && p.BurstRate == 0 &&
		len(p.Partitions) == 0
}

func (p *FaultPlan) applyDefaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ReorderDelay == 0 {
		p.ReorderDelay = 500 * sim.Microsecond
	}
	if p.SpikeLatency == 0 {
		p.SpikeLatency = 2 * sim.Millisecond
	}
	if p.BurstLen == 0 {
		p.BurstLen = 8
	}
}

// Validate reports the first configuration error in the plan.
func (p FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"LossRate", p.LossRate}, {"DupRate", p.DupRate},
		{"ReorderRate", p.ReorderRate}, {"SpikeRate", p.SpikeRate},
		{"BurstRate", p.BurstRate},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("pcie: fault plan %s %v out of [0, 1)", r.name, r.v)
		}
	}
	if p.ReorderDelay < 0 || p.SpikeLatency < 0 || p.JitterMax < 0 {
		return fmt.Errorf("pcie: fault plan with negative delay")
	}
	if p.BurstLen < 0 {
		return fmt.Errorf("pcie: fault plan BurstLen %d negative", p.BurstLen)
	}
	for _, w := range p.Partitions {
		if w.Start < 0 || w.Duration <= 0 {
			return fmt.Errorf("pcie: partition window [%v +%v] invalid", w.Start, w.Duration)
		}
	}
	for _, c := range p.Crashes {
		if c.Island == "" {
			return fmt.Errorf("pcie: crash window with empty island name")
		}
		if c.Start < 0 || c.Duration <= 0 {
			return fmt.Errorf("pcie: crash window [%v +%v] for %q invalid", c.Start, c.Duration, c.Island)
		}
	}
	for _, set := range [][]ReplicaWindow{p.ControllerCrashes, p.ControllerPartitions} {
		for _, w := range set {
			if w.Replica < 0 {
				return fmt.Errorf("pcie: controller window with negative replica %d", w.Replica)
			}
			if w.Start < 0 || w.Duration <= 0 {
				return fmt.Errorf("pcie: controller window [%v +%v] for replica %d invalid", w.Start, w.Duration, w.Replica)
			}
		}
	}
	return nil
}

// Verdict is the injector's decision for one offered message.
type Verdict struct {
	Drop   bool
	Why    FaultKind // valid when Drop is set
	Copies int       // deliveries (1 normally, 2 when duplicated)
	Delay  sim.Time  // extra one-way delay (reorder/spike/jitter)
}

// FaultStats counts one channel's injected faults.
type FaultStats struct {
	Offered        uint64
	Dropped        uint64 // all causes
	LossDrops      uint64
	BurstDrops     uint64
	PartitionDrops uint64
	Duplicated     uint64
	Reordered      uint64
	Spiked         uint64
}

func (s *FaultStats) add(o FaultStats) {
	s.Offered += o.Offered
	s.Dropped += o.Dropped
	s.LossDrops += o.LossDrops
	s.BurstDrops += o.BurstDrops
	s.PartitionDrops += o.PartitionDrops
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.Spiked += o.Spiked
}

// Injector compiles a FaultPlan into per-channel fault processes. Channels
// are identified by name; asking for the same name twice returns the same
// process, and a channel's random substream depends only on (plan seed,
// name), never on creation order.
type Injector struct {
	plan  FaultPlan
	chans map[string]*ChannelFaults
}

// NewInjector returns an injector for the plan. It panics on an invalid
// plan (constructor misuse guard); use FaultPlan.Validate to check first.
func NewInjector(plan FaultPlan) *Injector {
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("pcie: invalid fault plan: %v", err))
	}
	plan.applyDefaults()
	return &Injector{plan: plan, chans: make(map[string]*ChannelFaults)}
}

// Plan returns the (defaulted) plan the injector was built from.
func (in *Injector) Plan() FaultPlan { return in.plan }

// Channel returns the named channel's fault process, creating it on first
// use.
func (in *Injector) Channel(name string) *ChannelFaults {
	if c, ok := in.chans[name]; ok {
		return c
	}
	var parts []Partition
	for _, w := range in.plan.Partitions {
		if len(w.Channels) == 0 {
			parts = append(parts, w)
			continue
		}
		for _, n := range w.Channels {
			if n == name {
				parts = append(parts, w)
				break
			}
		}
	}
	c := &ChannelFaults{
		name:       name,
		plan:       in.plan,
		partitions: parts,
		rng:        sim.NewRand(channelSeed(in.plan.Seed, name)),
	}
	in.chans[name] = c
	return c
}

// Channels returns the names of the channels created so far, sorted.
func (in *Injector) Channels() []string {
	names := make([]string, 0, len(in.chans))
	for n := range in.chans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalStats sums the fault statistics of every channel.
func (in *Injector) TotalStats() FaultStats {
	var total FaultStats
	for _, n := range in.Channels() {
		total.add(in.chans[n].Stats())
	}
	return total
}

// IslandDown reports whether the island is inside one of its crash windows
// at the given time.
func (in *Injector) IslandDown(island string, now sim.Time) bool {
	for _, c := range in.plan.Crashes {
		if c.Island == island && c.contains(now) {
			return true
		}
	}
	return false
}

// CrashesFor returns the island's crash windows in plan order.
func (in *Injector) CrashesFor(island string) []CrashWindow {
	var out []CrashWindow
	for _, c := range in.plan.Crashes {
		if c.Island == island {
			out = append(out, c)
		}
	}
	return out
}

// channelSeed derives a channel's rng seed from the plan seed and the
// channel name (FNV-1a), so substreams are independent of creation order.
func channelSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// ChannelFaults is one channel's compiled fault process. Apply is called
// once per offered message; draws happen in a fixed order (burst, loss,
// dup, reorder, spike, jitter) so a plan's decisions are reproducible.
type ChannelFaults struct {
	name       string
	plan       FaultPlan
	partitions []Partition
	rng        *sim.Rand
	burstLeft  int
	stats      FaultStats
}

// Name returns the channel's name.
func (c *ChannelFaults) Name() string { return c.name }

// Stats returns a snapshot of the channel's fault counters. Nil-safe.
func (c *ChannelFaults) Stats() FaultStats {
	if c == nil {
		return FaultStats{}
	}
	return c.stats
}

// Apply decides the fate of one message offered at virtual time now. A nil
// receiver (no faults armed) passes everything through untouched.
func (c *ChannelFaults) Apply(now sim.Time) Verdict {
	if c == nil {
		return Verdict{Copies: 1}
	}
	c.stats.Offered++
	for _, w := range c.partitions {
		if w.contains(now) {
			c.stats.Dropped++
			c.stats.PartitionDrops++
			return Verdict{Drop: true, Why: FaultPartition}
		}
	}
	if c.burstLeft > 0 {
		c.burstLeft--
		c.stats.Dropped++
		c.stats.BurstDrops++
		return Verdict{Drop: true, Why: FaultBurst}
	}
	if c.plan.BurstRate > 0 && c.rng.Bool(c.plan.BurstRate) {
		c.burstLeft = c.plan.BurstLen - 1
		c.stats.Dropped++
		c.stats.BurstDrops++
		return Verdict{Drop: true, Why: FaultBurst}
	}
	if c.plan.LossRate > 0 && c.rng.Bool(c.plan.LossRate) {
		c.stats.Dropped++
		c.stats.LossDrops++
		return Verdict{Drop: true, Why: FaultLoss}
	}
	v := Verdict{Copies: 1}
	if c.plan.DupRate > 0 && c.rng.Bool(c.plan.DupRate) {
		v.Copies = 2
		c.stats.Duplicated++
	}
	if c.plan.ReorderRate > 0 && c.rng.Bool(c.plan.ReorderRate) {
		v.Delay += c.plan.ReorderDelay
		c.stats.Reordered++
	}
	if c.plan.SpikeRate > 0 && c.rng.Bool(c.plan.SpikeRate) {
		v.Delay += c.plan.SpikeLatency
		c.stats.Spiked++
	}
	if c.plan.JitterMax > 0 {
		v.Delay += sim.Time(c.rng.Float64() * float64(c.plan.JitterMax))
	}
	return v
}
