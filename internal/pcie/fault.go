package pcie

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sim"
)

// FaultKind discriminates the independent fault processes a FaultPlan can
// arm on a channel. It is used for counters and trace output.
type FaultKind int

// Fault kinds.
const (
	FaultLoss      FaultKind = iota // independent per-message drop
	FaultBurst                      // correlated drop run (consumer overrun)
	FaultPartition                  // timed total-loss window on the link
	FaultDup                        // message delivered twice
	FaultReorder                    // message held back so successors overtake
	FaultSpike                      // latency spike on one message
	FaultCorrupt                    // payload corrupted in flight (seeded bit flips)
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLoss:
		return "loss"
	case FaultBurst:
		return "burst"
	case FaultPartition:
		return "partition"
	case FaultDup:
		return "dup"
	case FaultReorder:
		return "reorder"
	case FaultSpike:
		return "spike"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Partition is a timed total-loss window on coordination channels: every
// message offered during [Start, Start+Duration) is dropped. An empty
// Channels list partitions every channel of the injector; otherwise only
// the named channels are cut.
type Partition struct {
	Start    sim.Time
	Duration sim.Time
	Channels []string
}

func (p Partition) contains(now sim.Time) bool {
	return now >= p.Start && now < p.Start+p.Duration
}

// CrashWindow marks an island as crashed for [Start, Start+Duration): its
// agent neither sends, receives, nor heartbeats, and it restarts (and must
// rejoin) when the window closes. The injector only records the schedule;
// the platform harness wires it to the island's agent.
type CrashWindow struct {
	Island   string
	Start    sim.Time
	Duration sim.Time
}

func (w CrashWindow) contains(now sim.Time) bool {
	return now >= w.Start && now < w.Start+w.Duration
}

// CorruptWindow is a timed payload-corruption window: messages offered
// during [Start, Start+Duration) on the named channels (empty = every
// channel) are corrupted with probability Rate. Corruption flips payload
// bits under a seeded per-channel mask; the receiving layer must detect
// the damage via its checksum and drop the frame, never act on it.
type CorruptWindow struct {
	Start    sim.Time
	Duration sim.Time
	Rate     float64 // per-message corruption probability in (0, 1]
	Channels []string
}

func (w CorruptWindow) contains(now sim.Time) bool {
	return now >= w.Start && now < w.Start+w.Duration
}

// ReplicaWindow marks a controller replica as faulted for
// [Start, Start+Duration). In a crash window the replica loses its volatile
// state and restarts from the durable checkpoint store when the window
// closes; in a partition window it is isolated from the agents, its peers,
// and the store, then heals. The injector only records the schedule; the
// platform harness wires it to the controller group.
type ReplicaWindow struct {
	Replica  int
	Start    sim.Time
	Duration sim.Time
}

// FaultPlan is a declarative, seeded description of every fault the
// coordination channel can suffer. The same plan and seed always produce
// the same per-message decisions, independent of how many channels exist or
// the order they are created in: each channel derives its own random
// substream from the plan seed and the channel's name.
//
// Rates are independent per-message probabilities in [0, 1). Zero values
// disable the corresponding process.
type FaultPlan struct {
	// Seed drives the stochastic fault processes (default 1). It is
	// deliberately separate from the simulation seed so fault schedules can
	// be varied and pinned independently of the workload.
	Seed int64

	LossRate float64 // iid drop probability
	DupRate  float64 // iid duplication probability (one extra copy)

	// ReorderRate holds a message back for ReorderDelay so that later
	// messages overtake it (default delay 500us).
	ReorderRate  float64
	ReorderDelay sim.Time

	// SpikeRate adds SpikeLatency to a message's one-way latency
	// (default spike 2ms).
	SpikeRate    float64
	SpikeLatency sim.Time

	// JitterMax adds a uniform extra delay in [0, JitterMax) to every
	// message (0 = no jitter).
	JitterMax sim.Time

	// BurstRate is the per-message probability of starting a loss burst in
	// which this and the next BurstLen-1 messages are dropped (default
	// length 8) — the mailbox's consumer-overrun failure mode.
	BurstRate float64
	BurstLen  int

	// CorruptRate is the iid probability that a message's payload is
	// corrupted in flight (seeded bit flips under a per-channel mask).
	CorruptRate float64

	// Partitions are timed total-loss windows.
	Partitions []Partition

	// Corruptions are timed payload-corruption windows; inside a window
	// the window's Rate applies when it exceeds CorruptRate.
	Corruptions []CorruptWindow

	// Crashes are island crash/restart windows.
	Crashes []CrashWindow

	// ControllerCrashes are controller replica crash/restart windows.
	ControllerCrashes []ReplicaWindow

	// ControllerPartitions are controller replica isolation windows.
	ControllerPartitions []ReplicaWindow
}

// Empty reports whether the plan injects no channel faults at all
// (crash windows are island-level, not channel-level).
func (p FaultPlan) Empty() bool {
	return p.LossRate == 0 && p.DupRate == 0 && p.ReorderRate == 0 &&
		p.SpikeRate == 0 && p.JitterMax == 0 && p.BurstRate == 0 &&
		p.CorruptRate == 0 && len(p.Partitions) == 0 && len(p.Corruptions) == 0
}

func (p *FaultPlan) applyDefaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ReorderDelay == 0 {
		p.ReorderDelay = 500 * sim.Microsecond
	}
	if p.SpikeLatency == 0 {
		p.SpikeLatency = 2 * sim.Millisecond
	}
	if p.BurstLen == 0 {
		p.BurstLen = 8
	}
}

// Validate reports the first configuration error in the plan.
func (p FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"LossRate", p.LossRate}, {"DupRate", p.DupRate},
		{"ReorderRate", p.ReorderRate}, {"SpikeRate", p.SpikeRate},
		{"BurstRate", p.BurstRate}, {"CorruptRate", p.CorruptRate},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("pcie: fault plan %s %v out of [0, 1)", r.name, r.v)
		}
	}
	if p.ReorderDelay < 0 || p.SpikeLatency < 0 || p.JitterMax < 0 {
		return fmt.Errorf("pcie: fault plan with negative delay")
	}
	if p.BurstLen < 0 {
		return fmt.Errorf("pcie: fault plan BurstLen %d negative", p.BurstLen)
	}
	for _, w := range p.Partitions {
		if w.Start < 0 || w.Duration <= 0 {
			return fmt.Errorf("pcie: partition window [%v +%v] invalid", w.Start, w.Duration)
		}
	}
	for _, w := range p.Corruptions {
		if w.Start < 0 || w.Duration <= 0 {
			return fmt.Errorf("pcie: corruption window [%v +%v] invalid", w.Start, w.Duration)
		}
		if w.Rate <= 0 || w.Rate > 1 {
			return fmt.Errorf("pcie: corruption window rate %v out of (0, 1]", w.Rate)
		}
	}
	for _, c := range p.Crashes {
		if c.Island == "" {
			return fmt.Errorf("pcie: crash window with empty island name")
		}
		if c.Start < 0 || c.Duration <= 0 {
			return fmt.Errorf("pcie: crash window [%v +%v] for %q invalid", c.Start, c.Duration, c.Island)
		}
	}
	for _, set := range [][]ReplicaWindow{p.ControllerCrashes, p.ControllerPartitions} {
		for _, w := range set {
			if w.Replica < 0 {
				return fmt.Errorf("pcie: controller window with negative replica %d", w.Replica)
			}
			if w.Start < 0 || w.Duration <= 0 {
				return fmt.Errorf("pcie: controller window [%v +%v] for replica %d invalid", w.Start, w.Duration, w.Replica)
			}
		}
	}
	return nil
}

// disjointWindow is one keyed [start, start+len) interval for the
// overlap check of ValidateDisjoint.
type disjointWindow struct {
	key   string
	start sim.Time
	len   sim.Time
	what  string
}

// ValidateDisjoint rejects overlapping fault windows that the injector
// would otherwise silently compose: two crash windows on one island, two
// controller windows on one replica, or two partition/corruption windows
// cutting a common channel. The scenario DSL and the chaos generator share
// this rule, so every plan either layer accepts schedules unambiguously.
func (p FaultPlan) ValidateDisjoint() error {
	var ws []disjointWindow
	for _, c := range p.Crashes {
		ws = append(ws, disjointWindow{"island " + c.Island, c.Start, c.Duration, "crash"})
	}
	for _, w := range p.ControllerCrashes {
		ws = append(ws, disjointWindow{fmt.Sprintf("replica %d", w.Replica), w.Start, w.Duration, "controller crash"})
	}
	for _, w := range p.ControllerPartitions {
		ws = append(ws, disjointWindow{fmt.Sprintf("replica %d", w.Replica), w.Start, w.Duration, "controller partition"})
	}
	channelWindows := func(what string, start, dur sim.Time, channels []string) {
		if len(channels) == 0 {
			ws = append(ws, disjointWindow{"channel *", start, dur, what})
			return
		}
		for _, ch := range channels {
			ws = append(ws, disjointWindow{"channel " + ch, start, dur, what})
		}
	}
	for _, pt := range p.Partitions {
		channelWindows("partition", pt.Start, pt.Duration, pt.Channels)
	}
	for _, cw := range p.Corruptions {
		channelWindows("corruption", cw.Start, cw.Duration, cw.Channels)
	}
	for i := range ws {
		for j := i + 1; j < len(ws); j++ {
			a, b := ws[i], ws[j]
			keyed := a.key == b.key ||
				// An all-channel window overlaps every named channel.
				(a.key == "channel *" && len(b.key) > 8 && b.key[:8] == "channel ") ||
				(b.key == "channel *" && len(a.key) > 8 && a.key[:8] == "channel ")
			if !keyed {
				continue
			}
			if a.start < b.start+b.len && b.start < a.start+a.len {
				return fmt.Errorf("%s window [%v, %v) overlaps %s window [%v, %v) on %s",
					a.what, a.start, a.start+a.len, b.what, b.start, b.start+b.len, b.key)
			}
		}
	}
	return nil
}

// Verdict is the injector's decision for one offered message.
type Verdict struct {
	Drop   bool
	Why    FaultKind // valid when Drop is set
	Copies int       // deliveries (1 normally, 2 when duplicated)
	Delay  sim.Time  // extra one-way delay (reorder/spike/jitter)

	// Corrupt marks the payload for in-flight bit flips under CorruptMask
	// (never zero when Corrupt is set, so at least one bit always flips).
	// A corrupted message is never also duplicated: the checksum ledger
	// stays exact (every corrupted frame is one detectable drop).
	Corrupt     bool
	CorruptMask uint64
}

// FaultStats counts one channel's injected faults.
type FaultStats struct {
	Offered        uint64
	Dropped        uint64 // all causes
	LossDrops      uint64
	BurstDrops     uint64
	PartitionDrops uint64
	Duplicated     uint64
	Reordered      uint64
	Spiked         uint64
	Corrupted      uint64
}

func (s *FaultStats) add(o FaultStats) {
	s.Offered += o.Offered
	s.Dropped += o.Dropped
	s.LossDrops += o.LossDrops
	s.BurstDrops += o.BurstDrops
	s.PartitionDrops += o.PartitionDrops
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.Spiked += o.Spiked
	s.Corrupted += o.Corrupted
}

// Injector compiles a FaultPlan into per-channel fault processes. Channels
// are identified by name; asking for the same name twice returns the same
// process, and a channel's random substream depends only on (plan seed,
// name), never on creation order.
type Injector struct {
	plan  FaultPlan
	chans map[string]*ChannelFaults
}

// NewInjector returns an injector for the plan. It panics on an invalid
// plan (constructor misuse guard); use FaultPlan.Validate to check first.
func NewInjector(plan FaultPlan) *Injector {
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("pcie: invalid fault plan: %v", err))
	}
	plan.applyDefaults()
	return &Injector{plan: plan, chans: make(map[string]*ChannelFaults)}
}

// Plan returns the (defaulted) plan the injector was built from.
func (in *Injector) Plan() FaultPlan { return in.plan }

// Channel returns the named channel's fault process, creating it on first
// use.
func (in *Injector) Channel(name string) *ChannelFaults {
	if c, ok := in.chans[name]; ok {
		return c
	}
	var parts []Partition
	for _, w := range in.plan.Partitions {
		if len(w.Channels) == 0 {
			parts = append(parts, w)
			continue
		}
		for _, n := range w.Channels {
			if n == name {
				parts = append(parts, w)
				break
			}
		}
	}
	var corrs []CorruptWindow
	for _, w := range in.plan.Corruptions {
		if len(w.Channels) == 0 {
			corrs = append(corrs, w)
			continue
		}
		for _, n := range w.Channels {
			if n == name {
				corrs = append(corrs, w)
				break
			}
		}
	}
	c := &ChannelFaults{
		name:        name,
		plan:        in.plan,
		partitions:  parts,
		corruptions: corrs,
		rng:         sim.NewRand(channelSeed(in.plan.Seed, name)),
	}
	in.chans[name] = c
	return c
}

// Channels returns the names of the channels created so far, sorted.
func (in *Injector) Channels() []string {
	names := make([]string, 0, len(in.chans))
	for n := range in.chans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalStats sums the fault statistics of every channel.
func (in *Injector) TotalStats() FaultStats {
	var total FaultStats
	for _, n := range in.Channels() {
		total.add(in.chans[n].Stats())
	}
	return total
}

// IslandDown reports whether the island is inside one of its crash windows
// at the given time.
func (in *Injector) IslandDown(island string, now sim.Time) bool {
	for _, c := range in.plan.Crashes {
		if c.Island == island && c.contains(now) {
			return true
		}
	}
	return false
}

// CrashesFor returns the island's crash windows in plan order.
func (in *Injector) CrashesFor(island string) []CrashWindow {
	var out []CrashWindow
	for _, c := range in.plan.Crashes {
		if c.Island == island {
			out = append(out, c)
		}
	}
	return out
}

// channelSeed derives a channel's rng seed from the plan seed and the
// channel name (FNV-1a), so substreams are independent of creation order.
func channelSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// ChannelFaults is one channel's compiled fault process. Apply is called
// once per offered message; draws happen in a fixed order (burst, loss,
// dup, reorder, spike, jitter) so a plan's decisions are reproducible.
type ChannelFaults struct {
	name        string
	plan        FaultPlan
	partitions  []Partition
	corruptions []CorruptWindow
	rng         *sim.Rand
	burstLeft   int
	stats       FaultStats
}

// Name returns the channel's name.
func (c *ChannelFaults) Name() string { return c.name }

// Stats returns a snapshot of the channel's fault counters. Nil-safe.
func (c *ChannelFaults) Stats() FaultStats {
	if c == nil {
		return FaultStats{}
	}
	return c.stats
}

// Apply decides the fate of one message offered at virtual time now. A nil
// receiver (no faults armed) passes everything through untouched.
func (c *ChannelFaults) Apply(now sim.Time) Verdict {
	if c == nil {
		return Verdict{Copies: 1}
	}
	c.stats.Offered++
	for _, w := range c.partitions {
		if w.contains(now) {
			c.stats.Dropped++
			c.stats.PartitionDrops++
			return Verdict{Drop: true, Why: FaultPartition}
		}
	}
	if c.burstLeft > 0 {
		c.burstLeft--
		c.stats.Dropped++
		c.stats.BurstDrops++
		return Verdict{Drop: true, Why: FaultBurst}
	}
	if c.plan.BurstRate > 0 && c.rng.Bool(c.plan.BurstRate) {
		c.burstLeft = c.plan.BurstLen - 1
		c.stats.Dropped++
		c.stats.BurstDrops++
		return Verdict{Drop: true, Why: FaultBurst}
	}
	if c.plan.LossRate > 0 && c.rng.Bool(c.plan.LossRate) {
		c.stats.Dropped++
		c.stats.LossDrops++
		return Verdict{Drop: true, Why: FaultLoss}
	}
	v := Verdict{Copies: 1}
	// Corruption draws before duplication and suppresses it: each corrupted
	// frame is exactly one detectable drop downstream, so the injector's
	// Corrupted count and the receivers' CorruptDrops ledger reconcile
	// exactly. The draw only happens while corruption is armed at this
	// instant, so plans without corruption keep their historical rng streams.
	if rate := c.corruptRateAt(now); rate > 0 && c.rng.Bool(rate) {
		v.Corrupt = true
		v.CorruptMask = c.rng.Uint64() | 1
		c.stats.Corrupted++
	}
	if !v.Corrupt && c.plan.DupRate > 0 && c.rng.Bool(c.plan.DupRate) {
		v.Copies = 2
		c.stats.Duplicated++
	}
	if c.plan.ReorderRate > 0 && c.rng.Bool(c.plan.ReorderRate) {
		v.Delay += c.plan.ReorderDelay
		c.stats.Reordered++
	}
	if c.plan.SpikeRate > 0 && c.rng.Bool(c.plan.SpikeRate) {
		v.Delay += c.plan.SpikeLatency
		c.stats.Spiked++
	}
	if c.plan.JitterMax > 0 {
		v.Delay += sim.Time(c.rng.Float64() * float64(c.plan.JitterMax))
	}
	return v
}

// corruptRateAt returns the corruption probability in force at now: the
// plan's base rate, raised by any corruption window covering the instant.
func (c *ChannelFaults) corruptRateAt(now sim.Time) float64 {
	rate := c.plan.CorruptRate
	for _, w := range c.corruptions {
		if w.contains(now) && w.Rate > rate {
			rate = w.Rate
		}
	}
	return rate
}
