package power

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xen"
)

// Target describes one throttleable entity: which island agent reaches it,
// which island name routes to it, and the Tune step used to throttle or
// restore it.
type Target struct {
	Island string // island name registered with the controller
	Entity int    // platform-wide entity ID
	Step   int    // throttle magnitude per control action (positive)
}

// BudgeterConfig tunes the platform power-cap controller.
type BudgeterConfig struct {
	CapWatts float64  // platform-level power budget
	Period   sim.Time // control period (default 500ms)
	Headroom float64  // restore when total < cap - headroom (default 5W)
}

func (c *BudgeterConfig) applyDefaults() {
	if c.Period == 0 {
		c.Period = 500 * sim.Millisecond
	}
	if c.Headroom == 0 {
		c.Headroom = 5
	}
}

// Budgeter is the platform power-cap coordination policy: it runs alongside
// the global controller, samples every island's power model each period,
// and — strictly via Tune messages — throttles targets while the platform
// exceeds its cap and restores them while comfortably below it.
type Budgeter struct {
	sim    *sim.Simulator
	cfg    BudgeterConfig
	agent  *core.Agent
	models []Model
	// hv lets the budgeter pick the hottest x86 target (highest recent
	// utilization); nil disables utilization-aware victim selection.
	hv *xen.Hypervisor

	targets   []Target
	throttled map[Target]int // net throttle steps applied per target

	series   *Series
	stop     func()
	overCap  int // control periods spent above the cap
	actions  int // throttle/restore tunes sent
	lastBusy map[int]sim.Time
	lastAt   sim.Time
}

// NewBudgeter builds the policy. The agent must be able to route to every
// target's island (typically the controller-co-located agent).
func NewBudgeter(s *sim.Simulator, cfg BudgeterConfig, agent *core.Agent, hv *xen.Hypervisor, models []Model, targets []Target) *Budgeter {
	cfg.applyDefaults()
	if cfg.CapWatts <= 0 {
		panic(fmt.Sprintf("power: cap %v watts", cfg.CapWatts))
	}
	if agent == nil {
		panic("power: budgeter with nil agent")
	}
	if len(models) == 0 || len(targets) == 0 {
		panic("power: budgeter needs models and targets")
	}
	return &Budgeter{
		sim:       s,
		cfg:       cfg,
		agent:     agent,
		models:    models,
		hv:        hv,
		targets:   targets,
		throttled: make(map[Target]int),
		series:    newSeries(models),
		lastBusy:  make(map[int]sim.Time),
	}
}

// Series returns the recorded power telemetry.
func (b *Budgeter) Series() *Series { return b.series }

// OverCapPeriods returns how many control periods measured above the cap.
func (b *Budgeter) OverCapPeriods() int { return b.overCap }

// Actions returns how many throttle/restore tunes were sent.
func (b *Budgeter) Actions() int { return b.actions }

// Throttled reports the net throttle steps currently applied to a target.
func (b *Budgeter) Throttled(t Target) int { return b.throttled[t] }

// Start arms the control loop; the returned function stops it.
func (b *Budgeter) Start() (stop func()) {
	b.stop = b.sim.Ticker(b.cfg.Period, b.step)
	return b.stop
}

// step is one control period.
func (b *Budgeter) step() {
	now := b.sim.Now()
	sum, per := total(b.models, now)
	b.series.Total.Add(now, sum)
	for name, w := range per {
		b.series.PerIsland[name].Add(now, w)
	}
	switch {
	case sum > b.cfg.CapWatts:
		b.overCap++
		b.throttleOne()
	case sum < b.cfg.CapWatts-b.cfg.Headroom:
		b.restoreOne()
	}
}

// throttleOne sends one throttle Tune to the most promising target: the
// x86 target with the highest recent utilization, or failing that, the
// first target with restore headroom.
func (b *Budgeter) throttleOne() {
	order := b.targetsByHeat()
	if len(order) == 0 {
		return
	}
	t := order[0]
	b.agent.SendTune(t.Island, t.Entity, -t.Step)
	b.throttled[t]++
	b.actions++
}

// restoreOne reverses the most recently throttled target one step.
func (b *Budgeter) restoreOne() {
	var victim *Target
	for i := range b.targets {
		t := b.targets[i]
		if b.throttled[t] > 0 && (victim == nil || b.throttled[t] > b.throttled[*victim]) {
			victim = &t
		}
	}
	if victim == nil {
		return
	}
	b.agent.SendTune(victim.Island, victim.Entity, +victim.Step)
	b.throttled[*victim]--
	b.actions++
}

// targetsByHeat orders targets by recent x86 utilization (descending);
// non-x86 targets keep their configured order after the x86 ones.
func (b *Budgeter) targetsByHeat() []Target {
	if b.hv == nil {
		return b.targets
	}
	now := b.sim.Now()
	window := now - b.lastAt
	heat := make(map[int]float64)
	for _, d := range b.hv.Domains() {
		b.hv.TotalUtilization(0, d)
		busy := d.Meter().Busy()
		if window > 0 {
			heat[d.ID()] = float64(busy-b.lastBusy[d.ID()]) / float64(window)
		}
		b.lastBusy[d.ID()] = busy
	}
	b.lastAt = now
	out := make([]Target, len(b.targets))
	copy(out, b.targets)
	sort.SliceStable(out, func(i, j int) bool {
		return heat[out[i].Entity] > heat[out[j].Entity]
	})
	return out
}
