package power

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

// saturated builds a platform with two CPU-hog guests.
func saturated(seed int64) (*platform.Platform, func()) {
	p := platform.New(platform.Config{Seed: seed})
	a := p.AddGuest("hog-a", 256)
	b := p.AddGuest("hog-b", 256)
	churn := func(d interface {
		SubmitFunc(sim.Time, string, func())
	}) {
		var next func()
		next = func() { d.SubmitFunc(5*sim.Millisecond, "hog", next) }
		next()
	}
	start := func() {
		churn(a)
		churn(b)
	}
	return p, start
}

func TestX86ModelTracksUtilization(t *testing.T) {
	p, start := saturated(1)
	m := NewX86Model(p.HV)
	// Idle platform draws the floor.
	p.Sim.RunUntil(1 * sim.Second)
	if got := m.Sample(p.Sim.Now()); math.Abs(got-m.IdleWatts) > 2 {
		t.Fatalf("idle power = %.1fW, want ~%.0f", got, m.IdleWatts)
	}
	start()
	p.Sim.RunUntil(5 * sim.Second)
	if got := m.Sample(p.Sim.Now()); math.Abs(got-m.BusyWatts) > 5 {
		t.Fatalf("saturated power = %.1fW, want ~%.0f", got, m.BusyWatts)
	}
	if m.Name() != "x86" {
		t.Fatal("name wrong")
	}
}

func TestIXPModelTracksThreads(t *testing.T) {
	p, _ := saturated(2)
	m := NewIXPModel(p.IXP)
	base := m.Sample(p.Sim.Now())
	if err := p.IXP.SetFlowThreads(1, 10); err != nil {
		t.Fatal(err)
	}
	after := m.Sample(p.Sim.Now())
	if after <= base {
		t.Fatalf("power did not rise with threads: %.2f -> %.2f", base, after)
	}
	wantDelta := m.WattsPerThread * 8 // 2 -> 10 threads
	if math.Abs((after-base)-wantDelta) > 1e-9 {
		t.Fatalf("delta = %.2fW, want %.2f", after-base, wantDelta)
	}
	if m.Name() != "ixp" {
		t.Fatal("name wrong")
	}
}

func TestCapActuator(t *testing.T) {
	p, _ := saturated(3)
	a := NewCapActuator(p.Ctl)
	d := p.Guests()[0]
	// Throttle from uncapped (=100) down by 30.
	if err := a.ApplyTune(d.ID(), -30); err != nil {
		t.Fatal(err)
	}
	if d.Cap() != 70 {
		t.Fatalf("cap = %d, want 70", d.Cap())
	}
	// Floor at MinCap.
	if err := a.ApplyTune(d.ID(), -1000); err != nil {
		t.Fatal(err)
	}
	if d.Cap() != a.MinCap {
		t.Fatalf("cap = %d, want floor %d", d.Cap(), a.MinCap)
	}
	// Restoring to >=100 uncaps.
	if err := a.ApplyTune(d.ID(), +200); err != nil {
		t.Fatal(err)
	}
	if d.Cap() != 0 {
		t.Fatalf("cap = %d, want uncapped", d.Cap())
	}
	// Trigger = emergency uncap.
	if err := a.ApplyTune(d.ID(), -30); err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyTrigger(d.ID()); err != nil {
		t.Fatal(err)
	}
	if d.Cap() != 0 {
		t.Fatal("trigger did not uncap")
	}
	if err := a.ApplyTune(99, -10); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if err := a.ApplyTrigger(99); err == nil {
		t.Fatal("unknown entity trigger accepted")
	}
}

// powerIsland registers a dedicated power-management island whose actuator
// is the CapActuator (the power agent of the x86 island).
func powerIsland(p *platform.Platform) *core.Agent {
	act := NewCapActuator(p.Ctl)
	agent := core.NewAgent("x86-power", nil, p.Controller.Route, act)
	if err := p.Controller.RegisterIsland(core.IslandHandle{Name: "x86-power", Local: agent.Deliver}); err != nil {
		panic(err)
	}
	return agent
}

func TestBudgeterEnforcesCap(t *testing.T) {
	p, start := saturated(4)
	powerIsland(p)
	start()

	x86m := NewX86Model(p.HV)
	ixpm := NewIXPModel(p.IXP)
	// Cap below the saturated draw (~140 + ~19) so throttling must engage.
	budget := NewBudgeter(p.Sim, BudgeterConfig{CapWatts: 120}, p.X86Agent, p.HV,
		[]Model{x86m, ixpm},
		[]Target{
			{Island: "x86-power", Entity: p.Guests()[0].ID(), Step: 10},
			{Island: "x86-power", Entity: p.Guests()[1].ID(), Step: 10},
		})
	stop := budget.Start()
	p.Sim.RunUntil(60 * sim.Second)
	stop()

	if budget.OverCapPeriods() == 0 {
		t.Fatal("budget never saw the platform over cap")
	}
	if budget.Actions() == 0 {
		t.Fatal("budgeter took no actions")
	}
	// Steady state: the last 10 seconds of total power sit at or below the
	// cap (small excursions allowed for control lag).
	series := budget.Series().Total
	var tail, n float64
	for _, pt := range series.Points() {
		if pt.T > 50*sim.Second {
			tail += pt.V
			n++
		}
	}
	if n == 0 {
		t.Fatal("no tail samples")
	}
	if avg := tail / n; avg > 125 {
		t.Fatalf("steady-state power = %.1fW, cap 120", avg)
	}
	// At least one guest ended up capped.
	capped := false
	for _, d := range p.Guests() {
		if d.Cap() != 0 {
			capped = true
		}
	}
	if !capped {
		t.Fatal("no guest was throttled")
	}
	if budget.Series().PerIsland["x86"].Len() == 0 || budget.Series().PerIsland["ixp"].Len() == 0 {
		t.Fatal("per-island series missing")
	}
}

func TestBudgeterRestoresWhenLoadDrops(t *testing.T) {
	p, start := saturated(5)
	powerIsland(p)
	start()
	budget := NewBudgeter(p.Sim, BudgeterConfig{CapWatts: 110, Headroom: 10}, p.X86Agent, p.HV,
		[]Model{NewX86Model(p.HV)},
		[]Target{
			{Island: "x86-power", Entity: p.Guests()[0].ID(), Step: 10},
			{Island: "x86-power", Entity: p.Guests()[1].ID(), Step: 10},
		})
	budget.Start()
	p.Sim.RunUntil(40 * sim.Second)
	throttledSteps := 0
	for _, tg := range []Target{
		{Island: "x86-power", Entity: p.Guests()[0].ID(), Step: 10},
		{Island: "x86-power", Entity: p.Guests()[1].ID(), Step: 10},
	} {
		throttledSteps += budget.Throttled(tg)
	}
	if throttledSteps == 0 {
		t.Fatal("nothing throttled under saturation")
	}
	// Saturating tasks stop arriving once their current chain completes is
	// not directly controllable; emulate load drop by capping both hogs'
	// task streams via a long idle: stop submitting by parking weights is
	// not possible, so instead verify restore logic directly with an idle
	// platform below.
	p2, _ := saturated(6)
	powerIsland(p2)
	b2 := NewBudgeter(p2.Sim, BudgeterConfig{CapWatts: 200, Headroom: 5}, p2.X86Agent, p2.HV,
		[]Model{NewX86Model(p2.HV)},
		[]Target{{Island: "x86-power", Entity: p2.Guests()[0].ID(), Step: 10}})
	// Pre-throttle manually, then let the idle platform restore it.
	act := NewCapActuator(p2.Ctl)
	if err := act.ApplyTune(p2.Guests()[0].ID(), -40); err != nil {
		t.Fatal(err)
	}
	b2.throttled[Target{Island: "x86-power", Entity: p2.Guests()[0].ID(), Step: 10}] = 4
	b2.Start()
	p2.Sim.RunUntil(10 * sim.Second)
	if got := p2.Guests()[0].Cap(); got != 0 {
		t.Fatalf("cap = %d after restore window, want uncapped", got)
	}
}

func TestBudgeterValidation(t *testing.T) {
	p, _ := saturated(7)
	agent := p.X86Agent
	models := []Model{NewX86Model(p.HV)}
	targets := []Target{{Island: "x86", Entity: 1, Step: 10}}
	for _, fn := range []func(){
		func() { NewBudgeter(p.Sim, BudgeterConfig{}, agent, p.HV, models, targets) },
		func() { NewBudgeter(p.Sim, BudgeterConfig{CapWatts: 100}, nil, p.HV, models, targets) },
		func() { NewBudgeter(p.Sim, BudgeterConfig{CapWatts: 100}, agent, p.HV, nil, targets) },
		func() { NewBudgeter(p.Sim, BudgeterConfig{CapWatts: 100}, agent, p.HV, models, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid budgeter construction did not panic")
				}
			}()
			fn()
		}()
	}
}
