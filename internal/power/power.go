// Package power implements the paper's second motivating use case and its
// stated future work (§1.2, §5): coordinated platform-level power
// management across scheduling islands.
//
// Caps on total platform power cannot be enforced per island in isolation —
// slowing one island's cores can ruin the performance of application
// components on another, and an island acting alone cannot know how much of
// the budget the rest of the platform consumes. The Budgeter below is a
// coordination policy built from the same Tune mechanism as the CPU
// schemes: a platform controller samples per-island power models and sends
// throttle/restore Tunes to per-island power actuators (CPU caps on the
// Xen island, dequeue-thread deallocation on the IXP island).
package power

import (
	"fmt"

	"repro/internal/ixp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xen"
)

// Model reports an island's current power draw in watts. Sample is called
// periodically by the Budgeter; implementations may keep state between
// calls (e.g. utilization deltas).
type Model interface {
	Name() string
	Sample(now sim.Time) float64
}

// MeterModel adapts an externally metered power reading (the energy
// subsystem's integrating meter) into a Model: cap enforcement then reads
// the same modeled watts the energy ledgers integrate, instead of keeping
// a second sampling path that could disagree with the joules report. The
// closure keeps this package free of an energy dependency.
type MeterModel struct {
	name  string
	watts func() float64
}

// NewMeterModel wraps a watts reading (typically energy.Meter.Watts bound
// to one island) as a Model.
func NewMeterModel(name string, watts func() float64) *MeterModel {
	return &MeterModel{name: name, watts: watts}
}

// Name implements Model.
func (m *MeterModel) Name() string { return m.name }

// Sample implements Model by reading the metered watts; the meter keeps
// the utilization state, so this model is stateless.
func (m *MeterModel) Sample(now sim.Time) float64 { return m.watts() }

// X86Model converts the Xen island's CPU utilization into power: an idle
// floor plus a dynamic term linear in the utilization of the host's cores
// (the usual server power proxy).
type X86Model struct {
	hv *xen.Hypervisor
	// IdleWatts is drawn at zero utilization, BusyWatts at full utilization
	// of every core. Defaults approximate the dual-core Xeon host: 60W idle
	// to 140W flat out.
	IdleWatts, BusyWatts float64

	lastAt   sim.Time
	lastBusy sim.Time
}

// NewX86Model returns a model for hv with the default envelope.
func NewX86Model(hv *xen.Hypervisor) *X86Model {
	return &X86Model{hv: hv, IdleWatts: 60, BusyWatts: 140}
}

// Name implements Model.
func (m *X86Model) Name() string { return "x86" }

// Sample implements Model: utilization is measured over the interval since
// the previous call.
func (m *X86Model) Sample(now sim.Time) float64 {
	var busy sim.Time
	for _, d := range m.hv.Domains() {
		m.hv.TotalUtilization(0, d) // fold in-progress runs into the meter
		busy += d.Meter().Busy()
	}
	window := now - m.lastAt
	if window <= 0 {
		return m.IdleWatts
	}
	delta := busy - m.lastBusy
	m.lastAt, m.lastBusy = now, busy
	util := float64(delta) / float64(window) / float64(len(m.hv.PCPUs()))
	if util > 1 {
		util = 1
	}
	return m.IdleWatts + (m.BusyWatts-m.IdleWatts)*util
}

// IXPModel converts the IXP island's thread allocation into power: network
// processors burn roughly constant power per active hardware thread on top
// of a fixed floor.
type IXPModel struct {
	x *ixp.IXP
	// IdleWatts is the floor; WattsPerThread is added per allocated dequeue
	// thread. Defaults approximate the IXP2850's ~25W envelope.
	IdleWatts, WattsPerThread float64
}

// NewIXPModel returns a model for x with the default envelope.
func NewIXPModel(x *ixp.IXP) *IXPModel {
	return &IXPModel{x: x, IdleWatts: 18, WattsPerThread: 0.4}
}

// Name implements Model.
func (m *IXPModel) Name() string { return "ixp" }

// Sample implements Model.
func (m *IXPModel) Sample(now sim.Time) float64 {
	return m.IdleWatts + m.WattsPerThread*float64(m.x.ThreadsAllocated())
}

// CapActuator applies power Tunes on the Xen island: the Tune value is a
// CPU-cap adjustment in percentage points for the entity (negative =
// throttle). A cap of 0 means uncapped; the actuator materializes it as
// 100% before adjusting, and never throttles below MinCap.
type CapActuator struct {
	ctl    *xen.Ctl
	MinCap int // default 20 (percent of one CPU)
}

// NewCapActuator wraps a XenCtrl interface.
func NewCapActuator(ctl *xen.Ctl) *CapActuator {
	return &CapActuator{ctl: ctl, MinCap: 20}
}

// ApplyTune adjusts the entity's CPU cap by delta percentage points.
func (a *CapActuator) ApplyTune(entity, delta int) error {
	cur, err := a.capOf(entity)
	if err != nil {
		return err
	}
	next := cur + delta
	if next < a.MinCap {
		next = a.MinCap
	}
	if next >= 100 {
		next = 0 // fully restored: uncap
	}
	return a.ctl.SetCap(entity, next)
}

// ApplyTrigger removes the entity's cap immediately (emergency restore,
// e.g. an SLA violation signal from another island).
func (a *CapActuator) ApplyTrigger(entity int) error {
	return a.ctl.SetCap(entity, 0)
}

// capOf reads the entity's effective cap (100 when uncapped).
func (a *CapActuator) capOf(entity int) (int, error) {
	d, err := a.domain(entity)
	if err != nil {
		return 0, err
	}
	if d.Cap() == 0 {
		return 100, nil
	}
	return d.Cap(), nil
}

func (a *CapActuator) domain(entity int) (*xen.Domain, error) {
	for _, d := range a.ctlDomains() {
		if d.ID() == entity {
			return d, nil
		}
	}
	return nil, fmt.Errorf("power: no domain %d", entity)
}

// ctlDomains exposes the hypervisor's domains through the control surface.
func (a *CapActuator) ctlDomains() []*xen.Domain { return a.ctl.Domains() }

// total sums model samples.
func total(models []Model, now sim.Time) (float64, map[string]float64) {
	sum := 0.0
	per := make(map[string]float64, len(models))
	for _, m := range models {
		w := m.Sample(now)
		per[m.Name()] = w
		sum += w
	}
	return sum, per
}

// Series bundles the Budgeter's recorded telemetry.
type Series struct {
	Total     *stats.TimeSeries
	PerIsland map[string]*stats.TimeSeries
}

func newSeries(models []Model) *Series {
	s := &Series{
		Total:     stats.NewTimeSeries("power-total"),
		PerIsland: make(map[string]*stats.TimeSeries, len(models)),
	}
	for _, m := range models {
		s.PerIsland[m.Name()] = stats.NewTimeSeries("power-" + m.Name())
	}
	return s
}
