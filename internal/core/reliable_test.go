package core

import (
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// scriptedTransport records sends and lets the test deliver inbound
// messages by hand — full control over ordering, loss, and duplication.
type scriptedTransport struct {
	recv func(Message)
	sent []Message
}

func (t *scriptedTransport) Send(m Message)               { t.sent = append(t.sent, m) }
func (t *scriptedTransport) SetReceiver(fn func(Message)) { t.recv = fn }
func (t *scriptedTransport) deliver(m Message) {
	if t.recv != nil {
		t.recv(m)
	}
}

// duplexPair wires two reliable endpoints over two SimTransports, with
// optional fault processes per direction.
func duplexPair(s *sim.Simulator, cfg ReliableConfig, plan *pcie.FaultPlan) (a, b *ReliableEndpoint, a2b, b2a *SimTransport) {
	a2b = NewSimTransport(s, 100*sim.Microsecond)
	b2a = NewSimTransport(s, 100*sim.Microsecond)
	if plan != nil {
		inj := pcie.NewInjector(*plan)
		a2b.SetFaults(inj.Channel("a2b"))
		b2a.SetFaults(inj.Channel("b2a"))
	}
	a = NewReliableEndpoint(s, "a", a2b, b2a, cfg)
	b = NewReliableEndpoint(s, "b", b2a, a2b, cfg)
	return a, b, a2b, b2a
}

func TestReliableLosslessInOrder(t *testing.T) {
	s := sim.New(1)
	a, b, _, _ := duplexPair(s, ReliableConfig{}, nil)
	var got []Message
	b.SetReceiver(func(m Message) { got = append(got, m) })
	for i := 1; i <= 5; i++ {
		a.Send(Message{Kind: KindTune, Target: "b", Entity: 1, Delta: i})
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, m := range got {
		if m.Delta != i+1 || m.Seq != uint64(i+1) {
			t.Fatalf("out of order at %d: %+v", i, m)
		}
	}
	st := a.Stats()
	if st.Retransmits != 0 {
		t.Fatalf("retransmits on a lossless link: %d", st.Retransmits)
	}
	if st.AcksReceived == 0 || a.Outstanding() != 0 {
		t.Fatalf("acks not flowing: %+v outstanding=%d", st, a.Outstanding())
	}
	if bs := b.Stats(); bs.Delivered != 5 || bs.AcksSent != 5 {
		t.Fatalf("receiver stats %+v", bs)
	}
	if !a.Up() || !b.Up() {
		t.Fatal("healthy link reported down")
	}
}

func TestReliableRetransmitRecoversLoss(t *testing.T) {
	s := sim.New(1)
	// 30% loss in both directions: at-least-once triggers must all land,
	// exactly once, via retransmission and receiver dedup.
	a, b, _, _ := duplexPair(s, ReliableConfig{}, &pcie.FaultPlan{Seed: 11, LossRate: 0.3})
	var got []Message
	b.SetReceiver(func(m Message) { got = append(got, m) })
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i)*sim.Millisecond, func() {
			a.Send(Message{Kind: KindTrigger, Target: "b", Entity: i})
		})
	}
	s.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (at-least-once must survive loss)", len(got), n)
	}
	seen := map[uint64]bool{}
	for _, m := range got {
		if seen[m.Seq] {
			t.Fatalf("seq %d delivered twice", m.Seq)
		}
		seen[m.Seq] = true
	}
	if a.Stats().Retransmits == 0 {
		t.Fatal("no retransmits despite 30% loss")
	}
}

func TestReliableDupAndReorderAbsorbed(t *testing.T) {
	s := sim.New(1)
	plan := &pcie.FaultPlan{Seed: 4, DupRate: 0.4, ReorderRate: 0.4, ReorderDelay: 700 * sim.Microsecond}
	a, b, _, _ := duplexPair(s, ReliableConfig{}, plan)
	var got []Message
	b.SetReceiver(func(m Message) { got = append(got, m) })
	const n = 60
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i)*200*sim.Microsecond, func() {
			a.Send(Message{Kind: KindTrigger, Target: "b", Entity: i})
		})
	}
	s.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("application saw seq %d at position %d: reordering leaked through", m.Seq, i)
		}
	}
	st := b.Stats()
	if st.DupDrops == 0 && st.StaleDrops == 0 {
		t.Fatalf("40%% duplication produced no dedup drops: %+v", st)
	}
	if st.OutOfOrder == 0 {
		t.Fatalf("40%% reordering never buffered out of order: %+v", st)
	}
}

func TestReliableAtMostOnceExpiresNotReplayed(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{}
	in := &scriptedTransport{}
	cfg := ReliableConfig{RTO: sim.Millisecond, TuneDeadline: 5 * sim.Millisecond}
	e := NewReliableEndpoint(s, "tx", out, in, cfg)
	e.Send(Message{Kind: KindTune, Target: "b", Entity: 1, Delta: 3})
	// No ack ever arrives; the deadline must stop the retries.
	s.Run()
	st := e.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmits before the deadline")
	}
	if e.Outstanding() != 0 {
		t.Fatal("expired message still outstanding")
	}
	last := out.sent[len(out.sent)-1]
	if got := s.Now() - cfg.TuneDeadline; last.Seq != 1 || got > sim.Millisecond*2 {
		t.Logf("final send %+v at %v", last, s.Now())
	}
}

func TestReliableGapSkipAndStaleDrop(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{}
	in := &scriptedTransport{}
	cfg := ReliableConfig{ReorderHold: 2 * sim.Millisecond}
	e := NewReliableEndpoint(s, "rx", out, in, cfg)
	var got []Message
	e.SetReceiver(func(m Message) { got = append(got, m) })

	// Seq 1 is missing (sender expired it). Seqs 2 and 3 arrive and wait.
	in.deliver(Message{Kind: KindTune, Seq: 2, Delta: 20})
	in.deliver(Message{Kind: KindTune, Seq: 3, Delta: 30})
	if len(got) != 0 {
		t.Fatalf("delivered %v before the gap resolved", got)
	}
	s.Run() // ReorderHold elapses: the gap is skipped
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("after gap skip: %v", got)
	}
	st := e.Stats()
	if st.GapSkips != 1 {
		t.Fatalf("GapSkips = %d, want 1", st.GapSkips)
	}
	// The expired seq 1 finally limps in: newer state has been delivered,
	// so it must be discarded, not applied.
	in.deliver(Message{Kind: KindTune, Seq: 1, Delta: 10})
	if len(got) != 2 {
		t.Fatalf("stale seq 1 was replayed: %v", got)
	}
	if e.Stats().StaleDrops != 1 {
		t.Fatalf("StaleDrops = %d, want 1", e.Stats().StaleDrops)
	}
	// Every arrival was acked (selective + cumulative).
	acks := 0
	for _, m := range out.sent {
		if m.Kind == KindAck {
			acks++
		}
	}
	if acks != 3 {
		t.Fatalf("acks sent = %d, want 3", acks)
	}
}

func TestReliableLinkDownAfterRetriesAndRecovers(t *testing.T) {
	s := sim.New(1)
	// Partition the forward direction for 400ms: the first send exhausts
	// its retries and marks the link down; after healing, traffic restores
	// it.
	plan := &pcie.FaultPlan{Partitions: []pcie.Partition{{
		Start: 0, Duration: 400 * sim.Millisecond, Channels: []string{"a2b"},
	}}}
	cfg := ReliableConfig{RTO: sim.Millisecond, MaxRTO: 20 * sim.Millisecond, MaxRetries: 5}
	a, b, _, _ := duplexPair(s, cfg, plan)
	var got []Message
	b.SetReceiver(func(m Message) { got = append(got, m) })

	var downAt, upAt sim.Time
	a.OnStateChange(func(up bool) {
		if up {
			upAt = s.Now()
		} else {
			downAt = s.Now()
		}
	})
	a.Send(Message{Kind: KindTrigger, Target: "b", Entity: 1})
	s.At(500*sim.Millisecond, func() {
		a.Send(Message{Kind: KindTrigger, Target: "b", Entity: 2})
	})
	s.Run()
	st := a.Stats()
	if st.GaveUp != 1 || st.Downs != 1 {
		t.Fatalf("GaveUp = %d Downs = %d, want 1/1", st.GaveUp, st.Downs)
	}
	if downAt == 0 || downAt >= 400*sim.Millisecond {
		t.Fatalf("down at %v, want inside the partition", downAt)
	}
	if st.Ups != 1 || upAt < 500*sim.Millisecond {
		t.Fatalf("Ups = %d at %v, want recovery after healing", st.Ups, upAt)
	}
	if !a.Up() {
		t.Fatal("link still down after recovery")
	}
	// Message 2 got through; message 1 died with the partition.
	if len(got) != 1 || got[0].Entity != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestReliableBestEffortUnsequenced(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{}
	in := &scriptedTransport{}
	e := NewReliableEndpoint(s, "hb", out, in, ReliableConfig{})
	e.Send(Message{Kind: KindHeartbeat, From: "ixp"})
	e.Send(Message{Kind: KindTune, Target: "b", Entity: 1, Delta: 1})
	if out.sent[0].Seq != 0 {
		t.Fatalf("heartbeat was sequenced: %+v", out.sent[0])
	}
	if out.sent[1].Seq != 1 {
		t.Fatalf("first data message seq = %d, want 1", out.sent[1].Seq)
	}
	if e.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1 (heartbeat untracked)", e.Outstanding())
	}
	// Inbound heartbeats pass straight to the application.
	var got []Message
	e.SetReceiver(func(m Message) { got = append(got, m) })
	in.deliver(Message{Kind: KindHeartbeat, From: "ctl"})
	if len(got) != 1 || got[0].Kind != KindHeartbeat {
		t.Fatalf("heartbeat delivery = %v", got)
	}
}

func TestReliableEndpointValidation(t *testing.T) {
	s := sim.New(1)
	tr := &scriptedTransport{}
	for _, fn := range []func(){
		func() { NewReliableEndpoint(nil, "x", tr, tr, ReliableConfig{}) },
		func() { NewReliableEndpoint(s, "x", nil, tr, ReliableConfig{}) },
		func() { NewReliableEndpoint(s, "x", tr, nil, ReliableConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid endpoint construction did not panic")
				}
			}()
			fn()
		}()
	}
	var nilEP *ReliableEndpoint
	if nilEP.Stats() != (ReliableStats{}) {
		t.Fatal("nil endpoint Stats not zero")
	}
}

func TestDeliveryClassMapping(t *testing.T) {
	want := map[Kind]DeliveryClass{
		KindTune:      ClassAtMostOnce,
		KindTrigger:   ClassAtLeastOnce,
		KindRegister:  ClassAtLeastOnce,
		KindAck:       ClassBestEffort,
		KindHeartbeat: ClassBestEffort,
	}
	for k, c := range want {
		if got := ClassFor(k); got != c {
			t.Errorf("ClassFor(%v) = %v, want %v", k, got, c)
		}
	}
	if ClassFor(Kind(99)) != ClassBestEffort {
		t.Error("unknown kind not best-effort")
	}
	names := map[string]bool{}
	for _, c := range []DeliveryClass{ClassBestEffort, ClassAtMostOnce, ClassAtLeastOnce} {
		s := c.String()
		if s == "" || names[s] {
			t.Errorf("class %d bad name %q", int(c), s)
		}
		names[s] = true
	}
	if DeliveryClass(9).String() == "" {
		t.Error("unknown class has empty name")
	}
}
