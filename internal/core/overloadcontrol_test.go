package core

import (
	"testing"
	"testing/quick"

	"repro/internal/overload"
	"repro/internal/sim"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	s := sim.New(1)
	r := NewTokenBucketRateLimiter(s, 100*sim.Millisecond, 3)

	granted := 0
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			if r.Allow(KindTrigger, 1) {
				granted++
			}
		}
	})
	s.At(50*sim.Millisecond, func() {
		if r.Allow(KindTrigger, 1) {
			t.Error("granted at half a refill interval with an empty bucket")
		}
		// A different entity holds its own full bucket.
		if !r.Allow(KindTrigger, 2) {
			t.Error("entity 2's bucket drained by entity 1's burst")
		}
	})
	s.At(160*sim.Millisecond, func() {
		if !r.Allow(KindTrigger, 1) {
			t.Error("not granted after a full refill interval")
		}
		if r.Allow(KindTrigger, 1) {
			t.Error("granted twice off a single refilled token")
		}
	})
	s.Run()
	if granted != 3 {
		t.Fatalf("initial burst granted %d, want exactly the burst capacity 3", granted)
	}
}

// TestTokenBucketNeverExceedsCapacity is the satellite property test:
// over ANY time window, a (kind, entity) bucket of capacity B refilled
// every R grants at most B + window/R messages — the bucket can never be
// overdrawn, whatever the arrival pattern.
func TestTokenBucketNeverExceedsCapacity(t *testing.T) {
	prop := func(gaps []uint16, burstRaw, refillRaw uint8) bool {
		burst := int(burstRaw)%5 + 1
		refill := sim.Time(int(refillRaw)%20+1) * sim.Millisecond

		s := sim.New(1)
		r := NewTokenBucketRateLimiter(s, refill, burst)
		var grants []sim.Time
		at := sim.Time(0)
		for _, g := range gaps {
			at += sim.Time(g%2000) * 50 * sim.Microsecond
			s.At(at, func() {
				if r.Allow(KindTrigger, 7) {
					grants = append(grants, s.Now())
				}
			})
		}
		s.Run()

		for i := range grants {
			for j := i; j < len(grants); j++ {
				window := grants[j] - grants[i]
				allowed := float64(burst) + float64(window)/float64(refill)
				if float64(j-i+1) > allowed+1e-9 {
					t.Logf("window [%v,%v] granted %d, budget %.3f (burst=%d refill=%v)",
						grants[i], grants[j], j-i+1, allowed, burst, refill)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerOverloadTranslation(t *testing.T) {
	s := sim.New(1)
	c := NewController()
	var local []Message
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) { local = append(local, m) }}); err != nil {
		t.Fatal(err)
	}
	down := NewSimTransport(s, 10*sim.Microsecond)
	var ixpGot []Message
	down.SetReceiver(func(m Message) { ixpGot = append(ixpGot, m) })
	if err := c.RegisterIsland(IslandHandle{Name: "ixp", Downlink: down}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 5, Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	c.EnableOverloadControl(OverloadControlConfig{Upstream: "ixp", ShedStep: 2, BoostDelta: 16})

	s.At(0, func() {
		c.Route(Message{Kind: KindTrigger, From: "x86", Target: "x86", Entity: 5})
	})
	s.Run()

	// The trigger itself plus the translated weight-boost Tune reach x86.
	if len(local) != 2 || local[0].Kind != KindTrigger || local[1].Kind != KindTune || local[1].Delta != 16 {
		t.Fatalf("x86 saw %v, want [trigger tune(+16)]", local)
	}
	// The upstream island gets the shed-rate adjustment.
	if len(ixpGot) != 1 || ixpGot[0].Kind != KindShed || ixpGot[0].Delta != 2 || ixpGot[0].Entity != 5 {
		t.Fatalf("ixp saw %v, want [shed(+2) entity 5]", ixpGot)
	}
	if c.ShedTunesIssued() != 1 || c.BoostTunesIssued() != 1 {
		t.Fatalf("issued shed=%d boost=%d, want 1/1", c.ShedTunesIssued(), c.BoostTunesIssued())
	}
	if c.Routed() != 3 {
		t.Fatalf("routed %d, want 3 (trigger + tune + shed)", c.Routed())
	}

	// A trigger already targeting the upstream island must not bounce a
	// shed adjustment back at it.
	s.At(sim.Millisecond, func() {
		c.Route(Message{Kind: KindTrigger, From: "x86", Target: "ixp", Entity: 5})
	})
	s.Run()
	if c.ShedTunesIssued() != 1 {
		t.Fatalf("upstream-targeted trigger issued a shed back at the upstream")
	}
}

func TestReliableBreakerFailsFast(t *testing.T) {
	s := sim.New(1)
	drop := &lossyTransport{}
	back := NewSimTransport(s, 10*sim.Microsecond)
	e := NewReliableEndpoint(s, "up", drop, back, ReliableConfig{
		RTO:        sim.Millisecond,
		MaxRetries: 1,
		Breaker:    &overload.BreakerConfig{FailureThreshold: 2, OpenTimeout: sim.Second},
	})

	// Two triggers exhaust retries on the dead link, tripping the breaker.
	s.At(0, func() { e.Send(Message{Kind: KindTrigger, Target: "c", Entity: 1}) })
	s.At(0, func() { e.Send(Message{Kind: KindTrigger, Target: "c", Entity: 2}) })
	var rejectedSeq uint64
	s.At(100*sim.Millisecond, func() {
		if e.Breaker().State() != overload.BreakerOpen {
			t.Errorf("breaker %v after retry exhaustion, want open", e.Breaker().State())
		}
		before := e.nextSeq
		e.Send(Message{Kind: KindTrigger, Target: "c", Entity: 3})
		if e.nextSeq != before {
			t.Error("breaker-rejected send consumed a sequence number")
		}
		rejectedSeq = e.Stats().BreakerRejected
	})
	s.Run()

	if rejectedSeq != 1 {
		t.Fatalf("BreakerRejected=%d, want 1", rejectedSeq)
	}
	st := e.Stats()
	if st.GaveUp != 2 || st.DataSent != 2 {
		t.Fatalf("stats %+v, want GaveUp=2 DataSent=2", st)
	}
	if e.Up() {
		t.Fatal("link still believed up after giving up")
	}
}

// lossyTransport drops everything it is given.
type lossyTransport struct{ recv func(Message) }

func (l *lossyTransport) Send(Message)                 {}
func (l *lossyTransport) SetReceiver(fn func(Message)) { l.recv = fn }
