package core

import (
	"fmt"

	"repro/internal/ixp"
)

// RequestKind is the coarse resource classification of an application
// request, as established by offline profiling of the multi-tier workload:
// read (browsing) requests exercise the web tier, write (servlet) requests
// exercise the database tier, and the application tier follows whichever is
// active (§3.1).
type RequestKind int

// Request kinds.
const (
	NeutralRequest RequestKind = iota
	ReadRequest
	WriteRequest
)

// TierEntities names the platform-wide entity IDs of the three RUBiS tiers.
type TierEntities struct {
	Web, App, DB int
}

// RequestClassPolicy is the paper's RUBiS coordination scheme: the IXP's
// request classifier reports each incoming request's kind, and the policy
// emits weight-adjustment Tunes for the tier VMs in the x86 island —
// browsing requests raise the web VM and lower the DB VM, write requests
// raise the DB VM and lower the web VM, and the application VM is raised
// with the active tier. Actions are applied per request, exactly as in the
// prototype (which is what makes the scheme vulnerable to rapid read/write
// oscillation under coordination-channel latency).
type RequestClassPolicy struct {
	agent  *Agent
	target string
	tiers  TierEntities
	step   int

	// The Tune messages carry "+/- numerical values" (§3.3); the magnitudes
	// encode the offline-profiled demand asymmetry between classes: write
	// requests imply much heavier database work than read requests imply
	// database idleness, so the DB increase on a write is steeper than the
	// DB decrease on a read. Values are multiples of step.
	WriteDBUp    int // DB delta per write request (default +2*step)
	ReadDBDown   int // DB delta per read request (default -step/2)
	ReadWebUp    int // web delta per read request (default +step)
	WriteWebDown int // web delta per write request (default -step)
	AppUp        int // app delta per request of either class (default +step)

	reads, writes uint64
}

// NewRequestClassPolicy builds the policy. step is the weight delta
// magnitude per request (default 64 if <= 0).
func NewRequestClassPolicy(agent *Agent, target string, tiers TierEntities, step int) *RequestClassPolicy {
	if agent == nil {
		panic("core: RequestClassPolicy with nil agent")
	}
	if step <= 0 {
		step = 64
	}
	return &RequestClassPolicy{
		agent:        agent,
		target:       target,
		tiers:        tiers,
		step:         step,
		WriteDBUp:    2 * step,
		ReadDBDown:   -step / 2,
		ReadWebUp:    step,
		WriteWebDown: -step,
		AppUp:        step,
	}
}

// OnRequest reacts to one classified request.
func (p *RequestClassPolicy) OnRequest(kind RequestKind) {
	switch kind {
	case ReadRequest:
		p.reads++
		p.agent.SendTune(p.target, p.tiers.Web, p.ReadWebUp)
		p.agent.SendTune(p.target, p.tiers.App, p.AppUp)
		p.agent.SendTune(p.target, p.tiers.DB, p.ReadDBDown)
	case WriteRequest:
		p.writes++
		p.agent.SendTune(p.target, p.tiers.DB, p.WriteDBUp)
		p.agent.SendTune(p.target, p.tiers.App, p.AppUp)
		p.agent.SendTune(p.target, p.tiers.Web, p.WriteWebDown)
	case NeutralRequest:
		// Unclassified traffic (static content) carries no tier signal.
	}
}

// Counts returns the number of read and write requests observed.
func (p *RequestClassPolicy) Counts() (reads, writes uint64) { return p.reads, p.writes }

// LoadTrackPolicy is the richer variant of the RUBiS coordination scheme:
// instead of fixed per-class deltas, the IXP sends each tier a Tune whose
// value is the request's offline-profiled CPU demand at that tier (scaled).
// Combined with the x86 actuator's load-tracking translation (decaying
// boost mass), each tier VM's weight converges to a value proportional to
// its recently offered load — browsing phases raise the web VM and let the
// DB VM decay, write phases raise the DB VM, and the app VM follows the
// active class, exactly the behaviour the paper describes, but with stable
// interior weights.
type LoadTrackPolicy struct {
	agent  *Agent
	target string
	tiers  TierEntities

	// Scale converts profiled demand milliseconds into Tune delta units
	// (default 1.0).
	Scale float64

	requests uint64
}

// NewLoadTrackPolicy builds the policy.
func NewLoadTrackPolicy(agent *Agent, target string, tiers TierEntities) *LoadTrackPolicy {
	if agent == nil {
		panic("core: LoadTrackPolicy with nil agent")
	}
	return &LoadTrackPolicy{agent: agent, target: target, tiers: tiers, Scale: 1}
}

// Requests returns the number of classified requests observed.
func (p *LoadTrackPolicy) Requests() uint64 { return p.requests }

// OnRequest reports one classified request's profiled per-tier demands (in
// milliseconds); the policy emits one demand-scaled Tune per loaded tier.
func (p *LoadTrackPolicy) OnRequest(webMs, appMs, dbMs float64) {
	p.requests++
	send := func(entity int, ms float64) {
		if d := int(ms*p.Scale + 0.5); d > 0 {
			p.agent.SendTune(p.target, entity, d)
		}
	}
	send(p.tiers.Web, webMs)
	send(p.tiers.App, appMs)
	send(p.tiers.DB, dbMs)
}

// OutstandingLoadPolicy is the coord-ixp-dom0 scheme used for the RUBiS
// reproduction: because every VM's traffic transits the IXP in both
// directions, the classifier can track the *outstanding* profiled demand
// per tier — demand enters when a classified request is forwarded to the
// host and leaves when the matching response is transmitted. Each change
// emits a Tune whose value is the demand delta, so the x86 side holds each
// tier VM's weight at base + k*(outstanding demand): the backlogged tier is
// prioritized exactly while it is backlogged, which is what shortens the
// write-burst queues the paper's Table 1 measures. Actions remain strictly
// per-request (§3.1), and the scheme degrades under coordination-channel
// latency the same way the paper reports.
type OutstandingLoadPolicy struct {
	agent  *Agent
	target string
	tiers  TierEntities

	// Scale converts profiled demand milliseconds into Tune units
	// (default 1.0).
	Scale float64
	// Per-tier urgency factors, multiplied into each tier's deltas. The
	// front tiers serve short interactive requests, so a millisecond of
	// web backlog is weighted more heavily than a millisecond of database
	// backlog (defaults 3.0 / 1.5 / 1.0) — without this, the slow tier's
	// raw backlog magnitude would monopolize the weights and static
	// browsing would regress.
	WebFactor, AppFactor, DBFactor float64

	requests, responses uint64
}

// NewOutstandingLoadPolicy builds the policy.
func NewOutstandingLoadPolicy(agent *Agent, target string, tiers TierEntities) *OutstandingLoadPolicy {
	if agent == nil {
		panic("core: OutstandingLoadPolicy with nil agent")
	}
	return &OutstandingLoadPolicy{
		agent: agent, target: target, tiers: tiers,
		Scale: 1, WebFactor: 3, AppFactor: 1.5, DBFactor: 1,
	}
}

// Counts returns the requests and responses observed.
func (p *OutstandingLoadPolicy) Counts() (requests, responses uint64) {
	return p.requests, p.responses
}

// OnRequest reports a classified inbound request's profiled per-tier
// demands (ms); outstanding demand rises.
func (p *OutstandingLoadPolicy) OnRequest(webMs, appMs, dbMs float64) {
	p.requests++
	p.sendDeltas(webMs, appMs, dbMs, +1)
}

// OnResponse reports the matching outbound response; outstanding demand
// falls.
func (p *OutstandingLoadPolicy) OnResponse(webMs, appMs, dbMs float64) {
	p.responses++
	p.sendDeltas(webMs, appMs, dbMs, -1)
}

func (p *OutstandingLoadPolicy) sendDeltas(webMs, appMs, dbMs float64, sign int) {
	send := func(entity int, ms, factor float64) {
		if d := int(ms*p.Scale*factor + 0.5); d > 0 {
			p.agent.SendTune(p.target, entity, sign*d)
		}
	}
	send(p.tiers.Web, webMs, p.WebFactor)
	send(p.tiers.App, appMs, p.AppFactor)
	send(p.tiers.DB, dbMs, p.DBFactor)
}

// StreamQoSPolicy is the paper's first MPlayer scheme: when an RTSP session
// is established the IXP records the stream's bit- and frame-rate per guest
// VM, and the policy sends weight increases for high-rate streams and a
// weight decrease for low-rate ones. Bitrate and frame rate contribute
// separately, which is how the paper's two streams end up at weights 384
// (high bitrate only) and 512 (high bitrate and high frame rate) from a
// 256 base.
type StreamQoSPolicy struct {
	agent  *Agent
	target string

	// Rates at or above these thresholds classify a stream as "high".
	HighBitrate   float64 // bits/s (default 250 kbit/s)
	HighFrameRate float64 // frames/s (default 24)
	// IncreaseStep is applied once per satisfied threshold; DecreaseStep is
	// applied when neither is satisfied.
	IncreaseStep int // default +128
	DecreaseStep int // default -64
}

// NewStreamQoSPolicy builds the policy with the defaults above.
func NewStreamQoSPolicy(agent *Agent, target string) *StreamQoSPolicy {
	if agent == nil {
		panic("core: StreamQoSPolicy with nil agent")
	}
	return &StreamQoSPolicy{
		agent:         agent,
		target:        target,
		HighBitrate:   250e3,
		HighFrameRate: 24,
		IncreaseStep:  128,
		DecreaseStep:  -64,
	}
}

// DeltaFor returns the weight delta the policy applies for a stream.
func (p *StreamQoSPolicy) DeltaFor(st ixp.StreamState) int {
	delta := 0
	if st.BitrateBn >= p.HighBitrate {
		delta += p.IncreaseStep
	}
	if st.FrameRate >= p.HighFrameRate {
		delta += p.IncreaseStep
	}
	if delta == 0 {
		delta = p.DecreaseStep
	}
	return delta
}

// OnSession reacts to a newly established stream session for a VM.
func (p *StreamQoSPolicy) OnSession(st ixp.StreamState) {
	p.agent.SendTune(p.target, st.VMID, p.DeltaFor(st))
}

// BufferWatermarkPolicy is the paper's second MPlayer scheme (Figure 7):
// purely system-level coordination. When a VM's packet queue in IXP DRAM
// crosses a byte threshold, an immediate Trigger is sent so the x86 island
// boosts the dequeuing VM before the frontend buffer overflows.
type BufferWatermarkPolicy struct {
	agent     *Agent
	target    string
	threshold int

	fired uint64
}

// DefaultWatermark is the paper's 128 KB trigger threshold.
const DefaultWatermark = 128 << 10

// NewBufferWatermarkPolicy builds the policy; threshold <= 0 selects the
// paper's 128 KB default.
func NewBufferWatermarkPolicy(agent *Agent, target string, threshold int) *BufferWatermarkPolicy {
	if agent == nil {
		panic("core: BufferWatermarkPolicy with nil agent")
	}
	if threshold <= 0 {
		threshold = DefaultWatermark
	}
	return &BufferWatermarkPolicy{agent: agent, target: target, threshold: threshold}
}

// Threshold returns the active byte threshold.
func (p *BufferWatermarkPolicy) Threshold() int { return p.threshold }

// Fired returns how many triggers the policy has sent.
func (p *BufferWatermarkPolicy) Fired() uint64 { return p.fired }

// Attach arms the watermark on each given VM's flow queue.
func (p *BufferWatermarkPolicy) Attach(x *ixp.IXP, vmIDs ...int) error {
	for _, vm := range vmIDs {
		q := x.Flow(vm)
		if q == nil {
			return fmt.Errorf("core: no IXP flow for VM %d", vm)
		}
		vm := vm
		q.SetHighWatermark(p.threshold, func(int) {
			p.fired++
			p.agent.SendTrigger(p.target, vm)
		})
	}
	return nil
}
