package core

import (
	"fmt"

	"repro/internal/sim"
)

// RateLimiter enforces a minimum interval between coordination messages of
// the same kind for the same entity. It damps the message storms that
// per-packet policies would otherwise generate on rapidly oscillating
// request streams.
type RateLimiter struct {
	sim      *sim.Simulator
	interval sim.Time
	last     map[[2]int]sim.Time
	seen     map[[2]int]bool
}

// NewRateLimiter returns a limiter allowing one message per (kind, entity)
// each minInterval. A zero interval allows everything.
func NewRateLimiter(s *sim.Simulator, minInterval sim.Time) *RateLimiter {
	if minInterval < 0 {
		panic(fmt.Sprintf("core: negative rate-limit interval %v", minInterval))
	}
	return &RateLimiter{
		sim:      s,
		interval: minInterval,
		last:     make(map[[2]int]sim.Time),
		seen:     make(map[[2]int]bool),
	}
}

// Allow reports whether a message of kind for entity may be sent now, and
// records it if so.
func (r *RateLimiter) Allow(kind Kind, entity int) bool {
	if r.interval == 0 {
		return true
	}
	key := [2]int{int(kind), entity}
	now := r.sim.Now()
	if r.seen[key] && now-r.last[key] < r.interval {
		return false
	}
	r.seen[key] = true
	r.last[key] = now
	return true
}

// Interval returns the configured minimum interval.
func (r *RateLimiter) Interval() sim.Time { return r.interval }
