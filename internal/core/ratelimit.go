package core

import (
	"fmt"

	"repro/internal/sim"
)

// RateLimiter enforces a minimum interval between coordination messages of
// the same kind for the same entity. It damps the message storms that
// per-packet policies would otherwise generate on rapidly oscillating
// request streams.
//
// With burst > 1 it runs in token-bucket mode: each (kind, entity) holds a
// bucket of burst tokens refilled at one token per interval, so an
// overload episode may emit a burst of messages back-to-back while the
// steady-state rate stays capped — damped, not starved.
type RateLimiter struct {
	sim      *sim.Simulator
	interval sim.Time
	burst    int
	last     map[[2]int]sim.Time
	seen     map[[2]int]bool
	tokens   map[[2]int]float64
}

// NewRateLimiter returns a limiter allowing one message per (kind, entity)
// each minInterval. A zero interval allows everything.
func NewRateLimiter(s *sim.Simulator, minInterval sim.Time) *RateLimiter {
	if minInterval < 0 {
		panic(fmt.Sprintf("core: negative rate-limit interval %v", minInterval))
	}
	return &RateLimiter{
		sim:      s,
		interval: minInterval,
		burst:    1,
		last:     make(map[[2]int]sim.Time),
		seen:     make(map[[2]int]bool),
		tokens:   make(map[[2]int]float64),
	}
}

// NewTokenBucketRateLimiter returns a limiter granting each (kind, entity)
// a bucket of burst tokens, refilled at one token per refill interval and
// capped at burst. A burst of 1 degenerates to NewRateLimiter's strict
// minimum-interval behaviour.
func NewTokenBucketRateLimiter(s *sim.Simulator, refill sim.Time, burst int) *RateLimiter {
	if refill <= 0 {
		panic(fmt.Sprintf("core: token-bucket refill interval %v must be positive", refill))
	}
	if burst < 1 {
		panic(fmt.Sprintf("core: token-bucket burst %d must be at least 1", burst))
	}
	r := NewRateLimiter(s, refill)
	r.burst = burst
	return r
}

// Allow reports whether a message of kind for entity may be sent now, and
// records it if so.
func (r *RateLimiter) Allow(kind Kind, entity int) bool {
	if r.interval == 0 {
		return true
	}
	key := [2]int{int(kind), entity}
	now := r.sim.Now()
	if r.burst > 1 {
		return r.allowBucket(key, now)
	}
	if r.seen[key] && now-r.last[key] < r.interval {
		return false
	}
	r.seen[key] = true
	r.last[key] = now
	return true
}

// allowBucket is the token-bucket grant path: refill lazily from the
// elapsed time, cap at burst, spend one token if available.
func (r *RateLimiter) allowBucket(key [2]int, now sim.Time) bool {
	tokens := float64(r.burst)
	if r.seen[key] {
		tokens = r.tokens[key] + float64(now-r.last[key])/float64(r.interval)
		if tokens > float64(r.burst) {
			tokens = float64(r.burst)
		}
	}
	r.seen[key] = true
	r.last[key] = now
	if tokens < 1 {
		r.tokens[key] = tokens
		return false
	}
	r.tokens[key] = tokens - 1
	return true
}

// Interval returns the configured minimum interval.
func (r *RateLimiter) Interval() sim.Time { return r.interval }

// Burst returns the bucket capacity (1 in strict minimum-interval mode).
func (r *RateLimiter) Burst() int { return r.burst }
