// Package core implements the paper's contribution: standard coordination
// mechanisms and interfaces between the independent resource managers of a
// heterogeneous platform's scheduling islands.
//
// The paper identifies two low-level mechanisms from which richer
// coordination algorithms are composed (§3.3):
//
//   - Tune: a fine-grained resource-adjustment request for an entity in a
//     remote island — a message carrying an entity identifier and a +/-
//     numerical value, translated at the remote island into whatever its
//     scheduler understands (credit-weight deltas in Xen, dequeue-thread or
//     poll-interval adjustments on the IXP).
//
//   - Trigger: an immediate, interrupt-like notification requesting
//     resources for an entity in a remote island as soon as possible, with
//     preemptive semantics (a Xen runqueue boost).
//
// Architecture: at system initialization every scheduling island registers
// with a GlobalController (hosted by the first privileged domain to boot,
// Dom0 in the prototype). Entities (VMs) deployed across islands register
// too, giving every island a shared namespace of entity identifiers.
// Coordination messages travel island-to-island over Transports (the PCIe
// mailbox in the prototype) and are routed by the controller.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Kind discriminates coordination message types.
type Kind int

// Message kinds.
const (
	KindTune Kind = iota
	KindTrigger
	KindRegister
	// KindAck is a reliability-layer acknowledgment: Seq carries the
	// acknowledged sequence number, Ack the cumulative high-water mark.
	KindAck
	// KindHeartbeat is a liveness beacon: islands emit them toward the
	// controller (which renews their lease) and the controller pings
	// islands back (which renews the agents' view of the uplink).
	KindHeartbeat
	// KindShed is an upstream admission-control adjustment: Delta moves the
	// target island's shed rate for the entity's traffic (positive = shed
	// more). The controller emits one toward the island with early traffic
	// visibility when a downstream island raises an overload Trigger.
	KindShed
)

// String names the message kind.
func (k Kind) String() string {
	switch k {
	case KindTune:
		return "tune"
	case KindTrigger:
		return "trigger"
	case KindRegister:
		return "register"
	case KindAck:
		return "ack"
	case KindHeartbeat:
		return "heartbeat"
	case KindShed:
		return "shed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DeliveryClass is a message kind's reliability contract when carried over
// a ReliableEndpoint.
type DeliveryClass int

// Delivery classes.
const (
	// ClassBestEffort messages are sent once, unsequenced, and never
	// retransmitted (acks, heartbeats).
	ClassBestEffort DeliveryClass = iota
	// ClassAtMostOnce messages are retransmitted until acknowledged or a
	// configurable deadline passes, and are never replayed after newer
	// state has been delivered (Tunes: a stale delta applied late is worse
	// than a lost one).
	ClassAtMostOnce
	// ClassAtLeastOnce messages are retransmitted until acknowledged, with
	// receiver-side dedup (Triggers and registrations: losing one loses an
	// overload episode).
	ClassAtLeastOnce
)

// String names the delivery class.
func (c DeliveryClass) String() string {
	switch c {
	case ClassBestEffort:
		return "best-effort"
	case ClassAtMostOnce:
		return "at-most-once"
	case ClassAtLeastOnce:
		return "at-least-once"
	default:
		return fmt.Sprintf("DeliveryClass(%d)", int(c))
	}
}

// ClassFor returns the delivery class of a message kind.
func ClassFor(k Kind) DeliveryClass {
	switch k {
	case KindTune, KindShed:
		// A stale shed-rate adjustment applied late is worse than a lost
		// one, exactly like a Tune: at-most-once.
		return ClassAtMostOnce
	case KindTrigger, KindRegister:
		return ClassAtLeastOnce
	case KindAck, KindHeartbeat:
		return ClassBestEffort
	default:
		return ClassBestEffort
	}
}

// Message is a coordination message exchanged between islands.
type Message struct {
	Kind   Kind
	From   string // source island
	Target string // destination island
	Entity int    // platform-wide entity (VM) identifier
	Delta  int    // Tune only: +/- resource adjustment value

	// Reliability-layer fields, stamped by ReliableEndpoint. Seq is the
	// per-link sequence number (0 = unsequenced best-effort); on a KindAck
	// message Seq acknowledges one delivery and Ack is cumulative.
	Seq uint64
	Ack uint64

	// Sum is the frame checksum over every other field, stamped by the
	// wire-level transports just before a message leaves and verified on
	// arrival. Zero means unstamped (locally wired test messages skip
	// verification); PayloadSum never returns zero.
	Sum uint32
}

// PayloadSum computes the message's frame checksum (FNV-1a over every
// field except Sum itself). The zero value is reserved for "unstamped",
// so a real checksum is never zero.
func (m Message) PayloadSum() uint32 {
	h := fnv.New32a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	writeU64(uint64(int64(m.Kind)))
	_, _ = h.Write([]byte(m.From))
	_, _ = h.Write([]byte{0}) // field separator: From/Target must not blur
	_, _ = h.Write([]byte(m.Target))
	writeU64(uint64(int64(m.Entity)))
	writeU64(uint64(int64(m.Delta)))
	writeU64(m.Seq)
	writeU64(m.Ack)
	s := h.Sum32()
	if s == 0 {
		s = 1
	}
	return s
}

// CorruptPayload models in-flight bit flips (pcie.Corruptible): it returns
// a copy of the message with payload bits flipped under mask, leaving the
// stamped checksum alone so the damage is detectable downstream. The mask's
// low bit is always set by the injector, so the copy always differs.
func (m Message) CorruptPayload(mask uint64) any {
	m.Entity ^= int(int16(mask))
	m.Delta ^= int(int16(mask >> 16))
	m.Seq ^= mask >> 32
	return m
}

// String renders the message for tracing.
func (m Message) String() string {
	switch m.Kind {
	case KindTune:
		return fmt.Sprintf("tune{%s->%s entity=%d delta=%+d}", m.From, m.Target, m.Entity, m.Delta)
	case KindTrigger:
		return fmt.Sprintf("trigger{%s->%s entity=%d}", m.From, m.Target, m.Entity)
	case KindShed:
		return fmt.Sprintf("shed{%s->%s entity=%d delta=%+d}", m.From, m.Target, m.Entity, m.Delta)
	default:
		return fmt.Sprintf("%s{%s->%s entity=%d}", m.Kind, m.From, m.Target, m.Entity)
	}
}

// Entity is a platform-wide managed entity — in the prototype, a guest VM
// that spans islands (scheduled by Xen, fed by the IXP).
type Entity struct {
	ID   int    // platform-wide identifier (the Xen domain ID in the prototype)
	Name string // human-readable name
	Home string // island owning the entity's primary abstraction
}
