// Package core implements the paper's contribution: standard coordination
// mechanisms and interfaces between the independent resource managers of a
// heterogeneous platform's scheduling islands.
//
// The paper identifies two low-level mechanisms from which richer
// coordination algorithms are composed (§3.3):
//
//   - Tune: a fine-grained resource-adjustment request for an entity in a
//     remote island — a message carrying an entity identifier and a +/-
//     numerical value, translated at the remote island into whatever its
//     scheduler understands (credit-weight deltas in Xen, dequeue-thread or
//     poll-interval adjustments on the IXP).
//
//   - Trigger: an immediate, interrupt-like notification requesting
//     resources for an entity in a remote island as soon as possible, with
//     preemptive semantics (a Xen runqueue boost).
//
// Architecture: at system initialization every scheduling island registers
// with a GlobalController (hosted by the first privileged domain to boot,
// Dom0 in the prototype). Entities (VMs) deployed across islands register
// too, giving every island a shared namespace of entity identifiers.
// Coordination messages travel island-to-island over Transports (the PCIe
// mailbox in the prototype) and are routed by the controller.
package core

import "fmt"

// Kind discriminates coordination message types.
type Kind int

// Message kinds.
const (
	KindTune Kind = iota
	KindTrigger
	KindRegister
)

// String names the message kind.
func (k Kind) String() string {
	switch k {
	case KindTune:
		return "tune"
	case KindTrigger:
		return "trigger"
	case KindRegister:
		return "register"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is a coordination message exchanged between islands.
type Message struct {
	Kind   Kind
	From   string // source island
	Target string // destination island
	Entity int    // platform-wide entity (VM) identifier
	Delta  int    // Tune only: +/- resource adjustment value
}

// String renders the message for tracing.
func (m Message) String() string {
	switch m.Kind {
	case KindTune:
		return fmt.Sprintf("tune{%s->%s entity=%d delta=%+d}", m.From, m.Target, m.Entity, m.Delta)
	case KindTrigger:
		return fmt.Sprintf("trigger{%s->%s entity=%d}", m.From, m.Target, m.Entity)
	default:
		return fmt.Sprintf("%s{%s->%s entity=%d}", m.Kind, m.From, m.Target, m.Entity)
	}
}

// Entity is a platform-wide managed entity — in the prototype, a guest VM
// that spans islands (scheduled by Xen, fed by the IXP).
type Entity struct {
	ID   int    // platform-wide identifier (the Xen domain ID in the prototype)
	Name string // human-readable name
	Home string // island owning the entity's primary abstraction
}
