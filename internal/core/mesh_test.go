package core

import (
	"testing"

	"repro/internal/sim"
)

func newTestMesh(s *sim.Simulator, latency sim.Time) *Mesh {
	return NewMesh(func(from, to string) Transport {
		return NewSimTransport(s, latency)
	})
}

func TestMeshDirectDelivery(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, 100*sim.Microsecond)
	actA, actB := &fakeActuator{}, &fakeActuator{}
	a, err := m.AddIsland("a", actA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddIsland("b", actB); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "b"}); err != nil {
		t.Fatal(err)
	}
	var deliveredAt sim.Time
	s.At(0, func() { a.SendTune("b", 1, +7) })
	s.At(200*sim.Microsecond, func() { deliveredAt = s.Now() })
	s.Run()
	_ = deliveredAt
	if len(actB.tunes) != 1 || actB.tunes[0] != 7 {
		t.Fatalf("b applied %v", actB.tunes)
	}
	if m.Routed() != 1 {
		t.Fatalf("Routed = %d", m.Routed())
	}
}

func TestMeshSingleHopLatency(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, 150*sim.Microsecond)
	var appliedAt sim.Time
	tap := WithTrace(func(Message) { appliedAt = s.Now() })
	a, _ := m.AddIsland("a", &fakeActuator{})
	if _, err := m.AddIsland("b", &fakeActuator{}, tap); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "b"}); err != nil {
		t.Fatal(err)
	}
	a.SendTrigger("b", 1)
	s.Run()
	if appliedAt != 150*sim.Microsecond {
		t.Fatalf("applied at %v, want one hop (150us)", appliedAt)
	}
}

func TestMeshFullConnectivity(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, sim.Microsecond)
	acts := map[string]*fakeActuator{}
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		acts[n] = &fakeActuator{}
		if _, err := m.AddIsland(n, acts[n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "a"}); err != nil {
		t.Fatal(err)
	}
	// Every island tunes every other island.
	for _, from := range names {
		for _, to := range names {
			if from != to {
				m.Agent(from).SendTune(to, 1, 1)
			}
		}
	}
	s.Run()
	for _, n := range names {
		if got := len(acts[n].tunes); got != 3 {
			t.Fatalf("island %s applied %d tunes, want 3", n, got)
		}
	}
	if m.Routed() != 12 {
		t.Fatalf("Routed = %d, want 12", m.Routed())
	}
	if got := m.Islands(); len(got) != 4 || got[0] != "a" || got[3] != "d" {
		t.Fatalf("Islands = %v", got)
	}
}

func TestMeshLocalTargetAppliesLocally(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, sim.Microsecond)
	act := &fakeActuator{}
	a, _ := m.AddIsland("solo", act)
	if err := m.RegisterEntity(Entity{ID: 5, Home: "solo"}); err != nil {
		t.Fatal(err)
	}
	a.SendTune("solo", 5, 3)
	s.Run()
	if len(act.tunes) != 1 {
		t.Fatalf("local apply missing: %v", act.tunes)
	}
}

func TestMeshUnroutable(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, sim.Microsecond)
	a, _ := m.AddIsland("a", &fakeActuator{})
	m.AddIsland("b", &fakeActuator{})
	a.SendTune("ghost", 1, 1) // unknown island
	a.SendTune("b", 99, 1)    // unknown entity
	s.Run()
	if m.Unroutable() != 2 {
		t.Fatalf("Unroutable = %d", m.Unroutable())
	}
}

func TestMeshValidation(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, 0)
	if _, err := m.AddIsland("", nil); err == nil {
		t.Fatal("empty island name accepted")
	}
	if _, err := m.AddIsland("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddIsland("a", nil); err == nil {
		t.Fatal("duplicate island accepted")
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterEntity(Entity{ID: 1}); err == nil {
		t.Fatal("duplicate entity accepted")
	}
	if err := m.RegisterEntity(Entity{ID: 2, Home: "ghost"}); err == nil {
		t.Fatal("unknown home accepted")
	}
	if _, ok := m.Entity(1); !ok {
		t.Fatal("Entity lookup failed")
	}
	if m.Agent("ghost") != nil {
		t.Fatal("ghost agent returned")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory did not panic")
		}
	}()
	NewMesh(nil)
}
