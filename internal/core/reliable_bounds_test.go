package core

import (
	"testing"

	"repro/internal/sim"
)

// TestReliableOutstandingBoundedUnderPartition pins the endpoint's memory
// under a long total partition: a sender that keeps offering at-least-once
// traffic for 10k ticks with no acks coming back must cap its retransmit
// queue at MaxOutstanding and refuse the rest with a counted reason, never
// growing without bound.
func TestReliableOutstandingBoundedUnderPartition(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{} // black hole: nothing is ever delivered
	in := &scriptedTransport{}  // no acks ever arrive
	cfg := ReliableConfig{MaxOutstanding: 64}
	e := NewReliableEndpoint(s, "e", out, in, cfg)

	const ticks = 10_000
	peak := 0
	for i := 0; i < ticks; i++ {
		s.At(sim.Time(i)*sim.Millisecond, func() {
			e.Send(Message{Kind: KindTrigger, Target: "b", Entity: 1})
			if n := e.Outstanding(); n > peak {
				peak = n
			}
		})
	}
	s.RunUntil(ticks * sim.Millisecond)

	if peak > 64 {
		t.Fatalf("outstanding peaked at %d, cap is 64", peak)
	}
	st := e.Stats()
	if st.QueueFullDrops == 0 {
		t.Fatal("no queue-full drops counted despite 10k sends into a partition")
	}
	// Every offered message is accounted for: sent, refused at the cap, or
	// abandoned after max retries (which frees a slot for a later send).
	if st.DataSent+st.QueueFullDrops != ticks {
		t.Fatalf("accounting: sent=%d + queueFull=%d != %d offered", st.DataSent, st.QueueFullDrops, ticks)
	}
	if e.Outstanding() > 64 {
		t.Fatalf("final outstanding %d exceeds cap", e.Outstanding())
	}
	// Cap refusals consume no sequence numbers: no receiver-side gap ever
	// forms from them.
	if want := st.DataSent + 1; e.SeqState().NextSeq != want {
		t.Fatalf("nextSeq=%d, want %d (drops must not burn sequence numbers)", e.SeqState().NextSeq, want)
	}
}

// TestReliableReorderBufferBounded pins the receiver's parked-message
// memory: a reorder storm that never fills the gap must cap the buffer at
// MaxReorder, refuse the overflow un-acked (so the sender retries), and
// keep the cumulative ack flowing.
func TestReliableReorderBufferBounded(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{}
	in := &scriptedTransport{}
	cfg := ReliableConfig{MaxReorder: 32}
	e := NewReliableEndpoint(s, "e", out, in, cfg)
	var delivered []Message
	e.SetReceiver(func(m Message) { delivered = append(delivered, m) })

	// Seq 1 never arrives: everything parks behind the gap.
	const n = 500
	for seq := uint64(2); seq < 2+n; seq++ {
		in.deliver(Message{Kind: KindTrigger, Target: "e", Entity: 1, Seq: seq})
	}

	if got := e.Buffered(); got != 32 {
		t.Fatalf("buffered = %d, want exactly the 32 cap", got)
	}
	st := e.Stats()
	if st.ReorderDrops != n-32 {
		t.Fatalf("reorderDrops = %d, want %d", st.ReorderDrops, n-32)
	}
	if len(delivered) != 0 {
		t.Fatalf("delivered %d messages through an unfilled gap", len(delivered))
	}
	// Refused arrivals still get a cumulative-only ack (Seq 0), never a
	// selective ack that would stop the sender's retransmission.
	var sel, cumOnly int
	for _, m := range out.sent {
		if m.Kind != KindAck {
			continue
		}
		if m.Seq == 0 {
			cumOnly++
		} else {
			sel++
		}
	}
	if sel != 32 || cumOnly != n-32 {
		t.Fatalf("acks: selective=%d cumulative-only=%d, want 32/%d", sel, cumOnly, n-32)
	}

	// Filling the gap drains the parked window and the buffer empties.
	in.deliver(Message{Kind: KindTrigger, Target: "e", Entity: 1, Seq: 1})
	if e.Buffered() != 0 {
		t.Fatalf("buffer not drained after gap fill: %d", e.Buffered())
	}
	if len(delivered) != 33 { // seq 1 plus the 32 parked
		t.Fatalf("delivered %d after gap fill, want 33", len(delivered))
	}
}

// TestReliableFlushStaleKeepsTriggers: FlushStale cancels outstanding
// at-most-once messages (a dead primary's in-flight Tunes) but leaves
// at-least-once Triggers retrying — they are safe to apply late.
func TestReliableFlushStaleKeepsTriggers(t *testing.T) {
	s := sim.New(1)
	out := &scriptedTransport{}
	in := &scriptedTransport{}
	e := NewReliableEndpoint(s, "e", out, in, ReliableConfig{})

	e.Send(Message{Kind: KindTune, Target: "b", Entity: 1, Delta: 1})
	e.Send(Message{Kind: KindTrigger, Target: "b", Entity: 1})
	e.Send(Message{Kind: KindTune, Target: "b", Entity: 1, Delta: 2})
	e.Send(Message{Kind: KindShed, Target: "b", Entity: 1, Delta: 3})
	if e.Outstanding() != 4 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}

	if n := e.FlushStale(); n != 3 {
		t.Fatalf("flushed %d, want 3 (two tunes + one shed)", n)
	}
	if e.Outstanding() != 1 {
		t.Fatalf("outstanding after flush = %d, want the trigger only", e.Outstanding())
	}
	var nilEP *ReliableEndpoint
	if nilEP.FlushStale() != 0 || nilEP.SeqState() != (EndpointSeqState{}) {
		t.Fatal("nil endpoint helpers not nil-safe")
	}
}

// TestWatchdogFlapHysteresis: an island that dies and rejoins in rapid
// cycles must not inflate LeaseExpiries/Rejoins pair-per-cycle. With
// hysteresis, the churn counts once: the first real expiry, N suppressed
// flaps, and one matured rejoin when the island finally stays up.
func TestWatchdogFlapHysteresis(t *testing.T) {
	tb := newStarTestbed(t)
	var rejoinHooks int
	tb.ag.EnableHeartbeat(tb.s, 10*sim.Millisecond)
	tb.ctrl.EnableWatchdog(tb.s, WatchdogConfig{
		CheckPeriod:      10 * sim.Millisecond,
		SuspectAfter:     20 * sim.Millisecond,
		DeadAfter:        40 * sim.Millisecond,
		RejoinHysteresis: 200 * sim.Millisecond,
		OnRejoin:         func(string) { rejoinHooks++ },
	})

	// Five crash/restart cycles, each restart well inside the hysteresis
	// window of the preceding death.
	const cycles = 5
	for k := 0; k < cycles; k++ {
		base := sim.Time(100+k*100) * sim.Millisecond
		tb.s.At(base, func() { tb.ag.SetCrashed(true) })
		tb.s.At(base+60*sim.Millisecond, func() { tb.ag.SetCrashed(false) })
	}
	// Then the island stays up past the hysteresis window.
	tb.s.RunUntil(sim.Time(100+cycles*100)*sim.Millisecond + 300*sim.Millisecond)

	if got := tb.ctrl.LeaseExpiries(); got != 1 {
		t.Errorf("LeaseExpiries = %d, want 1 (flap cycles must not double count)", got)
	}
	if got := tb.ctrl.FlapSuppressed(); got != cycles {
		t.Errorf("FlapSuppressed = %d, want %d", got, cycles)
	}
	if got := tb.ctrl.Rejoins(); got != 1 {
		t.Errorf("Rejoins = %d, want 1 (only the matured rejoin counts)", got)
	}
	// The OnRejoin hook must still fire on every recovery — the baseline
	// revert cancellation depends on it.
	if rejoinHooks != cycles {
		t.Errorf("OnRejoin fired %d times, want %d", rejoinHooks, cycles)
	}
	if st, _ := tb.ctrl.LeaseOf("ixp"); st != LeaseAlive {
		t.Errorf("final lease state = %v", st)
	}
}
