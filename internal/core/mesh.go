package core

import (
	"fmt"
	"sort"
)

// Mesh is the distributed alternative to the central Controller — the
// paper's ongoing work on "distributed coordination algorithms across
// multiple island resource managers" (§5). Every island keeps a replica of
// the entity directory and addresses peer islands over direct transports,
// removing the controller hop and its serialization (see the scalability
// experiment for the quantitative comparison).
type Mesh struct {
	factory  func(from, to string) Transport
	nodes    map[string]*meshNode
	order    []string
	entities map[int]Entity // replicated directory

	routed     uint64
	unroutable uint64
}

// meshNode is one island's endpoint: its agent plus direct links to peers.
type meshNode struct {
	name  string
	agent *Agent
	links map[string]Transport // keyed by peer island
}

// NewMesh builds a mesh whose island-to-island transports come from
// factory (called once per ordered pair as islands join).
func NewMesh(factory func(from, to string) Transport) *Mesh {
	if factory == nil {
		panic("core: mesh with nil transport factory")
	}
	return &Mesh{
		factory:  factory,
		nodes:    make(map[string]*meshNode),
		entities: make(map[int]Entity),
	}
}

// AddIsland joins an island to the mesh, creating direct transports to and
// from every existing member, and returns its coordination agent.
func (m *Mesh) AddIsland(name string, act Actuator, opts ...AgentOption) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("core: mesh island with empty name")
	}
	if _, dup := m.nodes[name]; dup {
		return nil, fmt.Errorf("core: mesh island %q already joined", name)
	}
	node := &meshNode{name: name, links: make(map[string]Transport)}
	route := func(msg Message) { m.route(node, msg) }
	node.agent = NewAgent(name, nil, route, act, opts...)

	for _, peerName := range m.order {
		peer := m.nodes[peerName]
		out := m.factory(name, peerName)
		out.SetReceiver(peer.agent.Deliver)
		node.links[peerName] = out
		back := m.factory(peerName, name)
		back.SetReceiver(node.agent.Deliver)
		peer.links[name] = back
	}
	m.nodes[name] = node
	m.order = append(m.order, name)
	return node.agent, nil
}

// RegisterEntity replicates an entity into every island's directory.
func (m *Mesh) RegisterEntity(e Entity) error {
	if _, dup := m.entities[e.ID]; dup {
		return fmt.Errorf("core: entity %d already registered", e.ID)
	}
	if e.Home != "" {
		if _, ok := m.nodes[e.Home]; !ok {
			return fmt.Errorf("core: entity %d names unknown home island %q", e.ID, e.Home)
		}
	}
	m.entities[e.ID] = e
	return nil
}

// Entity returns the replicated directory entry for id.
func (m *Mesh) Entity(id int) (Entity, bool) {
	e, ok := m.entities[id]
	return e, ok
}

// Islands returns the member island names, sorted.
func (m *Mesh) Islands() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	sort.Strings(out)
	return out
}

// Agent returns the named island's agent, or nil.
func (m *Mesh) Agent(name string) *Agent {
	if n, ok := m.nodes[name]; ok {
		return n.agent
	}
	return nil
}

// Routed and Unroutable mirror the Controller's counters.
func (m *Mesh) Routed() uint64 { return m.routed }

// Unroutable returns messages dropped for unknown target island or entity.
func (m *Mesh) Unroutable() uint64 { return m.unroutable }

// route sends msg from the originating node directly to the target island.
func (m *Mesh) route(from *meshNode, msg Message) {
	link, ok := from.links[msg.Target]
	if !ok {
		// A message to the local island applies locally — islands may use
		// the same policy code regardless of where the entity lives.
		if msg.Target == from.name {
			m.routed++
			from.agent.Deliver(msg)
			return
		}
		m.unroutable++
		return
	}
	if _, ok := m.entities[msg.Entity]; !ok {
		m.unroutable++
		return
	}
	m.routed++
	link.Send(msg)
}
