package core

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Mesh is the distributed alternative to the central Controller — the
// paper's ongoing work on "distributed coordination algorithms across
// multiple island resource managers" (§5). Every island keeps a replica of
// the entity directory and addresses peer islands over direct transports,
// removing the controller hop and its serialization (see the scalability
// experiment for the quantitative comparison).
//
// The mesh shares the Controller's robustness surface: per-reason
// unroutable counters, a heartbeat/lease watchdog (EnableWatchdog, fed by
// agents' EnableHeartbeat beacons broadcast to every peer), and optional
// ack/retry links (EnableReliableLinks).
type Mesh struct {
	factory  func(from, to string) Transport
	nodes    map[string]*meshNode
	order    []string
	entities map[int]Entity // replicated directory

	routed     uint64
	unroutable [unrouteReasonCount]uint64

	// Reliable-link decoration (EnableReliableLinks).
	rsim *sim.Simulator
	rcfg ReliableConfig
	rel  bool
	eps  []*ReliableEndpoint

	// Heartbeat/lease watchdog state (EnableWatchdog).
	wsim          *sim.Simulator
	wcfg          WatchdogConfig
	leases        map[string]*lease
	heartbeats    uint64
	leaseExpiries uint64
	rejoins       uint64
}

// meshNode is one island's endpoint: its agent plus direct links to peers.
type meshNode struct {
	name  string
	agent *Agent
	links map[string]Transport // keyed by peer island
}

// NewMesh builds a mesh whose island-to-island transports come from
// factory (called once per ordered pair as islands join).
func NewMesh(factory func(from, to string) Transport) *Mesh {
	if factory == nil {
		panic("core: mesh with nil transport factory")
	}
	return &Mesh{
		factory:  factory,
		nodes:    make(map[string]*meshNode),
		entities: make(map[int]Entity),
		leases:   make(map[string]*lease),
	}
}

// EnableReliableLinks decorates every island-to-island link created from
// now on with a pair of ReliableEndpoints (sequence numbers, ack/retry,
// dedup/reorder delivery). Call it before AddIsland; joining islands first
// is a wiring bug and panics.
func (m *Mesh) EnableReliableLinks(s *sim.Simulator, cfg ReliableConfig) {
	if s == nil {
		panic("core: mesh reliable links need a simulator")
	}
	if len(m.nodes) > 0 {
		panic("core: EnableReliableLinks must precede AddIsland")
	}
	m.rsim = s
	m.rcfg = cfg
	m.rel = true
}

// AddIsland joins an island to the mesh, creating direct transports to and
// from every existing member, and returns its coordination agent.
func (m *Mesh) AddIsland(name string, act Actuator, opts ...AgentOption) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("core: mesh island with empty name")
	}
	if _, dup := m.nodes[name]; dup {
		return nil, fmt.Errorf("core: mesh island %q already joined", name)
	}
	node := &meshNode{name: name, links: make(map[string]Transport)}
	route := func(msg Message) { m.route(node, msg) }
	node.agent = NewAgent(name, nil, route, act, opts...)

	for _, peerName := range m.order {
		peer := m.nodes[peerName]
		out := m.factory(name, peerName)
		back := m.factory(peerName, name)
		if m.rel {
			// Each endpoint sends on its own outbound direction and
			// consumes the reverse one; acks ride the reverse direction.
			epOut := NewReliableEndpoint(m.rsim, name+"->"+peerName, out, back, m.rcfg)
			epOut.SetReceiver(m.receiver(node))
			epBack := NewReliableEndpoint(m.rsim, peerName+"->"+name, back, out, m.rcfg)
			epBack.SetReceiver(m.receiver(peer))
			m.eps = append(m.eps, epOut, epBack)
			node.links[peerName] = epOut
			peer.links[name] = epBack
			continue
		}
		out.SetReceiver(m.receiver(peer))
		node.links[peerName] = out
		back.SetReceiver(m.receiver(node))
		peer.links[name] = back
	}
	m.nodes[name] = node
	m.order = append(m.order, name)
	return node.agent, nil
}

// receiver returns the delivery function for messages arriving at node:
// heartbeats renew the sender's lease in the shared table before the
// node's agent sees them.
func (m *Mesh) receiver(node *meshNode) func(Message) {
	return func(msg Message) {
		if msg.Kind == KindHeartbeat {
			m.observeHeartbeat(msg.From)
		}
		node.agent.Deliver(msg)
	}
}

// RegisterEntity replicates an entity into every island's directory.
func (m *Mesh) RegisterEntity(e Entity) error {
	if _, dup := m.entities[e.ID]; dup {
		return fmt.Errorf("core: entity %d already registered", e.ID)
	}
	if e.Home != "" {
		if _, ok := m.nodes[e.Home]; !ok {
			return fmt.Errorf("core: entity %d names unknown home island %q", e.ID, e.Home)
		}
	}
	m.entities[e.ID] = e
	return nil
}

// Entity returns the replicated directory entry for id.
func (m *Mesh) Entity(id int) (Entity, bool) {
	e, ok := m.entities[id]
	return e, ok
}

// Islands returns the member island names, sorted.
func (m *Mesh) Islands() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	sort.Strings(out)
	return out
}

// Agent returns the named island's agent, or nil.
func (m *Mesh) Agent(name string) *Agent {
	if n, ok := m.nodes[name]; ok {
		return n.agent
	}
	return nil
}

// Endpoints returns the reliable endpoints decorating the mesh links, in
// creation order (empty unless EnableReliableLinks was used).
func (m *Mesh) Endpoints() []*ReliableEndpoint {
	out := make([]*ReliableEndpoint, len(m.eps))
	copy(out, m.eps)
	return out
}

// EnableWatchdog starts the lease watchdog over the shared lease table:
// islands that have heartbeated at least once move Alive -> Suspect ->
// Dead on silence, and a dead island's entities are quarantined until a
// fresh heartbeat rejoins it. It returns a stop function.
func (m *Mesh) EnableWatchdog(s *sim.Simulator, cfg WatchdogConfig) (stop func()) {
	if s == nil {
		panic("core: mesh watchdog needs a simulator")
	}
	cfg.applyDefaults()
	m.wsim = s
	m.wcfg = cfg
	return s.Ticker(cfg.CheckPeriod, m.watchdogSweep)
}

// watchdogSweep advances lease states (sorted iteration for determinism).
func (m *Mesh) watchdogSweep() {
	now := m.wsim.Now()
	for _, name := range m.Islands() {
		l, ok := m.leases[name]
		if !ok {
			continue // never heartbeated: not lease-managed
		}
		silence := now - l.lastHeard
		switch l.state {
		case LeaseAlive:
			if silence > m.wcfg.SuspectAfter {
				l.state = LeaseSuspect
				if m.wcfg.OnSuspect != nil {
					m.wcfg.OnSuspect(name)
				}
			}
		case LeaseSuspect:
			if silence > m.wcfg.DeadAfter {
				l.state = LeaseDead
				m.leaseExpiries++
				if m.wcfg.OnDead != nil {
					m.wcfg.OnDead(name)
				}
			}
		case LeaseDead:
			// Stays dead until a heartbeat rejoins it.
		}
	}
}

// observeHeartbeat renews the island's lease in the shared table.
func (m *Mesh) observeHeartbeat(island string) {
	m.heartbeats++
	if m.wsim == nil || island == "" {
		return
	}
	if _, ok := m.nodes[island]; !ok {
		return
	}
	l, ok := m.leases[island]
	if !ok {
		m.leases[island] = &lease{lastHeard: m.wsim.Now(), state: LeaseAlive}
		return
	}
	if l.state == LeaseDead {
		m.rejoins++
		if m.wcfg.OnRejoin != nil {
			m.wcfg.OnRejoin(island)
		}
	}
	l.state = LeaseAlive
	l.lastHeard = m.wsim.Now()
}

// LeaseOf returns the island's lease state; false if it never heartbeated.
func (m *Mesh) LeaseOf(island string) (LeaseState, bool) {
	if l, ok := m.leases[island]; ok {
		return l.state, true
	}
	return LeaseAlive, false
}

// leaseDead reports whether the island's lease has expired.
func (m *Mesh) leaseDead(island string) bool {
	l, ok := m.leases[island]
	return ok && l.state == LeaseDead
}

// Routed and Unroutable mirror the Controller's counters.
func (m *Mesh) Routed() uint64 { return m.routed }

// Unroutable returns the total messages dropped across every reason.
func (m *Mesh) Unroutable() uint64 {
	var total uint64
	for _, n := range m.unroutable {
		total += n
	}
	return total
}

// UnroutableFor returns messages dropped for one reason.
func (m *Mesh) UnroutableFor(r UnrouteReason) uint64 {
	if r < 0 || int(r) >= unrouteReasonCount {
		return 0
	}
	return m.unroutable[r]
}

// Heartbeats returns heartbeat messages observed across all links.
func (m *Mesh) Heartbeats() uint64 { return m.heartbeats }

// LeaseExpiries returns islands whose lease expired (suspect -> dead).
func (m *Mesh) LeaseExpiries() uint64 { return m.leaseExpiries }

// Rejoins returns dead islands that rejoined via a fresh heartbeat.
func (m *Mesh) Rejoins() uint64 { return m.rejoins }

// route sends msg from the originating node directly to the target island.
// An agent heartbeat (no target) is broadcast to every peer so each
// island's view of the sender stays fresh.
func (m *Mesh) route(from *meshNode, msg Message) {
	if msg.Kind == KindHeartbeat {
		peers := make([]string, 0, len(from.links))
		for p := range from.links {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			from.links[p].Send(msg)
		}
		return
	}
	link, ok := from.links[msg.Target]
	if !ok {
		// A message to the local island applies locally — islands may use
		// the same policy code regardless of where the entity lives.
		if msg.Target == from.name {
			m.routed++
			from.agent.Deliver(msg)
			return
		}
		m.unroutable[UnrouteUnknownTarget]++
		return
	}
	if m.leaseDead(msg.Target) {
		m.unroutable[UnrouteQuarantined]++
		return
	}
	e, ok := m.entities[msg.Entity]
	if !ok {
		m.unroutable[UnrouteUnknownEntity]++
		return
	}
	if e.Home != "" && m.leaseDead(e.Home) {
		m.unroutable[UnrouteQuarantined]++
		return
	}
	m.routed++
	link.Send(msg)
}
