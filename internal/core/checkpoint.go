package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/sim"
)

// Checkpoint encoding constants. The format borrows the flight recorder's
// idioms: a magic + version header, uvarint/varint fields, and a CRC32
// (IEEE) framed body so truncation and corruption are detected before any
// field is trusted. See docs/robustness.md for the layout.
const (
	ckptMagic = "CKP1"

	// CheckpointVersion is the current checkpoint format version;
	// DecodeCheckpoint rejects any other.
	CheckpointVersion uint16 = 1
)

// LeaseSnapshot is one island's lease state inside a checkpoint. Times are
// absolute sim-times; RestoreSnapshot re-bases lastHeard to the restore
// instant (a promoted controller grants a grace period rather than
// expiring every lease on arithmetic from a dead primary's clock) but
// preserves deadAt so rejoin hysteresis still sees the real outage length.
type LeaseSnapshot struct {
	Island    string
	State     LeaseState
	LastHeard sim.Time
	DeadAt    sim.Time
}

// EpochSnapshot is one island's actuation epoch inside a checkpoint.
type EpochSnapshot struct {
	Island string
	Epoch  uint64
}

// BaselineSnapshot is one entity's safe-harbor weight inside a checkpoint.
type BaselineSnapshot struct {
	Entity int
	Weight int
}

// CtrlCounters is the controller's counter block inside a checkpoint. A
// promoted controller restores them so run-level robustness reporting
// survives a failover (modulo the window between the last checkpoint and
// the crash, which is honestly lost).
type CtrlCounters struct {
	Routed         uint64
	Unroutable     [unrouteReasonCount]uint64
	ShedTunes      uint64
	BoostTunes     uint64
	Heartbeats     uint64
	StrayAcks      uint64
	LeaseExpiries  uint64
	Rejoins        uint64
	FlapSuppressed uint64
}

// Checkpoint is one versioned snapshot of the controller's coordination
// state: everything a standby needs to take over routing without replaying
// the run — the island registry, entity registry, lease table, actuation
// epochs, overload-control counters, actuation baselines, and the reliable
// endpoints' sequence cursors.
type Checkpoint struct {
	Seq  uint64   // monotonically increasing checkpoint number
	Term uint64   // election term the primary held when writing it
	T    sim.Time // sim-time of the snapshot

	Islands   []string
	Entities  []Entity
	Leases    []LeaseSnapshot
	Epochs    []EpochSnapshot
	Counters  CtrlCounters
	Baselines []BaselineSnapshot
	Endpoints []EndpointSeqState
}

// Snapshot captures the controller's coordination state. Seq, Term, T,
// Baselines, and Endpoints belong to the replication layer and are left for
// the caller (ControllerGroup) to fill. Every slice is sorted so the same
// state always encodes to the same bytes.
func (c *Controller) Snapshot() *Checkpoint {
	ck := &Checkpoint{
		Islands: c.Islands(),
		Counters: CtrlCounters{
			Routed:         c.routed,
			Unroutable:     c.unroutable,
			ShedTunes:      c.shedTunes,
			BoostTunes:     c.boostTunes,
			Heartbeats:     c.heartbeats,
			StrayAcks:      c.strayAcks,
			LeaseExpiries:  c.leaseExpiries,
			Rejoins:        c.rejoins,
			FlapSuppressed: c.flapSuppressed,
		},
	}
	ids := make([]int, 0, len(c.entities))
	for id := range c.entities {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ck.Entities = make([]Entity, 0, len(ids))
	for _, id := range ids {
		ck.Entities = append(ck.Entities, c.entities[id])
	}
	for _, name := range ck.Islands {
		if l, ok := c.leases[name]; ok {
			ck.Leases = append(ck.Leases, LeaseSnapshot{
				Island: name, State: l.state, LastHeard: l.lastHeard, DeadAt: l.deadAt,
			})
		}
		if ep, ok := c.epochs[name]; ok {
			ck.Epochs = append(ck.Epochs, EpochSnapshot{Island: name, Epoch: ep})
		}
	}
	return ck
}

// RestoreSnapshot loads checkpointed state into a freshly built controller
// (islands and entities must already be registered from the replicated
// wiring registry; the checkpoint's own lists are used for validation by
// the caller). Lease lastHeard times are re-based to now — a grace period,
// not amnesia: state and deadAt are preserved, so a dead island stays
// quarantined and its eventual rejoin still clears hysteresis.
func (c *Controller) RestoreSnapshot(ck *Checkpoint, now sim.Time) {
	c.routed = ck.Counters.Routed
	c.unroutable = ck.Counters.Unroutable
	c.shedTunes = ck.Counters.ShedTunes
	c.boostTunes = ck.Counters.BoostTunes
	c.heartbeats = ck.Counters.Heartbeats
	c.strayAcks = ck.Counters.StrayAcks
	c.leaseExpiries = ck.Counters.LeaseExpiries
	c.rejoins = ck.Counters.Rejoins
	c.flapSuppressed = ck.Counters.FlapSuppressed
	for _, ls := range ck.Leases {
		c.leases[ls.Island] = &lease{lastHeard: now, state: ls.State, deadAt: ls.DeadAt}
	}
	for _, es := range ck.Epochs {
		c.epochs[es.Island] = es.Epoch
	}
}

// AppendCheckpoint appends ck's encoding to buf and returns the extended
// slice. Layout: magic, version (LE uint16), then a uvarint body length,
// CRC32-IEEE of the body (LE uint32), and the body itself — uvarint/varint
// fields in struct order, strings length-prefixed.
func AppendCheckpoint(buf []byte, ck *Checkpoint) []byte {
	body := appendCheckpointBody(nil, ck)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, CheckpointVersion)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

func appendCheckpointBody(buf []byte, ck *Checkpoint) []byte {
	buf = binary.AppendUvarint(buf, ck.Seq)
	buf = binary.AppendUvarint(buf, ck.Term)
	buf = binary.AppendVarint(buf, int64(ck.T))

	buf = binary.AppendUvarint(buf, uint64(len(ck.Islands)))
	for _, n := range ck.Islands {
		buf = appendString(buf, n)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Entities)))
	for _, e := range ck.Entities {
		buf = binary.AppendVarint(buf, int64(e.ID))
		buf = appendString(buf, e.Name)
		buf = appendString(buf, e.Home)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Leases)))
	for _, l := range ck.Leases {
		buf = appendString(buf, l.Island)
		buf = binary.AppendUvarint(buf, uint64(l.State))
		buf = binary.AppendVarint(buf, int64(l.LastHeard))
		buf = binary.AppendVarint(buf, int64(l.DeadAt))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Epochs)))
	for _, e := range ck.Epochs {
		buf = appendString(buf, e.Island)
		buf = binary.AppendUvarint(buf, e.Epoch)
	}
	buf = binary.AppendUvarint(buf, ck.Counters.Routed)
	for _, u := range ck.Counters.Unroutable {
		buf = binary.AppendUvarint(buf, u)
	}
	buf = binary.AppendUvarint(buf, ck.Counters.ShedTunes)
	buf = binary.AppendUvarint(buf, ck.Counters.BoostTunes)
	buf = binary.AppendUvarint(buf, ck.Counters.Heartbeats)
	buf = binary.AppendUvarint(buf, ck.Counters.StrayAcks)
	buf = binary.AppendUvarint(buf, ck.Counters.LeaseExpiries)
	buf = binary.AppendUvarint(buf, ck.Counters.Rejoins)
	buf = binary.AppendUvarint(buf, ck.Counters.FlapSuppressed)
	buf = binary.AppendUvarint(buf, uint64(len(ck.Baselines)))
	for _, b := range ck.Baselines {
		buf = binary.AppendVarint(buf, int64(b.Entity))
		buf = binary.AppendVarint(buf, int64(b.Weight))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Endpoints)))
	for _, ep := range ck.Endpoints {
		buf = appendString(buf, ep.Name)
		buf = binary.AppendUvarint(buf, ep.NextSeq)
		buf = binary.AppendUvarint(buf, ep.Floor)
		buf = binary.AppendUvarint(buf, ep.Expected)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ckptReader is a bounds-checked cursor over an encoded checkpoint body.
type ckptReader struct {
	buf []byte
	err error
}

func (r *ckptReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: checkpoint truncated or corrupt reading %s", what)
	}
}

func (r *ckptReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *ckptReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *ckptReader) string(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail(what)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// count reads a collection length, rejecting values that could not fit in
// the remaining bytes (each element costs at least one byte) so corrupt
// lengths fail fast instead of driving huge allocations.
func (r *ckptReader) count(what string) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

// DecodeCheckpoint parses an encoded checkpoint, verifying magic, version,
// framing, and CRC before any field is trusted.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+2 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("core: not a checkpoint (bad magic)")
	}
	data = data[len(ckptMagic):]
	version := binary.LittleEndian.Uint16(data)
	if version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", version, CheckpointVersion)
	}
	data = data[2:]
	bodyLen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: checkpoint truncated reading body length")
	}
	data = data[n:]
	if len(data) < 4 {
		return nil, fmt.Errorf("core: checkpoint truncated reading CRC")
	}
	wantCRC := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if bodyLen != uint64(len(data)) {
		return nil, fmt.Errorf("core: checkpoint body length %d, have %d bytes", bodyLen, len(data))
	}
	if got := crc32.ChecksumIEEE(data); got != wantCRC {
		return nil, fmt.Errorf("core: checkpoint CRC mismatch (want %08x, got %08x)", wantCRC, got)
	}

	r := &ckptReader{buf: data}
	ck := &Checkpoint{
		Seq:  r.uvarint("seq"),
		Term: r.uvarint("term"),
		T:    sim.Time(r.varint("time")),
	}
	for i, n := 0, r.count("islands"); i < n && r.err == nil; i++ {
		ck.Islands = append(ck.Islands, r.string("island"))
	}
	for i, n := 0, r.count("entities"); i < n && r.err == nil; i++ {
		ck.Entities = append(ck.Entities, Entity{
			ID:   int(r.varint("entity id")),
			Name: r.string("entity name"),
			Home: r.string("entity home"),
		})
	}
	for i, n := 0, r.count("leases"); i < n && r.err == nil; i++ {
		ls := LeaseSnapshot{
			Island:    r.string("lease island"),
			State:     LeaseState(r.uvarint("lease state")),
			LastHeard: sim.Time(r.varint("lease lastHeard")),
			DeadAt:    sim.Time(r.varint("lease deadAt")),
		}
		if r.err == nil && (ls.State < LeaseAlive || ls.State > LeaseDead) {
			return nil, fmt.Errorf("core: checkpoint lease %q has unknown state %d", ls.Island, int(ls.State))
		}
		ck.Leases = append(ck.Leases, ls)
	}
	for i, n := 0, r.count("epochs"); i < n && r.err == nil; i++ {
		ck.Epochs = append(ck.Epochs, EpochSnapshot{
			Island: r.string("epoch island"),
			Epoch:  r.uvarint("epoch"),
		})
	}
	ck.Counters.Routed = r.uvarint("routed")
	for i := range ck.Counters.Unroutable {
		ck.Counters.Unroutable[i] = r.uvarint("unroutable")
	}
	ck.Counters.ShedTunes = r.uvarint("shedTunes")
	ck.Counters.BoostTunes = r.uvarint("boostTunes")
	ck.Counters.Heartbeats = r.uvarint("heartbeats")
	ck.Counters.StrayAcks = r.uvarint("strayAcks")
	ck.Counters.LeaseExpiries = r.uvarint("leaseExpiries")
	ck.Counters.Rejoins = r.uvarint("rejoins")
	ck.Counters.FlapSuppressed = r.uvarint("flapSuppressed")
	for i, n := 0, r.count("baselines"); i < n && r.err == nil; i++ {
		ck.Baselines = append(ck.Baselines, BaselineSnapshot{
			Entity: int(r.varint("baseline entity")),
			Weight: int(r.varint("baseline weight")),
		})
	}
	for i, n := 0, r.count("endpoints"); i < n && r.err == nil; i++ {
		ck.Endpoints = append(ck.Endpoints, EndpointSeqState{
			Name:     r.string("endpoint name"),
			NextSeq:  r.uvarint("endpoint nextSeq"),
			Floor:    r.uvarint("endpoint floor"),
			Expected: r.uvarint("endpoint expected"),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("core: checkpoint has %d trailing bytes", len(r.buf))
	}
	return ck, nil
}
