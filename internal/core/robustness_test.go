package core

import (
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/xen"
)

// starTestbed wires a controller plus one remote agent over SimTransports —
// the minimal star topology for liveness tests.
type starTestbed struct {
	s    *sim.Simulator
	ctrl *Controller
	act  *fakeActuator
	ag   *Agent
}

func newStarTestbed(t *testing.T) *starTestbed {
	t.Helper()
	s := sim.New(1)
	ctrl := NewController()
	up := NewSimTransport(s, 100*sim.Microsecond)
	down := NewSimTransport(s, 100*sim.Microsecond)
	up.SetReceiver(ctrl.Route)
	act := &fakeActuator{}
	ag := NewAgent("ixp", up, nil, act)
	down.SetReceiver(ag.Deliver)
	if err := ctrl.RegisterIsland(IslandHandle{Name: "ixp", Downlink: down}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterEntity(Entity{ID: 1, Home: "ixp"}); err != nil {
		t.Fatal(err)
	}
	return &starTestbed{s: s, ctrl: ctrl, act: act, ag: ag}
}

func TestWatchdogLeaseLifecycle(t *testing.T) {
	tb := newStarTestbed(t)
	var suspects, deads, rejoins []string
	tb.ag.EnableHeartbeat(tb.s, 10*sim.Millisecond)
	tb.ctrl.EnableWatchdog(tb.s, WatchdogConfig{
		CheckPeriod:  10 * sim.Millisecond,
		SuspectAfter: 30 * sim.Millisecond,
		DeadAfter:    80 * sim.Millisecond,
		OnSuspect:    func(n string) { suspects = append(suspects, n) },
		OnDead:       func(n string) { deads = append(deads, n) },
		OnRejoin:     func(n string) { rejoins = append(rejoins, n) },
	})

	// Crash the island at 100ms, restart at 300ms.
	tb.s.At(100*sim.Millisecond, func() { tb.ag.SetCrashed(true) })
	tb.s.At(300*sim.Millisecond, func() { tb.ag.SetCrashed(false) })

	var stateAt150, stateAt250, stateAt380 LeaseState
	tb.s.At(150*sim.Millisecond, func() { stateAt150, _ = tb.ctrl.LeaseOf("ixp") })
	tb.s.At(250*sim.Millisecond, func() { stateAt250, _ = tb.ctrl.LeaseOf("ixp") })
	// Route into the dead island: must be quarantined, not delivered.
	tb.s.At(260*sim.Millisecond, func() {
		tb.ctrl.Route(Message{Kind: KindTune, Target: "ixp", Entity: 1, Delta: 5})
	})
	tb.s.At(380*sim.Millisecond, func() {
		stateAt380, _ = tb.ctrl.LeaseOf("ixp")
		tb.ctrl.Route(Message{Kind: KindTune, Target: "ixp", Entity: 1, Delta: 9})
	})
	tb.s.RunUntil(400 * sim.Millisecond)

	if stateAt150 != LeaseSuspect {
		t.Errorf("state at 150ms = %v, want suspect", stateAt150)
	}
	if stateAt250 != LeaseDead {
		t.Errorf("state at 250ms = %v, want dead", stateAt250)
	}
	if stateAt380 != LeaseAlive {
		t.Errorf("state at 380ms = %v, want alive after rejoin", stateAt380)
	}
	if len(suspects) == 0 || len(deads) != 1 || len(rejoins) != 1 {
		t.Errorf("hooks: suspects=%v deads=%v rejoins=%v", suspects, deads, rejoins)
	}
	if tb.ctrl.LeaseExpiries() != 1 || tb.ctrl.Rejoins() != 1 {
		t.Errorf("LeaseExpiries=%d Rejoins=%d, want 1/1", tb.ctrl.LeaseExpiries(), tb.ctrl.Rejoins())
	}
	if got := tb.ctrl.UnroutableFor(UnrouteQuarantined); got != 1 {
		t.Errorf("quarantined drops = %d, want 1", got)
	}
	// The post-rejoin tune was delivered; the quarantined one never was.
	if len(tb.act.tunes) != 1 || tb.act.tunes[0] != 9 {
		t.Errorf("applied tunes = %v, want [9]", tb.act.tunes)
	}
	if tb.ag.Stats().CrashDrops == 0 {
		t.Error("no inbound drops recorded during the crash window")
	}
	if tb.ctrl.Heartbeats() == 0 {
		t.Error("controller observed no heartbeats")
	}
}

func TestAgentDegradesAndRecovers(t *testing.T) {
	s := sim.New(1)
	ctrl := NewController()
	up := NewSimTransport(s, 100*sim.Microsecond)
	down := NewSimTransport(s, 100*sim.Microsecond)
	// Partition the downlink 100ms..300ms: the agent stops seeing
	// controller pings, so its own monitor must declare the uplink dead
	// and silence policy output until pings resume.
	inj := pcie.NewInjector(pcie.FaultPlan{Partitions: []pcie.Partition{{
		Start: 100 * sim.Millisecond, Duration: 200 * sim.Millisecond,
	}}})
	down.SetFaults(inj.Channel("down"))
	up.SetReceiver(ctrl.Route)
	ag := NewAgent("ixp", up, nil, &fakeActuator{})
	down.SetReceiver(ag.Deliver)
	if err := ctrl.RegisterIsland(IslandHandle{Name: "ixp", Downlink: down}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterEntity(Entity{ID: 1, Home: "ixp"}); err != nil {
		t.Fatal(err)
	}
	ag.EnableHeartbeat(s, 10*sim.Millisecond)
	ctrl.EnableWatchdog(s, WatchdogConfig{CheckPeriod: 10 * sim.Millisecond})
	ag.EnableDegradation(s, DegradeConfig{
		CheckPeriod:  10 * sim.Millisecond,
		LeaseTimeout: 50 * sim.Millisecond,
	})

	var degradedAt200, degradedAt390 bool
	var sendWhileDegraded bool
	s.At(200*sim.Millisecond, func() {
		degradedAt200 = ag.Degraded()
		sendWhileDegraded = ag.SendTune("x86", 1, 2)
	})
	s.At(390*sim.Millisecond, func() { degradedAt390 = ag.Degraded() })
	s.RunUntil(400 * sim.Millisecond)

	if !degradedAt200 {
		t.Error("agent not degraded while pings were partitioned away")
	}
	if degradedAt390 {
		t.Error("agent still degraded after pings resumed")
	}
	st := ag.Stats()
	if st.Degradations != 1 || st.Recoveries != 1 {
		t.Errorf("Degradations=%d Recoveries=%d, want 1/1", st.Degradations, st.Recoveries)
	}
	if sendWhileDegraded {
		t.Error("send succeeded while degraded")
	}
	if st.SuppressedDegraded == 0 {
		t.Error("no suppressed-degraded count")
	}
	if st.HeartbeatsSeen == 0 {
		t.Error("agent never saw a controller ping")
	}
}

func TestCrashedAgentSuppressesSends(t *testing.T) {
	tb := newStarTestbed(t)
	tb.ag.SetCrashed(true)
	if tb.ag.SendTune("x86", 1, 1) {
		t.Fatal("crashed agent sent a tune")
	}
	if tb.ag.SendTrigger("x86", 1) {
		t.Fatal("crashed agent sent a trigger")
	}
	if got := tb.ag.Stats().SuppressedCrashed; got != 2 {
		t.Fatalf("SuppressedCrashed = %d, want 2", got)
	}
	if !tb.ag.Crashed() {
		t.Fatal("Crashed() false")
	}
	tb.ag.SetCrashed(false)
	if !tb.ag.SendTune("x86", 1, 1) {
		t.Fatal("restarted agent cannot send")
	}
}

func TestControllerPerReasonUnroutable(t *testing.T) {
	c := NewController()
	var local []Message
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) { local = append(local, m) }}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 1, Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	c.Route(Message{Kind: KindTune, Target: "ghost", Entity: 1})
	c.Route(Message{Kind: KindTune, Target: "ghost", Entity: 1})
	c.Route(Message{Kind: KindTune, Target: "x86", Entity: 99})
	if got := c.UnroutableFor(UnrouteUnknownTarget); got != 2 {
		t.Errorf("unknown-target = %d, want 2", got)
	}
	if got := c.UnroutableFor(UnrouteUnknownEntity); got != 1 {
		t.Errorf("unknown-entity = %d, want 1", got)
	}
	if got := c.UnroutableFor(UnrouteQuarantined); got != 0 {
		t.Errorf("quarantined = %d, want 0", got)
	}
	if c.Unroutable() != 3 {
		t.Errorf("Unroutable = %d, want sum 3", c.Unroutable())
	}
	if c.UnroutableFor(UnrouteReason(77)) != 0 {
		t.Error("out-of-range reason nonzero")
	}
	rows := c.UnroutableByReason()
	if len(rows) != 3 || rows[0].Reason != UnrouteUnknownTarget || rows[0].Count != 2 ||
		rows[1].Reason != UnrouteUnknownEntity || rows[1].Count != 1 ||
		rows[2].Reason != UnrouteQuarantined || rows[2].Count != 0 {
		t.Errorf("UnroutableByReason = %v", rows)
	}
	names := map[string]bool{}
	for _, r := range UnrouteReasons() {
		n := r.String()
		if n == "" || names[n] {
			t.Errorf("reason %d bad name %q", int(r), n)
		}
		names[n] = true
	}
	if UnrouteReason(9).String() == "" {
		t.Error("unknown reason has empty name")
	}
	if len(local) != 0 {
		t.Errorf("unroutable messages leaked: %v", local)
	}
}

func TestControllerConsumesProtocolKinds(t *testing.T) {
	c := NewController()
	delivered := 0
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(Message) { delivered++ }}); err != nil {
		t.Fatal(err)
	}
	c.Route(Message{Kind: KindAck, Target: "x86", Seq: 1, Ack: 1})
	c.Route(Message{Kind: KindHeartbeat, From: "x86"})
	if delivered != 0 {
		t.Fatal("protocol message routed to an island")
	}
	if c.StrayAcks() != 1 {
		t.Fatalf("StrayAcks = %d, want 1", c.StrayAcks())
	}
	if c.Heartbeats() != 1 {
		t.Fatalf("Heartbeats = %d, want 1", c.Heartbeats())
	}
	if c.Unroutable() != 0 {
		t.Fatalf("protocol messages counted unroutable: %d", c.Unroutable())
	}
	// Lease states: an island that never heartbeated is reported alive
	// without being lease-managed.
	if st, managed := c.LeaseOf("x86"); st != LeaseAlive || managed {
		t.Fatalf("LeaseOf = %v managed=%v", st, managed)
	}
	names := map[string]bool{}
	for _, st := range []LeaseState{LeaseAlive, LeaseSuspect, LeaseDead} {
		n := st.String()
		if n == "" || names[n] {
			t.Errorf("state %d bad name %q", int(st), n)
		}
		names[n] = true
	}
	if LeaseState(7).String() == "" {
		t.Error("unknown state has empty name")
	}
}

func TestX86ActuatorBaselineRevert(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	d := hv.CreateDomain("vm", 256, 1)
	hv.Start()
	ctl := xen.NewCtl(hv)
	x := NewX86Actuator(ctl)
	x.MinWeight = 64
	x.MaxWeight = 2048
	x.SetBaseline(d.ID(), 256)
	if err := x.ApplyTune(d.ID(), +300); err != nil {
		t.Fatal(err)
	}
	if w, _ := ctl.Weight(d.ID()); w != 556 {
		t.Fatalf("weight after tune = %d, want 556", w)
	}
	x.RevertToBaseline()
	if w, _ := ctl.Weight(d.ID()); w != 256 {
		t.Fatalf("weight after revert = %d, want baseline 256", w)
	}
	if x.Reverts() != 1 {
		t.Fatalf("Reverts = %d, want 1", x.Reverts())
	}
	// Load-tracking mode: revert clears accumulated mass too.
	x2 := NewX86Actuator(ctl)
	x2.MinWeight = 64
	x2.MaxWeight = 2048
	x2.EnableLoadTracking(s, 100*sim.Millisecond, 10*sim.Millisecond)
	x2.SetBaseline(d.ID(), 256)
	if err := x2.ApplyTune(d.ID(), 500); err != nil {
		t.Fatal(err)
	}
	if w, _ := ctl.Weight(d.ID()); w != 564 {
		t.Fatalf("tracked weight = %d, want 564", w)
	}
	x2.RevertToBaseline()
	if w, _ := ctl.Weight(d.ID()); w != 256 {
		t.Fatalf("tracked weight after revert = %d, want 256", w)
	}
}
