package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Actuator translates incoming coordination messages into an island's
// native resource-management actions. The x86 island's actuator adjusts
// Xen credit weights and boosts runqueue positions; the IXP island's
// actuator adjusts dequeue-thread allocations.
type Actuator interface {
	// ApplyTune translates a Tune delta for the entity into the island's
	// scheduler terms, returning an error if the entity is unknown or the
	// adjustment is not applicable.
	ApplyTune(entity, delta int) error
	// ApplyTrigger grants the entity resources as soon as possible.
	ApplyTrigger(entity int) error
}

// AgentStats counts an agent's coordination traffic.
type AgentStats struct {
	TunesSent        uint64
	TriggersSent     uint64
	TunesApplied     uint64
	TriggersApplied  uint64
	ApplyErrors      uint64
	RateLimitDropped uint64
}

// Agent is one island's coordination endpoint: it emits Tune/Trigger
// requests toward remote islands through its uplink, and applies requests
// arriving from remote islands to its local resource manager through the
// Actuator.
type Agent struct {
	name     string
	uplink   Transport // toward the controller; nil when co-located
	route    func(Message)
	actuator Actuator
	limiter  *RateLimiter
	stats    AgentStats

	trace  func(Message) // optional message tap for tests/harness
	tracer *trace.Tracer // optional structured-event trace
}

// AgentOption customizes an Agent.
type AgentOption func(*Agent)

// WithRateLimit drops outbound messages for an entity when they would
// exceed one per minInterval (per entity, per kind). The paper applies
// coordination per request; rate limiting is the practical damper for
// oscillating request streams discussed in §3.1.
func WithRateLimit(s *sim.Simulator, minInterval sim.Time) AgentOption {
	return func(a *Agent) { a.limiter = NewRateLimiter(s, minInterval) }
}

// WithTrace installs fn as a tap on every message the agent sends or
// applies.
func WithTrace(fn func(Message)) AgentOption {
	return func(a *Agent) { a.trace = fn }
}

// WithTracer records every sent and applied message into a structured
// event trace (category CatCoord).
func WithTracer(t *trace.Tracer) AgentOption {
	return func(a *Agent) { a.tracer = t }
}

// NewAgent creates an island agent. For remote islands, uplink carries
// messages to the controller and its reverse direction must be wired to
// Deliver. For the island co-located with the controller, pass a nil
// uplink and a route function (typically Controller.Route).
func NewAgent(name string, uplink Transport, route func(Message), actuator Actuator, opts ...AgentOption) *Agent {
	if name == "" {
		panic("core: agent with empty name")
	}
	if (uplink == nil) == (route == nil) {
		panic(fmt.Sprintf("core: agent %q must have exactly one of uplink and route", name))
	}
	a := &Agent{name: name, uplink: uplink, route: route, actuator: actuator}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Name returns the agent's island name.
func (a *Agent) Name() string { return a.name }

// Stats returns a snapshot of the agent's coordination counters.
func (a *Agent) Stats() AgentStats { return a.stats }

// SendTune emits a Tune request: adjust entity's resources in the target
// island by delta (positive = increase). Returns false if rate-limited.
func (a *Agent) SendTune(target string, entity, delta int) bool {
	return a.send(Message{Kind: KindTune, From: a.name, Target: target, Entity: entity, Delta: delta})
}

// SendTrigger emits a Trigger request: allocate resources to entity in the
// target island as soon as possible. Returns false if rate-limited.
func (a *Agent) SendTrigger(target string, entity int) bool {
	return a.send(Message{Kind: KindTrigger, From: a.name, Target: target, Entity: entity})
}

func (a *Agent) send(msg Message) bool {
	if a.limiter != nil && !a.limiter.Allow(msg.Kind, msg.Entity) {
		a.stats.RateLimitDropped++
		return false
	}
	switch msg.Kind {
	case KindTune:
		a.stats.TunesSent++
	case KindTrigger:
		a.stats.TriggersSent++
	case KindRegister:
		// Registration is controller-driven; agents forward it uncounted.
	}
	if a.trace != nil {
		a.trace(msg)
	}
	if a.tracer.Enabled(trace.CatCoord) {
		a.tracer.Emit(trace.CatCoord, "send %v", msg)
	}
	if a.uplink != nil {
		a.uplink.Send(msg)
	} else {
		a.route(msg)
	}
	return true
}

// Deliver applies an inbound coordination message to the local resource
// manager. Wire it as the receiver of the island's downlink (or pass it as
// IslandHandle.Local for co-located islands).
func (a *Agent) Deliver(msg Message) {
	if a.actuator == nil {
		a.stats.ApplyErrors++
		return
	}
	if a.trace != nil {
		a.trace(msg)
	}
	if a.tracer.Enabled(trace.CatCoord) {
		a.tracer.Emit(trace.CatCoord, "apply %v", msg)
	}
	var err error
	switch msg.Kind {
	case KindTune:
		err = a.actuator.ApplyTune(msg.Entity, msg.Delta)
		if err == nil {
			a.stats.TunesApplied++
		}
	case KindTrigger:
		err = a.actuator.ApplyTrigger(msg.Entity)
		if err == nil {
			a.stats.TriggersApplied++
		}
	default:
		err = fmt.Errorf("core: agent %q cannot apply %v", a.name, msg.Kind)
	}
	if err != nil {
		a.stats.ApplyErrors++
	}
}
