package core

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Actuator translates incoming coordination messages into an island's
// native resource-management actions. The x86 island's actuator adjusts
// Xen credit weights and boosts runqueue positions; the IXP island's
// actuator adjusts dequeue-thread allocations.
type Actuator interface {
	// ApplyTune translates a Tune delta for the entity into the island's
	// scheduler terms, returning an error if the entity is unknown or the
	// adjustment is not applicable.
	ApplyTune(entity, delta int) error
	// ApplyTrigger grants the entity resources as soon as possible.
	ApplyTrigger(entity int) error
}

// ShedActuator is optionally implemented by actuators that can adjust an
// island's admission shed rate (KindShed). Actuators without it reject
// shed adjustments as apply errors, so adding the interface never breaks
// existing implementations.
type ShedActuator interface {
	// ApplyShed moves the entity's shed rate by delta units (positive =
	// shed more traffic before it reaches downstream islands).
	ApplyShed(entity, delta int) error
}

// AgentStats counts an agent's coordination traffic.
type AgentStats struct {
	TunesSent        uint64
	TriggersSent     uint64
	ShedsSent        uint64
	TunesApplied     uint64
	TriggersApplied  uint64
	ShedsApplied     uint64
	ApplyErrors      uint64
	RateLimitDropped uint64

	// Robustness counters.
	HeartbeatsSent     uint64
	HeartbeatsSeen     uint64 // controller pings observed on the downlink
	SuppressedDegraded uint64 // outbound messages withheld while degraded
	SuppressedCrashed  uint64 // outbound messages withheld while crashed
	CrashDrops         uint64 // inbound messages dropped while crashed
	Degradations       uint64 // healthy -> degraded transitions
	Recoveries         uint64 // degraded -> healthy transitions
}

// DegradeConfig parameterizes an agent's uplink-health monitor
// (EnableDegradation).
type DegradeConfig struct {
	// CheckPeriod is the monitor interval (default 250ms).
	CheckPeriod sim.Time
	// LeaseTimeout degrades the agent after this much silence from the
	// controller (no pings seen on the downlink; default 4x CheckPeriod).
	LeaseTimeout sim.Time

	// OnDegrade/OnRecover are optional transition hooks (the platform uses
	// them to revert actuators to baseline after a hold-down).
	OnDegrade func()
	OnRecover func()
}

func (c *DegradeConfig) applyDefaults() {
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 250 * sim.Millisecond
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 4 * c.CheckPeriod
	}
}

// Agent is one island's coordination endpoint: it emits Tune/Trigger
// requests toward remote islands through its uplink, and applies requests
// arriving from remote islands to its local resource manager through the
// Actuator.
type Agent struct {
	name     string
	uplink   Transport // toward the controller; nil when co-located
	route    func(Message)
	actuator Actuator
	limiter  *RateLimiter
	stats    AgentStats

	trace  func(Message) // optional message tap for tests/harness
	tracer *trace.Tracer // optional structured-event trace

	flight      *flight.Recorder  // optional flight recorder
	fsim        *sim.Simulator    // timestamp source for flight events
	routeLabels map[string]string // interned "name>target" flight labels

	// actEpoch counts actuation messages (Tune/Trigger/Shed) the agent
	// accepted for its actuator — the island's authoritative progress mark
	// for failover's anti-entropy reconciliation. Messages dropped in a
	// crash window do not advance it, which is exactly how a recovered
	// controller detects decisions the island never saw.
	actEpoch uint64

	// Robustness state.
	crashed   bool // island crash window: nothing in, nothing out
	degraded  bool // uplink believed dead: policies silenced
	dsim      *sim.Simulator
	dcfg      DegradeConfig
	lastHeard sim.Time // last controller ping on the downlink
	health    LinkHealth
}

// AgentOption customizes an Agent.
type AgentOption func(*Agent)

// WithRateLimit drops outbound messages for an entity when they would
// exceed one per minInterval (per entity, per kind). The paper applies
// coordination per request; rate limiting is the practical damper for
// oscillating request streams discussed in §3.1.
func WithRateLimit(s *sim.Simulator, minInterval sim.Time) AgentOption {
	return func(a *Agent) { a.limiter = NewRateLimiter(s, minInterval) }
}

// WithTokenBucket rate-limits outbound messages per (kind, entity) with a
// token bucket of the given burst: damped, not starved — an overload
// episode may emit a burst of Triggers before the refill interval gates
// the steady state.
func WithTokenBucket(s *sim.Simulator, refill sim.Time, burst int) AgentOption {
	return func(a *Agent) { a.limiter = NewTokenBucketRateLimiter(s, refill, burst) }
}

// SetLimiter installs (or replaces) the agent's outbound rate limiter
// after construction; nil removes it.
func (a *Agent) SetLimiter(l *RateLimiter) { a.limiter = l }

// WithTrace installs fn as a tap on every message the agent sends or
// applies.
func WithTrace(fn func(Message)) AgentOption {
	return func(a *Agent) { a.trace = fn }
}

// WithTracer records every sent and applied message into a structured
// event trace (category CatCoord).
func WithTracer(t *trace.Tracer) AgentOption {
	return func(a *Agent) { a.tracer = t }
}

// NewAgent creates an island agent. For remote islands, uplink carries
// messages to the controller and its reverse direction must be wired to
// Deliver. For the island co-located with the controller, pass a nil
// uplink and a route function (typically Controller.Route).
func NewAgent(name string, uplink Transport, route func(Message), actuator Actuator, opts ...AgentOption) *Agent {
	if name == "" {
		panic("core: agent with empty name")
	}
	if (uplink == nil) == (route == nil) {
		panic(fmt.Sprintf("core: agent %q must have exactly one of uplink and route", name))
	}
	a := &Agent{name: name, uplink: uplink, route: route, actuator: actuator}
	if h, ok := uplink.(LinkHealth); ok {
		a.health = h
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// SetFlightRecorder taps every sent and applied coordination message into
// the flight recorder (nil disables; the disabled cost is one branch per
// site).
func (a *Agent) SetFlightRecorder(s *sim.Simulator, r *flight.Recorder) {
	a.fsim, a.flight = s, r
}

// routeLabel interns the "name>target" flight label so steady-state sends
// do not allocate a fresh string per message.
func (a *Agent) routeLabel(target string) string {
	l, ok := a.routeLabels[target]
	if !ok {
		if a.routeLabels == nil {
			a.routeLabels = make(map[string]string)
		}
		l = a.name + ">" + target
		a.routeLabels[target] = l
	}
	return l
}

// Name returns the agent's island name.
func (a *Agent) Name() string { return a.name }

// Stats returns a snapshot of the agent's coordination counters.
func (a *Agent) Stats() AgentStats { return a.stats }

// EnableHeartbeat starts emitting liveness beacons toward the controller
// every interval. Heartbeats bypass the rate limiter and degradation
// suppression (they are how the lease recovers) but are silenced during a
// crash window. It returns a stop function cancelling the ticker.
func (a *Agent) EnableHeartbeat(s *sim.Simulator, interval sim.Time) (stop func()) {
	if s == nil {
		panic(fmt.Sprintf("core: agent %q heartbeat needs a simulator", a.name))
	}
	if interval <= 0 {
		panic(fmt.Sprintf("core: agent %q heartbeat interval %v must be positive", a.name, interval))
	}
	return s.Ticker(interval, func() {
		if a.crashed {
			return
		}
		a.stats.HeartbeatsSent++
		msg := Message{Kind: KindHeartbeat, From: a.name}
		if a.uplink != nil {
			a.uplink.Send(msg)
		} else {
			a.route(msg)
		}
	})
}

// EnableDegradation starts the uplink-health monitor: the agent degrades
// (policies silenced, actuators revertible to baseline via OnDegrade) when
// the controller goes silent past LeaseTimeout or the uplink's LinkHealth
// reports down, and recovers as soon as either signal returns. It returns a
// stop function cancelling the monitor.
func (a *Agent) EnableDegradation(s *sim.Simulator, cfg DegradeConfig) (stop func()) {
	if s == nil {
		panic(fmt.Sprintf("core: agent %q degradation monitor needs a simulator", a.name))
	}
	cfg.applyDefaults()
	a.dsim = s
	a.dcfg = cfg
	a.lastHeard = s.Now()
	return s.Ticker(cfg.CheckPeriod, a.healthCheck)
}

// healthCheck evaluates the uplink-health signals and transitions the
// degraded flag.
func (a *Agent) healthCheck() {
	silent := a.dsim.Now()-a.lastHeard > a.dcfg.LeaseTimeout
	linkDown := a.health != nil && !a.health.Up()
	a.setDegraded(silent || linkDown)
}

// setDegraded transitions the degradation state and fires hooks.
func (a *Agent) setDegraded(d bool) {
	if a.degraded == d {
		return
	}
	a.degraded = d
	if d {
		a.stats.Degradations++
		if a.tracer.Enabled(trace.CatCoord) {
			a.tracer.Emit(trace.CatCoord, "agent %s degraded: uplink believed dead", a.name)
		}
		if a.dcfg.OnDegrade != nil {
			a.dcfg.OnDegrade()
		}
		return
	}
	a.stats.Recoveries++
	if a.tracer.Enabled(trace.CatCoord) {
		a.tracer.Emit(trace.CatCoord, "agent %s recovered: uplink healthy", a.name)
	}
	if a.dcfg.OnRecover != nil {
		a.dcfg.OnRecover()
	}
}

// Degraded reports whether the agent currently believes its uplink dead.
func (a *Agent) Degraded() bool { return a.degraded }

// SetCrashed simulates an island crash window: while crashed the agent
// sends nothing (heartbeats included, so its controller lease expires) and
// drops everything inbound. Clearing it models the island restarting.
func (a *Agent) SetCrashed(crashed bool) { a.crashed = crashed }

// Crashed reports whether the agent is inside a crash window.
func (a *Agent) Crashed() bool { return a.crashed }

// ActuationEpoch returns how many actuation messages (Tune/Trigger/Shed)
// the agent has accepted for its actuator — the island's authoritative
// side of failover's anti-entropy epoch comparison.
func (a *Agent) ActuationEpoch() uint64 { return a.actEpoch }

// SendTune emits a Tune request: adjust entity's resources in the target
// island by delta (positive = increase). Returns false if rate-limited.
func (a *Agent) SendTune(target string, entity, delta int) bool {
	return a.send(Message{Kind: KindTune, From: a.name, Target: target, Entity: entity, Delta: delta})
}

// SendTrigger emits a Trigger request: allocate resources to entity in the
// target island as soon as possible. Returns false if rate-limited.
func (a *Agent) SendTrigger(target string, entity int) bool {
	return a.send(Message{Kind: KindTrigger, From: a.name, Target: target, Entity: entity})
}

func (a *Agent) send(msg Message) bool {
	if a.crashed {
		a.stats.SuppressedCrashed++
		return false
	}
	if a.degraded {
		// Graceful degradation: a policy output computed against a stale
		// view of the platform is worse than none; withhold it until the
		// uplink recovers.
		a.stats.SuppressedDegraded++
		return false
	}
	if a.limiter != nil && !a.limiter.Allow(msg.Kind, msg.Entity) {
		a.stats.RateLimitDropped++
		return false
	}
	switch msg.Kind {
	case KindTune:
		a.stats.TunesSent++
	case KindTrigger:
		a.stats.TriggersSent++
	case KindShed:
		a.stats.ShedsSent++
	case KindRegister, KindAck, KindHeartbeat:
		// Registration is controller-driven and protocol messages are
		// emitted by their own paths; agents forward them uncounted.
	}
	if a.trace != nil {
		a.trace(msg)
	}
	if a.tracer.Enabled(trace.CatCoord) {
		a.tracer.Emit(trace.CatCoord, "send %v", msg)
	}
	if a.flight != nil {
		a.flight.Record(flight.Event{
			T: a.fsim.Now(), Cat: flight.CatSend, Code: uint8(msg.Kind),
			Label: a.routeLabel(msg.Target), Entity: int32(msg.Entity), Arg: int64(msg.Delta),
		})
	}
	if a.uplink != nil {
		a.uplink.Send(msg)
	} else {
		a.route(msg)
	}
	return true
}

// Deliver applies an inbound coordination message to the local resource
// manager. Wire it as the receiver of the island's downlink (or pass it as
// IslandHandle.Local for co-located islands).
func (a *Agent) Deliver(msg Message) {
	if a.crashed {
		a.stats.CrashDrops++
		return
	}
	switch msg.Kind {
	case KindHeartbeat:
		// Controller ping: evidence the uplink is alive.
		a.stats.HeartbeatsSeen++
		if a.dsim != nil {
			a.lastHeard = a.dsim.Now()
			a.setDegraded(false)
		}
		return
	case KindAck:
		// Reliability-layer leakage; the endpoint consumes acks, so one
		// arriving here is counted as an apply error below.
	case KindTune, KindTrigger, KindRegister, KindShed:
	}
	if a.actuator == nil {
		a.stats.ApplyErrors++
		return
	}
	if a.trace != nil {
		a.trace(msg)
	}
	if a.tracer.Enabled(trace.CatCoord) {
		a.tracer.Emit(trace.CatCoord, "apply %v", msg)
	}
	if a.flight != nil {
		a.flight.Record(flight.Event{
			T: a.fsim.Now(), Cat: flight.CatApply, Code: uint8(msg.Kind),
			Label: a.name, Entity: int32(msg.Entity), Arg: int64(msg.Delta),
		})
	}
	var err error
	switch msg.Kind {
	case KindTune, KindTrigger, KindShed:
		a.actEpoch++
	case KindRegister, KindAck, KindHeartbeat:
	}
	switch msg.Kind {
	case KindTune:
		err = a.actuator.ApplyTune(msg.Entity, msg.Delta)
		if err == nil {
			a.stats.TunesApplied++
		}
	case KindTrigger:
		err = a.actuator.ApplyTrigger(msg.Entity)
		if err == nil {
			a.stats.TriggersApplied++
		}
	case KindShed:
		if sa, ok := a.actuator.(ShedActuator); ok {
			err = sa.ApplyShed(msg.Entity, msg.Delta)
			if err == nil {
				a.stats.ShedsApplied++
			}
		} else {
			err = fmt.Errorf("core: agent %q actuator cannot shed", a.name)
		}
	default:
		err = fmt.Errorf("core: agent %q cannot apply %v", a.name, msg.Kind)
	}
	if err != nil {
		a.stats.ApplyErrors++
	}
}
