package core

import (
	"reflect"
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// newFaultedMesh builds a mesh whose links are SimTransports with fault
// processes keyed by "from->to" channel names.
func newFaultedMesh(s *sim.Simulator, inj *pcie.Injector, latency sim.Time) *Mesh {
	return NewMesh(func(from, to string) Transport {
		tr := NewSimTransport(s, latency)
		tr.SetFaults(inj.Channel(from + "->" + to))
		return tr
	})
}

func TestMeshPerReasonUnroutable(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, sim.Microsecond)
	a, _ := m.AddIsland("a", &fakeActuator{})
	if _, err := m.AddIsland("b", &fakeActuator{}); err != nil {
		t.Fatal(err)
	}
	a.SendTune("ghost", 1, 1) // unknown island
	a.SendTune("b", 99, 1)    // unknown entity
	s.Run()
	if got := m.UnroutableFor(UnrouteUnknownTarget); got != 1 {
		t.Errorf("unknown-target = %d, want 1", got)
	}
	if got := m.UnroutableFor(UnrouteUnknownEntity); got != 1 {
		t.Errorf("unknown-entity = %d, want 1", got)
	}
	if m.Unroutable() != 2 {
		t.Errorf("Unroutable = %d, want 2", m.Unroutable())
	}
	if m.UnroutableFor(UnrouteReason(44)) != 0 {
		t.Error("out-of-range reason nonzero")
	}
}

// A partition silences island b; its lease expires and traffic toward it is
// quarantined. When the partition heals, b's heartbeats rejoin it and the
// mesh reconverges: routing works again.
func TestMeshPartitionHealsAndRejoins(t *testing.T) {
	s := sim.New(1)
	inj := pcie.NewInjector(pcie.FaultPlan{Partitions: []pcie.Partition{{
		Start: 100 * sim.Millisecond, Duration: 200 * sim.Millisecond,
		Channels: []string{"b->a"},
	}}})
	m := newFaultedMesh(s, inj, 100*sim.Microsecond)
	actA, actB := &fakeActuator{}, &fakeActuator{}
	a, err := m.AddIsland("a", actA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddIsland("b", actB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "b"}); err != nil {
		t.Fatal(err)
	}
	a.EnableHeartbeat(s, 10*sim.Millisecond)
	b.EnableHeartbeat(s, 10*sim.Millisecond)
	m.EnableWatchdog(s, WatchdogConfig{
		CheckPeriod:  10 * sim.Millisecond,
		SuspectAfter: 30 * sim.Millisecond,
		DeadAfter:    80 * sim.Millisecond,
	})

	var stateAt250, stateAt390 LeaseState
	s.At(250*sim.Millisecond, func() {
		stateAt250, _ = m.LeaseOf("b")
		a.SendTune("b", 1, 5) // into the dead island: quarantined
	})
	s.At(390*sim.Millisecond, func() {
		stateAt390, _ = m.LeaseOf("b")
		a.SendTune("b", 1, 9) // after reconvergence: delivered
	})
	s.RunUntil(400 * sim.Millisecond)

	if stateAt250 != LeaseDead {
		t.Errorf("lease(b) at 250ms = %v, want dead", stateAt250)
	}
	if stateAt390 != LeaseAlive {
		t.Errorf("lease(b) at 390ms = %v, want alive after heal", stateAt390)
	}
	if m.LeaseExpiries() != 1 || m.Rejoins() != 1 {
		t.Errorf("LeaseExpiries=%d Rejoins=%d, want 1/1", m.LeaseExpiries(), m.Rejoins())
	}
	if got := m.UnroutableFor(UnrouteQuarantined); got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	if len(actB.tunes) != 1 || actB.tunes[0] != 9 {
		t.Errorf("b applied %v, want [9]", actB.tunes)
	}
	// The a lease never suffered: a's heartbeats rode the uncut a->b link.
	if st, _ := m.LeaseOf("a"); st != LeaseAlive {
		t.Errorf("lease(a) = %v, want alive throughout", st)
	}
}

func TestMeshReliableLinksSurviveLoss(t *testing.T) {
	s := sim.New(1)
	inj := pcie.NewInjector(pcie.FaultPlan{Seed: 21, LossRate: 0.3})
	m := newFaultedMesh(s, inj, 100*sim.Microsecond)
	m.EnableReliableLinks(s, ReliableConfig{})
	actB := &fakeActuator{}
	a, _ := m.AddIsland("a", &fakeActuator{})
	if _, err := m.AddIsland("b", actB); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterEntity(Entity{ID: 1, Home: "b"}); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		s.At(sim.Time(i)*sim.Millisecond, func() { a.SendTrigger("b", 1) })
	}
	s.Run()
	if len(actB.triggers) != n {
		t.Fatalf("b applied %d triggers, want %d despite 30%% loss", len(actB.triggers), n)
	}
	eps := m.Endpoints()
	if len(eps) != 2 {
		t.Fatalf("Endpoints = %d, want 2", len(eps))
	}
	var retrans uint64
	for _, ep := range eps {
		retrans += ep.Stats().Retransmits
	}
	if retrans == 0 {
		t.Fatal("no retransmits despite 30% loss")
	}
}

func TestMeshEnableReliableAfterJoinPanics(t *testing.T) {
	s := sim.New(1)
	m := newTestMesh(s, sim.Microsecond)
	if _, err := m.AddIsland("a", &fakeActuator{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableReliableLinks after AddIsland did not panic")
		}
	}()
	m.EnableReliableLinks(s, ReliableConfig{})
}

// meshSnapshot is everything observable about a chaos run; two runs with
// the same seed and plan must produce identical snapshots.
type meshSnapshot struct {
	Routed        uint64
	Unroutable    [3]uint64
	Heartbeats    uint64
	LeaseExpiries uint64
	Rejoins       uint64
	TunesB        []int
	TriggersB     []int
	AgentA        AgentStats
	AgentB        AgentStats
	Endpoints     []ReliableStats
	Faults        pcie.FaultStats
}

func runMeshChaosScenario(simSeed, faultSeed int64) meshSnapshot {
	s := sim.New(simSeed)
	inj := pcie.NewInjector(pcie.FaultPlan{
		Seed: faultSeed, LossRate: 0.15, DupRate: 0.1, ReorderRate: 0.1,
		SpikeRate: 0.05, JitterMax: 50 * sim.Microsecond, BurstRate: 0.01, BurstLen: 4,
		Partitions: []pcie.Partition{{
			Start: 150 * sim.Millisecond, Duration: 100 * sim.Millisecond,
			Channels: []string{"b->a"},
		}},
	})
	m := newFaultedMesh(s, inj, 100*sim.Microsecond)
	m.EnableReliableLinks(s, ReliableConfig{})
	actA, actB := &fakeActuator{}, &fakeActuator{}
	a, _ := m.AddIsland("a", actA)
	b, _ := m.AddIsland("b", actB)
	_ = m.RegisterEntity(Entity{ID: 1, Home: "b"})
	_ = m.RegisterEntity(Entity{ID: 2, Home: "a"})
	a.EnableHeartbeat(s, 10*sim.Millisecond)
	b.EnableHeartbeat(s, 10*sim.Millisecond)
	m.EnableWatchdog(s, WatchdogConfig{
		CheckPeriod:  10 * sim.Millisecond,
		SuspectAfter: 30 * sim.Millisecond,
		DeadAfter:    60 * sim.Millisecond,
	})
	for i := 0; i < 50; i++ {
		i := i
		s.At(sim.Time(i)*8*sim.Millisecond, func() {
			a.SendTune("b", 1, i%5)
			b.SendTrigger("a", 2)
		})
	}
	s.RunUntil(500 * sim.Millisecond)

	snap := meshSnapshot{
		Routed:        m.Routed(),
		Heartbeats:    m.Heartbeats(),
		LeaseExpiries: m.LeaseExpiries(),
		Rejoins:       m.Rejoins(),
		TunesB:        actB.tunes,
		TriggersB:     actB.triggers,
		AgentA:        a.Stats(),
		AgentB:        b.Stats(),
		Faults:        inj.TotalStats(),
	}
	for _, r := range UnrouteReasons() {
		snap.Unroutable[int(r)] = m.UnroutableFor(r)
	}
	for _, ep := range m.Endpoints() {
		snap.Endpoints = append(snap.Endpoints, ep.Stats())
	}
	return snap
}

// Determinism regression: the same simulation seed and fault plan must
// reproduce the run byte for byte, fault schedule included.
func TestMeshChaosDeterminism(t *testing.T) {
	first := runMeshChaosScenario(1, 7)
	second := runMeshChaosScenario(1, 7)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("identical seeds diverged:\n first: %+v\nsecond: %+v", first, second)
	}
	if first.Faults.Dropped == 0 {
		t.Fatal("chaos scenario injected no drops; the regression is vacuous")
	}
	// A different fault seed must actually change the schedule (the seed is
	// live, not ignored).
	other := runMeshChaosScenario(1, 8)
	if reflect.DeepEqual(first.Faults, other.Faults) {
		t.Fatal("fault seed has no effect on the schedule")
	}
}
