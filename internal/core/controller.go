package core

import (
	"fmt"
	"sort"
)

// IslandHandle is the controller's view of a registered scheduling island:
// a name plus the downlink used to reach its agent. Islands co-located with
// the controller (the x86 island in the prototype) register with a nil
// downlink and a local delivery function instead.
type IslandHandle struct {
	Name     string
	Downlink Transport     // nil for co-located islands
	Local    func(Message) // delivery for co-located islands
}

// Controller is the global coordination controller: the first privileged
// domain to boot registers it, every island and spanning entity registers
// with it, and it routes coordination messages between islands (§2.3).
type Controller struct {
	islands  map[string]IslandHandle
	entities map[int]Entity

	routed     uint64
	unroutable uint64
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{
		islands:  make(map[string]IslandHandle),
		entities: make(map[int]Entity),
	}
}

// RegisterIsland adds an island to the routing table. Exactly one of
// h.Downlink and h.Local must be set.
func (c *Controller) RegisterIsland(h IslandHandle) error {
	if h.Name == "" {
		return fmt.Errorf("core: island with empty name")
	}
	if _, dup := c.islands[h.Name]; dup {
		return fmt.Errorf("core: island %q already registered", h.Name)
	}
	if (h.Downlink == nil) == (h.Local == nil) {
		return fmt.Errorf("core: island %q must set exactly one of Downlink and Local", h.Name)
	}
	c.islands[h.Name] = h
	return nil
}

// RegisterEntity records a platform-wide entity (e.g. a guest VM that will
// send and receive traffic through the IXP).
func (c *Controller) RegisterEntity(e Entity) error {
	if _, dup := c.entities[e.ID]; dup {
		return fmt.Errorf("core: entity %d already registered", e.ID)
	}
	if _, ok := c.islands[e.Home]; e.Home != "" && !ok {
		return fmt.Errorf("core: entity %d names unknown home island %q", e.ID, e.Home)
	}
	c.entities[e.ID] = e
	return nil
}

// Entity returns the registered entity with the given ID.
func (c *Controller) Entity(id int) (Entity, bool) {
	e, ok := c.entities[id]
	return e, ok
}

// Islands returns the registered island names, sorted.
func (c *Controller) Islands() []string {
	names := make([]string, 0, len(c.islands))
	for n := range c.islands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Route delivers msg to its target island. Unknown targets and unknown
// entities are counted and dropped — a coordination layer must tolerate
// stale identifiers, not crash the control plane.
func (c *Controller) Route(msg Message) {
	h, ok := c.islands[msg.Target]
	if !ok {
		c.unroutable++
		return
	}
	if _, ok := c.entities[msg.Entity]; !ok {
		c.unroutable++
		return
	}
	c.routed++
	if h.Local != nil {
		h.Local(msg)
		return
	}
	h.Downlink.Send(msg)
}

// Routed returns the number of successfully routed messages.
func (c *Controller) Routed() uint64 { return c.routed }

// Unroutable returns messages dropped for unknown target or entity.
func (c *Controller) Unroutable() uint64 { return c.unroutable }
