package core

import (
	"fmt"
	"sort"

	"repro/internal/flight"
	"repro/internal/sim"
)

// IslandHandle is the controller's view of a registered scheduling island:
// a name plus the downlink used to reach its agent. Islands co-located with
// the controller (the x86 island in the prototype) register with a nil
// downlink and a local delivery function instead.
type IslandHandle struct {
	Name     string
	Downlink Transport     // nil for co-located islands
	Local    func(Message) // delivery for co-located islands
}

// UnrouteReason classifies why a coordination message could not be routed.
type UnrouteReason int

// Unroutable-message reasons.
const (
	// UnrouteUnknownTarget: the message names an island that never
	// registered.
	UnrouteUnknownTarget UnrouteReason = iota
	// UnrouteUnknownEntity: the message names an entity that never
	// registered.
	UnrouteUnknownEntity
	// UnrouteQuarantined: the target island (or the entity's home island)
	// holds an expired lease; its entities are quarantined until it
	// rejoins.
	UnrouteQuarantined
)

// unrouteReasonCount is the number of declared reasons (array sizing).
const unrouteReasonCount = 3

// String names the reason.
func (r UnrouteReason) String() string {
	switch r {
	case UnrouteUnknownTarget:
		return "unknown-target"
	case UnrouteUnknownEntity:
		return "unknown-entity"
	case UnrouteQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("UnrouteReason(%d)", int(r))
	}
}

// UnrouteReasons lists every declared reason in declaration (and reporting)
// order.
func UnrouteReasons() []UnrouteReason {
	return []UnrouteReason{UnrouteUnknownTarget, UnrouteUnknownEntity, UnrouteQuarantined}
}

// LeaseState is an island's liveness as judged by the heartbeat watchdog.
type LeaseState int

// Lease states. The machine is Alive -> Suspect -> Dead on heartbeat
// silence, and any heartbeat returns the island to Alive (a Dead->Alive
// transition is a rejoin).
const (
	LeaseAlive LeaseState = iota
	LeaseSuspect
	LeaseDead
)

// String names the lease state.
func (s LeaseState) String() string {
	switch s {
	case LeaseAlive:
		return "alive"
	case LeaseSuspect:
		return "suspect"
	case LeaseDead:
		return "dead"
	default:
		return fmt.Sprintf("LeaseState(%d)", int(s))
	}
}

// lease tracks one island's heartbeat liveness. flapped marks a probationary
// rejoin: the island came back inside the hysteresis window after dying, so
// the rejoin is not counted until it survives alive for the full window (and
// a re-death inside probation does not count a second expiry).
type lease struct {
	lastHeard sim.Time
	state     LeaseState
	deadAt    sim.Time // when the lease last expired
	rejoinAt  sim.Time // when the probationary rejoin happened
	flapped   bool     // rejoin is on probation (hysteresis not yet served)
}

// WatchdogConfig parameterizes the controller's heartbeat watchdog.
type WatchdogConfig struct {
	// CheckPeriod is the sweep (and downlink ping) interval (default
	// 250ms).
	CheckPeriod sim.Time
	// SuspectAfter marks an island suspect after this much heartbeat
	// silence (default 3x CheckPeriod).
	SuspectAfter sim.Time
	// DeadAfter expires the island's lease after this much silence
	// (default 8x CheckPeriod): its entities are quarantined until it
	// rejoins.
	DeadAfter sim.Time
	// RejoinHysteresis is the minimum time an island must have been dead
	// before its next heartbeat counts as a rejoin (default 1x
	// CheckPeriod). A faster comeback is a flap: the island still returns
	// to Alive (and OnRejoin still fires so revert timers are cancelled)
	// but the Rejoins counter waits until the island stays alive for the
	// hysteresis window, and a re-death inside that probation does not
	// count another LeaseExpiry — rapid flap cycles register one expiry,
	// at most one rejoin, and a FlapSuppressed count.
	RejoinHysteresis sim.Time

	// OnSuspect/OnDead/OnRejoin are optional transition hooks.
	OnSuspect func(island string)
	OnDead    func(island string)
	OnRejoin  func(island string)
}

func (c *WatchdogConfig) applyDefaults() {
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 250 * sim.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 3 * c.CheckPeriod
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 8 * c.CheckPeriod
	}
	if c.RejoinHysteresis == 0 {
		c.RejoinHysteresis = c.CheckPeriod
	}
}

// OverloadControlConfig parameterizes the controller's overload-Trigger
// translation (EnableOverloadControl).
type OverloadControlConfig struct {
	// Upstream names the island with early traffic visibility (the IXP in
	// the prototype): every routed Trigger also sends it a KindShed
	// adjustment so excess traffic is shed before crossing the mailbox.
	Upstream string
	// ShedStep is the Delta of each upstream KindShed (default 1).
	ShedStep int
	// BoostDelta, when nonzero, additionally routes a KindTune with this
	// Delta to the trigger's own target — the weight boost half of the
	// translation (the Trigger itself already carries the runqueue boost).
	BoostDelta int
}

func (c *OverloadControlConfig) applyDefaults() {
	if c.ShedStep == 0 {
		c.ShedStep = 1
	}
}

// Controller is the global coordination controller: the first privileged
// domain to boot registers it, every island and spanning entity registers
// with it, and it routes coordination messages between islands (§2.3).
type Controller struct {
	islands  map[string]IslandHandle
	entities map[int]Entity

	routed     uint64
	unroutable [unrouteReasonCount]uint64

	// Overload-control translation state (EnableOverloadControl).
	overload   *OverloadControlConfig
	shedTunes  uint64
	boostTunes uint64

	flight      *flight.Recorder  // optional flight recorder
	fsim        *sim.Simulator    // timestamp source for flight events
	routeLabels map[string]string // interned "controller>target" flight labels

	// Heartbeat/lease watchdog state (EnableWatchdog).
	wsim           *sim.Simulator
	wcfg           WatchdogConfig
	leases         map[string]*lease
	heartbeats     uint64
	strayAcks      uint64
	leaseExpiries  uint64
	rejoins        uint64
	flapSuppressed uint64

	// epochs counts actuation messages (Tune/Trigger/Shed) successfully
	// routed to each island — the controller's view of how far each
	// agent's actuation state has advanced. Failover's anti-entropy
	// reconciliation compares it against Agent.ActuationEpoch.
	epochs map[string]uint64
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{
		islands:  make(map[string]IslandHandle),
		entities: make(map[int]Entity),
		leases:   make(map[string]*lease),
		epochs:   make(map[string]uint64),
	}
}

// SetFlightRecorder taps lease transitions, quarantine drops, and
// overload-control translations into the flight recorder (nil disables);
// event timestamps come from s.
func (c *Controller) SetFlightRecorder(s *sim.Simulator, r *flight.Recorder) {
	c.fsim, c.flight = s, r
}

// recordLease records one lease-machine flight event.
func (c *Controller) recordLease(code uint8, island string, entity int) {
	if c.flight != nil {
		c.flight.Record(flight.Event{
			T: c.fsim.Now(), Cat: flight.CatLease, Code: code,
			Label: island, Entity: int32(entity), Arg: 0,
		})
	}
}

// recordSend records one controller-emitted coordination message (the
// overload-control translation fan-out).
func (c *Controller) recordSend(msg Message) {
	if c.flight != nil {
		c.flight.Record(flight.Event{
			T: c.fsim.Now(), Cat: flight.CatSend, Code: uint8(msg.Kind),
			Label: c.routeLabel(msg.Target), Entity: int32(msg.Entity), Arg: int64(msg.Delta),
		})
	}
}

// routeLabel interns the "controller>target" flight label so steady-state
// translations do not allocate a fresh string per message.
func (c *Controller) routeLabel(target string) string {
	l, ok := c.routeLabels[target]
	if !ok {
		if c.routeLabels == nil {
			c.routeLabels = make(map[string]string)
		}
		l = "controller>" + target
		c.routeLabels[target] = l
	}
	return l
}

// RegisterIsland adds an island to the routing table. Exactly one of
// h.Downlink and h.Local must be set.
func (c *Controller) RegisterIsland(h IslandHandle) error {
	if h.Name == "" {
		return fmt.Errorf("core: island with empty name")
	}
	if _, dup := c.islands[h.Name]; dup {
		return fmt.Errorf("core: island %q already registered", h.Name)
	}
	if (h.Downlink == nil) == (h.Local == nil) {
		return fmt.Errorf("core: island %q must set exactly one of Downlink and Local", h.Name)
	}
	c.islands[h.Name] = h
	return nil
}

// RegisterEntity records a platform-wide entity (e.g. a guest VM that will
// send and receive traffic through the IXP).
func (c *Controller) RegisterEntity(e Entity) error {
	if _, dup := c.entities[e.ID]; dup {
		return fmt.Errorf("core: entity %d already registered", e.ID)
	}
	if _, ok := c.islands[e.Home]; e.Home != "" && !ok {
		return fmt.Errorf("core: entity %d names unknown home island %q", e.ID, e.Home)
	}
	c.entities[e.ID] = e
	return nil
}

// Entity returns the registered entity with the given ID.
func (c *Controller) Entity(id int) (Entity, bool) {
	e, ok := c.entities[id]
	return e, ok
}

// Islands returns the registered island names, sorted.
func (c *Controller) Islands() []string {
	names := make([]string, 0, len(c.islands))
	for n := range c.islands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnableWatchdog starts the heartbeat/lease watchdog: islands that have
// heartbeated at least once are tracked through the Alive -> Suspect ->
// Dead lease machine; a Dead island's entities are quarantined (routing to
// them counts as UnrouteQuarantined) until a new heartbeat rejoins it. Each
// sweep the controller also pings every remote island's downlink with a
// heartbeat so agents can detect a dead uplink symmetrically. It returns a
// stop function cancelling the sweep.
func (c *Controller) EnableWatchdog(s *sim.Simulator, cfg WatchdogConfig) (stop func()) {
	if s == nil {
		panic("core: controller watchdog needs a simulator")
	}
	cfg.applyDefaults()
	c.wsim = s
	c.wcfg = cfg
	return s.Ticker(cfg.CheckPeriod, c.watchdogSweep)
}

// watchdogSweep advances lease states and pings remote islands.
func (c *Controller) watchdogSweep() {
	now := c.wsim.Now()
	for _, name := range c.Islands() {
		l, ok := c.leases[name]
		if !ok {
			continue // never heartbeated: not lease-managed
		}
		silence := now - l.lastHeard
		switch l.state {
		case LeaseAlive:
			if l.flapped && now-l.rejoinAt >= c.wcfg.RejoinHysteresis {
				// The probationary rejoin survived the hysteresis
				// window: it was genuine after all.
				l.flapped = false
				c.rejoins++
				c.recordLease(flight.LeaseRejoin, name, -1)
			}
			if silence > c.wcfg.SuspectAfter {
				l.state = LeaseSuspect
				c.recordLease(flight.LeaseSuspect, name, -1)
				if c.wcfg.OnSuspect != nil {
					c.wcfg.OnSuspect(name)
				}
			}
		case LeaseSuspect:
			if silence > c.wcfg.DeadAfter {
				l.state = LeaseDead
				l.deadAt = now
				if l.flapped {
					// Re-death inside the rejoin probation: the earlier
					// expiry already counted; this is the same outage
					// continuing, not a new one.
					l.flapped = false
				} else {
					c.leaseExpiries++
				}
				c.recordLease(flight.LeaseDead, name, -1)
				if c.wcfg.OnDead != nil {
					c.wcfg.OnDead(name)
				}
			}
		case LeaseDead:
			// Stays dead until a heartbeat rejoins it.
		}
	}
	for _, name := range c.Islands() {
		h := c.islands[name]
		ping := Message{Kind: KindHeartbeat, Target: name}
		switch {
		case h.Downlink != nil:
			h.Downlink.Send(ping)
		case h.Local != nil:
			// Co-located islands get the same liveness evidence: their
			// agents run the uplink-health monitor too, and a controller
			// that dies (failover) must look dead to every island.
			h.Local(ping)
		}
	}
}

// observeHeartbeat renews the island's lease, rejoining it if dead.
func (c *Controller) observeHeartbeat(island string) {
	c.heartbeats++
	if c.wsim == nil || island == "" {
		return
	}
	if _, ok := c.islands[island]; !ok {
		return // heartbeat from an unregistered island: ignored
	}
	l, ok := c.leases[island]
	if !ok {
		c.leases[island] = &lease{lastHeard: c.wsim.Now(), state: LeaseAlive}
		return
	}
	if l.state == LeaseDead {
		now := c.wsim.Now()
		if now-l.deadAt < c.wcfg.RejoinHysteresis {
			// Flap: the island came back before serving the minimum dead
			// time. It rejoins functionally (state, hooks) but the rejoin
			// stays on probation until it survives the hysteresis window.
			c.flapSuppressed++
			l.flapped = true
			l.rejoinAt = now
			c.recordLease(flight.LeaseFlap, island, -1)
		} else {
			c.rejoins++
			c.recordLease(flight.LeaseRejoin, island, -1)
		}
		if c.wcfg.OnRejoin != nil {
			c.wcfg.OnRejoin(island)
		}
	}
	l.state = LeaseAlive
	l.lastHeard = c.wsim.Now()
}

// LeaseOf returns the island's lease state. Islands that never heartbeated
// (or predate the watchdog) report LeaseAlive and false.
func (c *Controller) LeaseOf(island string) (LeaseState, bool) {
	if l, ok := c.leases[island]; ok {
		return l.state, true
	}
	return LeaseAlive, false
}

// leaseDead reports whether the island's lease has expired.
func (c *Controller) leaseDead(island string) bool {
	l, ok := c.leases[island]
	return ok && l.state == LeaseDead
}

// Route delivers msg to its target island. Heartbeats renew the sender's
// lease and are consumed here. Unknown targets, unknown entities, and
// quarantined (lease-expired) islands are counted per reason and dropped —
// a coordination layer must tolerate stale identifiers, not crash the
// control plane.
func (c *Controller) Route(msg Message) {
	switch msg.Kind {
	case KindHeartbeat:
		c.observeHeartbeat(msg.From)
		return
	case KindAck:
		// Acks belong to the reliability layer below the controller; one
		// surfacing here is a wiring bug, counted rather than routed.
		c.strayAcks++
		return
	case KindTune, KindTrigger, KindRegister, KindShed:
	}
	h, ok := c.islands[msg.Target]
	if !ok {
		c.unroutable[UnrouteUnknownTarget]++
		return
	}
	if c.leaseDead(msg.Target) {
		c.unroutable[UnrouteQuarantined]++
		c.recordLease(flight.LeaseQuarantine, msg.Target, msg.Entity)
		return
	}
	e, ok := c.entities[msg.Entity]
	if !ok {
		c.unroutable[UnrouteUnknownEntity]++
		return
	}
	if e.Home != "" && c.leaseDead(e.Home) {
		c.unroutable[UnrouteQuarantined]++
		c.recordLease(flight.LeaseQuarantine, e.Home, msg.Entity)
		return
	}
	c.routed++
	switch msg.Kind {
	case KindTune, KindTrigger, KindShed:
		// Actuation epoch: the controller's view of how far the target
		// agent's actuation state has advanced. Failover reconciliation
		// compares it against the agent's own count.
		c.epochs[msg.Target]++
	case KindRegister, KindAck, KindHeartbeat:
	}
	if h.Local != nil {
		h.Local(msg)
	} else {
		h.Downlink.Send(msg)
	}
	if msg.Kind == KindTrigger && c.overload != nil {
		c.translateTrigger(msg)
	}
}

// EnableOverloadControl arms the Trigger translation: every successfully
// routed Trigger is expanded into a weight-boost Tune toward its target
// (when BoostDelta is set) plus an upstream KindShed toward the island
// that sees traffic first — the paper's coordination argument under load:
// the island with early visibility protects the island doing expensive
// work.
func (c *Controller) EnableOverloadControl(cfg OverloadControlConfig) {
	if cfg.Upstream == "" {
		panic("core: overload control needs an upstream island")
	}
	cfg.applyDefaults()
	c.overload = &cfg
}

// translateTrigger fans one routed Trigger into its overload-control
// actions. The emitted kinds are Tune and Shed, so translation never
// recurses.
func (c *Controller) translateTrigger(msg Message) {
	oc := c.overload
	if oc.BoostDelta != 0 {
		c.boostTunes++
		m := Message{Kind: KindTune, From: "controller", Target: msg.Target, Entity: msg.Entity, Delta: oc.BoostDelta}
		c.recordSend(m)
		c.Route(m)
	}
	if oc.Upstream != msg.Target {
		c.shedTunes++
		m := Message{Kind: KindShed, From: "controller", Target: oc.Upstream, Entity: msg.Entity, Delta: oc.ShedStep}
		c.recordSend(m)
		c.Route(m)
	}
}

// ShedTunesIssued returns upstream shed adjustments emitted by the
// overload-control translation.
func (c *Controller) ShedTunesIssued() uint64 { return c.shedTunes }

// BoostTunesIssued returns weight-boost Tunes emitted by the
// overload-control translation.
func (c *Controller) BoostTunesIssued() uint64 { return c.boostTunes }

// Routed returns the number of successfully routed messages.
func (c *Controller) Routed() uint64 { return c.routed }

// Unroutable returns the total messages dropped across every reason.
func (c *Controller) Unroutable() uint64 {
	var total uint64
	for _, n := range c.unroutable {
		total += n
	}
	return total
}

// UnroutableFor returns messages dropped for one reason.
func (c *Controller) UnroutableFor(r UnrouteReason) uint64 {
	if r < 0 || int(r) >= unrouteReasonCount {
		return 0
	}
	return c.unroutable[r]
}

// UnroutableByReason returns every reason's drop count in declaration
// order — deterministic reporting for harness output.
func (c *Controller) UnroutableByReason() []struct {
	Reason UnrouteReason
	Count  uint64
} {
	out := make([]struct {
		Reason UnrouteReason
		Count  uint64
	}, 0, unrouteReasonCount)
	for _, r := range UnrouteReasons() {
		out = append(out, struct {
			Reason UnrouteReason
			Count  uint64
		}{r, c.unroutable[r]})
	}
	return out
}

// Heartbeats returns heartbeat messages observed.
func (c *Controller) Heartbeats() uint64 { return c.heartbeats }

// StrayAcks returns reliability-layer acks that erroneously reached the
// controller.
func (c *Controller) StrayAcks() uint64 { return c.strayAcks }

// LeaseExpiries returns islands whose lease expired (suspect -> dead).
func (c *Controller) LeaseExpiries() uint64 { return c.leaseExpiries }

// Rejoins returns dead islands that re-registered via a fresh heartbeat.
func (c *Controller) Rejoins() uint64 { return c.rejoins }

// FlapSuppressed returns rejoins suppressed by the hysteresis window: the
// island came back before serving the minimum dead time, so the comeback
// was held on probation instead of counting immediately.
func (c *Controller) FlapSuppressed() uint64 { return c.flapSuppressed }

// RoutedEpoch returns the controller's actuation epoch for the island: how
// many Tune/Trigger/Shed messages it has successfully routed there.
func (c *Controller) RoutedEpoch(island string) uint64 { return c.epochs[island] }

// setRoutedEpoch overwrites the island's actuation epoch — the anti-entropy
// adoption step, where the agent's authoritative local count wins.
func (c *Controller) setRoutedEpoch(island string, epoch uint64) {
	c.epochs[island] = epoch
}
