package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xen"
)

func TestKindAndMessageStrings(t *testing.T) {
	if KindTune.String() != "tune" || KindTrigger.String() != "trigger" || KindRegister.String() != "register" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "Kind(9)") {
		t.Fatal("unknown kind name wrong")
	}
	m := Message{Kind: KindTune, From: "ixp", Target: "x86", Entity: 2, Delta: -64}
	if got := m.String(); !strings.Contains(got, "delta=-64") || !strings.Contains(got, "ixp->x86") {
		t.Fatalf("tune string = %q", got)
	}
	tr := Message{Kind: KindTrigger, From: "a", Target: "b", Entity: 1}
	if !strings.Contains(tr.String(), "trigger{") {
		t.Fatalf("trigger string = %q", tr.String())
	}
	rg := Message{Kind: KindRegister, From: "a", Target: "b"}
	if !strings.Contains(rg.String(), "register{") {
		t.Fatalf("register string = %q", rg.String())
	}
}

func TestControllerRegistration(t *testing.T) {
	c := NewController()
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(Message) {}}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(Message) {}}); err == nil {
		t.Fatal("duplicate island accepted")
	}
	if err := c.RegisterIsland(IslandHandle{Name: ""}); err == nil {
		t.Fatal("empty island name accepted")
	}
	if err := c.RegisterIsland(IslandHandle{Name: "bad"}); err == nil {
		t.Fatal("island with neither downlink nor local accepted")
	}
	if err := c.RegisterIsland(IslandHandle{Name: "bad2", Local: func(Message) {}, Downlink: NewSimTransport(sim.New(1), 0)}); err == nil {
		t.Fatal("island with both downlink and local accepted")
	}
	if err := c.RegisterEntity(Entity{ID: 1, Name: "web", Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 1, Name: "dup"}); err == nil {
		t.Fatal("duplicate entity accepted")
	}
	if err := c.RegisterEntity(Entity{ID: 2, Home: "nowhere"}); err == nil {
		t.Fatal("entity with unknown home accepted")
	}
	e, ok := c.Entity(1)
	if !ok || e.Name != "web" {
		t.Fatalf("Entity(1) = %+v, %v", e, ok)
	}
	if got := c.Islands(); len(got) != 1 || got[0] != "x86" {
		t.Fatalf("Islands() = %v", got)
	}
}

func TestControllerRouting(t *testing.T) {
	c := NewController()
	var local []Message
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) { local = append(local, m) }}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 1, Name: "vm", Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	c.Route(Message{Kind: KindTune, Target: "x86", Entity: 1, Delta: 5})
	if len(local) != 1 || local[0].Delta != 5 {
		t.Fatalf("local delivery = %v", local)
	}
	c.Route(Message{Kind: KindTune, Target: "gpu", Entity: 1})
	c.Route(Message{Kind: KindTune, Target: "x86", Entity: 99})
	if c.Unroutable() != 2 {
		t.Fatalf("Unroutable = %d", c.Unroutable())
	}
	if c.Routed() != 1 {
		t.Fatalf("Routed = %d", c.Routed())
	}
}

func TestRouteDropPaths(t *testing.T) {
	c := NewController()
	var local []Message
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) { local = append(local, m) }}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 1, Name: "vm", Home: "x86"}); err != nil {
		t.Fatal(err)
	}

	// Unknown target island: dropped before the entity is even checked.
	c.Route(Message{Kind: KindTune, Target: "gpu", Entity: 1})
	if len(local) != 0 {
		t.Fatalf("unknown-target message delivered: %v", local)
	}
	if got, want := c.Unroutable(), uint64(1); got != want {
		t.Fatalf("after unknown target: Unroutable = %d, want %d", got, want)
	}
	if c.Routed() != 0 {
		t.Fatalf("after unknown target: Routed = %d, want 0", c.Routed())
	}

	// Known target but unregistered entity: dropped too.
	c.Route(Message{Kind: KindTrigger, Target: "x86", Entity: 99})
	if len(local) != 0 {
		t.Fatalf("unknown-entity message delivered: %v", local)
	}
	if got, want := c.Unroutable(), uint64(2); got != want {
		t.Fatalf("after unknown entity: Unroutable = %d, want %d", got, want)
	}
	if c.Routed() != 0 {
		t.Fatalf("after unknown entity: Routed = %d, want 0", c.Routed())
	}

	// A routable message still goes through and leaves the drop counter
	// untouched.
	c.Route(Message{Kind: KindTune, Target: "x86", Entity: 1, Delta: 7})
	if len(local) != 1 || local[0].Delta != 7 {
		t.Fatalf("routable message delivery = %v", local)
	}
	if c.Routed() != 1 || c.Unroutable() != 2 {
		t.Fatalf("final counters: Routed = %d, Unroutable = %d", c.Routed(), c.Unroutable())
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	names := map[Kind]string{
		KindTune:      "tune",
		KindTrigger:   "trigger",
		KindRegister:  "register",
		KindAck:       "ack",
		KindHeartbeat: "heartbeat",
		KindShed:      "shed",
	}
	seen := map[string]Kind{}
	for k, want := range names {
		got := k.String()
		if got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("kinds %d and %d share the name %q", int(prev), int(k), got)
		}
		seen[got] = k
	}
	// Out-of-range kinds must stay distinguishable: the fallback embeds the
	// numeric value instead of collapsing to one opaque name.
	for _, k := range []Kind{Kind(-1), Kind(6), Kind(42)} {
		got := k.String()
		if want := fmt.Sprintf("Kind(%d)", int(k)); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestControllerRoutesOverDownlink(t *testing.T) {
	s := sim.New(1)
	c := NewController()
	down := NewSimTransport(s, 10*sim.Microsecond)
	var got []Message
	down.SetReceiver(func(m Message) { got = append(got, m) })
	if err := c.RegisterIsland(IslandHandle{Name: "ixp", Downlink: down}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 3, Home: "ixp"}); err != nil {
		t.Fatal(err)
	}
	c.Route(Message{Kind: KindTrigger, Target: "ixp", Entity: 3})
	s.Run()
	if len(got) != 1 || got[0].Kind != KindTrigger {
		t.Fatalf("downlink delivery = %v", got)
	}
}

// fakeActuator records applied actions.
type fakeActuator struct {
	tunes    []int
	triggers []int
	fail     bool
}

func (f *fakeActuator) ApplyTune(e, d int) error {
	if f.fail {
		return errFail
	}
	f.tunes = append(f.tunes, d)
	return nil
}
func (f *fakeActuator) ApplyTrigger(e int) error {
	if f.fail {
		return errFail
	}
	f.triggers = append(f.triggers, e)
	return nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "fail" }

func TestAgentEndToEndOverMailbox(t *testing.T) {
	s := sim.New(1)
	mb := pcie.NewMailbox(s, 150*sim.Microsecond)
	ctrl := NewController()

	// x86 side: co-located with controller.
	x86Act := &fakeActuator{}
	x86 := NewAgent("x86", nil, ctrl.Route, x86Act)
	if err := ctrl.RegisterIsland(IslandHandle{Name: "x86", Local: x86.Deliver}); err != nil {
		t.Fatal(err)
	}
	// IXP side: reaches the controller over the mailbox.
	up := NewDeviceUplink(mb)
	up.SetReceiver(ctrl.Route) // host receives -> controller routes
	ixpAgent := NewAgent("ixp", up, nil, nil)

	if err := ctrl.RegisterEntity(Entity{ID: 1, Name: "web", Home: "x86"}); err != nil {
		t.Fatal(err)
	}

	if !ixpAgent.SendTune("x86", 1, +64) {
		t.Fatal("SendTune rate-limited unexpectedly")
	}
	ixpAgent.SendTrigger("x86", 1)
	s.Run()

	if len(x86Act.tunes) != 1 || x86Act.tunes[0] != 64 {
		t.Fatalf("tunes applied = %v", x86Act.tunes)
	}
	if len(x86Act.triggers) != 1 {
		t.Fatalf("triggers applied = %v", x86Act.triggers)
	}
	st := ixpAgent.Stats()
	if st.TunesSent != 1 || st.TriggersSent != 1 {
		t.Fatalf("sender stats = %+v", st)
	}
	xs := x86.Stats()
	if xs.TunesApplied != 1 || xs.TriggersApplied != 1 {
		t.Fatalf("receiver stats = %+v", xs)
	}
}

func TestAgentDeliveryLatencyMatchesMailbox(t *testing.T) {
	s := sim.New(1)
	mb := pcie.NewMailbox(s, 150*sim.Microsecond)
	ctrl := NewController()
	var appliedAt sim.Time
	act := &fakeActuator{}
	x86 := NewAgent("x86", nil, ctrl.Route, act, WithTrace(func(m Message) { appliedAt = s.Now() }))
	if err := ctrl.RegisterIsland(IslandHandle{Name: "x86", Local: x86.Deliver}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterEntity(Entity{ID: 1, Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	up := NewDeviceUplink(mb)
	up.SetReceiver(ctrl.Route)
	agent := NewAgent("ixp", up, nil, nil)
	agent.SendTune("x86", 1, 1)
	s.Run()
	if appliedAt != 150*sim.Microsecond {
		t.Fatalf("applied at %v, want 150us (one mailbox hop)", appliedAt)
	}
}

func TestAgentApplyErrorsCounted(t *testing.T) {
	act := &fakeActuator{fail: true}
	a := NewAgent("x", nil, func(Message) {}, act)
	a.Deliver(Message{Kind: KindTune, Entity: 1, Delta: 1})
	a.Deliver(Message{Kind: KindTrigger, Entity: 1})
	a.Deliver(Message{Kind: KindRegister})
	if got := a.Stats().ApplyErrors; got != 3 {
		t.Fatalf("ApplyErrors = %d", got)
	}
}

func TestAgentNilActuatorCountsError(t *testing.T) {
	a := NewAgent("x", nil, func(Message) {}, nil)
	a.Deliver(Message{Kind: KindTune})
	if a.Stats().ApplyErrors != 1 {
		t.Fatal("nil actuator delivery not counted as error")
	}
}

func TestAgentConstructionPanics(t *testing.T) {
	s := sim.New(1)
	tr := NewSimTransport(s, 0)
	for _, fn := range []func(){
		func() { NewAgent("", tr, nil, nil) },
		func() { NewAgent("x", nil, nil, nil) },
		func() { NewAgent("x", tr, func(Message) {}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad agent construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestAgentRateLimit(t *testing.T) {
	s := sim.New(1)
	var routed int
	a := NewAgent("ixp", nil, func(Message) { routed++ }, nil,
		WithRateLimit(s, 10*sim.Millisecond))
	s.At(0, func() {
		a.SendTune("x86", 1, 1) // allowed
		a.SendTune("x86", 1, 1) // dropped (same entity+kind)
		a.SendTune("x86", 2, 1) // allowed (different entity)
		a.SendTrigger("x86", 1) // allowed (different kind)
	})
	s.At(15*sim.Millisecond, func() {
		a.SendTune("x86", 1, 1) // allowed again after interval
	})
	s.Run()
	if routed != 4 {
		t.Fatalf("routed = %d, want 4", routed)
	}
	if got := a.Stats().RateLimitDropped; got != 1 {
		t.Fatalf("RateLimitDropped = %d", got)
	}
}

func TestRateLimiterZeroIntervalAllowsAll(t *testing.T) {
	s := sim.New(1)
	r := NewRateLimiter(s, 0)
	for i := 0; i < 10; i++ {
		if !r.Allow(KindTune, 1) {
			t.Fatal("zero-interval limiter dropped a message")
		}
	}
	if r.Interval() != 0 {
		t.Fatal("Interval() wrong")
	}
}

func TestRateLimiterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative interval did not panic")
		}
	}()
	NewRateLimiter(sim.New(1), -1)
}

func TestSimTransportValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative latency did not panic")
		}
	}()
	NewSimTransport(sim.New(1), -1)
}

func TestSimTransportCountsAndDelivers(t *testing.T) {
	s := sim.New(1)
	tr := NewSimTransport(s, 5*sim.Microsecond)
	var got []Message
	tr.SetReceiver(func(m Message) { got = append(got, m) })
	tr.Send(Message{Kind: KindTune, Entity: 1})
	tr.Send(Message{Kind: KindTrigger, Entity: 2})
	s.Run()
	if tr.Sent() != 2 || len(got) != 2 {
		t.Fatalf("Sent = %d, delivered = %d", tr.Sent(), len(got))
	}
}

func TestHostDownlinkDirection(t *testing.T) {
	s := sim.New(1)
	mb := pcie.NewMailbox(s, sim.Microsecond)
	down := NewHostDownlink(mb)
	var got []Message
	down.SetReceiver(func(m Message) { got = append(got, m) })
	down.Send(Message{Kind: KindTune, Entity: 7})
	s.Run()
	if len(got) != 1 || got[0].Entity != 7 {
		t.Fatalf("downlink delivery = %v", got)
	}
}

func TestX86ActuatorAppliesWeightAndBoost(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	d := hv.CreateDomain("web", 256, 1)
	hv.Start()
	act := NewX86Actuator(xen.NewCtl(hv))
	if err := act.ApplyTune(d.ID(), +64); err != nil {
		t.Fatal(err)
	}
	if d.Weight() != 320 {
		t.Fatalf("weight = %d, want 320", d.Weight())
	}
	// Clamping.
	if err := act.ApplyTune(d.ID(), -100000); err != nil {
		t.Fatal(err)
	}
	if d.Weight() != act.MinWeight {
		t.Fatalf("weight = %d, want clamp %d", d.Weight(), act.MinWeight)
	}
	if err := act.ApplyTune(d.ID(), +100000); err != nil {
		t.Fatal(err)
	}
	if d.Weight() != act.MaxWeight {
		t.Fatalf("weight = %d, want clamp %d", d.Weight(), act.MaxWeight)
	}
	if err := act.ApplyTrigger(d.ID()); err != nil {
		t.Fatal(err)
	}
	if err := act.ApplyTune(99, 1); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if err := act.ApplyTrigger(99); err == nil {
		t.Fatal("unknown entity trigger accepted")
	}
}

func newIXPForTest(s *sim.Simulator) *ixp.IXP {
	ch := pcie.NewChannel(s, "c", pcie.Config{})
	return ixp.New(s, ixp.Config{ThreadsPerFlow: 2}, ch, func(*netsim.Packet) {})
}

func TestIXPActuatorTune(t *testing.T) {
	s := sim.New(1)
	x := newIXPForTest(s)
	x.RegisterFlow(1)
	act := NewIXPActuator(s, x)
	if err := act.ApplyTune(1, +2); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowThreads(1); got != 4 {
		t.Fatalf("threads = %d, want 4", got)
	}
	// Floor at 1.
	if err := act.ApplyTune(1, -100); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowThreads(1); got != 1 {
		t.Fatalf("threads = %d, want 1", got)
	}
	if err := act.ApplyTune(9, 1); err == nil {
		t.Fatal("unknown flow accepted")
	}
}

func TestIXPActuatorTriggerTransient(t *testing.T) {
	s := sim.New(1)
	x := newIXPForTest(s)
	x.RegisterFlow(1)
	act := NewIXPActuator(s, x)
	if err := act.ApplyTrigger(1); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowThreads(1); got != 4 {
		t.Fatalf("threads during trigger = %d, want 4", got)
	}
	// Overlapping trigger does not stack.
	if err := act.ApplyTrigger(1); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowThreads(1); got != 4 {
		t.Fatalf("threads after overlapping trigger = %d, want 4", got)
	}
	s.RunUntil(200 * sim.Millisecond)
	if got := x.FlowThreads(1); got != 2 {
		t.Fatalf("threads after hold = %d, want restored 2", got)
	}
	if err := act.ApplyTrigger(42); err == nil {
		t.Fatal("unknown flow trigger accepted")
	}
}

func TestRequestClassPolicy(t *testing.T) {
	var sent []Message
	a := NewAgent("ixp", nil, func(m Message) { sent = append(sent, m) }, nil)
	p := NewRequestClassPolicy(a, "x86", TierEntities{Web: 1, App: 2, DB: 3}, 64)
	p.OnRequest(ReadRequest)
	if len(sent) != 3 {
		t.Fatalf("read request sent %d messages", len(sent))
	}
	byEntity := map[int]int{}
	for _, m := range sent {
		byEntity[m.Entity] = m.Delta
	}
	if byEntity[1] != p.ReadWebUp || byEntity[2] != p.AppUp || byEntity[3] != p.ReadDBDown {
		t.Fatalf("read deltas = %v", byEntity)
	}
	if byEntity[1] <= 0 || byEntity[3] >= 0 {
		t.Fatalf("read deltas have wrong signs: %v", byEntity)
	}
	sent = nil
	p.OnRequest(WriteRequest)
	byEntity = map[int]int{}
	for _, m := range sent {
		byEntity[m.Entity] = m.Delta
	}
	if byEntity[3] != p.WriteDBUp || byEntity[2] != p.AppUp || byEntity[1] != p.WriteWebDown {
		t.Fatalf("write deltas = %v", byEntity)
	}
	if byEntity[3] <= 0 || byEntity[1] >= 0 {
		t.Fatalf("write deltas have wrong signs: %v", byEntity)
	}
	sent = nil
	p.OnRequest(NeutralRequest)
	if len(sent) != 0 {
		t.Fatal("neutral request sent messages")
	}
	r, w := p.Counts()
	if r != 1 || w != 1 {
		t.Fatalf("Counts = %d, %d", r, w)
	}
}

func TestRequestClassPolicyDefaultsAndPanics(t *testing.T) {
	a := NewAgent("ixp", nil, func(Message) {}, nil)
	p := NewRequestClassPolicy(a, "x86", TierEntities{}, 0)
	if p.step != 64 {
		t.Fatalf("default step = %d", p.step)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil agent did not panic")
		}
	}()
	NewRequestClassPolicy(nil, "x86", TierEntities{}, 0)
}

func TestStreamQoSPolicy(t *testing.T) {
	var sent []Message
	a := NewAgent("ixp", nil, func(m Message) { sent = append(sent, m) }, nil)
	p := NewStreamQoSPolicy(a, "x86")
	// The paper's two streams: 1 Mbit/25fps gets both increments (256->512
	// from base 256); 300 kbit/20fps gets the bitrate increment only
	// (256->384); a genuinely low stream gets a decrease.
	p.OnSession(ixp.StreamState{VMID: 1, BitrateBn: 1e6, FrameRate: 25})
	p.OnSession(ixp.StreamState{VMID: 2, BitrateBn: 300e3, FrameRate: 20})
	p.OnSession(ixp.StreamState{VMID: 3, BitrateBn: 100e3, FrameRate: 15})
	if len(sent) != 3 {
		t.Fatalf("sent %d messages", len(sent))
	}
	if sent[0].Entity != 1 || sent[0].Delta != 2*p.IncreaseStep {
		t.Fatalf("high stream tune = %v", sent[0])
	}
	if sent[1].Entity != 2 || sent[1].Delta != p.IncreaseStep {
		t.Fatalf("mid stream tune = %v", sent[1])
	}
	if sent[2].Entity != 3 || sent[2].Delta != p.DecreaseStep {
		t.Fatalf("low stream tune = %v", sent[2])
	}
	// High frame-rate alone qualifies for one increment.
	if got := p.DeltaFor(ixp.StreamState{VMID: 4, BitrateBn: 100e3, FrameRate: 30}); got != p.IncreaseStep {
		t.Fatalf("frame-rate-only delta = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil agent did not panic")
		}
	}()
	NewStreamQoSPolicy(nil, "x86")
}

func TestBufferWatermarkPolicy(t *testing.T) {
	s := sim.New(1)
	ch := pcie.NewChannel(s, "c", pcie.Config{})
	x := ixp.New(s, ixp.Config{
		ThreadsPerFlow: 1,
		DequeueCost:    10 * sim.Millisecond, // slow drain so the buffer fills
		BufferBytes:    1 << 20,
	}, ch, func(*netsim.Packet) {})
	x.RegisterFlow(1)

	var sent []Message
	a := NewAgent("ixp", nil, func(m Message) { sent = append(sent, m) }, nil)
	p := NewBufferWatermarkPolicy(a, "x86", 0)
	if p.Threshold() != DefaultWatermark {
		t.Fatalf("Threshold = %d, want default 128KB", p.Threshold())
	}
	if err := p.Attach(x, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(x, 42); err == nil {
		t.Fatal("attach to unknown flow accepted")
	}
	// Fill past 128 KB.
	for i := uint64(0); i < 100; i++ {
		x.Receive(&netsim.Packet{ID: i, Size: 1500, DstVM: 1})
	}
	s.RunUntil(10 * sim.Millisecond)
	if p.Fired() != 1 {
		t.Fatalf("policy fired %d times, want 1", p.Fired())
	}
	if len(sent) != 1 || sent[0].Kind != KindTrigger || sent[0].Entity != 1 {
		t.Fatalf("sent = %v", sent)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil agent did not panic")
		}
	}()
	NewBufferWatermarkPolicy(nil, "x86", 0)
}

func TestIXPPollActuator(t *testing.T) {
	s := sim.New(1)
	x := newIXPForTest(s)
	x.RegisterFlow(1)
	a := NewIXPPollActuator(x)
	base := x.FlowPollInterval(1)
	if base == 0 {
		t.Fatal("no default poll interval")
	}
	if err := a.ApplyTune(1, +2); err != nil {
		t.Fatal(err)
	}
	faster := x.FlowPollInterval(1)
	if faster >= base {
		t.Fatalf("positive tune did not shorten poll: %v -> %v", base, faster)
	}
	if err := a.ApplyTune(1, -4); err != nil {
		t.Fatal(err)
	}
	slower := x.FlowPollInterval(1)
	if slower <= faster {
		t.Fatalf("negative tune did not lengthen poll: %v -> %v", faster, slower)
	}
	// Clamping.
	if err := a.ApplyTune(1, +1000); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowPollInterval(1); got != a.MinInterval {
		t.Fatalf("poll = %v, want min clamp %v", got, a.MinInterval)
	}
	if err := a.ApplyTune(1, -1000); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowPollInterval(1); got != a.MaxInterval {
		t.Fatalf("poll = %v, want max clamp %v", got, a.MaxInterval)
	}
	if err := a.ApplyTrigger(1); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowPollInterval(1); got != a.MinInterval {
		t.Fatalf("trigger poll = %v, want min", got)
	}
	if err := a.ApplyTune(9, 1); err == nil {
		t.Fatal("unknown flow accepted")
	}
	if err := a.ApplyTrigger(9); err == nil {
		t.Fatal("unknown flow trigger accepted")
	}
}

func TestAgentTracerRecordsMessages(t *testing.T) {
	s := sim.New(1)
	tr := trace.New(s, trace.CatCoord, 64)
	act := &fakeActuator{}
	a := NewAgent("x86", nil, func(Message) {}, act, WithTracer(tr))
	a.SendTune("ixp", 1, +5)
	a.Deliver(Message{Kind: KindTrigger, Entity: 1})
	if tr.Count() != 2 {
		t.Fatalf("tracer recorded %d events, want 2", tr.Count())
	}
	evs := tr.Events()
	if !strings.Contains(evs[0].Msg, "send") || !strings.Contains(evs[1].Msg, "apply") {
		t.Fatalf("events = %v", evs)
	}
}

func TestX86ActuatorLoadTracking(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	d := hv.CreateDomain("vm", 256, 1)
	hv.Start()
	act := NewX86Actuator(xen.NewCtl(hv))
	act.MinWeight = 100
	act.MaxWeight = 2000
	stop := act.EnableLoadTracking(s, sim.Second, 100*sim.Millisecond)
	// Tunes accumulate into mass: weight = min + mass.
	if err := act.ApplyTune(d.ID(), +500); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight(); got != 600 {
		t.Fatalf("weight = %d, want min(100)+500", got)
	}
	// Negative mass clamps at zero.
	if err := act.ApplyTune(d.ID(), -10000); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight(); got != 100 {
		t.Fatalf("weight = %d, want floor 100", got)
	}
	// Mass above max clamps at MaxWeight.
	if err := act.ApplyTune(d.ID(), +50000); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight(); got != 2000 {
		t.Fatalf("weight = %d, want cap 2000", got)
	}
	// Decay pulls the weight back toward the floor over ~tau.
	if err := act.ApplyTune(d.ID(), -49000); err != nil { // mass 1000
		t.Fatal(err)
	}
	w0 := d.Weight()
	s.RunUntil(3 * sim.Second)
	if got := d.Weight(); got >= w0/2 {
		t.Fatalf("weight = %d after 3 tau, want decayed well below %d", got, w0)
	}
	stop()
	// Unknown entities still rejected in tracking mode.
	if err := act.ApplyTune(99, 1); err == nil {
		t.Fatal("unknown entity accepted in tracking mode")
	}
	// Invalid tracking configs panic.
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tracking config did not panic")
		}
	}()
	act.EnableLoadTracking(s, 0, sim.Second)
}

func TestX86ActuatorTriggerSurge(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	d := hv.CreateDomain("vm", 256, 1)
	hv.Start()
	act := NewX86Actuator(xen.NewCtl(hv))
	act.EnableTriggerSurge(s, 2.0, 100*sim.Millisecond)
	if err := act.ApplyTrigger(d.ID()); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight(); got != 512 {
		t.Fatalf("surged weight = %d, want 512", got)
	}
	// Overlapping trigger extends rather than stacks.
	s.RunUntil(50 * sim.Millisecond)
	if err := act.ApplyTrigger(d.ID()); err != nil {
		t.Fatal(err)
	}
	if got := d.Weight(); got != 512 {
		t.Fatalf("weight after overlapping trigger = %d", got)
	}
	// Restores after the (extended) hold.
	s.RunUntil(120 * sim.Millisecond)
	if got := d.Weight(); got != 512 {
		t.Fatalf("surge ended early: %d", got)
	}
	s.RunUntil(200 * sim.Millisecond)
	if got := d.Weight(); got != 256 {
		t.Fatalf("weight = %d after hold, want restored 256", got)
	}
	if err := act.ApplyTrigger(99); err == nil {
		t.Fatal("unknown entity trigger accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid surge config did not panic")
		}
	}()
	act.EnableTriggerSurge(s, 0.5, sim.Second)
}

func TestLoadTrackPolicyUnit(t *testing.T) {
	var sent []Message
	a := NewAgent("ixp", nil, func(m Message) { sent = append(sent, m) }, nil)
	p := NewLoadTrackPolicy(a, "x86", TierEntities{Web: 1, App: 2, DB: 3})
	p.Scale = 2
	p.OnRequest(10, 5, 0) // db zero demand: no message for it
	if p.Requests() != 1 {
		t.Fatalf("Requests = %d", p.Requests())
	}
	if len(sent) != 2 {
		t.Fatalf("sent %d messages, want 2", len(sent))
	}
	if sent[0].Entity != 1 || sent[0].Delta != 20 {
		t.Fatalf("web tune = %v", sent[0])
	}
	if sent[1].Entity != 2 || sent[1].Delta != 10 {
		t.Fatalf("app tune = %v", sent[1])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil agent did not panic")
		}
	}()
	NewLoadTrackPolicy(nil, "x86", TierEntities{})
}

func TestOutstandingLoadPolicyUnit(t *testing.T) {
	var sent []Message
	a := NewAgent("ixp", nil, func(m Message) { sent = append(sent, m) }, nil)
	p := NewOutstandingLoadPolicy(a, "x86", TierEntities{Web: 1, App: 2, DB: 3})
	p.OnRequest(10, 4, 20)
	p.OnResponse(10, 4, 20)
	req, resp := p.Counts()
	if req != 1 || resp != 1 {
		t.Fatalf("Counts = %d, %d", req, resp)
	}
	if len(sent) != 6 {
		t.Fatalf("sent %d messages, want 6", len(sent))
	}
	// Urgency factors: web x3, app x1.5, db x1; response mirrors negatively.
	if sent[0].Delta != 30 || sent[1].Delta != 6 || sent[2].Delta != 20 {
		t.Fatalf("request deltas = %d %d %d", sent[0].Delta, sent[1].Delta, sent[2].Delta)
	}
	if sent[3].Delta != -30 || sent[4].Delta != -6 || sent[5].Delta != -20 {
		t.Fatalf("response deltas = %d %d %d", sent[3].Delta, sent[4].Delta, sent[5].Delta)
	}
	// Request/response deltas telescope to zero.
	sum := 0
	for _, m := range sent {
		sum += m.Delta
	}
	if sum != 0 {
		t.Fatalf("deltas do not telescope: %d", sum)
	}
	if a.Name() != "ixp" {
		t.Fatal("Name wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil agent did not panic")
		}
	}()
	NewOutstandingLoadPolicy(nil, "x86", TierEntities{})
}
