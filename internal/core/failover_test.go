package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testCheckpoint builds a representative checkpoint with every section
// populated.
func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Seq: 7, Term: 3, T: 12 * sim.Second,
		Islands: []string{"ixp", "x86"},
		Entities: []Entity{
			{ID: 1, Name: "web", Home: "x86"},
			{ID: 2, Name: "db", Home: "x86"},
		},
		Leases: []LeaseSnapshot{
			{Island: "ixp", State: LeaseDead, LastHeard: 9 * sim.Second, DeadAt: 11 * sim.Second},
			{Island: "x86", State: LeaseAlive, LastHeard: 12 * sim.Second},
		},
		Epochs: []EpochSnapshot{{Island: "ixp", Epoch: 41}, {Island: "x86", Epoch: 17}},
		Counters: CtrlCounters{
			Routed: 99, ShedTunes: 4, BoostTunes: 5, Heartbeats: 200,
			StrayAcks: 1, LeaseExpiries: 2, Rejoins: 1, FlapSuppressed: 3,
			Unroutable: [unrouteReasonCount]uint64{1, 2, 3},
		},
		Baselines: []BaselineSnapshot{{Entity: 1, Weight: 256}, {Entity: 2, Weight: 512}},
		Endpoints: []EndpointSeqState{
			{Name: "host-downlink", NextSeq: 120, Floor: 118, Expected: 90},
			{Name: "ixp-uplink", NextSeq: 90, Floor: 90, Expected: 120},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := testCheckpoint()
	enc := AppendCheckpoint(nil, ck)
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(ck, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, ck)
	}
	// Same state must always encode to the same bytes.
	if again := AppendCheckpoint(nil, ck); string(again) != string(enc) {
		t.Fatal("checkpoint encoding is not deterministic")
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	enc := AppendCheckpoint(nil, testCheckpoint())

	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := DecodeCheckpoint([]byte("FLT1xxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[4] = 0xFF // version byte
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	for _, cut := range []int{len(enc) - 1, len(enc) / 2, 7} {
		if _, err := DecodeCheckpoint(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Flip every body byte in turn: the CRC must catch each one.
	for i := 10; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("corrupt byte %d accepted", i)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), enc...), 0)); err == nil ||
		!strings.Contains(err.Error(), "body length") {
		t.Fatal("trailing byte accepted")
	}
}

func TestSnapshotRestoreControllerState(t *testing.T) {
	s := sim.New(1)
	c := NewController()
	var got []Message
	if err := c.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) { got = append(got, m) }}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterEntity(Entity{ID: 1, Name: "web", Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Route(Message{Kind: KindTune, From: "ixp", Target: "x86", Entity: 1, Delta: 8})
	}
	c.Route(Message{Kind: KindTune, From: "ixp", Target: "nowhere"}) // unroutable

	ck := c.Snapshot()
	if ck.Counters.Routed != 5 || ck.Counters.Unroutable[UnrouteUnknownTarget] != 1 {
		t.Fatalf("snapshot counters = %+v", ck.Counters)
	}
	if len(ck.Epochs) != 1 || ck.Epochs[0] != (EpochSnapshot{Island: "x86", Epoch: 5}) {
		t.Fatalf("snapshot epochs = %+v", ck.Epochs)
	}

	fresh := NewController()
	if err := fresh.RegisterIsland(IslandHandle{Name: "x86", Local: func(Message) {}}); err != nil {
		t.Fatal(err)
	}
	fresh.RestoreSnapshot(ck, s.Now())
	if fresh.Routed() != 5 || fresh.RoutedEpoch("x86") != 5 {
		t.Fatalf("restored routed=%d epoch=%d", fresh.Routed(), fresh.RoutedEpoch("x86"))
	}
	if fresh.UnroutableFor(UnrouteUnknownTarget) != 1 {
		t.Fatal("restored unroutable counters lost")
	}
}

// failoverRig is a minimal two-island controller group for unit tests.
type failoverRig struct {
	s     *sim.Simulator
	g     *ControllerGroup
	x86   []Message // messages delivered to the x86 island (all controllers)
	epoch uint64    // the fake agent's authoritative actuation epoch
}

func newFailoverRig(t *testing.T, cfg FailoverConfig) *failoverRig {
	t.Helper()
	r := &failoverRig{s: sim.New(1)}
	ctrl := NewController()
	r.g = NewControllerGroup(r.s, ctrl, cfg)
	if err := r.g.RegisterIsland(IslandHandle{Name: "x86", Local: func(m Message) {
		r.x86 = append(r.x86, m)
		r.epoch++
	}}); err != nil {
		t.Fatal(err)
	}
	if err := r.g.RegisterEntity(Entity{ID: 1, Name: "web", Home: "x86"}); err != nil {
		t.Fatal(err)
	}
	r.g.SetReconciler("x86", func() uint64 { return r.epoch })
	r.g.Start()
	return r
}

func (r *failoverRig) tune() {
	r.g.Route(Message{Kind: KindTune, From: "ixp", Target: "x86", Entity: 1, Delta: 8})
}

func TestFailoverElectionBound(t *testing.T) {
	cfg := FailoverConfig{Replicas: 3}
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	crashAt := 2 * sim.Second
	r.s.At(crashAt, func() { r.g.CrashReplica(0) })
	r.s.RunUntil(crashAt)
	if r.g.PrimaryID() != -1 {
		t.Fatalf("primary id after crash = %d", r.g.PrimaryID())
	}

	// The issue's bound: a standby must be promoted within the configured
	// election window — (ElectionBeats+1) heartbeat intervals — of death.
	bound := sim.Time(cfg.ElectionBeats+1) * cfg.HeartbeatInterval
	r.s.RunUntil(crashAt + bound)
	st := r.g.Stats()
	if st.Promotions != 1 || r.g.PrimaryID() != 1 {
		t.Fatalf("after bound: promotions=%d primary=%d (want lowest-id standby 1)", st.Promotions, r.g.PrimaryID())
	}
	if st.Term != 1 {
		t.Fatalf("term = %d", st.Term)
	}
	if r.g.Phase(1) != PhasePrimary || r.g.Phase(0) != PhaseDown || r.g.Phase(2) != PhaseStandby {
		t.Fatalf("phases = %v %v %v", r.g.Phase(0), r.g.Phase(1), r.g.Phase(2))
	}

	// The promoted controller routes: tunes reach the island again.
	before := len(r.x86)
	r.tune()
	if len(r.x86) != before+1 {
		t.Fatal("promoted controller did not route")
	}
}

func TestFailoverDeterministicElection(t *testing.T) {
	// Two identical runs must elect identically (no wall clock, no
	// randomness): compare full stats structs.
	run := func() FailoverStats {
		cfg := FailoverConfig{Replicas: 3}
		r := newFailoverRig(t, cfg)
		r.s.At(1*sim.Second, func() { r.g.CrashReplica(0) })
		r.s.At(3*sim.Second, func() { r.g.RestoreReplica(0) })
		r.s.At(5*sim.Second, func() { r.g.CrashReplica(1) })
		ticker := r.s.Ticker(100*sim.Millisecond, func() { r.tune() })
		defer ticker()
		r.s.RunUntil(10 * sim.Second)
		return r.g.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("elections diverged:\n a=%+v\n b=%+v", a, b)
	}
	if a.Promotions != 2 {
		t.Fatalf("promotions = %d, want 2 (replica 1, then replica 2 or restored 0)", a.Promotions)
	}
}

func TestFailoverCheckpointTapAndStaleDrop(t *testing.T) {
	cfg := FailoverConfig{Replicas: 2}
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	// Route 10 tunes, then lose 3 in flight: the agent's authoritative
	// epoch stays behind the standby's tap view.
	r.s.At(1*sim.Second, func() {
		for i := 0; i < 10; i++ {
			r.tune()
		}
		r.epoch -= 3 // pretend the last 3 never reached the agent
	})
	r.s.At(2*sim.Second, func() { r.g.CrashReplica(0) })
	r.s.RunUntil(4 * sim.Second)

	st := r.g.Stats()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d", st.Promotions)
	}
	// Anti-entropy: the recovered view (10, from checkpoint + tap) is
	// ahead of the agent (7) — exactly 3 stale decisions dropped.
	if st.StaleDropped != 3 || st.Reconciliations == 0 {
		t.Fatalf("staleDropped=%d reconciliations=%d, want 3 stale", st.StaleDropped, st.Reconciliations)
	}
	if got := r.g.Primary().RoutedEpoch("x86"); got != r.epoch {
		t.Fatalf("post-reconcile view %d != agent epoch %d", got, r.epoch)
	}
}

func TestFailoverEpochAdoption(t *testing.T) {
	cfg := FailoverConfig{Replicas: 2, CheckpointInterval: 10 * sim.Second}
	r := newFailoverRig(t, cfg)

	// The agent applied decisions the checkpoint never saw (epoch ahead of
	// any view): the promoted controller must adopt the agent's count.
	r.s.At(1*sim.Second, func() { r.epoch += 5 })
	r.s.At(2*sim.Second, func() { r.g.CrashReplica(0) })
	r.s.RunUntil(4 * sim.Second)

	st := r.g.Stats()
	if st.EpochAdoptions != 1 {
		t.Fatalf("epochAdoptions = %d", st.EpochAdoptions)
	}
	if got := r.g.Primary().RoutedEpoch("x86"); got != r.epoch {
		t.Fatalf("adopted epoch %d != agent epoch %d", got, r.epoch)
	}
	if st.StaleDropped != 0 {
		t.Fatalf("staleDropped = %d on an agent-ahead run", st.StaleDropped)
	}
}

func TestFailoverNoPrimaryDrops(t *testing.T) {
	cfg := FailoverConfig{Replicas: 1} // solo: nothing to fail over to
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	r.s.At(1*sim.Second, func() { r.g.CrashReplica(0) })
	r.s.At(1500*sim.Millisecond, func() { r.tune(); r.tune() })
	r.s.RunUntil(2 * sim.Second)

	st := r.g.Stats()
	if st.NoPrimaryDrops != 2 {
		t.Fatalf("noPrimaryDrops = %d", st.NoPrimaryDrops)
	}

	// Restore: the solo replica recovers from the durable store and
	// promotes itself one election bound later, counters intact.
	routedBefore := r.g.Primary().Routed()
	r.s.At(2*sim.Second, func() { r.g.RestoreReplica(0) })
	r.s.RunUntil(2*sim.Second + sim.Time(cfg.ElectionBeats+1)*cfg.HeartbeatInterval)
	st = r.g.Stats()
	if st.Promotions != 1 || st.Restarts != 1 {
		t.Fatalf("promotions=%d restarts=%d", st.Promotions, st.Restarts)
	}
	if got := r.g.Primary().Routed(); got != routedBefore {
		t.Fatalf("restored Routed=%d, want %d (checkpointed counters)", got, routedBefore)
	}
}

func TestFailoverPartitionSupersedeAndDemote(t *testing.T) {
	cfg := FailoverConfig{Replicas: 2}
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	r.s.At(1*sim.Second, func() { r.g.IsolateReplica(0) })
	r.s.RunUntil(3 * sim.Second)
	st := r.g.Stats()
	if st.Promotions != 1 || r.g.PrimaryID() != 1 {
		t.Fatalf("standby did not supersede isolated primary: %+v", st)
	}
	// Split brain while partitioned: the old primary still believes.
	if r.g.Phase(0) != PhasePrimary {
		t.Fatalf("isolated old primary phase = %v", r.g.Phase(0))
	}

	r.s.At(3*sim.Second, func() { r.g.HealReplica(0) })
	r.s.RunUntil(4 * sim.Second)
	st = r.g.Stats()
	if st.Demotions != 1 || r.g.Phase(0) != PhaseStandby {
		t.Fatalf("healed superseded primary not demoted: demotions=%d phase=%v", st.Demotions, r.g.Phase(0))
	}
	if r.g.PrimaryID() != 1 || st.Term != 1 {
		t.Fatalf("primary=%d term=%d after heal", r.g.PrimaryID(), st.Term)
	}
}

func TestFailoverPartitionHealResumes(t *testing.T) {
	// Partition shorter than the election bound: the primary heals before
	// any standby promotes, resumes duties, and reconciles.
	cfg := FailoverConfig{Replicas: 2}
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	r.s.At(1*sim.Second, func() { r.g.IsolateReplica(0) })
	r.s.At(1*sim.Second+cfg.HeartbeatInterval, func() { r.g.HealReplica(0) })
	r.s.RunUntil(3 * sim.Second)

	st := r.g.Stats()
	if st.Promotions != 0 || r.g.PrimaryID() != 0 {
		t.Fatalf("short partition triggered an election: %+v", st)
	}
	if st.Heals != 1 || st.Reconciliations == 0 {
		t.Fatalf("healed primary did not reconcile: %+v", st)
	}
	before := len(r.x86)
	r.tune()
	if len(r.x86) != before+1 {
		t.Fatal("healed primary does not route")
	}
}

func TestFailoverIsolatedStandbyCannotWin(t *testing.T) {
	cfg := FailoverConfig{Replicas: 3}
	cfg.applyDefaults()
	r := newFailoverRig(t, cfg)

	// Isolate the would-be winner (replica 1) before killing the primary:
	// replica 2 must win instead.
	r.s.At(1*sim.Second, func() { r.g.IsolateReplica(1) })
	r.s.At(2*sim.Second, func() { r.g.CrashReplica(0) })
	r.s.RunUntil(4 * sim.Second)

	if r.g.PrimaryID() != 2 {
		t.Fatalf("primary = %d, want 2 (1 is partitioned)", r.g.PrimaryID())
	}
	// Healing replica 1 later makes it a connected standby again, not a
	// competing primary.
	r.s.At(4*sim.Second, func() { r.g.HealReplica(1) })
	r.s.RunUntil(6 * sim.Second)
	if r.g.Phase(1) != PhaseStandby || r.g.PrimaryID() != 2 {
		t.Fatalf("healed standby phase=%v primary=%d", r.g.Phase(1), r.g.PrimaryID())
	}
}

func TestFailoverCheckpointCadence(t *testing.T) {
	cfg := FailoverConfig{Replicas: 2, CheckpointInterval: sim.Second}
	r := newFailoverRig(t, cfg)
	r.s.RunUntil(5500 * sim.Millisecond)
	st := r.g.Stats()
	// One immediate checkpoint at Start plus one per second.
	if st.Checkpoints != 6 {
		t.Fatalf("checkpoints = %d, want 6", st.Checkpoints)
	}
	if st.CheckpointBytes == 0 {
		t.Fatal("checkpoint bytes not counted")
	}
}
