package core

// Fuzz harness for the reliability layer: the fuzzer owns the fault
// schedule — every Send on either direction (data, retransmits, acks)
// consumes one script byte deciding drop/duplicate/delay — and the
// invariants assert the delivery-class contract of ClassFor:
//
//   - at-most-once, universally: no sequenced message reaches the
//     application twice, under any loss/dup/reorder interleaving;
//   - in-order: the application sees strictly increasing sequence numbers;
//   - at-least-once accounting: a Trigger can only go missing if the
//     sender abandoned it (GaveUp) or the receiver skipped its gap
//     (GapSkips); a Tune can additionally expire at its deadline;
//   - quiescence: once the simulator drains, nothing is outstanding at
//     either endpoint (every pending message keeps a live timer);
//   - determinism: replaying the same script reproduces every counter.
//
// The script is finite and an exhausted script delivers cleanly, so every
// run terminates: retransmissions eventually cross a clean link.

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// fuzzScript is a shared cursor over the fuzz input: both link directions
// draw from the same byte stream, giving the fuzzer full control over the
// interleaving of data faults and ack faults.
type fuzzScript struct {
	bytes []byte
	pos   int
}

// next returns the script's next fault byte; an exhausted script yields 0,
// a clean minimum-latency delivery.
func (sc *fuzzScript) next() byte {
	if sc.pos >= len(sc.bytes) {
		return 0
	}
	b := sc.bytes[sc.pos]
	sc.pos++
	return b
}

// fuzzTransport is one unidirectional link whose per-send behaviour is
// scripted: bit 7 drops the message, bit 6 duplicates it, and the low six
// bits add delay in 100us steps on top of the 100us base latency.
// Variable delays produce natural reordering between back-to-back sends.
type fuzzTransport struct {
	s      *sim.Simulator
	script *fuzzScript
	recv   func(Message)
}

func (t *fuzzTransport) SetReceiver(fn func(Message)) { t.recv = fn }

func (t *fuzzTransport) Send(m Message) {
	b := t.script.next()
	if b&0x80 != 0 {
		return // dropped
	}
	base := 100 * sim.Microsecond
	delay := base + sim.Time(b&0x3f)*base
	t.deliverAfter(delay, m)
	if b&0x40 != 0 {
		t.deliverAfter(2*delay+base, m) // duplicate, further delayed
	}
}

func (t *fuzzTransport) deliverAfter(d sim.Time, m Message) {
	t.s.After(d, func() {
		if t.recv != nil {
			t.recv(m)
		}
	})
}

// fuzzOutcome is everything one scripted run observed, for both the
// invariant checks and the replay-determinism comparison.
type fuzzOutcome struct {
	SentTunes, SentTriggers int
	DeliveredSeqs           []uint64
	DeliveredPerEntity      map[int]int
	TriggerEntities         map[int]bool
	AStats, BStats          ReliableStats
	OutstandingA            int
	OutstandingB            int
}

// runFuzzSchedule drives one sender/receiver pair through the scripted
// fault schedule: data[0] picks the message count, data[1] the send
// spacing, and the rest is the per-send fault script.
func runFuzzSchedule(data []byte) fuzzOutcome {
	var msgs, spacing byte
	if len(data) > 0 {
		msgs = data[0]
	}
	if len(data) > 1 {
		spacing = data[1]
	}
	script := &fuzzScript{}
	if len(data) > 2 {
		script.bytes = data[2:]
	}
	n := int(msgs)%24 + 1
	gap := sim.Time(int(spacing)%16+1) * 500 * sim.Microsecond

	s := sim.New(1)
	a2b := &fuzzTransport{s: s, script: script}
	b2a := &fuzzTransport{s: s, script: script}
	a := NewReliableEndpoint(s, "a", a2b, b2a, ReliableConfig{})
	b := NewReliableEndpoint(s, "b", b2a, a2b, ReliableConfig{})

	out := fuzzOutcome{
		DeliveredPerEntity: make(map[int]int),
		TriggerEntities:    make(map[int]bool),
	}
	b.SetReceiver(func(m Message) {
		out.DeliveredSeqs = append(out.DeliveredSeqs, m.Seq)
		out.DeliveredPerEntity[m.Entity]++
	})

	for i := 0; i < n; i++ {
		i := i
		kind := KindTune
		if i%2 == 1 {
			kind = KindTrigger
			out.TriggerEntities[i] = true
			out.SentTriggers++
		} else {
			out.SentTunes++
		}
		s.After(sim.Time(i)*gap, func() {
			a.Send(Message{Kind: kind, From: "a", Target: "b", Entity: i, Delta: i})
		})
	}
	s.Run()

	out.AStats, out.BStats = a.Stats(), b.Stats()
	out.OutstandingA, out.OutstandingB = a.Outstanding(), b.Outstanding()
	return out
}

func FuzzReliableEndpoint(f *testing.F) {
	// Seed corpus echoing the chaos-test scenarios: clean link, heavy
	// burst loss, duplication with jitter, ~30% loss, and maximal reorder.
	f.Add([]byte{5, 2})
	f.Add([]byte{16, 1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{9, 0, 0x40, 0x05, 0x40, 0x12, 0x40, 0x01, 0x40, 0x3f})
	f.Add([]byte{23, 3, 0x80, 0x03, 0x07, 0x80, 0x00, 0x11, 0x80, 0x02, 0x09, 0x80})
	f.Add([]byte{12, 1, 0x3f, 0x00, 0x3f, 0x00, 0x3f, 0x00, 0x3f, 0x00})
	f.Add([]byte{23, 0, 0x80, 0xc0, 0x41, 0x80, 0x80, 0xbf, 0x40, 0x00, 0x80, 0x3f, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		out := runFuzzSchedule(data)

		// Quiescence: a drained simulator means no live retransmission
		// timers, so nothing may still be outstanding.
		if out.OutstandingA != 0 || out.OutstandingB != 0 {
			t.Fatalf("outstanding after drain: a=%d b=%d", out.OutstandingA, out.OutstandingB)
		}

		// At-most-once application delivery, for every sequenced kind.
		for entity, count := range out.DeliveredPerEntity {
			if count > 1 {
				t.Fatalf("entity %d delivered %d times", entity, count)
			}
		}

		// In-order delivery: strictly increasing sequence numbers.
		for i := 1; i < len(out.DeliveredSeqs); i++ {
			if out.DeliveredSeqs[i] <= out.DeliveredSeqs[i-1] {
				t.Fatalf("out-of-order delivery: seqs %v", out.DeliveredSeqs)
			}
		}

		// Loss accounting. Triggers (at-least-once) may only go missing via
		// sender abandonment or a receiver gap-skip; Tunes (at-most-once)
		// may additionally expire at their deadline. GaveUp and GapSkips
		// are shared budgets across kinds, so check the sums.
		missingTriggers, missingTunes := 0, 0
		for entity := 0; entity < out.SentTunes+out.SentTriggers; entity++ {
			if out.DeliveredPerEntity[entity] > 0 {
				continue
			}
			if out.TriggerEntities[entity] {
				missingTriggers++
			} else {
				missingTunes++
			}
		}
		st := out.AStats
		if budget := st.GaveUp + out.BStats.GapSkips; uint64(missingTriggers) > budget {
			t.Fatalf("%d triggers missing but only %d abandoned/skipped (stats %+v / %+v)",
				missingTriggers, budget, st, out.BStats)
		}
		if budget := st.Expired + st.GaveUp + out.BStats.GapSkips; uint64(missingTriggers+missingTunes) > budget {
			t.Fatalf("%d messages missing but only %d expired/abandoned/skipped (stats %+v / %+v)",
				missingTriggers+missingTunes, budget, st, out.BStats)
		}

		// Conservation: the receiver delivered exactly what the sender
		// offered minus the accounted losses.
		if st.DataSent != uint64(out.SentTunes+out.SentTriggers) {
			t.Fatalf("DataSent=%d, want %d", st.DataSent, out.SentTunes+out.SentTriggers)
		}
		if got := uint64(len(out.DeliveredSeqs)); got != out.BStats.Delivered {
			t.Fatalf("application saw %d deliveries, stats say %d", got, out.BStats.Delivered)
		}

		// Determinism: replaying the identical script reproduces the run.
		again := runFuzzSchedule(data)
		if !reflect.DeepEqual(out, again) {
			t.Fatalf("replay diverged:\n first: %+v\nsecond: %+v", out, again)
		}
	})
}
