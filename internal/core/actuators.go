package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/energy"
	"repro/internal/ixp"
	"repro/internal/sim"
	"repro/internal/xen"
)

// X86Actuator applies coordination messages to the Xen island: Tune deltas
// become credit-weight adjustments through the XenCtrl interface, Triggers
// become runqueue boosts. Weights are clamped to [MinWeight, MaxWeight] so
// runaway policies cannot starve or monopolize the host.
//
// The paper leaves the translation of a Tune's "+/- numerical value" to the
// receiving island ("translated into corresponding weight or priority
// adjustments, depending on the remote island's scheduling algorithm",
// §3.3). Two translations are provided:
//
//   - direct (default): the delta is added to the weight, clamped;
//   - load-tracking (EnableLoadTracking): deltas accumulate into a
//     per-entity boost mass that decays exponentially, and the weight is
//     MinWeight + mass. With the IXP sending demand-scaled deltas, each
//     VM's weight then tracks its recently *offered* load with an interior
//     equilibrium instead of banging into the clamps — the translation the
//     RUBiS coordination scheme uses.
type X86Actuator struct {
	ctl       *xen.Ctl
	MinWeight int // default 64
	MaxWeight int // default 4096

	baselines map[int]int
	reverts   uint64

	tracking  bool
	mass      map[int]float64
	stopDecay func()

	surgeSim    *sim.Simulator
	surgeFactor float64
	surgeHold   sim.Time
	surges      map[int]*surgeState
}

// surgeState tracks one entity's in-flight trigger surge.
type surgeState struct {
	preWeight int
	expire    *sim.Event
}

// NewX86Actuator wraps a XenCtrl interface with default clamps.
func NewX86Actuator(ctl *xen.Ctl) *X86Actuator {
	return &X86Actuator{ctl: ctl, MinWeight: 64, MaxWeight: 4096, baselines: make(map[int]int)}
}

// SetBaseline records entity's safe-harbor weight, the value
// RevertToBaseline restores when the coordination plane is lost. The
// platform records each guest's initial weight here at registration.
func (x *X86Actuator) SetBaseline(entity, weight int) {
	x.baselines[entity] = weight
}

// RevertToBaseline abandons all coordination-derived state — in-flight
// trigger surges and accumulated boost mass — and restores every entity
// with a recorded baseline to that weight. The graceful-degradation path
// calls it after the hold-down timer: stale policy decisions must not
// outlive the uplink that justified them.
func (x *X86Actuator) RevertToBaseline() {
	x.reverts++
	ids := make([]int, 0, len(x.baselines))
	for e := range x.baselines {
		ids = append(ids, e)
	}
	sort.Ints(ids)
	for _, e := range ids {
		if st, ok := x.surges[e]; ok {
			st.expire.Cancel()
			delete(x.surges, e)
		}
		if x.tracking {
			x.mass[e] = 0
		}
		_ = x.ctl.SetWeight(e, x.baselines[e]) // unknown entities are a no-op
	}
}

// Reverts returns how many times RevertToBaseline ran.
func (x *X86Actuator) Reverts() uint64 { return x.reverts }

// Baselines returns the recorded safe-harbor weights sorted by entity ID —
// the checkpoint provider for controller failover (a promoted controller
// must know the same baselines so a later degradation still reverts
// correctly).
func (x *X86Actuator) Baselines() []BaselineSnapshot {
	ids := make([]int, 0, len(x.baselines))
	for e := range x.baselines {
		ids = append(ids, e)
	}
	sort.Ints(ids)
	out := make([]BaselineSnapshot, 0, len(ids))
	for _, e := range ids {
		out = append(out, BaselineSnapshot{Entity: e, Weight: x.baselines[e]})
	}
	return out
}

// EnableLoadTracking switches the actuator to the load-tracking
// translation: every period, each entity's accumulated boost mass decays
// with time constant tau, and its weight is recomputed as MinWeight + mass.
// It returns a stop function cancelling the decay timer.
func (x *X86Actuator) EnableLoadTracking(s *sim.Simulator, tau, period sim.Time) (stop func()) {
	if tau <= 0 || period <= 0 {
		panic(fmt.Sprintf("core: load tracking needs positive tau (%v) and period (%v)", tau, period))
	}
	x.tracking = true
	x.mass = make(map[int]float64)
	factor := math.Exp(-float64(period) / float64(tau))
	x.stopDecay = s.Ticker(period, func() {
		ids := make([]int, 0, len(x.mass))
		for e := range x.mass {
			ids = append(ids, e)
		}
		sort.Ints(ids)
		for _, e := range ids {
			x.mass[e] *= factor
			x.applyMass(e)
		}
	})
	return x.stopDecay
}

// applyMass recomputes and installs the weight for entity e.
func (x *X86Actuator) applyMass(e int) {
	w := x.MinWeight + int(x.mass[e]+0.5)
	if w > x.MaxWeight {
		w = x.MaxWeight
	}
	_ = x.ctl.SetWeight(e, w) // entity validity was checked on first tune
}

// ApplyTune adjusts the domain's credit weight by delta, clamped (direct
// mode), or folds delta into the entity's decaying boost mass
// (load-tracking mode).
func (x *X86Actuator) ApplyTune(entity, delta int) error {
	if !x.tracking {
		_, err := x.ctl.AdjustWeight(entity, delta, x.MinWeight, x.MaxWeight)
		return err
	}
	if _, err := x.ctl.Weight(entity); err != nil {
		return err
	}
	m := x.mass[entity] + float64(delta)
	if m < 0 {
		m = 0
	}
	x.mass[entity] = m
	x.applyMass(entity)
	return nil
}

// EnableTriggerSurge strengthens the Trigger translation: in addition to
// the runqueue boost, the entity's weight is multiplied by factor for hold
// (repeated triggers extend the surge rather than stacking). This is the
// "as soon as possible" semantics of §3.3 sustained across an overload
// episode — each Figure 7 trigger produces a visible CPU-utilization spike.
func (x *X86Actuator) EnableTriggerSurge(s *sim.Simulator, factor float64, hold sim.Time) {
	if factor < 1 || hold <= 0 {
		panic(fmt.Sprintf("core: trigger surge factor %v hold %v", factor, hold))
	}
	x.surgeSim = s
	x.surgeFactor = factor
	x.surgeHold = hold
	x.surges = make(map[int]*surgeState)
}

// ApplyTrigger boosts the domain's VCPUs (preemptive semantics), plus the
// weight surge when enabled.
func (x *X86Actuator) ApplyTrigger(entity int) error {
	if err := x.ctl.Boost(entity); err != nil {
		return err
	}
	if x.surgeSim == nil {
		return nil
	}
	if st, ok := x.surges[entity]; ok {
		// Already surging: extend the elevated period.
		st.expire.Cancel()
		st.expire = x.surgeSim.After(x.surgeHold, func() { x.endSurge(entity) })
		return nil
	}
	w, err := x.ctl.Weight(entity)
	if err != nil {
		return err
	}
	surged := int(float64(w)*x.surgeFactor + 0.5)
	if surged > x.MaxWeight {
		surged = x.MaxWeight
	}
	if err := x.ctl.SetWeight(entity, surged); err != nil {
		return err
	}
	st := &surgeState{preWeight: w}
	st.expire = x.surgeSim.After(x.surgeHold, func() { x.endSurge(entity) })
	x.surges[entity] = st
	return nil
}

// endSurge restores the entity's pre-surge weight.
func (x *X86Actuator) endSurge(entity int) {
	st, ok := x.surges[entity]
	if !ok {
		return
	}
	delete(x.surges, entity)
	_ = x.ctl.SetWeight(entity, st.preWeight)
}

// IXPPollActuator is the alternative IXP-side Tune translation the paper
// names for I/O schedulers ("poll time adjustments"): each positive Tune
// unit shortens the flow's dequeue-thread polling interval by 20%, each
// negative unit lengthens it, clamped to [MinInterval, MaxInterval].
type IXPPollActuator struct {
	x *ixp.IXP
	// Interval clamps (defaults 5us and 5ms).
	MinInterval, MaxInterval sim.Time
}

// NewIXPPollActuator wraps an IXP with default clamps.
func NewIXPPollActuator(x *ixp.IXP) *IXPPollActuator {
	return &IXPPollActuator{x: x, MinInterval: 5 * sim.Microsecond, MaxInterval: 5 * sim.Millisecond}
}

// ApplyTune rescales the flow's polling interval by 0.8 per positive unit
// (1/0.8 per negative unit).
func (a *IXPPollActuator) ApplyTune(entity, delta int) error {
	cur := a.x.FlowPollInterval(entity)
	if cur == 0 {
		return fmt.Errorf("core: no IXP flow for entity %d", entity)
	}
	next := cur
	for i := 0; i < delta && next > a.MinInterval; i++ {
		next = next.Scale(0.8)
	}
	for i := 0; i > delta && next < a.MaxInterval; i-- {
		next = next.Scale(1.25)
	}
	if next < a.MinInterval {
		next = a.MinInterval
	}
	if next > a.MaxInterval {
		next = a.MaxInterval
	}
	return a.x.SetFlowPollInterval(entity, next)
}

// ApplyTrigger drops the flow's polling interval to the minimum (poll as
// fast as the hardware allows, ASAP semantics).
func (a *IXPPollActuator) ApplyTrigger(entity int) error {
	if a.x.FlowPollInterval(entity) == 0 {
		return fmt.Errorf("core: no IXP flow for entity %d", entity)
	}
	return a.x.SetFlowPollInterval(entity, a.MinInterval)
}

// IXPActuator applies coordination messages to the IXP island: Tune deltas
// become dequeue-thread allocation changes for the entity's flow queue;
// Triggers temporarily over-provision the flow's threads.
type IXPActuator struct {
	x   *ixp.IXP
	sim *sim.Simulator

	// TriggerExtraThreads and TriggerHold configure the transient thread
	// boost a Trigger grants (defaults: +2 threads for 100ms).
	TriggerExtraThreads int
	TriggerHold         sim.Time

	pendingRestore map[int]bool

	shedControl func(entity, delta int) error
}

// NewIXPActuator wraps an IXP with default trigger behaviour.
func NewIXPActuator(s *sim.Simulator, x *ixp.IXP) *IXPActuator {
	return &IXPActuator{
		x:                   x,
		sim:                 s,
		TriggerExtraThreads: 2,
		TriggerHold:         100 * sim.Millisecond,
		pendingRestore:      make(map[int]bool),
	}
}

// ApplyTune changes the flow's dequeue-thread count by delta (minimum 1).
func (a *IXPActuator) ApplyTune(entity, delta int) error {
	cur := a.x.FlowThreads(entity)
	if cur == 0 {
		return fmt.Errorf("core: no IXP flow for entity %d", entity)
	}
	n := cur + delta
	if n < 1 {
		n = 1
	}
	return a.x.SetFlowThreads(entity, n)
}

// ApplyTrigger temporarily raises the flow's thread allocation, restoring
// it after TriggerHold. Overlapping triggers extend the elevated period
// rather than stacking allocations.
func (a *IXPActuator) ApplyTrigger(entity int) error {
	cur := a.x.FlowThreads(entity)
	if cur == 0 {
		return fmt.Errorf("core: no IXP flow for entity %d", entity)
	}
	if a.pendingRestore[entity] {
		return nil // already elevated
	}
	if err := a.x.SetFlowThreads(entity, cur+a.TriggerExtraThreads); err != nil {
		return err
	}
	a.pendingRestore[entity] = true
	a.sim.After(a.TriggerHold, func() {
		delete(a.pendingRestore, entity)
		now := a.x.FlowThreads(entity)
		n := now - a.TriggerExtraThreads
		if n < 1 {
			n = 1
		}
		// Best effort; the flow may have been retuned meanwhile.
		_ = a.x.SetFlowThreads(entity, n)
	})
	return nil
}

// DVFSActuator extends the Tune vocabulary to island operating points: a
// Tune delta steps the island's DVFS ladder that many rungs (positive =
// faster / more pools ungated, negative = slower / more gated), and a
// Trigger jumps straight to the top point (the "as soon as possible"
// semantics of §3.3 applied to frequency). The actuator is addressed
// through an island-wide synthetic entity, since an operating point is a
// property of the island, not of any one guest; the entity argument is
// therefore ignored.
//
// Requests are best-effort by design: a step that lands while a voltage
// ramp is still in flight is dropped, not queued, so a burst of Tunes
// cannot build a backlog of stale frequency decisions.
type DVFSActuator struct {
	m *energy.Machine
}

// NewDVFSActuator wraps an island's DVFS state machine.
func NewDVFSActuator(m *energy.Machine) *DVFSActuator { return &DVFSActuator{m: m} }

// ApplyTune steps the island's operating point by delta rungs, clamped to
// the table ends. Dropped requests (transition in flight, already at the
// clamp) are not errors.
func (a *DVFSActuator) ApplyTune(entity, delta int) error {
	a.m.Step(delta)
	return nil
}

// ApplyTrigger jumps the island to its top operating point.
func (a *DVFSActuator) ApplyTrigger(entity int) error {
	a.m.SetIndex(len(a.m.Points()) - 1)
	return nil
}

// SetShedControl installs the early-admission hook ApplyShed delegates to
// (the application wires it to its per-class shedder; the actuator itself
// stays traffic-agnostic). Nil uninstalls it.
func (a *IXPActuator) SetShedControl(fn func(entity, delta int) error) { a.shedControl = fn }

// ApplyShed adjusts the IXP-side admission shed rate for the entity's
// traffic (ShedActuator). Without an installed shed control the
// adjustment is rejected.
func (a *IXPActuator) ApplyShed(entity, delta int) error {
	if a.shedControl == nil {
		return fmt.Errorf("core: IXP actuator has no shed control for entity %d", entity)
	}
	return a.shedControl(entity, delta)
}
