package core

import (
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// Transport carries coordination messages from one island toward the
// controller (and back). Implementations define latency behaviour; the
// prototype's transport is the PCIe mailbox.
type Transport interface {
	// Send conveys msg to the far side, invoking the receiver installed
	// with SetReceiver there.
	Send(msg Message)
	// SetReceiver installs the far side's message consumer.
	SetReceiver(fn func(Message))
}

// MailboxTransport adapts one direction of a pcie.Mailbox as a Transport:
// device->host for the IXP agent's uplink, host->device for the downlink.
type MailboxTransport struct {
	mb     *pcie.Mailbox
	toHost bool
}

// NewDeviceUplink returns the IXP-side transport sending toward the host
// (where the controller lives).
func NewDeviceUplink(mb *pcie.Mailbox) *MailboxTransport {
	return &MailboxTransport{mb: mb, toHost: true}
}

// NewHostDownlink returns the host-side transport sending toward the device.
func NewHostDownlink(mb *pcie.Mailbox) *MailboxTransport {
	return &MailboxTransport{mb: mb, toHost: false}
}

// Send conveys msg over the mailbox after its one-way latency.
func (t *MailboxTransport) Send(msg Message) {
	if t.toHost {
		t.mb.SendToHost(msg)
	} else {
		t.mb.SendToDevice(msg)
	}
}

// SetReceiver installs the consumer on the receiving end of this direction.
func (t *MailboxTransport) SetReceiver(fn func(Message)) {
	h := func(m pcie.Message) {
		cm, ok := m.(Message)
		if !ok {
			panic(fmt.Sprintf("core: non-coordination message %T on mailbox", m))
		}
		fn(cm)
	}
	if t.toHost {
		t.mb.OnHostReceive(h)
	} else {
		t.mb.OnDeviceReceive(h)
	}
}

// SimTransport is a standalone latency-modeled transport used for
// scalability studies of the coordination mechanisms (the paper's future
// work on large-scale multicores): it delivers messages after a fixed
// one-way latency without a PCIe device behind it.
type SimTransport struct {
	sim     *sim.Simulator
	latency sim.Time
	recv    func(Message)
	sent    uint64
}

// NewSimTransport returns a transport delivering after latency.
func NewSimTransport(s *sim.Simulator, latency sim.Time) *SimTransport {
	if latency < 0 {
		panic(fmt.Sprintf("core: negative transport latency %v", latency))
	}
	return &SimTransport{sim: s, latency: latency}
}

// Send conveys msg after the configured latency.
func (t *SimTransport) Send(msg Message) {
	t.sent++
	t.sim.After(t.latency, func() {
		if t.recv != nil {
			t.recv(msg)
		}
	})
}

// SetReceiver installs the message consumer.
func (t *SimTransport) SetReceiver(fn func(Message)) { t.recv = fn }

// Sent returns the number of messages sent.
func (t *SimTransport) Sent() uint64 { return t.sent }
