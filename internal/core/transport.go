package core

import (
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Transport carries coordination messages from one island toward the
// controller (and back). Implementations define latency behaviour; the
// prototype's transport is the PCIe mailbox.
type Transport interface {
	// Send conveys msg to the far side, invoking the receiver installed
	// with SetReceiver there.
	Send(msg Message)
	// SetReceiver installs the far side's message consumer.
	SetReceiver(fn func(Message))
}

// MailboxTransport adapts one direction of a pcie.Mailbox as a Transport:
// device->host for the IXP agent's uplink, host->device for the downlink.
type MailboxTransport struct {
	mb     *pcie.Mailbox
	toHost bool

	tracer   *trace.Tracer
	nonCoord uint64
	corrupt  uint64
}

// NewDeviceUplink returns the IXP-side transport sending toward the host
// (where the controller lives).
func NewDeviceUplink(mb *pcie.Mailbox) *MailboxTransport {
	return &MailboxTransport{mb: mb, toHost: true}
}

// NewHostDownlink returns the host-side transport sending toward the device.
func NewHostDownlink(mb *pcie.Mailbox) *MailboxTransport {
	return &MailboxTransport{mb: mb, toHost: false}
}

// SetTracer records dropped foreign messages into a structured trace.
func (t *MailboxTransport) SetTracer(tr *trace.Tracer) { t.tracer = tr }

// NonCoordDropped returns how many non-coordination messages arrived on the
// mailbox and were discarded.
func (t *MailboxTransport) NonCoordDropped() uint64 { return t.nonCoord }

// CorruptDropped returns how many arrivals failed checksum verification
// and were discarded. Nil-safe.
func (t *MailboxTransport) CorruptDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.corrupt
}

// Send conveys msg over the mailbox after its one-way latency, stamping
// the frame checksum so in-flight corruption is detectable on arrival.
func (t *MailboxTransport) Send(msg Message) {
	msg.Sum = msg.PayloadSum()
	if t.toHost {
		t.mb.SendToHost(msg)
	} else {
		t.mb.SendToDevice(msg)
	}
}

// SetReceiver installs the consumer on the receiving end of this direction.
// A payload that is not a coordination message, or one whose checksum no
// longer matches its contents, is counted and dropped — a hostile or
// corrupt mailbox message must degrade the control plane, never drive it.
func (t *MailboxTransport) SetReceiver(fn func(Message)) {
	h := func(m pcie.Message) {
		cm, ok := m.(Message)
		if !ok {
			t.nonCoord++
			if t.tracer.Enabled(trace.CatCoord) {
				t.tracer.Emit(trace.CatCoord, "drop non-coordination mailbox message %T", m)
			}
			return
		}
		if cm.Sum != 0 && cm.Sum != cm.PayloadSum() {
			t.corrupt++
			if t.tracer.Enabled(trace.CatCoord) {
				t.tracer.Emit(trace.CatCoord, "drop corrupt mailbox frame %v", cm.Kind)
			}
			return
		}
		fn(cm)
	}
	if t.toHost {
		t.mb.OnHostReceive(h)
	} else {
		t.mb.OnDeviceReceive(h)
	}
}

// SimTransport is a standalone latency-modeled transport used for
// scalability studies of the coordination mechanisms (the paper's future
// work on large-scale multicores): it delivers messages after a fixed
// one-way latency without a PCIe device behind it. An optional
// pcie.ChannelFaults process makes it faultable the same way the mailbox
// is, so Mesh and cmd/coordscale runs can be chaos-tested too.
type SimTransport struct {
	sim     *sim.Simulator
	latency sim.Time
	recv    func(Message)
	faults  *pcie.ChannelFaults
	tracer  *trace.Tracer

	sent        uint64
	dropped     uint64 // messages with no receiver installed
	faultLost   uint64 // messages consumed by fault injection
	corruptLost uint64 // arrivals discarded on checksum mismatch
}

// NewSimTransport returns a transport delivering after latency.
func NewSimTransport(s *sim.Simulator, latency sim.Time) *SimTransport {
	if latency < 0 {
		panic(fmt.Sprintf("core: negative transport latency %v", latency))
	}
	return &SimTransport{sim: s, latency: latency}
}

// SetFaults arms a fault process on the transport (nil disarms).
func (t *SimTransport) SetFaults(f *pcie.ChannelFaults) { t.faults = f }

// SetTracer records dropped messages into a structured trace.
func (t *SimTransport) SetTracer(tr *trace.Tracer) { t.tracer = tr }

// Send conveys msg after the configured latency. A message sent while no
// receiver is installed is counted in Dropped instead of vanishing.
func (t *SimTransport) Send(msg Message) {
	t.sent++
	msg.Sum = msg.PayloadSum()
	v := t.faults.Apply(t.sim.Now())
	if v.Drop {
		t.faultLost++
		return
	}
	if v.Corrupt {
		msg, _ = msg.CorruptPayload(v.CorruptMask).(Message)
	}
	for i := 0; i < v.Copies; i++ {
		t.sim.After(t.latency+v.Delay, func() {
			if t.recv == nil {
				t.dropped++
				if t.tracer.Enabled(trace.CatCoord) {
					t.tracer.Emit(trace.CatCoord, "drop (no receiver) %v", msg)
				}
				return
			}
			if msg.Sum != 0 && msg.Sum != msg.PayloadSum() {
				t.corruptLost++
				if t.tracer.Enabled(trace.CatCoord) {
					t.tracer.Emit(trace.CatCoord, "drop corrupt frame %v", msg.Kind)
				}
				return
			}
			t.recv(msg)
		})
	}
}

// SetReceiver installs the message consumer.
func (t *SimTransport) SetReceiver(fn func(Message)) { t.recv = fn }

// Sent returns the number of messages sent.
func (t *SimTransport) Sent() uint64 { return t.sent }

// Dropped returns messages discarded because no receiver was installed.
func (t *SimTransport) Dropped() uint64 { return t.dropped }

// FaultLost returns messages consumed by the fault process.
func (t *SimTransport) FaultLost() uint64 { return t.faultLost }

// CorruptDropped returns arrivals discarded on checksum mismatch.
func (t *SimTransport) CorruptDropped() uint64 { return t.corruptLost }
