package core

import (
	"fmt"
	"sort"

	"repro/internal/flight"
	"repro/internal/sim"
)

// ReplicaPhase is a controller replica's role in the group.
type ReplicaPhase int

// Replica phases.
const (
	// PhaseDown: the replica crashed; volatile state (checkpoint copy,
	// live tap view) is lost until it restarts from the durable store.
	PhaseDown ReplicaPhase = iota
	// PhaseStandby: the replica is fed checkpoints and the live
	// Tune/Trigger tap, and promotes itself when the primary's beacon
	// goes silent past the election bound.
	PhaseStandby
	// PhasePrimary: the replica owns routing, the watchdog, and the
	// checkpoint cadence.
	PhasePrimary
)

// String names the phase.
func (p ReplicaPhase) String() string {
	switch p {
	case PhaseDown:
		return "down"
	case PhaseStandby:
		return "standby"
	case PhasePrimary:
		return "primary"
	default:
		return fmt.Sprintf("ReplicaPhase(%d)", int(p))
	}
}

// FailoverConfig parameterizes controller replication. Zero fields take the
// defaults noted below.
type FailoverConfig struct {
	// Replicas is the total controller count including the primary
	// (default 1: no standbys — the group still checkpoints, so a crashed
	// solo controller can restart from its last checkpoint).
	Replicas int
	// CheckpointInterval is the snapshot cadence (default 1s). Each
	// checkpoint is encoded, CRC-framed, stored durably, and distributed
	// to every connected standby.
	CheckpointInterval sim.Time
	// HeartbeatInterval is the replica beacon / election tick (default
	// 250ms).
	HeartbeatInterval sim.Time
	// ElectionBeats is how many silent beacon intervals a standby waits
	// before promoting itself (default 3). Promotion is therefore bounded
	// by (ElectionBeats+1) heartbeat intervals after primary death, and
	// the election is fully deterministic: among standbys whose timer has
	// expired, the lowest-id live, connected one wins.
	ElectionBeats int
}

func (c *FailoverConfig) applyDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = sim.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 250 * sim.Millisecond
	}
	if c.ElectionBeats == 0 {
		c.ElectionBeats = 3
	}
}

// FailoverStats counts the controller group's availability events.
type FailoverStats struct {
	Checkpoints     uint64 // snapshots written by primaries
	CheckpointBytes uint64 // total encoded checkpoint bytes

	Promotions uint64 // standby -> primary elections
	Demotions  uint64 // superseded primaries demoted on partition heal
	Crashes    uint64 // replica crash windows entered
	Restarts   uint64 // crashed replicas restarted from the durable store
	Partitions uint64 // replica isolation windows entered
	Heals      uint64 // replica isolation windows closed

	Reconciliations uint64 // anti-entropy island epoch comparisons
	EpochAdoptions  uint64 // islands whose agent was ahead of the recovered view
	StaleDropped    uint64 // in-flight decisions discarded as stale (view ahead of agent)
	EndpointResyncs uint64 // endpoint sequence cursors that moved past the checkpoint
	EndpointFlushes uint64 // outstanding at-most-once sends flushed at promotion

	NoPrimaryDrops uint64 // coordination messages dropped with no live primary

	Term    uint64 // current election term
	Primary int    // current primary replica ID (-1 while none)
}

// ReplicaProviders are the platform hooks a checkpoint draws island-side
// state from (and pushes it back through on promotion). Any may be nil.
type ReplicaProviders struct {
	// Baselines captures the actuation baselines (X86Actuator.Baselines).
	Baselines func() []BaselineSnapshot
	// RestoreBaselines pushes checkpointed baselines back into the
	// actuator after a promotion.
	RestoreBaselines func([]BaselineSnapshot)
	// Endpoints captures the reliable endpoints' sequence cursors, sorted
	// by name.
	Endpoints func() []EndpointSeqState
	// FlushStale cancels the dead primary's outstanding at-most-once
	// sends, returning how many were flushed.
	FlushStale func() int
}

// replica is one controller slot in the group.
type replica struct {
	id         int
	phase      ReplicaPhase
	isolated   bool     // partitioned from agents, peers, and the store
	lastBeacon sim.Time // last primary beacon this replica observed
	term       uint64   // group term when this replica last acted as primary
	ckpt       *Checkpoint
	epochs     map[string]uint64 // checkpoint epochs + live Tune/Trigger tap
}

// ControllerGroup replicates the Controller: one primary owns routing, the
// watchdog, and the checkpoint cadence; standbys hold the latest checkpoint
// plus a live actuation tap and elect a replacement — deterministically,
// with no wall clock and no randomness — within a bounded number of
// heartbeat intervals of primary death. On promotion or partition heal the
// new primary runs anti-entropy reconciliation against each agent's
// authoritative actuation epoch so it never replays stale decisions.
//
// The group is only built when replication or controller fault windows are
// configured; a plain run keeps the single-controller wiring untouched.
type ControllerGroup struct {
	sim  *sim.Simulator
	cfg  FailoverConfig
	ctrl *Controller // current primary's controller

	//lint:decision
	primary int // agreed primary replica ID, -1 while none
	//lint:decision
	term uint64 // election term, bumped at every promotion

	replicas []*replica

	// Replicated wiring registry: a promoted controller re-registers the
	// same islands and entities the original did.
	islands  []IslandHandle
	entities []Entity

	// Durable checkpoint store: the latest encoded checkpoint survives
	// crashes (replicas additionally hold decoded copies in memory).
	store     []byte
	storeCkpt *Checkpoint
	ckptSeq   uint64
	encBuf    []byte // reused encode scratch

	wdogOn   bool
	wdogCfg  WatchdogConfig
	stopWdog func()
	stopCkpt func()

	ocCfg *OverloadControlConfig
	frec  *flight.Recorder

	reconcilers map[string]func() uint64
	providers   ReplicaProviders
	onPromote   func(*Controller)

	stats FailoverStats
}

// NewControllerGroup builds a replica group around an existing controller,
// which becomes replica 0's primary. Call the Register/Enable wiring
// methods instead of the controller's own, then Start.
func NewControllerGroup(s *sim.Simulator, ctrl *Controller, cfg FailoverConfig) *ControllerGroup {
	if s == nil || ctrl == nil {
		panic("core: controller group needs a simulator and a controller")
	}
	cfg.applyDefaults()
	if cfg.Replicas < 1 {
		panic(fmt.Sprintf("core: controller group with %d replicas", cfg.Replicas))
	}
	g := &ControllerGroup{
		sim:         s,
		cfg:         cfg,
		ctrl:        ctrl,
		reconcilers: make(map[string]func() uint64),
	}
	now := s.Now()
	for i := 0; i < cfg.Replicas; i++ {
		r := &replica{id: i, phase: PhaseStandby, lastBeacon: now}
		if i == 0 {
			r.phase = PhasePrimary
		} else {
			r.epochs = make(map[string]uint64)
		}
		g.replicas = append(g.replicas, r)
	}
	return g
}

// SetFlightRecorder taps every checkpoint, crash, election, and
// reconciliation decision into the flight recorder (nil disables).
func (g *ControllerGroup) SetFlightRecorder(r *flight.Recorder) { g.frec = r }

// OnPromote installs fn, called with the new primary's controller after
// every promotion (the platform repoints Platform.Controller here).
func (g *ControllerGroup) OnPromote(fn func(*Controller)) { g.onPromote = fn }

// SetReconciler installs the island's authoritative actuation-epoch source
// (Agent.ActuationEpoch) for anti-entropy reconciliation.
func (g *ControllerGroup) SetReconciler(island string, fn func() uint64) {
	g.reconcilers[island] = fn
}

// SetProviders installs the platform hooks checkpoints draw island-side
// state from.
func (g *ControllerGroup) SetProviders(p ReplicaProviders) { g.providers = p }

// RegisterIsland records the island in the replicated wiring registry and
// registers it with the current controller.
func (g *ControllerGroup) RegisterIsland(h IslandHandle) error {
	if err := g.ctrl.RegisterIsland(h); err != nil {
		return err
	}
	g.islands = append(g.islands, h)
	return nil
}

// RegisterEntity records the entity in the replicated wiring registry and
// registers it with the current controller.
func (g *ControllerGroup) RegisterEntity(e Entity) error {
	if err := g.ctrl.RegisterEntity(e); err != nil {
		return err
	}
	g.entities = append(g.entities, e)
	return nil
}

// EnableWatchdog stores the watchdog configuration (so promotions restart
// it on the new primary) and starts it on the current one.
func (g *ControllerGroup) EnableWatchdog(cfg WatchdogConfig) {
	g.wdogOn = true
	g.wdogCfg = cfg
	g.stopWdog = g.ctrl.EnableWatchdog(g.sim, cfg)
}

// EnableOverloadControl stores the overload translation configuration and
// arms it on the current controller (and every future primary).
func (g *ControllerGroup) EnableOverloadControl(cfg OverloadControlConfig) {
	g.ocCfg = &cfg
	g.ctrl.EnableOverloadControl(cfg)
}

// Start arms the group: the election/beacon tick and the primary's
// checkpoint cadence, plus an immediate first checkpoint so the durable
// store is never empty once the run is underway.
func (g *ControllerGroup) Start() {
	g.sim.Ticker(g.cfg.HeartbeatInterval, g.tick)
	g.startCheckpoints()
	g.CheckpointNow()
}

// startCheckpoints arms the checkpoint ticker for the current primary.
func (g *ControllerGroup) startCheckpoints() {
	if g.stopCkpt != nil {
		return
	}
	g.stopCkpt = g.sim.Ticker(g.cfg.CheckpointInterval, func() { g.CheckpointNow() })
}

// primaryLive reports whether the agreed primary is up and connected.
func (g *ControllerGroup) primaryLive() bool {
	if g.primary < 0 {
		return false
	}
	r := g.replicas[g.primary]
	return r.phase == PhasePrimary && !r.isolated
}

// tick is the beacon/election sweep. While the primary is live it refreshes
// every connected standby's beacon; otherwise the lowest-id connected
// standby whose beacon silence exceeds ElectionBeats intervals promotes
// itself. Both branches are pure functions of replica state and sim-time —
// no randomness, so elections replay byte-identically.
func (g *ControllerGroup) tick() {
	now := g.sim.Now()
	if g.primaryLive() {
		for _, r := range g.replicas {
			if r.phase == PhaseStandby && !r.isolated {
				r.lastBeacon = now
			}
		}
		return
	}
	bound := sim.Time(g.cfg.ElectionBeats) * g.cfg.HeartbeatInterval
	for _, r := range g.replicas {
		if r.phase != PhaseStandby || r.isolated {
			continue
		}
		if now-r.lastBeacon > bound {
			g.promote(r)
			return
		}
	}
}

// record taps one failover event into the flight recorder.
func (g *ControllerGroup) record(code uint8, label string, replicaID int, arg int64) {
	if g.frec != nil {
		g.frec.Record(flight.Event{
			T: g.sim.Now(), Cat: flight.CatFailover, Code: code,
			Label: label, Entity: int32(replicaID), Arg: arg,
		})
	}
}

// CheckpointNow snapshots the primary's coordination state, encodes it,
// verifies the encoding round-trips, stores it durably, and distributes the
// decoded copy to every connected standby. It returns the encoded size (0
// when no live primary exists to checkpoint).
func (g *ControllerGroup) CheckpointNow() int {
	if !g.primaryLive() {
		return 0
	}
	ck := g.ctrl.Snapshot()
	g.ckptSeq++
	ck.Seq = g.ckptSeq
	ck.Term = g.term
	ck.T = g.sim.Now()
	if g.providers.Baselines != nil {
		ck.Baselines = g.providers.Baselines()
	}
	if g.providers.Endpoints != nil {
		ck.Endpoints = g.providers.Endpoints()
	}
	g.encBuf = AppendCheckpoint(g.encBuf[:0], ck)
	dec, err := DecodeCheckpoint(g.encBuf)
	if err != nil {
		// The encoder and decoder disagree: a format bug, not a runtime
		// condition — fail loudly rather than replicate garbage.
		panic(fmt.Sprintf("core: checkpoint round-trip failed: %v", err))
	}
	g.store = append(g.store[:0], g.encBuf...)
	g.storeCkpt = dec
	for _, r := range g.replicas {
		if r.phase != PhaseStandby || r.isolated {
			continue
		}
		r.ckpt = dec
		g.resetEpochView(r, dec)
	}
	g.stats.Checkpoints++
	g.stats.CheckpointBytes += uint64(len(g.encBuf))
	g.record(flight.FailCheckpoint, "", g.primary, int64(len(g.encBuf)))
	return len(g.encBuf)
}

// resetEpochView rebases a replica's live tap view onto a checkpoint.
func (g *ControllerGroup) resetEpochView(r *replica, ck *Checkpoint) {
	if r.epochs == nil {
		r.epochs = make(map[string]uint64)
	}
	clear(r.epochs)
	for _, e := range ck.Epochs {
		r.epochs[e.Island] = e.Epoch
	}
}

// Route forwards a coordination message to the live primary. With no live
// primary the message is dropped and counted — exactly the outage the
// election bound limits.
func (g *ControllerGroup) Route(msg Message) {
	if !g.primaryLive() {
		g.stats.NoPrimaryDrops++
		g.record(flight.FailNoPrimary, "", -1, int64(msg.Kind))
		return
	}
	switch msg.Kind {
	case KindTune, KindTrigger, KindShed:
		// Live tap: connected standbys advance their actuation view of the
		// target island so a promotion sees decisions made since the last
		// checkpoint. The tap counts offered messages (the primary may
		// still drop one as unroutable), so the view can only run ahead of
		// the agent — which anti-entropy resolves as a stale drop, never a
		// replay.
		for _, r := range g.replicas {
			if r.phase == PhaseStandby && !r.isolated {
				r.epochs[msg.Target]++
			}
		}
	case KindRegister, KindAck, KindHeartbeat:
	}
	g.ctrl.Route(msg)
}

// stopPrimaryDuties cancels the acting primary's watchdog and checkpoint
// tickers (crash or isolation).
func (g *ControllerGroup) stopPrimaryDuties() {
	if g.stopWdog != nil {
		g.stopWdog()
		g.stopWdog = nil
	}
	if g.stopCkpt != nil {
		g.stopCkpt()
		g.stopCkpt = nil
	}
}

// resumePrimaryDuties restarts the watchdog and checkpoint tickers on the
// current controller.
func (g *ControllerGroup) resumePrimaryDuties() {
	if g.wdogOn && g.stopWdog == nil {
		g.stopWdog = g.ctrl.EnableWatchdog(g.sim, g.wdogCfg)
	}
	g.startCheckpoints()
}

// promote elects r as the new primary: a fresh controller is rebuilt from
// the replicated wiring registry, restored from r's checkpoint, advanced by
// r's live tap view, and reconciled against every agent's authoritative
// actuation epoch before it routes anything.
func (g *ControllerGroup) promote(r *replica) {
	now := g.sim.Now()
	g.term++
	r.term = g.term
	g.primary = r.id
	r.phase = PhasePrimary
	g.stats.Promotions++
	g.record(flight.FailPromote, "", r.id, int64(g.term))

	c := NewController()
	c.SetFlightRecorder(g.sim, g.frec)
	for _, h := range g.islands {
		if err := c.RegisterIsland(h); err != nil {
			panic(fmt.Sprintf("core: promoted controller re-registering island %q: %v", h.Name, err))
		}
	}
	for _, e := range g.entities {
		if err := c.RegisterEntity(e); err != nil {
			panic(fmt.Sprintf("core: promoted controller re-registering entity %d: %v", e.ID, err))
		}
	}
	if g.ocCfg != nil {
		c.EnableOverloadControl(*g.ocCfg)
	}
	ck := r.ckpt
	if ck != nil {
		c.RestoreSnapshot(ck, now)
		if g.providers.RestoreBaselines != nil {
			g.providers.RestoreBaselines(ck.Baselines)
		}
	}
	// The live tap view is at least as fresh as the checkpoint it was
	// rebased on; adopt whatever ran ahead.
	islands := make([]string, 0, len(r.epochs))
	for n := range r.epochs {
		islands = append(islands, n)
	}
	sort.Strings(islands)
	for _, n := range islands {
		if r.epochs[n] > c.RoutedEpoch(n) {
			c.setRoutedEpoch(n, r.epochs[n])
		}
	}
	g.ctrl = c
	if g.onPromote != nil {
		g.onPromote(c)
	}
	g.resumePrimaryDuties()
	g.reconcile(ck)
	r.ckpt, r.epochs = nil, nil
}

// reconcile is the anti-entropy pass a recovering primary runs before
// trusting its restored view: every island's authoritative actuation epoch
// (what its agent actually applied) is compared against the controller's
// view. A view ahead of the agent means in-flight decisions died with the
// old primary — they are dropped and counted, never replayed; an agent
// ahead of the view means the island applied decisions the checkpoint never
// saw — the agent's count is adopted. Endpoint sequence cursors are checked
// against the checkpoint the same way, and the dead primary's outstanding
// at-most-once sends are flushed.
func (g *ControllerGroup) reconcile(ck *Checkpoint) {
	names := make([]string, 0, len(g.reconcilers))
	for n := range g.reconcilers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, island := range names {
		agentEpoch := g.reconcilers[island]()
		view := g.ctrl.RoutedEpoch(island)
		delta := int64(view) - int64(agentEpoch)
		g.stats.Reconciliations++
		g.record(flight.FailReconcile, island, g.primary, delta)
		if delta > 0 {
			g.stats.StaleDropped += uint64(delta)
			g.record(flight.FailStaleDrop, island, g.primary, delta)
		} else if delta < 0 {
			g.stats.EpochAdoptions++
		}
		g.ctrl.setRoutedEpoch(island, agentEpoch)
	}
	if g.providers.Endpoints != nil && ck != nil {
		ckEndpoints := make(map[string]EndpointSeqState, len(ck.Endpoints))
		for _, ep := range ck.Endpoints {
			ckEndpoints[ep.Name] = ep
		}
		for _, live := range g.providers.Endpoints() {
			rec, ok := ckEndpoints[live.Name]
			if ok && (live.NextSeq != rec.NextSeq || live.Expected != rec.Expected) {
				g.stats.EndpointResyncs++
				g.record(flight.FailReconcile, live.Name, g.primary, int64(live.NextSeq)-int64(rec.NextSeq))
			}
		}
	}
	if g.providers.FlushStale != nil {
		if n := g.providers.FlushStale(); n > 0 {
			g.stats.EndpointFlushes += uint64(n)
			g.record(flight.FailStaleDrop, "endpoint", g.primary, int64(n))
		}
	}
}

// CrashReplica crashes a replica: its volatile state (checkpoint copy,
// live tap view) is lost; if it was the acting primary, routing stops until
// a standby's election timer expires.
func (g *ControllerGroup) CrashReplica(id int) {
	r := g.mustReplica(id)
	if r.phase == PhaseDown {
		return
	}
	r.phase = PhaseDown
	r.ckpt, r.epochs = nil, nil
	g.stats.Crashes++
	g.record(flight.FailCrash, "", id, 0)
	if g.primary == id {
		g.primary = -1
		g.stopPrimaryDuties()
	}
}

// RestoreReplica restarts a crashed replica as a standby, recovering its
// checkpoint from the durable store. Its election timer starts fresh, so a
// lone restarted replica promotes itself one election bound later.
func (g *ControllerGroup) RestoreReplica(id int) {
	r := g.mustReplica(id)
	if r.phase != PhaseDown {
		return
	}
	r.phase = PhaseStandby
	r.lastBeacon = g.sim.Now()
	r.ckpt = g.storeCkpt
	if g.storeCkpt != nil {
		g.resetEpochView(r, g.storeCkpt)
	} else {
		r.epochs = make(map[string]uint64)
	}
	g.stats.Restarts++
	g.record(flight.FailRestart, "", id, int64(g.ckptSeq))
}

// IsolateReplica partitions a replica from the agents, its peers, and the
// durable store: an isolated primary can no longer route (and loses its
// beacons, so a standby will supersede it); an isolated standby stops
// receiving checkpoints and cannot win elections.
func (g *ControllerGroup) IsolateReplica(id int) {
	r := g.mustReplica(id)
	if r.isolated {
		return
	}
	r.isolated = true
	g.stats.Partitions++
	g.record(flight.FailIsolate, "", id, 0)
	if g.primary == id && r.phase == PhasePrimary {
		// The primary keeps believing it is primary (split brain, modeled)
		// but its duties stop: nothing it decides can reach an agent.
		g.stopPrimaryDuties()
	}
}

// HealReplica ends a replica's partition. A superseded primary — one whose
// term is now stale — demotes itself and resyncs from the durable store
// instead of replaying its divergent state; a primary that healed before
// any standby promoted resumes duties and reconciles against the agents
// (its view diverged for the partition's duration).
func (g *ControllerGroup) HealReplica(id int) {
	r := g.mustReplica(id)
	if !r.isolated {
		return
	}
	r.isolated = false
	g.stats.Heals++
	g.record(flight.FailHeal, "", id, 0)
	now := g.sim.Now()
	switch {
	case r.phase == PhasePrimary && g.primary != id:
		// Superseded while partitioned: a newer term exists.
		r.phase = PhaseStandby
		r.lastBeacon = now
		r.ckpt = g.storeCkpt
		if g.storeCkpt != nil {
			g.resetEpochView(r, g.storeCkpt)
		} else {
			r.epochs = make(map[string]uint64)
		}
		g.stats.Demotions++
		g.record(flight.FailDemote, "", id, int64(g.term))
	case r.phase == PhasePrimary:
		g.resumePrimaryDuties()
		g.reconcile(r.ckpt)
	case r.phase == PhaseStandby:
		r.lastBeacon = now
		r.ckpt = g.storeCkpt
		if g.storeCkpt != nil {
			g.resetEpochView(r, g.storeCkpt)
		}
	}
}

// mustReplica bounds-checks a replica ID from a fault plan.
func (g *ControllerGroup) mustReplica(id int) *replica {
	if id < 0 || id >= len(g.replicas) {
		panic(fmt.Sprintf("core: controller group has no replica %d (have %d)", id, len(g.replicas)))
	}
	return g.replicas[id]
}

// Primary returns the current primary's controller. During an outage it
// returns the most recent primary's controller (which no longer routes).
func (g *ControllerGroup) Primary() *Controller { return g.ctrl }

// PrimaryID returns the agreed primary replica ID, -1 while none.
func (g *ControllerGroup) PrimaryID() int { return g.primary }

// Term returns the current election term.
func (g *ControllerGroup) Term() uint64 { return g.term }

// Replicas returns the configured replica count.
func (g *ControllerGroup) Replicas() int { return len(g.replicas) }

// Phase returns the replica's current phase.
func (g *ControllerGroup) Phase(id int) ReplicaPhase { return g.mustReplica(id).phase }

// Stats snapshots the group's counters.
func (g *ControllerGroup) Stats() FailoverStats {
	s := g.stats
	s.Term = g.term
	s.Primary = g.primary
	return s
}
