package core

import (
	"fmt"
	"sort"

	"repro/internal/overload"
	"repro/internal/sim"
)

// ReliableConfig parameterizes a ReliableEndpoint. Zero fields take the
// defaults noted below.
type ReliableConfig struct {
	// RTO is the initial retransmission timeout (default 1ms; the
	// prototype's mailbox RTT is ~300us).
	RTO sim.Time
	// MaxRTO caps the exponential backoff (default 100ms).
	MaxRTO sim.Time
	// MaxRetries bounds retransmissions per message; exhausting it marks
	// the link down (default 8).
	MaxRetries int
	// TuneDeadline expires at-most-once messages: once it passes, retries
	// stop and the message is abandoned rather than delivered stale
	// (default 25ms).
	TuneDeadline sim.Time
	// ReorderHold is how long the receiver parks an out-of-order arrival
	// waiting for the gap before skipping it — gaps are permanent when the
	// sender expired an at-most-once message (default 10ms).
	ReorderHold sim.Time

	// MaxOutstanding bounds the sender's retransmit queue (default 512):
	// a send that would exceed it is dropped before a sequence number is
	// consumed (so no gap forms) and counted as QueueFullDrops. Without
	// the cap a long partition grows the queue without limit.
	MaxOutstanding int
	// MaxReorder bounds the receiver's out-of-order parking buffer
	// (default 256): an arrival that would exceed it is dropped unacked
	// (counted as ReorderDrops) so the sender retransmits it once the
	// buffer drains.
	MaxReorder int

	// Breaker, when non-nil, arms a circuit breaker on the send path: a
	// message that exhausts its retries records a failure, an ack records
	// a success, and while the breaker is open sequenced sends fail fast
	// (counted as BreakerRejected) instead of growing the retransmit
	// queue. Nil (the default) changes nothing.
	Breaker *overload.BreakerConfig
}

func (c *ReliableConfig) applyDefaults() {
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 100 * sim.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.TuneDeadline == 0 {
		c.TuneDeadline = 25 * sim.Millisecond
	}
	if c.ReorderHold == 0 {
		c.ReorderHold = 10 * sim.Millisecond
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 512
	}
	if c.MaxReorder == 0 {
		c.MaxReorder = 256
	}
}

// ReliableStats counts a ReliableEndpoint's protocol events.
type ReliableStats struct {
	DataSent    uint64 // sequenced messages offered by the application
	Retransmits uint64
	Expired     uint64 // at-most-once messages abandoned at their deadline
	GaveUp      uint64 // messages abandoned after MaxRetries

	AcksSent     uint64
	AcksReceived uint64

	BreakerRejected uint64 // sequenced sends refused while the breaker was open
	QueueFullDrops  uint64 // sends refused because the retransmit queue hit MaxOutstanding

	Delivered    uint64 // sequenced messages handed to the application
	CorruptDrops uint64 // stamped arrivals discarded on checksum mismatch
	DupDrops     uint64 // duplicate arrivals of a buffered out-of-order seq
	StaleDrops   uint64 // arrivals at or below the delivery cursor
	OutOfOrder   uint64 // arrivals buffered ahead of the cursor
	GapSkips     uint64 // sequence numbers skipped after ReorderHold
	ReorderDrops uint64 // out-of-order arrivals refused because the buffer hit MaxReorder

	Downs uint64 // up->down transitions
	Ups   uint64 // down->up transitions
}

// LinkHealth is implemented by transports that track delivery health; the
// Agent's degradation monitor consults it when the uplink provides it.
type LinkHealth interface {
	// Up reports whether the link is believed healthy (acks flowing).
	Up() bool
}

// pendingMsg is one unacknowledged sequenced message at the sender.
type pendingMsg struct {
	msg      Message
	attempts int
	rto      sim.Time
	deadline sim.Time // at-most-once expiry; 0 = retry until MaxRetries
	timer    *sim.Event
}

// ReliableEndpoint is one side of a reliability layer decorating a pair of
// unidirectional transports (the raw outbound direction and the raw inbound
// direction of the same duplex link). It implements Transport:
//
//   - outbound data is stamped with a per-link sequence number and
//     retransmitted on timeout with capped exponential backoff until
//     acknowledged, expired (at-most-once kinds), or abandoned
//     (MaxRetries);
//   - inbound data is deduplicated and released in sequence order, with a
//     hold timer that skips permanent gaps; every arrival is acknowledged
//     (selective + cumulative) over the outbound direction;
//   - heartbeats and acks ride best-effort and unsequenced.
//
// Delivery classes per kind come from ClassFor. The endpoint also tracks
// link health: a message that exhausts its retries marks the link down, any
// inbound traffic marks it up again.
type ReliableEndpoint struct {
	sim  *sim.Simulator
	name string
	out  Transport
	cfg  ReliableConfig
	recv func(Message)

	nextSeq     uint64 // next sequence number to assign (first is 1)
	floor       uint64 // lowest sequence number possibly still outstanding
	outstanding map[uint64]*pendingMsg

	expected uint64 // next in-order sequence number to deliver
	buffer   map[uint64]Message
	gapTimer *sim.Event

	up      bool
	onState func(up bool)
	breaker *overload.Breaker

	stats ReliableStats
}

// NewReliableEndpoint builds an endpoint named name (diagnostics only) over
// the raw outbound transport out, hooking the raw inbound transport in for
// arrivals. It panics on nil arguments (constructor misuse guard).
func NewReliableEndpoint(s *sim.Simulator, name string, out, in Transport, cfg ReliableConfig) *ReliableEndpoint {
	if s == nil || out == nil || in == nil {
		panic(fmt.Sprintf("core: reliable endpoint %q needs a simulator and both transport directions", name))
	}
	cfg.applyDefaults()
	e := &ReliableEndpoint{
		sim:         s,
		name:        name,
		out:         out,
		cfg:         cfg,
		nextSeq:     1,
		floor:       1,
		expected:    1,
		outstanding: make(map[uint64]*pendingMsg),
		buffer:      make(map[uint64]Message),
		up:          true,
	}
	if cfg.Breaker != nil {
		e.breaker = overload.NewBreaker(s, *cfg.Breaker)
	}
	in.SetReceiver(e.onRaw)
	return e
}

// Breaker returns the endpoint's circuit breaker, nil when not armed.
func (e *ReliableEndpoint) Breaker() *overload.Breaker {
	if e == nil {
		return nil
	}
	return e.breaker
}

// Name returns the endpoint's diagnostic name.
func (e *ReliableEndpoint) Name() string { return e.name }

// Stats returns a snapshot of the endpoint's counters. Nil-safe.
func (e *ReliableEndpoint) Stats() ReliableStats {
	if e == nil {
		return ReliableStats{}
	}
	return e.stats
}

// Up reports whether the link is believed healthy (LinkHealth).
func (e *ReliableEndpoint) Up() bool { return e.up }

// OnStateChange installs fn, invoked on every up/down transition.
func (e *ReliableEndpoint) OnStateChange(fn func(up bool)) { e.onState = fn }

// Outstanding returns the number of unacknowledged sequenced messages.
func (e *ReliableEndpoint) Outstanding() int { return len(e.outstanding) }

// Buffered returns the number of out-of-order arrivals parked at the
// receiver.
func (e *ReliableEndpoint) Buffered() int { return len(e.buffer) }

// EndpointSeqState is the sequence-state summary a controller checkpoint
// records per reliable endpoint: enough to detect, after a failover, how
// far the transport had advanced relative to the last checkpoint.
type EndpointSeqState struct {
	Name     string
	NextSeq  uint64 // next sequence number the sender will assign
	Floor    uint64 // lowest sequence number possibly still outstanding
	Expected uint64 // next in-order sequence number the receiver will deliver
}

// SeqState snapshots the endpoint's sequence cursors. Nil-safe.
func (e *ReliableEndpoint) SeqState() EndpointSeqState {
	if e == nil {
		return EndpointSeqState{}
	}
	return EndpointSeqState{Name: e.name, NextSeq: e.nextSeq, Floor: e.floor, Expected: e.expected}
}

// FlushStale cancels every outstanding at-most-once message (Tunes and
// Sheds) and returns how many were flushed. A promoted controller calls it
// through the platform so the dead primary's in-flight adjustments stop
// retransmitting — the receiver's gap-skip machinery steps over the holes
// exactly as it does for deadline expiry. At-least-once messages (Triggers)
// keep retrying: they are safe to apply late.
func (e *ReliableEndpoint) FlushStale() int {
	if e == nil {
		return 0
	}
	seqs := make([]uint64, 0, len(e.outstanding))
	for s, p := range e.outstanding {
		if ClassFor(p.msg.Kind) == ClassAtMostOnce {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		e.outstanding[s].timer.Cancel()
		delete(e.outstanding, s)
	}
	e.advanceFloor()
	return len(seqs)
}

// SetReceiver installs the application-level consumer of inbound data
// (Transport interface).
func (e *ReliableEndpoint) SetReceiver(fn func(Message)) { e.recv = fn }

// Send conveys msg with its kind's delivery class (Transport interface).
func (e *ReliableEndpoint) Send(msg Message) {
	class := ClassFor(msg.Kind)
	switch class {
	case ClassBestEffort:
		msg.Seq, msg.Ack = 0, 0
		e.out.Send(msg)
		return
	case ClassAtMostOnce, ClassAtLeastOnce:
	}
	if e.breaker != nil && !e.breaker.Allow() {
		// Fail fast: the uplink is believed dead or saturated; dropping
		// here (before a sequence number is consumed, so no gap forms)
		// feeds the graceful-degradation hold-down instead of growing the
		// retransmit queue.
		e.stats.BreakerRejected++
		return
	}
	if len(e.outstanding) >= e.cfg.MaxOutstanding {
		// Hard cap on retransmit state: during a long partition the queue
		// would otherwise grow without bound. Like the breaker rejection,
		// the drop happens before a sequence number is consumed, so the
		// receiver never sees a gap from it.
		e.stats.QueueFullDrops++
		return
	}
	seq := e.nextSeq
	e.nextSeq++
	msg.Seq = seq
	p := &pendingMsg{msg: msg, rto: e.cfg.RTO}
	if class == ClassAtMostOnce {
		p.deadline = e.sim.Now() + e.cfg.TuneDeadline
	}
	e.outstanding[seq] = p
	e.stats.DataSent++
	e.out.Send(msg)
	p.timer = e.sim.After(p.rto, func() { e.retransmit(seq) })
}

// retransmit fires when seq's retransmission timer expires.
func (e *ReliableEndpoint) retransmit(seq uint64) {
	p, ok := e.outstanding[seq]
	if !ok {
		return // acknowledged meanwhile
	}
	now := e.sim.Now()
	if p.deadline > 0 && now >= p.deadline {
		// At-most-once expiry: better to drop the adjustment than apply it
		// after newer state; the receiver will skip the gap.
		delete(e.outstanding, seq)
		e.stats.Expired++
		e.advanceFloor()
		return
	}
	if p.attempts >= e.cfg.MaxRetries {
		delete(e.outstanding, seq)
		e.stats.GaveUp++
		e.advanceFloor()
		if e.breaker != nil {
			e.breaker.RecordFailure()
		}
		e.setUp(false)
		return
	}
	p.attempts++
	e.stats.Retransmits++
	p.rto *= 2
	if p.rto > e.cfg.MaxRTO {
		p.rto = e.cfg.MaxRTO
	}
	e.out.Send(p.msg)
	p.timer = e.sim.After(p.rto, func() { e.retransmit(seq) })
}

// onRaw consumes every arrival on the inbound raw direction.
func (e *ReliableEndpoint) onRaw(m Message) {
	// A stamped frame whose checksum no longer matches its contents was
	// corrupted in flight: drop it unacked, so a sequenced original simply
	// retransmits and redelivers clean. Acting on it — even to ack — could
	// turn bit flips into misactuation. Unstamped frames (Sum zero: locally
	// wired test traffic) skip verification. In the assembled platform the
	// wire transports verify first, so this is the endpoint's own defense
	// when it is wired over an unverified transport.
	if m.Sum != 0 && m.Sum != m.PayloadSum() {
		e.stats.CorruptDrops++
		return
	}
	switch m.Kind {
	case KindAck:
		e.stats.AcksReceived++
		e.setUp(true)
		if e.breaker != nil {
			e.breaker.RecordSuccess()
		}
		e.ackCumulative(m.Ack)
		e.ackOne(m.Seq)
		return
	case KindHeartbeat:
		// Best-effort, unsequenced; inbound traffic is evidence of link
		// health (partitions are modeled symmetric).
		e.setUp(true)
		if e.recv != nil {
			e.recv(m)
		}
		return
	case KindTune, KindTrigger, KindRegister, KindShed:
	}
	e.setUp(true)
	accepted := e.onData(m)
	// Acknowledge after delivery bookkeeping so the cumulative mark
	// reflects this arrival. An arrival refused by the full reorder buffer
	// must not be selectively acked — the sender keeps retransmitting it
	// until the buffer drains (seq 0 is never outstanding, so the selective
	// half becomes a no-op while the cumulative half still flows).
	e.stats.AcksSent++
	selSeq := m.Seq
	if !accepted {
		selSeq = 0
	}
	e.out.Send(Message{Kind: KindAck, From: e.name, Seq: selSeq, Ack: e.expected - 1})
}

// onData runs dedup/reorder delivery for one sequenced arrival. It reports
// whether the arrival was consumed (delivered, parked, or recognized as
// stale/duplicate) as opposed to refused by the full reorder buffer.
func (e *ReliableEndpoint) onData(m Message) bool {
	switch {
	case m.Seq < e.expected:
		// Already delivered or deliberately skipped: a retransmit of a
		// stale message must not be replayed after newer state.
		e.stats.StaleDrops++
	case m.Seq == e.expected:
		e.deliver(m)
		e.expected++
		e.drainBuffer()
	default: // ahead of the cursor: park it
		if _, dup := e.buffer[m.Seq]; dup {
			e.stats.DupDrops++
			return true
		}
		if len(e.buffer) >= e.cfg.MaxReorder {
			// Hard cap on parked state: refuse the arrival unacked so the
			// sender retries later instead of the buffer growing without
			// bound during a reorder storm.
			e.stats.ReorderDrops++
			return false
		}
		e.buffer[m.Seq] = m
		e.stats.OutOfOrder++
		e.armGapTimer()
	}
	return true
}

func (e *ReliableEndpoint) deliver(m Message) {
	e.stats.Delivered++
	if e.recv != nil {
		e.recv(m)
	}
}

// drainBuffer releases parked messages that became in-order.
func (e *ReliableEndpoint) drainBuffer() {
	for {
		m, ok := e.buffer[e.expected]
		if !ok {
			break
		}
		delete(e.buffer, e.expected)
		e.deliver(m)
		e.expected++
	}
	if len(e.buffer) == 0 && e.gapTimer != nil {
		e.gapTimer.Cancel()
		e.gapTimer = nil
	}
}

// armGapTimer schedules the gap-skip check if one is not already pending.
func (e *ReliableEndpoint) armGapTimer() {
	if e.gapTimer != nil || len(e.buffer) == 0 {
		return
	}
	e.gapTimer = e.sim.After(e.cfg.ReorderHold, e.gapExpire)
}

// gapExpire gives up on the missing sequence numbers below the parked
// minimum: the sender has either expired them (at-most-once) or abandoned
// them, and holding newer state hostage to a permanent gap would freeze the
// actuators.
func (e *ReliableEndpoint) gapExpire() {
	e.gapTimer = nil
	if len(e.buffer) == 0 {
		return
	}
	min := uint64(0)
	for s := range e.buffer {
		if min == 0 || s < min {
			min = s
		}
	}
	if min > e.expected {
		e.stats.GapSkips += min - e.expected
		e.expected = min
	}
	e.drainBuffer()
	e.armGapTimer()
}

// ackOne removes one outstanding message (selective acknowledgment).
func (e *ReliableEndpoint) ackOne(seq uint64) {
	p, ok := e.outstanding[seq]
	if !ok {
		return
	}
	p.timer.Cancel()
	delete(e.outstanding, seq)
	e.advanceFloor()
}

// ackCumulative removes every outstanding message at or below cum.
func (e *ReliableEndpoint) ackCumulative(cum uint64) {
	for s := e.floor; s <= cum; s++ {
		if p, ok := e.outstanding[s]; ok {
			p.timer.Cancel()
			delete(e.outstanding, s)
		}
	}
	if cum >= e.floor {
		e.floor = cum + 1
	}
	e.advanceFloor()
}

// advanceFloor moves the floor past sequence numbers no longer outstanding.
func (e *ReliableEndpoint) advanceFloor() {
	for e.floor < e.nextSeq {
		if _, ok := e.outstanding[e.floor]; ok {
			break
		}
		e.floor++
	}
}

// setUp records a link-health observation and fires the transition hook.
func (e *ReliableEndpoint) setUp(up bool) {
	if e.up == up {
		return
	}
	e.up = up
	if up {
		e.stats.Ups++
	} else {
		e.stats.Downs++
	}
	if e.onState != nil {
		e.onState(up)
	}
}
