package mplayer

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xen"
)

// PlayerConfig shapes an in-VM MPlayer instance.
type PlayerConfig struct {
	// DecodeCost is the CPU demand to decode one frame. The paper's h.264
	// streams on the 2.66 GHz Xeon are heavily CPU-bound; defaults derive
	// from the stream via DefaultDecodeCost if zero.
	DecodeCost sim.Time
	// SocketBuffer bounds the in-VM UDP receive buffer in bytes (default
	// 64 KB, the classic kernel default). Arriving data beyond it is lost —
	// UDP has no flow control.
	SocketBuffer int
	// DiskPlayback switches the player to read from local disk instead of
	// the network: frames are always available and the decode loop runs
	// flat out ("plays it from its own local disk", Table 3).
	DiskPlayback bool
	// Noise is the coefficient of variation of per-frame decode cost
	// (default 0.15).
	Noise float64
}

// DefaultDecodeCost models decode CPU per frame: h.264 decode time is
// dominated by resolution-dependent work (prediction, deblocking) with only
// a weak dependence on bitrate, so the cost is a large flat term plus a
// small per-byte term. Calibrated so the paper's two streams demand ~0.67
// and ~0.85 cores at their native frame rates on the prototype host —
// enough that the default-weight configuration cannot serve both alongside
// the Dom0 polling driver.
func DefaultDecodeCost(s Stream) sim.Time {
	perFrame := 34*sim.Millisecond + sim.Time(s.BytesPerFrame()/1000*float64(50*sim.Microsecond))
	return perFrame
}

func (c *PlayerConfig) applyDefaults(s Stream) {
	if c.DecodeCost == 0 {
		c.DecodeCost = DefaultDecodeCost(s)
	}
	if c.SocketBuffer == 0 {
		c.SocketBuffer = 64 << 10
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
}

// Player is an MPlayer instance inside a guest VM, running in benchmark
// mode (decode as fast as input and CPU allow, no display).
type Player struct {
	sim  *sim.Simulator
	cfg  PlayerConfig
	dom  *xen.Domain
	strm Stream
	rng  *sim.Rand

	bufBytes   int     // socket buffer occupancy
	frameBytes float64 // bytes accumulated toward the next frame
	frames     int     // complete frames awaiting decode
	decoding   bool

	decoded     uint64
	dropped     uint64 // packets lost to socket-buffer overflow
	fpsSeries   *stats.TimeSeries
	windowStart sim.Time
	windowDec   uint64
	stopFns     []func()
}

// NewPlayer creates a player for stream strm inside dom. For network
// playback, register the returned player's OnPacket with the host stack
// (bounded registration gives the paper's backpressure chain). For disk
// playback, the decode loop starts immediately.
func NewPlayer(s *sim.Simulator, cfg PlayerConfig, dom *xen.Domain, strm Stream) *Player {
	strm.applyDefaults()
	cfg.applyDefaults(strm)
	p := &Player{
		sim:       s,
		cfg:       cfg,
		dom:       dom,
		strm:      strm,
		rng:       s.Rand().Fork(),
		fpsSeries: stats.NewTimeSeries(dom.Name() + "-fps"),
	}
	if cfg.DiskPlayback {
		p.frames = 1 // always at least one frame available
		p.maybeDecode()
	}
	p.stopFns = append(p.stopFns, s.Ticker(sim.Second, p.sampleFPS))
	return p
}

// Domain returns the hosting domain.
func (p *Player) Domain() *xen.Domain { return p.dom }

// Decoded returns the number of frames decoded so far.
func (p *Player) Decoded() uint64 { return p.decoded }

// Dropped returns packets lost to socket-buffer overflow.
func (p *Player) Dropped() uint64 { return p.dropped }

// BufferedBytes returns the current socket-buffer occupancy.
func (p *Player) BufferedBytes() int { return p.bufBytes }

// FPSSeries returns the per-second decoded-frame-rate time series.
func (p *Player) FPSSeries() *stats.TimeSeries { return p.fpsSeries }

// FPS returns the mean decoded frame rate over [from, now), integrated
// from the per-second samples.
func (p *Player) FPS(from, now sim.Time) float64 {
	dur := (now - from).Seconds()
	if dur <= 0 {
		return 0
	}
	var total float64
	for _, pt := range p.fpsSeries.Points() {
		if pt.T > from && pt.T <= now {
			total += pt.V
		}
	}
	return total / dur
}

// Shutdown stops the player's periodic samplers.
func (p *Player) Shutdown() {
	for _, fn := range p.stopFns {
		fn()
	}
	p.stopFns = nil
}

// sampleFPS appends the last second's decode rate.
func (p *Player) sampleFPS() {
	now := p.sim.Now()
	window := (now - p.windowStart).Seconds()
	if window <= 0 {
		return
	}
	p.fpsSeries.Add(now, float64(p.decoded-p.windowDec)/window)
	p.windowStart = now
	p.windowDec = p.decoded
}

// OnPacket consumes one stream packet, returning false when the socket
// buffer is full (the bounded-handler backpressure contract). RTSP setup
// packets are always accepted.
func (p *Player) OnPacket(pkt *netsim.Packet) bool {
	if pkt.Class == netsim.ClassRTSP {
		return true
	}
	if p.bufBytes+pkt.Size > p.cfg.SocketBuffer {
		p.dropped++
		// UDP: the packet is gone, but the ring slot is freed — report
		// acceptance so the ring does not wedge on a hopeless packet.
		return true
	}
	p.bufBytes += pkt.Size
	p.frameBytes += float64(pkt.Size)
	for bpf := p.strm.BytesPerFrame(); p.frameBytes >= bpf && bpf > 0; p.frameBytes -= bpf {
		p.frames++
	}
	p.maybeDecode()
	return true
}

// OnPacketBackpressure is the bounded-handler variant that refuses packets
// when the socket buffer is full instead of dropping them, propagating
// pressure back through the host ring into IXP DRAM (Figure 7 setup).
func (p *Player) OnPacketBackpressure(pkt *netsim.Packet) bool {
	if pkt.Class == netsim.ClassRTSP {
		return true
	}
	if p.bufBytes+pkt.Size > p.cfg.SocketBuffer {
		return false
	}
	p.bufBytes += pkt.Size
	p.frameBytes += float64(pkt.Size)
	for bpf := p.strm.BytesPerFrame(); p.frameBytes >= bpf && bpf > 0; p.frameBytes -= bpf {
		p.frames++
	}
	p.maybeDecode()
	return true
}

// maybeDecode starts the decode loop if frames are waiting.
func (p *Player) maybeDecode() {
	if p.decoding || p.frames == 0 {
		return
	}
	p.decoding = true
	cost := p.cfg.DecodeCost
	if p.cfg.Noise > 0 {
		cost = p.rng.TruncNormalTime(cost, cost.Scale(p.cfg.Noise), cost.Scale(0.3))
	}
	p.dom.SubmitFunc(cost, "decode", func() {
		p.decoded++
		if !p.cfg.DiskPlayback {
			p.frames--
			p.bufBytes -= int(p.strm.BytesPerFrame())
			if p.bufBytes < 0 {
				p.bufBytes = 0
			}
		}
		p.decoding = false
		p.maybeDecode()
	})
}

// String summarizes the player for diagnostics.
func (p *Player) String() string {
	return fmt.Sprintf("player{%s decoded=%d dropped=%d buf=%dB}",
		p.dom.Name(), p.decoded, p.dropped, p.bufBytes)
}
