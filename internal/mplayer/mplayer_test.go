package mplayer

import (
	"strings"
	"testing"

	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestStreamDefaults(t *testing.T) {
	s := Stream{BitrateBn: 1e6, FrameRate: 25}
	s.applyDefaults()
	if s.PacketSize != 1316 || s.Codec != "h264" {
		t.Fatalf("defaults = %+v", s)
	}
	if got := s.BytesPerFrame(); got != 5000 {
		t.Fatalf("BytesPerFrame = %v, want 5000", got)
	}
	if (Stream{BitrateBn: 1e6}).BytesPerFrame() != 0 {
		t.Fatal("zero frame rate should yield 0 bytes/frame")
	}
}

func TestDefaultDecodeCostOrdering(t *testing.T) {
	c1 := DefaultDecodeCost(Dom1Stream)
	c2 := DefaultDecodeCost(Dom2Stream)
	if c2 <= c1 {
		t.Fatalf("higher-bitrate stream should cost at least as much: %v vs %v", c1, c2)
	}
	// Demands at native rates stay below one core each but above half.
	d1 := float64(c1) * Dom1Stream.FrameRate / float64(sim.Second)
	d2 := float64(c2) * Dom2Stream.FrameRate / float64(sim.Second)
	if d1 < 0.5 || d1 > 1 || d2 < 0.5 || d2 > 1 {
		t.Fatalf("decode demands = %.2f, %.2f cores", d1, d2)
	}
}

func TestServerPacing(t *testing.T) {
	s := sim.New(1)
	p := platform.New(platform.Config{Seed: 1})
	_ = s
	d := p.AddGuest("vm", 256)
	var got []*netsim.Packet
	p.Host.Register(d.ID(), func(pkt *netsim.Packet) { got = append(got, pkt) })
	srv := NewServer(p.Sim, p.IXP, d.ID(), Stream{BitrateBn: 1e6, FrameRate: 25})
	srv.Start()
	p.Sim.RunUntil(2 * sim.Second)
	// 1 Mbit/s at 1316 B/packet = ~95 packets/s.
	rate := float64(srv.Sent()) / 2
	if rate < 85 || rate > 105 {
		t.Fatalf("packet rate = %.1f/s, want ~95", rate)
	}
	if len(got) == 0 {
		t.Fatal("no packets delivered to VM")
	}
	// First packet is the RTSP setup.
	if got[0].Class != netsim.ClassRTSP {
		t.Fatalf("first packet class = %q", got[0].Class)
	}
}

func TestServerBurstRaisesRate(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	p.Host.Register(d.ID(), func(*netsim.Packet) {})
	srv := NewServer(p.Sim, p.IXP, d.ID(), Stream{BitrateBn: 1e6, FrameRate: 25})
	srv.Start()
	p.Sim.RunUntil(2 * sim.Second)
	steady := srv.Sent()
	srv.SetBurst(true, 4)
	p.Sim.RunUntil(4 * sim.Second)
	burst := srv.Sent() - steady
	ratio := float64(burst) / float64(steady)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("burst ratio = %.2f, want ~4", ratio)
	}
	srv.Stop()
	at := srv.Sent()
	p.Sim.RunUntil(5 * sim.Second)
	if srv.Sent() != at {
		t.Fatal("server kept sending after Stop")
	}
}

func TestServerValidation(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid stream did not panic")
		}
	}()
	NewServer(p.Sim, p.IXP, 1, Stream{})
}

func TestClassifierRecordsStreamState(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	p.Host.Register(d.ID(), func(*netsim.Packet) {})
	var sessions int
	p.IXP.AddDPI(ClassifierDPI(p.IXP.XScale(), func(st ixp.StreamState) { sessions++ }))
	NewServer(p.Sim, p.IXP, d.ID(), Stream{BitrateBn: 1e6, FrameRate: 25}).Start()
	p.Sim.RunUntil(1 * sim.Second)
	st, ok := p.IXP.XScale().Stream(d.ID())
	if !ok || st.BitrateBn != 1e6 || st.FrameRate != 25 {
		t.Fatalf("stream state = %+v, %v", st, ok)
	}
	if sessions != 1 {
		t.Fatalf("session callback fired %d times", sessions)
	}
}

func TestPlayerDecodesAtArrivalRateWhenUncontended(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	strm := Stream{BitrateBn: 1e6, FrameRate: 25}
	pl := NewPlayer(p.Sim, PlayerConfig{}, d, strm)
	p.Host.Register(d.ID(), func(pkt *netsim.Packet) { pl.OnPacket(pkt) })
	NewServer(p.Sim, p.IXP, d.ID(), strm).Start()
	p.Sim.RunUntil(30 * sim.Second)
	fps := pl.FPS(5*sim.Second, p.Sim.Now())
	if fps < 24 || fps > 26 {
		t.Fatalf("uncontended fps = %.1f, want ~25", fps)
	}
	if pl.Dropped() != 0 {
		t.Fatalf("drops = %d on an uncontended run", pl.Dropped())
	}
}

func TestDiskPlaybackIsCPUBound(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddLocalGuest("vm", 256)
	pl := NewPlayer(p.Sim, PlayerConfig{DiskPlayback: true, DecodeCost: 10 * sim.Millisecond, Noise: -1}, d, Stream{BitrateBn: 5e5, FrameRate: 25})
	p.Sim.RunUntil(10 * sim.Second)
	fps := pl.FPS(2*sim.Second, p.Sim.Now())
	// One full core at 10ms/frame = 100 fps.
	if fps < 90 || fps > 105 {
		t.Fatalf("disk playback fps = %.1f, want ~100", fps)
	}
}

func TestPlayerSocketOverflowDrops(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	strm := Stream{BitrateBn: 4e6, FrameRate: 25} // heavy stream
	pl := NewPlayer(p.Sim, PlayerConfig{
		SocketBuffer: 8 << 10,
		DecodeCost:   200 * sim.Millisecond, // decoder can't keep up
	}, d, strm)
	p.Host.Register(d.ID(), func(pkt *netsim.Packet) { pl.OnPacket(pkt) })
	NewServer(p.Sim, p.IXP, d.ID(), strm).Start()
	p.Sim.RunUntil(10 * sim.Second)
	if pl.Dropped() == 0 {
		t.Fatal("expected socket-buffer drops")
	}
	if pl.BufferedBytes() > 8<<10 {
		t.Fatalf("socket buffer exceeded cap: %d", pl.BufferedBytes())
	}
}

func TestPlayerBackpressureRefusesInsteadOfDropping(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	p.Host.SetRingCapacity(32)
	strm := Stream{BitrateBn: 4e6, FrameRate: 25}
	pl := NewPlayer(p.Sim, PlayerConfig{
		SocketBuffer: 8 << 10,
		DecodeCost:   200 * sim.Millisecond,
	}, d, strm)
	p.Host.RegisterBounded(d.ID(), pl.OnPacketBackpressure)
	NewServer(p.Sim, p.IXP, d.ID(), strm).Start()
	p.Sim.RunUntil(20 * sim.Second)
	if pl.Dropped() != 0 {
		t.Fatalf("backpressure player dropped %d packets", pl.Dropped())
	}
	if p.Host.Retries() == 0 {
		t.Fatal("no ring retries despite full socket")
	}
	// Pressure must have reached the IXP DRAM queue.
	if p.IXP.Flow(d.ID()).MaxBytes() < 64<<10 {
		t.Fatalf("IXP buffer never backed up: max %d bytes", p.IXP.Flow(d.ID()).MaxBytes())
	}
}

func TestPlayerString(t *testing.T) {
	p := platform.New(platform.Config{Seed: 1})
	d := p.AddGuest("vm", 256)
	pl := NewPlayer(p.Sim, PlayerConfig{}, d, Dom1Stream)
	if !strings.Contains(pl.String(), "vm") {
		t.Fatalf("String = %q", pl.String())
	}
	if pl.Domain() != d {
		t.Fatal("Domain() wrong")
	}
	pl.Shutdown()
}

func TestQoSExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunQoSExperiment(QoSConfig{Duration: 40 * sim.Second})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	base, coord, third := pts[0], pts[1], pts[2]
	if base.Label != "256-256" || coord.Label != "384-512" || third.Label != "384-640" {
		t.Fatalf("labels = %v %v %v", base.Label, coord.Label, third.Label)
	}
	// Paper shape: with default weights Domain-2 misses its 25 fps target;
	// after the policy's weight increases it meets it.
	if base.Dom2FPS >= 24 {
		t.Fatalf("base Dom2 fps = %.1f, should miss 25", base.Dom2FPS)
	}
	if coord.Dom2FPS < 24 {
		t.Fatalf("coordinated Dom2 fps = %.1f, should meet ~25", coord.Dom2FPS)
	}
	// The policy produced exactly the paper's weights.
	if coord.Dom1Weight != 384 || coord.Dom2Weight != 512 {
		t.Fatalf("policy weights = %d-%d, want 384-512", coord.Dom1Weight, coord.Dom2Weight)
	}
	if third.Dom2Weight != 640 || third.Dom2IXPThreads != 4 {
		t.Fatalf("third config = weight %d threads %d", third.Dom2Weight, third.Dom2IXPThreads)
	}
	// Domain-1 must stay at or above ~its share in the third config.
	if third.Dom1FPS < 18 {
		t.Fatalf("third config starved Dom1: %.1f fps", third.Dom1FPS)
	}
}

func TestTriggerExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := TriggerConfig{Duration: 90 * sim.Second}
	base := RunTriggerExperiment(cfg, false)
	coord := RunTriggerExperiment(cfg, true)
	if coord.Triggers == 0 {
		t.Fatal("no triggers fired")
	}
	if base.Triggers != 0 {
		t.Fatal("baseline fired triggers")
	}
	if coord.Dom1FPS <= base.Dom1FPS {
		t.Fatalf("trigger coordination did not help: %.1f vs %.1f", coord.Dom1FPS, base.Dom1FPS)
	}
	// Figure 7 series exist and show buffer pressure above the threshold.
	if coord.BufferIn.Max() < float64(cfg.Threshold) {
		t.Fatalf("buffer never crossed threshold: max %.0f", coord.BufferIn.Max())
	}
	if coord.CPUUtil.Len() == 0 || base.CPUUtil.Len() == 0 {
		t.Fatal("missing CPU utilization series")
	}
}

func TestInterferenceExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := RunInterferenceExperiment(TriggerConfig{Duration: 90 * sim.Second})
	if r.Dom1Change <= 0 {
		t.Fatalf("Dom1 change = %+.2f%%, want positive", r.Dom1Change)
	}
	if r.Dom2Change >= 0 {
		t.Fatalf("Dom2 change = %+.2f%%, want negative (interference)", r.Dom2Change)
	}
	if r.Dom2Change < -25 {
		t.Fatalf("Dom2 degradation = %+.2f%%, should be modest", r.Dom2Change)
	}
}
