// Package mplayer models the paper's second benchmark: MPlayer clients in
// guest VMs decoding video streamed over RTSP/UDP from an external Darwin
// streaming server, with all traffic transiting the IXP.
//
// The quality-of-service metric is decoded frames per second (the paper
// disables video output and uses MPlayer's benchmark mode). A player's
// frame rate is limited by (a) the stream's arrival rate, (b) the CPU share
// its VM receives for decoding, and (c) losses: the stream is UDP with no
// flow control, so whenever the decoding VM falls behind, finite buffers
// along the path (the in-VM socket buffer, the host message ring, and
// ultimately the per-VM packet queue in IXP DRAM) fill and packets are
// dropped — the failure mode that the paper's buffer-watermark Trigger
// scheme exists to prevent.
package mplayer

import (
	"fmt"

	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Stream describes one video stream's negotiated parameters.
type Stream struct {
	Codec      string
	BitrateBn  float64 // bits per second
	FrameRate  float64 // frames per second
	PacketSize int     // RTP/UDP payload bytes (default 1316)
}

func (s *Stream) applyDefaults() {
	if s.PacketSize == 0 {
		s.PacketSize = 1316
	}
	if s.Codec == "" {
		s.Codec = "h264"
	}
}

// BytesPerFrame returns the average encoded frame size.
func (s Stream) BytesPerFrame() float64 {
	if s.FrameRate <= 0 {
		return 0
	}
	return s.BitrateBn / 8 / s.FrameRate
}

// SessionInfo is the payload of the RTSP session-setup packet; the IXP's
// stream classifier (a DPI) reads it and records per-VM stream state on the
// XScale core.
type SessionInfo struct {
	VM     int
	Stream Stream
}

// Server is the external streaming server: it emits an RTSP setup packet
// followed by UDP stream packets paced at the stream bitrate. Burst
// periods (for the Figure 7 experiment) multiply the packet rate.
type Server struct {
	sim  *sim.Simulator
	x    *ixp.IXP
	vm   int
	strm Stream

	burstFactor float64 // rate multiplier while bursting (1 = steady)
	bursting    bool

	pktID   uint64
	sent    uint64
	stopped bool
}

// NewServer creates a streaming server for one VM. Call Start to establish
// the session and begin streaming.
func NewServer(s *sim.Simulator, x *ixp.IXP, vm int, strm Stream) *Server {
	strm.applyDefaults()
	if strm.BitrateBn <= 0 || strm.FrameRate <= 0 {
		panic(fmt.Sprintf("mplayer: invalid stream %+v", strm))
	}
	return &Server{sim: s, x: x, vm: vm, strm: strm, burstFactor: 1}
}

// Stream returns the configured stream parameters.
func (sv *Server) Stream() Stream { return sv.strm }

// Sent returns the number of stream packets emitted.
func (sv *Server) Sent() uint64 { return sv.sent }

// Start sends the RTSP setup packet and begins paced streaming.
func (sv *Server) Start() {
	sv.pktID++
	sv.x.Receive(&netsim.Packet{
		ID:      sv.pktID,
		Size:    400,
		DstVM:   sv.vm,
		SrcVM:   -1,
		Class:   netsim.ClassRTSP,
		Payload: &SessionInfo{VM: sv.vm, Stream: sv.strm},
		Created: sv.sim.Now(),
	})
	sv.sim.After(sv.interval(), sv.emit)
}

// Stop ceases streaming.
func (sv *Server) Stop() { sv.stopped = true }

// SetBurst toggles burst mode: while on, packets are emitted at factor
// times the nominal rate (a UDP bulk-transfer surge with no flow control).
func (sv *Server) SetBurst(on bool, factor float64) {
	if factor < 1 {
		factor = 1
	}
	sv.bursting = on
	sv.burstFactor = factor
}

// interval returns the current inter-packet gap.
func (sv *Server) interval() sim.Time {
	rate := sv.strm.BitrateBn / 8 / float64(sv.strm.PacketSize) // packets/s
	if sv.bursting {
		rate *= sv.burstFactor
	}
	return sim.Time(float64(sim.Second) / rate)
}

// emit sends one stream packet and schedules the next.
func (sv *Server) emit() {
	if sv.stopped {
		return
	}
	sv.pktID++
	sv.sent++
	sv.x.Receive(&netsim.Packet{
		ID:      sv.pktID,
		Size:    sv.strm.PacketSize,
		DstVM:   sv.vm,
		SrcVM:   -1,
		Class:   netsim.ClassStream,
		Payload: &SessionInfo{VM: sv.vm, Stream: sv.strm},
		Created: sv.sim.Now(),
	})
	sv.sim.After(sv.interval(), sv.emit)
}

// ClassifierDPI returns the IXP stream classifier: it records RTSP session
// state on the XScale core and invokes onSession (which may be nil) — the
// hook the stream-property coordination policy attaches to.
func ClassifierDPI(xsc *ixp.XScale, onSession func(ixp.StreamState)) func(*netsim.Packet) {
	return func(p *netsim.Packet) {
		if p.Class != netsim.ClassRTSP {
			return
		}
		info, ok := p.Payload.(*SessionInfo)
		if !ok {
			return
		}
		st := ixp.StreamState{
			VMID:      info.VM,
			BitrateBn: info.Stream.BitrateBn,
			FrameRate: info.Stream.FrameRate,
		}
		xsc.RecordStream(st)
		if onSession != nil {
			onSession(st)
		}
	}
}
