package mplayer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Paper stream parameters (Figure 6): Domain-1 plays a 20 fps / 300 kbit
// stream, Domain-2 a 25 fps / 1 Mbit stream.
var (
	Dom1Stream = Stream{BitrateBn: 300e3, FrameRate: 20}
	Dom2Stream = Stream{BitrateBn: 1e6, FrameRate: 25}
)

// Polling-driver defaults: the vendor messaging driver polls the host-IXP
// message queues continuously, a steady Dom0 CPU demand the decoders
// compete with (heavy while two streams are active, lighter in the
// single-stream trigger experiments).
const (
	pollPeriod    = 2 * sim.Millisecond
	heavyPollCost = 1400 * sim.Microsecond // ~0.7 cores
	lightPollCost = 400 * sim.Microsecond  // ~0.2 cores
)

// QoSConfig parameterizes the Figure 6 experiment.
type QoSConfig struct {
	Seed     int64
	Duration sim.Time // per-configuration run length (default 60s)
	Warmup   sim.Time // default 10s
}

func (c *QoSConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
}

// QoSPoint is one bar pair of Figure 6.
type QoSPoint struct {
	Label          string // weight configuration, e.g. "256-256"
	Dom1Weight     int
	Dom2Weight     int
	Dom2IXPThreads int
	Dom1FPS        float64
	Dom2FPS        float64
}

// qosSetup wires the two-player testbed used by Figure 6.
func qosSetup(seed int64) (*platform.Platform, *Player, *Player, *core.StreamQoSPolicy) {
	p := platform.New(platform.Config{Seed: seed})
	d1 := p.AddGuest("Domain-1", 256)
	d2 := p.AddGuest("Domain-2", 256)
	p.Host.StartPollingDriver(pollPeriod, heavyPollCost)

	policy := core.NewStreamQoSPolicy(p.IXPAgent, platform.X86Island)
	p.IXP.AddDPI(ClassifierDPI(p.IXP.XScale(), policy.OnSession))

	pl1 := NewPlayer(p.Sim, PlayerConfig{}, d1, Dom1Stream)
	pl2 := NewPlayer(p.Sim, PlayerConfig{}, d2, Dom2Stream)
	p.Host.Register(d1.ID(), func(pkt *netsim.Packet) { pl1.OnPacket(pkt) })
	p.Host.Register(d2.ID(), func(pkt *netsim.Packet) { pl2.OnPacket(pkt) })

	NewServer(p.Sim, p.IXP, d1.ID(), Dom1Stream).Start()
	NewServer(p.Sim, p.IXP, d2.ID(), Dom2Stream).Start()
	return p, pl1, pl2, policy
}

// RunQoSExperiment reproduces Figure 6: the same two streams measured under
// three weight configurations. In "256-256" coordination is off; in
// "384-512" the stream-property policy's session tunes apply (the IXP
// detected both streams' rates at session setup); in "384-640" Domain-2's
// weight is raised further and its IXP receive queue gets more dequeue
// threads in tandem.
func RunQoSExperiment(cfg QoSConfig) []QoSPoint {
	cfg.applyDefaults()
	var out []QoSPoint

	type variant struct {
		label   string
		arrange func(p *platform.Platform, policy *core.StreamQoSPolicy)
	}
	for _, v := range []variant{
		{"256-256", func(p *platform.Platform, policy *core.StreamQoSPolicy) {
			// Baseline: discard the policy's session tunes by restoring the
			// default weights right after setup.
			p.Sim.At(sim.Second/2, func() {
				for _, d := range p.Guests() {
					if err := p.Ctl.SetWeight(d.ID(), 256); err != nil {
						panic(fmt.Sprintf("mplayer: resetting weight for %s: %v", d.Name(), err))
					}
				}
			})
		}},
		{"384-512", func(p *platform.Platform, policy *core.StreamQoSPolicy) {
			// The policy's own tunes produce exactly these weights.
		}},
		{"384-640", func(p *platform.Platform, policy *core.StreamQoSPolicy) {
			// Manual escalation per the paper: more weight and more IXP
			// dequeue threads for the higher-frame-rate Domain-2.
			p.Sim.At(sim.Second, func() {
				d2, err := p.GuestByName("Domain-2")
				if err != nil {
					panic(fmt.Sprintf("mplayer: looking up Domain-2: %v", err))
				}
				if err := p.Ctl.SetWeight(d2.ID(), 640); err != nil {
					panic(fmt.Sprintf("mplayer: escalating Domain-2 weight: %v", err))
				}
				if err := p.IXP.SetFlowThreads(d2.ID(), 4); err != nil {
					panic(fmt.Sprintf("mplayer: escalating Domain-2 dequeue threads: %v", err))
				}
			})
		}},
	} {
		p, pl1, pl2, policy := qosSetup(cfg.Seed)
		v.arrange(p, policy)
		p.Sim.RunUntil(cfg.Duration)
		d1, _ := p.GuestByName("Domain-1")
		d2, _ := p.GuestByName("Domain-2")
		out = append(out, QoSPoint{
			Label:          v.label,
			Dom1Weight:     d1.Weight(),
			Dom2Weight:     d2.Weight(),
			Dom2IXPThreads: p.IXP.FlowThreads(d2.ID()),
			Dom1FPS:        pl1.FPS(cfg.Warmup, p.Sim.Now()),
			Dom2FPS:        pl2.FPS(cfg.Warmup, p.Sim.Now()),
		})
	}
	return out
}

// TriggerConfig parameterizes the Figure 7 / Table 3 experiments.
type TriggerConfig struct {
	Seed      int64
	Duration  sim.Time // default 180s (the paper's x-axis)
	Warmup    sim.Time // default 10s
	Threshold int      // IXP buffer trigger threshold (default 128 KB)

	// Burst shape of the UDP stream (no flow control).
	BurstPeriod sim.Time // default 30s
	BurstLen    sim.Time // default 10s
	BurstFactor float64  // default 4x

}

func (c *TriggerConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 180 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.Threshold == 0 {
		c.Threshold = core.DefaultWatermark
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 30 * sim.Second
	}
	if c.BurstLen == 0 {
		c.BurstLen = 10 * sim.Second
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 4
	}
}

// TriggerResult carries Figure 7's series and Table 3's rows.
type TriggerResult struct {
	Coordinated bool
	Dom1FPS     float64
	Dom2FPS     float64 // the disk-playback victim (Table 3)

	CPUUtil   *stats.TimeSeries // Dom-1 CPU utilization, percent (Figure 7 left axis)
	BufferIn  *stats.TimeSeries // IXP buffer occupancy, bytes (Figure 7 right axis)
	Triggers  uint64            // trigger notifications sent
	Dom1Drops uint64            // packets lost at the player's socket buffer
}

// RunTriggerExperiment reproduces Figure 7 (and, with Interference, Table
// 3): a bursty UDP stream fills the per-VM packet queue in IXP DRAM; with
// coordination, crossing the byte threshold sends an immediate Trigger that
// boosts the dequeuing VM's runqueue position.
func RunTriggerExperiment(cfg TriggerConfig, coordinated bool) *TriggerResult {
	cfg.applyDefaults()
	p := platform.New(platform.Config{Seed: cfg.Seed})
	d1 := p.AddGuest("Domain-1", 256)
	// Domain-2 is the Table 3 victim, present throughout (the paper's
	// Figure 7 and Table 3 report the same Dom-1 numbers, so the runs share
	// a setup): an MPlayer VM playing a clip from its own local disk at the
	// fastest possible rate, using no IXP resources at all.
	d2 := p.AddLocalGuest("Domain-2", 256)
	pl2 := NewPlayer(p.Sim, PlayerConfig{DiskPlayback: true, DecodeCost: 11 * sim.Millisecond}, d2, Stream{BitrateBn: 500e3, FrameRate: 25})
	p.Host.StartPollingDriver(pollPeriod, lightPollCost)
	p.Host.SetRingCapacity(128)

	stream := Dom2Stream // 1 Mbit / 25 fps, the demanding stream
	pl1 := NewPlayer(p.Sim, PlayerConfig{SocketBuffer: 32 << 10}, d1, stream)
	p.Host.RegisterBounded(d1.ID(), pl1.OnPacketBackpressure)
	p.IXP.AddDPI(ClassifierDPI(p.IXP.XScale(), nil))

	var policy *core.BufferWatermarkPolicy
	if coordinated {
		// Trigger translation: runqueue boost plus a transient weight surge
		// held for the duration of the overload episode.
		p.X86Act.EnableTriggerSurge(p.Sim, 1.8, 150*sim.Millisecond)
		policy = core.NewBufferWatermarkPolicy(p.IXPAgent, platform.X86Island, cfg.Threshold)
		if err := policy.Attach(p.IXP, d1.ID()); err != nil {
			panic(fmt.Sprintf("mplayer: arming buffer watermark: %v", err))
		}
		// Level-triggered re-arm: while the buffer stays above threshold,
		// the XScale monitor keeps re-triggering so the boost persists for
		// the duration of the overload (each spike in Figure 7).
		p.IXP.XScale().MonitorBuffers(100*sim.Millisecond, func(vm, bytes int) {
			if vm == d1.ID() && bytes >= cfg.Threshold {
				p.IXPAgent.SendTrigger(platform.X86Island, vm)
			}
		})
	}

	srv := NewServer(p.Sim, p.IXP, d1.ID(), stream)
	srv.Start()
	// Arm the burst schedule.
	var schedule func()
	schedule = func() {
		srv.SetBurst(true, cfg.BurstFactor)
		p.Sim.After(cfg.BurstLen, func() { srv.SetBurst(false, 1) })
		p.Sim.After(cfg.BurstPeriod, schedule)
	}
	p.Sim.After(cfg.BurstPeriod-cfg.BurstLen, schedule)

	// Figure 7 series: Dom-1 CPU utilization and IXP buffer occupancy.
	util := stats.NewTimeSeries("dom1-cpu")
	buf := stats.NewTimeSeries("ixp-buffer-in")
	lastBusy := sim.Time(0)
	lastT := sim.Time(0)
	p.Sim.Ticker(sim.Second, func() {
		now := p.Sim.Now()
		p.HV.TotalUtilization(0, d1)
		busy := d1.Meter().Busy()
		if now > lastT {
			util.Add(now, float64(busy-lastBusy)/float64(now-lastT)*100)
		}
		lastBusy, lastT = busy, now
		buf.Add(now, float64(p.IXP.Flow(d1.ID()).Bytes()))
	})

	p.Sim.RunUntil(cfg.Duration)
	res := &TriggerResult{
		Coordinated: coordinated,
		Dom1FPS:     pl1.FPS(cfg.Warmup, p.Sim.Now()),
		CPUUtil:     util,
		BufferIn:    buf,
		Dom1Drops:   pl1.Dropped(),
	}
	if coordinated {
		res.Triggers = p.IXPAgent.Stats().TriggersSent
	}
	res.Dom2FPS = pl2.FPS(cfg.Warmup, p.Sim.Now())
	return res
}

// InterferenceResult is Table 3: the effect of Dom-1's triggers on a VM
// that uses no IXP resources.
type InterferenceResult struct {
	Dom1Base, Dom1Coord    float64
	Dom2Base, Dom2Coord    float64
	Dom1Change, Dom2Change float64 // percent
}

// RunInterferenceExperiment reproduces Table 3.
func RunInterferenceExperiment(cfg TriggerConfig) *InterferenceResult {
	base := RunTriggerExperiment(cfg, false)
	coord := RunTriggerExperiment(cfg, true)
	res := &InterferenceResult{
		Dom1Base:  base.Dom1FPS,
		Dom1Coord: coord.Dom1FPS,
		Dom2Base:  base.Dom2FPS,
		Dom2Coord: coord.Dom2FPS,
	}
	if base.Dom1FPS > 0 {
		res.Dom1Change = (coord.Dom1FPS - base.Dom1FPS) / base.Dom1FPS * 100
	}
	if base.Dom2FPS > 0 {
		res.Dom2Change = (coord.Dom2FPS - base.Dom2FPS) / base.Dom2FPS * 100
	}
	return res
}
