package mplayer

import (
	"testing"

	"repro/internal/sim"
)

func TestCalibrationQoS(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, pt := range RunQoSExperiment(QoSConfig{}) {
		t.Logf("%-8s weights=(%d,%d) threads=%d | dom1=%.1f fps (target 20) dom2=%.1f fps (target 25)",
			pt.Label, pt.Dom1Weight, pt.Dom2Weight, pt.Dom2IXPThreads, pt.Dom1FPS, pt.Dom2FPS)
	}
}

func TestCalibrationTrigger(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := TriggerConfig{Duration: 120 * sim.Second}
	base := RunTriggerExperiment(cfg, false)
	coord := RunTriggerExperiment(cfg, true)
	t.Logf("base:  dom1=%.1f fps drops=%d bufMax=%.0f", base.Dom1FPS, base.Dom1Drops, base.BufferIn.Max())
	t.Logf("coord: dom1=%.1f fps drops=%d bufMax=%.0f triggers=%d", coord.Dom1FPS, coord.Dom1Drops, coord.BufferIn.Max(), coord.Triggers)
}

func TestCalibrationInterference(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	r := RunInterferenceExperiment(TriggerConfig{Duration: 120 * sim.Second})
	t.Logf("dom1 %.1f -> %.1f (%+.2f%%), dom2 %.1f -> %.1f (%+.2f%%)",
		r.Dom1Base, r.Dom1Coord, r.Dom1Change, r.Dom2Base, r.Dom2Coord, r.Dom2Change)
}
