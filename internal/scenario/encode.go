package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/sim"
)

// Binary format constants. The framing deliberately mirrors the flight
// recorder's (docs/flightrecorder.md): a fixed header, CRC32-framed
// segments of interleaved intern/request records, and a counted trailer.
// See docs/scenarios.md for the .wtrace specification.
const (
	// Version is the current format version; Decode rejects any other.
	Version uint16 = 1

	// DefaultSegmentReqs is the encoder's segment granularity: requests
	// per CRC-framed segment.
	DefaultSegmentReqs = 1024

	magic = "WTR1"

	opIntern byte = 0x01 // payload record: define the next class-table entry
	opReq    byte = 0x02 // payload record: one request

	segMarker byte = 0xA5 // frames one segment
	endMarker byte = 0x5A // trailer: end of trace + total request count

	// minReqBytes is the smallest possible encoded request record (op,
	// dt, class id, session, size — one byte each); the decoder uses it
	// to reject corrupt record counts before doing any work.
	minReqBytes = 5
)

// headerFixedLen is the byte length of the fixed header prefix: magic,
// version, flags, seed.
const headerFixedLen = 4 + 2 + 2 + 8

// encState is the stateful half of the encoding shared by every segment
// of one trace: the class-interning table and the timestamp delta base.
// Arrivals form a single nondecreasing stream, so one delta base suffices
// (unlike the flight log's per-category bases). The decoder mirrors it.
type encState struct {
	intern map[string]uint64
	nextID uint64
	lastT  sim.Time
}

func newEncState() encState {
	return encState{intern: make(map[string]uint64)}
}

// appendReq appends r's payload records (an intern definition first if the
// class is new) to buf, advancing the encoder state.
func (s *encState) appendReq(buf []byte, r Req) ([]byte, error) {
	dt := r.T - s.lastT
	switch {
	case dt < 0:
		return buf, fmt.Errorf("scenario: arrival time went backwards: %v after %v", r.T, s.lastT)
	case r.Class == "":
		return buf, fmt.Errorf("scenario: request at %v has an empty class", r.T)
	case r.Session < 0:
		return buf, fmt.Errorf("scenario: request at %v has negative session %d", r.T, r.Session)
	case r.Size < 0:
		return buf, fmt.Errorf("scenario: request at %v has negative size %d", r.T, r.Size)
	}
	id, ok := s.intern[r.Class]
	if !ok {
		id = s.nextID
		s.nextID++
		s.intern[r.Class] = id
		buf = append(buf, opIntern)
		buf = binary.AppendUvarint(buf, uint64(len(r.Class)))
		buf = append(buf, r.Class...)
	}
	s.lastT = r.T
	buf = append(buf, opReq)
	buf = binary.AppendUvarint(buf, uint64(dt))
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(r.Session))
	buf = binary.AppendUvarint(buf, uint64(r.Size))
	return buf, nil
}

// appendHeader appends the file header.
func appendHeader(buf []byte, seed int64, meta []byte) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags, reserved
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seed))
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	return append(buf, meta...)
}

// appendSegment frames one payload: marker, payload length, CRC32 (IEEE)
// of the payload, then the payload itself.
func appendSegment(buf, payload []byte) []byte {
	buf = append(buf, segMarker)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// appendTrailer appends the end-of-trace marker with the total request
// count, letting the decoder distinguish a complete trace from a
// truncated one.
func appendTrailer(buf []byte, total uint64) []byte {
	buf = append(buf, endMarker)
	return binary.AppendUvarint(buf, total)
}

// appendSegmentPayload appends one segment payload: the request count
// followed by the interleaved intern/request records.
func (s *encState) appendSegmentPayload(buf []byte, reqs []Req) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(reqs)))
	var err error
	for _, r := range reqs {
		if buf, err = s.appendReq(buf, r); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Encode writes a complete .wtrace for reqs in segments of segmentReqs
// records (<= 0 selects DefaultSegmentReqs). Encoding the requests a
// Decode returned with the same segment size reproduces the original
// bytes exactly — the round-trip contract the golden conformance suite
// pins.
func Encode(w io.Writer, seed int64, meta []byte, reqs []Req, segmentReqs int) error {
	if segmentReqs <= 0 {
		segmentReqs = DefaultSegmentReqs
	}
	buf := appendHeader(nil, seed, meta)
	st := newEncState()
	total := uint64(len(reqs))
	var payload []byte // reused across segments
	for len(reqs) > 0 {
		n := segmentReqs
		if n > len(reqs) {
			n = len(reqs)
		}
		var err error
		payload, err = st.appendSegmentPayload(payload[:0], reqs[:n])
		if err != nil {
			return err
		}
		buf = appendSegment(buf, payload)
		reqs = reqs[n:]
	}
	if _, err := w.Write(appendTrailer(buf, total)); err != nil {
		return fmt.Errorf("scenario: writing trace: %w", err)
	}
	return nil
}

// Encode writes the trace with the default segment size.
func (t *Trace) Encode(w io.Writer) error {
	return Encode(w, t.Seed, t.Meta, t.Reqs, DefaultSegmentReqs)
}

// WriteFile encodes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and decodes a .wtrace file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Decode(data)
}
