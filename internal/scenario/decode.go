package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/sim"
)

// decodeError builds a diagnosable decode failure at a byte offset.
func decodeError(off int, format string, args ...interface{}) error {
	return fmt.Errorf("scenario: decode at byte %d: %s", off, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over the encoded bytes. Every length
// it reads is validated against the remaining input before any
// allocation, so a corrupt length field can never force an allocation
// proportional to its claimed (rather than actual) size.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, decodeError(r.off, "unexpected end of input")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, decodeError(r.off, "need %d bytes, have %d", n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, decodeError(r.off, "bad uvarint")
	}
	r.off += n
	return v, nil
}

// Decode parses a complete .wtrace. It never panics on corrupt input:
// truncation, a bad CRC, an unknown version, or any malformed field
// returns a diagnosable error (alongside nothing — partial decodes are
// not returned, because replaying a silently shortened trace would
// produce a bogus run).
func Decode(data []byte) (*Trace, error) {
	r := &reader{data: data}
	mag, err := r.take(len(magic))
	if err != nil {
		return nil, err
	}
	if string(mag) != magic {
		return nil, decodeError(0, "bad magic %q (want %q)", mag, magic)
	}
	fixed, err := r.take(headerFixedLen - len(magic))
	if err != nil {
		return nil, err
	}
	t := &Trace{Bytes: len(data)}
	t.Version = binary.LittleEndian.Uint16(fixed[0:2])
	if t.Version != Version {
		return nil, fmt.Errorf("scenario: unsupported trace version %d (this build reads version %d)", t.Version, Version)
	}
	if flags := binary.LittleEndian.Uint16(fixed[2:4]); flags != 0 {
		return nil, fmt.Errorf("scenario: unknown header flags %#x", flags)
	}
	t.Seed = int64(binary.LittleEndian.Uint64(fixed[4:12]))
	metaLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if metaLen > uint64(r.remaining()) {
		return nil, decodeError(r.off, "meta length %d exceeds remaining %d bytes", metaLen, r.remaining())
	}
	meta, err := r.take(int(metaLen))
	if err != nil {
		return nil, err
	}
	t.Meta = append([]byte(nil), meta...)

	st := decState{}
	for {
		marker, err := r.byte()
		if err != nil {
			return nil, fmt.Errorf("scenario: truncated trace: missing end-of-trace trailer: %w", err)
		}
		switch marker {
		case segMarker:
			if err := st.decodeSegment(r, t); err != nil {
				return nil, err
			}
		case endMarker:
			total, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if total != uint64(len(t.Reqs)) {
				return nil, decodeError(r.off, "trailer declares %d requests, decoded %d", total, len(t.Reqs))
			}
			if r.remaining() != 0 {
				return nil, decodeError(r.off, "%d trailing bytes after end-of-trace marker", r.remaining())
			}
			return t, nil
		default:
			return nil, decodeError(r.off-1, "unknown frame marker %#x", marker)
		}
	}
}

// decState mirrors encState on the decoding side.
type decState struct {
	intern []string
	lastT  sim.Time
}

// decodeSegment verifies one segment's frame and decodes its payload into
// t.Reqs.
func (st *decState) decodeSegment(r *reader, t *Trace) error {
	segOff := r.off - 1
	payloadLen, err := r.uvarint()
	if err != nil {
		return err
	}
	crcBytes, err := r.take(4)
	if err != nil {
		return err
	}
	wantCRC := binary.LittleEndian.Uint32(crcBytes)
	if payloadLen > uint64(r.remaining()) {
		return decodeError(r.off, "segment payload length %d exceeds remaining %d bytes (truncated?)", payloadLen, r.remaining())
	}
	payload, err := r.take(int(payloadLen))
	if err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return decodeError(segOff, "segment CRC mismatch: computed %#08x, stored %#08x", got, wantCRC)
	}

	p := &reader{data: payload}
	count, err := p.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(payload))/minReqBytes+1 {
		return decodeError(segOff, "segment declares %d requests in a %d-byte payload", count, len(payload))
	}
	var decoded uint64
	for p.remaining() > 0 {
		op, err := p.byte()
		if err != nil {
			return err
		}
		switch op {
		case opIntern:
			strLen, err := p.uvarint()
			if err != nil {
				return err
			}
			if strLen > uint64(p.remaining()) {
				return decodeError(p.off, "interned class length %d exceeds remaining %d bytes", strLen, p.remaining())
			}
			if strLen == 0 {
				return decodeError(p.off, "interned class is empty")
			}
			s, err := p.take(int(strLen))
			if err != nil {
				return err
			}
			st.intern = append(st.intern, string(s))
		case opReq:
			req, err := st.decodeReq(p)
			if err != nil {
				return err
			}
			t.Reqs = append(t.Reqs, req)
			decoded++
		default:
			return decodeError(p.off-1, "unknown payload op %#x", op)
		}
	}
	if decoded != count {
		return decodeError(segOff, "segment declares %d requests, holds %d", count, decoded)
	}
	return nil
}

// decodeReq decodes one opReq record body.
func (st *decState) decodeReq(p *reader) (Req, error) {
	var req Req
	dt, err := p.uvarint()
	if err != nil {
		return req, err
	}
	if dt > uint64(math.MaxInt64-int64(st.lastT)) {
		return req, decodeError(p.off, "arrival delta %d overflows sim time", dt)
	}
	req.T = st.lastT + sim.Time(dt)
	st.lastT = req.T
	classID, err := p.uvarint()
	if err != nil {
		return req, err
	}
	if classID >= uint64(len(st.intern)) {
		return req, decodeError(p.off, "class ID %d beyond interning table of %d", classID, len(st.intern))
	}
	req.Class = st.intern[classID]
	session, err := p.uvarint()
	if err != nil {
		return req, err
	}
	if session > math.MaxInt64 {
		return req, decodeError(p.off, "session %d overflows int64", session)
	}
	req.Session = int64(session)
	size, err := p.uvarint()
	if err != nil {
		return req, err
	}
	if size > math.MaxInt64 {
		return req, decodeError(p.off, "size %d overflows int64", size)
	}
	req.Size = int64(size)
	return req, nil
}
