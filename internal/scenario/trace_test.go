package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleReqs() []Req {
	return []Req{
		{T: 0, Class: "browse", Session: 0},
		{T: 10 * sim.Millisecond, Class: "view", Session: 1, Size: 300},
		{T: 10 * sim.Millisecond, Class: "browse", Session: 0},
		{T: 25 * sim.Millisecond, Class: "bid", Session: 1, Size: 700},
		{T: 40 * sim.Millisecond, Class: "view", Session: 2},
	}
}

func encodeTrace(t *testing.T, tr *Trace, segment int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr.Seed, tr.Meta, tr.Reqs, segment); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTrip pins the core conformance contract: Decode inverts Encode
// exactly, and re-encoding the decoded trace reproduces the bytes.
func TestRoundTrip(t *testing.T) {
	tr := &Trace{Seed: 42, Meta: []byte(`{"k":"v"}`), Reqs: sampleReqs()}
	for _, segment := range []int{0, 1, 2, 1024} {
		data := encodeTrace(t, tr, segment)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("segment=%d: Decode: %v", segment, err)
		}
		if got.Seed != tr.Seed || string(got.Meta) != string(tr.Meta) {
			t.Fatalf("segment=%d: header got seed=%d meta=%q", segment, got.Seed, got.Meta)
		}
		if len(got.Reqs) != len(tr.Reqs) {
			t.Fatalf("segment=%d: decoded %d reqs, want %d", segment, len(got.Reqs), len(tr.Reqs))
		}
		for i := range tr.Reqs {
			if got.Reqs[i] != tr.Reqs[i] {
				t.Fatalf("segment=%d: req %d = %+v, want %+v", segment, i, got.Reqs[i], tr.Reqs[i])
			}
		}
		re := encodeTrace(t, got, segment)
		if !bytes.Equal(re, data) {
			t.Fatalf("segment=%d: re-encode is not byte-identical (%d vs %d bytes)", segment, len(re), len(data))
		}
	}
}

// TestEmptyTrace: a trace with no requests still frames and round-trips.
func TestEmptyTrace(t *testing.T) {
	tr := &Trace{Seed: 7}
	data := encodeTrace(t, tr, 0)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Reqs) != 0 || got.Seed != 7 {
		t.Fatalf("got %d reqs seed %d", len(got.Reqs), got.Seed)
	}
}

// TestEncodeRejectsInvalid: the encoder refuses structurally invalid
// traces with diagnosable errors rather than emitting undecodable bytes.
func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		reqs []Req
		want string
	}{
		{"time backwards", []Req{{T: 10, Class: "a"}, {T: 5, Class: "a"}}, "backwards"},
		{"empty class", []Req{{T: 1}}, "empty class"},
		{"negative session", []Req{{T: 1, Class: "a", Session: -1}}, "negative session"},
		{"negative size", []Req{{T: 1, Class: "a", Size: -3}}, "negative size"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := Encode(&buf, 1, nil, tc.reqs, 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Validate reports the same defects without encoding. The first case
	// needs a class on the out-of-order request so only ordering fails.
	bad := &Trace{Reqs: []Req{{T: 10, Class: "a"}, {T: 5, Class: "a"}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "before") {
		t.Errorf("Validate out-of-order: got %v", err)
	}
	if err := (&Trace{Reqs: sampleReqs()}).Validate(); err != nil {
		t.Errorf("Validate of valid trace: %v", err)
	}
}

// TestDecodeRejectsCorruption spot-checks the decoder's corruption
// handling beyond what the fuzzer explores: CRC damage, truncation, a
// tampered trailer count, and trailing garbage all fail diagnosably.
func TestDecodeRejectsCorruption(t *testing.T) {
	tr := &Trace{Seed: 3, Reqs: sampleReqs()}
	data := encodeTrace(t, tr, 0)

	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x40
	if _, err := Decode(flip); err == nil {
		t.Error("decoder accepted a corrupted trace")
	}
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Error("decoder accepted a truncated trace")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0x00)); err == nil {
		t.Error("decoder accepted trailing garbage")
	}
	if _, err := Decode([]byte("not a trace")); err == nil {
		t.Error("decoder accepted a bad magic")
	}
}

// TestInfo checks the inspection summary on a known trace.
func TestInfo(t *testing.T) {
	tr := &Trace{Seed: 9, Reqs: sampleReqs()}
	data := encodeTrace(t, tr, 0)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	info := got.Info()
	if info.Reqs != 5 || info.Sessions != 3 || info.Bytes != len(data) {
		t.Fatalf("info = %+v", info)
	}
	if info.First != 0 || info.Last != 40*sim.Millisecond {
		t.Fatalf("span [%v, %v]", info.First, info.Last)
	}
	want := []ClassCount{{"bid", 1}, {"browse", 2}, {"view", 2}}
	if len(info.Classes) != len(want) {
		t.Fatalf("classes = %v", info.Classes)
	}
	for i, c := range want {
		if info.Classes[i] != c {
			t.Fatalf("classes[%d] = %v, want %v", i, info.Classes[i], c)
		}
	}
}

// TestFileRoundTrip covers the WriteFile/ReadFile convenience pair.
func TestFileRoundTrip(t *testing.T) {
	tr := &Trace{Seed: 11, Reqs: sampleReqs()}
	path := t.TempDir() + "/t.wtrace"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reqs) != len(tr.Reqs) || got.Seed != tr.Seed {
		t.Fatalf("file round trip lost data: %+v", got.Info())
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("ReadFile of a missing path succeeded")
	}
}

func BenchmarkEncode(b *testing.B) {
	tr, err := Generate(GenSpec{Kind: KVTier, Duration: 30 * sim.Second, Rate: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sink countWriter
	for i := 0; i < b.N; i++ {
		sink = 0
		if err := tr.Encode(&sink); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(sink))
}

func BenchmarkDecode(b *testing.B) {
	tr, err := Generate(GenSpec{Kind: KVTier, Duration: 30 * sim.Second, Rate: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(buf.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// countWriter counts bytes without keeping them.
type countWriter int

func (w *countWriter) Write(p []byte) (int, error) {
	*w += countWriter(len(p))
	return len(p), nil
}
