package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// goldenSpec returns the pinned spec behind one committed golden trace.
// Short durations keep the fixtures small while still exercising every
// class and the interning/delta machinery.
func goldenSpec(kind Kind) GenSpec {
	return GenSpec{Kind: kind, Duration: 10 * sim.Second, Rate: 30, Seed: 1}
}

func goldenPath(kind Kind) string {
	return filepath.Join("testdata", fmt.Sprintf("%s.wtrace", kind))
}

// TestGoldenTraces pins both the generators and the on-disk format: for
// every family the committed testdata/<kind>.wtrace must equal the
// current generator+encoder output byte-for-byte, decode to a valid
// trace, and re-encode byte-identically. Set SCENARIO_WRITE_GOLDEN=1 to
// regenerate after a deliberate change (a format change must also bump
// Version).
func TestGoldenTraces(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tr, err := Generate(goldenSpec(kind))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			want := buf.Bytes()
			path := goldenPath(kind)
			if os.Getenv("SCENARIO_WRITE_GOLDEN") == "1" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden fixture (regenerate with SCENARIO_WRITE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("golden %s (%d bytes) does not match current generator output (%d bytes); a deliberate change must regenerate the fixture", path, len(data), len(want))
			}
			dec, err := Decode(data)
			if err != nil {
				t.Fatalf("golden fixture no longer decodes: %v", err)
			}
			if err := dec.Validate(); err != nil {
				t.Fatalf("golden fixture decodes to an invalid trace: %v", err)
			}
			var re bytes.Buffer
			if err := dec.Encode(&re); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes(), data) {
				t.Fatal("golden fixture does not round-trip byte-identically")
			}
			if meta, ok := ParseGenMeta(dec.Meta); !ok || meta.Reqs != len(dec.Reqs) {
				t.Fatalf("golden meta %+v disagrees with %d decoded requests", meta, len(dec.Reqs))
			}
		})
	}
}

// TestGoldenCrossVersionRejection guards the compatibility contract: a
// trace whose header declares any other version is refused outright
// rather than half-read.
func TestGoldenCrossVersionRejection(t *testing.T) {
	data, err := os.ReadFile(goldenPath(FlashCrowd))
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	for _, v := range []uint16{0, Version + 1, 0xFFFF} {
		b := append([]byte(nil), data...)
		b[4] = byte(v)
		b[5] = byte(v >> 8)
		if _, err := Decode(b); err == nil {
			t.Fatalf("decoder accepted version %d", v)
		}
	}
}
