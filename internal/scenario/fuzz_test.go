package scenario

import (
	"os"
	"testing"
)

// FuzzTraceDecoder feeds arbitrary bytes to Decode. The decoder must
// never panic and never allocate proportionally to a corrupted length
// field; a successful decode must satisfy the format's own invariants
// (structurally valid, re-encodable, request count bounded by input
// size).
func FuzzTraceDecoder(f *testing.F) {
	if golden, err := os.ReadFile(goldenPath(FlashCrowd)); err == nil {
		f.Add(golden)
		// Truncations and single-byte corruptions of the golden trace seed
		// the interesting error paths.
		for _, n := range []int{0, 4, 8, 16, len(golden) / 2, len(golden) - 1} {
			if n <= len(golden) {
				f.Add(golden[:n])
			}
		}
		for _, i := range []int{0, 5, 17, len(golden) / 2, len(golden) - 2} {
			b := append([]byte(nil), golden...)
			b[i] ^= 0x80
			f.Add(b)
		}
	}
	f.Add([]byte("WTR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("decode error with empty message")
			}
			return
		}
		if len(tr.Reqs) > len(data) {
			t.Fatalf("decoded %d requests from %d bytes", len(tr.Reqs), len(data))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted a structurally invalid trace: %v", err)
		}
		// Anything the decoder accepts must survive a round trip.
		var re countWriter
		if err := Encode(&re, tr.Seed, tr.Meta, tr.Reqs, DefaultSegmentReqs); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
	})
}
