package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Kind names a trace generator family.
type Kind string

// The generator catalog. Each family stresses a workload shape the
// paper's closed-loop RUBiS client cannot express; see docs/scenarios.md
// for the catalog's intent and knobs.
const (
	// FlashCrowd is a steady arrival process with a multiplicative rate
	// spike concentrated on a hot item (view/bid heavy) — the overload
	// plane's canonical trigger.
	FlashCrowd Kind = "flash-crowd"
	// Diurnal follows a raised-cosine day/night curve over Period.
	Diurnal Kind = "diurnal"
	// HeavyTail draws Pareto-distributed session lengths: most sessions
	// are a few requests, a heavy tail browses for hundreds.
	HeavyTail Kind = "heavy-tail"
	// MLServing models an inference tier: batched arrivals of light and
	// heavy requests with periodic model-update writes.
	MLServing Kind = "ml-serving"
	// KVTier models a memcached-style key-value tier: a high-rate stream
	// of cheap gets with occasional scans and sets over a fixed
	// connection pool.
	KVTier Kind = "kv-tier"
)

// Kinds returns the generator families in catalog order.
func Kinds() []Kind {
	return []Kind{FlashCrowd, Diurnal, HeavyTail, MLServing, KVTier}
}

// GenSpec parameterizes one generator run. Zero values take the
// per-family defaults noted on each field; every generated trace is a
// pure function of the spec (including Seed).
type GenSpec struct {
	Kind     Kind
	Duration sim.Time // trace span (required)
	Rate     float64  // mean arrival rate, requests/second (default 40)
	Seed     int64    // generator seed (default 1)

	// Flash-crowd knobs.
	SpikeStart  sim.Time // spike onset (default Duration/3)
	SpikeLen    sim.Time // spike length (default Duration/6)
	SpikeFactor float64  // in-spike rate multiplier (default 8)

	// Diurnal knobs.
	Period     sim.Time // day length (default Duration: one full cycle)
	NightFloor float64  // trough rate as a fraction of Rate (default 0.15)

	// Heavy-tail knobs.
	Alpha      float64  // Pareto shape of session lengths (default 1.3)
	SessionMin float64  // minimum session length, requests (default 3)
	Think      sim.Time // mean in-session think time (default 400ms)

	// ML-serving knobs.
	HeavyFraction float64  // fraction of heavy inferences (default 0.2)
	Batch         int      // requests per arrival batch (default 4)
	UpdatePeriod  sim.Time // model-update cadence (default 10s)

	// KV-tier knobs.
	ReadFraction float64 // fraction of gets (default 0.85)
	ScanFraction float64 // fraction of scans (default 0.05)
}

func (s *GenSpec) applyDefaults() {
	if s.Rate == 0 {
		s.Rate = 40
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SpikeStart == 0 {
		s.SpikeStart = s.Duration / 3
	}
	if s.SpikeLen == 0 {
		s.SpikeLen = s.Duration / 6
	}
	if s.SpikeFactor == 0 {
		s.SpikeFactor = 8
	}
	if s.Period == 0 {
		s.Period = s.Duration
	}
	if s.NightFloor == 0 {
		s.NightFloor = 0.15
	}
	if s.Alpha == 0 {
		s.Alpha = 1.3
	}
	if s.SessionMin == 0 {
		s.SessionMin = 3
	}
	if s.Think == 0 {
		s.Think = 400 * sim.Millisecond
	}
	if s.HeavyFraction == 0 {
		s.HeavyFraction = 0.2
	}
	if s.Batch == 0 {
		s.Batch = 4
	}
	if s.UpdatePeriod == 0 {
		s.UpdatePeriod = 10 * sim.Second
	}
	if s.ReadFraction == 0 {
		s.ReadFraction = 0.85
	}
	if s.ScanFraction == 0 {
		s.ScanFraction = 0.05
	}
}

// Validate reports the first configuration error in the spec (before
// defaults are applied to the zero fields).
func (s GenSpec) Validate() error {
	known := false
	for _, k := range Kinds() {
		if s.Kind == k {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("scenario: unknown generator kind %q (have %v)", s.Kind, Kinds())
	}
	switch {
	case s.Duration <= 0:
		return fmt.Errorf("scenario: generator %s needs a positive duration, got %v", s.Kind, s.Duration)
	case s.Rate < 0:
		return fmt.Errorf("scenario: negative rate %g", s.Rate)
	case s.SpikeFactor < 0:
		return fmt.Errorf("scenario: negative spike factor %g", s.SpikeFactor)
	case s.SpikeStart < 0 || s.SpikeLen < 0:
		return fmt.Errorf("scenario: negative spike window [%v, +%v)", s.SpikeStart, s.SpikeLen)
	case s.NightFloor < 0 || s.NightFloor > 1:
		return fmt.Errorf("scenario: night floor %g outside [0, 1]", s.NightFloor)
	case s.Alpha < 0:
		return fmt.Errorf("scenario: negative Pareto alpha %g", s.Alpha)
	case s.SessionMin < 0:
		return fmt.Errorf("scenario: negative session minimum %g", s.SessionMin)
	case s.HeavyFraction < 0 || s.HeavyFraction > 1:
		return fmt.Errorf("scenario: heavy fraction %g outside [0, 1]", s.HeavyFraction)
	case s.Batch < 0:
		return fmt.Errorf("scenario: negative batch size %d", s.Batch)
	case s.ReadFraction < 0 || s.ScanFraction < 0 || s.ReadFraction+s.ScanFraction > 1:
		return fmt.Errorf("scenario: kv fractions read=%g scan=%g must be nonnegative and sum to at most 1", s.ReadFraction, s.ScanFraction)
	}
	return nil
}

// Classes returns the class vocabulary a generator family emits, in
// stable order. DefaultClassMap maps every entry onto a RUBiS request
// type.
func (k Kind) Classes() []string {
	switch k {
	case FlashCrowd:
		return []string{"browse", "search", "view", "bid", "sell"}
	case Diurnal:
		return []string{"browse", "search", "view", "bid", "sell", "register"}
	case HeavyTail:
		return []string{"browse", "search", "view", "bid"}
	case MLServing:
		return []string{"infer-light", "infer-heavy", "model-update"}
	case KVTier:
		return []string{"kv-get", "kv-scan", "kv-set"}
	default:
		return nil
	}
}

// DefaultClassMap maps every generator class onto the RUBiS request type
// whose tier profile best matches its cost shape (the values are
// rubis.RequestType names; rubis.ResolveTrace also accepts the sixteen
// RUBiS names directly, so recorded RUBiS traces replay unmapped).
func DefaultClassMap() map[string]string {
	return map[string]string{
		"browse":   "Browse",
		"search":   "SearchItemsInCategory",
		"view":     "ViewItem",
		"bid":      "PutBid",
		"sell":     "Sell",
		"register": "Register",

		// Inference requests are read-shaped (no durable writes); the
		// heavy class lands on the most app/db-expensive read profile,
		// model updates on the heaviest write profile.
		"infer-light":  "SellItemForm",
		"infer-heavy":  "ViewItem",
		"model-update": "PutComment",

		// The KV tier is dominated by cheap reads; scans fan out like a
		// category search and sets take the short write path.
		"kv-get":  "SellItemForm",
		"kv-scan": "SearchItemsInCategory",
		"kv-set":  "BuyNow",
	}
}

// GenMeta is the provenance record a generator embeds in the trace
// header — the spec echo plus the emitted totals the conformance suite
// checks conservation against.
type GenMeta struct {
	Kind       string  `json:"kind"`
	Rate       float64 `json:"rate"`
	DurationNs int64   `json:"duration_ns"`
	Seed       int64   `json:"seed"`
	Reqs       int     `json:"reqs"`
	Sessions   int     `json:"sessions"`
}

// ParseGenMeta decodes a generated trace's meta blob; ok is false for
// traces without one (recordings, hand-built traces).
func ParseGenMeta(meta []byte) (GenMeta, bool) {
	var m GenMeta
	if len(meta) == 0 || json.Unmarshal(meta, &m) != nil || m.Kind == "" {
		return GenMeta{}, false
	}
	return m, true
}

// Generate synthesizes a trace from the spec. The result is a pure
// function of the spec: equal specs (and seeds) produce byte-identical
// encodings. All randomness flows through sim.Rand substreams forked
// from the spec seed.
func Generate(spec GenSpec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.applyDefaults()
	root := sim.NewRand(spec.Seed)
	arrivals := root.Fork()
	classes := root.Fork()
	sessions := root.Fork()
	sizes := root.Fork()

	var reqs []Req
	switch spec.Kind {
	case FlashCrowd:
		reqs = genFlashCrowd(spec, arrivals, classes, sessions)
	case Diurnal:
		reqs = genDiurnal(spec, arrivals, classes, sessions)
	case HeavyTail:
		reqs = genHeavyTail(spec, arrivals, classes, sessions)
	case MLServing:
		reqs = genMLServing(spec, arrivals, classes, sizes)
	case KVTier:
		reqs = genKVTier(spec, arrivals, classes, sessions, sizes)
	}

	tr := &Trace{Version: Version, Seed: spec.Seed, Reqs: reqs}
	meta := GenMeta{
		Kind:       string(spec.Kind),
		Rate:       spec.Rate,
		DurationNs: int64(spec.Duration),
		Seed:       spec.Seed,
		Reqs:       len(reqs),
		Sessions:   tr.Info().Sessions,
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding generator meta: %w", err)
	}
	tr.Meta = blob
	return tr, nil
}

// poissonArrivals draws a (possibly nonhomogeneous) Poisson arrival
// process on [0, dur) by thinning against the peak rate: candidate
// arrivals come at exponential interarrivals of 1/peak and survive with
// probability lambda(t)/peak.
func poissonArrivals(rng *sim.Rand, dur sim.Time, peak float64, lambda func(t sim.Time) float64) []sim.Time {
	if peak <= 0 {
		return nil
	}
	var out []sim.Time
	mean := sim.Time(float64(sim.Second) / peak)
	for t := rng.ExpTime(mean); t < dur; t += rng.ExpTime(mean) {
		if rng.Float64()*peak < lambda(t) {
			out = append(out, t)
		}
	}
	return out
}

// sessionPool models session churn for open-loop generators: most
// arrivals continue a recently active session, a fraction open a new one.
// The pool is bounded so session ids keep cycling instead of pinning the
// whole trace onto the first few.
type sessionPool struct {
	rng    *sim.Rand
	pNew   float64
	cap    int
	next   int64
	active []int64
}

func newSessionPool(rng *sim.Rand, pNew float64, capacity int) *sessionPool {
	return &sessionPool{rng: rng, pNew: pNew, cap: capacity}
}

func (p *sessionPool) pick() int64 {
	if len(p.active) == 0 || p.rng.Bool(p.pNew) {
		id := p.next
		p.next++
		p.active = append(p.active, id)
		if len(p.active) > p.cap {
			p.active = p.active[1:]
		}
		return id
	}
	return p.active[p.rng.Intn(len(p.active))]
}

func genFlashCrowd(spec GenSpec, arrivals, classes, sessions *sim.Rand) []Req {
	spikeEnd := spec.SpikeStart + spec.SpikeLen
	inSpike := func(t sim.Time) bool { return t >= spec.SpikeStart && t < spikeEnd }
	peak := spec.Rate * math.Max(1, spec.SpikeFactor)
	times := poissonArrivals(arrivals, spec.Duration, peak, func(t sim.Time) float64 {
		if inSpike(t) {
			return spec.Rate * spec.SpikeFactor
		}
		return spec.Rate
	})
	pool := newSessionPool(sessions, 0.15, 64)
	names := FlashCrowd.Classes() // browse, search, view, bid, sell
	calm := []float64{4, 2, 2, 0.5, 0.25}
	// The crowd converges on one hot item: views and bids dominate.
	hot := []float64{1, 0.5, 5, 3, 0.1}
	reqs := make([]Req, 0, len(times))
	for _, t := range times {
		w := calm
		if inSpike(t) {
			w = hot
		}
		reqs = append(reqs, Req{T: t, Class: names[classes.Choice(w)], Session: pool.pick()})
	}
	return reqs
}

func genDiurnal(spec GenSpec, arrivals, classes, sessions *sim.Rand) []Req {
	day := float64(spec.Period)
	lambda := func(t sim.Time) float64 {
		phase := 0.5 * (1 - math.Cos(2*math.Pi*float64(t)/day))
		return spec.Rate * (spec.NightFloor + (1-spec.NightFloor)*phase)
	}
	times := poissonArrivals(arrivals, spec.Duration, spec.Rate, lambda)
	pool := newSessionPool(sessions, 0.2, 128)
	names := Diurnal.Classes() // browse, search, view, bid, sell, register
	weights := []float64{3, 2, 2, 1, 0.3, 0.1}
	reqs := make([]Req, 0, len(times))
	for _, t := range times {
		reqs = append(reqs, Req{T: t, Class: names[classes.Choice(weights)], Session: pool.pick()})
	}
	return reqs
}

func genHeavyTail(spec GenSpec, arrivals, classes, sessions *sim.Rand) []Req {
	// Mean session length of a Pareto(min, alpha) is alpha*min/(alpha-1)
	// for alpha > 1; at or below 1 the mean diverges, so the session
	// arrival rate is pinned against a pragmatic 4x-min stand-in.
	meanLen := spec.SessionMin * 4
	if spec.Alpha > 1 {
		meanLen = spec.Alpha * spec.SessionMin / (spec.Alpha - 1)
	}
	sessionRate := spec.Rate / meanLen
	starts := poissonArrivals(arrivals, spec.Duration, sessionRate, func(sim.Time) float64 { return sessionRate })
	names := HeavyTail.Classes() // browse, search, view, bid
	weights := []float64{3, 1.5, 2, 1}
	var reqs []Req
	for id, t0 := range starts {
		// Cap the tail so one 10^4-request session cannot dwarf the trace.
		length := int(sessions.Pareto(spec.SessionMin, spec.Alpha))
		if length > 2000 {
			length = 2000
		}
		t := t0
		for i := 0; i < length && t < spec.Duration; i++ {
			reqs = append(reqs, Req{T: t, Class: names[classes.Choice(weights)], Session: int64(id)})
			t += sessions.ExpTime(spec.Think)
		}
	}
	// Sessions overlap, so the per-session streams are merged into one
	// nondecreasing arrival order; the (T, Session) sort is total for
	// distinct sessions and stable within one, so the result is
	// deterministic.
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].T != reqs[j].T {
			return reqs[i].T < reqs[j].T
		}
		return reqs[i].Session < reqs[j].Session
	})
	return reqs
}

func genMLServing(spec GenSpec, arrivals, classes, sizes *sim.Rand) []Req {
	batchRate := spec.Rate / float64(spec.Batch)
	starts := poissonArrivals(arrivals, spec.Duration, batchRate, func(sim.Time) float64 { return batchRate })
	var reqs []Req
	session := int64(0)
	for _, t := range starts {
		// One batch = one session: requests that arrived together on the
		// accelerator queue.
		for i := 0; i < spec.Batch; i++ {
			class, size := "infer-light", int64(256+sizes.Intn(256))
			if classes.Bool(spec.HeavyFraction) {
				class, size = "infer-heavy", int64(2048+sizes.Intn(2048))
			}
			reqs = append(reqs, Req{T: t, Class: class, Session: session, Size: size})
		}
		session++
	}
	// Model updates arrive on a fixed cadence, each its own session.
	for t := spec.UpdatePeriod; t < spec.Duration; t += spec.UpdatePeriod {
		reqs = append(reqs, Req{T: t, Class: "model-update", Session: session, Size: 64 << 10})
		session++
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].T != reqs[j].T {
			return reqs[i].T < reqs[j].T
		}
		return reqs[i].Session < reqs[j].Session
	})
	return reqs
}

func genKVTier(spec GenSpec, arrivals, classes, sessions, sizes *sim.Rand) []Req {
	times := poissonArrivals(arrivals, spec.Duration, spec.Rate, func(sim.Time) float64 { return spec.Rate })
	const connections = 16 // fixed client connection pool
	reqs := make([]Req, 0, len(times))
	for _, t := range times {
		r := Req{T: t, Session: int64(sessions.Intn(connections))}
		switch u := classes.Float64(); {
		case u < spec.ReadFraction:
			r.Class, r.Size = "kv-get", 64
		case u < spec.ReadFraction+spec.ScanFraction:
			r.Class, r.Size = "kv-scan", 96
		default:
			r.Class = "kv-set"
			if v := int64(128 + sizes.Pareto(64, 1.3)); v < 16<<10 {
				r.Size = v
			} else {
				r.Size = 16 << 10
			}
		}
		reqs = append(reqs, r)
	}
	return reqs
}
