package scenario

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// randomSpec draws an arbitrary-but-valid spec for kind. The rand.Rand
// here drives only quick-check case selection (test-input generation),
// never the simulation: the generator under test sees nothing but the
// spec, and determinism for a fixed spec is exactly what the properties
// assert.
func randomSpec(kind Kind, r *rand.Rand) GenSpec {
	return GenSpec{
		Kind:     kind,
		Duration: sim.Time(1+r.Intn(12)) * sim.Second,
		Rate:     5 + r.Float64()*120,
		Seed:     1 + r.Int63n(1<<40),
	}
}

// TestGeneratorProperties quick-checks every generator family:
//
//  1. arrival times are nondecreasing (the format's ordering invariant),
//  2. request and session counts are conserved against the GenMeta the
//     generator itself declared in the trace header,
//  3. every emitted class is in the family's declared vocabulary and is
//     covered by DefaultClassMap,
//  4. equal specs yield byte-identical encodings,
//  5. the encoding round-trips through Decode.
func TestGeneratorProperties(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			classMap := DefaultClassMap()
			vocab := make(map[string]bool)
			for _, c := range kind.Classes() {
				vocab[c] = true
				if classMap[c] == "" {
					t.Fatalf("class %q has no DefaultClassMap entry", c)
				}
			}
			property := func(spec GenSpec) bool {
				tr, err := Generate(spec)
				if err != nil {
					t.Logf("Generate(%+v): %v", spec, err)
					return false
				}
				if err := tr.Validate(); err != nil {
					t.Logf("invalid trace: %v", err)
					return false
				}
				var last sim.Time
				for i, r := range tr.Reqs {
					if r.T < last || r.T >= spec.Duration {
						t.Logf("req %d at %v breaks ordering/span (last %v, duration %v)", i, r.T, last, spec.Duration)
						return false
					}
					last = r.T
					if !vocab[r.Class] {
						t.Logf("req %d has class %q outside the %s vocabulary", i, r.Class, kind)
						return false
					}
				}
				meta, ok := ParseGenMeta(tr.Meta)
				if !ok {
					t.Logf("generated trace carries no GenMeta")
					return false
				}
				info := tr.Info()
				if meta.Reqs != info.Reqs || meta.Sessions != info.Sessions {
					t.Logf("meta declares %d reqs/%d sessions, trace holds %d/%d",
						meta.Reqs, meta.Sessions, info.Reqs, info.Sessions)
					return false
				}
				again, err := Generate(spec)
				if err != nil {
					return false
				}
				var a, b bytes.Buffer
				if tr.Encode(&a) != nil || again.Encode(&b) != nil {
					return false
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Logf("two generations from one spec encode differently")
					return false
				}
				dec, err := Decode(a.Bytes())
				if err != nil {
					t.Logf("generated trace does not decode: %v", err)
					return false
				}
				return len(dec.Reqs) == len(tr.Reqs)
			}
			cfg := &quick.Config{
				MaxCount: 12,
				Values: func(v []reflect.Value, r *rand.Rand) {
					v[0] = reflect.ValueOf(randomSpec(kind, r))
				},
			}
			if err := quick.Check(property, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGeneratorSeedsDiverge: different seeds must actually change the
// trace, or the "byte-identical for equal seeds" property is vacuous.
func TestGeneratorSeedsDiverge(t *testing.T) {
	for _, kind := range Kinds() {
		spec := GenSpec{Kind: kind, Duration: 5 * sim.Second, Rate: 50, Seed: 1}
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		spec.Seed = 2
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var ab, bb bytes.Buffer
		if a.Encode(&ab) != nil || b.Encode(&bb) != nil {
			t.Fatal("encode failed")
		}
		if bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", kind)
		}
	}
}

// TestGenSpecValidate pins the diagnosable-error contract on bad specs.
func TestGenSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec GenSpec
		want string
	}{
		{"unknown kind", GenSpec{Kind: "steady"}, "unknown generator kind"},
		{"no duration", GenSpec{Kind: FlashCrowd}, "positive duration"},
		{"negative rate", GenSpec{Kind: Diurnal, Duration: sim.Second, Rate: -1}, "negative rate"},
		{"bad night floor", GenSpec{Kind: Diurnal, Duration: sim.Second, NightFloor: 1.5}, "night floor"},
		{"negative alpha", GenSpec{Kind: HeavyTail, Duration: sim.Second, Alpha: -2}, "alpha"},
		{"bad heavy fraction", GenSpec{Kind: MLServing, Duration: sim.Second, HeavyFraction: 2}, "heavy fraction"},
		{"kv fractions", GenSpec{Kind: KVTier, Duration: sim.Second, ReadFraction: 0.9, ScanFraction: 0.3}, "kv fractions"},
	}
	for _, tc := range cases {
		_, err := Generate(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestFlashCrowdShape: the spike window must actually concentrate
// arrivals, or the generator does not model a flash crowd.
func TestFlashCrowdShape(t *testing.T) {
	spec := GenSpec{Kind: FlashCrowd, Duration: 30 * sim.Second, Rate: 20, Seed: 3}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.applyDefaults()
	var in, out int
	for _, r := range tr.Reqs {
		if r.T >= spec.SpikeStart && r.T < spec.SpikeStart+spec.SpikeLen {
			in++
		} else {
			out++
		}
	}
	inRate := float64(in) / spec.SpikeLen.Seconds()
	outRate := float64(out) / (spec.Duration - spec.SpikeLen).Seconds()
	if inRate < 3*outRate {
		t.Errorf("spike rate %.1f/s is not a crowd over the %.1f/s baseline", inRate, outRate)
	}
}

// TestHeavyTailShape: session lengths must be heavy-tailed — some
// session has to run an order of magnitude past the minimum.
func TestHeavyTailShape(t *testing.T) {
	tr, err := Generate(GenSpec{Kind: HeavyTail, Duration: 60 * sim.Second, Rate: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	perSession := make(map[int64]int)
	for _, r := range tr.Reqs {
		perSession[r.Session]++
	}
	max := 0
	for _, n := range perSession {
		if n > max {
			max = n
		}
	}
	if max < 30 {
		t.Errorf("longest session is %d requests; tail is not heavy", max)
	}
}
