// Package scenario supplies the workload side of the experiment harness:
// a compact binary trace format (.wtrace) describing an open-loop request
// arrival process, deterministic generators that synthesize traces for
// workload families the paper never measured (flash crowds, diurnal
// curves, heavy-tailed sessions, ML-inference serving, a memcached-style
// key-value tier), and the inspection helpers the reproscn CLI builds on.
//
// A trace is a flat, time-ordered list of requests — class name, arrival
// sim-time, session id, payload size — deliberately free of any RUBiS
// vocabulary: classes are strings mapped onto concrete request profiles
// at replay time (see rubis.ResolveTrace), so the same trace can drive
// different service catalogs. The encoding reuses the flight recorder's
// idioms (CRC32-framed segments, lazy string interning, varint time
// deltas; see docs/scenarios.md for the format specification), and the
// same conformance contract holds: Encode(Decode(x)) is byte-identical,
// and every generator is a pure function of its spec and seed.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Req is one trace request: the unit of the .wtrace format.
type Req struct {
	T       sim.Time // arrival sim-time; nondecreasing across the trace
	Class   string   // request class name (interned in the encoding)
	Session int64    // session/connection identifier (>= 0)
	Size    int64    // request payload bytes; 0 selects the class default
}

// Trace is a fully decoded workload trace.
type Trace struct {
	Version uint16
	Seed    int64  // the seed the trace was generated from (0 for recordings)
	Meta    []byte // opaque header blob (generators store GenMeta JSON here)
	Reqs    []Req  // arrival order
	Bytes   int    // encoded size the trace was decoded from (0 if built in memory)
}

// Span returns the time between the first and last arrival.
func (t *Trace) Span() sim.Time {
	if len(t.Reqs) == 0 {
		return 0
	}
	return t.Reqs[len(t.Reqs)-1].T - t.Reqs[0].T
}

// Validate reports the first structural error in the trace: out-of-order
// arrivals, negative sessions or sizes, or an empty class name. Encode
// performs the same checks, so a valid trace always encodes.
func (t *Trace) Validate() error {
	var last sim.Time
	for i, r := range t.Reqs {
		switch {
		case r.T < last:
			return fmt.Errorf("scenario: request %d arrives at %v, before request %d at %v", i, r.T, i-1, last)
		case r.Class == "":
			return fmt.Errorf("scenario: request %d has an empty class", i)
		case r.Session < 0:
			return fmt.Errorf("scenario: request %d has negative session %d", i, r.Session)
		case r.Size < 0:
			return fmt.Errorf("scenario: request %d has negative size %d", i, r.Size)
		}
		last = r.T
	}
	return nil
}

// ClassCount is one request class's tally.
type ClassCount struct {
	Class string
	Count int
}

// Info summarises a trace for inspection.
type Info struct {
	Version     uint16
	Seed        int64
	Meta        []byte
	Reqs        int
	Bytes       int
	BytesPerReq float64 // amortized over the whole file, header included
	First, Last sim.Time
	Sessions    int          // distinct session ids
	Classes     []ClassCount // sorted by class name
}

// Info computes per-class and session statistics.
func (t *Trace) Info() Info {
	info := Info{
		Version: t.Version,
		Seed:    t.Seed,
		Meta:    t.Meta,
		Reqs:    len(t.Reqs),
		Bytes:   t.Bytes,
	}
	if len(t.Reqs) > 0 {
		info.First = t.Reqs[0].T
		info.Last = t.Reqs[len(t.Reqs)-1].T
		if t.Bytes > 0 {
			info.BytesPerReq = float64(t.Bytes) / float64(len(t.Reqs))
		}
	}
	classes := make(map[string]int)
	sessions := make(map[int64]struct{})
	for _, r := range t.Reqs {
		classes[r.Class]++
		sessions[r.Session] = struct{}{}
	}
	info.Sessions = len(sessions)
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info.Classes = append(info.Classes, ClassCount{Class: name, Count: classes[name]})
	}
	return info
}
