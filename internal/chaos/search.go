package chaos

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Options shapes one chaos search.
type Options struct {
	// Seed drives the trial generator (default 1).
	Seed int64
	// Budget is the number of generated trials (default 16).
	Budget int
	// Workers sizes the sweep pool (default NumCPU); the outcome is
	// byte-identical for every worker count.
	Workers int
	// Gen shapes the sample space.
	Gen GenConfig
	// MaxFindings bounds how many violating trials are shrunk, in stable
	// trial order (default 3; the rest are still counted).
	MaxFindings int
	// MaxShrinkTrials caps the candidate runs per shrink (default 256).
	MaxShrinkTrials int
	// Cache, when non-nil, memoizes trial outcomes across searches.
	Cache *sweep.Cache
	// CacheVersion invalidates cached outcomes when the runner changes.
	CacheVersion string
	// Progress, when non-nil, observes sweep progress.
	Progress func(p sweep.Progress)
}

// Finding is one minimized violation.
type Finding struct {
	// Oracle is the invariant the trial broke (the first violation when a
	// trial breaks several; the others are listed in Detail).
	Oracle string `json:"oracle"`
	Detail string `json:"detail,omitempty"`
	// Spec is the original generated trial.
	Spec TrialSpec `json:"spec"`
	// Minimized is the shrunk repro: strictly no larger than Spec, still
	// violating Oracle.
	Minimized TrialSpec `json:"minimized"`
	// ShrinkSteps counts accepted removals; ShrinkTrials counts all
	// candidate runs the shrinker spent.
	ShrinkSteps  int `json:"shrink_steps"`
	ShrinkTrials int `json:"shrink_trials"`
}

// SearchResult is the outcome of one chaos search.
type SearchResult struct {
	Trials    int       `json:"trials"`
	Violating int       `json:"violating"`
	Findings  []Finding `json:"findings,omitempty"`
}

// Search samples Budget trials, runs them through the sweep engine, and
// greedily shrinks the first MaxFindings violating trials. The result is
// a pure function of (Options.Seed, Gen, Budget, runner): generation
// happens before the sweep, the sweep's trial order is stable regardless
// of Workers, and shrinking is sequential.
func Search(run Runner, opts Options) (*SearchResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 16
	}
	if opts.MaxFindings == 0 {
		opts.MaxFindings = 3
	}

	rng := sim.NewRand(opts.Seed)
	specs := make([]TrialSpec, opts.Budget)
	points := make([]sweep.Point, opts.Budget)
	for i := range specs {
		specs[i] = Generate(rng, opts.Gen, i)
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("chaos: generator produced invalid spec: %w", err)
		}
		points[i] = sweep.Point{Name: specs[i].Name, Config: specs[i]}
	}

	sres, err := sweep.Run(points, func(t sweep.Trial) (any, error) {
		return run(t.Point.Config.(TrialSpec))
	}, sweep.Options{
		Workers:      opts.Workers,
		Reps:         1,
		Seed:         opts.Seed,
		Cache:        opts.Cache,
		CacheVersion: opts.CacheVersion,
		Progress:     opts.Progress,
	})
	if err != nil {
		return nil, err
	}

	out := &SearchResult{Trials: len(sres.Trials)}
	for i := range sres.Trials {
		var res Result
		if err := sres.Decode(i, &res); err != nil {
			return nil, err
		}
		if len(res.Violations) == 0 {
			continue
		}
		out.Violating++
		if len(out.Findings) >= opts.MaxFindings {
			continue
		}
		f := Finding{
			Oracle: res.Violations[0].Oracle,
			Detail: res.Violations[0].Detail,
			Spec:   specs[i],
		}
		for _, v := range res.Violations[1:] {
			f.Detail += fmt.Sprintf("; also %s: %s", v.Oracle, v.Detail)
		}
		shr, err := Shrink(run, specs[i], f.Oracle, opts.MaxShrinkTrials)
		if err != nil {
			return nil, err
		}
		f.Minimized = shr.Spec
		f.ShrinkSteps = len(shr.Steps)
		f.ShrinkTrials = shr.Trials
		out.Findings = append(out.Findings, f)
	}
	return out, nil
}
