package chaos

// Shrinking is greedy delta debugging over the spec's ingredient list:
// every candidate removes exactly one ingredient (a rate zeroed, a window
// dropped, a shape knob reset), so each accepted step strictly reduces
// Size and the loop terminates in at most Size(spec) rounds. A candidate
// is accepted only if re-running it still violates the same oracle —
// soundness is by construction, and the accepted chain is returned so
// tests can re-verify every step independently.

// ShrinkResult is the outcome of minimizing one violating spec.
type ShrinkResult struct {
	// Spec is the minimized spec: no single ingredient can be removed
	// without losing the violation (within the trial budget).
	Spec TrialSpec
	// Steps is the accepted chain, in order; the last entry equals Spec.
	// Empty means the input was already minimal.
	Steps []TrialSpec
	// Trials is how many candidate runs the shrinker executed.
	Trials int
}

// candidates enumerates every one-ingredient-smaller spec, in a fixed
// deterministic order. Candidates that would be invalid (a controller
// window outliving its replicas) are never emitted.
func candidates(s TrialSpec) []TrialSpec {
	var out []TrialSpec
	emit := func(mut func(*TrialSpec)) {
		c := s.clone()
		mut(&c)
		out = append(out, c)
	}

	if s.Plan.LossRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.LossRate = 0 })
	}
	if s.Plan.DupRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.DupRate = 0 })
	}
	if s.Plan.ReorderRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.ReorderRate = 0 })
	}
	if s.Plan.SpikeRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.SpikeRate = 0 })
	}
	if s.Plan.BurstRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.BurstRate = 0 })
	}
	if s.Plan.CorruptRate > 0 {
		emit(func(c *TrialSpec) { c.Plan.CorruptRate = 0 })
	}
	if s.Plan.JitterMax > 0 {
		emit(func(c *TrialSpec) { c.Plan.JitterMax = 0 })
	}
	for i := range s.Plan.Partitions {
		i := i
		emit(func(c *TrialSpec) {
			c.Plan.Partitions = append(c.Plan.Partitions[:i], c.Plan.Partitions[i+1:]...)
		})
	}
	for i := range s.Plan.Corruptions {
		i := i
		emit(func(c *TrialSpec) {
			c.Plan.Corruptions = append(c.Plan.Corruptions[:i], c.Plan.Corruptions[i+1:]...)
		})
	}
	for i := range s.Plan.Crashes {
		i := i
		emit(func(c *TrialSpec) {
			c.Plan.Crashes = append(c.Plan.Crashes[:i], c.Plan.Crashes[i+1:]...)
		})
	}
	for i := range s.Plan.ControllerCrashes {
		i := i
		emit(func(c *TrialSpec) {
			c.Plan.ControllerCrashes = append(c.Plan.ControllerCrashes[:i], c.Plan.ControllerCrashes[i+1:]...)
		})
	}
	for i := range s.Plan.ControllerPartitions {
		i := i
		emit(func(c *TrialSpec) {
			c.Plan.ControllerPartitions = append(c.Plan.ControllerPartitions[:i], c.Plan.ControllerPartitions[i+1:]...)
		})
	}
	if s.Replicas > 0 && len(s.Plan.ControllerCrashes) == 0 && len(s.Plan.ControllerPartitions) == 0 {
		emit(func(c *TrialSpec) { c.Replicas = 0 })
	}
	if s.Overload {
		emit(func(c *TrialSpec) { c.Overload = false })
	}
	if s.Load > 0 {
		emit(func(c *TrialSpec) { c.Load = 0; c.Overload = false })
	}
	if s.Kind != "" {
		emit(func(c *TrialSpec) { c.Kind = "" })
	}
	return out
}

// Shrink minimizes a spec known to violate oracle. Each candidate is
// re-run; the first (in deterministic order) that still violates the same
// oracle is accepted and the round restarts from it. maxTrials caps the
// candidate runs (0 means 256); hitting the cap returns the best spec so
// far, which is still sound — every accepted step was re-verified.
func Shrink(run Runner, spec TrialSpec, oracle string, maxTrials int) (ShrinkResult, error) {
	if maxTrials <= 0 {
		maxTrials = 256
	}
	res := ShrinkResult{Spec: spec.clone()}
	for {
		accepted := false
		for _, cand := range candidates(res.Spec) {
			if res.Trials >= maxTrials {
				return res, nil
			}
			if cand.Size() >= res.Spec.Size() {
				continue // removal must strictly reduce complexity
			}
			res.Trials++
			out, err := run(cand)
			if err != nil {
				return res, err
			}
			if out.violates(oracle) {
				res.Spec = cand
				res.Steps = append(res.Steps, cand.clone())
				accepted = true
				break
			}
		}
		if !accepted {
			return res, nil
		}
	}
}
