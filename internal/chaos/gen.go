package chaos

import (
	"fmt"
	"math"

	"repro/internal/pcie"
	"repro/internal/sim"
)

// GenConfig shapes the generator's sample space. Zero values take the
// defaults noted on each field.
type GenConfig struct {
	// Duration is the run length windows are placed inside (default 16s).
	Duration sim.Time
	// WindowStart is the earliest window start (default Duration/5, so
	// schedules land after a typical warmup).
	WindowStart sim.Time
	// MaxWindows bounds the timed windows per plan (default 3).
	MaxWindows int
	// Islands are the crash-window targets (default ixp, x86).
	Islands []string
	// Channels are the named coordination channels partition and
	// corruption windows may cut (default the two mailbox directions).
	Channels []string
	// MaxReplicas bounds the controller replica count when a trial arms
	// failover (default 3; must be >= 2 to ever arm it).
	MaxReplicas int
	// Loads are the load factors sampled (default {0, 2.5}; 0 keeps the
	// calibrated baseline population).
	Loads []float64
	// Kinds are the workload families sampled (default "", flash-crowd,
	// heavy-tail; "" keeps the closed-loop client).
	Kinds []string
}

// normalized returns the config with defaults applied.
func (g GenConfig) normalized() GenConfig {
	if g.Duration <= 0 {
		g.Duration = 16 * sim.Second
	}
	if g.WindowStart <= 0 {
		g.WindowStart = g.Duration / 5
	}
	if g.MaxWindows == 0 {
		g.MaxWindows = 3
	}
	if len(g.Islands) == 0 {
		g.Islands = []string{"ixp", "x86"}
	}
	if len(g.Channels) == 0 {
		g.Channels = []string{pcie.MailboxToHost, pcie.MailboxToDevice}
	}
	if g.MaxReplicas == 0 {
		g.MaxReplicas = 3
	}
	if len(g.Loads) == 0 {
		g.Loads = []float64{0, 2.5}
	}
	if len(g.Kinds) == 0 {
		g.Kinds = []string{"", "flash-crowd", "heavy-tail"}
	}
	return g
}

// quantRate rounds a rate to 3 decimals (stable JSON, readable repros)
// keeping it inside (0, 1).
func quantRate(x float64) float64 {
	q := math.Round(x*1000) / 1000
	if q <= 0 {
		q = 0.001
	}
	if q >= 1 {
		q = 0.999
	}
	return q
}

// quantTime rounds a duration to 10ms ticks, keeping it positive.
func quantTime(t sim.Time) sim.Time {
	const tick = 10 * sim.Millisecond
	q := (t / tick) * tick
	if q <= 0 {
		q = tick
	}
	return q
}

// Generate samples the i'th trial spec from rng. Every spec passes
// Validate by construction: windows are placed sequentially on a single
// time cursor (globally disjoint intervals are disjoint per key too), and
// controller windows are only emitted when the trial arms enough
// replicas. The draw order is fixed, so a (seed, i) pair always yields
// the same spec.
func Generate(rng *sim.Rand, cfg GenConfig, i int) TrialSpec {
	cfg = cfg.normalized()
	spec := TrialSpec{
		Name: fmt.Sprintf("trial-%04d", i),
		Seed: int64(rng.Uint64()&0x7fffffff) + 1,
	}
	spec.Plan.Seed = int64(rng.Uint64()&0x7fffffff) + 1

	// Stochastic per-message processes, each armed independently.
	if rng.Bool(0.35) {
		spec.Plan.LossRate = quantRate(rng.Uniform(0.01, 0.25))
	}
	if rng.Bool(0.25) {
		spec.Plan.DupRate = quantRate(rng.Uniform(0.01, 0.15))
	}
	if rng.Bool(0.25) {
		spec.Plan.ReorderRate = quantRate(rng.Uniform(0.01, 0.15))
	}
	if rng.Bool(0.25) {
		spec.Plan.SpikeRate = quantRate(rng.Uniform(0.01, 0.2))
	}
	if rng.Bool(0.2) {
		spec.Plan.BurstRate = quantRate(rng.Uniform(0.002, 0.03))
	}
	if rng.Bool(0.35) {
		spec.Plan.CorruptRate = quantRate(rng.Uniform(0.01, 0.2))
	}
	if rng.Bool(0.2) {
		spec.Plan.JitterMax = quantTime(sim.Time(rng.Uniform(float64(100*sim.Microsecond), float64(2*sim.Millisecond))))
	}

	// Run shape.
	spec.Load = cfg.Loads[rng.Intn(len(cfg.Loads))]
	spec.Overload = spec.Load > 1
	spec.Kind = cfg.Kinds[rng.Intn(len(cfg.Kinds))]
	if cfg.MaxReplicas >= 2 && rng.Bool(0.3) {
		spec.Replicas = 2 + rng.Intn(cfg.MaxReplicas-1)
	}

	// Timed windows, placed sequentially on one cursor so every pair is
	// disjoint no matter which key it lands on.
	nWin := rng.Intn(cfg.MaxWindows + 1)
	cursor := cfg.WindowStart
	minWin := 200 * sim.Millisecond
	for w := 0; w < nWin; w++ {
		remaining := cfg.Duration - cursor
		if remaining < 2*minWin {
			break
		}
		gap := quantTime(sim.Time(rng.Float64() * 0.15 * float64(remaining)))
		dur := quantTime(minWin + sim.Time(rng.Float64()*0.25*float64(remaining)))
		start := cursor + gap
		if start+dur > cfg.Duration {
			dur = quantTime(cfg.Duration - start)
			if dur < minWin {
				break
			}
		}
		cursor = start + dur

		kinds := 3 // partition, corruption, island crash
		if spec.Replicas >= 2 {
			kinds = 5 // + controller crash, controller partition
		}
		switch rng.Intn(kinds) {
		case 0:
			spec.Plan.Partitions = append(spec.Plan.Partitions, pcie.Partition{
				Start:    start,
				Duration: dur,
				Channels: genChannels(rng, cfg.Channels),
			})
		case 1:
			spec.Plan.Corruptions = append(spec.Plan.Corruptions, pcie.CorruptWindow{
				Start:    start,
				Duration: dur,
				Rate:     quantRate(rng.Uniform(0.2, 1.0)),
				Channels: genChannels(rng, cfg.Channels),
			})
		case 2:
			spec.Plan.Crashes = append(spec.Plan.Crashes, pcie.CrashWindow{
				Island:   cfg.Islands[rng.Intn(len(cfg.Islands))],
				Start:    start,
				Duration: dur,
			})
		case 3:
			spec.Plan.ControllerCrashes = append(spec.Plan.ControllerCrashes, pcie.ReplicaWindow{
				Replica:  rng.Intn(spec.Replicas),
				Start:    start,
				Duration: dur,
			})
		case 4:
			spec.Plan.ControllerPartitions = append(spec.Plan.ControllerPartitions, pcie.ReplicaWindow{
				Replica:  rng.Intn(spec.Replicas),
				Start:    start,
				Duration: dur,
			})
		}
	}
	return spec
}

// genChannels picks a partition/corruption channel set: every channel
// (nil) or one named channel.
func genChannels(rng *sim.Rand, channels []string) []string {
	k := rng.Intn(len(channels) + 1)
	if k == len(channels) {
		return nil
	}
	return []string{channels[k]}
}
