package chaos

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestGenerateValid pins that every generated spec passes both the plan
// validation and the shared window-overlap rules by construction.
func TestGenerateValid(t *testing.T) {
	rng := sim.NewRand(7)
	for i := 0; i < 500; i++ {
		spec := Generate(rng, GenConfig{}, i)
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v\n%+v", i, err, spec)
		}
		for _, w := range spec.Plan.ControllerCrashes {
			if spec.Replicas <= w.Replica {
				t.Fatalf("spec %d crashes replica %d with only %d replicas", i, w.Replica, spec.Replicas)
			}
		}
	}
}

// TestGenerateDeterministic pins that (seed, index) fully determines the
// spec.
func TestGenerateDeterministic(t *testing.T) {
	a := sim.NewRand(42)
	b := sim.NewRand(42)
	for i := 0; i < 50; i++ {
		sa := Generate(a, GenConfig{}, i)
		sb := Generate(b, GenConfig{}, i)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("spec %d differs across identical rngs:\n%+v\n%+v", i, sa, sb)
		}
	}
}

// syntheticRunner violates "loss-and-partition" when both LossRate and a
// partition window are armed, and "corrupt" when CorruptRate is armed —
// a fast deterministic stand-in for the real RUBiS runner.
func syntheticRunner(spec TrialSpec) (Result, error) {
	var res Result
	if spec.Plan.LossRate > 0 && len(spec.Plan.Partitions) > 0 {
		res.Violations = append(res.Violations, Violation{Oracle: "loss-and-partition"})
	}
	if spec.Plan.CorruptRate > 0 {
		res.Violations = append(res.Violations, Violation{Oracle: "corrupt"})
	}
	return res, nil
}

// TestShrinkMinimal pins that a hand-planted violating spec shrinks to a
// strictly smaller minimal repro still violating the same oracle.
func TestShrinkMinimal(t *testing.T) {
	rng := sim.NewRand(3)
	var spec TrialSpec
	for i := 0; ; i++ {
		spec = Generate(rng, GenConfig{}, i)
		if r, _ := syntheticRunner(spec); r.violates("loss-and-partition") && spec.Size() > 2 {
			break
		}
	}
	shr, err := Shrink(syntheticRunner, spec, "loss-and-partition", 0)
	if err != nil {
		t.Fatal(err)
	}
	if shr.Spec.Size() >= spec.Size() {
		t.Fatalf("shrink did not reduce: %d -> %d", spec.Size(), shr.Spec.Size())
	}
	if r, _ := syntheticRunner(shr.Spec); !r.violates("loss-and-partition") {
		t.Fatalf("minimized spec no longer violates: %+v", shr.Spec)
	}
	// The synthetic oracle needs exactly loss + one partition: the
	// greedy shrinker must find that 2-ingredient minimum.
	if got := shr.Spec.Size(); got != 2 {
		t.Fatalf("minimized size = %d, want 2: %+v", got, shr.Spec)
	}
	if shr.Spec.Plan.LossRate == 0 || len(shr.Spec.Plan.Partitions) != 1 {
		t.Fatalf("unexpected minimum: %+v", shr.Spec)
	}
}

// TestShrinkSound is the soundness property: every accepted shrink step's
// output still violates the oracle its input violated, and sizes strictly
// decrease along the chain.
func TestShrinkSound(t *testing.T) {
	rng := sim.NewRand(11)
	idx := 0
	prop := func() bool {
		spec := Generate(rng, GenConfig{}, idx)
		idx++
		r, _ := syntheticRunner(spec)
		if len(r.Violations) == 0 {
			return true // vacuous draw; the generator arms faults often enough
		}
		oracle := r.Violations[0].Oracle
		shr, err := Shrink(syntheticRunner, spec, oracle, 0)
		if err != nil {
			t.Fatal(err)
		}
		prevSize := spec.Size()
		for _, step := range shr.Steps {
			sr, _ := syntheticRunner(step)
			if !sr.violates(oracle) {
				t.Errorf("accepted step lost the %q violation: %+v", oracle, step)
				return false
			}
			if step.Size() >= prevSize {
				t.Errorf("step size %d did not decrease from %d", step.Size(), prevSize)
				return false
			}
			prevSize = step.Size()
		}
		// And the result is locally minimal: no candidate still violates.
		for _, cand := range candidates(shr.Spec) {
			if cand.Size() >= shr.Spec.Size() {
				continue
			}
			if cr, _ := syntheticRunner(cand); cr.violates(oracle) {
				t.Errorf("result not minimal: candidate %+v still violates %q", cand, oracle)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDeterministicAcrossWorkers pins the headline determinism
// claim: the same seed and budget yield byte-identical results for any
// sweep worker count.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		res, err := Search(syntheticRunner, Options{Seed: 5, Budget: 40, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if string(one) != string(eight) {
		t.Fatalf("search result differs across worker counts:\n%s\n%s", one, eight)
	}
	var res SearchResult
	if err := json.Unmarshal(one, &res); err != nil {
		t.Fatal(err)
	}
	if res.Violating == 0 || len(res.Findings) == 0 {
		t.Fatalf("vacuous search: %+v", res)
	}
	for _, f := range res.Findings {
		if f.Minimized.Size() > f.Spec.Size() {
			t.Fatalf("finding grew during shrink: %+v", f)
		}
	}
}

// TestTrialSpecJSONRoundTrip pins the interchange format the sweep cache
// and the repro corpus depend on.
func TestTrialSpecJSONRoundTrip(t *testing.T) {
	rng := sim.NewRand(9)
	for i := 0; i < 50; i++ {
		spec := Generate(rng, GenConfig{}, i)
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back TrialSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round trip changed spec:\n%+v\n%+v", spec, back)
		}
	}
}
