package chaos

import (
	"testing"

	"repro/internal/sim"
)

// FuzzFaultPlanGen pins that the generator only ever produces plans
// passing FaultPlan validation *including* the window-overlap rules the
// scenario DSL shares — for any seed, index, and window budget.
func FuzzFaultPlanGen(f *testing.F) {
	f.Add(int64(1), 0, 3)
	f.Add(int64(42), 7, 1)
	f.Add(int64(-9), 99, 6)
	f.Fuzz(func(t *testing.T, seed int64, idx, maxWindows int) {
		if idx < 0 || idx > 1000 {
			return
		}
		if maxWindows < 0 || maxWindows > 16 {
			return
		}
		rng := sim.NewRand(seed)
		cfg := GenConfig{MaxWindows: maxWindows}
		spec := Generate(rng, cfg, idx)
		if err := spec.Plan.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v\n%+v", err, spec.Plan)
		}
		if err := spec.Plan.ValidateDisjoint(); err != nil {
			t.Fatalf("generated plan has overlapping windows: %v\n%+v", err, spec.Plan)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v\n%+v", err, spec)
		}
	})
}
