// Package chaos implements property-guided fault-plan exploration: a
// seeded generator samples random fault plans crossed with load levels and
// workload kinds, every trial is run through the deterministic sweep
// engine, and each outcome is judged by a library of invariant oracles.
// When a trial violates an oracle, a delta-debugging shrinker minimizes
// the trial — each shrink step is re-run and kept only if the same
// violation persists — so the engine emits the smallest reproduction it
// can find, not the random monster it stumbled on.
//
// The package is deliberately generic: it knows how to generate, search,
// and shrink TrialSpecs, but not how to run one. The caller supplies a
// Runner that executes a spec and reports which oracles it violated; the
// root repro package wires the runner to real RUBiS runs and the
// CheckInvariants oracle catalog. This keeps the engine free of an import
// cycle and testable with fast synthetic runners.
package chaos

import (
	"fmt"

	"repro/internal/pcie"
)

// TrialSpec is one point in the chaos search space: a fault plan plus the
// run shape it is applied to. Specs are plain data — they marshal to JSON
// (the sweep cache key and the repro interchange format) and are a pure
// function of the generator seed.
type TrialSpec struct {
	// Name identifies the trial inside one search ("trial-0007").
	Name string `json:"name"`

	// Seed drives the trial's workload (the fault schedule has its own
	// seed inside Plan, so faults and load vary independently).
	Seed int64 `json:"seed"`

	// Plan is the fault schedule under test.
	Plan pcie.FaultPlan `json:"plan"`

	// Load scales the offered load (0 = the calibrated baseline; values
	// above 1 drive the deployment toward saturation).
	Load float64 `json:"load,omitempty"`

	// Kind selects the workload family ("" = closed-loop sessions).
	Kind string `json:"kind,omitempty"`

	// Overload arms the overload-control plane for the trial.
	Overload bool `json:"overload,omitempty"`

	// Replicas is the controller replica count (0 or 1 = single
	// controller). Any controller fault window in Plan requires
	// Replicas > the replica index it names.
	Replicas int `json:"replicas,omitempty"`
}

// Size is the spec's structural complexity: the number of independent
// fault ingredients it arms. The shrinker only accepts candidates with
// strictly smaller Size, which guarantees termination and makes "minimal
// repro" well-defined (no ingredient can be removed without losing the
// violation).
func (s TrialSpec) Size() int {
	n := 0
	p := s.Plan
	for _, r := range []float64{p.LossRate, p.DupRate, p.ReorderRate, p.SpikeRate, p.BurstRate, p.CorruptRate} {
		if r > 0 {
			n++
		}
	}
	if p.JitterMax > 0 {
		n++
	}
	n += len(p.Partitions) + len(p.Corruptions) + len(p.Crashes)
	n += len(p.ControllerCrashes) + len(p.ControllerPartitions)
	if s.Overload {
		n++
	}
	if s.Load > 0 {
		n++
	}
	if s.Kind != "" {
		n++
	}
	if s.Replicas > 0 {
		n++
	}
	return n
}

// clone deep-copies the spec so shrink candidates never alias each
// other's window slices.
func (s TrialSpec) clone() TrialSpec {
	c := s
	c.Plan.Partitions = append([]pcie.Partition(nil), s.Plan.Partitions...)
	c.Plan.Corruptions = append([]pcie.CorruptWindow(nil), s.Plan.Corruptions...)
	c.Plan.Crashes = append([]pcie.CrashWindow(nil), s.Plan.Crashes...)
	c.Plan.ControllerCrashes = append([]pcie.ReplicaWindow(nil), s.Plan.ControllerCrashes...)
	c.Plan.ControllerPartitions = append([]pcie.ReplicaWindow(nil), s.Plan.ControllerPartitions...)
	return c
}

// Validate reports the first configuration error in the spec, including
// the shared window-overlap rules.
func (s TrialSpec) Validate() error {
	if err := s.Plan.Validate(); err != nil {
		return err
	}
	if err := s.Plan.ValidateDisjoint(); err != nil {
		return err
	}
	if s.Load < 0 {
		return fmt.Errorf("chaos: trial %q has negative load %g", s.Name, s.Load)
	}
	if s.Replicas < 0 {
		return fmt.Errorf("chaos: trial %q has negative replica count %d", s.Name, s.Replicas)
	}
	max := -1
	for _, w := range s.Plan.ControllerCrashes {
		if w.Replica > max {
			max = w.Replica
		}
	}
	for _, w := range s.Plan.ControllerPartitions {
		if w.Replica > max {
			max = w.Replica
		}
	}
	if max >= 0 && s.Replicas <= max {
		return fmt.Errorf("chaos: trial %q faults controller replica %d but arms only %d replicas", s.Name, max, s.Replicas)
	}
	return nil
}

// Violation is one oracle the trial broke.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail,omitempty"`
}

// Result is a runner's judgment of one trial.
type Result struct {
	Violations []Violation `json:"violations,omitempty"`
}

// violates reports whether the result broke the named oracle.
func (r Result) violates(oracle string) bool {
	for _, v := range r.Violations {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// Runner executes one trial and reports which oracles it violated. It
// must be deterministic in the spec (the search engine byte-compares
// outcomes across worker counts) and safe for concurrent use.
type Runner func(spec TrialSpec) (Result, error)
