package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/sim"
)

// Log is a fully decoded flight log.
type Log struct {
	Version uint16
	Seed    int64
	Meta    []byte  // opaque header blob (the facade stores run config JSON here)
	Events  []Event // global emission order
	Bytes   int     // encoded size the log was decoded from
}

// decodeError builds a diagnosable decode failure at a byte offset.
func decodeError(off int, format string, args ...interface{}) error {
	return fmt.Errorf("flight: decode at byte %d: %s", off, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over the encoded bytes. Every length it
// reads is validated against the remaining input before any allocation, so
// a corrupt length field can never force an allocation proportional to its
// claimed (rather than actual) size.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, decodeError(r.off, "unexpected end of input")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, decodeError(r.off, "need %d bytes, have %d", n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, decodeError(r.off, "bad uvarint")
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, decodeError(r.off, "bad varint")
	}
	r.off += n
	return v, nil
}

// Decode parses a complete flight log. It never panics on corrupt input:
// truncation, a bad CRC, an unknown version, or any malformed field returns
// a diagnosable error (alongside nothing — partial decodes are not
// returned, because a replay against a silently shortened log would report
// a bogus divergence).
func Decode(data []byte) (*Log, error) {
	r := &reader{data: data}
	mag, err := r.take(len(magic))
	if err != nil {
		return nil, err
	}
	if string(mag) != magic {
		return nil, decodeError(0, "bad magic %q (want %q)", mag, magic)
	}
	fixed, err := r.take(headerFixedLen - len(magic))
	if err != nil {
		return nil, err
	}
	l := &Log{Bytes: len(data)}
	l.Version = binary.LittleEndian.Uint16(fixed[0:2])
	if l.Version != Version {
		return nil, fmt.Errorf("flight: unsupported log version %d (this build reads version %d)", l.Version, Version)
	}
	if flags := binary.LittleEndian.Uint16(fixed[2:4]); flags != 0 {
		return nil, fmt.Errorf("flight: unknown header flags %#x", flags)
	}
	l.Seed = int64(binary.LittleEndian.Uint64(fixed[4:12]))
	metaLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if metaLen > uint64(r.remaining()) {
		return nil, decodeError(r.off, "meta length %d exceeds remaining %d bytes", metaLen, r.remaining())
	}
	meta, err := r.take(int(metaLen))
	if err != nil {
		return nil, err
	}
	l.Meta = append([]byte(nil), meta...)

	st := decState{intern: nil}
	for {
		marker, err := r.byte()
		if err != nil {
			return nil, fmt.Errorf("flight: truncated log: missing end-of-log trailer: %w", err)
		}
		switch marker {
		case segMarker:
			if err := st.decodeSegment(r, l); err != nil {
				return nil, err
			}
		case endMarker:
			total, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if total != uint64(len(l.Events)) {
				return nil, decodeError(r.off, "trailer declares %d events, decoded %d", total, len(l.Events))
			}
			if r.remaining() != 0 {
				return nil, decodeError(r.off, "%d trailing bytes after end-of-log marker", r.remaining())
			}
			return l, nil
		default:
			return nil, decodeError(r.off-1, "unknown frame marker %#x", marker)
		}
	}
}

// decState mirrors encState on the decoding side.
type decState struct {
	intern []string
	lastT  [NumCategories]sim.Time
}

// decodeSegment verifies one segment's frame and decodes its payload into
// l.Events.
func (st *decState) decodeSegment(r *reader, l *Log) error {
	segOff := r.off - 1
	payloadLen, err := r.uvarint()
	if err != nil {
		return err
	}
	crcBytes, err := r.take(4)
	if err != nil {
		return err
	}
	wantCRC := binary.LittleEndian.Uint32(crcBytes)
	if payloadLen > uint64(r.remaining()) {
		return decodeError(r.off, "segment payload length %d exceeds remaining %d bytes (truncated?)", payloadLen, r.remaining())
	}
	payload, err := r.take(int(payloadLen))
	if err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return decodeError(segOff, "segment CRC mismatch: computed %#08x, stored %#08x", got, wantCRC)
	}

	p := &reader{data: payload}
	count, err := p.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(payload))/minEventBytes+1 {
		return decodeError(segOff, "segment declares %d events in a %d-byte payload", count, len(payload))
	}
	var decoded uint64
	for p.remaining() > 0 {
		op, err := p.byte()
		if err != nil {
			return err
		}
		switch op {
		case opIntern:
			strLen, err := p.uvarint()
			if err != nil {
				return err
			}
			if strLen > uint64(p.remaining()) {
				return decodeError(p.off, "interned string length %d exceeds remaining %d bytes", strLen, p.remaining())
			}
			s, err := p.take(int(strLen))
			if err != nil {
				return err
			}
			st.intern = append(st.intern, string(s))
		case opEvent:
			ev, err := st.decodeEvent(p)
			if err != nil {
				return err
			}
			l.Events = append(l.Events, ev)
			decoded++
		default:
			return decodeError(p.off-1, "unknown payload op %#x", op)
		}
	}
	if decoded != count {
		return decodeError(segOff, "segment declares %d events, holds %d", count, decoded)
	}
	return nil
}

// decodeEvent decodes one opEvent record body.
func (st *decState) decodeEvent(p *reader) (Event, error) {
	var ev Event
	cat, err := p.byte()
	if err != nil {
		return ev, err
	}
	if int(cat) >= NumCategories {
		return ev, decodeError(p.off-1, "unknown event category %d", cat)
	}
	ev.Cat = Category(cat)
	if ev.Code, err = p.byte(); err != nil {
		return ev, err
	}
	dt, err := p.uvarint()
	if err != nil {
		return ev, err
	}
	last := st.lastT[ev.Cat]
	if dt > uint64(math.MaxInt64-int64(last)) {
		return ev, decodeError(p.off, "timestamp delta %d overflows sim time", dt)
	}
	ev.T = last + sim.Time(dt)
	st.lastT[ev.Cat] = ev.T
	labelID, err := p.uvarint()
	if err != nil {
		return ev, err
	}
	if labelID >= uint64(len(st.intern)) {
		return ev, decodeError(p.off, "label ID %d beyond interning table of %d", labelID, len(st.intern))
	}
	ev.Label = st.intern[labelID]
	entity, err := p.varint()
	if err != nil {
		return ev, err
	}
	if entity < math.MinInt32 || entity > math.MaxInt32 {
		return ev, decodeError(p.off, "entity %d outside int32 range", entity)
	}
	ev.Entity = int32(entity)
	if ev.Arg, err = p.varint(); err != nil {
		return ev, err
	}
	return ev, nil
}

// CategoryCount is one category's event tally.
type CategoryCount struct {
	Category Category
	Count    int
}

// LabelCount is one label's (island, domain, queue, endpoint) event tally.
type LabelCount struct {
	Label string
	Count int
}

// Info summarises a decoded log for inspection.
type Info struct {
	Version       uint16
	Seed          int64
	Meta          []byte
	Events        int
	Bytes         int
	BytesPerEvent float64 // amortized over the whole file, header included
	First, Last   sim.Time
	Categories    []CategoryCount // declaration order, zero counts omitted
	Labels        []LabelCount    // sorted by label
}

// Info computes per-category and per-label statistics.
func (l *Log) Info() Info {
	info := Info{
		Version: l.Version,
		Seed:    l.Seed,
		Meta:    l.Meta,
		Events:  len(l.Events),
		Bytes:   l.Bytes,
	}
	if len(l.Events) > 0 {
		info.BytesPerEvent = float64(l.Bytes) / float64(len(l.Events))
		info.First = l.Events[0].T
		info.Last = l.Events[len(l.Events)-1].T
	}
	var cats [NumCategories]int
	labels := make(map[string]int)
	for _, ev := range l.Events {
		cats[ev.Cat]++
		labels[ev.Label]++
	}
	for c, n := range cats {
		if n > 0 {
			info.Categories = append(info.Categories, CategoryCount{Category: Category(c), Count: n})
		}
	}
	names := make([]string, 0, len(labels))
	for name := range labels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info.Labels = append(info.Labels, LabelCount{Label: name, Count: labels[name]})
	}
	return info
}
