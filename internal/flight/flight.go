// Package flight is the coordination plane's flight recorder: a compact,
// CRC-framed binary event log (a .flight file) capturing every decision the
// coordination and overload-control planes make during a run — Tune/Trigger
// sends and actuations, credit-weight changes and boosts, IXP shed/poll
// adjustments, admission verdicts, breaker transitions, and lease events.
//
// The recorder is passive: it observes through taps at the same sites as the
// structured trace (and with the same nil-pointer convention — a disabled
// recorder costs exactly one branch per event site), consumes no simulation
// randomness, and schedules no events, so an armed recorder never changes a
// run's simulated metrics. Because every run is a pure function of its
// configuration and seed, the log header carries both: a replayer can re-run
// the simulation and stream the live events against the log, turning
// "deterministic" from a test assertion into a checkable artifact — the
// first divergence is reported with its sim-time, category, and both
// payloads. See docs/flightrecorder.md for the format specification.
package flight

import (
	"fmt"

	"repro/internal/sim"
)

// Category classifies flight events. Each category forms its own
// varint-delta timestamp stream in the encoding (global record order is
// preserved; only the delta base is per-category).
type Category uint8

// Event categories.
const (
	CatSend     Category = iota // coordination message sent by an island agent
	CatApply                    // coordination message actuated by an island agent
	CatWeight                   // credit-scheduler weight change (xen Ctl)
	CatBoost                    // runqueue boost (Trigger actuation on x86)
	CatIXP                      // IXP-side adjustment: flow threads, poll interval, gate shed, shed rate
	CatAdmit                    // admission-queue verdict (served / shed / expired)
	CatBreaker                  // circuit-breaker state transition
	CatLease                    // lease transition or quarantine drop
	CatFailover                 // controller-replication event: checkpoint, crash, election, reconciliation
	CatEnergy                   // energy-plane event: DVFS commit, pool gating, governor decision
)

// NumCategories sizes per-category state arrays. Deliberately untyped so it
// is not itself an enum member.
const NumCategories = 10

// String names the category.
func (c Category) String() string {
	switch c {
	case CatSend:
		return "send"
	case CatApply:
		return "apply"
	case CatWeight:
		return "weight"
	case CatBoost:
		return "boost"
	case CatIXP:
		return "ixp"
	case CatAdmit:
		return "admit"
	case CatBreaker:
		return "breaker"
	case CatLease:
		return "lease"
	case CatFailover:
		return "failover"
	case CatEnergy:
		return "energy"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Sub-type codes for CatSend and CatApply events mirror core.Kind (the
// flight package cannot import core, which imports it; the rendering table
// below is kept in sync by TestKindNamesMatchCore).
const (
	KindTune      uint8 = 0
	KindTrigger   uint8 = 1
	KindRegister  uint8 = 2
	KindAck       uint8 = 3
	KindHeartbeat uint8 = 4
	KindShed      uint8 = 5
)

// kindName renders a CatSend/CatApply code.
func kindName(code uint8) string {
	switch code {
	case KindTune:
		return "tune"
	case KindTrigger:
		return "trigger"
	case KindRegister:
		return "register"
	case KindAck:
		return "ack"
	case KindHeartbeat:
		return "heartbeat"
	case KindShed:
		return "shed"
	default:
		return fmt.Sprintf("kind(%d)", code)
	}
}

// Sub-type codes for CatIXP events.
const (
	IXPThreads  uint8 = 0 // flow dequeue-thread allocation changed; Arg = new count
	IXPPoll     uint8 = 1 // flow poll interval changed; Arg = new interval (ns)
	IXPGateShed uint8 = 2 // early-admission gate shed a packet; Arg = packet ID
	IXPShedRate uint8 = 3 // per-class shedder rate adjusted; Arg = delta units

	// IXPClassifier: Rx classifier-thread pool resized; Entity = -1 (the
	// pool is shared, not per-flow), Arg = new pool size.
	IXPClassifier uint8 = 4
)

// Sub-type codes for CatAdmit events; Arg carries the overload.Class.
const (
	AdmitServed  uint8 = 0
	AdmitShed    uint8 = 1
	AdmitExpired uint8 = 2
)

// Sub-type codes for CatBreaker events mirror overload.BreakerState: Code
// is the state entered, Arg the state left.
const (
	BreakerClosed   uint8 = 0
	BreakerOpen     uint8 = 1
	BreakerHalfOpen uint8 = 2
)

// breakerName renders a breaker state code.
func breakerName(code uint8) string {
	switch code {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", code)
	}
}

// Sub-type codes for CatLease events.
const (
	LeaseSuspect    uint8 = 0 // island lease moved to suspect
	LeaseDead       uint8 = 1 // island lease expired
	LeaseRejoin     uint8 = 2 // dead island rejoined via heartbeat
	LeaseQuarantine uint8 = 3 // message dropped: target or home island quarantined
	LeaseFlap       uint8 = 4 // dead island rejoined inside the hysteresis window (suppressed rejoin)
)

// leaseName renders a lease code.
func leaseName(code uint8) string {
	switch code {
	case LeaseSuspect:
		return "suspect"
	case LeaseDead:
		return "dead"
	case LeaseRejoin:
		return "rejoin"
	case LeaseQuarantine:
		return "quarantine-drop"
	case LeaseFlap:
		return "flap-rejoin"
	default:
		return fmt.Sprintf("lease(%d)", code)
	}
}

// Sub-type codes for CatFailover events. Entity carries the replica ID
// (-1 when not replica-specific); Arg is code-specific.
const (
	FailCheckpoint uint8 = 0 // primary wrote a checkpoint; Arg = encoded bytes
	FailCrash      uint8 = 1 // replica crashed (volatile state lost)
	FailRestart    uint8 = 2 // crashed replica restarted from the durable store
	FailIsolate    uint8 = 3 // replica partitioned from agents and peers
	FailHeal       uint8 = 4 // replica's partition healed
	FailPromote    uint8 = 5 // standby promoted to primary; Arg = new term
	FailDemote     uint8 = 6 // superseded primary demoted on heal; Arg = current term
	FailReconcile  uint8 = 7 // anti-entropy epoch comparison; Label = island, Arg = view-agent delta
	FailStaleDrop  uint8 = 8 // stale in-flight decisions discarded; Label = island/endpoint, Arg = count
	FailNoPrimary  uint8 = 9 // coordination message dropped: no live primary; Arg = message kind
)

// failName renders a failover code.
func failName(code uint8) string {
	switch code {
	case FailCheckpoint:
		return "checkpoint"
	case FailCrash:
		return "crash"
	case FailRestart:
		return "restart"
	case FailIsolate:
		return "isolate"
	case FailHeal:
		return "heal"
	case FailPromote:
		return "promote"
	case FailDemote:
		return "demote"
	case FailReconcile:
		return "reconcile"
	case FailStaleDrop:
		return "stale-drop"
	case FailNoPrimary:
		return "no-primary-drop"
	default:
		return fmt.Sprintf("failover(%d)", code)
	}
}

// Sub-type codes for CatEnergy events.
const (
	// EnergyFreq: the x86 island committed a DVFS operating point; Label =
	// island, Arg = new core frequency in MHz.
	EnergyFreq uint8 = 0
	// EnergyPools: the IXP island gated or ungated microengine pools;
	// Label = island, Arg = active pool count.
	EnergyPools uint8 = 1
	// EnergyGovernor: an energy governor armed; Label = mode, Arg = QoS
	// target (ns; 0 for latency-blind per-island governors).
	EnergyGovernor uint8 = 2
	// EnergyQoS: a governor control window observed p95 latency above the
	// QoS target; Label = "governor", Arg = windowed p95 (ns).
	EnergyQoS uint8 = 3
)

// energyName renders an energy code.
func energyName(code uint8) string {
	switch code {
	case EnergyFreq:
		return "freq"
	case EnergyPools:
		return "pools"
	case EnergyGovernor:
		return "governor"
	case EnergyQoS:
		return "qos-violation"
	default:
		return fmt.Sprintf("energy(%d)", code)
	}
}

// Event is one flight record. The fields are deliberately all integers plus
// one interned string so the encoding stays compact and comparisons during
// replay are exact.
type Event struct {
	T      sim.Time // simulation timestamp
	Cat    Category // category (selects the Code namespace)
	Code   uint8    // sub-type within the category
	Label  string   // island / domain / queue / endpoint name (interned)
	Entity int32    // platform-wide entity (VM) ID; -1 when not applicable
	Arg    int64    // category-specific argument (delta, weight, state, ...)
}

// payload renders the category-specific portion of the event.
func (e Event) payload() string {
	switch e.Cat {
	case CatSend, CatApply:
		return fmt.Sprintf("%s %s entity=%d delta=%+d", kindName(e.Code), e.Label, e.Entity, e.Arg)
	case CatWeight:
		return fmt.Sprintf("%s entity=%d weight=%d", e.Label, e.Entity, e.Arg)
	case CatBoost:
		return fmt.Sprintf("%s entity=%d", e.Label, e.Entity)
	case CatIXP:
		switch e.Code {
		case IXPThreads:
			return fmt.Sprintf("threads flow=%d n=%d", e.Entity, e.Arg)
		case IXPPoll:
			return fmt.Sprintf("poll flow=%d interval=%s", e.Entity, sim.Time(e.Arg))
		case IXPGateShed:
			return fmt.Sprintf("gate-shed flow=%d pkt=%d", e.Entity, e.Arg)
		case IXPShedRate:
			return fmt.Sprintf("shed-rate %s delta=%+d", e.Label, e.Arg)
		case IXPClassifier:
			return fmt.Sprintf("classifier-threads n=%d", e.Arg)
		default:
			return fmt.Sprintf("ixp(%d) flow=%d arg=%d", e.Code, e.Entity, e.Arg)
		}
	case CatAdmit:
		verdict := [...]string{"served", "shed", "expired"}
		v := fmt.Sprintf("admit(%d)", e.Code)
		if int(e.Code) < len(verdict) {
			v = verdict[e.Code]
		}
		return fmt.Sprintf("%s %s class=%d", e.Label, v, e.Arg)
	case CatBreaker:
		return fmt.Sprintf("%s %s->%s", e.Label, breakerName(uint8(e.Arg)), breakerName(e.Code))
	case CatLease:
		return fmt.Sprintf("%s %s", e.Label, leaseName(e.Code))
	case CatFailover:
		if e.Label != "" {
			return fmt.Sprintf("%s %s replica=%d arg=%d", failName(e.Code), e.Label, e.Entity, e.Arg)
		}
		return fmt.Sprintf("%s replica=%d arg=%d", failName(e.Code), e.Entity, e.Arg)
	case CatEnergy:
		switch e.Code {
		case EnergyFreq:
			return fmt.Sprintf("freq %s mhz=%d", e.Label, e.Arg)
		case EnergyPools:
			return fmt.Sprintf("pools %s active=%d", e.Label, e.Arg)
		case EnergyGovernor:
			return fmt.Sprintf("governor %s target=%s", e.Label, sim.Time(e.Arg))
		case EnergyQoS:
			return fmt.Sprintf("qos-violation p95=%s", sim.Time(e.Arg))
		default:
			return fmt.Sprintf("%s %s arg=%d", energyName(e.Code), e.Label, e.Arg)
		}
	default:
		return fmt.Sprintf("%s entity=%d code=%d arg=%d", e.Label, e.Entity, e.Code, e.Arg)
	}
}

// String renders the event as a log line.
func (e Event) String() string {
	return fmt.Sprintf("%12.6fs [%s] %s", e.T.Seconds(), e.Cat, e.payload())
}
