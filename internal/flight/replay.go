package flight

import "fmt"

// Divergence describes the first point where a live event stream departed
// from a recorded log. Exactly one of Want/Got may be nil: a nil Want means
// the live run produced an event beyond the end of the log (e.g. one extra
// Tune); a nil Got means the live run ended before producing an event the
// log still expects.
type Divergence struct {
	Index int    // event ordinal (0-based) where the streams departed
	Want  *Event // the recorded event, nil if the log was exhausted
	Got   *Event // the live event, nil if the live run fell short
}

// String renders the divergence with its sim-time, category, and both
// payloads.
func (d *Divergence) String() string {
	switch {
	case d.Want == nil:
		return fmt.Sprintf("divergence at event %d, t=%.6fs [%s]: live run emitted %q beyond the end of the log",
			d.Index, d.Got.T.Seconds(), d.Got.Cat, d.Got.payload())
	case d.Got == nil:
		return fmt.Sprintf("divergence at event %d, t=%.6fs [%s]: log expects %q but the live run emitted nothing more",
			d.Index, d.Want.T.Seconds(), d.Want.Cat, d.Want.payload())
	default:
		return fmt.Sprintf("divergence at event %d, t=%.6fs [%s]: log has %q, live run has %q (t=%.6fs [%s])",
			d.Index, d.Want.T.Seconds(), d.Want.Cat, d.Want.payload(),
			d.Got.payload(), d.Got.T.Seconds(), d.Got.Cat)
	}
}

// NewVerifier returns a Recorder in verifying mode: every Record call is
// matched against the log's next event instead of being written anywhere.
// Feed it through the same wiring as a recording Recorder, then call
// Divergence once the run completes.
func NewVerifier(log *Log) *Recorder {
	return &Recorder{verifying: true, expected: log.Events}
}

// verify matches one live event against the cursor.
func (r *Recorder) verify(ev Event) {
	if r.div == nil {
		if r.idx >= len(r.expected) {
			got := ev
			//lint:allow hotalloc(at most one divergence is ever retained per verification run)
			r.div = &Divergence{Index: r.idx, Got: &got}
		} else if want := r.expected[r.idx]; want != ev {
			got := ev
			w := want
			//lint:allow hotalloc(at most one divergence is ever retained per verification run)
			r.div = &Divergence{Index: r.idx, Want: &w, Got: &got}
		}
	}
	r.idx++
}

// Divergence finalizes a verification: it reports the first mismatch, a
// live event beyond the log's end, or — when the live stream stopped short
// — the first recorded event that never arrived. Nil means the replay
// matched the log exactly. Only meaningful on a NewVerifier recorder.
func (r *Recorder) Divergence() *Divergence {
	if r == nil || !r.verifying {
		return nil
	}
	if r.div == nil && r.idx < len(r.expected) {
		w := r.expected[r.idx]
		r.div = &Divergence{Index: r.idx, Want: &w}
	}
	return r.div
}

// CategoryDelta is one category's event-count difference between two logs.
type CategoryDelta struct {
	Category Category
	A, B     int
}

// DiffReport compares two decoded logs.
type DiffReport struct {
	AEvents, BEvents int
	First            *Divergence     // nil when the logs are identical
	Categories       []CategoryDelta // categories whose counts differ, in declaration order
}

// Identical reports whether the two logs' event streams matched exactly.
func (d *DiffReport) Identical() bool { return d.First == nil }

// String renders the diff outcome.
func (d *DiffReport) String() string {
	if d.Identical() {
		return fmt.Sprintf("logs identical: %d events", d.AEvents)
	}
	s := d.First.String()
	for _, cd := range d.Categories {
		s += fmt.Sprintf("\n  [%s] %d events vs %d (%+d)", cd.Category, cd.A, cd.B, cd.B-cd.A)
	}
	return s
}

// Diff compares two logs event-by-event, reporting the first divergence
// (with a taking the "recorded"/Want role) and the per-category count
// deltas. Headers are not compared: a diff is about what the runs did.
func Diff(a, b *Log) *DiffReport {
	d := &DiffReport{AEvents: len(a.Events), BEvents: len(b.Events)}
	v := NewVerifier(a)
	for _, ev := range b.Events {
		v.Record(ev)
	}
	d.First = v.Divergence()
	if d.First == nil {
		return d
	}
	var ca, cb [NumCategories]int
	for _, ev := range a.Events {
		ca[ev.Cat]++
	}
	for _, ev := range b.Events {
		cb[ev.Cat]++
	}
	for c := 0; c < NumCategories; c++ {
		if ca[c] != cb[c] {
			d.Categories = append(d.Categories, CategoryDelta{Category: Category(c), A: ca[c], B: cb[c]})
		}
	}
	return d
}
