package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/sim"
)

// Binary format constants. See docs/flightrecorder.md for the full
// specification.
const (
	// Version is the current format version; Decode rejects any other.
	Version uint16 = 1

	// DefaultSegmentEvents is the recorder's in-memory ring capacity: a
	// full ring is encoded into one CRC-framed segment and spilled to the
	// writer.
	DefaultSegmentEvents = 1024

	magic = "FLR1"

	opIntern byte = 0x01 // payload record: define the next string-table entry
	opEvent  byte = 0x02 // payload record: one event

	segMarker byte = 0xA5 // frames one segment
	endMarker byte = 0x5A // trailer: end of log + total event count

	// minEventBytes is the smallest possible encoded event record (op,
	// cat, code, dt, label, entity, arg — one byte each); the decoder uses
	// it to reject corrupt record counts before doing any work.
	minEventBytes = 7
)

// headerFixedLen is the byte length of the fixed header prefix: magic,
// version, flags, seed.
const headerFixedLen = 4 + 2 + 2 + 8

// encState is the stateful half of the encoding shared by every segment of
// one log: the string-interning table and the per-category timestamp delta
// bases. The decoder mirrors it exactly.
type encState struct {
	intern map[string]uint64
	nextID uint64
	lastT  [NumCategories]sim.Time
}

func newEncState() encState {
	return encState{intern: make(map[string]uint64)}
}

// appendEvent appends ev's payload records (an intern definition first if
// the label is new) to buf, advancing the encoder state.
func (s *encState) appendEvent(buf []byte, ev Event) ([]byte, error) {
	if int(ev.Cat) >= NumCategories {
		//lint:allow hotalloc(misuse error path: formatting happens at most once, after which the recorder is dead)
		return buf, fmt.Errorf("flight: event has unknown category %d", int(ev.Cat))
	}
	dt := ev.T - s.lastT[ev.Cat]
	if dt < 0 {
		//lint:allow hotalloc(misuse error path: formatting happens at most once, after which the recorder is dead)
		return buf, fmt.Errorf("flight: time went backwards in category %v: %v after %v", ev.Cat, ev.T, s.lastT[ev.Cat])
	}
	id, ok := s.intern[ev.Label]
	if !ok {
		id = s.nextID
		s.nextID++
		s.intern[ev.Label] = id
		buf = append(buf, opIntern)
		buf = binary.AppendUvarint(buf, uint64(len(ev.Label)))
		buf = append(buf, ev.Label...)
	}
	s.lastT[ev.Cat] = ev.T
	buf = append(buf, opEvent, byte(ev.Cat), ev.Code)
	buf = binary.AppendUvarint(buf, uint64(dt))
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendVarint(buf, int64(ev.Entity))
	buf = binary.AppendVarint(buf, ev.Arg)
	return buf, nil
}

// appendHeader appends the file header.
func appendHeader(buf []byte, seed int64, meta []byte) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags, reserved
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seed))
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	return buf
}

// appendSegment frames one payload: marker, payload length, CRC32 (IEEE)
// of the payload, then the payload itself.
func appendSegment(buf, payload []byte) []byte {
	buf = append(buf, segMarker)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// appendTrailer appends the end-of-log marker with the total event count,
// letting the decoder distinguish a complete log from a truncated one.
func appendTrailer(buf []byte, total uint64) []byte {
	buf = append(buf, endMarker)
	return binary.AppendUvarint(buf, total)
}

// appendSegmentPayload appends one segment payload to buf: the event count
// followed by the interleaved intern/event records. Callers on the per-event
// path pass a reused scratch slice (buf[:0]) so a steady-state spill
// performs no allocation; the encoded bytes are independent of the buffer's
// provenance.
func (s *encState) appendSegmentPayload(buf []byte, events []Event) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	var err error
	for _, ev := range events {
		if buf, err = s.appendEvent(buf, ev); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Encode writes a complete flight log for events in segments of
// segmentEvents records (<= 0 selects DefaultSegmentEvents). It is the
// one-shot counterpart of the Recorder, used to build fixtures and
// re-encode decoded logs; encoding the events a Decode returned with the
// same segment size reproduces the original bytes exactly.
func Encode(w io.Writer, seed int64, meta []byte, events []Event, segmentEvents int) error {
	if segmentEvents <= 0 {
		segmentEvents = DefaultSegmentEvents
	}
	buf := appendHeader(nil, seed, meta)
	st := newEncState()
	total := uint64(len(events))
	var payload []byte // reused across segments
	for len(events) > 0 {
		n := segmentEvents
		if n > len(events) {
			n = len(events)
		}
		var err error
		payload, err = st.appendSegmentPayload(payload[:0], events[:n])
		if err != nil {
			return err
		}
		buf = appendSegment(buf, payload)
		events = events[n:]
	}
	return writeAll(w, appendTrailer(buf, total))
}

func writeAll(w io.Writer, buf []byte) error {
	if _, err := w.Write(buf); err != nil {
		//lint:allow hotalloc(write-failure path: wraps the first error once, then the recorder stays latched on r.err)
		return fmt.Errorf("flight: writing log: %w", err)
	}
	return nil
}
