package flight

import (
	"os"
	"testing"
)

// FuzzFlightDecoder feeds arbitrary bytes to Decode. The decoder must never
// panic and never allocate proportionally to a corrupted length field; a
// successful decode must satisfy the format's own invariants (re-encodable,
// event count bounded by input size).
func FuzzFlightDecoder(f *testing.F) {
	if golden, err := os.ReadFile(goldenPath); err == nil {
		f.Add(golden)
		// Truncations and single-byte corruptions of the golden log seed the
		// interesting error paths.
		for _, n := range []int{0, 4, 8, 16, len(golden) / 2, len(golden) - 1} {
			if n <= len(golden) {
				f.Add(golden[:n])
			}
		}
		for _, i := range []int{0, 5, 17, len(golden) / 2, len(golden) - 2} {
			b := append([]byte(nil), golden...)
			b[i] ^= 0x80
			f.Add(b)
		}
	}
	f.Add([]byte("FLR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("decode error with empty message")
			}
			return
		}
		if len(l.Events) > len(data) {
			t.Fatalf("decoded %d events from %d bytes", len(l.Events), len(data))
		}
		// Anything the decoder accepts must survive a round trip.
		var re discard
		if err := Encode(&re, l.Seed, l.Meta, l.Events, DefaultSegmentEvents); err != nil {
			t.Fatalf("accepted log does not re-encode: %v", err)
		}
	})
}

// discard counts bytes without keeping them.
type discard int

func (d *discard) Write(p []byte) (int, error) {
	*d += discard(len(p))
	return len(p), nil
}
