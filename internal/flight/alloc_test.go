package flight

import (
	"io"
	"testing"
)

// TestRecordSteadyStateZeroAlloc pins the hot-path contract the hotalloc
// analyzer enforces on the Record root: once the intern table holds every
// label and the spill scratch buffers (Recorder.payload, Recorder.frame)
// have grown to the segment's steady-state size, Record performs no
// allocation — including on the iterations that encode and spill a full
// CRC-framed segment.
func TestRecordSteadyStateZeroAlloc(t *testing.T) {
	const segEvents = 64
	r, err := NewRecorder(io.Discard, 42, nil, segEvents)
	if err != nil {
		t.Fatal(err)
	}
	events := benchEvents(4 * segEvents)
	for _, ev := range events { // warm up: intern labels, grow buffers
		r.Record(ev)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	now := events[len(events)-1].T
	i := 0
	allocs := testing.AllocsPerRun(4*segEvents, func() {
		ev := events[i%len(events)]
		now += 250_000
		ev.T = now // keep per-category time monotonic across replays
		r.Record(ev)
		i++
	})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("Record allocated %.2f times per event in steady state; the spill path must reuse its scratch buffers", allocs)
	}
}

// BenchmarkFlightRecord measures the armed-recorder cost at an event site
// in steady state (intern table and spill buffers warm). The interesting
// number is allocs/op: it must be 0.
func BenchmarkFlightRecord(b *testing.B) {
	r, err := NewRecorder(io.Discard, 42, nil, DefaultSegmentEvents)
	if err != nil {
		b.Fatal(err)
	}
	events := benchEvents(4096)
	for _, ev := range events {
		r.Record(ev)
	}
	now := events[len(events)-1].T
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		now += 250_000
		ev.T = now
		r.Record(ev)
	}
	b.StopTimer()
	if err := r.Err(); err != nil {
		b.Fatal(err)
	}
}
