package flight

import (
	"fmt"
	"io"
)

// Recorder collects flight events. It runs in one of two modes:
//
//   - recording (NewRecorder): events accumulate in a bounded in-memory
//     ring; each time the ring fills it is encoded into one CRC-framed
//     segment and spilled to the writer, so memory stays bounded no matter
//     how long the run;
//   - verifying (NewVerifier): events are compared in order against a
//     decoded log, and the first divergence is retained for Divergence().
//
// A nil *Recorder is valid everywhere and records nothing; event sites
// follow the nil-*Tracer convention (`if rec != nil { rec.Record(...) }`),
// so a disabled recorder costs exactly one branch per site. Recording is
// purely observational: it draws no randomness and schedules nothing, so an
// armed recorder never changes simulated metrics.
type Recorder struct {
	// Recording mode.
	w     io.Writer
	enc   encState
	ring  []Event
	total uint64
	err   error

	// payload and frame are spill scratch buffers, reused across segments
	// so a steady-state Record/spill cycle performs no allocation (pinned
	// by TestRecordSteadyStateZeroAlloc).
	payload []byte
	frame   []byte

	// Verifying mode.
	verifying bool
	expected  []Event
	idx       int
	div       *Divergence
}

// NewRecorder starts a flight log on w: the header (format version, seed,
// opaque meta blob) is written immediately, segments follow as the ring
// spills, and Close writes the trailer. segmentEvents bounds the in-memory
// ring (<= 0 selects DefaultSegmentEvents).
func NewRecorder(w io.Writer, seed int64, meta []byte, segmentEvents int) (*Recorder, error) {
	if w == nil {
		return nil, fmt.Errorf("flight: recorder needs a writer")
	}
	if segmentEvents <= 0 {
		segmentEvents = DefaultSegmentEvents
	}
	if err := writeAll(w, appendHeader(nil, seed, meta)); err != nil {
		return nil, err
	}
	return &Recorder{w: w, enc: newEncState(), ring: make([]Event, 0, segmentEvents)}, nil
}

// Record appends one event. Nil-safe. In recording mode a full ring spills
// one segment to the writer; in verifying mode the event is compared
// against the next expected one and the first mismatch is retained.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if r.verifying {
		r.verify(ev)
		return
	}
	if r.err != nil {
		return
	}
	r.ring = append(r.ring, ev)
	r.total++
	if len(r.ring) == cap(r.ring) {
		r.spill()
	}
}

// spill encodes the ring into one segment and writes it out. The payload
// and frame scratch buffers grow to the segment's steady-state size on the
// first spills and are reused afterwards.
func (r *Recorder) spill() {
	if len(r.ring) == 0 {
		return
	}
	payload, err := r.enc.appendSegmentPayload(r.payload[:0], r.ring)
	if err != nil {
		r.err = err
		return
	}
	r.payload = payload
	r.ring = r.ring[:0]
	r.frame = appendSegment(r.frame[:0], payload)
	r.err = writeAll(r.w, r.frame)
}

// Flush spills any buffered events without closing the log.
func (r *Recorder) Flush() error {
	if r == nil || r.verifying {
		return nil
	}
	r.spill()
	return r.err
}

// Close flushes and writes the end-of-log trailer. The recorder must not
// be used afterwards. Nil-safe; in verifying mode it is a no-op.
func (r *Recorder) Close() error {
	if r == nil || r.verifying {
		return nil
	}
	r.spill()
	if r.err != nil {
		return r.err
	}
	r.err = writeAll(r.w, appendTrailer(nil, r.total))
	return r.err
}

// Err returns the first write or encode error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

// Events returns the number of events recorded (or, in verifying mode,
// compared) so far.
func (r *Recorder) Events() uint64 {
	if r == nil {
		return 0
	}
	if r.verifying {
		return uint64(r.idx)
	}
	return r.total
}
