package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const goldenPath = "testdata/golden.flight"

// TestGoldenFixture pins the on-disk format: the committed fixture must
// decode to the sample event stream and re-encode byte-identically. Set
// FLIGHT_WRITE_GOLDEN=1 to regenerate after a deliberate format change
// (which must also bump Version).
func TestGoldenFixture(t *testing.T) {
	want := encodeSample(t, 5)
	if os.Getenv("FLIGHT_WRITE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with FLIGHT_WRITE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("golden fixture (%d bytes) does not match current encoder output (%d bytes); a format change must bump Version and regenerate the fixture", len(data), len(want))
	}
	l, err := Decode(data)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	events := sampleEvents()
	if len(l.Events) != len(events) {
		t.Fatalf("golden fixture holds %d events, want %d", len(l.Events), len(events))
	}
	for i := range events {
		if l.Events[i] != events[i] {
			t.Fatalf("golden event %d: got %v, want %v", i, l.Events[i], events[i])
		}
	}
}

// TestCrossVersionRejection guards the compatibility contract: a log whose
// header declares any version other than this build's is refused outright
// rather than half-read.
func TestCrossVersionRejection(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	for _, v := range []uint16{0, Version + 1, 0xFFFF} {
		b := append([]byte(nil), data...)
		b[4] = byte(v)
		b[5] = byte(v >> 8)
		if _, err := Decode(b); err == nil {
			t.Fatalf("decoder accepted version %d", v)
		}
	}
}
