package flight

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// sampleEvents returns a deterministic event stream exercising every
// category, label reuse, and non-monotone cross-category timestamps.
func sampleEvents() []Event {
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Time(1e6) }
	return []Event{
		{T: ms(1), Cat: CatSend, Code: KindTune, Label: "ixp>x86", Entity: 2, Arg: -64},
		{T: ms(1), Cat: CatApply, Code: KindTune, Label: "x86", Entity: 2, Arg: -64},
		{T: ms(2), Cat: CatWeight, Code: 0, Label: "x86", Entity: 2, Arg: 192},
		{T: ms(3), Cat: CatSend, Code: KindTrigger, Label: "ixp>x86", Entity: 1, Arg: 0},
		{T: ms(3), Cat: CatApply, Code: KindTrigger, Label: "x86", Entity: 1, Arg: 0},
		{T: ms(3), Cat: CatBoost, Code: 0, Label: "x86", Entity: 1, Arg: 0},
		{T: ms(4), Cat: CatIXP, Code: IXPThreads, Label: "ixp", Entity: 0, Arg: 3},
		{T: ms(5), Cat: CatIXP, Code: IXPPoll, Label: "ixp", Entity: 1, Arg: 50_000},
		{T: ms(6), Cat: CatAdmit, Code: AdmitServed, Label: "web", Entity: -1, Arg: 0},
		{T: ms(6), Cat: CatAdmit, Code: AdmitShed, Label: "web", Entity: -1, Arg: 2},
		{T: ms(7), Cat: CatAdmit, Code: AdmitExpired, Label: "db", Entity: -1, Arg: 1},
		{T: ms(8), Cat: CatBreaker, Code: BreakerOpen, Label: "ixp-uplink", Entity: -1, Arg: int64(BreakerClosed)},
		{T: ms(9), Cat: CatLease, Code: LeaseSuspect, Label: "gpu", Entity: -1, Arg: 0},
		{T: ms(10), Cat: CatLease, Code: LeaseDead, Label: "gpu", Entity: -1, Arg: 0},
		{T: ms(11), Cat: CatIXP, Code: IXPGateShed, Label: "ixp", Entity: 2, Arg: 9001},
		{T: ms(12), Cat: CatIXP, Code: IXPShedRate, Label: "bid", Entity: -1, Arg: 4},
		{T: ms(13), Cat: CatLease, Code: LeaseRejoin, Label: "gpu", Entity: -1, Arg: 0},
		{T: ms(14), Cat: CatLease, Code: LeaseQuarantine, Label: "gpu", Entity: 3, Arg: 0},
		{T: ms(15), Cat: CatBreaker, Code: BreakerHalfOpen, Label: "ixp-uplink", Entity: -1, Arg: int64(BreakerOpen)},
		{T: ms(15), Cat: CatSend, Code: KindShed, Label: "x86>ixp", Entity: -1, Arg: 120},
	}
}

func encodeSample(t *testing.T, segmentEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, 42, []byte(`{"run":"sample"}`), sampleEvents(), segmentEvents); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripByteIdentical(t *testing.T) {
	for _, seg := range []int{0, 3, 7, 1024} {
		data := encodeSample(t, seg)
		l, err := Decode(data)
		if err != nil {
			t.Fatalf("seg=%d Decode: %v", seg, err)
		}
		if l.Seed != 42 || string(l.Meta) != `{"run":"sample"}` {
			t.Fatalf("seg=%d header mismatch: seed=%d meta=%q", seg, l.Seed, l.Meta)
		}
		want := sampleEvents()
		if len(l.Events) != len(want) {
			t.Fatalf("seg=%d decoded %d events, want %d", seg, len(l.Events), len(want))
		}
		for i := range want {
			if l.Events[i] != want[i] {
				t.Fatalf("seg=%d event %d: got %v, want %v", seg, i, l.Events[i], want[i])
			}
		}
		segN := seg
		if segN <= 0 {
			segN = DefaultSegmentEvents
		}
		var re bytes.Buffer
		if err := Encode(&re, l.Seed, l.Meta, l.Events, segN); err != nil {
			t.Fatalf("seg=%d re-encode: %v", seg, err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("seg=%d re-encode not byte-identical: %d vs %d bytes", seg, re.Len(), len(data))
		}
	}
}

func TestRecorderMatchesEncode(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, 42, []byte(`{"run":"sample"}`), 3)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	for _, ev := range events {
		rec.Record(ev)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rec.Events() != uint64(len(events)) {
		t.Fatalf("Events() = %d, want %d", rec.Events(), len(events))
	}
	if !bytes.Equal(buf.Bytes(), encodeSample(t, 3)) {
		t.Fatal("incremental Recorder output differs from one-shot Encode")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Cat: CatSend})
	if err := r.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if r.Err() != nil || r.Events() != 0 || r.Divergence() != nil {
		t.Fatal("nil recorder reported state")
	}
}

func TestInterningSingleDefinition(t *testing.T) {
	data := encodeSample(t, 4) // "x86" spans segments
	if n := bytes.Count(data, []byte{opIntern, 3, 'x', '8', '6'}); n != 1 {
		t.Fatalf(`label "x86" interned %d times, want 1`, n)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := encodeSample(t, 5)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"future version", func(b []byte) []byte { b[4], b[5] = 0xFF, 0xFF; return b }, "unsupported log version"},
		{"unknown flags", func(b []byte) []byte { b[6] = 1; return b }, "unknown header flags"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-4] }, ""},
		{"missing trailer", func(b []byte) []byte { return b[:len(b)-2] }, "truncated log"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, "trailing bytes"},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b }, "CRC mismatch"},
		{"empty", func(b []byte) []byte { return nil }, "need 4 bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), good...))
			l, err := Decode(b)
			if err == nil {
				t.Fatalf("Decode accepted corrupt input (%d events)", len(l.Events))
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEncodeRejectsBadEvents(t *testing.T) {
	var buf bytes.Buffer
	err := Encode(&buf, 0, nil, []Event{{Cat: Category(NumCategories)}}, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown category") {
		t.Fatalf("unknown category: err=%v", err)
	}
	buf.Reset()
	err = Encode(&buf, 0, nil, []Event{
		{T: 10, Cat: CatSend}, {T: 5, Cat: CatSend},
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "time went backwards") {
		t.Fatalf("backwards time: err=%v", err)
	}
}

func TestVerifierCleanAndDivergent(t *testing.T) {
	log, err := Decode(encodeSample(t, 0))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	events := sampleEvents()

	t.Run("clean", func(t *testing.T) {
		v := NewVerifier(log)
		for _, ev := range events {
			v.Record(ev)
		}
		if d := v.Divergence(); d != nil {
			t.Fatalf("clean replay diverged: %v", d)
		}
	})
	t.Run("mismatch", func(t *testing.T) {
		v := NewVerifier(log)
		for i, ev := range events {
			if i == 4 {
				ev.Arg++
			}
			v.Record(ev)
		}
		d := v.Divergence()
		if d == nil || d.Index != 4 || d.Want == nil || d.Got == nil {
			t.Fatalf("want divergence at 4, got %v", d)
		}
		if d.Want.T != events[4].T || d.Want.Cat != events[4].Cat {
			t.Fatalf("divergence lost sim-time/category: %v", d)
		}
		if s := d.String(); !strings.Contains(s, "event 4") || !strings.Contains(s, "[apply]") {
			t.Fatalf("rendering misses index or category: %q", s)
		}
	})
	t.Run("extra event", func(t *testing.T) {
		v := NewVerifier(log)
		for _, ev := range events {
			v.Record(ev)
		}
		extra := Event{T: events[len(events)-1].T + 1, Cat: CatSend, Code: KindTune, Label: "ixp>x86", Entity: 9, Arg: 1}
		v.Record(extra)
		d := v.Divergence()
		if d == nil || d.Index != len(events) || d.Want != nil || d.Got == nil || *d.Got != extra {
			t.Fatalf("extra event not flagged: %v", d)
		}
		if !strings.Contains(d.String(), "beyond the end of the log") {
			t.Fatalf("rendering: %q", d.String())
		}
	})
	t.Run("missing event", func(t *testing.T) {
		v := NewVerifier(log)
		for _, ev := range events[:len(events)-1] {
			v.Record(ev)
		}
		d := v.Divergence()
		if d == nil || d.Index != len(events)-1 || d.Got != nil || d.Want == nil {
			t.Fatalf("missing event not flagged: %v", d)
		}
	})
}

func TestDiff(t *testing.T) {
	a, err := Decode(encodeSample(t, 0))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	b, err := Decode(encodeSample(t, 6))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d := Diff(a, b); !d.Identical() {
		t.Fatalf("identical logs diffed: %v", d)
	}
	// Drop one admit event from b: first divergence plus a category delta.
	drop := 9
	b.Events = append(b.Events[:drop:drop], b.Events[drop+1:]...)
	d := Diff(a, b)
	if d.Identical() || d.First == nil || d.First.Index != drop {
		t.Fatalf("dropped event not found: %+v", d)
	}
	found := false
	for _, cd := range d.Categories {
		if cd.Category == CatAdmit && cd.A == cd.B+1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("admit category delta missing: %+v", d.Categories)
	}
	if s := d.String(); !strings.Contains(s, "[admit]") {
		t.Fatalf("diff rendering: %q", s)
	}
}

func TestInfo(t *testing.T) {
	data := encodeSample(t, 0)
	l, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	info := l.Info()
	if info.Events != len(sampleEvents()) || info.Bytes != len(data) {
		t.Fatalf("info counts: %+v", info)
	}
	if info.BytesPerEvent <= 0 {
		t.Fatalf("bytes/event not computed: %+v", info)
	}
	if info.First != sampleEvents()[0].T || info.Last != sampleEvents()[len(sampleEvents())-1].T {
		t.Fatalf("info time range: %+v", info)
	}
	var total int
	for _, c := range info.Categories {
		total += c.Count
	}
	if total != info.Events {
		t.Fatalf("category counts sum to %d, want %d", total, info.Events)
	}
	for i := 1; i < len(info.Labels); i++ {
		if info.Labels[i-1].Label >= info.Labels[i].Label {
			t.Fatalf("labels not sorted: %+v", info.Labels)
		}
	}
}

func TestEventString(t *testing.T) {
	for _, ev := range sampleEvents() {
		s := ev.String()
		if !strings.Contains(s, "["+ev.Cat.String()+"]") {
			t.Fatalf("event rendering misses category: %q", s)
		}
	}
	weird := Event{Cat: Category(250), Code: 9}
	if s := weird.String(); !strings.Contains(s, "Category(250)") {
		t.Fatalf("unknown category rendering: %q", s)
	}
}
