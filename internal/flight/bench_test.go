package flight

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// benchEvents builds a realistic mixed stream: mostly admission verdicts and
// sends, a sprinkling of weight changes, ~a dozen distinct labels.
func benchEvents(n int) []Event {
	labels := []string{"web", "app", "db", "ixp", "x86", "gpu", "ixp>x86", "x86>ixp", "ixp-uplink", "host-downlink"}
	events := make([]Event, n)
	for i := range events {
		ev := Event{T: sim.Time(i+1) * sim.Time(250_000), Label: labels[i%len(labels)], Entity: int32(i % 8)}
		switch i % 10 {
		case 0, 1, 2, 3, 4:
			ev.Cat, ev.Code, ev.Arg = CatAdmit, uint8(i%3), int64(i%3)
		case 5, 6, 7:
			ev.Cat, ev.Code, ev.Arg = CatSend, KindTune, int64(-64+i%128)
		case 8:
			ev.Cat, ev.Arg = CatWeight, int64(128+i%256)
		default:
			ev.Cat, ev.Code, ev.Arg = CatIXP, IXPThreads, int64(i%4)
		}
		events[i] = ev
	}
	return events
}

func BenchmarkFlightEncode(b *testing.B) {
	events := benchEvents(4096)
	var buf bytes.Buffer
	if err := Encode(&buf, 1, nil, events, DefaultSegmentEvents); err != nil {
		b.Fatal(err)
	}
	bytesPerEvent := float64(buf.Len()) / float64(len(events))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, 1, nil, events, DefaultSegmentEvents); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bytesPerEvent, "bytes/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
}

func BenchmarkFlightDecode(b *testing.B) {
	events := benchEvents(4096)
	var buf bytes.Buffer
	if err := Encode(&buf, 1, nil, events, DefaultSegmentEvents); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data))/float64(len(events)), "bytes/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
}

// BenchmarkFlightRecordDisabled measures the disabled-recorder cost at an
// event site: one nil check.
func BenchmarkFlightRecordDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		if r != nil {
			r.Record(Event{})
		}
	}
}
