package flight_test

// flight cannot import core (core imports flight), so its CatSend/CatApply
// sub-type codes mirror core.Kind by hand. This external-package test pins
// the two tables together: a kind added or renumbered in core without a
// matching flight update fails here, not in a confusing replay diff.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flight"
)

func TestKindNamesMatchCore(t *testing.T) {
	kinds := map[uint8]core.Kind{
		flight.KindTune:      core.KindTune,
		flight.KindTrigger:   core.KindTrigger,
		flight.KindRegister:  core.KindRegister,
		flight.KindAck:       core.KindAck,
		flight.KindHeartbeat: core.KindHeartbeat,
		flight.KindShed:      core.KindShed,
	}
	for code, k := range kinds {
		if int(code) != int(k) {
			t.Errorf("flight code %d maps to core.%v (=%d): numeric values drifted", code, k, int(k))
		}
		// The recorder stores uint8(msg.Kind); the rendered event must name
		// the kind exactly as core does.
		ev := flight.Event{Cat: flight.CatSend, Code: code, Label: "a>b"}
		if want := k.String() + " "; !strings.Contains(ev.String(), " "+want) {
			t.Errorf("event with code %d renders %q, want the core name %q in it", code, ev.String(), k.String())
		}
	}
	// And the mirror is complete: every core kind with a real name has a
	// flight counterpart.
	for k := core.KindTune; ; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			break
		}
		if _, ok := kinds[uint8(k)]; !ok {
			t.Errorf("core.Kind %v (=%d) has no flight.Kind* mirror", k, int(k))
		}
		if int(k) > 32 {
			t.Fatal("runaway kind enumeration")
		}
	}
}
