// Package stats provides the measurement machinery used by the benchmark
// harness: streaming summaries, histograms with percentiles, time series,
// and CPU-utilization accounting that matches the arithmetic of the paper's
// Table 2 ("platform efficiency").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming statistics over float64 observations using
// Welford's algorithm for numerically stable variance.
type Summary struct {
	n        int
	min, max float64
	mean, m2 float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations recorded.
func (s *Summary) Count() int { return s.n }

// Min returns the smallest observation, or 0 if none were recorded.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 if none were recorded.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Mean returns the arithmetic mean, or 0 if no observations were recorded.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the sample variance (n-1 denominator), or 0 for fewer
// than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval on the mean
// (normal approximation: 1.96 standard errors), or 0 for fewer than two
// observations. The sweep harness reports repetition aggregates as
// mean ± CI95.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds other into s, as if every observation in other had been added
// to s directly (Chan et al. parallel-variance formula).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	na, nb := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := na + nb
	s.mean += delta * nb / total
	s.m2 += other.m2 + delta*delta*na*nb/total
	s.n += other.n
}

// String formats the summary for human-readable harness output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f mean=%.3f max=%.3f stddev=%.3f",
		s.n, s.Min(), s.Mean(), s.Max(), s.StdDev())
}

// Sample collects raw observations so that exact percentiles can be
// computed. Use Summary instead when only moments are needed.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (p *Sample) Add(x float64) {
	p.xs = append(p.xs, x)
	p.sorted = false
}

// Count returns the number of observations recorded.
func (p *Sample) Count() int { return len(p.xs) }

// Values returns the observations in insertion order. The caller must not
// modify the returned slice.
func (p *Sample) Values() []float64 { return p.xs }

// Percentile returns the q-th percentile (0 <= q <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (p *Sample) Percentile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 100 {
		return p.xs[len(p.xs)-1]
	}
	rank := q / 100 * float64(len(p.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(p.xs) {
		return p.xs[len(p.xs)-1]
	}
	// (1-frac)*a + frac*b rather than a + frac*(b-a): the difference of two
	// near-extreme float64s can overflow even when the result is in range.
	return (1-frac)*p.xs[lo] + frac*p.xs[lo+1]
}

// Median returns the 50th percentile.
func (p *Sample) Median() float64 { return p.Percentile(50) }
