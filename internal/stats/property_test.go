package stats

// Property-based tests (testing/quick) for the measurement machinery the
// sweep harness aggregates with: Welford summaries against a naive
// two-pass reference, percentile monotonicity, and utilization staying
// within the window that produced it.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

var quickCfg = &quick.Config{MaxCount: 300}

// obsSlice generates observation sets spanning ~9 orders of magnitude —
// wide enough to stress the streaming variance, tame enough that the
// naive two-pass reference does not overflow.
type obsSlice []float64

func (obsSlice) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 2)
	xs := make(obsSlice, n)
	for i := range xs {
		scale := math.Exp(r.Float64()*20 - 10)
		xs[i] = r.NormFloat64()*scale + float64(r.Intn(3)-1)*scale
	}
	return reflect.ValueOf(xs)
}

// approxEqual compares with a relative-plus-absolute tolerance sized for
// float64 accumulation error.
func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// Summary must agree with the textbook two-pass mean and (n-1) variance.
func TestQuickSummaryMatchesTwoPass(t *testing.T) {
	prop := func(xs obsSlice) bool {
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		if s.Count() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return s.Mean() == 0 && s.Variance() == 0
		}
		sum, lo, hi := 0.0, xs[0], xs[0]
		for _, x := range xs {
			sum += x
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		mean := sum / float64(len(xs))
		variance := 0.0
		if len(xs) > 1 {
			for _, x := range xs {
				variance += (x - mean) * (x - mean)
			}
			variance /= float64(len(xs) - 1)
		}
		return approxEqual(s.Mean(), mean, 1e-9) &&
			approxEqual(s.Variance(), variance, 1e-6) &&
			s.Min() == lo && s.Max() == hi &&
			approxEqual(s.Sum(), sum, 1e-9)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Merging two partial summaries must match summarizing the concatenation —
// the property the parallel sweep's per-worker aggregation relies on.
func TestQuickSummaryMergeEquivalence(t *testing.T) {
	prop := func(xs obsSlice, splitRaw uint8) bool {
		split := 0
		if len(xs) > 0 {
			split = int(splitRaw) % (len(xs) + 1)
		}
		var left, right, whole Summary
		for i, x := range xs {
			if i < split {
				left.Add(x)
			} else {
				right.Add(x)
			}
			whole.Add(x)
		}
		left.Merge(&right)
		return left.Count() == whole.Count() &&
			approxEqual(left.Mean(), whole.Mean(), 1e-9) &&
			approxEqual(left.Variance(), whole.Variance(), 1e-6) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Histogram quantiles must be monotone in q, stay inside [lo, hi], and
// conserve the observation count across buckets and overflow bins.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	prop := func(xs obsSlice, nRaw uint8) bool {
		h := NewHistogram(-1000, 1000, int(nRaw)%64+1)
		for _, x := range xs {
			h.Add(x)
		}
		var inRange uint64
		for i := 0; i < h.NumBuckets(); i++ {
			inRange += h.Bucket(i)
		}
		if h.Underflow()+h.Overflow()+inRange != h.Count() {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < -1000 || v > 1000 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Sample percentiles must be monotone and pinned to min/max at the ends.
func TestQuickSamplePercentileMonotone(t *testing.T) {
	prop := func(xs obsSlice) bool {
		if len(xs) == 0 {
			return true
		}
		var p Sample
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			p.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if p.Percentile(0) != lo || p.Percentile(100) != hi {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 2.5 {
			v := p.Percentile(q)
			if v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// busySchedule generates non-overlapping busy intervals inside [0, window).
type busySchedule struct {
	window    sim.Time
	intervals [][2]sim.Time
}

func (busySchedule) Generate(r *rand.Rand, size int) reflect.Value {
	sched := busySchedule{window: sim.Time(r.Int63n(int64(sim.Second)) + int64(sim.Millisecond))}
	t := sim.Time(0)
	for i := 0; i < size && t < sched.window; i++ {
		gap := sim.Time(r.Int63n(int64(sched.window) / 8))
		dur := sim.Time(r.Int63n(int64(sched.window)/8) + 1)
		start := t + gap
		end := start + dur
		if end > sched.window {
			end = sched.window
		}
		if start >= end {
			break
		}
		sched.intervals = append(sched.intervals, [2]sim.Time{start, end})
		t = end
	}
	return reflect.ValueOf(sched)
}

// A meter fed non-overlapping intervals can never exceed the window that
// contains them: busy time is bounded by elapsed time, so both the window
// sample and the whole-run mean stay within [0, 100] percent of one CPU.
func TestQuickUtilizationBoundedByWindow(t *testing.T) {
	prop := func(sched busySchedule) bool {
		m := NewUtilizationMeter("prop", 0)
		var busy sim.Time
		for _, iv := range sched.intervals {
			m.Record(iv[0], iv[1])
			busy += iv[1] - iv[0]
		}
		if m.Busy() != busy || busy > sched.window {
			return false
		}
		m.Sample(sched.window)
		if m.Series().Len() != 1 {
			return false
		}
		sample := m.Series().Points()[0].V
		mean := m.MeanUtilization(0, sched.window)
		const eps = 1e-9
		return sample >= 0 && sample <= 100+eps && mean >= 0 && mean <= 100+eps
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
