package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations into fixed-width buckets over [lo, hi).
// Observations outside the range are counted in the underflow/overflow
// buckets and still contribute to Count.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []uint64
	underflow uint64
	overflow  uint64
	count     uint64
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram with %d buckets", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v, %v)", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard against float rounding at hi
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations, including out-of-range.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// Underflow returns the count of observations below the range.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile returns an approximate q-quantile (0..1) assuming observations
// are uniform within each bucket. Out-of-range observations clamp to the
// range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			blo, _ := h.BucketBounds(i)
			frac := (target - cum) / float64(c)
			return blo + frac*h.width
		}
		cum = next
	}
	return h.hi
}

// ASCII renders the histogram as a bar chart for harness output; width is
// the maximum bar length in characters.
func (h *Histogram) ASCII(width int) string {
	var maxCount uint64
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.buckets {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if maxCount > 0 {
			bar = int(float64(c) / float64(maxCount) * float64(width))
		}
		fmt.Fprintf(&b, "[%10.2f, %10.2f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
