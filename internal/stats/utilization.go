package stats

import (
	"repro/internal/sim"
)

// UtilizationMeter accumulates busy time for one entity (a domain, a VCPU,
// an IXP thread) and can report utilization over arbitrary intervals and as
// a periodically sampled time series.
//
// Utilization is expressed in percent of one processor, so a two-VCPU
// domain can legitimately report up to 200%.
type UtilizationMeter struct {
	busy        sim.Time // total busy time recorded
	windowStart sim.Time // start of the current sampling window
	windowBusy  sim.Time // busy time inside the current window
	series      *TimeSeries
}

// NewUtilizationMeter returns a meter whose sampling window starts at start.
func NewUtilizationMeter(name string, start sim.Time) *UtilizationMeter {
	return &UtilizationMeter{windowStart: start, series: NewTimeSeries(name)}
}

// Record adds a busy interval [from, to).
func (m *UtilizationMeter) Record(from, to sim.Time) {
	if to <= from {
		return
	}
	d := to - from
	m.busy += d
	// Attribute to the current window only the part inside it.
	if from < m.windowStart {
		from = m.windowStart
	}
	if to > from {
		m.windowBusy += to - from
	}
}

// Sample closes the current window at now, appends a utilization sample (in
// percent of one CPU over the window), and opens a new window.
func (m *UtilizationMeter) Sample(now sim.Time) {
	window := now - m.windowStart
	if window <= 0 {
		return
	}
	util := float64(m.windowBusy) / float64(window) * 100
	m.series.Add(now, util)
	m.windowStart = now
	m.windowBusy = 0
}

// Busy returns the total busy time recorded.
func (m *UtilizationMeter) Busy() sim.Time { return m.busy }

// MeanUtilization returns percent utilization over [start, now).
func (m *UtilizationMeter) MeanUtilization(start, now sim.Time) float64 {
	if now <= start {
		return 0
	}
	return float64(m.busy) / float64(now-start) * 100
}

// Series returns the sampled utilization time series.
func (m *UtilizationMeter) Series() *TimeSeries { return m.series }

// PlatformEfficiency computes the paper's Table 2 metric: application
// throughput divided by mean total CPU utilization expressed as a fraction
// (e.g. 68 req/s at 132.6% total utilization -> 68/1.326 = 51.28).
func PlatformEfficiency(throughput, totalUtilizationPercent float64) float64 {
	if totalUtilizationPercent <= 0 {
		return 0
	}
	return throughput / (totalUtilizationPercent / 100)
}
