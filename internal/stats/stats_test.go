package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty summary not all-zero: %v", s.String())
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample variance with n-1: sum of squared deviations = 32, /7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Min() != 3.5 || s.Max() != 3.5 || s.Mean() != 3.5 {
		t.Fatalf("single-observation summary wrong: %s", s.String())
	}
	if s.Variance() != 0 {
		t.Fatalf("Variance = %v for single observation", s.Variance())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 4, 7}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Merge(&b) // both empty
	if a.Count() != 0 {
		t.Fatal("merge of empties not empty")
	}
	b.Add(4)
	a.Merge(&b)
	if a.Count() != 1 || a.Mean() != 4 {
		t.Fatalf("merge into empty wrong: %s", a.String())
	}
	var c Summary
	a.Merge(&c) // merging empty into non-empty
	if a.Count() != 1 {
		t.Fatal("merging empty changed count")
	}
}

func TestSummaryMergeQuick(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		// Filter out NaN/Inf which have no meaningful summary semantics.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		cut := int(split) % len(clean)
		var a, b, all Summary
		for i, x := range clean {
			all.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		scale := math.Max(1, math.Abs(all.Mean()))
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-6*scale &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	if got := p.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := p.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	if got := p.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := p.Percentile(90); math.Abs(got-90.1) > 1e-9 {
		t.Fatalf("P90 = %v", got)
	}
	if p.Count() != 100 {
		t.Fatalf("Count = %d", p.Count())
	}
}

func TestSampleEmpty(t *testing.T) {
	var p Sample
	if p.Percentile(50) != 0 {
		t.Fatal("empty sample percentile != 0")
	}
}

func TestSamplePercentileMonotoneQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var p Sample
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				p.Add(x)
			}
		}
		if p.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 5 {
			v := p.Percentile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Bucket(0) != 2 { // 0 and 0.5
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(5) != 1 {
		t.Fatalf("bucket 5 = %d", h.Bucket(5))
	}
	if h.Bucket(9) != 1 {
		t.Fatalf("bucket 9 = %d", h.Bucket(9))
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Fatalf("bounds(3) = [%v, %v)", lo, hi)
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("Q0 = %v", h.Quantile(0))
	}
	if q := h.Quantile(1); q < 99 || q > 100 {
		t.Fatalf("Q1 = %v", q)
	}
	// Clamped inputs.
	if h.Quantile(-0.5) != h.Quantile(0) {
		t.Fatal("negative quantile not clamped")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
		func() { NewHistogram(10, 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	out := h.ASCII(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("ASCII missing full bar:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("ASCII line count wrong:\n%s", out)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("util")
	if ts.Name() != "util" {
		t.Fatalf("Name = %q", ts.Name())
	}
	ts.Add(1*sim.Second, 10)
	ts.Add(2*sim.Second, 30)
	ts.Add(3*sim.Second, 20)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.At(2500 * sim.Millisecond); got != 30 {
		t.Fatalf("At(2.5s) = %v", got)
	}
	if got := ts.At(500 * sim.Millisecond); got != 0 {
		t.Fatalf("At(before first) = %v", got)
	}
	if got := ts.At(10 * sim.Second); got != 20 {
		t.Fatalf("At(after last) = %v", got)
	}
	if ts.Max() != 30 {
		t.Fatalf("Max = %v", ts.Max())
	}
	if math.Abs(ts.Mean()-20) > 1e-9 {
		t.Fatalf("Mean = %v", ts.Mean())
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(5*sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	ts.Add(4*sim.Second, 2)
}

func TestTimeSeriesCSVAndSpark(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(1*sim.Second, 1)
	ts.Add(2*sim.Second, 2)
	csv := ts.CSV()
	if !strings.HasPrefix(csv, "1.000,1.000\n") {
		t.Fatalf("CSV = %q", csv)
	}
	if got := len(ts.Spark(8)); got != 8 {
		t.Fatalf("Spark width = %d", got)
	}
	empty := NewTimeSeries("e")
	if empty.Spark(5) != "" {
		t.Fatal("Spark of empty series not empty")
	}
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestUtilizationMeter(t *testing.T) {
	m := NewUtilizationMeter("dom", 0)
	// Busy half of the first second.
	m.Record(0, 500*sim.Millisecond)
	m.Sample(1 * sim.Second)
	if got := m.Series().At(1 * sim.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("window util = %v, want 50", got)
	}
	// Fully busy second window.
	m.Record(1*sim.Second, 2*sim.Second)
	m.Sample(2 * sim.Second)
	if got := m.Series().At(2 * sim.Second); math.Abs(got-100) > 1e-9 {
		t.Fatalf("window util = %v, want 100", got)
	}
	if got := m.MeanUtilization(0, 2*sim.Second); math.Abs(got-75) > 1e-9 {
		t.Fatalf("mean util = %v, want 75", got)
	}
	if m.Busy() != 1500*sim.Millisecond {
		t.Fatalf("Busy = %v", m.Busy())
	}
}

func TestUtilizationMeterIntervalSplitAcrossWindow(t *testing.T) {
	m := NewUtilizationMeter("dom", 0)
	m.Sample(1 * sim.Second) // empty first window
	// Interval started before the current window; only the in-window part counts.
	m.Record(500*sim.Millisecond, 1500*sim.Millisecond)
	m.Sample(2 * sim.Second)
	if got := m.Series().At(2 * sim.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("window util = %v, want 50", got)
	}
	// Total busy still counts the full interval.
	if m.Busy() != sim.Second {
		t.Fatalf("Busy = %v", m.Busy())
	}
}

func TestUtilizationMeterDegenerate(t *testing.T) {
	m := NewUtilizationMeter("dom", 0)
	m.Record(5, 5) // empty interval ignored
	m.Record(7, 3) // inverted interval ignored
	if m.Busy() != 0 {
		t.Fatalf("Busy = %v", m.Busy())
	}
	m.Sample(0) // zero-length window ignored
	if m.Series().Len() != 0 {
		t.Fatal("sample recorded for empty window")
	}
	if m.MeanUtilization(5, 5) != 0 {
		t.Fatal("mean utilization of empty interval not 0")
	}
}

func TestPlatformEfficiency(t *testing.T) {
	// The paper's Table 2: 68 req/s at 132.6% utilization = 51.28.
	got := PlatformEfficiency(68, 132.6)
	if math.Abs(got-51.28) > 0.01 {
		t.Fatalf("PlatformEfficiency = %v, want ~51.28", got)
	}
	if PlatformEfficiency(10, 0) != 0 {
		t.Fatal("zero utilization should yield 0")
	}
}
