package stats

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Point is one sample in a time series.
type Point struct {
	T sim.Time
	V float64
}

// TimeSeries records (time, value) samples, e.g. CPU utilization or IXP
// buffer occupancy over a run (paper Figure 7).
type TimeSeries struct {
	name   string
	points []Point
}

// NewTimeSeries returns an empty, named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{name: name} }

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Add appends a sample. Samples should be appended in non-decreasing time
// order; Add panics otherwise so that accidental reordering is caught.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].T {
		panic(fmt.Sprintf("stats: out-of-order sample at %v after %v", t, ts.points[n-1].T))
	}
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the raw samples. The caller must not modify the slice.
func (ts *TimeSeries) Points() []Point { return ts.points }

// At returns the most recent value at or before t, or 0 if there is none.
func (ts *TimeSeries) At(t sim.Time) float64 {
	lo, hi := 0, len(ts.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts.points[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return ts.points[lo-1].V
}

// Max returns the maximum value in the series, or 0 for an empty series.
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for i, p := range ts.points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the unweighted mean of the samples.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.points {
		sum += p.V
	}
	return sum / float64(len(ts.points))
}

// CSV renders the series as "seconds,value" lines.
func (ts *TimeSeries) CSV() string {
	var b strings.Builder
	for _, p := range ts.points {
		fmt.Fprintf(&b, "%.3f,%.3f\n", p.T.Seconds(), p.V)
	}
	return b.String()
}

// Spark renders a one-line sparkline-style view (for the harness output).
func (ts *TimeSeries) Spark(width int) string {
	if len(ts.points) == 0 || width <= 0 {
		return ""
	}
	levels := []byte(" .:-=+*#%@")
	max := ts.Max()
	if max <= 0 {
		max = 1
	}
	out := make([]byte, width)
	for i := range out {
		idx := i * len(ts.points) / width
		frac := ts.points[idx].V / max
		li := int(frac * float64(len(levels)-1))
		if li < 0 {
			li = 0
		}
		if li >= len(levels) {
			li = len(levels) - 1
		}
		out[i] = levels[li]
	}
	return string(out)
}
