// Package linttest is an analysistest-style harness for the lint suite:
// it runs one analyzer over a fixture package under testdata/src and
// compares the diagnostics against `// want "regex"` comments in the
// fixture source. It mirrors golang.org/x/tools/go/analysis/analysistest
// closely enough that fixtures would port unchanged.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRE extracts the quoted regular expressions of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package from testdata/src/<name>, applies the
// analyzer, and checks its diagnostics against the fixture's want
// comments. Unexpected diagnostics and unmatched expectations are test
// errors. The analyzer's AppliesTo scope is deliberately ignored so that
// fixtures exercise the analyzer logic itself.
func Run(t *testing.T, a *lint.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Helper()
			runOne(t, a, filepath.Join("testdata", "src", name))
		})
	}
}

func runOne(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}
	var diags []lint.Diagnostic
	if a.RunProgram != nil {
		p := &lint.Package{ImportPath: filepath.Base(dir), Dir: dir, Files: files, Pkg: pkg, Info: info}
		prog := lint.BuildProgram(fset, []*lint.Package{p})
		diags, err = prog.Run(a)
	} else {
		diags, err = lint.AnalyzePackage(fset, files, pkg, info, a)
	}
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)
	got := map[string][]string{} // "file:line" -> messages
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		got[key] = append(got[key], d.Message)
	}

	for key, rxs := range wants {
		msgs := got[key]
		for _, rx := range rxs {
			re, err := regexp.Compile(rx)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", key, rx, err)
			}
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s: no diagnostic matching %q (got %q)", key, rx, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s: unexpected extra diagnostics %q", key, msgs)
		}
		delete(got, key)
	}
	var leftover []string
	for key, msgs := range got {
		for _, m := range msgs {
			leftover = append(leftover, fmt.Sprintf("%s: %s", key, m))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("unexpected diagnostic: %s", l)
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

// collectWants maps "file:line" to the want regexes declared there.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					rx := m[1]
					if rx == "" {
						rx = m[2]
					}
					wants[key] = append(wants[key], rx)
				}
				if len(wants[key]) == 0 {
					t.Fatalf("%s: malformed want comment %q", key, c.Text)
				}
			}
		}
	}
	return wants
}
