package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked compilation unit. The
// in-package test files are folded into the same unit; external _test
// packages load as their own unit with an ImportPath suffixed "_test".
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// Loader loads packages for analysis. It shells out to `go list` for
// package metadata and type-checks everything from source with the
// standard library's source importer, so it works without a module cache
// or network access. The process working directory must be inside the
// module being analyzed (the source importer resolves module-local import
// paths through the go command).
type Loader struct {
	// IncludeTests folds *_test.go files (both in-package and external
	// test packages) into the analysis. Default true in NewLoader.
	IncludeTests bool

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		IncludeTests: true,
		fset:         fset,
		imp:          importer.ForCompiler(fset, "source", nil),
	}
}

// Fset returns the FileSet all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns (e.g. "./...") to packages and type-checks them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Dir == "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := append(append([]string(nil), lp.GoFiles...), lp.CgoFiles...)
		if l.IncludeTests {
			files = append(files, lp.TestGoFiles...)
		}
		p, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		if l.IncludeTests && len(lp.XTestGoFiles) > 0 {
			xp, err := l.check(lp.ImportPath+"_test", lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xp)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Run executes the analyzers over the loaded packages, honoring each
// analyzer's AppliesTo scope and the //lint:ignore suppression directives,
// and returns the surviving diagnostics sorted by position. The import
// path of an external test package is matched against AppliesTo without
// its "_test" suffix.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	var perPkg, program []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			program = append(program, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}
	merged := &directiveSet{byLine: make(map[string][]string)}
	for _, p := range pkgs {
		scopePath := strings.TrimSuffix(p.ImportPath, "_test")
		dirs := directives(fset, p.Files)
		all = append(all, dirs.malformed...)
		for key, names := range dirs.byLine {
			merged.byLine[key] = append(merged.byLine[key], names...)
		}
		for _, a := range perPkg {
			if a.AppliesTo != nil && !a.AppliesTo(scopePath) {
				continue
			}
			diags, err := AnalyzePackage(fset, p.Files, p.Pkg, p.Info, a)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				if !dirs.suppresses(fset.Position(d.Pos), a.Name) {
					all = append(all, d)
				}
			}
		}
	}
	if len(program) > 0 {
		prog := BuildProgram(fset, pkgs)
		for _, a := range program {
			diags, err := prog.Run(a)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				if !merged.suppresses(fset.Position(d.Pos), a.Name) {
					all = append(all, d)
				}
			}
		}
	}
	sortDiagnostics(fset, all)
	return all, nil
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)(\s+(.*))?$`)

type directiveSet struct {
	// byLine maps "filename:line" to the analyzer names silenced there.
	byLine    map[string][]string
	malformed []Diagnostic
}

func directives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ignoreRE.FindStringSubmatch(c.Text); m != nil {
					if strings.TrimSpace(m[3]) == "" {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      c.Pos(),
							Message:  "//lint:ignore directive is missing a reason",
							Analyzer: "lint",
						})
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					ds.byLine[key] = append(ds.byLine[key], strings.Split(m[1], ",")...)
					continue
				}
				if names, ok := parseAllow(c.Text); !ok {
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "//lint:allow directive must be a list of analyzer(reason) entries with non-empty reasons",
						Analyzer: "lint",
					})
				} else if len(names) > 0 {
					// An allow also suppresses same-line findings, so the
					// two directive forms compose: per-package analyzers
					// honor it exactly like an ignore.
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					ds.byLine[key] = append(ds.byLine[key], names...)
				}
			}
		}
	}
	return ds
}

// suppresses reports whether a directive on the diagnostic's line, or on
// the line directly above it, names the analyzer (or "all").
func (ds *directiveSet) suppresses(pos token.Position, analyzer string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range ds.byLine[fmt.Sprintf("%s:%d", pos.Filename, line)] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
