package lint

import (
	"sort"
	"strings"
)

// A Reach is the result of a deterministic breadth-first traversal of the
// call graph from a set of roots. It answers membership queries and renders
// a shortest call path for diagnostics.
type Reach struct {
	g *CallGraph

	// parent maps a reached node to the node it was first discovered from;
	// roots map to "". Because the BFS visits roots in sorted order and each
	// node's edges are sorted, the parent assignment — and therefore every
	// rendered path — is deterministic.
	parent map[string]string

	// order is the BFS discovery order.
	order []string
}

// ReachFrom runs a breadth-first traversal from the named roots (unknown
// names are ignored) and returns the reachable set. All edge kinds are
// followed: a referenced function may be invoked by whoever holds the value,
// so "ref" edges count for reachability.
func (g *CallGraph) ReachFrom(roots ...string) *Reach {
	r := &Reach{g: g, parent: make(map[string]string)}
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	var queue []string
	for _, root := range sorted {
		if g.nodes[root] == nil {
			continue
		}
		if _, seen := r.parent[root]; seen {
			continue
		}
		r.parent[root] = ""
		r.order = append(r.order, root)
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, e := range g.nodes[name].Edges {
			if _, seen := r.parent[e.Callee]; seen {
				continue
			}
			r.parent[e.Callee] = name
			r.order = append(r.order, e.Callee)
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Contains reports whether name was reached.
func (r *Reach) Contains(name string) bool {
	_, ok := r.parent[name]
	return ok
}

// Order returns the BFS discovery order. The caller must not mutate the
// returned slice.
func (r *Reach) Order() []string { return r.order }

// Path returns the discovery path from a root to name (inclusive on both
// ends), or nil if name was not reached.
func (r *Reach) Path(name string) []string {
	if _, ok := r.parent[name]; !ok {
		return nil
	}
	var rev []string
	for cur := name; cur != ""; cur = r.parent[cur] {
		rev = append(rev, cur)
	}
	path := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// PathString renders Path with shortened node names for diagnostics.
func (r *Reach) PathString(name string) string {
	path := r.Path(name)
	short := make([]string, len(path))
	for i, p := range path {
		short[i] = shortNodeName(p)
	}
	return strings.Join(short, " -> ")
}
