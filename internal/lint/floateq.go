package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point (or complex) operands in the
// statistics and report packages that feed golden files. Exact float
// equality is almost never the intended predicate there: a value that is
// "zero" after accumulation may be 1e-17, and a comparison that happens to
// hold on one platform's FMA contraction may fail on another, producing
// golden-file diffs that look like simulation regressions. Compare against
// a tolerance, or restructure so the sentinel is an integer (a count, an
// index) rather than a float. Comparisons where both operands are
// compile-time constants are exact by definition and stay allowed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point values in stats and report paths that feed golden files",
	AppliesTo: func(path string) bool {
		switch path {
		case "repro", "repro/internal/stats", "repro/cmd/reprobench":
			return true
		}
		return false
	},
	SkipTestFiles: true,
	Run:           runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass, be.X) && !isFloatExpr(pass, be.Y) {
				return true
			}
			if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(), "floating-point %s comparison; use a tolerance or an integer sentinel (exact float equality breaks golden-file reproducibility)", be.Op)
			return true
		})
	}
	return nil
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
