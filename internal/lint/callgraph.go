package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file implements the inter-procedural layer of the lint suite: a
// deterministic call graph over go/types. Nodes are functions (declared
// functions, methods, and function literals); edges are static calls,
// interface-method calls resolved against the module's own method sets,
// and "reference" edges for functions whose value escapes (passed as a
// callback, stored in a field, ...). The graph is conservative in the
// direction analyzers need: it may include edges that never execute, but
// a call that can happen is always represented.
//
// Determinism is load-bearing — the same source must produce byte-identical
// adjacency output on every run — so every collection the builder touches
// is sorted before use: packages by import path, declarations in file/source
// order, edges by (callee, position), and interface implementers by the
// implementing method's full name.

// A FuncNode is one function in the call graph.
type FuncNode struct {
	// Name is the node's unique identity: types.Func.FullName for declared
	// functions and methods (e.g. "(*repro/internal/flight.Recorder).Record",
	// "time.Now"), and "<enclosing>$N" for the N-th function literal in
	// source order inside an analyzed function.
	Name string

	// Pkg is the analyzed package containing the body, nil for functions
	// only ever seen as call targets (e.g. stdlib functions).
	Pkg *Package

	// File is the file containing the declaration, nil without a body.
	File *ast.File

	// Decl is the declaration, nil for function literals and body-less nodes.
	Decl *ast.FuncDecl

	// Lit is the literal for closure nodes, nil otherwise.
	Lit *ast.FuncLit

	// Pos is the declaration position (NoPos for body-less nodes).
	Pos token.Pos

	// Edges are the node's outgoing edges, sorted by (Callee, Pos) with
	// exact duplicates removed.
	Edges []Edge
}

// Body returns the node's function body, or nil.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// An Edge is one outgoing call-graph edge.
type Edge struct {
	// Callee is the target node's Name.
	Callee string
	// Pos is the call or reference site.
	Pos token.Pos
	// Kind is "call" for static calls, "iface" for interface-method calls
	// resolved to a concrete implementation, and "ref" for non-call
	// references (the function value escapes and may be invoked anywhere).
	Kind string
}

// A CallerRef is one incoming edge, used for caller walks.
type CallerRef struct {
	// Caller is the calling node's Name.
	Caller string
	// Pos is the call or reference site inside the caller.
	Pos token.Pos
	// Kind mirrors Edge.Kind.
	Kind string
}

// A CallGraph is the module-wide deterministic call graph.
type CallGraph struct {
	nodes   map[string]*FuncNode
	names   []string // sorted node names
	callers map[string][]CallerRef
	lits    map[*ast.FuncLit]string
}

// Node returns the named node, or nil.
func (g *CallGraph) Node(name string) *FuncNode { return g.nodes[name] }

// Names returns all node names in sorted order. The caller must not mutate
// the returned slice.
func (g *CallGraph) Names() []string { return g.names }

// LitName returns the node name assigned to a function literal seen during
// the build, and whether the literal was seen at all.
func (g *CallGraph) LitName(lit *ast.FuncLit) (string, bool) {
	name, ok := g.lits[lit]
	return name, ok
}

// Callers returns the incoming edges of the named node, sorted by
// (Caller, Pos). The caller must not mutate the returned slice.
func (g *CallGraph) Callers(name string) []CallerRef { return g.callers[name] }

// Adjacency renders the graph as sorted "caller -> callee" lines, one edge
// pair per line (duplicate positions collapsed). Two builds of the same
// source produce byte-identical output; the determinism test pins this.
func (g *CallGraph) Adjacency() string {
	var b strings.Builder
	for _, name := range g.names {
		prev := ""
		for _, e := range g.nodes[name].Edges {
			if e.Callee == prev {
				continue
			}
			prev = e.Callee
			fmt.Fprintf(&b, "%s -> %s\n", name, e.Callee)
		}
	}
	return b.String()
}

// WriteDOT writes the graph in Graphviz DOT form with sorted nodes and
// edges. Nodes with bodies in analyzed packages are drawn solid; external
// targets (stdlib and body-less references) are drawn dashed.
func (g *CallGraph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph callgraph {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR;"); err != nil {
		return err
	}
	for _, name := range g.names {
		attr := ""
		if g.nodes[name].Body() == nil {
			attr = " [style=dashed]"
		}
		if _, err := fmt.Fprintf(w, "  %q%s;\n", name, attr); err != nil {
			return err
		}
	}
	for _, name := range g.names {
		prev := ""
		for _, e := range g.nodes[name].Edges {
			if e.Callee == prev {
				continue
			}
			prev = e.Callee
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", name, e.Callee); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// BuildGraph constructs the call graph for the given packages. Packages are
// processed in import-path order regardless of input order.
func BuildGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	b := &builder{
		fset: fset,
		g: &CallGraph{
			nodes:   make(map[string]*FuncNode),
			callers: make(map[string][]CallerRef),
			lits:    make(map[*ast.FuncLit]string),
		},
		implCache: make(map[implKey][]string),
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	b.pkgs = sorted
	b.collectNamedTypes()
	for _, p := range sorted {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := b.addNode(b.declName(p, fd), p, f)
				node.Decl = fd
				node.Pos = fd.Pos()
				b.walkBody(node, fd.Body)
			}
		}
	}
	b.finalize()
	return b.g
}

type implKey struct {
	iface  *types.Interface
	method string
}

type builder struct {
	fset *token.FileSet
	g    *CallGraph
	pkgs []*Package

	// namedTypes are all named non-interface types declared at package scope
	// in the analyzed packages, sorted by full name; interface-method calls
	// resolve against this set.
	namedTypes []*types.Named
	implCache  map[implKey][]string

	// litSeq numbers function literals per enclosing declared function.
	litSeq map[string]int
}

// fullFuncName names a types.Func the way the graph does.
func fullFuncName(fn *types.Func) string { return fn.FullName() }

// declName computes the node name for a declared function or method.
func (b *builder) declName(p *Package, fd *ast.FuncDecl) string {
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		return fullFuncName(fn)
	}
	return p.Pkg.Path() + "." + fd.Name.Name
}

func (b *builder) addNode(name string, p *Package, f *ast.File) *FuncNode {
	// Multiple bodies can share a FullName (e.g. several func init()). Keep
	// every body analyzable by suffixing later ones deterministically.
	if existing, ok := b.g.nodes[name]; ok && existing.Body() != nil {
		for i := 2; ; i++ {
			alt := fmt.Sprintf("%s#%d", name, i)
			if n, ok := b.g.nodes[alt]; !ok || n.Body() == nil {
				name = alt
				break
			}
		}
	}
	n, ok := b.g.nodes[name]
	if !ok {
		n = &FuncNode{Name: name}
		b.g.nodes[name] = n
	}
	n.Pkg = p
	n.File = f
	return n
}

// target ensures a body-less placeholder node exists for an edge target.
func (b *builder) target(name string) {
	if _, ok := b.g.nodes[name]; !ok {
		b.g.nodes[name] = &FuncNode{Name: name}
	}
}

func (b *builder) edge(from *FuncNode, callee string, pos token.Pos, kind string) {
	b.target(callee)
	from.Edges = append(from.Edges, Edge{Callee: callee, Pos: pos, Kind: kind})
}

func (b *builder) collectNamedTypes() {
	for _, p := range b.pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() { // Scope.Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// walkBody scans one function body for outgoing edges. Function literals
// become their own nodes (named "<enclosing>$N" in source order) with a ref
// edge from the enclosing node, and are scanned recursively.
func (b *builder) walkBody(n *FuncNode, body *ast.BlockStmt) {
	p := n.Pkg
	// funExprs marks expressions consumed as the Fun of a CallExpr (and the
	// Sel ident inside a selector Fun) so the reference pass below does not
	// double-count direct calls as escapes.
	funExprs := make(map[ast.Node]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			litName := b.litName(n, x)
			lit := b.addNode(litName, p, n.File)
			lit.Lit = x
			lit.Pos = x.Pos()
			b.edge(n, litName, x.Pos(), "ref")
			b.walkBody(lit, x.Body)
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			funExprs[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				funExprs[sel.Sel] = true
			}
			b.callEdges(n, x, fun)
			return true
		case *ast.Ident:
			if funExprs[x] {
				return true
			}
			if fn, ok := p.Info.Uses[x].(*types.Func); ok {
				b.edge(n, fullFuncName(fn), x.Pos(), "ref")
			}
			return true
		case *ast.SelectorExpr:
			if funExprs[x] {
				return true
			}
			// A method value (x.M with M a method) escapes like a func
			// value; resolve it the same way a call would, including
			// interface fan-out.
			if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				funExprs[x.Sel] = true // don't re-add via the Ident case
				b.methodEdges(n, x, sel, x.Pos(), "ref")
			}
			return true
		}
		return true
	})
}

// litName assigns "<enclosing>$N" names to function literals in source order.
func (b *builder) litName(enclosing *FuncNode, lit *ast.FuncLit) string {
	if b.litSeq == nil {
		b.litSeq = make(map[string]int)
	}
	b.litSeq[enclosing.Name]++
	name := fmt.Sprintf("%s$%d", enclosing.Name, b.litSeq[enclosing.Name])
	b.g.lits[lit] = name
	return name
}

// callEdges adds edges for one call expression.
func (b *builder) callEdges(n *FuncNode, call *ast.CallExpr, fun ast.Expr) {
	p := n.Pkg
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			b.edge(n, fullFuncName(fn), call.Lparen, "call")
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				b.methodEdges(n, fun, sel, call.Lparen, "call")
			}
			return
		}
		// Package-qualified call (pkg.F) has no Selection entry.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			b.edge(n, fullFuncName(fn), call.Lparen, "call")
		}
	}
}

// methodEdges adds edges for a method selection. Interface methods fan out
// to every analyzed named type implementing the interface; methods of
// interfaces declared outside the analyzed packages additionally keep the
// abstract edge so reachability still sees the call.
func (b *builder) methodEdges(n *FuncNode, sel *ast.SelectorExpr, selection *types.Selection, pos token.Pos, kind string) {
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		b.edge(n, fullFuncName(fn), pos, kind)
		for _, impl := range b.implementers(iface, fn) {
			b.edge(n, impl, pos, "iface")
		}
		return
	}
	b.edge(n, fullFuncName(fn), pos, kind)
}

// implementers resolves an interface method to the corresponding concrete
// methods of every analyzed named type that implements the interface,
// sorted by name. Results are memoized per (interface, method name).
func (b *builder) implementers(iface *types.Interface, m *types.Func) []string {
	key := implKey{iface: iface, method: m.Name()}
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []string
	for _, named := range b.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fullFuncName(fn))
		}
	}
	sort.Strings(impls)
	impls = dedupSorted(impls)
	b.implCache[key] = impls
	return impls
}

// finalize sorts node names and edges and builds the reverse adjacency.
func (b *builder) finalize() {
	g := b.g
	g.names = make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		g.names = append(g.names, name)
	}
	sort.Strings(g.names)
	for _, name := range g.names {
		n := g.nodes[name]
		sort.Slice(n.Edges, func(i, j int) bool {
			if n.Edges[i].Callee != n.Edges[j].Callee {
				return n.Edges[i].Callee < n.Edges[j].Callee
			}
			return n.Edges[i].Pos < n.Edges[j].Pos
		})
		n.Edges = dedupEdges(n.Edges)
	}
	for _, name := range g.names {
		for _, e := range g.nodes[name].Edges {
			g.callers[e.Callee] = append(g.callers[e.Callee], CallerRef{Caller: name, Pos: e.Pos, Kind: e.Kind})
		}
	}
	for callee := range g.callers {
		refs := g.callers[callee]
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].Caller != refs[j].Caller {
				return refs[i].Caller < refs[j].Caller
			}
			return refs[i].Pos < refs[j].Pos
		})
	}
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupEdges(edges []Edge) []Edge {
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e.Callee != edges[i-1].Callee || e.Pos != edges[i-1].Pos {
			out = append(out, e)
		}
	}
	return out
}

// staticCallee resolves the statically-known callee of a call expression,
// or nil for dynamic calls (function values, builtins, conversions).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shortNodeName compresses a node name for diagnostics by dropping the
// module-internal path prefixes: "(*repro/internal/sim.Simulator).Step"
// renders as "(*sim.Simulator).Step".
func shortNodeName(name string) string {
	name = strings.ReplaceAll(name, "repro/internal/", "")
	return strings.ReplaceAll(name, "repro/", "")
}
