package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc flags allocation-causing constructs in functions reachable from
// the simulation's hot roots: the event-dispatch loop and the flight
// recorder's per-event path. ROADMAP item 2 (order-of-magnitude event
// throughput) dies by a thousand fmt.Sprintf cuts; this analyzer makes each
// one visible at review time instead of in a profile months later.
//
// Hot roots are the sim dispatch entry points and flight.Recorder.Record,
// plus any function whose doc comment carries //lint:hotpath. Within the
// reachable set, the analyzer reports:
//
//   - fmt.Sprint*/Fprint*/Errorf/Append* calls (format machinery allocates)
//   - non-constant string concatenation (+ and +=)
//   - string <-> []byte/[]rune conversions (copy per call)
//   - make, new, map/slice composite literals, &composite literals
//   - function literals (closure allocation at creation)
//   - interface-boxing arguments (non-pointer concrete value passed as an
//     interface parameter)
//   - calls to Append-style helpers with a nil destination (a fresh buffer
//     per call; pass a reusable scratch buffer)
//   - append to a struct field or package variable in a function that never
//     consults cap() of that target (unbounded growth on the hot path)
//
// A finding is silenced — and documented — with
// //lint:allow hotalloc(reason) on or above the construct.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "Reports allocation-causing constructs (fmt formatting, string concatenation and conversion, " +
		"unbounded append, interface boxing, closures, make/new and composite literals) in functions " +
		"reachable from the sim event-dispatch and flight-record hot roots.",
	SkipTestFiles: true,
	RunProgram:    runHotAlloc,
}

// hotAllocRoots are the built-in hot entry points. Everything reachable
// from these runs once per simulated event.
var hotAllocRoots = []string{
	"(*repro/internal/sim.Simulator).Step",
	"(*repro/internal/sim.Simulator).Run",
	"(*repro/internal/sim.Simulator).RunUntil",
	"(*repro/internal/flight.Recorder).Record",
}

func runHotAlloc(pass *ProgramPass) error {
	g := pass.Graph
	var roots []string
	for _, name := range hotAllocRoots {
		if g.Node(name) != nil {
			roots = append(roots, name)
		}
	}
	for _, name := range g.Names() {
		n := g.Node(name)
		if n.Decl != nil && hotpathDirective(n.Decl) {
			roots = append(roots, name)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.ReachFrom(roots...)
	for _, name := range reach.Order() {
		n := g.Node(name)
		if n.Body() == nil || n.Pkg == nil {
			continue
		}
		if pass.InTestFile(n.Pos) {
			continue
		}
		scanHotFunc(pass, n, reach)
	}
	return nil
}

// scanHotFunc reports allocation constructs in one reachable function body.
// Nested function literals are skipped: they are their own graph nodes and
// are scanned separately if reachable (and reported as closure allocations
// where they appear).
func scanHotFunc(pass *ProgramPass, n *FuncNode, reach *Reach) {
	info := n.Pkg.Info
	capTargets := capGuardTargets(n.Body())
	emit := func(pos token.Pos, desc string) {
		if pass.Allowed(pos) {
			return
		}
		pass.Reportf(pos, "%s in hot function %s (reachable: %s); hoist it off the per-event path or annotate //lint:allow hotalloc(reason)",
			desc, shortNodeName(n.Name), reach.PathString(n.Name))
	}
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			emit(x.Pos(), "closure literal allocates")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					emit(x.Pos(), "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			switch typeOf(info, x).Underlying().(type) {
			case *types.Map:
				emit(x.Pos(), "map literal allocates")
			case *types.Slice:
				emit(x.Pos(), "slice literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstantString(info, x) {
				emit(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(typeOf(info, x.Lhs[0])) {
				emit(x.TokPos, "string concatenation allocates")
			}
			checkHotAppend(info, x, capTargets, emit)
		case *ast.CallExpr:
			checkHotCall(info, x, emit)
		}
		return true
	})
}

// typeOf is a nil-safe types lookup that always returns a usable type.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNonConstantString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

// checkHotCall reports allocation behavior attributable to the call itself:
// fmt formatting, string conversions, make/new, nil-destination append
// helpers, and interface boxing of arguments.
func checkHotCall(info *types.Info, call *ast.CallExpr, emit func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) where the callee position is a type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := typeOf(info, call.Args[0])
		if conversionCopies(dst, src) {
			emit(call.Pos(), "string conversion copies its operand")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				emit(call.Pos(), "make allocates")
			case "new":
				emit(call.Pos(), "new allocates")
			}
			return
		}
	}

	fn := staticCallee(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		emit(call.Pos(), "fmt."+fn.Name()+" formats and allocates")
		return
	}

	// Append-style helpers called with a nil destination build a fresh
	// buffer per call; the idiomatic hot-path fix is a reused scratch slice.
	if fn != nil && strings.Contains(fn.Name(), "ppend") && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
			emit(call.Pos(), fn.Name()+"(nil, ...) builds a fresh buffer per call")
		}
	}

	checkBoxing(info, call, emit)
}

// checkBoxing reports concrete non-pointer values passed to interface
// parameters: each such argument is boxed, which usually heap-allocates.
// Pointer-shaped values (pointers, maps, channels, funcs) box without
// allocating and are not reported.
func checkBoxing(info *types.Info, call *ast.CallExpr, emit func(token.Pos, string)) {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg is already a slice, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := param.Underlying().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		at := typeOf(info, arg)
		if at == types.Typ[types.Invalid] || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		emit(arg.Pos(), "argument boxed into interface parameter")
	}
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func conversionCopies(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// capGuardTargets collects the rendered operands of every cap(...) call in
// the body; an append to one of these targets is considered
// capacity-guarded (the flight recorder's ring is the canonical example:
// it appends only under a len==cap spill check).
func capGuardTargets(body *ast.BlockStmt) map[string]bool {
	targets := make(map[string]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" && len(call.Args) == 1 {
			targets[exprString(call.Args[0])] = true
		}
		return true
	})
	return targets
}

// checkHotAppend reports `x.f = append(x.f, ...)` (or a package-level
// variable destination) when the function never inspects cap of the same
// target: on a per-event path that is unbounded amortized growth.
func checkHotAppend(info *types.Info, as *ast.AssignStmt, capTargets map[string]bool, emit func(token.Pos, string)) {
	call, ok := singleAppendAssign(as)
	if !ok || len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(as.Lhs[0])
	switch d := dst.(type) {
	case *ast.SelectorExpr:
		// Field or qualified-var destination; fall through to the guard check.
		if sel, ok := info.Selections[d]; ok && sel.Kind() != types.FieldVal {
			return
		}
	case *ast.Ident:
		v, ok := info.Uses[d].(*types.Var)
		if !ok || v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
			return // local variable: growth is bounded by the function's own lifetime
		}
	default:
		return
	}
	if capTargets[exprString(dst)] {
		return
	}
	emit(as.Pos(), "append to "+exprString(dst)+" grows without a capacity guard")
}
