package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// boundedqNameRE matches struct-field names that denote an admission queue
// or backlog. Anything matching it is expected to be bounded: growth must
// be guarded by a capacity comparison so that overload degrades into
// counted shedding instead of unbounded memory growth and latency.
var boundedqNameRE = regexp.MustCompile(`(?i)(queue|backlog|pending|waiting|inbox|mailbox|pkts)`)

// boundedqCapRE matches identifiers that plausibly carry a capacity bound;
// a comparison against one of these counts as a guard even when it bounds
// a companion quantity (e.g. q.bytes > q.capBytes protecting q.pkts).
var boundedqCapRE = regexp.MustCompile(`(?i)(cap|limit|max|bound|depth|budget|watermark)`)

// boundedqGateRE matches method names that report fullness — calling one
// (h.RingFull(), q.Overflowing()) is backpressure, hence a guard.
var boundedqGateRE = regexp.MustCompile(`(?i)(full|overflow)`)

// BoundedQ flags `x.field = append(x.field, ...)` where the field is a
// slice named like a queue but no capacity check guards the growth. The
// overload-control plane (docs/overload.md) rests on every admission queue
// being bounded: an unguarded append is the exact bug that turns a traffic
// spike into collapse. A guard is an ordering comparison involving
// len/cap of a queue-like field or a capacity-named identifier, or a call
// to a fullness predicate — in the enclosing function, or (for bounds
// enforced at a distance, like HostStack.RingFull) anywhere in the
// package. Queues that are intentionally unbounded should use a name the
// pattern does not match, or carry a //lint:ignore with the reason.
var BoundedQ = &Analyzer{
	Name:          "boundedq",
	Doc:           "flags appends to queue-like slice fields with no capacity comparison guarding growth in the function or package",
	AppliesTo:     boundedqScope,
	SkipTestFiles: true,
	Run:           runBoundedQ,
}

// boundedqScope limits the check to the data-plane and admission packages.
// The xen scheduler's runqueues are deliberately exempt: their population
// is bounded by the (fixed) number of domains, not by an admission cap.
func boundedqScope(path string) bool {
	for _, p := range []string{
		"repro/internal/rubis",
		"repro/internal/ixp",
		"repro/internal/netsim",
		"repro/internal/overload",
		"repro/internal/core",
		"repro/internal/pcie",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runBoundedQ(pass *Pass) error {
	// Package-wide pass: field names whose len/cap feeds an ordering
	// comparison anywhere (bounds enforced at a distance).
	guarded := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if cmp, ok := n.(*ast.BinaryExpr); ok && isOrderingOp(cmp.Op) {
				for _, name := range lenCapOperandNames(cmp) {
					guarded[name] = true
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasGuard := funcHasBoundGuard(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				sel, ok := queueAppendTarget(pass, as)
				if !ok || hasGuard || guarded[sel.Sel.Name] {
					return true
				}
				pass.Reportf(as.Pos(), "append to queue-like field %s is unguarded: no capacity comparison bounds its growth in this function or package; add a cap check with a shed/drop counter (see docs/overload.md) or rename the field", exprString(sel))
				return true
			})
		}
	}
	return nil
}

// queueAppendTarget matches `x.f = append(x.f, ...)` where f is a
// queue-named slice field, returning the destination selector.
func queueAppendTarget(pass *Pass, as *ast.AssignStmt) (*ast.SelectorExpr, bool) {
	if _, ok := singleAppendAssign(as); !ok {
		return nil, false
	}
	sel, ok := as.Lhs[0].(*ast.SelectorExpr)
	if !ok || !boundedqNameRE.MatchString(sel.Sel.Name) {
		return nil, false
	}
	if t := pass.TypeOf(sel); t != nil {
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return nil, false
		}
	}
	return sel, true
}

// funcHasBoundGuard reports whether body contains a capacity guard: an
// ordering comparison touching len/cap of a queue-like field or a
// capacity-named identifier, or a call to a fullness predicate.
func funcHasBoundGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !isOrderingOp(n.Op) {
				return true
			}
			for _, name := range lenCapOperandNames(n) {
				if boundedqNameRE.MatchString(name) {
					found = true
					return false
				}
			}
			if exprMentionsCapName(n.X) || exprMentionsCapName(n.Y) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && boundedqGateRE.MatchString(sel.Sel.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isOrderingOp reports whether op compares magnitudes. Equality is
// excluded: `len(q) == 0` is an emptiness test, not a bound.
func isOrderingOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	default:
		return false
	}
}

// lenCapOperandNames returns the terminal names of every len(x)/cap(x)
// argument appearing under cmp's operands (e.g. "rxBacklog" from
// len(h.rxBacklog)+len(h.staging) >= h.ringCap).
func lenCapOperandNames(cmp *ast.BinaryExpr) []string {
	var names []string
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		ast.Inspect(side, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || (fn.Name != "len" && fn.Name != "cap") || len(call.Args) != 1 {
				return true
			}
			switch arg := call.Args[0].(type) {
			case *ast.SelectorExpr:
				names = append(names, arg.Sel.Name)
			case *ast.Ident:
				names = append(names, arg.Name)
			}
			return true
		})
	}
	return names
}

// exprMentionsCapName reports whether any identifier under e is named like
// a capacity bound.
func exprMentionsCapName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && boundedqCapRE.MatchString(id.Name) {
			found = true
		}
		return !found
	})
	return found
}
