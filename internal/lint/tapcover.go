package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TapCover enforces the "every decision is observable" invariant: each
// coordination decision site must have a flight-recorder tap close enough
// that the decision cannot execute without appearing in the flight log.
// Without this, a new policy (a fresh Tune emitter, a new shed knob) can
// silently bypass the record/replay verification that pins coordination
// behavior.
//
// Decision sites are:
//
//   - composite literals of core.Message with Kind KindTune, KindTrigger,
//     or KindShed (emission of a coordination action);
//   - writes to the actuation state listed in tapDecisionFields (credit
//     weights, breaker state, shed rates, IXP thread/poll provisioning);
//   - writes to any struct field annotated //lint:decision.
//
// A site is covered when the enclosing function, or one of its direct
// same-package callees, calls Record on a *Recorder. Uncovered sites are
// walked up through same-package callers: if every caller path passes
// through a tapping function the site is covered; otherwise the analyzer
// reports at the entry points that can reach the decision untapped.
// Sanctioned untapped sites carry //lint:allow tapcover(reason).
var TapCover = &Analyzer{
	Name: "tapcover",
	Doc: "Reports coordination decision sites (Tune/Trigger/Shed emission, weight, breaker, shed-rate, " +
		"and IXP provisioning writes) that can execute without a flight-recorder tap on the call path.",
	SkipTestFiles: true,
	RunProgram:    runTapCover,
}

// tapDecisionFields is the actuation-state table: writes to these fields
// are coordination decisions. Additions ride along with new subsystems via
// //lint:decision annotations; this table pins the ones the paper's
// coordination loop already actuates.
var tapDecisionFields = map[string]string{
	"repro/internal/xen.Domain.weight":      "credit-weight application",
	"repro/internal/overload.Breaker.state": "breaker transition",
	"repro/internal/overload.Shedder.rate":  "shed-rate change",
	"repro/internal/ixp.FlowQueue.threads":  "flow dequeue-thread provisioning",
	"repro/internal/ixp.FlowQueue.poll":     "flow poll-interval change",
	"repro/internal/ixp.rxStage.threads":    "classifier-thread provisioning",
}

// tapMessageKinds are the core.Message kinds whose emission is a
// coordination decision. Heartbeats and acks are bookkeeping, not decisions.
var tapMessageKinds = map[string]string{
	"KindTune":    "Tune emission",
	"KindTrigger": "Trigger emission",
	"KindShed":    "Shed emission",
}

type tapSite struct {
	pos  token.Pos
	desc string
}

func runTapCover(pass *ProgramPass) error {
	g := pass.Graph

	// //lint:decision-annotated fields join the built-in table.
	fields := make(map[string]string, len(tapDecisionFields))
	for k, v := range tapDecisionFields {
		fields[k] = v
	}
	collectDecisionFields(pass, fields)

	taps := make(map[string]bool)
	nodeTaps := func(name string) bool {
		if v, ok := taps[name]; ok {
			return v
		}
		v := scanTaps(g.Node(name))
		taps[name] = v
		return v
	}
	// covered reports whether fn taps itself or in a direct callee of the
	// same package — close enough that the decision cannot run untapped.
	covered := func(name string) bool {
		n := g.Node(name)
		if n == nil || n.Body() == nil {
			return false
		}
		if nodeTaps(name) {
			return true
		}
		for _, e := range n.Edges {
			c := g.Node(e.Callee)
			if c != nil && c.Pkg == n.Pkg && nodeTaps(e.Callee) {
				return true
			}
		}
		return false
	}

	reported := make(map[string]bool)
	for _, name := range g.Names() {
		n := g.Node(name)
		if n.Body() == nil || n.Pkg == nil {
			continue
		}
		sites := scanDecisionSites(pass, n, fields)
		if len(sites) == 0 || covered(name) {
			continue
		}
		for _, site := range sites {
			if pass.InTestFile(site.pos) || pass.Allowed(site.pos) {
				continue
			}
			walkUncovered(pass, g, nodeTaps, reported, name, site)
		}
	}
	return nil
}

// walkUncovered ascends from the decision-holding function through
// same-package callers, reporting at every entry point whose path down to
// the decision never taps. A function is an entry point when it has no
// non-test same-package callers, or when it is called from another package
// (a cross-package caller can always reach the decision directly, so a
// same-package caller cycle cannot hide it). The direct-callee grace
// applies only at the decision site itself (the recordWeight-helper
// idiom); an ancestor shields a path only by tapping in its own body,
// otherwise an unrelated tap two hops away (e.g. Route's quarantine
// recording) would hide a silent decision below it. Calls from _test.go
// are not escape routes: every exported API has test callers, and a test
// harness reaching a decision does not log it in production runs.
func walkUncovered(pass *ProgramPass, g *CallGraph, tapsSelf func(string) bool, reported map[string]bool, fname string, site tapSite) {
	visited := map[string]bool{}
	var rec func(name string, viaPos token.Pos)
	rec = func(name string, viaPos token.Pos) {
		if visited[name] {
			return
		}
		visited[name] = true
		n := g.Node(name)
		var inPkg []CallerRef
		external := false
		for _, cr := range g.Callers(name) {
			c := g.Node(cr.Caller)
			if c == nil || c.Body() == nil || pass.InTestFile(cr.Pos) {
				continue
			}
			if n != nil && c.Pkg == n.Pkg {
				inPkg = append(inPkg, cr)
			} else {
				external = true
			}
		}
		if len(inPkg) == 0 || external {
			emitUncovered(pass, reported, name, fname, site, viaPos)
			if len(inPkg) == 0 {
				return
			}
		}
		for _, cr := range inPkg {
			if tapsSelf(cr.Caller) {
				continue
			}
			rec(cr.Caller, cr.Pos)
		}
	}
	rec(fname, site.pos)
}

func emitUncovered(pass *ProgramPass, reported map[string]bool, entry, fname string, site tapSite, viaPos token.Pos) {
	if pass.InTestFile(viaPos) || pass.Allowed(viaPos) {
		return
	}
	key := fmt.Sprintf("%v:%v:%s", viaPos, site.pos, entry)
	if reported[key] {
		return
	}
	reported[key] = true
	if entry == fname {
		pass.Reportf(site.pos,
			"%s has no flight-recorder tap in %s or a direct callee; record a flight event or annotate //lint:allow tapcover(reason)",
			site.desc, shortNodeName(fname))
		return
	}
	pass.Reportf(viaPos,
		"call path from %s reaches %s in %s (%s) with no flight-recorder tap; tap the decision or annotate //lint:allow tapcover(reason)",
		shortNodeName(entry), site.desc, shortNodeName(fname), pass.Fset.Position(site.pos))
}

// collectDecisionFields adds //lint:decision-annotated struct fields to the
// decision table as "pkgpath.Type.field".
func collectDecisionFields(pass *ProgramPass, fields map[string]string) {
	for _, p := range pass.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				ts, ok := x.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !decisionDirective(field) {
						continue
					}
					for _, name := range field.Names {
						key := p.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
						fields[key] = "decision-annotated write to " + ts.Name.Name + "." + name.Name
					}
				}
				return true
			})
		}
	}
}

// scanTaps reports whether the node's body calls Record on a value whose
// named type is Recorder (the flight recorder, or a fixture stand-in).
func scanTaps(n *FuncNode) bool {
	if n == nil || n.Body() == nil || n.Pkg == nil {
		return false
	}
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Record" {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		if namedTypeName(selection.Recv()) == "Recorder" {
			found = true
			return false
		}
		return true
	})
	return found
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// scanDecisionSites finds the coordination decision sites in one body:
// decision-field writes and coordination Message literals. Nested literals
// are their own nodes and excluded.
func scanDecisionSites(pass *ProgramPass, n *FuncNode, fields map[string]string) []tapSite {
	info := n.Pkg.Info
	var sites []tapSite
	addWrite := func(e ast.Expr, pos token.Pos) {
		if desc, ok := fields[fieldKey(info, e)]; ok {
			sites = append(sites, tapSite{pos: pos, desc: desc})
		}
	}
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				addWrite(lhs, x.TokPos)
			}
		case *ast.IncDecStmt:
			addWrite(x.X, x.TokPos)
		case *ast.CompositeLit:
			if desc, ok := coordMessageKind(info, x); ok {
				sites = append(sites, tapSite{pos: x.Pos(), desc: desc})
			}
		}
		return true
	})
	return sites
}

// fieldKey resolves an assignment destination to "pkgpath.Type.field",
// unwrapping index expressions (sh.rate[i] writes field rate), or "".
func fieldKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// coordMessageKind reports whether a composite literal builds a
// coordination core.Message (Kind Tune/Trigger/Shed).
func coordMessageKind(info *types.Info, cl *ast.CompositeLit) (string, bool) {
	t := typeOf(info, cl)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Message" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "repro/internal/core" {
		return "", false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		var obj types.Object
		switch v := ast.Unparen(kv.Value).(type) {
		case *ast.Ident:
			obj = info.Uses[v]
		case *ast.SelectorExpr:
			obj = info.Uses[v.Sel]
		}
		if obj == nil {
			return "", false
		}
		if desc, ok := tapMessageKinds[obj.Name()]; ok {
			return desc, true
		}
		return "", false
	}
	return "", false
}
