package lint

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the package-level time functions that read or depend
// on the wall clock. time.Duration arithmetic and the duration constants
// are deterministic and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// DetNonDet flags nondeterminism sources inside the simulation packages:
// wall-clock time (time.Now and friends) and math/rand. The simulation's
// entire evidence chain — golden files, reprobench, EXPERIMENTS.md — rests
// on bit-for-bit reproducibility, so all time must come from the simulated
// clock (internal/sim.Simulator) and all randomness from the seeded,
// Go-release-stable PRNG (internal/sim.Rand).
var DetNonDet = &Analyzer{
	Name:          "detnondet",
	Doc:           "flags wall-clock time and math/rand inside simulation packages, which must use internal/sim's seeded clock and PRNG",
	AppliesTo:     inRepro,
	SkipTestFiles: true,
	Run:           runDetNonDet,
}

func runDetNonDet(pass *Pass) error {
	for _, file := range pass.Files {
		file := file
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s in a simulation package; use the seeded repro/internal/sim.Rand instead", path)
			case "time":
				if imp.Name != nil && imp.Name.Name == "." {
					pass.Reportf(imp.Pos(), "dot-import of time hides wall-clock calls from this analyzer; import it qualified")
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.PkgNameOf(file, sel.X) != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulation package; use the simulated clock (repro/internal/sim.Simulator) instead", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
