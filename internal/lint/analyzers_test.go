package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDetNonDet(t *testing.T) { linttest.Run(t, lint.DetNonDet, "detnondet", "scenariogen") }

func TestMapOrder(t *testing.T) { linttest.Run(t, lint.MapOrder, "maporder", "scenarioenc") }

func TestKindSwitch(t *testing.T) { linttest.Run(t, lint.KindSwitch, "kindswitch") }

func TestFloatEq(t *testing.T) { linttest.Run(t, lint.FloatEq, "floateq") }

func TestPanicFree(t *testing.T) { linttest.Run(t, lint.PanicFree, "panicfree") }

func TestBoundedQ(t *testing.T) { linttest.Run(t, lint.BoundedQ, "boundedq") }

func TestHotAlloc(t *testing.T) { linttest.Run(t, lint.HotAlloc, "hotalloc") }

func TestSimTime(t *testing.T) { linttest.Run(t, lint.SimTime, "simtime") }

func TestTapCover(t *testing.T) { linttest.Run(t, lint.TapCover, "tapcover") }
