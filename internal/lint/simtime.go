package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SimTime closes the cross-package hole detnondet cannot see: detnondet
// flags a time.Now() only in the package that imports "time", but a
// callback scheduled on the simulator can reach wall-clock or global-rand
// state through any number of intermediate calls in other packages, and
// one such call silently breaks run-for-run determinism.
//
// The analyzer finds every call site that schedules a callback on the
// simulator (Simulator.At, .After, .Ticker), resolves the callback to a
// call-graph node (function literal, named function, or method value), and
// walks everything reachable from it. If the reachable set contains a
// wall-clock call (the same list detnondet uses) or a math/rand global,
// the scheduling site is reported with the offending call path.
//
// Sanctioned sources are cut at the taint site with
// //lint:allow simtime(reason): an allowed time.Now() poisons nobody.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "Reports simulator-scheduled callbacks that transitively reach wall-clock time or global " +
		"math/rand state, which detnondet's per-file view cannot see across package boundaries.",
	SkipTestFiles: true,
	RunProgram:    runSimTime,
}

// simSchedulerFuncs maps simulator scheduling entry points to the argument
// index of the callback they capture.
var simSchedulerFuncs = map[string]int{
	"(*repro/internal/sim.Simulator).At":     1,
	"(*repro/internal/sim.Simulator).After":  1,
	"(*repro/internal/sim.Simulator).Ticker": 1,
}

// simTaint is one wall-clock/global-rand use inside a function body.
type simTaint struct {
	pos  token.Pos
	desc string
}

func runSimTime(pass *ProgramPass) error {
	g := pass.Graph

	// Pass 1: per-node taint — direct wall-clock or math/rand use, unless
	// the source itself carries //lint:allow simtime(reason).
	taints := make(map[string][]simTaint)
	for _, name := range g.Names() {
		n := g.Node(name)
		if n.Body() == nil || n.Pkg == nil {
			continue
		}
		ts := scanSimTaints(pass, n)
		if len(ts) > 0 {
			taints[name] = ts
		}
	}

	// Pass 2: scheduling sites. Each site is checked independently so the
	// diagnostic can name the exact callback and path.
	type schedSite struct {
		pos token.Pos
		cb  string
	}
	var sites []schedSite
	for _, name := range g.Names() {
		n := g.Node(name)
		if n.Body() == nil || n.Pkg == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body(), func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // literal bodies are their own nodes
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil {
				return true
			}
			idx, ok := simSchedulerFuncs[fullFuncName(fn)]
			if !ok || len(call.Args) <= idx {
				return true
			}
			if cb := resolveCallback(g, info, call.Args[idx]); cb != "" {
				sites = append(sites, schedSite{pos: call.Pos(), cb: cb})
			}
			return true
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		pi, pj := pass.Fset.Position(sites[i].pos), pass.Fset.Position(sites[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})

	for _, site := range sites {
		if pass.InTestFile(site.pos) || pass.Allowed(site.pos) {
			continue
		}
		reach := g.ReachFrom(site.cb)
		for _, name := range reach.Order() {
			ts, ok := taints[name]
			if !ok {
				continue
			}
			t := ts[0]
			pass.Reportf(site.pos,
				"simulator-scheduled callback reaches %s at %s (path: %s); use the simulated clock/seeded PRNG, or annotate the source with //lint:allow simtime(reason)",
				t.desc, pass.Fset.Position(t.pos), reach.PathString(name))
			break // one finding per scheduling site
		}
	}
	return nil
}

// resolveCallback maps a callback argument to its call-graph node name, or
// "" when the target is dynamic.
func resolveCallback(g *CallGraph, info *types.Info, arg ast.Expr) string {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if name, ok := g.LitName(arg); ok {
			return name
		}
	case *ast.Ident:
		if fn, ok := info.Uses[arg].(*types.Func); ok {
			return fullFuncName(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
			return fullFuncName(fn)
		}
	}
	return ""
}

// scanSimTaints finds direct wall-clock and global-rand uses in one body,
// sorted by position. Nested literals are excluded (their own nodes).
func scanSimTaints(pass *ProgramPass, n *FuncNode) []simTaint {
	info := n.Pkg.Info
	var out []simTaint
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if wallClockFuncs[obj.Name()] && !pass.Allowed(sel.Pos()) {
				out = append(out, simTaint{pos: sel.Pos(), desc: "time." + obj.Name()})
			}
		case "math/rand", "math/rand/v2":
			if !pass.Allowed(sel.Pos()) {
				out = append(out, simTaint{pos: sel.Pos(), desc: obj.Pkg().Path() + "." + obj.Name()})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}
