package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// emitNames are method/function names that send a value out of the current
// goroutine or process: emitting from inside a map iteration makes the
// emission order nondeterministic.
var emitNames = map[string]bool{
	"Send":    true,
	"Emit":    true,
	"Route":   true,
	"Deliver": true,
	"Publish": true,
}

// fmtPrintNames are the fmt printers; printing from inside a map iteration
// makes report/golden output nondeterministic.
var fmtPrintNames = map[string]bool{
	"Print":    true,
	"Printf":   true,
	"Println":  true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// sortPkgs are the packages whose calls count as establishing a
// deterministic order for an accumulated slice.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

// MapOrder flags `for range` over a map whose iteration feeds an
// order-sensitive sink without an intervening sort. Go randomizes map
// iteration order on purpose; any value that escapes the loop in iteration
// order — an early return, a message emission, a printed line, a
// non-commutative accumulator, or a slice that is never sorted — is a
// reproducibility bug waiting for a different seed of the runtime's map
// hash. The accepted pattern is the one Controller.Islands uses: collect
// the keys (or values), sort them, then act in sorted order. Writes keyed
// by the loop variables (m2[k] = v, counters per key) are order-insensitive
// and stay allowed, as are integer accumulators.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration that feeds a return value, emission, print, or order-sensitive accumulator without an intervening sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		file := file
		// funcStack tracks enclosing function bodies so that the sort
		// search for an accumulated slice is confined to the innermost
		// function containing the loop.
		var funcStack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcStack = append(funcStack, n.Body)
					ast.Inspect(n.Body, walk)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if len(funcStack) > 0 && isMapType(pass.TypeOf(n.X)) {
					checkMapRange(pass, file, n, funcStack[len(funcStack)-1])
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	loopVars := rangeVarObjects(pass, rs)

	// appendTargets collects outer-scope slices appended to inside the
	// loop, to be cross-checked against sort calls after the loop.
	appendTargets := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined inside the loop has its own control flow;
			// analyzing it here would misattribute its returns.
			return false
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(), "return inside iteration over map %s selects an arbitrary element; iterate sorted keys instead", exprString(rs.X))
			return true
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside iteration over map %s emits in nondeterministic order; iterate sorted keys instead", exprString(rs.X))
			return true
		case *ast.CallExpr:
			if name, isEmit := emitCallName(pass, file, n); isEmit {
				pass.Reportf(n.Pos(), "%s inside iteration over map %s emits in nondeterministic order; iterate sorted keys instead", name, exprString(rs.X))
			}
			return true
		case *ast.AssignStmt:
			checkAccumulator(pass, n, rs, loopVars)
			if call, ok := singleAppendAssign(n); ok {
				if obj, pos, ok := appendAssignTarget(pass, n, call, rs); ok {
					if _, dup := appendTargets[obj]; !dup {
						appendTargets[obj] = pos
					}
				}
			}
			return true
		}
		return true
	})

	for obj, pos := range appendTargets {
		if !sortedAfter(pass, enclosing, obj, rs.End()) {
			pass.Reportf(pos, "slice %s accumulates elements of map %s but is never sorted in this function; sort it (the Controller.Islands pattern) or iterate sorted keys", obj.Name(), exprString(rs.X))
		}
	}
}

// rangeVarObjects returns the objects bound to the range statement's key
// and value variables.
func rangeVarObjects(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || pass.Info == nil {
			continue
		}
		if obj := pass.Info.ObjectOf(id); obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// emitCallName reports whether call is an emission: a method named like a
// message send, or an fmt printer.
func emitCallName(pass *Pass, file *ast.File, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pass.PkgNameOf(file, sel.X) == "fmt" && fmtPrintNames[sel.Sel.Name] {
		return "fmt." + sel.Sel.Name, true
	}
	if emitNames[sel.Sel.Name] && pass.PkgNameOf(file, sel.X) == "" {
		return exprString(sel.X) + "." + sel.Sel.Name, true
	}
	return "", false
}

// singleAppendAssign matches `dst = append(dst, ...)` / `dst := append(...)`.
func singleAppendAssign(as *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

// appendAssignTarget resolves the destination object of an append
// assignment when that object is declared outside the loop.
func appendAssignTarget(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr, rs *ast.RangeStmt) (types.Object, token.Pos, bool) {
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || pass.Info == nil {
		return nil, token.NoPos, false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return nil, token.NoPos, false
	}
	// Only slices declared outside the loop can carry order out of it.
	if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
		return nil, token.NoPos, false
	}
	return obj, as.Pos(), true
}

// checkAccumulator flags non-commutative accumulation into an outer
// variable: compound float arithmetic (addition order changes the rounding)
// and string concatenation (order changes the value). Accumulation indexed
// by the loop variables (m2[k] += v) is per-key and stays allowed, as do
// integer accumulators.
func checkAccumulator(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt, loopVars map[types.Object]bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	if exprUsesObjects(pass, lhs, loopVars) {
		return // per-key accumulation, order-insensitive
	}
	t := pass.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
		pass.Reportf(as.Pos(), "floating-point accumulation %s %s ... inside map iteration is order-sensitive (float addition is not associative); iterate sorted keys", exprString(lhs), as.Tok)
	case b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
		pass.Reportf(as.Pos(), "string concatenation into %s inside map iteration is order-sensitive; iterate sorted keys", exprString(lhs))
	}
}

func exprUsesObjects(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	if pass.Info == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether a sort/slices call referencing obj appears in
// body at a position after pos.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || !sortPkgs[pkgID.Name] {
			return true
		}
		for _, arg := range call.Args {
			if exprUsesObjects(pass, arg, map[types.Object]bool{obj: true}) {
				found = true
			}
		}
		return !found
	})
	return found
}
