package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/lint"
)

// loadFixture type-checks one testdata package under an arbitrary import
// path, so driver behavior (scoping, suppression) can be tested directly.
func loadFixture(t *testing.T, dir, importPath string) (*token.FileSet, *lint.Package) {
	t.Helper()
	fset := token.NewFileSet()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	var files []*ast.File
	for _, m := range matches {
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}
	return fset, &lint.Package{ImportPath: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}
}

func TestSuppressionDirectives(t *testing.T) {
	fset, pkg := loadFixture(t, filepath.Join("testdata", "src", "suppress"), "repro/internal/suppressfixture")
	diags, err := lint.Run(fset, []*lint.Package{pkg}, []*lint.Analyzer{lint.PanicFree})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+strconv.Itoa(fset.Position(d.Pos).Line))
	}
	// Expected: the malformed directive itself, plus the three panics that
	// are not validly suppressed (unsuppressed, wrongName, missingReason).
	want := map[string]bool{
		"panicfree:13": true, // unsuppressed
		"panicfree:17": true, // wrong analyzer name in directive
		"lint:21":      true, // directive missing its reason
		"panicfree:21": true, // ... so the panic is not suppressed either
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), got, len(want))
	}
	for _, d := range diags {
		key := d.Analyzer + ":" + strconv.Itoa(fset.Position(d.Pos).Line)
		if !want[key] {
			t.Errorf("unexpected diagnostic %s: %s", key, d.Message)
		}
	}
}

func TestAppliesToScoping(t *testing.T) {
	// The same fixture loaded under an out-of-scope import path must
	// produce no analyzer diagnostics: panicfree only applies inside the
	// module's library packages. Directive hygiene (the malformed
	// //lint:ignore) is package-independent and still reported.
	fset, pkg := loadFixture(t, filepath.Join("testdata", "src", "suppress"), "example.com/elsewhere")
	diags, err := lint.Run(fset, []*lint.Package{pkg}, []*lint.Analyzer{lint.PanicFree})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lint" {
		t.Fatalf("out-of-scope package produced %v, want only the malformed-directive report", diags)
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil) == (a.RunProgram == nil) {
			t.Fatalf("analyzer %+v must define exactly one of Run and RunProgram", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"detnondet", "maporder", "kindswitch", "floateq", "panicfree", "hotalloc", "simtime", "tapcover"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}
