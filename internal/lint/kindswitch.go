package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch checks exhaustiveness of switches over enum-like named types:
// a named type with an integer or string underlying type and at least two
// package-level constants of exactly that type (core.Kind, core.RequestKind,
// xen.Priority, rubis.Scheme, ...). A switch over such a type must either
// list every declared constant or carry a default case — otherwise adding a
// coordination message kind (or VCPU state, or policy scheme) silently falls
// through agents and actuators. Prefer explicit no-op cases over defaults in
// protocol code: a default hides exactly the fall-through this analyzer
// exists to catch.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "flags switches over enum-like named types that neither cover all declared constants nor have a default case",
	Run:  runKindSwitch,
}

func runKindSwitch(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	t := pass.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return
	}
	if basic.Info()&(types.IsInteger|types.IsString) == 0 || basic.Info()&types.IsBoolean != 0 {
		return
	}

	consts := enumConstants(named)
	if len(consts) < 2 {
		return // not an enum-like type
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default case present: non-exhaustive by design
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return // dynamic case expression: exhaustiveness is undecidable
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s has no default case and is missing: %s",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumConstants returns the package-level constants declared with exactly
// the named type, in declaration order.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	// Aliased constants (B = A) share a value; keep one name per value so
	// that "missing" lists don't double-count.
	seen := map[string]bool{}
	uniq := consts[:0]
	for _, c := range consts {
		key := c.Val().ExactString()
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, c)
	}
	return uniq
}
