// Package lint implements the repro tree's static-analysis suite: a small
// go/analysis-shaped framework plus the analyzers that keep the simulation
// deterministic and the coordination protocol exhaustively handled.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so that a future migration to the upstream
// multichecker is mechanical, but it depends only on the standard library:
// packages are loaded with `go list` and type-checked from source, so the
// suite runs in hermetic environments with no module downloads.
//
// Analyzers:
//
//   - detnondet:  wall-clock time and math/rand in simulation packages
//   - maporder:   map iteration feeding order-sensitive sinks without a sort
//   - kindswitch: non-exhaustive switches over enum-like named types
//   - floateq:    ==/!= on floating-point values in golden-file paths
//   - panicfree:  panics in library code that are not diagnosable misuse guards
//   - boundedq:   appends to queue-like slice fields with no capacity guard
//
// Whole-program analyzers (backed by the deterministic call graph in
// callgraph.go and the reachability layer in reach.go):
//
//   - hotalloc: allocation-causing constructs reachable from the sim
//     event-dispatch and flight-record hot roots
//   - simtime:  wall-clock/global-rand use transitively reachable from
//     callbacks scheduled on the simulator
//   - tapcover: coordination decision sites without a flight-recorder tap
//
// Suppression policy: a finding can be silenced with a directive comment on
// the same line or the line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//	//lint:allow <analyzer>(<reason>) [<analyzer>(<reason>)...]
//
// The reason is mandatory; a directive without one is itself reported. The
// directive name "all" (ignore form only) silences every analyzer for that
// line. //lint:allow additionally marks the construct as sanctioned for the
// whole-program analyzers, which cut taint at allowed sources rather than
// merely hiding the report. See docs/linting.md for each analyzer's
// rationale, examples, and the table of surviving allows.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// AppliesTo, if non-nil, restricts the driver to packages for which it
	// returns true (by import path). The test harness ignores it so that
	// fixtures exercise the analyzer logic directly.
	AppliesTo func(pkgPath string) bool

	// SkipTestFiles suppresses diagnostics located in _test.go files.
	SkipTestFiles bool

	// Run executes the check on one package and reports findings through
	// the pass. Nil for whole-program analyzers.
	Run func(*Pass) error

	// RunProgram, if non-nil, marks the analyzer as whole-program: instead
	// of per-package passes it receives a ProgramPass with every loaded
	// package and the module-wide call graph. AppliesTo is not consulted —
	// scoping falls out of which roots and decision tables match.
	RunProgram func(*ProgramPass) error
}

// A Pass provides one analyzer with the parsed, type-checked package under
// analysis and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves e to the import path of the package an identifier
// names, or "" if e is not a package qualifier. It prefers type information
// and falls back to matching the file's import table syntactically.
func (p *Pass) PkgNameOf(file *ast.File, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if p.Info != nil {
		if pn, ok := p.Info.ObjectOf(id).(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		if p.Info.ObjectOf(id) != nil {
			return "" // resolved to a non-package object (e.g. a shadowing local)
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// AnalyzePackage runs one analyzer over an already-loaded package and
// returns its diagnostics sorted by position. It applies SkipTestFiles but
// not AppliesTo or suppression directives, which are driver concerns.
func AnalyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, a *Analyzer) ([]Diagnostic, error) {
	if a.Run == nil {
		return nil, fmt.Errorf("%s: whole-program analyzer cannot run per package", a.Name)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	if a.SkipTestFiles {
		kept := diags[:0]
		for _, d := range diags {
			if !strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetNonDet,
		MapOrder,
		KindSwitch,
		FloatEq,
		PanicFree,
		BoundedQ,
		HotAlloc,
		SimTime,
		TapCover,
	}
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// inRepro reports whether path is the root module package or one of its
// internal simulation packages (the determinism perimeter). The lint
// tooling itself is excluded: it runs at the edge of the tree and is
// allowed to, e.g., shell out with deadlines.
func inRepro(path string) bool {
	if path == "repro" {
		return true
	}
	return strings.HasPrefix(path, "repro/internal/") && path != "repro/internal/lint" &&
		!strings.HasPrefix(path, "repro/internal/lint/")
}
