package boundedq

// Unguarded growth of a queue-named field: the canonical finding.
type leaky struct {
	queue []int
}

func (l *leaky) add(v int) {
	l.queue = append(l.queue, v) // want `append to queue-like field l.queue is unguarded`
}

// In-function guard on len of the same field: allowed.
type capped struct {
	waiting []int
	cap     int
}

func (c *capped) add(v int) bool {
	if len(c.waiting) >= c.cap {
		return false
	}
	c.waiting = append(c.waiting, v)
	return true
}

// In-function guard via a capacity-named companion quantity (the IXP
// rxStage pattern: bytes bounded, pkts rides along): allowed.
type byteBounded struct {
	pkts     []int
	bytes    int
	capBytes int
}

func (b *byteBounded) add(v, size int) bool {
	if b.bytes+size > b.capBytes {
		return false
	}
	b.pkts = append(b.pkts, v)
	b.bytes += size
	return true
}

// Bound enforced at a distance (the HostStack.RingFull pattern): the
// append site has no comparison, but another function in the package
// compares len of the same field — allowed.
type ring struct {
	rxBacklog []int
	staging   []int
	ringCap   int
}

func (r *ring) deliver(v int) {
	r.rxBacklog = append(r.rxBacklog, v)
}

func (r *ring) Full() bool { return len(r.rxBacklog)+len(r.staging) >= r.ringCap }

// A fullness-predicate call in the append's function is backpressure:
// allowed.
type gated struct {
	inbox []int
	r     *ring
}

func (g *gated) add(v int) bool {
	if g.r.Full() {
		return false
	}
	g.inbox = append(g.inbox, v)
	return true
}

// Emptiness tests are not bounds: len(q) == 0 does not guard growth.
type emptyChecked struct {
	backlog []int
}

func (e *emptyChecked) add(v int) {
	if len(e.backlog) == 0 {
		_ = v
	}
	e.backlog = append(e.backlog, v) // want `append to queue-like field e.backlog is unguarded`
}

// Non-queue-like names are out of scope.
type plain struct {
	items []int
}

func (p *plain) add(v int) {
	p.items = append(p.items, v)
}

// Local slices are out of scope: only fields carry state across events.
func local(vs []int) []int {
	var queue []int
	for _, v := range vs {
		queue = append(queue, v)
	}
	return queue
}
