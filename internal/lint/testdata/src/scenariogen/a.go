// Package scenariogen is a trace-generator-shaped fixture: workload
// generators must be pure functions of a seeded spec, so wall-clock
// reads and global PRNG state are exactly the bugs DetNonDet exists to
// catch. The good forms mirror internal/scenario's Generate.
package scenariogen

import (
	mrand "math/rand" // want `import of math/rand in a simulation package`
	"time"
)

type req struct {
	T       int64
	Session int
	Size    int
}

// badGenerate stamps arrivals from the wall clock and draws sizes from
// the process-global PRNG: two runs of the same spec produce different
// traces.
func badGenerate(n int) []req {
	start := time.Now() // want `time.Now reads the wall clock`
	reqs := make([]req, 0, n)
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
		reqs = append(reqs, req{
			T:    int64(time.Since(start)), // want `time.Since reads the wall clock`
			Size: mrand.Intn(4096),
		})
	}
	return reqs
}

// rng is the deterministic-substream shape: the generator owns a seeded
// source and derives everything from it.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// goodGenerate is a pure function of (seed, n): arrival deltas and
// payload sizes come from the seeded stream, sim-time is plain integer
// arithmetic, and duration constants are allowed.
func goodGenerate(seed uint64, n int) []req {
	r := &rng{state: seed}
	gap := int64(250 * time.Millisecond)
	reqs := make([]req, 0, n)
	var t int64
	for i := 0; i < n; i++ {
		t += gap + int64(r.next()%uint64(gap))
		reqs = append(reqs, req{T: t, Session: i % 8, Size: int(r.next() % 4096)})
	}
	return reqs
}
