package tapcover

import "repro/internal/core"

// Recorder stands in for the flight recorder: tapcover matches Record
// calls by the receiver's named type.
type Recorder struct{ n int }

func (r *Recorder) Record(v int) { r.n += v }

type gov struct {
	rec *Recorder
	//lint:decision
	rate int
	out  func(core.Message)
}

// adjust taps in its own body: covered.
func (g *gov) adjust(d int) {
	g.rate += d
	g.rec.Record(d)
}

// bump is covered by the direct-callee grace (the recordWeight idiom).
func (g *gov) bump() {
	g.rate++
	g.recordRate()
}

func (g *gov) recordRate() { g.rec.Record(g.rate) }

// silent is an entry point (no callers) holding an untapped decision.
func (g *gov) silent(d int) {
	g.rate = d // want `decision-annotated write to gov\.rate has no flight-recorder tap in \(\*tapcover\.gov\)\.silent`
}

// emit sends a coordination message with no tap anywhere on the path.
func (g *gov) emit(t string) {
	g.out(core.Message{Kind: core.KindTune, Target: t}) // want `Tune emission has no flight-recorder tap in \(\*tapcover\.gov\)\.emit`
}

// apply holds the decision; coverage depends on the caller's path.
func (g *gov) apply(d int) {
	g.rate = d
}

// tappedPath taps in its own body, shielding its path down to apply.
func (g *gov) tappedPath(d int) {
	g.apply(d)
	g.rec.Record(d)
}

// openPath reaches apply with no tap anywhere: reported at the entry.
func (g *gov) openPath(d int) {
	g.apply(d) // want `call path from \(\*tapcover\.gov\)\.openPath reaches decision-annotated write to gov\.rate`
}

// sanctioned documents its silent write with an allow.
func (g *gov) sanctioned() {
	//lint:allow tapcover(fixture: sanctioned silent write)
	g.rate = 0
}
