package kindswitch

type Kind int

const (
	KindTune Kind = iota
	KindTrigger
	KindRegister
)

// KindAlias shares KindTune's value; covering the value covers both names.
const KindAlias = KindTune

func missing(k Kind) int {
	switch k { // want `switch over Kind has no default case and is missing: KindRegister`
	case KindTune:
		return 1
	case KindTrigger:
		return 2
	}
	return 0
}

func withDefault(k Kind) int {
	switch k {
	case KindTune:
		return 1
	default:
		return 0
	}
}

func exhaustive(k Kind) int {
	switch k {
	case KindTune, KindTrigger:
		return 1
	case KindRegister:
		return 2
	}
	return 0
}

type notEnum int

const single notEnum = 1

// A type with fewer than two constants is not an enum.
func notEnumSwitch(v notEnum) {
	switch v {
	case single:
	}
}

// A non-constant case makes exhaustiveness undecidable; skipped.
func dynamicCase(k, other Kind) {
	switch k {
	case other:
	}
}

type Mode string

const (
	ModeA Mode = "a"
	ModeB Mode = "b"
)

func stringEnum(m Mode) {
	switch m { // want `switch over Mode has no default case and is missing: ModeB`
	case ModeA:
	}
}

// Untagged switches are ordinary if/else chains; skipped.
func untagged(k Kind) int {
	switch {
	case k == KindTune:
		return 1
	}
	return 0
}
