package hotalloc

import "fmt"

type event struct{ n int }

type logger interface{ log(v any) }

type sink struct {
	items []event
	ring  []event
	out   logger
}

// helper inherits heat by being called from the hot root.
func helper(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

// appendByte is an Append-style helper: callers passing a nil destination
// build a fresh buffer per call.
func appendByte(dst []byte, b byte) []byte {
	return append(dst, b)
}

//lint:hotpath
func (s *sink) dispatch(e event, name string) {
	s.items = append(s.items, e) // want `append to s.items grows without a capacity guard`
	s.ring = append(s.ring, e)   // guarded by the cap check below: no finding
	if len(s.ring) == cap(s.ring) {
		s.ring = s.ring[:0]
	}
	msg := "event " + name     // want `string concatenation allocates`
	msg += name                // want `string concatenation allocates`
	_ = fmt.Sprintf("%d", e.n) // want `fmt.Sprintf formats and allocates`
	_ = []byte(msg)            // want `string conversion copies its operand`
	m := map[int]int{}         // want `map literal allocates`
	_ = m
	_ = []int{1, 2}  // want `slice literal allocates`
	p := &event{n: 1} // want `&composite literal escapes to the heap`
	_ = p
	q := new(event) // want `new allocates`
	_ = q
	s.out.log(e)   // want `argument boxed into interface parameter`
	go func() {}() // want `closure literal allocates`
	_ = helper(e.n)
	_ = appendByte(nil, byte(e.n)) // want `appendByte\(nil, \.\.\.\) builds a fresh buffer per call`
	//lint:allow hotalloc(fixture: sanctioned one-off formatting)
	_ = fmt.Sprintf("ok %d", e.n)
}

// cold is unreachable from any hot root: identical constructs are fine.
func cold(name string) string {
	return fmt.Sprintf("cold %s", name)
}
