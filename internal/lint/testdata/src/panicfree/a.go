package panicfree

import (
	"errors"
	"fmt"
)

func guardOK(n int) {
	if n <= 0 {
		panic("panicfree: non-positive n")
	}
}

func sprintfOK(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("panicfree: bad n %d", n))
	}
}

func concatOK(msg string) {
	panic("panicfree: " + msg)
}

func errBad() {
	panic(errors.New("boom")) // want `panic in library code must be a misuse guard`
}

func unprefixedBad() {
	panic("boom") // want `panic in library code must be a misuse guard`
}

func valueBad(v interface{}) {
	panic(v) // want `panic in library code must be a misuse guard`
}

func sprintfUnprefixedBad(n int) {
	panic(fmt.Sprintf("bad n %d", n)) // want `panic in library code must be a misuse guard`
}
