package simtime

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// jitter reaches global math/rand state two hops from the callback.
func jitter() time.Duration {
	return time.Duration(rand.Intn(100))
}

func tick() {
	_ = time.Now()
}

func allowedTick() {
	//lint:allow simtime(fixture: sanctioned wall-clock read)
	_ = time.Now()
}

func schedule(s *sim.Simulator) {
	s.After(1, tick)     // want `simulator-scheduled callback reaches time\.Now`
	s.At(2, allowedTick) // allowed at the taint source: no finding
	s.Ticker(3, func() { // want `simulator-scheduled callback reaches math/rand\.Intn`
		_ = jitter()
	})
	s.After(4, func() {}) // deterministic callback: no finding
}
