package maporder

import (
	"fmt"
	"sort"
)

func returnInside(m map[string]int) int {
	for _, v := range m {
		return v // want `return inside iteration over map m`
	}
	return 0
}

func sendInside(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside iteration over map m`
	}
}

type emitter struct{}

func (emitter) Send(int) {}

func emitInside(m map[string]int, e emitter) {
	for _, v := range m {
		e.Send(v) // want `e.Send inside iteration over map m`
	}
}

func printInside(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println inside iteration over map m`
	}
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys accumulates elements of map m but is never sorted`
	}
	return keys
}

// The Controller.Islands pattern: collect, sort, then use.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation sum \+= ... inside map iteration`
	}
	return sum
}

// Integer accumulation is associative and commutative: allowed.
func intAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// Writes keyed by the loop variables are per-key and order-insensitive.
func perKey(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func stringAccum(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want `string concatenation into s inside map iteration`
	}
	return s
}

// A closure defined inside the loop has its own control flow; its return
// is not the enclosing function's.
func closureOK(m map[string]int) map[string]func() int {
	fns := make(map[string]func() int, len(m))
	for k, v := range m {
		v := v
		fns[k] = func() int { return v }
	}
	return fns
}

// Ranging over a slice is ordered; nothing to report.
func sliceOK(xs []int, ch chan int) {
	for _, v := range xs {
		ch <- v
	}
}
