package detnondet

import (
	mrand "math/rand" // want `import of math/rand in a simulation package`
	"time"
)

func bad() time.Duration {
	t0 := time.Now()             // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	_ = mrand.Int()
	<-time.After(time.Second)       // want `time.After reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock`
	return time.Since(t0)           // want `time.Since reads the wall clock`
}

// Duration arithmetic and constants are deterministic and allowed.
func good() time.Duration {
	d := 5 * time.Millisecond
	return d * 2
}

type fake struct{}

func (fake) Now() int { return 0 }

// A local identifier shadowing the package name is not the wall clock.
func shadowed() int {
	time := fake{}
	return time.Now()
}
