package floateq

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func badNeq(a float32) bool {
	return a != 0 // want `floating-point != comparison`
}

func badMixed(a float64) bool {
	if a == 1.5 { // want `floating-point == comparison`
		return true
	}
	return false
}

func intsOK(a, b int) bool { return a == b }

const eps = 1e-9

// Both operands constant: the comparison is exact by definition.
func constOK() bool {
	return eps == 1e-9
}

func toleranceOK(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
