package suppress

func sameLine() {
	panic("boom") //lint:ignore panicfree fixture exercising same-line suppression
}

func lineAbove() {
	//lint:ignore all fixture exercising line-above suppression
	panic("boom")
}

func unsuppressed() {
	panic("boom")
}

func wrongName() {
	panic("boom") //lint:ignore maporder suppressing the wrong analyzer does nothing
}

func missingReason() {
	panic("boom") //lint:ignore panicfree
}
