// Package scenarioenc is a trace-encoder-shaped fixture: the .wtrace
// intern table and per-class summary are built from maps, and emitting
// them in map-iteration order would make the encoding nondeterministic.
// The good forms mirror internal/scenario's encoder.
package scenarioenc

import "sort"

type sink struct{}

func (sink) Emit(string) {}

// badInternTable writes intern-table entries straight out of the map:
// byte output depends on Go's randomized iteration order.
func badInternTable(classes map[string]uint64, s sink) {
	for name := range classes {
		s.Emit(name) // want `s.Emit inside iteration over map classes`
	}
}

// badClassCounts accumulates a rate across a map without ordering the
// fold; float addition is not associative.
func badClassCounts(rates map[string]float64) float64 {
	var total float64
	for _, r := range rates {
		total += r // want `floating-point accumulation total \+= ... inside map iteration`
	}
	return total
}

// goodInternTable is the committed-golden-safe shape: collect, sort,
// then emit, so the same trace always encodes to the same bytes.
func goodInternTable(classes map[string]uint64, s sink) {
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Emit(name)
	}
}

// Integer request counts are order-insensitive; the accumulation is
// allowed even in map order.
func goodRequestTotal(counts map[string]int) int {
	var n int
	for _, c := range counts {
		n += c
	}
	return n
}
