package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// This file holds the whole-program side of the framework: the ProgramPass
// handed to inter-procedural analyzers, the //lint:allow directive (the
// sanctioned-site escape hatch the hotalloc/simtime/tapcover analyzers
// honor), and the //lint:hotpath and //lint:decision marker directives that
// let code — fixtures and future subsystems alike — opt into analysis
// without the analyzers hardcoding every root.
//
// Directive grammar:
//
//	//lint:allow <analyzer>(<reason>) [<analyzer>(<reason>)...]
//	//lint:hotpath            (on a function's doc comment)
//	//lint:decision           (on a struct field's doc or line comment)
//
// //lint:allow differs from //lint:ignore in intent: ignore silences a
// diagnostic, allow marks the construct itself as sanctioned, which
// program analyzers also use to cut taint at the source (e.g. an allowed
// time.Now() does not poison every caller). Each entry carries its own
// mandatory reason so the survivors table in docs/linting.md stays honest.

// A Program is the shared substrate for whole-program analyzers: the loaded
// packages, the call graph built over all of them, and the allow set. Build
// it once and run any number of analyzers against it.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Graph  *CallGraph
	Allows *AllowSet
}

// BuildProgram constructs the Program for the given packages, building the
// call graph and collecting //lint:allow directives. Malformed allow
// directives are reported by the driver, not here (see directives).
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	return &Program{
		Fset:   fset,
		Pkgs:   pkgs,
		Graph:  BuildGraph(fset, pkgs),
		Allows: collectAllows(fset, pkgs),
	}
}

// Run executes one whole-program analyzer and returns its diagnostics
// sorted by position, with diagnostics in _test.go files dropped when the
// analyzer sets SkipTestFiles.
func (prog *Program) Run(a *Analyzer) ([]Diagnostic, error) {
	if a.RunProgram == nil {
		return nil, fmt.Errorf("%s: analyzer has no RunProgram", a.Name)
	}
	var diags []Diagnostic
	pass := &ProgramPass{
		Analyzer: a,
		Fset:     prog.Fset,
		Pkgs:     prog.Pkgs,
		Graph:    prog.Graph,
		Allows:   prog.Allows,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.RunProgram(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	if a.SkipTestFiles {
		kept := diags[:0]
		for _, d := range diags {
			if !strings.HasSuffix(prog.Fset.Position(d.Pos).Filename, "_test.go") {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	sortDiagnostics(prog.Fset, diags)
	return diags, nil
}

// A ProgramPass provides one whole-program analyzer with the loaded module,
// the call graph, the allow set, and a diagnostic sink.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *CallGraph
	Allows   *AllowSet

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Allowed reports whether an //lint:allow directive for this pass's
// analyzer covers pos (same line or the line directly above).
func (p *ProgramPass) Allowed(pos token.Pos) bool {
	return p.Allows.Allowed(p.Fset, pos, p.Analyzer.Name)
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// An AllowSet indexes //lint:allow directives by file and line.
type AllowSet struct {
	// byLine maps "filename:line" to the analyzer names allowed there.
	byLine map[string][]string
}

// Allowed reports whether a directive on pos's line, or the line directly
// above, names the analyzer.
func (s *AllowSet) Allowed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range s.byLine[fmt.Sprintf("%s:%d", p.Filename, line)] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Entries returns every (file:line, analyzer) pair in sorted order; the
// driver uses it to audit that allows stay documented.
func (s *AllowSet) Entries() []string {
	var out []string
	for key, names := range s.byLine {
		for _, n := range names {
			out = append(out, key+" "+n)
		}
	}
	sort.Strings(out)
	return out
}

var (
	allowRE      = regexp.MustCompile(`^//lint:allow\s+(.*)$`)
	allowEntryRE = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*)\(([^()]*)\)\s*`)
)

// parseAllow parses the entry list of an //lint:allow directive, returning
// the analyzer names and whether the directive is well-formed (every entry
// must be name(reason) with a non-empty reason).
func parseAllow(text string) (names []string, ok bool) {
	m := allowRE.FindStringSubmatch(text)
	if m == nil {
		return nil, true // not an allow directive at all
	}
	rest := strings.TrimSpace(m[1])
	if rest == "" {
		return nil, false
	}
	for rest != "" {
		em := allowEntryRE.FindStringSubmatch(rest)
		if em == nil {
			return nil, false
		}
		if strings.TrimSpace(em[2]) == "" {
			return nil, false
		}
		names = append(names, em[1])
		rest = rest[len(em[0]):]
	}
	return names, true
}

// collectAllows gathers well-formed //lint:allow directives across all
// packages into one module-wide AllowSet.
func collectAllows(fset *token.FileSet, pkgs []*Package) *AllowSet {
	s := &AllowSet{byLine: make(map[string][]string)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok || len(names) == 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					s.byLine[key] = append(s.byLine[key], names...)
				}
			}
		}
	}
	return s
}

// hotpathDirective reports whether a function declaration's doc comment
// carries //lint:hotpath, marking it as an additional hotalloc root.
func hotpathDirective(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:hotpath") {
			return true
		}
	}
	return false
}

// decisionDirective reports whether a struct field carries //lint:decision
// in its doc or line comment, marking writes to it as coordination
// decisions that tapcover must see flight-logged.
func decisionDirective(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//lint:decision") {
				return true
			}
		}
	}
	return false
}
