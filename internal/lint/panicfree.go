package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PanicFree polices panics in library packages. A library panic is
// acceptable only as a constructor/argument-misuse guard, and a guard must
// be diagnosable: its message must be a constant string (or a fmt.Sprintf
// with a constant format) prefixed with the package name, stdlib-style —
// `panic("sim: Intn with non-positive n")`. Everything else is flagged, in
// particular `panic(err)`, which crashes the control plane with a bare
// error that identifies neither the package nor the violated invariant;
// such sites should either return the error or wrap it into a prefixed
// message. Test files may panic freely.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbids panics in library packages unless they are package-prefixed misuse guards",
	AppliesTo: func(path string) bool {
		return inRepro(path)
	},
	SkipTestFiles: true,
	Run:           runPanicFree,
}

func runPanicFree(pass *Pass) error {
	prefix := pass.Pkg.Name() + ": "
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if pass.Info != nil {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
					return true // a local function shadowing panic
				}
			}
			if len(call.Args) != 1 || !isMisuseGuardArg(pass, file, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic in library code must be a misuse guard with a constant %q-prefixed message; return an error or wrap the message", prefix)
			}
			return true
		})
	}
	return nil
}

// isMisuseGuardArg reports whether e is a diagnosable guard message:
// a string literal starting with the package prefix, a concatenation whose
// leftmost operand is one, or fmt.Sprintf with such a format literal.
func isMisuseGuardArg(pass *Pass, file *ast.File, e ast.Expr, prefix string) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING && strings.HasPrefix(strings.Trim(e.Value, "`\""), prefix)
	case *ast.BinaryExpr:
		return e.Op == token.ADD && isMisuseGuardArg(pass, file, e.X, prefix)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || pass.PkgNameOf(file, sel.X) != "fmt" || sel.Sel.Name != "Sprintf" {
			return false
		}
		if len(e.Args) == 0 {
			return false
		}
		return isMisuseGuardArg(pass, file, e.Args[0], prefix)
	}
	return false
}
