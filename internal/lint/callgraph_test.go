package lint_test

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// loadFixturePkg parses and type-checks one testdata/src fixture package
// into fset, the same way the linttest harness does.
func loadFixturePkg(t *testing.T, fset *token.FileSet, name string) *lint.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", name, err)
	}
	return &lint.Package{ImportPath: name, Dir: dir, Files: files, Pkg: pkg, Info: info}
}

// TestCallGraphDeterministic pins the graph builder's ordering contract:
// two independent builds over freshly parsed ASTs render byte-identical
// adjacency and DOT output. Everything downstream (reachability order,
// diagnostic order, `reprolint -graph` diffs) depends on this.
func TestCallGraphDeterministic(t *testing.T) {
	build := func() (string, string) {
		fset := token.NewFileSet()
		p := loadFixturePkg(t, fset, "hotalloc")
		p2 := loadFixturePkg(t, fset, "tapcover")
		// Feed the packages in reverse-sorted order: BuildGraph must sort.
		g := lint.BuildGraph(fset, []*lint.Package{p2, p})
		var dot bytes.Buffer
		if err := g.WriteDOT(&dot); err != nil {
			t.Fatal(err)
		}
		return g.Adjacency(), dot.String()
	}
	adj1, dot1 := build()
	adj2, dot2 := build()
	if adj1 != adj2 {
		t.Fatalf("adjacency differs across builds:\n--- first ---\n%s\n--- second ---\n%s", adj1, adj2)
	}
	if dot1 != dot2 {
		t.Fatalf("DOT output differs across builds:\n--- first ---\n%s\n--- second ---\n%s", dot1, dot2)
	}
	if !strings.Contains(adj1, "hotalloc.helper") {
		t.Fatalf("adjacency is missing an expected node:\n%s", adj1)
	}
}

// TestProgramAnalyzersConcurrent runs the whole-program analyzers
// concurrently over one shared Program; under -race this pins that Run and
// the graph accessors are safe for concurrent readers.
func TestProgramAnalyzersConcurrent(t *testing.T) {
	fset := token.NewFileSet()
	p := loadFixturePkg(t, fset, "hotalloc")
	prog := lint.BuildProgram(fset, []*lint.Package{p})
	analyzers := []*lint.Analyzer{lint.HotAlloc, lint.SimTime, lint.TapCover}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, a := range analyzers {
			wg.Add(1)
			go func(a *lint.Analyzer) {
				defer wg.Done()
				if _, err := prog.Run(a); err != nil {
					t.Errorf("%s: %v", a.Name, err)
				}
			}(a)
		}
	}
	wg.Wait()
}
