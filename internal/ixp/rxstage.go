package ixp

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// rxStage is the receive classification stage: packets from the wire queue
// here and a pool of classifier threads (microengine contexts running the
// Rx-classify image) drain them, paying ClassifyCost per packet, running
// the DPI hooks, and steering each packet into its destination VM's flow
// queue. The stage's buffer models the Rx ring in SRAM.
type rxStage struct {
	x        *IXP
	pkts     []*netsim.Packet
	bytes    int
	capBytes int

	threads int
	alive   []bool

	enq, drops uint64
}

func newRxStage(x *IXP, capBytes int) *rxStage {
	return &rxStage{x: x, capBytes: capBytes}
}

// enqueue admits a packet from the wire, or tail-drops on a full Rx ring.
func (st *rxStage) enqueue(p *netsim.Packet) bool {
	if st.bytes+p.Size > st.capBytes {
		st.drops++
		return false
	}
	st.pkts = append(st.pkts, p)
	st.bytes += p.Size
	st.enq++
	return true
}

func (st *rxStage) pop() *netsim.Packet {
	if len(st.pkts) == 0 {
		return nil
	}
	p := st.pkts[0]
	copy(st.pkts, st.pkts[1:])
	st.pkts[len(st.pkts)-1] = nil
	st.pkts = st.pkts[:len(st.pkts)-1]
	st.bytes -= p.Size
	return p
}

// setThreads adjusts the classifier pool (same lifecycle discipline as the
// flow queues' dequeue workers).
func (st *rxStage) setThreads(n int) {
	st.threads = n
	for len(st.alive) < n {
		st.alive = append(st.alive, false)
	}
	for id := 0; id < n; id++ {
		if !st.alive[id] {
			st.alive[id] = true
			id := id
			st.x.sim.After(0, func() { st.workerLoop(id) })
		}
	}
}

// workerLoop is one classifier thread.
func (st *rxStage) workerLoop(id int) {
	if id >= st.threads {
		st.alive[id] = false
		return
	}
	p := st.pop()
	if p == nil {
		st.x.sim.After(st.x.cfg.PollInterval, func() { st.workerLoop(id) })
		return
	}
	st.x.sim.After(st.x.scaledCost(st.x.cfg.ClassifyCost), func() {
		st.x.classify(p)
		st.workerLoop(id)
	})
}

// SetClassifierThreads resizes the Rx classification pool — a third
// IXP-side allocation knob alongside dequeue threads and poll intervals.
func (x *IXP) SetClassifierThreads(n int) error {
	if n < 1 {
		return fmt.Errorf("ixp: classifier threads must be >= 1, got %d", n)
	}
	delta := n - x.rx.threads
	if delta > 0 {
		if err := x.mes.Assign(delta); err != nil {
			return err
		}
	} else if delta < 0 {
		if err := x.mes.Release(-delta); err != nil {
			return err
		}
	}
	x.threads += delta
	x.rx.setThreads(n)
	if x.rec != nil && delta != 0 {
		x.rec.Record(flight.Event{
			T: x.sim.Now(), Cat: flight.CatIXP, Code: flight.IXPClassifier,
			Label: "ixp", Entity: -1, Arg: int64(n),
		})
	}
	return nil
}

// ClassifierThreads returns the Rx classification pool size.
func (x *IXP) ClassifierThreads() int { return x.rx.threads }

// RxStageDrops returns packets tail-dropped at the Rx ring before
// classification.
func (x *IXP) RxStageDrops() uint64 { return x.rx.drops }

// classify runs the DPI hooks and steers a classified packet to its flow
// queue (the post-classification half of the old Receive path).
func (x *IXP) classify(p *netsim.Packet) {
	// The admission gate runs before the DPI hooks: a shed packet is
	// invisible to the coordination policies' request accounting (its
	// bounce bypasses the Tx DPIs too, so outstanding-load bookkeeping
	// stays balanced) and never consumes PCIe or host resources.
	if x.admit != nil {
		if resp, ok := x.admit(p); !ok {
			x.rxShed++
			if x.tracer.Enabled(trace.CatNet) {
				x.tracer.Emit(trace.CatNet, "ixp shed: admission gate (pkt %d)", p.ID)
			}
			if x.rec != nil {
				x.rec.Record(flight.Event{
					T: x.sim.Now(), Cat: flight.CatIXP, Code: flight.IXPGateShed,
					Label: "ixp", Entity: int32(p.DstVM), Arg: int64(p.ID),
				})
			}
			if resp != nil && !x.txq.enqueue(resp) {
				x.rxDropped++
			}
			return
		}
	}
	for _, d := range x.dpis {
		d(p)
	}
	q, ok := x.flows[p.DstVM]
	if !ok {
		x.rxDropped++
		x.tracer.Emit(trace.CatNet, "ixp drop: no flow for VM %d (pkt %d)", p.DstVM, p.ID)
		return
	}
	if !q.enqueue(p) {
		x.rxDropped++
		if x.tracer.Enabled(trace.CatNet) {
			x.tracer.Emit(trace.CatNet, "ixp drop: flow %d buffer full (%dB)", p.DstVM, q.Bytes())
		}
	}
}
