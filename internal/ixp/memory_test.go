package ixp

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAccessProfileCycles(t *testing.T) {
	p := AccessProfile{ComputeCycles: 100, LocalRefs: 2, ScratchRefs: 1, SRAMRefs: 1, DRAMRefs: 1}
	wantMem := 2*LocalMemCycles + ScratchpadCycles + SRAMCycles + DRAMCycles
	if got := p.MemoryCycles(); got != wantMem {
		t.Fatalf("MemoryCycles = %d, want %d", got, wantMem)
	}
	if got := p.TotalCycles(); got != 100+wantMem {
		t.Fatalf("TotalCycles = %d", got)
	}
	if got := p.ServiceTime(); got != Cycles(100+wantMem) {
		t.Fatalf("ServiceTime = %v", got)
	}
}

func TestMEThroughputScalesUntilSaturation(t *testing.T) {
	p := AccessProfile{ComputeCycles: 200, SRAMRefs: 8} // mem = 720, total = 920
	one := p.METhroughput(1)
	two := p.METhroughput(2)
	if two < 1.9*one {
		t.Fatalf("two threads should ~double latency-bound throughput: %.0f vs %.0f", one, two)
	}
	sat := p.SaturationThreads() // ceil(920/200) = 5
	if sat != 5 {
		t.Fatalf("SaturationThreads = %d, want 5", sat)
	}
	atSat := p.METhroughput(sat)
	beyond := p.METhroughput(ThreadsPerME)
	if beyond > atSat*1.01 {
		t.Fatalf("throughput grew past saturation: %.0f -> %.0f", atSat, beyond)
	}
	// Compute-bound ceiling is clock/compute.
	if want := ClockHz / 200; beyond > want*1.01 || beyond < want*0.99 {
		t.Fatalf("saturated throughput = %.0f, want ~%.0f", beyond, want)
	}
	if p.METhroughput(0) != 0 {
		t.Fatal("zero threads should yield zero throughput")
	}
}

func TestMEThroughputMonotoneQuick(t *testing.T) {
	f := func(compute, sram uint8) bool {
		p := AccessProfile{ComputeCycles: int(compute) + 1, SRAMRefs: int(sram)}
		prev := 0.0
		for th := 1; th <= ThreadsPerME; th++ {
			cur := p.METhroughput(th)
			if cur < prev-1e-6 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardProfilesValid(t *testing.T) {
	for name, p := range map[string]AccessProfile{
		"classify": ClassifyProfile,
		"dequeue":  DequeueProfile,
		"tx":       TxProfile,
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Stage service times stay in the sub-2us band the pipeline was
		// calibrated against.
		if st := p.ServiceTime(); st < 200*sim.Nanosecond || st > 2*sim.Microsecond {
			t.Errorf("%s service time = %v out of band", name, st)
		}
	}
	// DPI is the most expensive stage.
	if ClassifyProfile.TotalCycles() <= DequeueProfile.TotalCycles() {
		t.Error("classification should cost more than dequeue")
	}
}

func TestAccessProfileValidate(t *testing.T) {
	if (AccessProfile{}).Validate() == nil {
		t.Fatal("empty profile validated")
	}
	if (AccessProfile{ComputeCycles: -1, SRAMRefs: 1}).Validate() == nil {
		t.Fatal("negative profile validated")
	}
}

func TestMEMapAssignRelease(t *testing.T) {
	m := NewMEMap()
	if m.Allocated() != 0 {
		t.Fatalf("fresh map allocated = %d", m.Allocated())
	}
	occ := m.Occupancy()
	for i := 0; i < reservedMEs; i++ {
		if occ[i] != -1 {
			t.Fatalf("ME %d not reserved", i)
		}
	}
	if err := m.Assign(14); err != nil {
		t.Fatal(err)
	}
	// First-fit least-loaded: 14 threads spread one per available ME.
	if m.MaxOccupancy() != 1 {
		t.Fatalf("MaxOccupancy = %d after spreading 14 threads", m.MaxOccupancy())
	}
	if err := m.Assign(14); err != nil {
		t.Fatal(err)
	}
	if m.MaxOccupancy() != 2 {
		t.Fatalf("MaxOccupancy = %d after 28 threads", m.MaxOccupancy())
	}
	if err := m.Release(20); err != nil {
		t.Fatal(err)
	}
	if m.Allocated() != 8 {
		t.Fatalf("Allocated = %d after release", m.Allocated())
	}
	if err := m.Release(9); err == nil {
		t.Fatal("over-release accepted")
	}
	if err := m.Assign(-1); err == nil {
		t.Fatal("negative assign accepted")
	}
}

func TestMEMapCapacity(t *testing.T) {
	m := NewMEMap()
	if err := m.Assign(MaxSchedulableThreads); err != nil {
		t.Fatal(err)
	}
	if m.MaxOccupancy() != ThreadsPerME {
		t.Fatalf("MaxOccupancy = %d at full pool", m.MaxOccupancy())
	}
	if err := m.Assign(1); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := m.Release(MaxSchedulableThreads); err != nil {
		t.Fatal(err)
	}
	if m.Allocated() != 0 {
		t.Fatalf("Allocated = %d after full release", m.Allocated())
	}
}

func TestMEMapInvariantQuick(t *testing.T) {
	// Any interleaving of valid assigns/releases keeps 0 <= occupancy <= 8
	// per ME and the total consistent.
	f := func(ops []int8) bool {
		m := NewMEMap()
		total := 0
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				if total+n <= MaxSchedulableThreads && m.Assign(n) == nil {
					total += n
				}
			} else {
				n = -n
				if n <= total && m.Release(n) == nil {
					total -= n
				}
			}
			if m.Allocated() != total {
				return false
			}
			occ := m.Occupancy()
			for i := reservedMEs; i < NumMicroengines; i++ {
				if occ[i] < 0 || occ[i] > ThreadsPerME {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIXPTracksMEOccupancy(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{ThreadsPerFlow: 2})
	x.RegisterFlow(1)
	occ := x.MEOccupancy()
	total := 0
	for i := reservedMEs; i < NumMicroengines; i++ {
		total += occ[i]
	}
	if total != x.ThreadsAllocated() {
		t.Fatalf("ME occupancy total %d != ThreadsAllocated %d", total, x.ThreadsAllocated())
	}
	if err := x.SetFlowThreads(1, 10); err != nil {
		t.Fatal(err)
	}
	occ = x.MEOccupancy()
	total = 0
	for i := reservedMEs; i < NumMicroengines; i++ {
		total += occ[i]
	}
	if total != x.ThreadsAllocated() {
		t.Fatalf("ME occupancy total %d != ThreadsAllocated %d after grow", total, x.ThreadsAllocated())
	}
}
