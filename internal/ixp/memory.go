package ixp

import (
	"fmt"

	"repro/internal/sim"
)

// The IXP2850's memory hierarchy (§2.1 of the paper): each microengine has
// 640 words of local memory and 256 general-purpose registers; 16 KB of
// scratchpad, 256 MB of external SRAM (packet descriptor queues), and
// 256 MB of external DRAM (packet payload) are shared, with increasing
// access latencies at each level.
const (
	LocalMemWords  = 640
	GPRsPerME      = 256
	ScratchpadSize = 16 << 10
	SRAMSize       = 256 << 20
	DRAMSize       = 256 << 20
)

// Access latencies per level in microengine cycles (representative values
// from the IXP2xxx programmer documentation).
const (
	LocalMemCycles   = 3
	ScratchpadCycles = 60
	SRAMCycles       = 90
	DRAMCycles       = 120
)

// AccessProfile characterizes one packet-processing task's footprint: pure
// compute cycles plus per-level memory references. The hardware switches a
// microengine to the next ready thread on every memory reference, so the
// profile determines both a single thread's service time and how well
// additional threads hide the memory latency.
type AccessProfile struct {
	ComputeCycles int
	LocalRefs     int
	ScratchRefs   int
	SRAMRefs      int
	DRAMRefs      int
}

// MemoryCycles returns the profile's total memory-stall cycles.
func (p AccessProfile) MemoryCycles() int {
	return p.LocalRefs*LocalMemCycles +
		p.ScratchRefs*ScratchpadCycles +
		p.SRAMRefs*SRAMCycles +
		p.DRAMRefs*DRAMCycles
}

// TotalCycles returns compute plus memory cycles — one thread's unshared
// per-packet latency.
func (p AccessProfile) TotalCycles() int { return p.ComputeCycles + p.MemoryCycles() }

// ServiceTime returns one thread's per-packet occupancy as simulated time.
func (p AccessProfile) ServiceTime() sim.Time { return Cycles(p.TotalCycles()) }

// METhroughput returns the packets/second one microengine sustains with
// the given number of threads running this profile. Hardware round-robin
// switching on memory references overlaps one thread's stalls with
// another's compute, so throughput scales with threads until the compute
// pipeline saturates:
//
//	min(t / (compute+memory), 1 / compute) packets per cycle.
func (p AccessProfile) METhroughput(threads int) float64 {
	if threads <= 0 {
		return 0
	}
	total := float64(p.TotalCycles())
	if total == 0 {
		return 0
	}
	latencyBound := float64(threads) / total
	computeBound := 1.0 / float64(p.ComputeCycles)
	perCycle := latencyBound
	if p.ComputeCycles > 0 && computeBound < perCycle {
		perCycle = computeBound
	}
	return perCycle * ClockHz
}

// SaturationThreads returns the thread count at which the microengine's
// compute pipeline saturates for this profile (more threads add nothing).
func (p AccessProfile) SaturationThreads() int {
	if p.ComputeCycles <= 0 {
		return ThreadsPerME
	}
	n := (p.TotalCycles() + p.ComputeCycles - 1) / p.ComputeCycles
	if n > ThreadsPerME {
		n = ThreadsPerME
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Validate reports an error for nonsensical profiles.
func (p AccessProfile) Validate() error {
	if p.ComputeCycles < 0 || p.LocalRefs < 0 || p.ScratchRefs < 0 || p.SRAMRefs < 0 || p.DRAMRefs < 0 {
		return fmt.Errorf("ixp: negative fields in access profile %+v", p)
	}
	if p.TotalCycles() == 0 {
		return fmt.Errorf("ixp: empty access profile")
	}
	return nil
}

// Standard task profiles for the pipeline stages of Figure 3. The derived
// service times set the Config defaults.
var (
	// ClassifyProfile is deep packet inspection on the Rx path: header
	// parse plus payload probes (scratch flow table, SRAM descriptor,
	// DRAM payload reads).
	ClassifyProfile = AccessProfile{
		ComputeCycles: 800,
		LocalRefs:     16,
		ScratchRefs:   4,
		SRAMRefs:      6,
		DRAMRefs:      3,
	}
	// DequeueProfile is a weighted-scheduler thread moving one packet
	// descriptor from a flow queue to the PCI-Tx ring.
	DequeueProfile = AccessProfile{
		ComputeCycles: 280,
		LocalRefs:     8,
		ScratchRefs:   2,
		SRAMRefs:      4,
		DRAMRefs:      2,
	}
	// TxProfile transmits one packet to the wire.
	TxProfile = AccessProfile{
		ComputeCycles: 300,
		LocalRefs:     8,
		ScratchRefs:   2,
		SRAMRefs:      3,
		DRAMRefs:      2,
	}
)
