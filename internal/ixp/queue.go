package ixp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FlowQueue is a per-VM packet queue in IXP DRAM, served by a configurable
// number of dequeue threads (the weighted-scheduling knob of §2.1). The
// special transmit queue uses vmID -1 and delivers to the wire instead of
// the host.
type FlowQueue struct {
	x        *IXP
	vmID     int
	capBytes int

	pkts  []*netsim.Packet
	bytes int

	threads int
	alive   []bool // per-worker-slot liveness

	// Edge-triggered high-watermark notification (buffer monitoring use
	// case, Figure 7): fired when occupancy crosses the threshold upward,
	// re-armed when it falls back below.
	watermark      int
	watermarkFn    func(bytes int)
	watermarkArmed bool

	poll sim.Time // per-flow polling interval override (0 = global default)

	enq, deq, drops uint64
	maxBytes        int
}

func newFlowQueue(x *IXP, vmID, capBytes int) *FlowQueue {
	return &FlowQueue{x: x, vmID: vmID, capBytes: capBytes, watermarkArmed: true}
}

// VM returns the destination VM this queue serves (-1 for the tx queue).
func (q *FlowQueue) VM() int { return q.vmID }

// Len returns the number of queued packets.
func (q *FlowQueue) Len() int { return len(q.pkts) }

// Bytes returns the current DRAM buffer occupancy in bytes.
func (q *FlowQueue) Bytes() int { return q.bytes }

// MaxBytes returns the high-water mark of buffer occupancy.
func (q *FlowQueue) MaxBytes() int { return q.maxBytes }

// Capacity returns the queue's DRAM buffer capacity in bytes.
func (q *FlowQueue) Capacity() int { return q.capBytes }

// Threads returns the number of dequeue threads serving the queue.
func (q *FlowQueue) Threads() int { return q.threads }

// PollInterval returns the queue's effective dequeue-thread polling
// interval.
func (q *FlowQueue) PollInterval() sim.Time {
	if q.poll > 0 {
		return q.poll
	}
	return q.x.cfg.PollInterval
}

// Enqueued, Dequeued, and Dropped return lifetime packet counters.
func (q *FlowQueue) Enqueued() uint64 { return q.enq }

// Dequeued returns the number of packets the dequeue threads have serviced.
func (q *FlowQueue) Dequeued() uint64 { return q.deq }

// Dropped returns packets tail-dropped on buffer overflow.
func (q *FlowQueue) Dropped() uint64 { return q.drops }

// SetHighWatermark installs fn to fire when buffer occupancy crosses bytes
// from below. Passing bytes <= 0 removes the watermark.
func (q *FlowQueue) SetHighWatermark(bytes int, fn func(bytes int)) {
	q.watermark = bytes
	q.watermarkFn = fn
	q.watermarkArmed = true
}

// enqueue adds p, returning false on overflow (tail drop).
func (q *FlowQueue) enqueue(p *netsim.Packet) bool {
	if q.bytes+p.Size > q.capBytes {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	q.enq++
	if q.bytes > q.maxBytes {
		q.maxBytes = q.bytes
	}
	if q.watermark > 0 && q.watermarkArmed && q.bytes >= q.watermark && q.watermarkFn != nil {
		q.watermarkArmed = false
		q.x.tracer.Emit(trace.CatNet, "ixp watermark: flow %d crossed %dB (now %dB)", q.vmID, q.watermark, q.bytes)
		q.watermarkFn(q.bytes)
	}
	return true
}

// pop removes the head packet, or returns nil.
func (q *FlowQueue) pop() *netsim.Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	copy(q.pkts, q.pkts[1:])
	q.pkts[len(q.pkts)-1] = nil
	q.pkts = q.pkts[:len(q.pkts)-1]
	q.bytes -= p.Size
	q.deq++
	if q.watermark > 0 && q.bytes < q.watermark {
		q.watermarkArmed = true
	}
	return p
}

// setThreads adjusts the worker count. Shrinking lets surplus workers die
// at their next loop boundary; growing spawns workers for the new slots.
func (q *FlowQueue) setThreads(n int) {
	q.threads = n
	for len(q.alive) < n {
		q.alive = append(q.alive, false)
	}
	for id := 0; id < n; id++ {
		if !q.alive[id] {
			q.alive[id] = true
			q.spawn(id)
		}
	}
}

// spawn schedules the first iteration of worker id's loop.
func (q *FlowQueue) spawn(id int) {
	q.x.sim.After(0, func() { q.workerLoop(id) })
}

// workerLoop is one dequeue thread: pop a packet and service it, or poll
// again after the polling interval. The service cost and delivery target
// depend on the queue's direction.
func (q *FlowQueue) workerLoop(id int) {
	if id >= q.threads {
		q.alive[id] = false // deallocated by a Tune action
		return
	}
	if q.vmID != -1 && q.x.hostGate != nil && q.x.hostGate() {
		// Host message ring full: hold the descriptor in DRAM and re-poll.
		q.x.sim.After(q.PollInterval(), func() { q.workerLoop(id) })
		return
	}
	p := q.pop()
	if p == nil {
		q.x.sim.After(q.PollInterval(), func() { q.workerLoop(id) })
		return
	}
	var cost sim.Time
	if q.vmID == -1 {
		cost = q.x.cfg.TxCost
	} else {
		cost = q.x.cfg.DequeueCost
	}
	q.x.sim.After(q.x.scaledCost(cost), func() {
		if q.vmID == -1 {
			if q.x.toWire != nil {
				q.x.toWire(p)
			}
		} else {
			q.x.deliverToHost(p)
		}
		q.workerLoop(id)
	})
}
