// Package ixp models the paper's second scheduling island: an Intel IXP2850
// network processor (on a Netronome i8000 card) acting as the programmable
// network interface for all guest-VM traffic.
//
// The model keeps the pieces the paper's coordination schemes depend on:
//
//   - a receive pipeline (Rx microengine threads + classifier) that performs
//     deep packet inspection and steers packets into per-VM flow queues
//     backed by IXP DRAM buffers;
//   - a software weighted scheduler on top of the hardware round-robin
//     thread switching: each flow queue is served by a configurable number
//     of dequeue threads with a configurable polling interval, which is the
//     IXP-side resource-allocation knob ("by tuning the number of dequeuing
//     threads per queue and their polling intervals, we can control the
//     ingress and egress network bandwidth seen by the VM");
//   - PCI-Rx / PCI-Tx engines bridging to the host message queues over the
//     PCIe channel; and
//   - the XScale control core where the IXP-side coordination agent runs
//     (flow-state tracking, buffer watermark monitoring).
//
// Microengine arithmetic (16 MEs x 8 threads @ 1.4 GHz) bounds how many
// threads the scheduler may hand out; per-packet costs are expressed as
// thread-occupancy times derived from cycle counts at that clock.
package ixp

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/netsim"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Hardware constants of the IXP2850 as described in the paper (§2.1).
const (
	NumMicroengines = 16
	ThreadsPerME    = 8
	ClockHz         = 1.4e9

	// Microengines reserved for the PCIe descriptor engines (PCI-Rx and
	// PCI-Tx in Figure 3), unavailable to the Rx/Tx/classify scheduler.
	reservedMEs = 2
)

// MaxSchedulableThreads is the thread budget available to the Rx/Tx
// weighted schedulers after the PCI engines take their microengines.
const MaxSchedulableThreads = (NumMicroengines - reservedMEs) * ThreadsPerME

// NumMEPools is the number of clock-gating domains the schedulable
// microengines are grouped into — the IXP island's DVFS analogue. Gating a
// pool keeps thread allocations intact but leaves fewer powered engines
// behind them, stretching per-packet service times by the pool ratio.
const NumMEPools = 4

// Cycles converts a microengine cycle count into simulated time at the
// 1.4 GHz clock.
func Cycles(n int) sim.Time {
	return sim.Time(float64(n) / ClockHz * float64(sim.Second))
}

// Config tunes the IXP model. Zero fields take defaults chosen to
// approximate the prototype.
type Config struct {
	ClassifyCost   sim.Time // DPI cost per received packet (default ~1.4us = 2000 cycles)
	DequeueCost    sim.Time // per-packet dequeue+descriptor cost (default ~0.7us)
	TxCost         sim.Time // per-packet transmit cost to the wire (default ~0.7us)
	PollInterval   sim.Time // dequeue-thread polling interval when idle (default 50us)
	ThreadsPerFlow int      // initial dequeue threads per VM flow queue (default 2)
	BufferBytes    int      // DRAM buffer pool per flow queue (default 512 KB)

	ClassifierThreads int // Rx classification pool size (default 8)
	RxRingBytes       int // SRAM Rx ring ahead of classification (default 256 KB)
}

func (c *Config) applyDefaults() {
	if c.ClassifyCost == 0 {
		c.ClassifyCost = ClassifyProfile.ServiceTime()
	}
	if c.DequeueCost == 0 {
		c.DequeueCost = DequeueProfile.ServiceTime()
	}
	if c.TxCost == 0 {
		c.TxCost = TxProfile.ServiceTime()
	}
	if c.PollInterval == 0 {
		c.PollInterval = 50 * sim.Microsecond
	}
	if c.ThreadsPerFlow == 0 {
		c.ThreadsPerFlow = 2
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 512 << 10
	}
	if c.ClassifierThreads == 0 {
		c.ClassifierThreads = 8
	}
	if c.RxRingBytes == 0 {
		c.RxRingBytes = 256 << 10
	}
}

// DPI inspects a packet during classification and may rewrite its Class.
// The RUBiS request classifier and the MPlayer stream classifier are DPIs.
type DPI func(*netsim.Packet)

// Admission is the early-admission gate run on every received packet
// before the DPI hooks: returning admit=false sheds the packet at the NIC
// — it never crosses PCIe — and transmits resp (when non-nil) back toward
// the wire so closed-loop clients see a fast rejection instead of silence.
// The coordinated overload-control plane installs a per-class shedder here.
type Admission func(*netsim.Packet) (resp *netsim.Packet, admit bool)

// IXP is the network-processor island.
type IXP struct {
	sim    *sim.Simulator
	cfg    Config
	xsc    *XScale
	dpis   []DPI
	txDPIs []DPI
	tracer *trace.Tracer
	rec    *flight.Recorder

	flows     map[int]*FlowQueue // keyed by destination VM
	flowOrder []int              // deterministic iteration order
	admit     Admission

	hostChan *pcie.Channel // IXP -> host (PCI-Tx direction)
	toHost   func(*netsim.Packet)
	hostGate func() bool // true when the host message ring is full

	rx      *rxStage   // wire -> classification stage
	txq     *FlowQueue // host -> wire transmit queue
	toWire  func(*netsim.Packet)
	threads int    // threads currently allocated (rx flows + tx)
	mes     *MEMap // thread placement onto physical microengines

	// activePools is the number of ungated microengine pools (the energy
	// plane's actuation). Per-packet costs scale by NumMEPools/activePools;
	// with every pool active the scaling is the exact identity.
	//lint:decision
	activePools int

	txThreads int

	rxSeen    uint64
	rxDropped uint64
	rxShed    uint64
	txSeen    uint64
}

// New builds an IXP attached to the host via hostChan; packets it delivers
// to the host arrive through deliver (the messaging driver's entry point).
func New(s *sim.Simulator, cfg Config, hostChan *pcie.Channel, deliver func(*netsim.Packet)) *IXP {
	cfg.applyDefaults()
	x := &IXP{
		sim:         s,
		cfg:         cfg,
		flows:       make(map[int]*FlowQueue),
		hostChan:    hostChan,
		toHost:      deliver,
		activePools: NumMEPools,
	}
	x.xsc = newXScale(x)
	x.mes = NewMEMap()
	x.txThreads = 2
	x.threads = x.txThreads
	if err := x.mes.Assign(x.txThreads); err != nil {
		panic(fmt.Sprintf("ixp: assigning Tx microengine threads: %v", err))
	}
	x.txq = newFlowQueue(x, -1, cfg.BufferBytes)
	//lint:allow tapcover(construction-time provisioning; the flight recorder is not attached yet and replay starts from the constructed state)
	x.txq.setThreads(x.txThreads)
	x.rx = newRxStage(x, cfg.RxRingBytes)
	if err := x.mes.Assign(cfg.ClassifierThreads); err != nil {
		panic(fmt.Sprintf("ixp: assigning classifier microengine threads: %v", err))
	}
	x.threads += cfg.ClassifierThreads
	//lint:allow tapcover(construction-time provisioning; the flight recorder is not attached yet and replay starts from the constructed state)
	x.rx.setThreads(cfg.ClassifierThreads)
	return x
}

// Simulator returns the driving simulator.
func (x *IXP) Simulator() *sim.Simulator { return x.sim }

// Config returns the active (defaulted) configuration.
func (x *IXP) Config() Config { return x.cfg }

// XScale returns the control core, home of the IXP-side coordination agent.
func (x *IXP) XScale() *XScale { return x.xsc }

// SetTracer installs a structured-event tracer (nil disables tracing).
func (x *IXP) SetTracer(t *trace.Tracer) { x.tracer = t }

// SetFlightRecorder taps flow-thread changes, poll-interval changes, and
// admission-gate sheds into the flight recorder (nil disables).
func (x *IXP) SetFlightRecorder(r *flight.Recorder) { x.rec = r }

// AddDPI appends a deep-packet-inspection hook run during receive-side
// classification (wire -> host traffic).
func (x *IXP) AddDPI(d DPI) { x.dpis = append(x.dpis, d) }

// SetAdmission installs the early-admission gate (nil uninstalls it).
func (x *IXP) SetAdmission(a Admission) { x.admit = a }

// AddTxDPI appends an inspection hook run on transmit traffic
// (host -> wire). The coordination policies that correlate responses with
// requests (outstanding-load tracking) observe both directions this way.
func (x *IXP) AddTxDPI(d DPI) { x.txDPIs = append(x.txDPIs, d) }

// RegisterFlow creates the per-VM flow queue for vmID with the default
// thread allocation. Flows must be registered before traffic arrives (the
// paper's VM registration with the global controller at deployment time).
func (x *IXP) RegisterFlow(vmID int) *FlowQueue {
	if _, ok := x.flows[vmID]; ok {
		panic(fmt.Sprintf("ixp: flow for VM %d already registered", vmID))
	}
	q := newFlowQueue(x, vmID, x.cfg.BufferBytes)
	x.flows[vmID] = q
	x.flowOrder = append(x.flowOrder, vmID)
	if err := x.SetFlowThreads(vmID, x.cfg.ThreadsPerFlow); err != nil {
		panic(fmt.Sprintf("ixp: provisioning flow for VM %d: %v", vmID, err))
	}
	return q
}

// Flow returns the flow queue for vmID, or nil.
func (x *IXP) Flow(vmID int) *FlowQueue { return x.flows[vmID] }

// Flows returns the registered VM IDs in registration order.
func (x *IXP) Flows() []int { return x.flowOrder }

// ThreadsAllocated returns the total dequeue/tx threads currently assigned.
func (x *IXP) ThreadsAllocated() int { return x.threads }

// SetFlowThreads changes the number of dequeue threads serving vmID's flow
// queue — the IXP-side actuation of the Tune mechanism. It fails if the
// flow is unknown, n < 1, or the microengine thread budget would overflow.
func (x *IXP) SetFlowThreads(vmID, n int) error {
	q, ok := x.flows[vmID]
	if !ok {
		return fmt.Errorf("ixp: no flow for VM %d", vmID)
	}
	if n < 1 {
		return fmt.Errorf("ixp: flow threads must be >= 1, got %d", n)
	}
	delta := n - q.threads
	if delta > 0 {
		if err := x.mes.Assign(delta); err != nil {
			return err
		}
	} else if delta < 0 {
		if err := x.mes.Release(-delta); err != nil {
			return err
		}
	}
	x.threads += delta
	q.setThreads(n)
	if x.rec != nil && delta != 0 {
		x.rec.Record(flight.Event{
			T: x.sim.Now(), Cat: flight.CatIXP, Code: flight.IXPThreads,
			Label: "ixp", Entity: int32(vmID), Arg: int64(n),
		})
	}
	return nil
}

// SetFlowPollInterval overrides the dequeue-thread polling interval for
// vmID's flow queue — the paper's second IXP-side tuning knob ("by tuning
// the number of dequeuing threads per queue and their polling intervals").
// A non-positive interval restores the global default.
func (x *IXP) SetFlowPollInterval(vmID int, d sim.Time) error {
	q, ok := x.flows[vmID]
	if !ok {
		return fmt.Errorf("ixp: no flow for VM %d", vmID)
	}
	if d < 0 {
		d = 0
	}
	if q.poll != d {
		q.poll = d
		if x.rec != nil {
			x.rec.Record(flight.Event{
				T: x.sim.Now(), Cat: flight.CatIXP, Code: flight.IXPPoll,
				Label: "ixp", Entity: int32(vmID), Arg: int64(d),
			})
		}
	}
	return nil
}

// FlowPollInterval returns the effective polling interval for vmID, or 0
// for unknown flows.
func (x *IXP) FlowPollInterval(vmID int) sim.Time {
	if q, ok := x.flows[vmID]; ok {
		return q.PollInterval()
	}
	return 0
}

// ActivePools returns the number of ungated microengine pools.
func (x *IXP) ActivePools() int { return x.activePools }

// SetActivePools gates or ungates microengine pools — the IXP island's
// DVFS-style energy actuation. Thread allocations are untouched; per-packet
// classify/dequeue/tx costs stretch by NumMEPools/activePools so a gated
// island trades packet latency for static power.
func (x *IXP) SetActivePools(n int) error {
	if n < 1 || n > NumMEPools {
		return fmt.Errorf("ixp: active pools %d outside [1, %d]", n, NumMEPools)
	}
	if n == x.activePools {
		return nil
	}
	x.activePools = n
	if x.rec != nil {
		x.rec.Record(flight.Event{
			T: x.sim.Now(), Cat: flight.CatEnergy, Code: flight.EnergyPools,
			Label: "ixp", Entity: -1, Arg: int64(n),
		})
	}
	return nil
}

// scaledCost stretches a per-packet service cost by the clock-gating ratio.
// With every pool active the multiply-then-divide is the exact identity.
func (x *IXP) scaledCost(c sim.Time) sim.Time {
	return c * sim.Time(NumMEPools) / sim.Time(x.activePools)
}

// MEOccupancy returns the per-microengine thread placement (-1 marks the
// engines reserved for the PCI-Rx/PCI-Tx functions).
func (x *IXP) MEOccupancy() [NumMicroengines]int { return x.mes.Occupancy() }

// FlowThreads returns the dequeue threads currently serving vmID, or 0.
func (x *IXP) FlowThreads(vmID int) int {
	if q, ok := x.flows[vmID]; ok {
		return q.threads
	}
	return 0
}

// Receive injects a packet arriving from the wire. The packet is classified
// (DPI hooks run here) and steered into its destination VM's flow queue;
// packets for unregistered VMs are dropped, as are packets overflowing the
// queue's DRAM buffers.
func (x *IXP) Receive(p *netsim.Packet) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("ixp: invalid packet: %v", err))
	}
	x.rxSeen++
	// The packet lands in the Rx ring and waits for a classifier thread,
	// which pays ClassifyCost, runs the DPI hooks, and steers it into its
	// flow queue.
	if !x.rx.enqueue(p) {
		x.rxDropped++
		if x.tracer.Enabled(trace.CatNet) {
			x.tracer.Emit(trace.CatNet, "ixp drop: rx ring full (pkt %d)", p.ID)
		}
	}
}

// deliverToHost DMAs a packet descriptor+payload to the host message queue.
func (x *IXP) deliverToHost(p *netsim.Packet) {
	x.hostChan.Send(p.Size, func() {
		if x.toHost != nil {
			x.toHost(p)
		}
	})
}

// TransmitFromHost accepts a packet DMA'd from the host (PCI-Rx direction)
// and queues it for transmission to the wire.
func (x *IXP) TransmitFromHost(p *netsim.Packet) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("ixp: invalid packet: %v", err))
	}
	x.txSeen++
	for _, d := range x.txDPIs {
		d(p)
	}
	if !x.txq.enqueue(p) {
		x.rxDropped++
	}
}

// ConnectWire installs the egress callback (packets leaving toward external
// clients).
func (x *IXP) ConnectWire(fn func(*netsim.Packet)) { x.toWire = fn }

// ConnectHostGate installs a host-ring-full predicate. While it returns
// true, dequeue threads stop DMAing descriptors and packets accumulate in
// IXP DRAM — the backpressure that makes the paper's Figure 7 buffer
// monitoring meaningful.
func (x *IXP) ConnectHostGate(fn func() bool) { x.hostGate = fn }

// RxSeen returns packets received from the wire.
func (x *IXP) RxSeen() uint64 { return x.rxSeen }

// RxDropped returns packets dropped (unknown VM or buffer overflow).
func (x *IXP) RxDropped() uint64 { return x.rxDropped }

// RxShed returns packets rejected by the early-admission gate before
// crossing PCIe.
func (x *IXP) RxShed() uint64 { return x.rxShed }

// TxSeen returns packets accepted from the host for transmission.
func (x *IXP) TxSeen() uint64 { return x.txSeen }
