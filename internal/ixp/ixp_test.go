package ixp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// newTestIXP wires an IXP whose host deliveries append to a slice.
func newTestIXP(s *sim.Simulator, cfg Config) (*IXP, *[]*netsim.Packet) {
	var got []*netsim.Packet
	ch := pcie.NewChannel(s, "ixp-host", pcie.Config{Latency: sim.Microsecond, Bandwidth: 1e9})
	x := New(s, cfg, ch, func(p *netsim.Packet) { got = append(got, p) })
	return x, &got
}

func pkt(id uint64, vm, size int) *netsim.Packet {
	return &netsim.Packet{ID: id, Size: size, DstVM: vm}
}

func TestCycles(t *testing.T) {
	if got := Cycles(1400); got != sim.Microsecond {
		t.Fatalf("Cycles(1400) = %v, want 1us at 1.4GHz", got)
	}
}

func TestThreadBudgetConstant(t *testing.T) {
	if MaxSchedulableThreads != 112 {
		t.Fatalf("MaxSchedulableThreads = %d, want (16-2)*8 = 112", MaxSchedulableThreads)
	}
}

func TestReceiveDeliversToHost(t *testing.T) {
	s := sim.New(1)
	x, got := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	x.Receive(pkt(1, 1, 1500))
	s.RunUntil(10 * sim.Millisecond)
	if len(*got) != 1 || (*got)[0].ID != 1 {
		t.Fatalf("delivered = %v", *got)
	}
	if x.RxSeen() != 1 || x.RxDropped() != 0 {
		t.Fatalf("counters = %d seen, %d dropped", x.RxSeen(), x.RxDropped())
	}
}

func TestReceiveUnknownVMDropped(t *testing.T) {
	s := sim.New(1)
	x, got := newTestIXP(s, Config{})
	x.Receive(pkt(1, 9, 1500))
	s.RunUntil(10 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatal("packet for unregistered VM delivered")
	}
	if x.RxDropped() != 1 {
		t.Fatalf("RxDropped = %d", x.RxDropped())
	}
}

func TestDPIRunsAndClassifies(t *testing.T) {
	s := sim.New(1)
	x, got := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	x.AddDPI(func(p *netsim.Packet) { p.Class = "classified" })
	x.Receive(pkt(1, 1, 100))
	s.RunUntil(10 * sim.Millisecond)
	if len(*got) != 1 || (*got)[0].Class != "classified" {
		t.Fatalf("DPI did not run: %+v", *got)
	}
}

func TestFIFOWithinFlow(t *testing.T) {
	s := sim.New(1)
	x, got := newTestIXP(s, Config{ThreadsPerFlow: 1})
	x.RegisterFlow(1)
	for i := uint64(1); i <= 20; i++ {
		x.Receive(pkt(i, 1, 200))
	}
	s.RunUntil(100 * sim.Millisecond)
	if len(*got) != 20 {
		t.Fatalf("delivered %d packets", len(*got))
	}
	for i, p := range *got {
		if p.ID != uint64(i+1) {
			t.Fatalf("out of order at %d: %d", i, p.ID)
		}
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{BufferBytes: 3000, ThreadsPerFlow: 1, PollInterval: sim.Second})
	q := x.RegisterFlow(1)
	// Workers poll every simulated second, so these all sit in the buffer.
	for i := uint64(0); i < 5; i++ {
		x.Receive(pkt(i, 1, 1000))
	}
	s.RunUntil(10 * sim.Millisecond)
	if q.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (3000B capacity, 5x1000B)", q.Dropped())
	}
	if q.Bytes() != 3000 {
		t.Fatalf("Bytes = %d, want 3000", q.Bytes())
	}
	if x.RxDropped() != 2 {
		t.Fatalf("IXP RxDropped = %d", x.RxDropped())
	}
}

func TestMoreThreadsMoreThroughput(t *testing.T) {
	// With a slow per-packet dequeue cost, doubling threads should roughly
	// double flow throughput — the paper's IXP-side bandwidth knob.
	run := func(threads int) int {
		s := sim.New(1)
		x, got := newTestIXP(s, Config{
			DequeueCost:    100 * sim.Microsecond,
			ThreadsPerFlow: threads,
			BufferBytes:    10 << 20,
			RxRingBytes:    10 << 20,
		})
		x.RegisterFlow(1)
		for i := uint64(0); i < 1000; i++ {
			x.Receive(pkt(i, 1, 1000))
		}
		s.RunUntil(20 * sim.Millisecond)
		return len(*got)
	}
	one, four := run(1), run(4)
	if four < 3*one {
		t.Fatalf("threads=1 delivered %d, threads=4 delivered %d; want ~4x", one, four)
	}
}

func TestSetFlowThreadsValidation(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	if err := x.SetFlowThreads(9, 2); err == nil {
		t.Fatal("unknown flow accepted")
	}
	if err := x.SetFlowThreads(1, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	if err := x.SetFlowThreads(1, MaxSchedulableThreads+1); err == nil {
		t.Fatal("budget overflow accepted")
	}
	if err := x.SetFlowThreads(1, 8); err != nil {
		t.Fatalf("valid SetFlowThreads failed: %v", err)
	}
	if got := x.FlowThreads(1); got != 8 {
		t.Fatalf("FlowThreads = %d", got)
	}
	if x.FlowThreads(9) != 0 {
		t.Fatal("FlowThreads for unknown VM != 0")
	}
}

func TestThreadBudgetAccounting(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{ThreadsPerFlow: 2})
	base := x.ThreadsAllocated() // tx threads
	x.RegisterFlow(1)
	x.RegisterFlow(2)
	if got := x.ThreadsAllocated(); got != base+4 {
		t.Fatalf("ThreadsAllocated = %d, want %d", got, base+4)
	}
	if err := x.SetFlowThreads(1, 6); err != nil {
		t.Fatal(err)
	}
	if got := x.ThreadsAllocated(); got != base+8 {
		t.Fatalf("ThreadsAllocated after grow = %d, want %d", got, base+8)
	}
	if err := x.SetFlowThreads(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := x.ThreadsAllocated(); got != base+3 {
		t.Fatalf("ThreadsAllocated after shrink = %d, want %d", got, base+3)
	}
}

func TestShrinkThenGrowThreadsNoDuplicateWorkers(t *testing.T) {
	s := sim.New(1)
	x, got := newTestIXP(s, Config{
		DequeueCost:    100 * sim.Microsecond,
		ThreadsPerFlow: 4,
		BufferBytes:    10 << 20,
		RxRingBytes:    10 << 20,
	})
	x.RegisterFlow(1)
	// Shrink and immediately regrow while workers are mid-flight.
	s.At(1*sim.Millisecond, func() {
		if err := x.SetFlowThreads(1, 1); err != nil {
			t.Error(err)
		}
	})
	s.At(1100*sim.Microsecond, func() {
		if err := x.SetFlowThreads(1, 4); err != nil {
			t.Error(err)
		}
	})
	for i := uint64(0); i < 2000; i++ {
		x.Receive(pkt(i, 1, 500))
	}
	s.RunUntil(60 * sim.Millisecond)
	// All packets delivered exactly once.
	if len(*got) != 2000 {
		t.Fatalf("delivered %d packets, want 2000", len(*got))
	}
	seen := make(map[uint64]bool)
	for _, p := range *got {
		if seen[p.ID] {
			t.Fatalf("packet %d delivered twice", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestDuplicateFlowRegistrationPanics(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterFlow did not panic")
		}
	}()
	x.RegisterFlow(1)
}

func TestTransmitPath(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	var wire []*netsim.Packet
	x.ConnectWire(func(p *netsim.Packet) { wire = append(wire, p) })
	for i := uint64(0); i < 10; i++ {
		x.TransmitFromHost(&netsim.Packet{ID: i, Size: 1000, SrcVM: 1, DstVM: -1})
	}
	s.RunUntil(10 * sim.Millisecond)
	if len(wire) != 10 {
		t.Fatalf("wire got %d packets", len(wire))
	}
	if x.TxSeen() != 10 {
		t.Fatalf("TxSeen = %d", x.TxSeen())
	}
}

func TestHighWatermarkEdgeTriggered(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{
		ThreadsPerFlow: 1,
		DequeueCost:    1 * sim.Millisecond, // slow drain
		BufferBytes:    1 << 20,
	})
	q := x.RegisterFlow(1)
	var fires []int
	q.SetHighWatermark(2500, func(b int) { fires = append(fires, b) })
	for i := uint64(0); i < 5; i++ {
		x.Receive(pkt(i, 1, 1000))
	}
	s.RunUntil(1 * sim.Millisecond)
	if len(fires) != 1 {
		t.Fatalf("watermark fired %d times while above threshold, want 1 (edge)", len(fires))
	}
	if fires[0] < 2500 {
		t.Fatalf("fired at %d bytes", fires[0])
	}
	// Drain below the mark, then refill: should fire again.
	s.RunUntil(20 * sim.Millisecond)
	if q.Bytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", q.Bytes())
	}
	for i := uint64(10); i < 15; i++ {
		x.Receive(pkt(i, 1, 1000))
	}
	s.RunUntil(21 * sim.Millisecond)
	if len(fires) != 2 {
		t.Fatalf("watermark fired %d times after refill, want 2", len(fires))
	}
}

func TestQueueAccessors(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{ThreadsPerFlow: 3, BufferBytes: 4096, PollInterval: sim.Second})
	q := x.RegisterFlow(7)
	if q.VM() != 7 || q.Capacity() != 4096 || q.Threads() != 3 {
		t.Fatalf("accessors: vm=%d cap=%d threads=%d", q.VM(), q.Capacity(), q.Threads())
	}
	x.Receive(pkt(1, 7, 100))
	s.RunUntil(100 * sim.Microsecond)
	if q.Len() != 1 || q.Bytes() != 100 || q.Enqueued() != 1 {
		t.Fatalf("queue state: len=%d bytes=%d enq=%d", q.Len(), q.Bytes(), q.Enqueued())
	}
	if q.MaxBytes() != 100 {
		t.Fatalf("MaxBytes = %d", q.MaxBytes())
	}
	if x.Flow(7) != q || x.Flow(8) != nil {
		t.Fatal("Flow lookup wrong")
	}
	if len(x.Flows()) != 1 || x.Flows()[0] != 7 {
		t.Fatalf("Flows() = %v", x.Flows())
	}
}

func TestXScaleStreamState(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	c := x.XScale()
	if c.IXP() != x {
		t.Fatal("XScale.IXP() wrong")
	}
	if _, ok := c.Stream(1); ok {
		t.Fatal("ghost stream state")
	}
	c.RecordStream(StreamState{VMID: 1, BitrateBn: 1e6, FrameRate: 25})
	st, ok := c.Stream(1)
	if !ok || st.FrameRate != 25 {
		t.Fatalf("stream state = %+v, %v", st, ok)
	}
	c.ClearStream(1)
	if _, ok := c.Stream(1); ok {
		t.Fatal("stream state not cleared")
	}
}

func TestXScaleBufferMonitor(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{ThreadsPerFlow: 1, PollInterval: sim.Second})
	x.RegisterFlow(1)
	var samples []int
	stop := x.XScale().MonitorBuffers(10*sim.Millisecond, func(vm, bytes int) {
		if vm == 1 {
			samples = append(samples, bytes)
		}
	})
	x.Receive(pkt(1, 1, 5000))
	s.RunUntil(35 * sim.Millisecond)
	stop()
	s.RunUntil(100 * sim.Millisecond)
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 before stop", len(samples))
	}
	if samples[0] != 5000 {
		t.Fatalf("first sample = %d", samples[0])
	}
}

func TestXScaleShutdownStopsMonitors(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	count := 0
	x.XScale().MonitorBuffers(10*sim.Millisecond, func(int, int) { count++ })
	s.RunUntil(25 * sim.Millisecond)
	x.XScale().Shutdown()
	before := count
	s.RunUntil(200 * sim.Millisecond)
	if count != before {
		t.Fatalf("monitor still running after Shutdown: %d -> %d", before, count)
	}
}

func TestInvalidPacketPanics(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	x.RegisterFlow(1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid packet did not panic")
		}
	}()
	x.Receive(&netsim.Packet{ID: 1, Size: 0, DstVM: 1})
}

func TestClassifierStageBounds(t *testing.T) {
	s := sim.New(1)
	// One classifier thread with slow classification: throughput capped.
	x, got := newTestIXP(s, Config{
		ClassifyCost: 1 * sim.Millisecond,
		RxRingBytes:  10 << 20,
		BufferBytes:  10 << 20,
	})
	if err := x.SetClassifierThreads(1); err != nil {
		t.Fatal(err)
	}
	x.RegisterFlow(1)
	for i := uint64(0); i < 100; i++ {
		x.Receive(pkt(i, 1, 500))
	}
	s.RunUntil(20 * sim.Millisecond)
	// ~20 packets in 20ms at 1ms each.
	if n := len(*got); n < 15 || n > 25 {
		t.Fatalf("1 thread classified %d in 20ms, want ~20", n)
	}
	// Four threads roughly quadruple it.
	s2 := sim.New(1)
	x2, got2 := newTestIXP(s2, Config{
		ClassifyCost: 1 * sim.Millisecond,
		RxRingBytes:  10 << 20,
		BufferBytes:  10 << 20,
	})
	if err := x2.SetClassifierThreads(4); err != nil {
		t.Fatal(err)
	}
	x2.RegisterFlow(1)
	for i := uint64(0); i < 100; i++ {
		x2.Receive(pkt(i, 1, 500))
	}
	s2.RunUntil(20 * sim.Millisecond)
	if n := len(*got2); n < 3*len(*got) {
		t.Fatalf("4 threads classified %d vs %d with 1", n, len(*got))
	}
}

func TestClassifierThreadAccounting(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{})
	if got := x.ClassifierThreads(); got != 8 {
		t.Fatalf("default classifier threads = %d, want 8", got)
	}
	base := x.ThreadsAllocated()
	if err := x.SetClassifierThreads(12); err != nil {
		t.Fatal(err)
	}
	if got := x.ThreadsAllocated(); got != base+4 {
		t.Fatalf("ThreadsAllocated = %d, want %d", got, base+4)
	}
	if err := x.SetClassifierThreads(0); err == nil {
		t.Fatal("zero classifier threads accepted")
	}
	if err := x.SetClassifierThreads(MaxSchedulableThreads); err == nil {
		t.Fatal("budget overflow accepted")
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{
		ClassifyCost: 10 * sim.Millisecond, // stall classification
		RxRingBytes:  2000,
	})
	x.RegisterFlow(1)
	for i := uint64(0); i < 10; i++ {
		x.Receive(pkt(i, 1, 500))
	}
	s.RunUntil(1 * sim.Millisecond)
	if x.RxStageDrops() == 0 {
		t.Fatal("no Rx ring drops despite overflow")
	}
	if x.RxDropped() == 0 {
		t.Fatal("ring drops not counted in RxDropped")
	}
}

func TestFlowPollIntervalOverride(t *testing.T) {
	s := sim.New(1)
	x, _ := newTestIXP(s, Config{PollInterval: 50 * sim.Microsecond})
	x.RegisterFlow(1)
	if got := x.FlowPollInterval(1); got != 50*sim.Microsecond {
		t.Fatalf("default poll = %v", got)
	}
	if err := x.SetFlowPollInterval(1, 10*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowPollInterval(1); got != 10*sim.Microsecond {
		t.Fatalf("override poll = %v", got)
	}
	if err := x.SetFlowPollInterval(1, -5); err != nil {
		t.Fatal(err)
	}
	if got := x.FlowPollInterval(1); got != 50*sim.Microsecond {
		t.Fatalf("restored poll = %v", got)
	}
	if err := x.SetFlowPollInterval(9, sim.Microsecond); err == nil {
		t.Fatal("unknown flow accepted")
	}
	if x.FlowPollInterval(9) != 0 {
		t.Fatal("unknown flow interval != 0")
	}
}
