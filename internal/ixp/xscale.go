package ixp

import (
	"repro/internal/sim"
)

// StreamState is per-VM RTSP session state kept by the XScale control core
// for the MPlayer coordination scheme: when a session is established, the
// IXP records the negotiated bit- and frame-rate for the hosting VM.
type StreamState struct {
	VMID      int
	BitrateBn float64 // bits per second
	FrameRate float64 // frames per second
}

// XScale is the IXP's ARM control core running Montavista Linux in the
// prototype. It is where the IXP-side coordination agent lives: it tracks
// per-VM stream state, runs periodic buffer monitoring, and is the
// endpoint of the coordination channel on the device side.
type XScale struct {
	x       *IXP
	streams map[int]StreamState
	stops   []func()
}

func newXScale(x *IXP) *XScale {
	return &XScale{x: x, streams: make(map[int]StreamState)}
}

// IXP returns the owning network processor.
func (c *XScale) IXP() *IXP { return c.x }

// RecordStream stores RTSP session state for a VM (called by the RTSP DPI
// when a session is established).
func (c *XScale) RecordStream(s StreamState) { c.streams[s.VMID] = s }

// Stream returns the recorded stream state for a VM.
func (c *XScale) Stream(vmID int) (StreamState, bool) {
	s, ok := c.streams[vmID]
	return s, ok
}

// ClearStream removes a VM's stream state (session teardown).
func (c *XScale) ClearStream(vmID int) { delete(c.streams, vmID) }

// MonitorBuffers samples every flow queue's occupancy each period and
// reports it to fn. This is the "system buffer monitoring" input of the
// trigger coordination scheme (Figure 7). The returned function stops the
// monitor.
func (c *XScale) MonitorBuffers(period sim.Time, fn func(vmID, bytes int)) (stop func()) {
	s := c.x.sim.Ticker(period, func() {
		for _, vmID := range c.x.flowOrder {
			fn(vmID, c.x.flows[vmID].Bytes())
		}
	})
	c.stops = append(c.stops, s)
	return s
}

// Shutdown stops all periodic monitors.
func (c *XScale) Shutdown() {
	for _, s := range c.stops {
		s()
	}
	c.stops = nil
}
