package ixp

import "fmt"

// MEMap tracks how the weighted scheduler's software threads are placed
// onto physical microengines. The PCI-Rx and PCI-Tx engines own two
// microengines outright (Figure 3); the remaining fourteen are a pool the
// Rx/Tx schedulers draw from, filled first-fit so co-located threads share
// a microengine's compute pipeline.
type MEMap struct {
	// occupancy[i] is the number of scheduler threads on microengine i;
	// reserved engines are marked with -1.
	occupancy [NumMicroengines]int
}

// NewMEMap returns a map with the PCI engines' microengines reserved.
func NewMEMap() *MEMap {
	m := &MEMap{}
	for i := 0; i < reservedMEs; i++ {
		m.occupancy[i] = -1
	}
	return m
}

// Assign places n threads onto the least-loaded available microengines and
// returns an error if the pool lacks capacity. Placement is deterministic.
func (m *MEMap) Assign(n int) error {
	if n < 0 {
		return fmt.Errorf("ixp: assigning %d threads", n)
	}
	if m.Allocated()+n > MaxSchedulableThreads {
		return fmt.Errorf("ixp: microengine pool exhausted (%d + %d > %d)",
			m.Allocated(), n, MaxSchedulableThreads)
	}
	for k := 0; k < n; k++ {
		best := -1
		for i := reservedMEs; i < NumMicroengines; i++ {
			if m.occupancy[i] >= ThreadsPerME {
				continue
			}
			if best == -1 || m.occupancy[i] < m.occupancy[best] {
				best = i
			}
		}
		if best == -1 {
			return fmt.Errorf("ixp: no microengine with a free context")
		}
		m.occupancy[best]++
	}
	return nil
}

// Release removes n threads, draining the most-loaded microengines first.
func (m *MEMap) Release(n int) error {
	if n < 0 || n > m.Allocated() {
		return fmt.Errorf("ixp: releasing %d of %d threads", n, m.Allocated())
	}
	for k := 0; k < n; k++ {
		worst := -1
		for i := reservedMEs; i < NumMicroengines; i++ {
			if m.occupancy[i] <= 0 {
				continue
			}
			if worst == -1 || m.occupancy[i] > m.occupancy[worst] {
				worst = i
			}
		}
		m.occupancy[worst]--
	}
	return nil
}

// Allocated returns the total scheduler threads currently placed.
func (m *MEMap) Allocated() int {
	total := 0
	for i := reservedMEs; i < NumMicroengines; i++ {
		if m.occupancy[i] > 0 {
			total += m.occupancy[i]
		}
	}
	return total
}

// Occupancy returns a copy of the per-microengine thread counts (-1 marks
// the reserved PCI engines).
func (m *MEMap) Occupancy() [NumMicroengines]int { return m.occupancy }

// MaxOccupancy returns the most-loaded available microengine's count.
func (m *MEMap) MaxOccupancy() int {
	max := 0
	for i := reservedMEs; i < NumMicroengines; i++ {
		if m.occupancy[i] > max {
			max = m.occupancy[i]
		}
	}
	return max
}
