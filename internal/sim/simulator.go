package sim

import "fmt"

// Simulator owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use: all model code runs inside event callbacks on a
// single goroutine, which is what makes runs deterministic.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *Rand
	running bool
	stopped bool
	fired   uint64
}

// New returns a Simulator whose clock starts at zero and whose random source
// is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// cancelled events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t and returns the event,
// which may be cancelled. It panics if t is before the current time.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	s.queue.push(e)
	return e
}

// After schedules fn to run d after the current time. A negative d panics.
func (s *Simulator) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event after negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed (false when the queue
// is empty).
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := s.queue.pop()
		if e.cancelled {
			continue
		}
		s.now = e.when
		fn := e.fn
		e.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.running = true
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it is not already past). Events scheduled beyond the
// deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.running = true
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.running = false
}

// Stop makes the innermost Run/RunUntil return after the current event
// completes. It may be called from inside an event callback.
func (s *Simulator) Stop() { s.stopped = true }

// peek returns the timestamp of the next live event.
func (s *Simulator) peek() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].cancelled {
			s.queue.pop()
			continue
		}
		return s.queue[0].when, true
	}
	return 0, false
}

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now.
func (s *Simulator) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.After(period, tick)
		}
	}
	ev = s.After(period, tick)
	return func() {
		stopped = true
		if ev != nil {
			ev.Cancel()
		}
	}
}
