package sim

import "testing"

// BenchmarkSimDispatch measures the dispatch half of the event loop alone:
// events are pre-scheduled outside the timed region, so allocs/op isolates
// Step and must be 0 (the number TestStepZeroAlloc pins as a hard test).
func BenchmarkSimDispatch(b *testing.B) {
	s := New(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s.After(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkSimScheduleDispatch measures one full schedule+dispatch cycle —
// the steady-state cost of a self-rescheduling component such as a ticker.
// The one alloc/op is the *Event itself.
func BenchmarkSimScheduleDispatch(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}
