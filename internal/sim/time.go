// Package sim provides a deterministic discrete-event simulation kernel.
//
// All platform substrates in this repository (the Xen credit scheduler, the
// IXP network processor, the PCIe interconnect, and the workload models) are
// driven by a single Simulator instance. Events execute in strict timestamp
// order with FIFO tie-breaking, and all randomness flows through the
// Simulator's seeded source, so a run is a pure function of its
// configuration and seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. Durations are also expressed as Time; the zero value is
// the simulation epoch.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration to a sim.Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// String formats t using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// Scale multiplies t by a dimensionless factor, rounding to the nearest
// nanosecond. It panics if f is negative.
func (t Time) Scale(f float64) Time {
	if f < 0 {
		panic(fmt.Sprintf("sim: negative time scale %v", f))
	}
	return Time(float64(t)*f + 0.5)
}
