package sim

import (
	"testing"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if Millisecond*1000 != Second {
		t.Fatalf("1000ms != 1s")
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds() = %v, want 1.5", got)
	}
	if got := (3 * Millisecond).Microseconds(); got != 3000 {
		t.Fatalf("Microseconds() = %v, want 3000", got)
	}
	if got := FromDuration(time.Second); got != Second {
		t.Fatalf("FromDuration(1s) = %v", got)
	}
	if got := Second.Duration(); got != time.Second {
		t.Fatalf("Duration() = %v", got)
	}
}

func TestTimeScale(t *testing.T) {
	if got := (10 * Millisecond).Scale(0.5); got != 5*Millisecond {
		t.Fatalf("Scale(0.5) = %v", got)
	}
	if got := Time(3).Scale(1.0 / 3.0); got != 1 {
		t.Fatalf("Scale rounding = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative scale did not panic")
		}
	}()
	Time(1).Scale(-1)
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestEventFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is a no-op.
	e.Cancel()
}

func TestSchedulingInsideEvent(t *testing.T) {
	s := New(1)
	var times []Time
	s.At(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	s.At(1, nil)
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, tt := range []Time{10, 20, 30, 40} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10 and 20", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v after second RunUntil", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(50)
	if s.Now() != 50 {
		t.Fatalf("Now() = %v, want 50 with empty queue", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Remaining events are still pending and can be resumed.
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
	s.At(5, func() {})
	if !s.Step() {
		t.Fatal("Step() returned false with pending event")
	}
	if s.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", s.Fired())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	stop := s.Ticker(10, func() { ticks = append(ticks, s.Now()) })
	s.At(35, func() { stop() })
	s.Run()
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = s.Ticker(10, func() {
		count++
		if count == 2 {
			stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Ticker(0) did not panic")
		}
	}()
	s.Ticker(0, func() {})
}

func TestHeapManyEvents(t *testing.T) {
	s := New(42)
	const n = 5000
	var last Time = -1
	monotonic := true
	for i := 0; i < n; i++ {
		at := Time(s.Rand().Intn(100000))
		s.At(at, func() {
			if s.Now() < last {
				monotonic = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !monotonic {
		t.Fatal("event timestamps not monotonically non-decreasing")
	}
	if s.Fired() != n {
		t.Fatalf("Fired() = %d, want %d", s.Fired(), n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(7)
		var out []Time
		var step func()
		step = func() {
			out = append(out, s.Now())
			if len(out) < 100 {
				s.After(s.Rand().ExpTime(Millisecond), step)
			}
		}
		s.After(0, step)
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCancelledEventsDiscardedFromPeek(t *testing.T) {
	s := New(1)
	e1 := s.At(10, func() {})
	fired := false
	s.At(20, func() { fired = true })
	e1.Cancel()
	s.RunUntil(15)
	if fired {
		t.Fatal("event at 20 fired before its time")
	}
	s.RunUntil(25)
	if !fired {
		t.Fatal("event at 20 did not fire")
	}
}
