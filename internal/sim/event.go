package sim

// Event is a scheduled callback. Events are created by Simulator.At and
// Simulator.After and may be cancelled before they fire. An Event must not
// be reused after it has fired or been cancelled.
type Event struct {
	when      Time
	seq       uint64 // FIFO tie-break among events at the same instant
	fn        func()
	index     int // position in the heap, -1 when not queued
	cancelled bool
}

// When returns the virtual time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op. Cancel is O(1); the event is
// lazily discarded when it reaches the head of the queue.
func (e *Event) Cancel() {
	e.cancelled = true
	e.fn = nil
}

// eventHeap is a binary min-heap ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(*h)
	*h = append(*h, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	top := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}
