package sim

import (
	"fmt"
	"math"
)

// Rand is a deterministic pseudo-random source with the distribution helpers
// the workload models need. It wraps a 64-bit SplitMix64/xorshift-style
// generator rather than math/rand so that the sequence is stable across Go
// releases.
//
// All randomness in the simulation must flow through a Rand reached from
// the experiment's seed (directly or via Fork) — never math/rand or any
// other ambient source — so that a run is a pure function of its
// configuration. The detnondet analyzer (see docs/linting.md) enforces
// this across the tree, and TestRandPinnedSequence pins the generator's
// exact output so an accidental algorithm change cannot silently
// invalidate published results.
type Rand struct {
	state uint64
}

// NewRand returns a Rand seeded with seed. Two Rands with the same seed
// produce identical sequences.
func NewRand(seed int64) *Rand {
	r := &Rand{state: uint64(seed)}
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	// Warm up so that small seeds diverge quickly.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn with non-positive n %d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniformly distributed float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed duration with the given mean.
func (r *Rand) ExpTime(mean Time) Time {
	return Time(r.Exp(float64(mean)))
}

// Normal returns a normally distributed value (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormalTime returns a normally distributed duration truncated to
// [min, +inf). Useful for service demands that must stay positive.
func (r *Rand) TruncNormalTime(mean, stddev, min Time) Time {
	v := Time(r.Normal(float64(mean), float64(stddev)))
	if v < min {
		return min
	}
	return v
}

// Pareto returns a Pareto-distributed value with the given scale (minimum)
// and shape alpha. It panics if alpha <= 0 or scale <= 0.
func (r *Rand) Pareto(scale, alpha float64) float64 {
	if alpha <= 0 || scale <= 0 {
		panic("sim: Pareto requires positive scale and alpha")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Choice returns an index in [0, len(weights)) with probability proportional
// to weights[i]. It panics if weights is empty or sums to <= 0.
func (r *Rand) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("sim: Choice with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: Choice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: Choice with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork returns a new Rand seeded from this one, useful for giving each model
// component an independent stream.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64()}
}
