package sim

import "testing"

// TestStepZeroAlloc pins the dispatch contract the hotalloc analyzer
// enforces on the Step/Run/RunUntil roots: executing an already-scheduled
// event allocates nothing — the heap pop mutates in place and the callback
// slot is cleared, not reallocated.
func TestStepZeroAlloc(t *testing.T) {
	s := New(1)
	const runs = 512
	fn := func() {}
	for i := 0; i < runs+2; i++ {
		s.After(Time(i), fn)
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if !s.Step() {
			t.Fatal("queue drained before the measured runs finished")
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocated %.2f times per event; dispatch must stay allocation-free", allocs)
	}
}
