package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at %d", i)
		}
	}
}

// TestRandPinnedSequence pins the exact output of the generator for a
// fixed seed. Every published experiment result depends on this sequence;
// if an intentional algorithm change breaks this test, bump the seed
// documentation and re-baseline the golden outputs in the same change.
func TestRandPinnedSequence(t *testing.T) {
	wantU64 := []uint64{
		0x09bc585a244823f2,
		0xde4431fa3c80db06,
		0x37e9671c45376d5d,
		0xccf635ee9e9e2fa4,
		0x5705b8770b3d7dd5,
		0x9e54d738297f77ae,
		0x3474724a775b19bf,
		0x7e348a0e451650be,
	}
	r := NewRand(42)
	for i, want := range wantU64 {
		if got := r.Uint64(); got != want {
			t.Fatalf("NewRand(42) Uint64 #%d = %#016x, want %#016x", i, got, want)
		}
	}
	wantF64 := []float64{
		0.51339611632214943,
		0.52001329960324016,
		0.66515941079970109,
		0.20343510930023068,
	}
	for i, want := range wantF64 {
		if got := r.Float64(); got != want {
			t.Fatalf("NewRand(42) Float64 #%d = %.17g, want %.17g", i, got, want)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate sequence")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeQuick(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("Exp(10) empirical mean = %v", mean)
	}
}

func TestExpTime(t *testing.T) {
	r := NewRand(12)
	sum := Time(0)
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.ExpTime(Millisecond)
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(Millisecond)) > 0.05*float64(Millisecond) {
		t.Fatalf("ExpTime(1ms) empirical mean = %vns", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(13)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestTruncNormalTimeFloor(t *testing.T) {
	r := NewRand(14)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormalTime(Millisecond, 5*Millisecond, 100*Microsecond)
		if v < 100*Microsecond {
			t.Fatalf("TruncNormalTime below floor: %v", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(15)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0, 1) did not panic")
		}
	}()
	r.Pareto(0, 1)
}

func TestChoiceDistribution(t *testing.T) {
	r := NewRand(16)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 0.05*n {
			t.Fatalf("Choice counts %v do not match weights %v", counts, weights)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	r := NewRand(1)
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", weights)
				}
			}()
			r.Choice(weights)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", float64(hits)/n)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(18)
	a := r.Fork()
	b := r.Fork()
	diff := false
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("forked streams identical")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRand(19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %v", v)
		}
	}
}
