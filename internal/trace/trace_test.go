package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(CatSched, "ignored %d", 1)
	if tr.Enabled(CatSched) {
		t.Fatal("nil tracer enabled")
	}
	if tr.Count() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

func TestEmitRespectsMask(t *testing.T) {
	s := sim.New(1)
	tr := New(s, CatSched|CatCoord, 16)
	tr.Emit(CatSched, "run vcpu %d", 1)
	tr.Emit(CatNet, "dropped")
	tr.Emit(CatCoord, "tune")
	if tr.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (net masked)", tr.Count())
	}
	if !tr.Enabled(CatSched) || tr.Enabled(CatNet) {
		t.Fatal("Enabled wrong")
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Msg != "run vcpu 1" || evs[1].Cat != CatCoord {
		t.Fatalf("events = %v", evs)
	}
}

func TestRingWraps(t *testing.T) {
	s := sim.New(1)
	tr := New(s, CatAll, 4)
	for i := 0; i < 10; i++ {
		i := i
		s.At(sim.Time(i), func() { tr.Emit(CatSched, "e%d", i) })
	}
	s.Run()
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Msg != "e6" || evs[3].Msg != "e9" {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestSinkStreams(t *testing.T) {
	s := sim.New(1)
	tr := New(s, CatAll, 4)
	var got []Event
	tr.SetSink(func(e Event) { got = append(got, e) })
	tr.Emit(CatPower, "throttle")
	if len(got) != 1 || got[0].Msg != "throttle" {
		t.Fatalf("sink got %v", got)
	}
}

func TestDumpFilters(t *testing.T) {
	s := sim.New(1)
	tr := New(s, CatAll, 16)
	tr.Emit(CatSched, "sched-ev")
	tr.Emit(CatNet, "net-ev")
	out := tr.Dump(CatNet)
	if strings.Contains(out, "sched-ev") || !strings.Contains(out, "net-ev") {
		t.Fatalf("Dump = %q", out)
	}
	full := tr.Dump(CatAll)
	if !strings.Contains(full, "sched-ev") {
		t.Fatalf("full dump missing events: %q", full)
	}
}

func TestCategoryString(t *testing.T) {
	if CatAll.String() != "all" {
		t.Fatal("all name")
	}
	if got := (CatSched | CatNet).String(); got != "sched|net" {
		t.Fatalf("combo = %q", got)
	}
	if Category(0).String() != "none" {
		t.Fatal("zero name")
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 1500 * sim.Millisecond, Cat: CatCoord, Msg: "hello"}
	s := e.String()
	if !strings.Contains(s, "1.5") || !strings.Contains(s, "coord") || !strings.Contains(s, "hello") {
		t.Fatalf("String = %q", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(sim.New(1), CatAll, 0)
	if len(tr.ring) != 4096 {
		t.Fatalf("default capacity = %d", len(tr.ring))
	}
}
