// Package trace provides a lightweight structured event trace for the
// simulated platform: scheduling decisions, coordination messages, queue
// events. Components emit into a shared Tracer; the harness and tests can
// filter by category, keep a bounded ring of recent events, or stream to a
// sink. A nil *Tracer is valid everywhere and costs one branch.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Category classifies events; categories can be enabled independently.
type Category uint32

// Event categories.
const (
	CatSched Category = 1 << iota // hypervisor scheduling (run/preempt/boost)
	CatCoord                      // coordination messages and actuations
	CatNet                        // packet drops, watermarks, backpressure
	CatPower                      // power budgeter actions
	CatAll   Category = 0xffffffff
)

// String names the category set.
func (c Category) String() string {
	if c == CatAll {
		return "all"
	}
	var parts []string
	for _, e := range []struct {
		bit  Category
		name string
	}{{CatSched, "sched"}, {CatCoord, "coord"}, {CatNet, "net"}, {CatPower, "power"}} {
		if c&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Event is one trace record.
type Event struct {
	T   sim.Time
	Cat Category
	Msg string
}

// String renders the event as a log line.
func (e Event) String() string {
	return fmt.Sprintf("%12.6fs [%s] %s", e.T.Seconds(), e.Cat, e.Msg)
}

// Tracer collects events. The zero value is disabled; use New.
type Tracer struct {
	sim     *sim.Simulator
	mask    Category
	ring    []Event
	next    int
	wrapped bool
	sink    func(Event)
	count   uint64
}

// DefaultCapacity is the ring size New uses when the caller passes a
// non-positive capacity (platform.Config.TraceCapacity = 0 selects it).
const DefaultCapacity = 4096

// New returns a tracer recording the given categories into a ring of
// capacity events (capacity <= 0 selects DefaultCapacity).
func New(s *sim.Simulator, mask Category, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{sim: s, mask: mask, ring: make([]Event, capacity)}
}

// Enabled reports whether cat would be recorded; use it to avoid building
// expensive messages that would be dropped. Nil-safe.
func (t *Tracer) Enabled(cat Category) bool {
	return t != nil && t.mask&cat != 0
}

// SetSink streams every recorded event to fn as well as the ring.
func (t *Tracer) SetSink(fn func(Event)) { t.sink = fn }

// Emit records an event if its category is enabled. Nil-safe.
func (t *Tracer) Emit(cat Category, format string, args ...interface{}) {
	if !t.Enabled(cat) {
		return
	}
	e := Event{T: t.sim.Now(), Cat: cat, Msg: fmt.Sprintf(format, args...)}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.count++
	if t.sink != nil {
		t.sink(e)
	}
}

// Count returns the total events recorded (including ones evicted from the
// ring).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump renders the retained events, optionally filtered by category.
func (t *Tracer) Dump(filter Category) string {
	var b strings.Builder
	for _, e := range t.Events() {
		if e.Cat&filter == 0 {
			continue
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
