package energy

import (
	"repro/internal/flight"
	"repro/internal/sim"
)

// Governor modes. Off leaves both islands at their top operating points
// (the pre-energy behavior); Ondemand runs one latency-blind
// utilization governor per island (the uncoordinated ablation);
// Coordinated runs the QoS-constrained cross-island governor.
const (
	ModeOff         = "off"
	ModeOndemand    = "ondemand"
	ModeCoordinated = "coordinated"
)

// Ondemand thresholds, after the classic cpufreq governor: jump straight
// to the top point when local utilization exceeds OndemandUpUtil, creep
// one rung down when it falls below OndemandDownUtil. The gap between the
// two is hysteresis — once a load surge ratchets the island up, it stays
// up until the island goes nearly idle, which is exactly the conservatism
// a latency-blind governor needs and the coordinated governor avoids.
const (
	OndemandUpUtil   = 0.8
	OndemandDownUtil = 0.3
)

// Coordinated de-escalation guards. The IXP rung is utilization-guarded:
// only gate a pool when the remaining pools would stay under
// ixpDownSafeUtil. The x86 rung cannot be utilization-guarded — the
// workload is closed-loop, so a saturated island reads ~100% busy at every
// frequency and a util threshold would freeze it at the top point forever.
// Instead the x86 rung is patience-guarded: it steps down only after
// x86DownPatience consecutive slack windows, and a QoS violation resets the
// streak to -violationPenalty so a downshift that just bounced off the SLO
// is not retried until the platform has proven sustained slack again.
const (
	ixpDownSafeUtil  = 0.60
	x86DownPatience  = 5
	violationPenalty = 8
)

// defaultHeadroom is the fraction of the QoS target below which the
// coordinated governor considers the platform to have latency slack worth
// converting into energy savings. The band between Headroom*Target and
// Target is the hysteresis dead zone the governor settles into.
const defaultHeadroom = 0.8

// Ondemand is one island's local utilization governor: it senses nothing
// but its own island's utilization, so it cannot tell latency slack from
// latency pressure and must keep conservative headroom.
type Ondemand struct {
	m    *Machine
	util func() float64
}

// NewOndemand arms an ondemand governor over m, re-evaluating every
// period. util must return the island's utilization (0..1) over the
// window just ending.
func NewOndemand(s *sim.Simulator, m *Machine, period sim.Time, util func() float64) *Ondemand {
	g := &Ondemand{m: m, util: util}
	s.Ticker(period, g.tick)
	return g
}

func (g *Ondemand) tick() {
	u := g.util()
	switch {
	case u > OndemandUpUtil:
		g.m.SetIndex(len(g.m.Points()) - 1)
	case u < OndemandDownUtil:
		g.m.Step(-1)
	}
}

// CoordinatedConfig parameterizes the cross-island governor.
type CoordinatedConfig struct {
	// Target is the end-to-end p95 latency SLO; p95 above it is a QoS
	// violation and triggers escalation.
	Target sim.Time

	// Headroom (0..1) scales Target into the de-escalation threshold:
	// p95 below Headroom*Target is slack the governor converts into
	// energy savings. Defaults to 0.8.
	Headroom float64

	// X86 and IXP are sensed (ladder position, in-flight transitions)
	// but never actuated directly: actuation goes through the Tune
	// closures so every governor decision rides the coordination plane.
	X86 *Machine
	IXP *Machine

	// X86Util and IXPUtil return each island's utilization over the
	// window just ending.
	X86Util func() float64
	IXPUtil func() float64

	// TuneX86 and TuneIXP route a DVFS Tune (step delta) to the island's
	// DVFS agent through the global controller. TriggerX86 routes a Trigger
	// (jump to the top point) the same way: escalation is asymmetric —
	// violations jump the x86 island straight to its maximum, slack creeps
	// it down one rung at a time.
	TuneX86    func(delta int)
	TuneIXP    func(delta int)
	TriggerX86 func()

	// BoostBottleneck sends a credit-weight Tune to the tier the caller
	// judges to be the bottleneck — the escalation rung past "both
	// islands at top speed". May be nil.
	BoostBottleneck func()

	// BoostCooldown is the minimum time between bottleneck boosts
	// (default 1s), so a long violation episode does not spray one Tune
	// per control window.
	BoostCooldown sim.Time

	Recorder *flight.Recorder // QoS violation taps; may be nil
}

// Coordinated is the QoS-constrained energy governor: unlike the
// per-island ondemand pair it senses the platform-level latency SLO, so it
// can run the islands at the cheapest joint operating point that still
// meets p95 — and when p95 does slip, it escalates across islands in
// cost order (x86 frequency, then IXP pools, then a credit-weight Tune to
// the bottleneck tier) instead of over-provisioning everywhere.
type Coordinated struct {
	cfg CoordinatedConfig
	sim *sim.Simulator

	violations int
	actions    int
	lastBoost  sim.Time
	slack      int // consecutive slack windows; negative after a violation
}

// NewCoordinated builds the coordinated governor. Step must then be called
// once per control window with the window's end-to-end p95.
func NewCoordinated(s *sim.Simulator, cfg CoordinatedConfig) *Coordinated {
	if cfg.Headroom <= 0 || cfg.Headroom >= 1 {
		cfg.Headroom = defaultHeadroom
	}
	if cfg.BoostCooldown == 0 {
		cfg.BoostCooldown = sim.Second
	}
	return &Coordinated{cfg: cfg, sim: s, lastBoost: -cfg.BoostCooldown}
}

// SetBoostBottleneck installs the bottleneck-tier weight boost after
// construction (the application layer knows its tiers; the platform does
// not).
func (g *Coordinated) SetBoostBottleneck(fn func()) { g.cfg.BoostBottleneck = fn }

// Violations returns the number of control windows whose p95 exceeded the
// target.
func (g *Coordinated) Violations() int { return g.violations }

// Actions returns the number of actuations (DVFS steps and Tunes) taken.
func (g *Coordinated) Actions() int { return g.actions }

// Step runs one control decision for a window that observed n responses
// with the given p95. Windows with no responses leave the platform
// untouched: an idle window is not evidence of slack under the SLO.
func (g *Coordinated) Step(p95 sim.Time, n int) {
	if n == 0 {
		return
	}
	c := &g.cfg
	if p95 > c.Target {
		g.violations++
		g.slack = -violationPenalty
		if c.Recorder != nil {
			c.Recorder.Record(flight.Event{
				T: g.sim.Now(), Cat: flight.CatEnergy, Code: flight.EnergyQoS,
				Label: "governor", Entity: -1, Arg: int64(p95),
			})
		}
		g.escalate()
		return
	}
	if p95 < sim.Time(float64(c.Target)*c.Headroom) {
		g.slack++
		g.deescalate()
	}
	// The dead zone between Headroom*Target and Target neither builds nor
	// spends slack: it is evidence of equilibrium, not of room to cut.
}

// escalate applies the cheapest available speed-up: jump the x86 island
// back to its top frequency, then ungate an IXP pool, then boost the
// bottleneck tier's credit weight.
func (g *Coordinated) escalate() {
	c := &g.cfg
	if !c.X86.AtTop() && !c.X86.InFlight() {
		c.TriggerX86()
		g.actions++
		return
	}
	if !c.IXP.AtTop() && !c.IXP.InFlight() {
		c.TuneIXP(+1)
		g.actions++
		return
	}
	if c.BoostBottleneck != nil && g.sim.Now()-g.lastBoost >= c.BoostCooldown {
		g.lastBoost = g.sim.Now()
		c.BoostBottleneck()
		g.actions++
	}
}

// deescalate converts latency slack into energy savings, gating the IXP
// (the cheaper, lower-risk rung, guarded by its projected utilization)
// before slowing the x86 island (guarded by sustained slack — see the
// patience constants for why utilization cannot guard a closed-loop
// island).
func (g *Coordinated) deescalate() {
	c := &g.cfg
	if !c.IXP.AtBottom() && !c.IXP.InFlight() {
		cur := c.IXP.Current().Level
		next := c.IXP.Points()[c.IXP.Index()-1].Level
		if c.IXPUtil()*float64(cur)/float64(next) < ixpDownSafeUtil {
			c.TuneIXP(-1)
			g.actions++
			return
		}
	}
	if g.slack >= x86DownPatience && !c.X86.AtBottom() && !c.X86.InFlight() {
		c.TuneX86(-1)
		g.actions++
		g.slack = 0 // re-prove slack at the new point before cutting again
	}
}
