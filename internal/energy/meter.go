package energy

import (
	"fmt"

	"repro/internal/sim"
)

// IslandSource feeds one island's modeled power into the meter. Watts is
// sampled once per accrual window and must return the island's average
// power over the window just closing (the platform wires it to the island's
// committed operating point and a delta-busy utilization estimate).
type IslandSource struct {
	Name  string
	Watts func() float64
}

type meterIsland struct {
	IslandSource
	nj    int64 // accrued nanojoules
	lastW float64
}

// Meter integrates modeled island power over simulated time. Energy is
// accounted in integer nanojoules (1 W·ns = 1 nJ): each window charges
// int64(watts*dt) to the island ledger and adds the same increment to the
// platform ledger, so the island ledgers sum to the platform ledger exactly
// — the conservation invariant the chaos oracles check. A 130 s run at
// ~200 W accrues ~2.6e13 nJ, comfortably inside int64.
type Meter struct {
	sim     *sim.Simulator
	period  sim.Time
	islands []*meterIsland
	byName  map[string]*meterIsland

	platformNJ int64
	lastAt     sim.Time
}

// NewMeter builds a meter over the given sources and arms its accrual
// ticker (period must be positive).
func NewMeter(s *sim.Simulator, period sim.Time, sources []IslandSource) *Meter {
	m := &Meter{
		sim:    s,
		period: period,
		byName: make(map[string]*meterIsland, len(sources)),
		lastAt: s.Now(),
	}
	for _, src := range sources {
		mi := &meterIsland{IslandSource: src}
		m.islands = append(m.islands, mi)
		m.byName[src.Name] = mi
	}
	s.Ticker(period, m.accrue)
	return m
}

// Period returns the accrual window length.
func (m *Meter) Period() sim.Time { return m.period }

// accrue closes the window [lastAt, now): it samples each island's average
// watts over the window and charges watts·dt nanojoules.
func (m *Meter) accrue() {
	now := m.sim.Now()
	dt := now - m.lastAt
	if dt <= 0 {
		return
	}
	for _, mi := range m.islands {
		w := mi.Watts()
		mi.lastW = w
		inc := int64(w * float64(dt))
		mi.nj += inc
		m.platformNJ += inc
	}
	m.lastAt = now
}

// Flush closes the final (possibly partial) accrual window. Call it once
// after the run's last event so the ledgers cover the full duration.
func (m *Meter) Flush() { m.accrue() }

// Watts returns the named island's average power over the last closed
// window (piecewise-constant between accruals); the power budgeter samples
// this instead of keeping its own model.
func (m *Meter) Watts(island string) float64 {
	mi, ok := m.byName[island]
	if !ok {
		return 0
	}
	return mi.lastW
}

// PlatformWatts returns the platform power over the last closed window.
func (m *Meter) PlatformWatts() float64 {
	var w float64
	for _, mi := range m.islands {
		w += mi.lastW
	}
	return w
}

// IslandNJ returns the named island's accrued nanojoules.
func (m *Meter) IslandNJ(island string) (int64, error) {
	mi, ok := m.byName[island]
	if !ok {
		return 0, fmt.Errorf("energy: meter has no island %q", island)
	}
	return mi.nj, nil
}

// PlatformNJ returns the platform ledger in nanojoules.
func (m *Meter) PlatformNJ() int64 { return m.platformNJ }

// Snapshot captures every ledger at the current instant (per-island plus
// platform, keyed by island name and "platform"). Subtracting a warmup
// snapshot from an end-of-run snapshot yields measurement-window joules.
func (m *Meter) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(m.islands)+1)
	for _, mi := range m.islands {
		out[mi.Name] = mi.nj
	}
	out["platform"] = m.platformNJ
	return out
}

// Joules converts a nanojoule ledger value to joules.
func Joules(nj int64) float64 { return float64(nj) / 1e9 }
