package energy

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is one island's DVFS state machine: a ladder of discrete
// operating points with a transition latency between them. A transition is
// requested with Step or SetIndex, stays "in flight" for the target point's
// latency (further requests are rejected meanwhile, like a busy voltage
// regulator), and commits by invoking the apply callback — the island-side
// actuation site that performs the real change and taps the flight
// recorder. The machine itself records no flight events, so each transition
// appears exactly once in the flight stream.
type Machine struct {
	island string
	sim    *sim.Simulator
	points []OperatingPoint
	apply  func(p OperatingPoint) error

	cur      int
	inFlight bool

	residency   []sim.Time // accumulated time per point, excluding the open interval
	lastChange  sim.Time
	transitions int
}

// NewMachine builds a state machine over pts (validated, lowest level
// first) starting at point startIdx. apply commits a transition on the
// island; it must be deterministic and may reject (the machine then stays
// in its old state).
func NewMachine(island string, s *sim.Simulator, pts []OperatingPoint, startIdx int, apply func(p OperatingPoint) error) (*Machine, error) {
	if err := ValidateTable(island, pts); err != nil {
		return nil, err
	}
	if startIdx < 0 || startIdx >= len(pts) {
		return nil, fmt.Errorf("energy: %s start index %d out of range", island, startIdx)
	}
	return &Machine{
		island:     island,
		sim:        s,
		points:     append([]OperatingPoint(nil), pts...),
		apply:      apply,
		cur:        startIdx,
		residency:  make([]sim.Time, len(pts)),
		lastChange: s.Now(),
	}, nil
}

// Island returns the machine's island name.
func (m *Machine) Island() string { return m.island }

// Points returns the operating-point table.
func (m *Machine) Points() []OperatingPoint { return m.points }

// Index returns the committed operating-point index.
func (m *Machine) Index() int { return m.cur }

// Current returns the committed operating point.
func (m *Machine) Current() OperatingPoint { return m.points[m.cur] }

// AtTop and AtBottom report whether the machine sits at the ladder ends.
func (m *Machine) AtTop() bool { return m.cur == len(m.points)-1 }

// AtBottom reports whether the machine sits at the lowest operating point.
func (m *Machine) AtBottom() bool { return m.cur == 0 }

// InFlight reports whether a transition is pending commit.
func (m *Machine) InFlight() bool { return m.inFlight }

// Transitions returns the number of committed transitions.
func (m *Machine) Transitions() int { return m.transitions }

// SetIndex requests a transition to point idx. It returns false if the
// request was dropped (out of range, already there, or a transition is in
// flight). The transition commits after the target point's latency.
func (m *Machine) SetIndex(idx int) bool {
	if idx < 0 || idx >= len(m.points) || idx == m.cur || m.inFlight {
		return false
	}
	target := m.points[idx]
	m.inFlight = true
	m.sim.After(target.Latency, func() {
		m.inFlight = false
		if err := m.apply(target); err != nil {
			return // island rejected; stay at the old point
		}
		now := m.sim.Now()
		m.residency[m.cur] += now - m.lastChange
		m.lastChange = now
		m.cur = idx
		m.transitions++
	})
	return true
}

// Step requests a transition delta rungs up (+) or down (-) the ladder,
// clamped to the table ends.
func (m *Machine) Step(delta int) bool {
	idx := m.cur + delta
	if idx < 0 {
		idx = 0
	}
	if idx >= len(m.points) {
		idx = len(m.points) - 1
	}
	return m.SetIndex(idx)
}

// StateResidency is the time an island spent in one operating point.
type StateResidency struct {
	Island string
	State  string
	Time   sim.Time
}

// Residency returns per-point residency up to now, including the open
// interval at the current point. The entries sum to the time elapsed since
// the machine was built.
func (m *Machine) Residency() []StateResidency {
	out := make([]StateResidency, len(m.points))
	for i, p := range m.points {
		out[i] = StateResidency{Island: m.island, State: p.Name, Time: m.residency[i]}
	}
	out[m.cur].Time += m.sim.Now() - m.lastChange
	return out
}
