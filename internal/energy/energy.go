// Package energy makes platform energy a first-class coordinated resource,
// extending the paper's coordination argument (§1.2, §5) along the axis of
// Nejat et al.'s QoS-constrained energy management: frequency states are
// traded against other actuators under a latency SLO.
//
// The package supplies three pieces:
//
//   - per-island DVFS state machines (Machine): discrete operating points —
//     frequency/voltage pairs on the Xen x86 island, clock-gated
//     microengine pools on the IXP island — with transition latencies and
//     exact per-state residency accounting;
//   - a deterministic energy model (Meter): per island,
//     P = P_static(f,V) + P_dyn(f,V)*utilization, integrated over simulated
//     time into integer-nanojoule ledgers whose island sums equal the
//     platform ledger exactly (the conservation invariant the chaos
//     oracles pin);
//   - governor policies: a coordinated governor that senses cross-island
//     QoS (windowed p95 latency, queue depths) and jointly picks DVFS
//     points, IXP pool gating, and credit-weight Tunes to minimize platform
//     energy subject to the latency constraint — and per-island
//     ondemand-style governors (the uncoordinated ablation) that see only
//     local utilization and therefore must hold conservative headroom.
//
// Like every other coordination policy in the tree, all decisions are pure
// functions of the configuration and seed, and every operating-point
// transition is tapped into the flight recorder at its actuation site
// (xen.Ctl.SetFrequencyMHz, ixp.SetActivePools).
package energy

import (
	"fmt"

	"repro/internal/ixp"
	"repro/internal/sim"
)

// OperatingPoint is one discrete DVFS state of an island.
type OperatingPoint struct {
	Name  string
	Level int // island-specific magnitude: core MHz on x86, active ME pools on IXP

	// Voltage is relative to the island's nominal supply (1.0 at the top
	// point). Static and dynamic power both scale with its square.
	Voltage float64

	StaticW float64 // draw at zero utilization in this state
	DynW    float64 // additional draw at 100% utilization in this state

	Latency sim.Time // time to commit a transition into this state
}

// Watts returns the modeled island power at the given utilization (0..1).
func (p OperatingPoint) Watts(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return p.StaticW + p.DynW*util
}

// Nominal envelope of the x86 island, matching power.X86Model: 60W idle to
// 140W with every core busy at the top operating point.
const (
	x86IdleWatts = 60.0
	x86BusyWatts = 140.0
)

// IXP island power decomposition. With every pool active the static floor
// is ixpFixedWatts + NumMEPools*ixpPoolWatts = 18W, matching power.IXPModel;
// each allocated hardware thread adds ixpThreadWatts on top.
const (
	ixpFixedWatts  = 6.0
	ixpPoolWatts   = 3.0
	ixpThreadWatts = 0.4
)

// DefaultX86Latency and DefaultIXPLatency are the transition latencies of
// the two islands' state machines: a voltage ramp on the host, a clock-gate
// settle on the network processor.
const (
	DefaultX86Latency = 60 * sim.Microsecond
	DefaultIXPLatency = 20 * sim.Microsecond
)

// DefaultX86MaxMHz is the x86 host's hardware maximum frequency — the
// anchor for the dynamic-power scaling of derived operating points.
const DefaultX86MaxMHz = 2666

// x86Steps are the default P-state grid of the 2.66 GHz Xeon host.
var x86Steps = []struct {
	mhz     int
	voltage float64
}{
	{1333, 0.850},
	{1666, 0.900},
	{2000, 0.925},
	{2333, 0.950},
	{2666, 1.000},
}

// X86Point derives one x86 operating point from a frequency/voltage pair:
// static power follows V^2 (leakage), dynamic power follows f*V^2, both
// anchored so the top point reproduces the island's nominal 60W/140W
// envelope.
func X86Point(mhz, maxMHz int, voltage float64) OperatingPoint {
	fRatio := float64(mhz) / float64(maxMHz)
	v2 := voltage * voltage
	return OperatingPoint{
		Name:    fmt.Sprintf("%dMHz", mhz),
		Level:   mhz,
		Voltage: voltage,
		StaticW: x86IdleWatts * v2,
		DynW:    (x86BusyWatts - x86IdleWatts) * fRatio * v2,
		Latency: DefaultX86Latency,
	}
}

// DefaultX86Table returns the x86 island's operating points, lowest
// frequency first. The top point's power model is exactly the pre-DVFS
// X86Model envelope.
func DefaultX86Table() []OperatingPoint {
	pts := make([]OperatingPoint, 0, len(x86Steps))
	for _, s := range x86Steps {
		pts = append(pts, X86Point(s.mhz, DefaultX86MaxMHz, s.voltage))
	}
	return pts
}

// IXPPoint derives the operating point with n active microengine pools.
// StaticW covers the fixed logic plus the ungated pools; the thread term is
// added by the meter from the live allocation.
func IXPPoint(n int) OperatingPoint {
	return OperatingPoint{
		Name:    fmt.Sprintf("pools-%d", n),
		Level:   n,
		Voltage: 1.0,
		StaticW: ixpFixedWatts + ixpPoolWatts*float64(n),
		Latency: DefaultIXPLatency,
	}
}

// DefaultIXPTable returns the IXP island's gating states, most-gated first.
// With every pool active the static floor matches the pre-DVFS IXPModel.
func DefaultIXPTable() []OperatingPoint {
	pts := make([]OperatingPoint, 0, ixp.NumMEPools)
	for n := 1; n <= ixp.NumMEPools; n++ {
		pts = append(pts, IXPPoint(n))
	}
	return pts
}

// IXPThreadWatts returns the per-thread dynamic term of the IXP model.
func IXPThreadWatts(threads int) float64 { return ixpThreadWatts * float64(threads) }

// ValidateTable checks an operating-point table: at least one point,
// strictly increasing levels, positive power terms, non-negative latencies.
func ValidateTable(island string, pts []OperatingPoint) error {
	if len(pts) == 0 {
		return fmt.Errorf("energy: %s table is empty", island)
	}
	for i, p := range pts {
		if p.Level <= 0 {
			return fmt.Errorf("energy: %s point %d has non-positive level %d", island, i, p.Level)
		}
		if i > 0 && pts[i-1].Level >= p.Level {
			return fmt.Errorf("energy: %s table levels not strictly increasing at point %d", island, i)
		}
		if p.StaticW < 0 || p.DynW < 0 {
			return fmt.Errorf("energy: %s point %d has negative power terms", island, i)
		}
		if p.Latency < 0 {
			return fmt.Errorf("energy: %s point %d has negative latency", island, i)
		}
	}
	return nil
}
