package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ixp"
	"repro/internal/sim"
)

// TestDefaultTablesAnchor: both default tables validate, and their top
// points reproduce the pre-DVFS power envelopes exactly (60W..140W on x86,
// an 18W static floor on the IXP) so arming the energy subsystem with the
// governor off changes no modeled watts.
func TestDefaultTablesAnchor(t *testing.T) {
	x86 := DefaultX86Table()
	if err := ValidateTable("x86", x86); err != nil {
		t.Fatalf("default x86 table: %v", err)
	}
	top := x86[len(x86)-1]
	if top.StaticW != 60 || top.StaticW+top.DynW != 140 {
		t.Errorf("x86 top point envelope %g..%g W, want 60..140", top.StaticW, top.StaticW+top.DynW)
	}
	ixpT := DefaultIXPTable()
	if err := ValidateTable("ixp", ixpT); err != nil {
		t.Fatalf("default ixp table: %v", err)
	}
	if len(ixpT) != ixp.NumMEPools {
		t.Errorf("ixp table has %d points, want %d", len(ixpT), ixp.NumMEPools)
	}
	if floor := ixpT[len(ixpT)-1].StaticW; floor != 18 {
		t.Errorf("ixp all-pools static floor %g W, want 18", floor)
	}
}

// TestWattsMonotone: modeled power is monotone in utilization at every
// operating point, and monotone in ladder position at every utilization —
// the property that makes a downshift under a closed-loop (fixed-
// utilization) workload always save power. Note energy per unit of *work*
// is deliberately not monotone (race-to-idle); the governors exploit the
// fixed-time form.
func TestWattsMonotone(t *testing.T) {
	pts := append(DefaultX86Table(), DefaultIXPTable()...)
	inUtil := func(u1, u2 float64) bool {
		u1, u2 = clamp01(u1), clamp01(u2)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		for _, p := range pts {
			if p.Watts(u1) > p.Watts(u2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inUtil, nil); err != nil {
		t.Errorf("power not monotone in utilization: %v", err)
	}
	inLadder := func(u float64) bool {
		u = clamp01(u)
		for _, table := range [][]OperatingPoint{DefaultX86Table(), DefaultIXPTable()} {
			for i := 1; i < len(table); i++ {
				if table[i-1].Watts(u) > table[i].Watts(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(inLadder, nil); err != nil {
		t.Errorf("power not monotone in ladder position: %v", err)
	}
}

// clamp01 folds an arbitrary quick-generated float into [0, 1].
func clamp01(u float64) float64 {
	u = math.Abs(u)
	if !(u <= 1) { // also catches NaN and Inf
		u = math.Mod(u, 1)
		if math.IsNaN(u) {
			u = 0.5
		}
	}
	return u
}

// TestWattsClamp: utilization outside [0,1] clamps instead of
// extrapolating.
func TestWattsClamp(t *testing.T) {
	p := DefaultX86Table()[0]
	if p.Watts(-3) != p.Watts(0) || p.Watts(7) != p.Watts(1) {
		t.Errorf("Watts does not clamp: %g/%g vs %g/%g", p.Watts(-3), p.Watts(0), p.Watts(7), p.Watts(1))
	}
}

// TestValidateTableErrors: the table validator rejects each malformation
// with a diagnosable error.
func TestValidateTableErrors(t *testing.T) {
	good := DefaultX86Table()
	cases := []struct {
		name string
		pts  []OperatingPoint
	}{
		{"empty", nil},
		{"non-positive level", []OperatingPoint{{Level: 0, StaticW: 1}}},
		{"non-increasing", []OperatingPoint{good[1], good[0]}},
		{"negative power", []OperatingPoint{{Level: 1, StaticW: -1}}},
		{"negative latency", []OperatingPoint{{Level: 1, Latency: -sim.Second}}},
	}
	for _, tc := range cases {
		if err := ValidateTable("x86", tc.pts); err == nil {
			t.Errorf("%s: table accepted", tc.name)
		}
	}
	if err := ValidateTable("x86", good); err != nil {
		t.Errorf("default table rejected: %v", err)
	}
}

// TestMachineTransitions: a transition holds in-flight for the target
// point's latency (rejecting further requests meanwhile), commits through
// the apply callback, and rolls residency over to the new point.
func TestMachineTransitions(t *testing.T) {
	s := sim.New(1)
	var applied []int
	m, err := NewMachine("x86", s, DefaultX86Table(), len(DefaultX86Table())-1, func(p OperatingPoint) error {
		applied = append(applied, p.Level)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.AtTop() || m.AtBottom() || m.InFlight() {
		t.Fatalf("fresh machine state: top=%v bottom=%v inflight=%v", m.AtTop(), m.AtBottom(), m.InFlight())
	}
	if !m.Step(-1) {
		t.Fatal("downshift rejected")
	}
	if !m.InFlight() {
		t.Fatal("transition not in flight")
	}
	if m.Step(-1) || m.SetIndex(0) {
		t.Error("machine accepted a request while in flight")
	}
	if m.Index() != len(DefaultX86Table())-1 {
		t.Error("index moved before the transition committed")
	}
	s.RunUntil(s.Now() + DefaultX86Latency)
	if m.InFlight() || m.Index() != len(DefaultX86Table())-2 || m.Transitions() != 1 {
		t.Fatalf("after latency: inflight=%v index=%d transitions=%d", m.InFlight(), m.Index(), m.Transitions())
	}
	if len(applied) != 1 || applied[0] != 2333 {
		t.Errorf("apply saw %v, want [2333]", applied)
	}
	// Step clamps at the ladder ends; a same-point request is dropped.
	if m.SetIndex(m.Index()) {
		t.Error("machine accepted a transition to the current point")
	}
	if !m.Step(-100) {
		t.Fatal("clamped downshift rejected")
	}
	s.RunUntil(s.Now() + DefaultX86Latency)
	if !m.AtBottom() {
		t.Errorf("Step(-100) landed at index %d, want bottom", m.Index())
	}
}

// TestMachineApplyReject: an apply error leaves the machine at its old
// point — the island, not the ladder, is the source of truth.
func TestMachineApplyReject(t *testing.T) {
	s := sim.New(1)
	reject := true
	m, err := NewMachine("x86", s, DefaultX86Table(), 4, func(OperatingPoint) error {
		if reject {
			return errRejected
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Step(-1)
	s.RunUntil(s.Now() + DefaultX86Latency)
	if m.Index() != 4 || m.Transitions() != 0 {
		t.Fatalf("rejected transition moved the machine: index=%d transitions=%d", m.Index(), m.Transitions())
	}
	reject = false
	m.Step(-1)
	s.RunUntil(s.Now() + DefaultX86Latency)
	if m.Index() != 3 || m.Transitions() != 1 {
		t.Fatalf("accepted transition: index=%d transitions=%d", m.Index(), m.Transitions())
	}
}

var errRejected = errRejectedType{}

type errRejectedType struct{}

func (errRejectedType) Error() string { return "rejected" }

// TestMachineResidencySums: per-state residency (including the open
// interval) sums exactly to the time elapsed since construction, for an
// arbitrary deterministic walk over the ladder.
func TestMachineResidencySums(t *testing.T) {
	s := sim.New(1)
	m, err := NewMachine("x86", s, DefaultX86Table(), 2, func(OperatingPoint) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	rng := sim.NewRand(7)
	for i := 0; i < 200; i++ {
		m.Step(rng.Intn(5) - 2)
		s.RunUntil(s.Now() + sim.Time(rng.Intn(int(3*sim.Millisecond))))
	}
	var sum sim.Time
	for _, r := range m.Residency() {
		if r.Time < 0 {
			t.Fatalf("negative residency in state %s: %v", r.State, r.Time)
		}
		sum += r.Time
	}
	if elapsed := s.Now() - start; sum != elapsed {
		t.Fatalf("residency sums to %v, elapsed %v", sum, elapsed)
	}
}

// TestMeterConservation: every accrual charges the same integer increment
// to an island ledger and the platform ledger, so the island sums equal
// the platform ledger exactly — not approximately — no matter how the
// sources fluctuate.
func TestMeterConservation(t *testing.T) {
	s := sim.New(1)
	w1, w2 := 60.0, 18.0
	m := NewMeter(s, 100*sim.Millisecond, []IslandSource{
		{Name: "x86", Watts: func() float64 { return w1 }},
		{Name: "ixp", Watts: func() float64 { return w2 }},
	})
	rng := sim.NewRand(3)
	for i := 0; i < 50; i++ {
		s.RunUntil(s.Now() + sim.Time(rng.Intn(int(250*sim.Millisecond))))
		w1 = 60 + float64(rng.Intn(80))*0.987
		w2 = 18 + float64(rng.Intn(10))*0.441
	}
	m.Flush()
	a, err := m.IslandNJ("x86")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.IslandNJ("ixp")
	if err != nil {
		t.Fatal(err)
	}
	if a+b != m.PlatformNJ() {
		t.Fatalf("island ledgers %d + %d != platform %d", a, b, m.PlatformNJ())
	}
	snap := m.Snapshot()
	if snap["x86"] != a || snap["ixp"] != b || snap["platform"] != a+b {
		t.Errorf("snapshot disagrees with ledgers: %v", snap)
	}
	if _, err := m.IslandNJ("gpu"); err == nil {
		t.Error("unknown island ledger lookup succeeded")
	}
}

// TestMeterIntegration: a constant source integrates to exactly
// watts × seconds, and Watts/PlatformWatts report the last closed window.
func TestMeterIntegration(t *testing.T) {
	s := sim.New(1)
	m := NewMeter(s, 100*sim.Millisecond, []IslandSource{
		{Name: "x86", Watts: func() float64 { return 100 }},
	})
	s.RunUntil(10 * sim.Second)
	m.Flush()
	if nj, _ := m.IslandNJ("x86"); Joules(nj) != 1000 {
		t.Fatalf("10s at 100W integrated to %g J, want 1000", Joules(nj))
	}
	if m.Watts("x86") != 100 || m.PlatformWatts() != 100 {
		t.Errorf("window watts %g/%g, want 100", m.Watts("x86"), m.PlatformWatts())
	}
	if m.Watts("gpu") != 0 {
		t.Errorf("unknown island watts %g, want 0", m.Watts("gpu"))
	}
}

// machines builds a zero-latency x86/IXP pair for governor tests so
// transitions commit on the next event dispatch.
func machines(t *testing.T, s *sim.Simulator) (*Machine, *Machine) {
	t.Helper()
	instant := func(pts []OperatingPoint) []OperatingPoint {
		out := append([]OperatingPoint(nil), pts...)
		for i := range out {
			out[i].Latency = 0
		}
		return out
	}
	x86, err := NewMachine("x86", s, instant(DefaultX86Table()), len(DefaultX86Table())-1,
		func(OperatingPoint) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ixpM, err := NewMachine("ixp", s, instant(DefaultIXPTable()), ixp.NumMEPools-1,
		func(OperatingPoint) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return x86, ixpM
}

// TestOndemand: the local governor jumps to the top point above the up
// threshold, creeps one rung down below the down threshold, and holds in
// the hysteresis band.
func TestOndemand(t *testing.T) {
	s := sim.New(1)
	x86, _ := machines(t, s)
	util := 0.5
	NewOndemand(s, x86, 100*sim.Millisecond, func() float64 { return util })

	x86.SetIndex(1)
	s.RunUntil(s.Now() + 150*sim.Millisecond) // commit + one tick in the band
	if x86.Index() != 1 {
		t.Fatalf("hysteresis band moved the machine to %d", x86.Index())
	}
	util = 0.95
	s.RunUntil(s.Now() + 100*sim.Millisecond)
	if !x86.AtTop() {
		t.Fatalf("up threshold left the machine at %d", x86.Index())
	}
	util = 0.1
	s.RunUntil(s.Now() + 100*sim.Millisecond)
	if x86.Index() != len(x86.Points())-2 {
		t.Fatalf("down threshold stepped to %d, want one rung", x86.Index())
	}
}

// coordHarness wires a Coordinated governor to zero-latency machines with
// direct (still asynchronous) actuation.
type coordHarness struct {
	s        *sim.Simulator
	g        *Coordinated
	x86, ixp *Machine
	ixpUtil  float64
	boosts   int
}

func newCoordHarness(t *testing.T) *coordHarness {
	s := sim.New(1)
	h := &coordHarness{s: s, ixpUtil: 0.2}
	h.x86, h.ixp = machines(t, s)
	h.g = NewCoordinated(s, CoordinatedConfig{
		Target:          2 * sim.Second,
		X86:             h.x86,
		IXP:             h.ixp,
		X86Util:         func() float64 { return 1 },
		IXPUtil:         func() float64 { return h.ixpUtil },
		TuneX86:         func(delta int) { h.x86.Step(delta) },
		TuneIXP:         func(delta int) { h.ixp.Step(delta) },
		TriggerX86:      func() { h.x86.SetIndex(len(h.x86.Points()) - 1) },
		BoostBottleneck: func() { h.boosts++ },
	})
	return h
}

// step feeds one control window and dispatches the resulting transition.
func (h *coordHarness) step(p95 sim.Time) {
	h.g.Step(p95, 30)
	h.s.RunUntil(h.s.Now() + sim.Millisecond)
}

// TestCoordinatedEscalation: violations escalate in cost order — jump the
// x86 island straight to its top point, then ungate an IXP pool, then
// boost the bottleneck tier at most once per cooldown.
func TestCoordinatedEscalation(t *testing.T) {
	h := newCoordHarness(t)
	h.x86.SetIndex(0)
	h.ixp.SetIndex(0)
	h.s.RunUntil(h.s.Now() + sim.Millisecond)

	over := 3 * sim.Second
	h.step(over)
	if !h.x86.AtTop() {
		t.Fatalf("violation left x86 at index %d, want jump to top", h.x86.Index())
	}
	if h.ixp.Index() != 0 {
		t.Fatalf("first violation touched the IXP (index %d)", h.ixp.Index())
	}
	h.step(over)
	if h.ixp.Index() != 1 {
		t.Fatalf("second violation left IXP at %d, want one pool ungated", h.ixp.Index())
	}
	for i := 0; i < ixp.NumMEPools; i++ {
		h.step(over)
	}
	if !h.ixp.AtTop() {
		t.Fatalf("sustained violations left IXP at %d", h.ixp.Index())
	}
	if h.boosts != 1 {
		t.Fatalf("boost fired %d times inside one cooldown, want 1", h.boosts)
	}
	if h.g.Violations() == 0 {
		t.Error("violations counter never moved")
	}
	// Empty windows are not evidence: they must not escalate or count.
	v := h.g.Violations()
	h.g.Step(over, 0)
	if h.g.Violations() != v {
		t.Error("an empty window counted as a violation")
	}
}

// TestCoordinatedPatience: the x86 downshift waits for x86DownPatience
// consecutive slack windows, a violation pushes the streak to
// -violationPenalty, and the dead zone neither builds nor spends slack.
func TestCoordinatedPatience(t *testing.T) {
	h := newCoordHarness(t)
	h.ixp.SetIndex(0) // park the IXP at bottom so only the x86 rung can fire
	h.s.RunUntil(h.s.Now() + sim.Millisecond)
	top := len(h.x86.Points()) - 1

	slack := 100 * sim.Millisecond // far below Headroom*Target
	for i := 0; i < x86DownPatience-1; i++ {
		h.step(slack)
	}
	if h.x86.Index() != top {
		t.Fatalf("downshift after %d slack windows, want %d", x86DownPatience-1, x86DownPatience)
	}
	h.step(slack)
	if h.x86.Index() != top-1 {
		t.Fatalf("no downshift after %d slack windows (index %d)", x86DownPatience, h.x86.Index())
	}
	// The streak was spent: the next downshift needs full patience again.
	for i := 0; i < x86DownPatience-1; i++ {
		h.step(slack)
	}
	if h.x86.Index() != top-1 {
		t.Fatal("second downshift fired before re-proving slack")
	}
	// Dead-zone windows hold the streak where it is.
	h.step(sim.Time(float64(h.g.cfg.Target) * 0.9))
	h.step(slack)
	if h.x86.Index() != top-2 {
		t.Fatalf("dead zone disturbed the slack streak (index %d)", h.x86.Index())
	}
	// A violation costs violationPenalty beyond zero: after re-escalating
	// to top, patience alone is not enough until the penalty is paid down.
	h.step(3 * sim.Second)
	if !h.x86.AtTop() {
		t.Fatal("violation did not re-escalate x86")
	}
	for i := 0; i < violationPenalty+x86DownPatience-1; i++ {
		h.step(slack)
	}
	if h.x86.Index() != top {
		t.Fatal("downshift fired before the violation penalty was paid down")
	}
	h.step(slack)
	if h.x86.Index() != top-1 {
		t.Fatal("downshift never recovered after a violation")
	}
}

// TestCoordinatedIXPGuard: the IXP rung is projected-utilization guarded —
// gating a pool that would push the survivors past ixpDownSafeUtil is
// refused, and the guard uses the post-gating projection, not the current
// utilization.
func TestCoordinatedIXPGuard(t *testing.T) {
	h := newCoordHarness(t)
	slack := 100 * sim.Millisecond

	pools := float64(ixp.NumMEPools)
	h.ixpUtil = 0.55 // projected onto one fewer pool exceeds the safe bound
	h.step(slack)
	if h.ixp.Index() != ixp.NumMEPools-1 {
		t.Fatalf("guard let a pool gate at projected util %.2f", 0.55*pools/(pools-1))
	}
	h.ixpUtil = 0.2 // projected stays well under the safe bound
	h.step(slack)
	if h.ixp.Index() != ixp.NumMEPools-2 {
		t.Fatalf("guard refused a safe gating (index %d)", h.ixp.Index())
	}
}

// BenchmarkEnergyModel measures one meter accrual over both islands —
// the hot path the 100ms metering ticker pays for the whole run.
func BenchmarkEnergyModel(b *testing.B) {
	s := sim.New(1)
	x86 := DefaultX86Table()[4]
	ixpPt := DefaultIXPTable()[ixp.NumMEPools-1]
	util := 0.7
	m := NewMeter(s, 100*sim.Millisecond, []IslandSource{
		{Name: "x86", Watts: func() float64 { return x86.Watts(util) }},
		{Name: "ixp", Watts: func() float64 { return ixpPt.StaticW + IXPThreadWatts(16) }},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RunUntil(s.Now() + 100*sim.Millisecond)
	}
	m.Flush()
}
