package overload

// Fuzz harness for the admission plane: the fuzzer owns the queue shape
// (workers, cap, policy, deadline) and a per-arrival script (class, service
// time, and interleaved circuit-breaker verdicts), and the invariants
// assert the plane's accounting contract:
//
//   - conservation: offered == served + shed + expired + waiting, exactly,
//     at drain (and waiting is zero at drain — a bounded queue never
//     strands work);
//   - the waiting queue never exceeds its configured cap;
//   - entries are only ever run once, in admission order among survivors;
//   - expiry only occurs when a deadline is configured;
//   - the breaker never allows an attempt while open;
//   - determinism: replaying the same script reproduces every counter.

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// admissionOutcome is everything one scripted run observed.
type admissionOutcome struct {
	Stats        QueueStats
	RanOrder     []int
	ShedCount    int
	ExpiredCount int
	FinalWaiting int
	FinalIdle    int

	Breaker      BreakerStats
	Allowed      int
	OpenDelivery bool // an Allow() succeeded while the breaker was open
}

// runAdmissionScript drives one bounded queue (and one breaker) through the
// scripted load: data[0..3] pick workers/cap/policy/deadline, and each
// further byte is one arrival — bit 0 class, bits 1-3 service time, bits
// 4-5 a breaker op (none / success attempt / failure attempt / state poke).
func runAdmissionScript(data []byte) admissionOutcome {
	var shape [4]byte
	copy(shape[:], data)
	script := data
	if len(script) > 4 {
		script = script[4:]
	} else {
		script = nil
	}

	workers := int(shape[0])%3 + 1
	cap := int(shape[1]) % 6 // 0 = unbounded
	policy := Policy(int(shape[2]) % 3)
	deadline := sim.Time(int(shape[3])%8) * 2 * sim.Millisecond // 0 = none

	s := sim.New(1)
	q := NewQueue(s, workers, QueueConfig{Cap: cap, Deadline: deadline, Policy: policy})
	b := NewBreaker(s, BreakerConfig{FailureThreshold: 2, OpenTimeout: 3 * sim.Millisecond, Seed: 9})

	out := admissionOutcome{}
	for i, op := range script {
		i, op := i, op
		s.At(sim.Time(i)*sim.Millisecond, func() {
			class := Class(op & 1)
			service := sim.Time((op>>1)&7) * 500 * sim.Microsecond
			q.Acquire(class, func() {
				out.RanOrder = append(out.RanOrder, i)
				s.After(service, q.Release)
			}, func(expired bool) {
				if expired {
					out.ExpiredCount++
				} else {
					out.ShedCount++
				}
			})

			switch (op >> 4) & 3 {
			case 1:
				if b.Allow() {
					out.Allowed++
					if b.State() == BreakerOpen {
						out.OpenDelivery = true
					}
					b.RecordSuccess()
				}
			case 2:
				if b.Allow() {
					out.Allowed++
					if b.State() == BreakerOpen {
						out.OpenDelivery = true
					}
					b.RecordFailure()
				}
			case 3:
				_ = b.State()
			}
		})
	}
	s.Run()

	out.Stats = q.Stats()
	out.FinalWaiting = q.Waiting()
	out.FinalIdle = q.Idle()
	out.Breaker = b.Stats()
	return out
}

func FuzzAdmission(f *testing.F) {
	// Seed corpus: idle, steady light load, hot loop on a tiny tail-drop
	// queue, head-drop with expiring deadline, priority inversion pressure,
	// and breaker flapping under service churn.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0x02, 0x04, 0x06})
	f.Add([]byte{0, 1, 0, 0, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f})
	f.Add([]byte{0, 2, 1, 1, 0x0e, 0x0e, 0x0e, 0x0e, 0x0e, 0x0e})
	f.Add([]byte{0, 3, 2, 0, 0x0f, 0x0e, 0x0f, 0x0e, 0x0f, 0x0e, 0x0f, 0x0e, 0x0f})
	f.Add([]byte{1, 2, 2, 2, 0x2e, 0x2f, 0x2e, 0x1f, 0x2e, 0x2f, 0x1e, 0x2f, 0x2e})

	f.Fuzz(func(t *testing.T, data []byte) {
		out := runAdmissionScript(data)
		st := out.Stats

		// Conservation, exact: every offered admission is accounted for.
		total := st.Served + st.Shed + st.Expired + uint64(out.FinalWaiting)
		if total != st.Offered {
			t.Fatalf("conservation broken: offered=%d served=%d shed=%d expired=%d waiting=%d",
				st.Offered, st.Served, st.Shed, st.Expired, out.FinalWaiting)
		}

		// Drain: a finite script with finite services strands nothing.
		if out.FinalWaiting != 0 {
			t.Fatalf("%d admissions stranded in the queue after drain", out.FinalWaiting)
		}

		// The waiting queue never exceeded its cap.
		if cap := int(data1(data)) % 6; cap > 0 && st.MaxWaiting > cap {
			t.Fatalf("waiting high-water %d exceeds cap %d", st.MaxWaiting, cap)
		}

		// Callback accounting matches the stats counters exactly.
		if uint64(len(out.RanOrder)) != st.Served {
			t.Fatalf("%d run callbacks but served=%d", len(out.RanOrder), st.Served)
		}
		if uint64(out.ShedCount) != st.Shed || uint64(out.ExpiredCount) != st.Expired {
			t.Fatalf("drop callbacks shed=%d expired=%d, stats %+v", out.ShedCount, out.ExpiredCount, st)
		}

		// Survivors run in admission order: ids are strictly increasing.
		for i := 1; i < len(out.RanOrder); i++ {
			if out.RanOrder[i] <= out.RanOrder[i-1] {
				t.Fatalf("out-of-order service: %v", out.RanOrder)
			}
		}

		// No deadline, no expiry.
		if deadline := int(data3(data)) % 8; deadline == 0 && st.Expired != 0 {
			t.Fatalf("expired %d entries with no deadline configured", st.Expired)
		}

		// The breaker never delivered while open.
		if out.OpenDelivery {
			t.Fatalf("breaker allowed an attempt while open (stats %+v)", out.Breaker)
		}
		if uint64(out.Allowed) != out.Breaker.Successes+out.Breaker.Failures {
			t.Fatalf("%d allowed attempts but breaker recorded %d verdicts",
				out.Allowed, out.Breaker.Successes+out.Breaker.Failures)
		}

		// Determinism: replaying the identical script reproduces the run.
		again := runAdmissionScript(data)
		if !reflect.DeepEqual(out, again) {
			t.Fatalf("replay diverged:\n first: %+v\nsecond: %+v", out, again)
		}
	})
}

func data1(data []byte) byte {
	if len(data) > 1 {
		return data[1]
	}
	return 0
}

func data3(data []byte) byte {
	if len(data) > 3 {
		return data[3]
	}
	return 0
}
