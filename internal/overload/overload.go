// Package overload provides the deterministic, sim-time primitives of the
// coordinated overload-control plane: bounded admission queues with
// per-request queueing deadlines and pluggable shed policies, a circuit
// breaker with seeded probe jitter, an EWMA overload detector keyed off
// queue delay, and a per-class early-admission shedder.
//
// The paper's islands argument applies to load as much as to faults: the
// IXP island sees every request before the x86 island spends a cycle on
// it, so under overload the island with early visibility should shed work
// on behalf of the island doing expensive work. The primitives here are
// deliberately event-free where possible — deadline expiry is evaluated
// lazily at dequeue time and shed rates decay analytically — so that when
// the bounds do not bind, a run's event sequence (and therefore its golden
// numbers) is byte-identical to a run without the plane.
package overload

import "fmt"

// Class partitions admitted traffic for priority-aware shedding, mirroring
// the paper's request-class policy: browse-class traffic is shed before
// bid/write-class traffic.
type Class int

// Traffic classes, in shed-first order.
const (
	// ClassBrowse is read-only traffic: first to shed under overload.
	ClassBrowse Class = iota
	// ClassTransact is bid/write traffic: protected until browse is gone.
	ClassTransact
)

// NumClasses is the number of declared traffic classes (array sizing).
const NumClasses = 2

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassBrowse:
		return "browse"
	case ClassTransact:
		return "transact"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Policy selects the victim when a bounded queue is full.
type Policy int

// Shed policies.
const (
	// TailDrop sheds the arriving request.
	TailDrop Policy = iota
	// HeadDrop sheds the oldest queued request and admits the arrival.
	HeadDrop
	// PriorityDrop sheds the newest queued browse-class request to admit a
	// transact-class arrival; browse-class arrivals never displace anything
	// and transact-class arrivals are tail-dropped only when the whole
	// queue is transact-class.
	PriorityDrop
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case TailDrop:
		return "tail-drop"
	case HeadDrop:
		return "head-drop"
	case PriorityDrop:
		return "priority-drop"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a knob string ("tail", "head", "priority") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "priority", "priority-drop":
		return PriorityDrop, nil
	case "tail", "tail-drop":
		return TailDrop, nil
	case "head", "head-drop":
		return HeadDrop, nil
	default:
		return TailDrop, fmt.Errorf("overload: unknown shed policy %q", s)
	}
}
