package overload

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/sim"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: Closed (traffic flows) -> Open (fail fast) on consecutive
// failures; Open -> HalfOpen (one probe at a time) once the jittered hold
// expires; HalfOpen -> Closed on enough probe successes, or back to Open on
// any probe failure.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker. Zero fields take the defaults
// noted below.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open (default 3).
	FailureThreshold int
	// OpenTimeout is the base hold before the first half-open probe
	// (default 100ms).
	OpenTimeout sim.Time
	// ProbeJitter widens the hold by a uniform fraction of OpenTimeout in
	// [0, ProbeJitter), decorrelating probes across breakers (default 0.25;
	// negative disables).
	ProbeJitter float64
	// SuccessThreshold is the consecutive probe successes that close a
	// half-open breaker (default 2).
	SuccessThreshold int
	// Seed initializes the breaker's private jitter stream (default 1).
	// The stream is independent of the simulation's main RNG so that
	// arming a breaker never perturbs an existing run's random sequence.
	Seed int64
}

func (c *BreakerConfig) applyDefaults() {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 100 * sim.Millisecond
	}
	if c.ProbeJitter == 0 {
		c.ProbeJitter = 0.25
	}
	if c.SuccessThreshold == 0 {
		c.SuccessThreshold = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BreakerStats counts a breaker's transitions and verdicts.
type BreakerStats struct {
	Opens     uint64 // transitions into Open (trips and failed probes)
	HalfOpens uint64 // transitions into HalfOpen
	Closes    uint64 // transitions into Closed (recoveries)
	Rejected  uint64 // Allow() calls refused
	Failures  uint64 // RecordFailure calls
	Successes uint64 // RecordSuccess calls
}

// Breaker is a deterministic sim-time circuit breaker. It keeps no timers:
// the open hold is evaluated lazily on Allow, so an idle breaker schedules
// nothing and a disabled one changes nothing.
type Breaker struct {
	sim   *sim.Simulator
	cfg   BreakerConfig
	rng   *sim.Rand
	state BreakerState

	fails     int      // consecutive failures while closed
	succs     int      // consecutive probe successes while half-open
	probing   bool     // a half-open probe is in flight
	openUntil sim.Time // earliest half-open probe time

	stats BreakerStats

	rec      *flight.Recorder
	recLabel string

	// OnTransition, when set, observes every state change.
	OnTransition func(from, to BreakerState)
}

// SetFlightRecorder taps every state transition into the flight recorder
// under the given endpoint label (nil disables).
func (b *Breaker) SetFlightRecorder(r *flight.Recorder, label string) {
	b.rec, b.recLabel = r, label
}

// NewBreaker builds a breaker with its own seeded jitter stream.
func NewBreaker(s *sim.Simulator, cfg BreakerConfig) *Breaker {
	if s == nil {
		panic("overload: breaker needs a simulator")
	}
	cfg.applyDefaults()
	return &Breaker{sim: s, cfg: cfg, rng: sim.NewRand(cfg.Seed)}
}

// State returns the breaker's current position, resolving a lapsed open
// hold to HalfOpen.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.sim.Now() >= b.openUntil {
		b.transition(BreakerHalfOpen)
	}
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats { return b.stats }

// Allow reports whether one attempt may proceed now. Closed always allows;
// Open rejects until the jittered hold lapses; HalfOpen allows exactly one
// probe at a time.
func (b *Breaker) Allow() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.stats.Rejected++
		return false
	case BreakerHalfOpen:
		if b.probing {
			b.stats.Rejected++
			return false
		}
		b.probing = true
		return true
	default:
		panic(fmt.Sprintf("overload: breaker in unknown state %d", int(b.state)))
	}
}

// RecordSuccess reports one successful attempt.
func (b *Breaker) RecordSuccess() {
	b.stats.Successes++
	switch b.State() {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probing = false
		b.succs++
		if b.succs >= b.cfg.SuccessThreshold {
			b.transition(BreakerClosed)
		}
	case BreakerOpen:
		// A straggler ack from before the trip: no state change.
	}
}

// RecordFailure reports one failed attempt, tripping or re-opening the
// breaker as configured.
func (b *Breaker) RecordFailure() {
	b.stats.Failures++
	switch b.State() {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		b.open()
	case BreakerOpen:
		// Already failing fast.
	}
}

// open enters the Open state with a jittered probe hold.
func (b *Breaker) open() {
	hold := b.cfg.OpenTimeout
	if b.cfg.ProbeJitter > 0 {
		hold += b.cfg.OpenTimeout.Scale(b.cfg.ProbeJitter * b.rng.Float64())
	}
	b.openUntil = b.sim.Now() + hold
	b.transition(BreakerOpen)
}

// transition moves to a new state, resetting its entry counters.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	switch to {
	case BreakerOpen:
		b.stats.Opens++
		b.fails, b.succs, b.probing = 0, 0, false
	case BreakerHalfOpen:
		b.stats.HalfOpens++
		b.succs, b.probing = 0, false
	case BreakerClosed:
		b.stats.Closes++
		b.fails, b.succs, b.probing = 0, 0, false
	}
	if b.rec != nil {
		b.rec.Record(flight.Event{
			T: b.sim.Now(), Cat: flight.CatBreaker, Code: uint8(to),
			Label: b.recLabel, Entity: -1, Arg: int64(from),
		})
	}
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}
