package overload

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/sim"
)

// QueueConfig bounds one admission queue.
type QueueConfig struct {
	// Cap is the maximum number of waiting admissions; an arrival beyond it
	// invokes the shed policy. Zero or negative means unbounded.
	Cap int
	// Deadline is the maximum queueing age: an entry that has waited this
	// long is expired (counted, never run) instead of served. Expiry is
	// evaluated lazily at dequeue time — no timers, no extra events — so a
	// non-binding deadline leaves the event sequence untouched. Zero or
	// negative disables it.
	Deadline sim.Time
	// Policy selects the victim when the queue is full (default TailDrop).
	Policy Policy
}

// QueueStats counts one queue's admission outcomes. At every instant
// Offered == Served + Shed + Expired + Waiting() holds exactly: entries in
// service count as Served the moment they are handed a worker.
type QueueStats struct {
	Offered uint64 // admission attempts
	Served  uint64 // handed a worker (immediately or after queueing)
	Shed    uint64 // rejected by the shed policy (queue full)
	Expired uint64 // aged out past the queueing deadline

	MaxWaiting int // high-water mark of the waiting queue
}

// entry is one queued admission.
type entry struct {
	class Class
	enq   sim.Time
	run   func()
	drop  func(expired bool)
}

// Queue is a counted worker pool behind a bounded FIFO admission queue with
// per-request queueing deadlines. Acquire admits work, Release frees a
// worker and hands it to the oldest unexpired waiter. It is the drop-in
// replacement for the unbounded tier pools: with Cap and Deadline unset it
// behaves exactly like the pool it replaces.
type Queue struct {
	sim     *sim.Simulator
	cfg     QueueConfig
	workers int
	free    int
	waiting []entry
	stats   QueueStats

	onDelay func(class Class, delay sim.Time)

	rec      *flight.Recorder
	recLabel string
}

// NewQueue builds a queue over n workers.
func NewQueue(s *sim.Simulator, n int, cfg QueueConfig) *Queue {
	if s == nil {
		panic("overload: queue needs a simulator")
	}
	if n <= 0 {
		panic(fmt.Sprintf("overload: queue needs a positive worker count, got %d", n))
	}
	return &Queue{sim: s, cfg: cfg, workers: n, free: n}
}

// OnDelay installs fn, invoked with the queueing delay of every entry that
// starts service or expires — the overload detector's signal.
func (q *Queue) OnDelay(fn func(class Class, delay sim.Time)) { q.onDelay = fn }

// SetFlightRecorder taps every admission verdict (served/shed/expired) into
// the flight recorder under the given queue label (nil disables).
func (q *Queue) SetFlightRecorder(r *flight.Recorder, label string) {
	q.rec, q.recLabel = r, label
}

// recordVerdict records one admission outcome.
func (q *Queue) recordVerdict(code uint8, class Class) {
	if q.rec != nil {
		q.rec.Record(flight.Event{
			T: q.sim.Now(), Cat: flight.CatAdmit, Code: code,
			Label: q.recLabel, Entity: -1, Arg: int64(class),
		})
	}
}

// Waiting returns the number of queued admissions.
func (q *Queue) Waiting() int { return len(q.waiting) }

// Idle returns the number of free workers.
func (q *Queue) Idle() int { return q.free }

// Workers returns the configured worker count.
func (q *Queue) Workers() int { return q.workers }

// InService returns the number of workers currently held.
func (q *Queue) InService() int { return q.workers - q.free }

// Stats returns a snapshot of the queue's admission counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Config returns the queue's bounds.
func (q *Queue) Config() QueueConfig { return q.cfg }

// Acquire admits one unit of work: run executes (synchronously, or later
// when a worker frees up) holding a worker that must be returned with
// Release; drop (optional) is called instead if the entry is shed by the
// bound or expires at its deadline, with expired reporting which. It
// returns false only when the arrival itself was shed on the spot.
func (q *Queue) Acquire(class Class, run func(), drop func(expired bool)) bool {
	if run == nil {
		panic("overload: queue admission without a run function")
	}
	q.stats.Offered++
	q.expireWaiting()
	if q.free > 0 {
		// Release drains the queue before freeing a worker, so a free
		// worker implies an empty queue: serve immediately.
		q.free--
		q.stats.Served++
		q.recordVerdict(flight.AdmitServed, class)
		q.sample(class, 0)
		run()
		return true
	}
	e := entry{class: class, enq: q.sim.Now(), run: run, drop: drop}
	if q.cfg.Cap > 0 && len(q.waiting) >= q.cfg.Cap {
		if !q.makeRoom(e) {
			return false
		}
	}
	q.waiting = append(q.waiting, e)
	if len(q.waiting) > q.stats.MaxWaiting {
		q.stats.MaxWaiting = len(q.waiting)
	}
	return true
}

// makeRoom applies the shed policy to a full queue. It returns true when a
// queued victim was shed (the arrival may be appended) and false when the
// arrival itself was shed.
func (q *Queue) makeRoom(arrival entry) bool {
	switch q.cfg.Policy {
	case TailDrop:
		q.shed(arrival)
		return false
	case HeadDrop:
		q.shed(q.removeAt(0))
		return true
	case PriorityDrop:
		if arrival.class == ClassBrowse {
			// Browse never displaces queued work.
			q.shed(arrival)
			return false
		}
		for i := len(q.waiting) - 1; i >= 0; i-- {
			if q.waiting[i].class == ClassBrowse {
				q.shed(q.removeAt(i))
				return true
			}
		}
		// All queued work is transact-class: tail-drop among equals.
		q.shed(arrival)
		return false
	default:
		panic(fmt.Sprintf("overload: queue with unknown shed policy %d", int(q.cfg.Policy)))
	}
}

// Release returns a worker, handing it to the oldest unexpired waiter if
// any; expired waiters are counted and notified, never run.
func (q *Queue) Release() {
	now := q.sim.Now()
	for len(q.waiting) > 0 {
		e := q.removeAt(0)
		if q.expired(e, now) {
			q.stats.Expired++
			q.recordVerdict(flight.AdmitExpired, e.class)
			q.sample(e.class, now-e.enq)
			if e.drop != nil {
				e.drop(true)
			}
			continue
		}
		q.stats.Served++
		q.recordVerdict(flight.AdmitServed, e.class)
		q.sample(e.class, now-e.enq)
		e.run()
		return
	}
	q.free++
	if q.free > q.workers {
		panic(fmt.Sprintf("overload: queue released more workers than its %d", q.workers))
	}
}

// expireWaiting lazily ages out the expired prefix of the waiting queue
// (the deadline is uniform, so expired entries are always a prefix).
func (q *Queue) expireWaiting() {
	if q.cfg.Deadline <= 0 {
		return
	}
	now := q.sim.Now()
	for len(q.waiting) > 0 && q.expired(q.waiting[0], now) {
		e := q.removeAt(0)
		q.stats.Expired++
		q.recordVerdict(flight.AdmitExpired, e.class)
		q.sample(e.class, now-e.enq)
		if e.drop != nil {
			e.drop(true)
		}
	}
}

func (q *Queue) expired(e entry, now sim.Time) bool {
	return q.cfg.Deadline > 0 && now-e.enq >= q.cfg.Deadline
}

// shed rejects one entry under the shed policy.
func (q *Queue) shed(e entry) {
	q.stats.Shed++
	q.recordVerdict(flight.AdmitShed, e.class)
	if e.drop != nil {
		e.drop(false)
	}
}

// removeAt pops the entry at index i preserving FIFO order.
func (q *Queue) removeAt(i int) entry {
	e := q.waiting[i]
	copy(q.waiting[i:], q.waiting[i+1:])
	q.waiting[len(q.waiting)-1] = entry{}
	q.waiting = q.waiting[:len(q.waiting)-1]
	return e
}

// sample feeds the delay hook.
func (q *Queue) sample(class Class, delay sim.Time) {
	if q.onDelay != nil {
		q.onDelay(class, delay)
	}
}
