package overload

import (
	"fmt"

	"repro/internal/sim"
)

// DetectorConfig parameterizes an overload Detector.
type DetectorConfig struct {
	// Alpha is the EWMA weight of each new sample (default 0.1).
	Alpha float64
	// Threshold is the smoothed queue delay above which the detector
	// declares overload (default 1s).
	Threshold sim.Time
	// Clear is the hysteresis floor: once overloaded, the detector recovers
	// only when the smoothed delay falls below Clear (default Threshold/2).
	Clear sim.Time
}

func (c *DetectorConfig) applyDefaults() {
	if c.Alpha <= 0 {
		c.Alpha = 0.1
	}
	if c.Threshold <= 0 {
		c.Threshold = sim.Second
	}
	if c.Clear <= 0 {
		c.Clear = c.Threshold / 2
	}
}

// DetectorStats counts a detector's observations.
type DetectorStats struct {
	Samples  uint64 // delay samples observed
	Episodes uint64 // healthy -> overloaded transitions
}

// Detector is an EWMA-smoothed overload detector keyed off queue delay.
// It is pure state — no events, no RNG — updated inline from the queue's
// delay hook, with hysteresis so a single slow request does not flap the
// coordination plane.
type Detector struct {
	cfg        DetectorConfig
	ewma       float64 // smoothed delay, nanoseconds
	primed     bool    // first sample seeds the EWMA directly
	overloaded bool
	stats      DetectorStats

	// OnChange, when set, observes every overload transition.
	OnChange func(overloaded bool)
}

// NewDetector builds a detector.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.applyDefaults()
	if cfg.Clear > cfg.Threshold {
		panic(fmt.Sprintf("overload: detector clear %v above threshold %v", cfg.Clear, cfg.Threshold))
	}
	return &Detector{cfg: cfg}
}

// Sample folds one queueing delay into the smoothed estimate and updates
// the overload verdict.
func (d *Detector) Sample(delay sim.Time) {
	d.stats.Samples++
	x := float64(delay)
	if !d.primed {
		d.primed = true
		d.ewma = x
	} else {
		d.ewma += d.cfg.Alpha * (x - d.ewma)
	}
	switch {
	case !d.overloaded && d.ewma > float64(d.cfg.Threshold):
		d.overloaded = true
		d.stats.Episodes++
		if d.OnChange != nil {
			d.OnChange(true)
		}
	case d.overloaded && d.ewma < float64(d.cfg.Clear):
		d.overloaded = false
		if d.OnChange != nil {
			d.OnChange(false)
		}
	}
}

// Overloaded reports the detector's current verdict.
func (d *Detector) Overloaded() bool { return d.overloaded }

// Smoothed returns the current EWMA queue delay.
func (d *Detector) Smoothed() sim.Time { return sim.Time(d.ewma) }

// Stats returns a snapshot of the detector's counters.
func (d *Detector) Stats() DetectorStats { return d.stats }
