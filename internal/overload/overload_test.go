package overload

import (
	"testing"

	"repro/internal/sim"
)

// queueHarness drives a Queue with explicit arrival/service scripting.
type queueHarness struct {
	s *sim.Simulator
	q *Queue

	ran     []int // ids whose run fired, in order
	shedIDs []int // ids dropped with expired=false
	expIDs  []int // ids dropped with expired=true
}

func newQueueHarness(workers int, cfg QueueConfig) *queueHarness {
	h := &queueHarness{s: sim.New(1)}
	h.q = NewQueue(h.s, workers, cfg)
	return h
}

// offer admits id at the current time; the worker is held until release.
func (h *queueHarness) offer(id int, class Class) {
	h.q.Acquire(class, func() { h.ran = append(h.ran, id) }, func(expired bool) {
		if expired {
			h.expIDs = append(h.expIDs, id)
		} else {
			h.shedIDs = append(h.shedIDs, id)
		}
	})
}

func (h *queueHarness) checkConservation(t *testing.T) {
	t.Helper()
	st := h.q.Stats()
	if got := st.Served + st.Shed + st.Expired + uint64(h.q.Waiting()); got != st.Offered {
		t.Fatalf("conservation broken: offered=%d served=%d shed=%d expired=%d waiting=%d",
			st.Offered, st.Served, st.Shed, st.Expired, h.q.Waiting())
	}
}

func TestQueueServesFIFOAndConserves(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{Cap: 8})
	h.offer(0, ClassBrowse) // takes the worker
	h.offer(1, ClassBrowse)
	h.offer(2, ClassTransact)
	if h.q.Waiting() != 2 || h.q.Idle() != 0 {
		t.Fatalf("waiting=%d idle=%d, want 2/0", h.q.Waiting(), h.q.Idle())
	}
	h.checkConservation(t)
	h.q.Release() // hands to 1
	h.q.Release() // hands to 2
	h.q.Release() // frees the worker
	if want := []int{0, 1, 2}; len(h.ran) != 3 || h.ran[0] != want[0] || h.ran[1] != want[1] || h.ran[2] != want[2] {
		t.Fatalf("ran %v, want %v", h.ran, want)
	}
	if h.q.Idle() != 1 {
		t.Fatalf("idle=%d after drain, want 1", h.q.Idle())
	}
	h.checkConservation(t)
}

func TestQueueTailDropShedsArrival(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{Cap: 1, Policy: TailDrop})
	h.offer(0, ClassBrowse) // in service
	h.offer(1, ClassBrowse) // queued
	h.offer(2, ClassTransact)
	if len(h.shedIDs) != 1 || h.shedIDs[0] != 2 {
		t.Fatalf("shed %v, want [2]", h.shedIDs)
	}
	if h.q.Waiting() != 1 {
		t.Fatalf("waiting=%d, want 1", h.q.Waiting())
	}
	h.checkConservation(t)
}

func TestQueueHeadDropShedsOldest(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{Cap: 1, Policy: HeadDrop})
	h.offer(0, ClassBrowse)
	h.offer(1, ClassBrowse)
	h.offer(2, ClassTransact)
	if len(h.shedIDs) != 1 || h.shedIDs[0] != 1 {
		t.Fatalf("shed %v, want [1]", h.shedIDs)
	}
	h.q.Release()
	if len(h.ran) != 2 || h.ran[1] != 2 {
		t.Fatalf("ran %v, want [0 2]", h.ran)
	}
	h.checkConservation(t)
}

func TestQueuePriorityDropProtectsTransact(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{Cap: 2, Policy: PriorityDrop})
	h.offer(0, ClassTransact) // in service
	h.offer(1, ClassBrowse)   // queued
	h.offer(2, ClassTransact) // queued; queue now full

	// A transact arrival displaces the newest queued browse entry.
	h.offer(3, ClassTransact)
	if len(h.shedIDs) != 1 || h.shedIDs[0] != 1 {
		t.Fatalf("shed %v, want [1]", h.shedIDs)
	}
	// A browse arrival never displaces anything.
	h.offer(4, ClassBrowse)
	if len(h.shedIDs) != 2 || h.shedIDs[1] != 4 {
		t.Fatalf("shed %v, want [1 4]", h.shedIDs)
	}
	// All-transact queue: a transact arrival is tail-dropped among equals.
	h.offer(5, ClassTransact)
	if len(h.shedIDs) != 3 || h.shedIDs[2] != 5 {
		t.Fatalf("shed %v, want [1 4 5]", h.shedIDs)
	}
	h.q.Release()
	h.q.Release()
	h.q.Release()
	if want := []int{0, 2, 3}; len(h.ran) != 3 || h.ran[1] != want[1] || h.ran[2] != want[2] {
		t.Fatalf("ran %v, want %v", h.ran, want)
	}
	h.checkConservation(t)
}

func TestQueueDeadlineExpiresLazily(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{Cap: 8, Deadline: 10 * sim.Millisecond})
	h.s.At(0, func() {
		h.offer(0, ClassBrowse) // in service
		h.offer(1, ClassBrowse) // queued at t=0
	})
	h.s.At(5*sim.Millisecond, func() { h.offer(2, ClassTransact) })
	// Release at t=20ms: entry 1 (aged 20ms) and entry 2 (aged 15ms) are
	// both past the 10ms deadline — counted and notified, never run.
	h.s.At(20*sim.Millisecond, func() {
		h.q.Release()
	})
	h.s.Run()
	if len(h.expIDs) != 2 || h.expIDs[0] != 1 || h.expIDs[1] != 2 {
		t.Fatalf("expired %v, want [1 2]", h.expIDs)
	}
	if len(h.ran) != 1 {
		t.Fatalf("ran %v, want only [0]", h.ran)
	}
	st := h.q.Stats()
	if st.Expired != 2 || st.Served != 1 || st.Shed != 0 {
		t.Fatalf("stats %+v, want served=1 expired=2", st)
	}
	if h.q.Idle() != 1 {
		t.Fatalf("idle=%d, want 1 (release fell through to freeing)", h.q.Idle())
	}
	h.checkConservation(t)
}

func TestQueueCapNeverExceeded(t *testing.T) {
	for _, pol := range []Policy{TailDrop, HeadDrop, PriorityDrop} {
		h := newQueueHarness(2, QueueConfig{Cap: 3, Policy: pol})
		for i := 0; i < 40; i++ {
			h.offer(i, Class(i%NumClasses))
		}
		if st := h.q.Stats(); st.MaxWaiting > 3 {
			t.Fatalf("policy %v: max waiting %d exceeds cap 3", pol, st.MaxWaiting)
		}
		h.checkConservation(t)
	}
}

func TestQueueDelayHookSeesQueueing(t *testing.T) {
	h := newQueueHarness(1, QueueConfig{})
	var delays []sim.Time
	h.q.OnDelay(func(_ Class, d sim.Time) { delays = append(delays, d) })
	h.s.At(0, func() {
		h.offer(0, ClassBrowse)
		h.offer(1, ClassBrowse)
	})
	h.s.At(7*sim.Millisecond, func() { h.q.Release() })
	h.s.Run()
	if len(delays) != 2 || delays[0] != 0 || delays[1] != 7*sim.Millisecond {
		t.Fatalf("delays %v, want [0 7ms]", delays)
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(DetectorConfig{Alpha: 0.5, Threshold: 100 * sim.Millisecond})
	var changes []bool
	d.OnChange = func(o bool) { changes = append(changes, o) }

	d.Sample(10 * sim.Millisecond)
	if d.Overloaded() {
		t.Fatal("overloaded after one small sample")
	}
	for i := 0; i < 10; i++ {
		d.Sample(400 * sim.Millisecond)
	}
	if !d.Overloaded() {
		t.Fatalf("not overloaded at smoothed %v", d.Smoothed())
	}
	// Hysteresis: two zero samples pull the EWMA below the threshold
	// (~99.9ms) but not below Clear (default threshold/2); the verdict
	// must hold inside the band.
	d.Sample(0)
	d.Sample(0)
	if d.Smoothed() >= 100*sim.Millisecond {
		t.Fatalf("smoothed %v still above threshold; test needs a bigger drop", d.Smoothed())
	}
	if !d.Overloaded() {
		t.Fatal("verdict flapped inside the hysteresis band")
	}
	for i := 0; i < 10; i++ {
		d.Sample(0)
	}
	if d.Overloaded() {
		t.Fatal("still overloaded after sustained recovery")
	}
	if len(changes) != 2 || !changes[0] || changes[1] {
		t.Fatalf("changes %v, want [true false]", changes)
	}
	if st := d.Stats(); st.Episodes != 1 {
		t.Fatalf("episodes %d, want 1", st.Episodes)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	s := sim.New(1)
	b := NewBreaker(s, BreakerConfig{FailureThreshold: 2, OpenTimeout: 50 * sim.Millisecond, SuccessThreshold: 2})
	var transitions []BreakerState
	b.OnTransition = func(_, to BreakerState) { transitions = append(transitions, to) }

	s.At(0, func() {
		if !b.Allow() {
			t.Error("closed breaker refused")
		}
		b.RecordFailure()
		b.RecordFailure() // trips open
		if b.State() != BreakerOpen {
			t.Errorf("state %v after threshold failures, want open", b.State())
		}
		if b.Allow() {
			t.Error("open breaker allowed")
		}
	})
	// Well past the jittered hold (<= 50ms * 1.25): half-open, one probe.
	s.At(200*sim.Millisecond, func() {
		if !b.Allow() {
			t.Error("half-open breaker refused the first probe")
		}
		if b.State() != BreakerHalfOpen {
			t.Errorf("state %v during probe, want half-open", b.State())
		}
		if b.Allow() {
			t.Error("half-open breaker allowed a second concurrent probe")
		}
		b.RecordFailure() // probe failed: reopen
		if b.State() != BreakerOpen {
			t.Errorf("state %v after failed probe, want open", b.State())
		}
	})
	s.At(500*sim.Millisecond, func() {
		if !b.Allow() {
			t.Error("half-open breaker refused after second hold")
		}
		b.RecordSuccess()
		if !b.Allow() {
			t.Error("refused second probe after first success")
		}
		b.RecordSuccess() // closes
		if b.State() != BreakerClosed {
			t.Errorf("state %v after success threshold, want closed", b.State())
		}
	})
	s.Run()

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
	st := b.Stats()
	if st.Opens != 2 || st.Closes != 1 || st.HalfOpens != 2 {
		t.Fatalf("stats %+v, want opens=2 closes=1 halfopens=2", st)
	}
	if st.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", st.Rejected)
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	holds := func(seed int64) []sim.Time {
		s := sim.New(1)
		b := NewBreaker(s, BreakerConfig{FailureThreshold: 1, Seed: seed})
		var ends []sim.Time
		for i := 0; i < 4; i++ {
			b.RecordFailure()
			ends = append(ends, b.openUntil)
			b.state = BreakerClosed // force re-trip without advancing time
		}
		return ends
	}
	a, b := holds(7), holds(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := holds(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter %v", a)
	}
}

func TestShedderRaisesBrowseFirst(t *testing.T) {
	s := sim.New(1)
	sh := NewShedder(s, ShedderConfig{Step: 0.3, MaxBrowse: 0.5, MaxTransact: 0.4, DecayTau: -1})
	sh.Adjust(1) // browse 0.3
	if got := sh.Rate(ClassBrowse); got < 0.29 || got > 0.31 {
		t.Fatalf("browse rate %v, want ~0.3", got)
	}
	if got := sh.Rate(ClassTransact); got > 0 {
		t.Fatalf("transact rate %v before browse saturates, want 0", got)
	}
	sh.Adjust(1) // browse caps at 0.5, 0.1 spills into transact
	if got := sh.Rate(ClassBrowse); got < 0.49 || got > 0.51 {
		t.Fatalf("browse rate %v, want cap 0.5", got)
	}
	if got := sh.Rate(ClassTransact); got < 0.09 || got > 0.11 {
		t.Fatalf("transact rate %v, want spill ~0.1", got)
	}
	sh.Adjust(-1) // relax: transact drains first (0.1), then browse (0.2)
	if got := sh.Rate(ClassTransact); got > 0 {
		t.Fatalf("transact rate %v after relax, want 0", got)
	}
	if got := sh.Rate(ClassBrowse); got < 0.29 || got > 0.31 {
		t.Fatalf("browse rate %v after relax, want ~0.3", got)
	}
}

func TestShedderDecaysToAdmitting(t *testing.T) {
	s := sim.New(1)
	sh := NewShedder(s, ShedderConfig{Step: 0.5, DecayTau: 100 * sim.Millisecond})
	sh.Adjust(1)
	var late float64
	s.At(2*sim.Second, func() { late = sh.Rate(ClassBrowse) })
	s.Run()
	if late > 0 {
		t.Fatalf("rate %v after 20 tau, want fully decayed", late)
	}
	// With the rate at zero no randomness is consumed and nothing sheds.
	if sh.ShouldShed(ClassBrowse) {
		t.Fatal("decayed shedder shed a request")
	}
}

func TestShedderShedsAtConfiguredRate(t *testing.T) {
	s := sim.New(1)
	sh := NewShedder(s, ShedderConfig{Step: 0.5, DecayTau: -1, Seed: 42})
	sh.Adjust(1) // browse 0.5
	shed := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if sh.ShouldShed(ClassBrowse) {
			shed++
		}
	}
	if shed < n*4/10 || shed > n*6/10 {
		t.Fatalf("shed %d/%d at rate 0.5, outside [40%%, 60%%]", shed, n)
	}
	st := sh.Stats()
	if st.Seen[ClassBrowse] != n || st.Shed[ClassBrowse] != uint64(shed) {
		t.Fatalf("stats %+v, want seen=%d shed=%d", st, n, shed)
	}
}
