package overload

import (
	"fmt"
	"math"

	"repro/internal/flight"
	"repro/internal/sim"
)

// ShedderConfig parameterizes a per-class early-admission Shedder.
type ShedderConfig struct {
	// Step is the shed-probability change per Adjust unit (default 0.05).
	Step float64
	// MaxBrowse caps the browse-class shed probability (default 0.9).
	MaxBrowse float64
	// MaxTransact caps the transact-class shed probability (default 0.5):
	// even a saturated host keeps admitting some bid/write traffic.
	MaxTransact float64
	// DecayTau is the exponential decay time constant of the shed rates:
	// without fresh upstream Tunes the shedder relaxes back toward
	// admitting everything (default 2s; negative disables decay).
	DecayTau sim.Time
	// Seed initializes the shedder's private coin-flip stream (default 1),
	// independent of the simulation's main RNG.
	Seed int64
}

func (c *ShedderConfig) applyDefaults() {
	if c.Step == 0 {
		c.Step = 0.05
	}
	if c.MaxBrowse == 0 {
		c.MaxBrowse = 0.9
	}
	if c.MaxTransact == 0 {
		c.MaxTransact = 0.5
	}
	if c.DecayTau == 0 {
		c.DecayTau = 2 * sim.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ShedderStats counts admission decisions per class.
type ShedderStats struct {
	Seen    [NumClasses]uint64 // admission decisions taken
	Shed    [NumClasses]uint64 // rejections
	Adjusts uint64             // upstream rate adjustments applied
}

// Shedder is the IXP-side early-admission gate: a per-class shed
// probability raised by upstream shed-rate Tunes (browse-class first,
// transact-class only once browse is saturated) and decayed analytically
// between decisions — no tickers, no events. Decisions draw from a private
// seeded stream so an idle shedder perturbs nothing.
type Shedder struct {
	sim  *sim.Simulator
	cfg  ShedderConfig
	rng  *sim.Rand
	rate [NumClasses]float64
	last sim.Time // rates are current as of this instant

	stats ShedderStats

	rec      *flight.Recorder
	recLabel string
}

// NewShedder builds a shedder with all rates at zero (admit everything).
func NewShedder(s *sim.Simulator, cfg ShedderConfig) *Shedder {
	if s == nil {
		panic("overload: shedder needs a simulator")
	}
	cfg.applyDefaults()
	if cfg.Step < 0 || cfg.MaxBrowse < 0 || cfg.MaxBrowse > 1 || cfg.MaxTransact < 0 || cfg.MaxTransact > 1 {
		panic(fmt.Sprintf("overload: shedder config out of range: %+v", cfg))
	}
	return &Shedder{sim: s, cfg: cfg, rng: sim.NewRand(cfg.Seed), last: s.Now()}
}

// SetFlightRecorder taps every upstream rate adjustment into the flight
// recorder under the given label (nil disables).
func (sh *Shedder) SetFlightRecorder(r *flight.Recorder, label string) {
	sh.rec, sh.recLabel = r, label
}

// Adjust applies an upstream shed-rate Tune of delta units (each worth
// Step probability). Positive deltas raise the browse rate first and spill
// into the transact rate only once browse is capped; negative deltas relax
// transact first.
func (sh *Shedder) Adjust(delta int) {
	sh.decay()
	sh.stats.Adjusts++
	if sh.rec != nil {
		sh.rec.Record(flight.Event{
			T: sh.sim.Now(), Cat: flight.CatIXP, Code: flight.IXPShedRate,
			Label: sh.recLabel, Entity: -1, Arg: int64(delta),
		})
	}
	amount := float64(delta) * sh.cfg.Step
	if amount >= 0 {
		amount = sh.raise(ClassBrowse, amount, sh.cfg.MaxBrowse)
		sh.raise(ClassTransact, amount, sh.cfg.MaxTransact)
		return
	}
	amount = -amount
	amount = sh.lower(ClassTransact, amount)
	sh.lower(ClassBrowse, amount)
}

// raise adds up to amount to the class rate, returning the overflow.
func (sh *Shedder) raise(c Class, amount, max float64) float64 {
	room := max - sh.rate[c]
	if room <= 0 {
		return amount
	}
	if amount <= room {
		sh.rate[c] += amount
		return 0
	}
	sh.rate[c] = max
	return amount - room
}

// lower removes up to amount from the class rate, returning the remainder.
func (sh *Shedder) lower(c Class, amount float64) float64 {
	if amount <= sh.rate[c] {
		sh.rate[c] -= amount
		return 0
	}
	rest := amount - sh.rate[c]
	sh.rate[c] = 0
	return rest
}

// ShouldShed decides one admission for the class, consuming one draw from
// the private stream only when the class rate is nonzero.
func (sh *Shedder) ShouldShed(c Class) bool {
	//lint:allow tapcover(passive exponential decay toward zero, not an upstream coordination decision; Tune-driven rate changes are tapped in Adjust)
	sh.decay()
	sh.stats.Seen[c]++
	if sh.rate[c] <= 0 {
		return false
	}
	if sh.rng.Bool(sh.rate[c]) {
		sh.stats.Shed[c]++
		return true
	}
	return false
}

// Rate returns the class's shed probability as of now.
func (sh *Shedder) Rate(c Class) float64 {
	//lint:allow tapcover(passive exponential decay toward zero, not an upstream coordination decision; Tune-driven rate changes are tapped in Adjust)
	sh.decay()
	return sh.rate[c]
}

// Stats returns a snapshot of the shedder's counters.
func (sh *Shedder) Stats() ShedderStats { return sh.stats }

// decay relaxes the rates analytically over the elapsed interval.
func (sh *Shedder) decay() {
	now := sh.sim.Now()
	dt := now - sh.last
	sh.last = now
	if dt <= 0 || sh.cfg.DecayTau <= 0 {
		return
	}
	f := math.Exp(-float64(dt) / float64(sh.cfg.DecayTau))
	for i := range sh.rate {
		sh.rate[i] *= f
		if sh.rate[i] < 1e-6 {
			sh.rate[i] = 0
		}
	}
}
