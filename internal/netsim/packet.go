// Package netsim provides the network plumbing shared by both islands:
// the packet representation, and the host-side receive/transmit path (the
// vendor messaging driver, the IXP virtual interface, and the Xen bridge)
// that connects the PCIe message queues to guest domains.
//
// Protocol behaviour is deliberately thin — what matters for the paper's
// experiments is where packets queue and how much CPU each hop charges, not
// TCP state machines.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Class labels a packet's traffic class as seen by deep packet inspection
// on the IXP (e.g. a RUBiS request-type name, or "rtsp"/"udp-stream").
type Class string

// Common classes used by the workloads.
const (
	ClassUnknown Class = ""
	ClassRTSP    Class = "rtsp"
	ClassStream  Class = "udp-stream"
)

// Packet is one network packet, from the wire through the IXP to a guest
// domain or back. The Payload carries the workload-level object (a request,
// a media chunk); Size is what occupies buffers and wires.
type Packet struct {
	ID      uint64
	Size    int   // bytes, including headers
	DstVM   int   // destination domain ID for receive traffic (-1 external)
	SrcVM   int   // source domain ID for transmit traffic (-1 external)
	Class   Class // DPI classification hint
	Payload interface{}
	Created sim.Time // when the packet entered the simulation
}

// Validate reports an error for malformed packets; used at module
// boundaries so bugs surface at injection rather than deep in a pipeline.
func (p *Packet) Validate() error {
	if p == nil {
		return fmt.Errorf("netsim: nil packet")
	}
	if p.Size <= 0 {
		return fmt.Errorf("netsim: packet %d with size %d", p.ID, p.Size)
	}
	return nil
}
