package netsim

import (
	"testing"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/xen"
)

func newHost(t *testing.T) (*sim.Simulator, *xen.Hypervisor, *HostStack) {
	t.Helper()
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 2})
	dom0 := hv.CreateDomain("dom0", 256, 1)
	hv.Start()
	tx := pcie.NewChannel(s, "host-ixp", pcie.Config{Latency: 10 * sim.Microsecond, Bandwidth: 1e9})
	hs := NewHostStack(s, dom0, tx, Config{})
	return s, hv, hs
}

func TestPacketValidate(t *testing.T) {
	var p *Packet
	if p.Validate() == nil {
		t.Fatal("nil packet validated")
	}
	if (&Packet{Size: 0}).Validate() == nil {
		t.Fatal("zero-size packet validated")
	}
	if (&Packet{Size: 100}).Validate() != nil {
		t.Fatal("valid packet rejected")
	}
}

func TestReceivePathChargesDom0AndDelivers(t *testing.T) {
	s, _, hs := newHost(t)
	var got []*Packet
	hs.Register(1, func(p *Packet) { got = append(got, p) })
	for i := uint64(0); i < 16; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 1500, DstVM: 1})
	}
	s.RunUntil(100 * sim.Millisecond)
	if len(got) != 16 {
		t.Fatalf("delivered %d, want 16", len(got))
	}
	if hs.RxDelivered() != 16 {
		t.Fatalf("RxDelivered = %d", hs.RxDelivered())
	}
	if hs.Dom0().Meter().Busy() == 0 {
		t.Fatal("Dom0 charged no CPU for receive processing")
	}
	if hs.RxBacklog() != 0 {
		t.Fatalf("RxBacklog = %d", hs.RxBacklog())
	}
}

func TestReceiveInOrder(t *testing.T) {
	s, _, hs := newHost(t)
	var ids []uint64
	hs.Register(1, func(p *Packet) { ids = append(ids, p.ID) })
	for i := uint64(0); i < 50; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	s.RunUntil(time500ms())
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, id)
		}
	}
}

func time500ms() sim.Time { return 500 * sim.Millisecond }

func TestUnregisteredVMDropsCounted(t *testing.T) {
	s, _, hs := newHost(t)
	hs.DeliverFromIXP(&Packet{ID: 1, Size: 100, DstVM: 3})
	s.RunUntil(time500ms())
	if hs.RxDropped() != 1 {
		t.Fatalf("RxDropped = %d", hs.RxDropped())
	}
}

func TestTransmitPathReachesIXP(t *testing.T) {
	s, _, hs := newHost(t)
	var txed []*Packet
	hs.ConnectIXPTransmit(func(p *Packet) { txed = append(txed, p) })
	for i := uint64(0); i < 5; i++ {
		hs.Transmit(&Packet{ID: i, Size: 1000, SrcVM: 1, DstVM: -1})
	}
	s.RunUntil(time500ms())
	if len(txed) != 5 {
		t.Fatalf("IXP got %d packets", len(txed))
	}
	if hs.TxSent() != 5 {
		t.Fatalf("TxSent = %d", hs.TxSent())
	}
}

func TestTransmitWithoutIXPIsSafe(t *testing.T) {
	s, _, hs := newHost(t)
	hs.Transmit(&Packet{ID: 1, Size: 100, SrcVM: 1})
	s.RunUntil(time500ms())
	if hs.TxSent() != 1 {
		t.Fatalf("TxSent = %d", hs.TxSent())
	}
}

func TestRegisterNilHandlerPanics(t *testing.T) {
	_, _, hs := newHost(t)
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	hs.Register(1, nil)
}

func TestInvalidPacketPanics(t *testing.T) {
	_, _, hs := newHost(t)
	for _, fn := range []func(){
		func() { hs.DeliverFromIXP(&Packet{Size: 0, DstVM: 1}) },
		func() { hs.Transmit(&Packet{Size: -5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid packet did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRxBatchingBoundsDom0Tasks(t *testing.T) {
	s, _, hs := newHost(t)
	hs.Register(1, func(*Packet) {})
	// 64 packets with batch size 8 should take ~8 Dom0 tasks, not 64.
	for i := uint64(0); i < 64; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	s.RunUntil(time500ms())
	tasks := hs.Dom0().TasksCompleted()
	if tasks > 10 {
		t.Fatalf("Dom0 ran %d rx tasks for 64 packets with batch 8", tasks)
	}
	if hs.RxDelivered() != 64 {
		t.Fatalf("RxDelivered = %d", hs.RxDelivered())
	}
}

func TestDom0ContentionDelaysDelivery(t *testing.T) {
	// When Dom0 is starved, receive processing should stall — this is the
	// cross-island dependence the paper's coordination exploits.
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	dom0 := hv.CreateDomain("dom0", 256, 1)
	hog := hv.CreateDomain("hog", 25600, 1)
	hv.Start()
	tx := pcie.NewChannel(s, "host-ixp", pcie.Config{})
	hs := NewHostStack(s, dom0, tx, Config{RxCostPerPacket: 1 * sim.Millisecond, RxBatch: 1})
	delivered := 0
	hs.Register(1, func(*Packet) { delivered++ })
	// Saturate the hog so Dom0 gets only its fair share.
	var churn func()
	churn = func() { hog.SubmitFunc(5*sim.Millisecond, "hog", churn) }
	churn()
	for i := uint64(0); i < 1000; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	s.RunUntil(1 * sim.Second)
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if delivered >= 900 {
		t.Fatalf("delivered %d of 1000 despite Dom0 starvation; expected backlog", delivered)
	}
	if hs.RxBacklog() == 0 {
		t.Fatal("expected receive backlog under Dom0 contention")
	}
}

func TestPollingDriverBurnsDom0(t *testing.T) {
	s, hv, hs := newHost(t)
	stop := hs.StartPollingDriver(2*sim.Millisecond, 1*sim.Millisecond)
	s.RunUntil(2 * sim.Second)
	hv.TotalUtilization(0, hs.Dom0())
	util := hs.Dom0().Meter().MeanUtilization(0, s.Now())
	if util < 40 || util > 60 {
		t.Fatalf("polling driver utilization = %.1f%%, want ~50", util)
	}
	stop()
	before := hs.Dom0().Meter().Busy()
	s.RunUntil(3 * sim.Second)
	hv.TotalUtilization(0, hs.Dom0())
	// At most one in-flight poll completes after stop.
	if extra := hs.Dom0().Meter().Busy() - before; extra > 2*sim.Millisecond {
		t.Fatalf("poller still burning after stop: %v", extra)
	}
}

func TestPollingDriverDoesNotPileUpWhenStarved(t *testing.T) {
	// One PCPU fully occupied by a higher-weight hog: the poller must skip
	// polls rather than queue unbounded demand.
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	dom0 := hv.CreateDomain("dom0", 64, 1)
	hog := hv.CreateDomain("hog", 6400, 1)
	hv.Start()
	var churn func()
	churn = func() { hog.SubmitFunc(5*sim.Millisecond, "hog", churn) }
	churn()
	tx := pcie.NewChannel(s, "t", pcie.Config{})
	hs := NewHostStack(s, dom0, tx, Config{})
	hs.StartPollingDriver(2*sim.Millisecond, 1*sim.Millisecond)
	s.RunUntil(2 * sim.Second)
	if q := dom0.QueueLen(); q > 1 {
		t.Fatalf("poll tasks piled up: queue=%d", q)
	}
}

func TestPollingDriverValidation(t *testing.T) {
	_, _, hs := newHost(t)
	for _, fn := range []func(){
		func() { hs.StartPollingDriver(0, sim.Millisecond) },
		func() { hs.StartPollingDriver(sim.Millisecond, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid polling driver accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRingCapacityAndBackpressure(t *testing.T) {
	s, _, hs := newHost(t)
	hs.SetRingCapacity(4)
	if hs.RingFull() {
		t.Fatal("empty ring reports full")
	}
	// A bounded handler that rejects everything wedges the ring head.
	hs.RegisterBounded(1, func(*Packet) bool { return false })
	for i := uint64(0); i < 6; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	s.RunUntil(50 * sim.Millisecond)
	if !hs.RingFull() {
		t.Fatalf("ring not full: backlog=%d", hs.RxBacklog())
	}
	if hs.Retries() == 0 {
		t.Fatal("no retries recorded")
	}
	if hs.RxDelivered() != 0 {
		t.Fatal("rejected packets counted as delivered")
	}
}

func TestBoundedHandlerAcceptanceDrains(t *testing.T) {
	s, _, hs := newHost(t)
	accept := false
	var got int
	hs.RegisterBounded(1, func(*Packet) bool {
		if accept {
			got++
			return true
		}
		return false
	})
	for i := uint64(0); i < 10; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	s.RunUntil(20 * sim.Millisecond)
	if got != 0 {
		t.Fatal("packets delivered while rejecting")
	}
	accept = true
	s.RunUntil(200 * sim.Millisecond)
	if got != 10 {
		t.Fatalf("delivered %d after acceptance, want 10", got)
	}
	if hs.RxBacklog() != 0 {
		t.Fatalf("backlog = %d after drain", hs.RxBacklog())
	}
}

func TestRegisterBoundedValidation(t *testing.T) {
	_, _, hs := newHost(t)
	for _, fn := range []func(){
		func() { hs.RegisterBounded(1, nil) },
		func() { hs.SetRingCapacity(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid call accepted")
				}
			}()
			fn()
		}()
	}
}

func TestInterruptModerationBatches(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 2})
	dom0 := hv.CreateDomain("dom0", 256, 1)
	hv.Start()
	tx := pcie.NewChannel(s, "t", pcie.Config{})
	hs := NewHostStack(s, dom0, tx, Config{IntrPeriod: 10 * sim.Millisecond})
	var deliveredAt []sim.Time
	hs.Register(1, func(*Packet) { deliveredAt = append(deliveredAt, s.Now()) })
	// Packets arriving mid-period wait for the interrupt.
	for i := uint64(0); i < 5; i++ {
		i := i
		s.At(sim.Time(i)*sim.Millisecond, func() {
			hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
		})
	}
	s.RunUntil(9 * sim.Millisecond)
	if len(deliveredAt) != 0 {
		t.Fatalf("%d packets delivered before the interrupt", len(deliveredAt))
	}
	if hs.Staged() != 5 {
		t.Fatalf("Staged = %d", hs.Staged())
	}
	s.RunUntil(50 * sim.Millisecond)
	if len(deliveredAt) != 5 {
		t.Fatalf("delivered %d, want 5", len(deliveredAt))
	}
	// All five arrived in one interrupt service.
	if hs.Interrupts() != 1 {
		t.Fatalf("Interrupts = %d, want 1 (coalesced)", hs.Interrupts())
	}
	if deliveredAt[0] < 10*sim.Millisecond {
		t.Fatalf("first delivery at %v, before interrupt", deliveredAt[0])
	}
}

func TestInterruptModerationSkipsEmptyPeriods(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	dom0 := hv.CreateDomain("dom0", 256, 1)
	hv.Start()
	tx := pcie.NewChannel(s, "t", pcie.Config{})
	hs := NewHostStack(s, dom0, tx, Config{IntrPeriod: 5 * sim.Millisecond})
	s.RunUntil(1 * sim.Second)
	if hs.Interrupts() != 0 {
		t.Fatalf("raised %d interrupts with no traffic", hs.Interrupts())
	}
}

func TestModerationCountsTowardRingFull(t *testing.T) {
	s := sim.New(1)
	hv := xen.New(s, xen.Options{NumPCPUs: 1})
	dom0 := hv.CreateDomain("dom0", 256, 1)
	hv.Start()
	tx := pcie.NewChannel(s, "t", pcie.Config{})
	hs := NewHostStack(s, dom0, tx, Config{IntrPeriod: sim.Second})
	hs.SetRingCapacity(3)
	for i := uint64(0); i < 3; i++ {
		hs.DeliverFromIXP(&Packet{ID: i, Size: 100, DstVM: 1})
	}
	if !hs.RingFull() {
		t.Fatal("staged packets not counted toward ring capacity")
	}
}
