package netsim

import (
	"fmt"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/xen"
)

// Config sets the CPU costs the host network path charges to Dom0. The
// paper's prototype funnels all VM traffic through the messaging driver,
// the IXP ViF (socket-buffer conversion), and the Xen bridge, all running
// in Dom0 — this is why coordination raises guest "user" CPU while cutting
// Dom0 "system" time.
type Config struct {
	RxCostPerPacket sim.Time // Dom0 CPU per received packet (default 4us)
	TxCostPerPacket sim.Time // Dom0 CPU per transmitted packet (default 4us)
	RxBatch         int      // packets handled per Dom0 task (default 8)

	// IntrPeriod enables interrupt moderation: the IXP "can be programmed
	// to interrupt the host at a user-defined frequency" (§2.1), and the
	// messaging driver only checks the message queues when the interrupt
	// is serviced. Received packets accumulate and are handed to Dom0 in a
	// burst every IntrPeriod. Zero (the default) delivers immediately.
	IntrPeriod sim.Time
}

func (c *Config) applyDefaults() {
	if c.RxCostPerPacket == 0 {
		c.RxCostPerPacket = 4 * sim.Microsecond
	}
	if c.TxCostPerPacket == 0 {
		c.TxCostPerPacket = 4 * sim.Microsecond
	}
	if c.RxBatch == 0 {
		c.RxBatch = 8
	}
}

// Handler consumes a packet at a guest domain (netfront equivalent).
type Handler func(*Packet)

// BoundedHandler consumes a packet at a guest domain and reports whether it
// was accepted. Rejection (a full in-VM socket buffer) leaves the packet in
// the host message ring, creating the backpressure chain of the paper's
// Figure 7: a slow VM backs up the ring, which backs up the IXP DRAM
// queue, which is what the buffer-watermark trigger watches.
type BoundedHandler func(*Packet) bool

// HostStack is the Dom0-resident network path: messaging driver + IXP ViF +
// Xen bridge. Receive traffic arrives from the PCIe channel, costs Dom0 CPU,
// and is demultiplexed by destination VM; transmit traffic costs Dom0 CPU
// and is pushed into the PCIe channel toward the IXP.
type HostStack struct {
	sim  *sim.Simulator
	cfg  Config
	dom0 *xen.Domain

	txChan   *pcie.Channel // host -> IXP
	handlers map[int]Handler
	bounded  map[int]BoundedHandler
	onTxIXP  func(*Packet) // IXP-side transmit entry point

	rxBacklog []*Packet // packets delivered by PCIe, awaiting Dom0 service
	rxPending bool      // a Dom0 rx batch task is queued

	ringCap    int      // max rxBacklog length before the ring is "full"
	retryDelay sim.Time // re-poll delay when a bounded handler rejects

	staging    []*Packet // packets awaiting the next moderated interrupt
	interrupts uint64    // interrupts raised (moderation enabled only)

	pollStop func()

	rxCount, txCount uint64
	rxDropNoHandler  uint64
	rxRetries        uint64
}

// NewHostStack builds the host network path. dom0 is the domain charged for
// packet processing; txChan carries transmit traffic to the IXP.
func NewHostStack(s *sim.Simulator, dom0 *xen.Domain, txChan *pcie.Channel, cfg Config) *HostStack {
	cfg.applyDefaults()
	h := &HostStack{
		sim:        s,
		cfg:        cfg,
		dom0:       dom0,
		txChan:     txChan,
		handlers:   make(map[int]Handler),
		bounded:    make(map[int]BoundedHandler),
		ringCap:    256,
		retryDelay: sim.Millisecond,
	}
	if cfg.IntrPeriod > 0 {
		s.Ticker(cfg.IntrPeriod, h.serviceInterrupt)
	}
	return h
}

// serviceInterrupt is the moderated interrupt handler: it moves staged
// packets into the message ring and kicks the Dom0 receive path.
func (h *HostStack) serviceInterrupt() {
	if len(h.staging) == 0 {
		return // coalesced away: nothing pending, no interrupt raised
	}
	h.interrupts++
	h.rxBacklog = append(h.rxBacklog, h.staging...)
	h.staging = h.staging[:0]
	h.scheduleRxBatch()
}

// Interrupts returns the number of moderated interrupts serviced.
func (h *HostStack) Interrupts() uint64 { return h.interrupts }

// Staged returns the packets awaiting the next moderated interrupt.
func (h *HostStack) Staged() int { return len(h.staging) }

// SetRingCapacity bounds the host message ring (packets). The IXP side
// consults RingFull to apply backpressure.
func (h *HostStack) SetRingCapacity(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: ring capacity %d", n))
	}
	h.ringCap = n
}

// RingFull reports whether the host message ring is at capacity (staged
// packets awaiting a moderated interrupt occupy ring slots too).
func (h *HostStack) RingFull() bool { return len(h.rxBacklog)+len(h.staging) >= h.ringCap }

// RegisterBounded installs a backpressure-capable receive handler for a
// guest domain. Rejected packets stay at the head of the ring and are
// retried after a short delay.
func (h *HostStack) RegisterBounded(vmID int, fn BoundedHandler) {
	if fn == nil {
		panic(fmt.Sprintf("netsim: nil bounded handler for VM %d", vmID))
	}
	h.bounded[vmID] = fn
}

// StartPollingDriver emulates the vendor messaging driver's periodic
// polling (§2.1: "The messaging driver handles packet-receive by periodic
// polling"): every period, Dom0 burns cost of CPU regardless of traffic.
// This steady Dom0 demand is the contention source in the MPlayer
// experiments. The returned function stops the poller.
func (h *HostStack) StartPollingDriver(period, cost sim.Time) (stop func()) {
	if period <= 0 || cost <= 0 {
		panic(fmt.Sprintf("netsim: polling driver period %v cost %v", period, cost))
	}
	pending := false
	h.pollStop = h.sim.Ticker(period, func() {
		if pending {
			return // previous poll still queued; do not pile up demand
		}
		pending = true
		h.dom0.SubmitFunc(cost, "msg-poll", func() { pending = false })
	})
	return h.pollStop
}

// Retries returns how many receive deliveries were deferred by a bounded
// handler rejecting the packet.
func (h *HostStack) Retries() uint64 { return h.rxRetries }

// Dom0 returns the domain charged for host-side packet processing.
func (h *HostStack) Dom0() *xen.Domain { return h.dom0 }

// Register installs the receive handler for a guest domain's ViF.
func (h *HostStack) Register(vmID int, fn Handler) {
	if fn == nil {
		panic(fmt.Sprintf("netsim: nil handler for VM %d", vmID))
	}
	h.handlers[vmID] = fn
}

// ConnectIXPTransmit installs the IXP-side entry point for host transmit
// traffic (the PCI-Rx microengine's input).
func (h *HostStack) ConnectIXPTransmit(fn func(*Packet)) { h.onTxIXP = fn }

// DeliverFromIXP accepts a packet that the PCIe DMA placed in the host
// message queue. It queues Dom0 processing; the destination VM sees the
// packet only after Dom0 has run the messaging-driver/bridge code.
func (h *HostStack) DeliverFromIXP(p *Packet) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: invalid packet: %v", err))
	}
	if h.cfg.IntrPeriod > 0 {
		h.staging = append(h.staging, p)
		return
	}
	h.rxBacklog = append(h.rxBacklog, p)
	h.scheduleRxBatch()
}

// scheduleRxBatch queues one Dom0 task to drain up to RxBatch packets. A
// bounded handler rejecting a packet stalls the ring head until the retry
// delay elapses (or new traffic re-arms delivery).
func (h *HostStack) scheduleRxBatch() {
	if h.rxPending || len(h.rxBacklog) == 0 {
		return
	}
	h.rxPending = true
	n := len(h.rxBacklog)
	if n > h.cfg.RxBatch {
		n = h.cfg.RxBatch
	}
	cost := h.cfg.RxCostPerPacket * sim.Time(n)
	h.dom0.SubmitFunc(cost, "net-rx", func() {
		stalled := false
		for delivered := 0; delivered < n && len(h.rxBacklog) > 0; delivered++ {
			p := h.rxBacklog[0]
			if bh, ok := h.bounded[p.DstVM]; ok {
				if !bh(p) {
					h.rxRetries++
					stalled = true
					break
				}
				h.rxCount++
			} else if fn, ok := h.handlers[p.DstVM]; ok {
				h.rxCount++
				fn(p)
			} else {
				h.rxDropNoHandler++
			}
			h.rxBacklog = h.rxBacklog[1:]
		}
		h.rxPending = false
		if stalled {
			h.sim.After(h.retryDelay, h.scheduleRxBatch)
			return
		}
		h.scheduleRxBatch()
	})
}

// Transmit sends a packet from a guest domain toward the IXP: it charges
// Dom0 the transmit path cost, then DMAs the packet over the PCIe channel.
func (h *HostStack) Transmit(p *Packet) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("netsim: invalid packet: %v", err))
	}
	h.dom0.SubmitFunc(h.cfg.TxCostPerPacket, "net-tx", func() {
		h.txCount++
		h.txChan.Send(p.Size, func() {
			if h.onTxIXP != nil {
				h.onTxIXP(p)
			}
		})
	})
}

// RxDelivered returns the number of packets delivered to guest handlers.
func (h *HostStack) RxDelivered() uint64 { return h.rxCount }

// TxSent returns the number of packets pushed toward the IXP.
func (h *HostStack) TxSent() uint64 { return h.txCount }

// RxDropped returns receive packets dropped for lack of a registered VM.
func (h *HostStack) RxDropped() uint64 { return h.rxDropNoHandler }

// RxBacklog returns packets waiting for Dom0 receive processing.
func (h *HostStack) RxBacklog() int { return len(h.rxBacklog) }
